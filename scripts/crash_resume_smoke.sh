#!/usr/bin/env bash
# Crash-resume determinism smoke: SIGKILL a durable fleet run mid-flight,
# resume it from the last per-vehicle checkpoints, and assert the resumed
# stores are byte-identical (SHA-256 segment digests) to an uninterrupted
# run of the same spec. This is the recovery protocol's end-to-end check —
# if any vehicle's post-resume tail diverged by a single bit, its digest
# would differ.
set -euo pipefail

VEHICLES=${VEHICLES:-6}
HORIZON=${HORIZON:-1500000}
KILL_AFTER=${KILL_AFTER:-0.6}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/michican-crash-smoke-XXXXXX")
trap 'rm -rf "$WORK"' EXIT

FLEET=(go run ./cmd/michican-fleet)
if [[ -n "${FLEET_BIN:-}" ]]; then
  FLEET=("$FLEET_BIN")
fi

# -watch attaches a live SLO engine to every vehicle: each store also gets a
# persisted alert log, so the digest diff below additionally proves alerts
# regenerate byte-identically across a kill + resume (the resumed roster
# re-attaches engines from the stored per-vehicle specs).
echo "== reference: uninterrupted durable run ($VEHICLES vehicles, $HORIZON bits, watch on)"
"${FLEET[@]}" -vehicles "$VEHICLES" -horizon-bits "$HORIZON" -watch -store "$WORK/ref" >/dev/null

echo "== crash run: SIGKILL after ${KILL_AFTER}s"
"${FLEET[@]}" -vehicles "$VEHICLES" -horizon-bits "$HORIZON" -watch -store "$WORK/crash" >/dev/null 2>&1 &
PID=$!
sleep "$KILL_AFTER"
# go run execs the built binary as a child; kill the whole process group is
# overkill here — kill the direct child tree.
pkill -9 -P "$PID" 2>/dev/null || true
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

if [[ ! -d "$WORK/crash" ]]; then
  echo "crash run died before creating any stores; raise KILL_AFTER" >&2
  exit 1
fi

echo "== resume from last checkpoints"
"${FLEET[@]}" -store "$WORK/crash" -resume | tee "$WORK/resume.out" | grep '^resumed roster'
if ! grep -Eq 'resumed roster from .*: [1-9][0-9]* vehicles continuing' "$WORK/resume.out"; then
  echo "FAIL: the kill landed after the run finished — nothing was resumed; lower KILL_AFTER" >&2
  exit 1
fi

echo "== compare store digests"
"${FLEET[@]}" -store-digest -store "$WORK/ref" > "$WORK/ref.digest"
"${FLEET[@]}" -store-digest -store "$WORK/crash" > "$WORK/crash.digest"
if ! diff -u "$WORK/ref.digest" "$WORK/crash.digest"; then
  echo "FAIL: resumed stores diverge from the uninterrupted reference" >&2
  exit 1
fi
# The alert byte-identity claim must not pass vacuously: the reference run
# has to have persisted at least one alert segment.
if ! ls "$WORK"/ref/*/alerts-*.seg >/dev/null 2>&1; then
  echo "FAIL: no persisted alert logs in the reference store; -watch did not persist" >&2
  exit 1
fi
echo "OK: $(wc -l < "$WORK/ref.digest") vehicle stores (incl. alert logs) byte-identical after kill + resume"
