#!/usr/bin/env bash
# Bench trend gate: fold the committed BENCH_PR*.json series into a trend
# table (artifact: trend table file) and fail if the newest file's 60%-load
# headline cell regressed more than the budget against the latest committed
# baseline of the same benchmark kind. Reads committed numbers only — no
# re-measurement, so the verdict is deterministic across CI runners.
set -euo pipefail

DIR=${DIR:-.}
BUDGET=${BUDGET:-20}
OUT=${OUT:-bench_trend.txt}

go run ./cmd/michican-trend -dir "$DIR" -budget "$BUDGET" -out "$OUT"
