package michican

import (
	"errors"
	"testing"
	"time"

	"michican/internal/can"
	"michican/internal/restbus"
	"michican/internal/trace"
)

func TestNetworkQuickstart(t *testing.T) {
	n := NewNetwork(Rate50k)
	victim, err := n.AddECU(ECUConfig{
		Name: "brake", ID: 0x173, Period: 20 * time.Millisecond, Defense: DefenseFull,
	})
	if err != nil {
		t.Fatal(err)
	}
	att := n.AddSpoofAttacker("evil", 0x173)
	if err := n.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if att.Controller().Stats().BusOffEvents == 0 {
		t.Fatal("spoofer never bused off")
	}
	if att.Controller().Stats().TxSuccess != 0 {
		t.Errorf("spoofer slipped %d frames through", att.Controller().Stats().TxSuccess)
	}
	if victim.DefenseStats().Counterattacks < 32 {
		t.Errorf("counterattacks = %d, want ≥32", victim.DefenseStats().Counterattacks)
	}
	if victim.BusOff() {
		t.Error("the defended ECU must never bus off")
	}
	if victim.TransmittedFrames() == 0 {
		t.Error("the victim's own traffic should continue")
	}
}

func TestNetworkValidation(t *testing.T) {
	n := NewNetwork(Rate500k)
	if _, err := n.AddECU(ECUConfig{Name: "bad", ID: 0x900}); err == nil {
		t.Error("invalid ID accepted")
	}
	if _, err := n.AddECU(ECUConfig{Name: "bad", ID: 0x100, DLC: 9}); err == nil {
		t.Error("invalid DLC accepted")
	}
	if _, err := n.AddECU(ECUConfig{Name: "a", ID: 0x100}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddECU(ECUConfig{Name: "b", ID: 0x100}); !errors.Is(err, ErrDuplicateECU) {
		t.Error("duplicate ID accepted")
	}
	if err := n.Run(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddECU(ECUConfig{Name: "late", ID: 0x200}); !errors.Is(err, ErrStarted) {
		t.Error("post-start declaration accepted")
	}
	if err := n.DeclareLegitimate(0x300); !errors.Is(err, ErrStarted) {
		t.Error("post-start DeclareLegitimate accepted")
	}
	if _, err := n.AddRestbus(restbus.VehD, 0, 0.2); !errors.Is(err, ErrStarted) {
		t.Error("post-start AddRestbus accepted")
	}
}

func TestNetworkSendExplicit(t *testing.T) {
	n := NewNetwork(Rate500k)
	sender, err := n.AddECU(ECUConfig{Name: "s", ID: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := n.AddECU(ECUConfig{Name: "r", ID: 0x200})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(Frame{ID: 0x100, Data: []byte{1}}); err == nil {
		t.Error("Send before start must fail")
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.RunBits(300); err != nil {
		t.Fatal(err)
	}
	if sender.TransmittedFrames() != 1 {
		t.Errorf("transmitted = %d", sender.TransmittedFrames())
	}
	if receiver.Controller().Stats().RxSuccess != 1 {
		t.Errorf("receiver rx = %d", receiver.Controller().Stats().RxSuccess)
	}
}

func TestNetworkEventsAndLoad(t *testing.T) {
	n := NewNetwork(Rate500k)
	if _, err := n.AddECU(ECUConfig{Name: "p", ID: 0x123, Period: time.Millisecond, DLC: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddECU(ECUConfig{Name: "peer", ID: 0x456}); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	events := n.Events()
	frames := 0
	for _, e := range events {
		if e.Kind == trace.FrameEvent && e.Frame.ID == 0x123 {
			frames++
		}
	}
	if frames < 15 {
		t.Errorf("decoded %d periodic frames, want ≈20", frames)
	}
	if load := n.BusLoad(); load <= 0 || load >= 1 {
		t.Errorf("bus load = %f", load)
	}
	if n.Elapsed() < 19*time.Millisecond {
		t.Errorf("elapsed = %v", n.Elapsed())
	}
	if n.Rate() != Rate500k {
		t.Error("rate accessor wrong")
	}
}

func TestNetworkRestbusLegitimacy(t *testing.T) {
	// Restbus IDs are declared legitimate: a full defense on a high-ID ECU
	// must not flag them.
	n := NewNetwork(Rate50k)
	n.Seed(3)
	guard, err := n.AddECU(ECUConfig{Name: "guard", ID: 0x7F5, Defense: DefenseFull})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRestbus(restbus.VehA, 0, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := n.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := guard.DefenseStats().Counterattacks; got != 0 {
		t.Errorf("defense counterattacked benign restbus traffic %d times", got)
	}
	if guard.DefenseStats().FramesObserved == 0 {
		t.Error("defense observed no traffic")
	}
	// ...but an unknown lower ID is still eradicated.
	att := n.AddTargetedDoSAttacker("dos", 0x001)
	ok, err := n.RunUntil(func() bool {
		return att.Controller().Stats().BusOffEvents > 0
	}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("DoS attacker not eradicated amid restbus traffic")
	}
}

func TestNetworkLightDefense(t *testing.T) {
	n := NewNetwork(Rate50k)
	if _, err := n.AddECU(ECUConfig{Name: "lo", ID: 0x100, Defense: DefenseLight}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddECU(ECUConfig{Name: "hi", ID: 0x200, Defense: DefenseFull}); err != nil {
		t.Fatal(err)
	}
	att := n.AddTargetedDoSAttacker("dos", 0x050)
	ok, err := n.RunUntil(func() bool { return att.Controller().Stats().BusOffEvents > 0 }, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// The light ECU ignores 0x050; the full ECU eradicates it — the split
	// deployment of Sec. IV-A still protects the bus.
	if !ok {
		t.Error("split deployment failed to eradicate the DoS")
	}
}

func TestNetworkDetectOnly(t *testing.T) {
	n := NewNetwork(Rate50k)
	ids, err := n.AddECU(ECUConfig{Name: "ids", ID: 0x300, Defense: DefenseDetectOnly})
	if err != nil {
		t.Fatal(err)
	}
	att := n.AddTargetedDoSAttacker("dos", 0x060)
	if err := n.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ids.DefenseStats().Detections == 0 {
		t.Error("IDS mode should detect")
	}
	if ids.DefenseStats().Counterattacks != 0 {
		t.Error("IDS mode must not counterattack")
	}
	if att.Controller().Stats().TxSuccess == 0 {
		t.Error("attack should proceed under detection-only")
	}
}

func TestOBDPlugInMidSimulation(t *testing.T) {
	// The Sec. V-F flow through the public API: run undefended, then attach
	// a defense dongle mid-simulation via AttachNode.
	n := NewNetwork(Rate50k)
	victim, err := n.AddECU(ECUConfig{Name: "pam", ID: 0x260, Period: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// A peer ECU keeps the bus alive (ACKs) once the attacker is unplugged.
	if _, err := n.AddECU(ECUConfig{Name: "cluster", ID: 0x400}); err != nil {
		t.Fatal(err)
	}
	att := n.AddTargetedDoSAttacker("obd", 0x25F)
	if err := n.Run(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	starved := victim.TransmittedFrames()
	if starved > 2 {
		t.Fatalf("victim transmitted %d frames under DoS", starved)
	}
	// Build a dongle through the internal API surface exposed by the ECU on
	// another network... simpler: a second defended network is not needed —
	// reuse the attack-side; here we verify Detach stops the attack instead.
	if !n.DetachNode(att) {
		t.Fatal("detach failed")
	}
	if err := n.Run(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if victim.TransmittedFrames() <= starved {
		t.Error("victim should recover after the attacker is unplugged")
	}
}

func TestECUIgnoresOwnSpoofSuppression(t *testing.T) {
	// Two defended ECUs coexisting: each transmits its own ID periodically
	// without triggering the other or itself.
	n := NewNetwork(Rate50k)
	a, err := n.AddECU(ECUConfig{Name: "a", ID: 0x100, Period: 25 * time.Millisecond, Defense: DefenseFull})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddECU(ECUConfig{Name: "b", ID: 0x200, Period: 25 * time.Millisecond, Defense: DefenseFull})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if a.DefenseStats().Counterattacks != 0 || b.DefenseStats().Counterattacks != 0 {
		t.Errorf("false-positive counterattacks: a=%d b=%d",
			a.DefenseStats().Counterattacks, b.DefenseStats().Counterattacks)
	}
	if a.TransmittedFrames() < 30 || b.TransmittedFrames() < 30 {
		t.Errorf("periodic traffic suppressed: a=%d b=%d", a.TransmittedFrames(), b.TransmittedFrames())
	}
	if a.TEC() != 0 || b.TEC() != 0 {
		t.Errorf("error counters moved: a=%d b=%d", a.TEC(), b.TEC())
	}
}

func TestAddRestbusValidation(t *testing.T) {
	n := NewNetwork(Rate500k)
	if _, err := n.AddRestbus(restbus.VehB, 5, 0.5); err == nil {
		t.Error("out-of-range bus index accepted")
	}
}

func TestReExportedTypesUsable(t *testing.T) {
	var f Frame = Frame{ID: ID(0x123), Data: []byte{1}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if !can.ID(0x123).Valid() {
		t.Fatal("sanity")
	}
	if Rate50k.BitDuration() != 20*time.Microsecond {
		t.Error("50 kbit/s bit time should be 20µs")
	}
}

func TestFacadeFDTraffic(t *testing.T) {
	n := NewNetwork(Rate500k)
	tx, err := n.AddECU(ECUConfig{Name: "tx", ID: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := n.AddECU(ECUConfig{Name: "rx", ID: 0x200})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(Frame{ID: 0x100, FD: true, Data: make([]byte, 48)}); err != nil {
		t.Fatal(err)
	}
	if err := n.RunBits(1000); err != nil {
		t.Fatal(err)
	}
	if rx.Controller().Stats().RxSuccess != 1 {
		t.Error("FD frame not delivered through the facade")
	}
}

func TestFacadeBaselineHelpers(t *testing.T) {
	// Parrot must BE the ECU that owns the defended ID — a genuine frame
	// from a co-resident ECU with the same ID would read as a spoof.
	n := NewNetwork(Rate50k)
	if _, err := n.AddECU(ECUConfig{Name: "peer", ID: 0x300, Period: 25 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	par := n.AddParrotDefender("parrot", 0x173)
	det := n.AddIDS("ids", 400*time.Millisecond, false)
	// Train the IDS on clean traffic before the attack starts — training on
	// attack traffic would poison the learned baseline.
	if err := n.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	att := n.AddSpoofAttacker("spoofer", 0x173)
	if err := n.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if par.Stats().Detections == 0 {
		t.Error("parrot helper inert")
	}
	if len(det.Alerts()) == 0 {
		t.Error("ids helper inert (the spoofed ID is unknown to the model)")
	}
	if att.Controller().Stats().BusOffEvents == 0 {
		t.Error("parrot should have eradicated the spoofer")
	}
}

func TestFacadeRemoteRequest(t *testing.T) {
	n := NewNetwork(Rate500k)
	owner, err := n.AddECU(ECUConfig{Name: "owner", ID: 0x150})
	if err != nil {
		t.Fatal(err)
	}
	requester, err := n.AddECU(ECUConfig{Name: "req", ID: 0x400})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := requester.Send(Frame{ID: 0x150, Remote: true, RequestLen: 2}); err != nil {
		t.Fatal(err)
	}
	if err := n.RunBits(300); err != nil {
		t.Fatal(err)
	}
	if owner.Controller().Stats().RxSuccess != 1 {
		t.Error("remote request not delivered through the facade")
	}
}
