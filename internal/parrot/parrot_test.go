package parrot

import (
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/trace"
)

func TestParrotDetectsAfterCompleteFrame(t *testing.T) {
	b := bus.New(bus.Rate50k)
	d := New(Config{Name: "parrot", OwnID: 0x173})
	b.Attach(d)
	witness := controller.New(controller.Config{Name: "w", AutoRecover: true})
	b.Attach(witness)

	spoofer := controller.New(controller.Config{Name: "spoofer", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x173, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	b.Run(200)
	if d.Stats().Detections != 1 {
		t.Fatalf("detections = %d, want 1 (after the complete first instance)", d.Stats().Detections)
	}
	// The first instance got through untouched — Parrot's inherent latency.
	if spoofer.Stats().TxSuccess != 1 {
		t.Errorf("first spoofed frame should complete, success=%d", spoofer.Stats().TxSuccess)
	}
	if !d.Counterattacking() {
		t.Error("counterattack should be armed after detection")
	}
}

func TestParrotIgnoresOtherIDs(t *testing.T) {
	b := bus.New(bus.Rate50k)
	d := New(Config{Name: "parrot", OwnID: 0x173})
	b.Attach(d)
	other := controller.New(controller.Config{Name: "o", AutoRecover: true})
	b.Attach(other)
	if err := other.Enqueue(can.Frame{ID: 0x200, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.Run(200)
	if d.Stats().Detections != 0 || d.Counterattacking() {
		t.Error("Parrot reacted to a foreign ID")
	}
}

func TestParrotBusesOffPersistentSpoofer(t *testing.T) {
	b := bus.New(bus.Rate50k)
	d := New(Config{Name: "parrot", OwnID: 0x173})
	b.Attach(d)
	witness := controller.New(controller.Config{Name: "w", AutoRecover: true})
	b.Attach(witness)
	att := attack.NewFabrication("spoofer", 0x173, []byte{0xFF, 0xFF, 0xFF, 0xFF}, 0)
	b.Attach(att)

	if !b.RunUntil(func() bool { return att.Controller().State() == controller.BusOff }, 30_000) {
		t.Fatalf("spoofer never bused off (TEC=%d, parrot TEC=%d, collisions=%d)",
			att.Controller().TEC(), d.Controller().TEC(), d.Stats().Collisions)
	}
	if d.Controller().State() == controller.BusOff {
		t.Error("Parrot itself must survive the counterattack")
	}
	if d.Stats().Collisions == 0 {
		t.Error("bus-off without collisions is impossible for Parrot")
	}
	t.Logf("spoofer bused off after %d bits; parrot TEC=%d, collisions=%d, flood frames=%d",
		b.Now(), d.Controller().TEC(), d.Stats().Collisions, d.Stats().FloodFrames)
}

func TestParrotFloodSaturatesBus(t *testing.T) {
	// Sec. V-E: during the counterattack the bus load approaches 97.7%.
	b := bus.New(bus.Rate50k)
	rec := trace.NewRecorder()
	b.AttachTap(rec)
	d := New(Config{Name: "parrot", OwnID: 0x173, QuietFrames: 1 << 30}) // never stand down
	b.Attach(d)
	witness := controller.New(controller.Config{Name: "w", AutoRecover: true})
	b.Attach(witness)

	// One complete spoof instance arms the flood, then the spoofer goes
	// silent; Parrot keeps flooding.
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x173, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(200 * time.Millisecond)

	events := trace.Decode(rec.Bits(), rec.Start())
	load := trace.Load(events, int64(rec.Len()))
	if load < 0.90 {
		t.Errorf("flood bus load = %.1f%%, want ≳90%% (paper: ≈97.7%%)", load*100)
	}
	t.Logf("Parrot counterattack bus load: %.1f%%", load*100)
}

func TestParrotStandsDownAfterQuiet(t *testing.T) {
	b := bus.New(bus.Rate50k)
	d := New(Config{Name: "parrot", OwnID: 0x173, QuietFrames: 4})
	b.Attach(d)
	witness := controller.New(controller.Config{Name: "w", AutoRecover: true})
	b.Attach(witness)
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x173, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(100 * time.Millisecond)
	if d.Counterattacking() {
		t.Error("Parrot should stand down after uncontested flood frames")
	}
	if d.Stats().FloodFrames < 4 {
		t.Errorf("flood frames = %d, want ≥ QuietFrames", d.Stats().FloodFrames)
	}
}

func TestParrotStarvesBenignTrafficDuringFlood(t *testing.T) {
	// The cost Table I charges Parrot for: its counterattack blocks the
	// whole bus, unlike MichiCAN's 7-bit pull.
	b := bus.New(bus.Rate50k)
	d := New(Config{Name: "parrot", OwnID: 0x050, QuietFrames: 1 << 30})
	b.Attach(d)
	benign := controller.New(controller.Config{Name: "benign", AutoRecover: true})
	b.Attach(benign)
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x050, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(20 * time.Millisecond) // flood armed and running
	// Now benign traffic with a LOWER priority than the flood ID tries to go
	// out repeatedly.
	if err := benign.Enqueue(can.Frame{ID: 0x400, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(100 * time.Millisecond)
	if benign.Stats().TxSuccess != 0 {
		t.Errorf("lower-priority frame got through Parrot's flood (%d)", benign.Stats().TxSuccess)
	}
}
