// Package parrot implements the Parrot baseline (Dagan & Wool [18]), the
// closest prior work the paper compares against (Sec. I, V-E).
//
// Parrot is a software-only anti-spoofing defense: each ECU listens for
// complete frames carrying its own CAN ID. The first spoofed instance is
// used purely for detection; from the second instance on, Parrot launches a
// brute-force counterattack — it floods the bus with frames carrying the
// same ID and an all-dominant payload so that one of them collides bit-for-
// bit with the attacker's next retransmission and destroys it. The flood is
// Parrot's weakness: during a counterattack the bus load approaches 100%
// (the paper computes 125/128 ≈ 97.7%), all other traffic is starved, and
// detection happens only after a complete frame rather than during
// arbitration.
package parrot

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
)

// Stats accumulates a Parrot defender's observable behaviour.
type Stats struct {
	// Detections counts spoofed frames observed (complete frames carrying
	// the defender's own ID).
	Detections int
	// FloodFrames counts counterattack frames enqueued.
	FloodFrames int
	// CounterattackBits counts bit times spent in counterattack mode — the
	// window during which Parrot monopolizes the bus.
	CounterattackBits int64
	// Collisions counts transmit errors during counterattacks (flood frames
	// that actually met the attacker on the wire).
	Collisions int
}

// Config parameterizes a Parrot defender.
type Config struct {
	// Name identifies the defender.
	Name string
	// OwnID is the CAN ID this ECU transmits and therefore defends.
	OwnID can.ID
	// QuietFrames is the number of consecutive uncontested flood frames
	// after which Parrot concludes the attacker is gone and stands down.
	// Defaults to 16.
	QuietFrames int
	// MaxTEC caps the defender's own transmit error counter: when reached,
	// Parrot pauses flooding until a success brings it down, so the defense
	// does not bus itself off alongside the attacker. The default of 200
	// deliberately lets Parrot ride the error-active collision lockstep
	// (both TECs climb to 128 together) into the error-passive regime,
	// where the attacker's passive error flags stop destroying the flood
	// frames and only the attacker keeps bleeding TEC. Defaults to 200.
	MaxTEC int
	// OnDetect fires on each spoofed frame observed.
	OnDetect func(t bus.BitTime)
}

// Defender is a Parrot-equipped ECU. It implements bus.Node.
type Defender struct {
	cfg   Config
	ctl   *controller.Controller
	stats Stats

	counterattacking bool
	quietRun         int
	// spoofDLC mirrors the payload length of the observed spoofed frame:
	// the flood frame must match the attacker's DLC bit-for-bit, otherwise a
	// shorter attacker DLC (leading dominant bit) would win the collision
	// and destroy the flood frame instead.
	spoofDLC int
}

var _ bus.Node = (*Defender)(nil)

// New creates a Parrot defender.
func New(cfg Config) *Defender {
	if cfg.QuietFrames <= 0 {
		cfg.QuietFrames = 16
	}
	if cfg.MaxTEC <= 0 {
		cfg.MaxTEC = 200
	}
	d := &Defender{cfg: cfg}
	d.ctl = controller.New(controller.Config{
		Name:        cfg.Name,
		AutoRecover: true,
		OnReceive:   d.onReceive,
		OnTransmit:  d.onTransmit,
		OnError:     d.onError,
	})
	return d
}

// Controller exposes the defender's protocol controller.
func (d *Defender) Controller() *controller.Controller { return d.ctl }

// Stats returns a copy of the accumulated statistics.
func (d *Defender) Stats() Stats { return d.stats }

// Counterattacking reports whether the flood is currently active.
func (d *Defender) Counterattacking() bool { return d.counterattacking }

// Enqueue schedules one of the ECU's legitimate frames.
func (d *Defender) Enqueue(f can.Frame) error { return d.ctl.Enqueue(f) }

// onReceive fires for every complete frame on the bus. A frame carrying the
// defender's own ID was necessarily sent by another node — a spoof. The
// first instance only arms the counterattack (Parrot's extra latency versus
// MichiCAN); the flood starts immediately after.
func (d *Defender) onReceive(t bus.BitTime, f can.Frame) {
	if f.ID != d.cfg.OwnID {
		return
	}
	d.stats.Detections++
	if d.cfg.OnDetect != nil {
		d.cfg.OnDetect(t)
	}
	d.counterattacking = true
	d.quietRun = 0
	d.spoofDLC = len(f.Data)
}

// onTransmit tracks uncontested flood frames to decide when to stand down.
func (d *Defender) onTransmit(_ bus.BitTime, f can.Frame) {
	if !d.counterattacking || f.ID != d.cfg.OwnID {
		return
	}
	d.quietRun++
	if d.quietRun >= d.cfg.QuietFrames {
		d.counterattacking = false
	}
}

// onError counts collisions: a transmit error during the counterattack means
// a flood frame met the attacker's retransmission.
func (d *Defender) onError(_ bus.BitTime, _ controller.ErrorKind, transmitting bool) {
	if d.counterattacking && transmitting {
		d.stats.Collisions++
		d.quietRun = 0
	}
}

// Drive implements bus.Node.
func (d *Defender) Drive(t bus.BitTime) can.Level { return d.ctl.Drive(t) }

// Observe implements bus.Node: while counterattacking, keep the mailbox
// topped up with all-dominant-payload flood frames so one starts back-to-
// back with every attacker retransmission.
func (d *Defender) Observe(t bus.BitTime, level can.Level) {
	if d.counterattacking {
		d.stats.CounterattackBits++
		if d.ctl.PendingTx() == 0 && d.ctl.TEC() < d.cfg.MaxTEC {
			// All-zero payload at the attacker's DLC: every contested bit is
			// dominant, so the flood frame wins the collision and the
			// attacker takes the error. In the error-active phase the
			// attacker's active flag still destroys the flood frame too
			// (both TECs ramp); once both nodes are error-passive the
			// attacker's flag turns recessive, the flood frame completes,
			// and only the attacker keeps bleeding TEC — Parrot survives.
			if err := d.ctl.Enqueue(can.Frame{ID: d.cfg.OwnID, Data: make([]byte, d.spoofDLC)}); err == nil {
				d.stats.FloodFrames++
			}
		}
	}
	d.ctl.Observe(t, level)
}
