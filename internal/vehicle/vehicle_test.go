package vehicle

import (
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/restbus"
)

func TestMatrixWellFormed(t *testing.T) {
	m := Matrix()
	if len(m.Messages) < 8 {
		t.Fatalf("matrix too small: %d messages", len(m.Messages))
	}
	seen := map[can.ID]bool{}
	last := can.ID(0)
	for i, msg := range m.Messages {
		if seen[msg.ID] {
			t.Errorf("duplicate ID %v", msg.ID)
		}
		seen[msg.ID] = true
		if i > 0 && msg.ID < last {
			t.Error("matrix not sorted by ID")
		}
		last = msg.ID
	}
	for _, id := range []can.ID{0x260, 0x264, 0x26A} {
		if !seen[id] {
			t.Errorf("ParkSense ID %v missing", id)
		}
	}
	if seen[AttackID] {
		t.Error("the attack ID 0x25F must not be a legitimate message")
	}
}

func TestAttackGeometry(t *testing.T) {
	if AttackID != ParkSenseLowestID-1 {
		t.Errorf("attack ID %v should sit one below the lowest ParkSense ID %v",
			AttackID, ParkSenseLowestID)
	}
}

func TestDashboardHealthy(t *testing.T) {
	b := bus.New(bus.Rate50k)
	b.Attach(restbus.NewReplayer("pacifica", Matrix(), bus.Rate50k, nil))
	dash := NewDashboard(bus.Rate50k)
	b.Attach(dash)
	b.RunFor(500 * time.Millisecond)
	if dash.Status() != Available {
		t.Errorf("healthy vehicle dashboard = %v", dash.Status())
	}
	if len(dash.Transitions()) != 0 {
		t.Errorf("unexpected transitions: %v", dash.Transitions())
	}
}

func TestDashboardDegradesUnderDoS(t *testing.T) {
	b := bus.New(bus.Rate50k)
	b.Attach(restbus.NewReplayer("pacifica", Matrix(), bus.Rate50k, nil))
	dash := NewDashboard(bus.Rate50k)
	b.Attach(dash)
	b.RunFor(200 * time.Millisecond)
	b.Attach(attack.NewTargetedDoS("obd", AttackID))
	b.RunFor(300 * time.Millisecond)
	if dash.Status() != Unavailable {
		t.Fatalf("dashboard = %v under DoS, want unavailable", dash.Status())
	}
	if got := dash.Status().String(); got != "PARKSENSE UNAVAILABLE SERVICE REQUIRED" {
		t.Errorf("dashboard text = %q", got)
	}
}

func TestDashboardRecovers(t *testing.T) {
	b := bus.New(bus.Rate50k)
	b.Attach(restbus.NewReplayer("pacifica", Matrix(), bus.Rate50k, nil))
	dash := NewDashboard(bus.Rate50k)
	b.Attach(dash)
	att := attack.NewTargetedDoS("obd", AttackID)
	b.RunFor(100 * time.Millisecond)
	b.Attach(att)
	b.RunFor(300 * time.Millisecond)
	if dash.Status() != Unavailable {
		t.Fatal("attack should degrade the dashboard first")
	}
	b.Detach(att)
	b.RunFor(300 * time.Millisecond)
	if dash.Status() != Available {
		t.Error("dashboard should recover once the attack stops")
	}
	if len(dash.Transitions()) != 2 {
		t.Errorf("transitions = %v, want unavailable→available", dash.Transitions())
	}
}
