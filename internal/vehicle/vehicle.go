// Package vehicle models the on-vehicle test platform of Sec. V-F: a 2017
// Chrysler Pacifica Hybrid whose ParkSense park-assist feature depends on a
// set of CAN messages, a dashboard that declares the feature unavailable
// when those messages stop arriving, and an OBD-II port through which both
// the attack hardware and the MichiCAN dongle are connected.
package vehicle

import (
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/restbus"
)

// ParkSense CAN geometry from the paper: the lowest CAN ID relevant to the
// park-assist feature is 0x260, and the attack injects 0x25F — one below —
// as a targeted DoS.
const (
	// ParkSenseLowestID is the highest-priority ParkSense message.
	ParkSenseLowestID can.ID = 0x260
	// AttackID is the ID the paper injects from the OBD-II port.
	AttackID can.ID = 0x25F
)

// parkSenseIDs are the feature's messages (0x260 plus telemetry partners).
var parkSenseIDs = []can.ID{0x260, 0x264, 0x26A}

// Matrix returns the Pacifica's CAN communication matrix: general body/
// powertrain traffic plus the ParkSense message set. Deterministic.
func Matrix() *restbus.Matrix {
	m := &restbus.Matrix{Vehicle: "2017 Chrysler Pacifica Hybrid", Bus: "body"}
	// ParkSense messages: short periods, safety-relevant (automatic braking
	// depends on them per the owner's manual quote in Sec. V-F).
	for i, id := range parkSenseIDs {
		m.Messages = append(m.Messages, restbus.Message{
			ID:          id,
			Transmitter: "PAM", // park-assist module
			DLC:         8,
			Period:      time.Duration(20*(i+1)) * time.Millisecond,
		})
	}
	// Surrounding benign traffic above and below the ParkSense range.
	other := []struct {
		id     can.ID
		period time.Duration
		dlc    int
	}{
		{0x0F1, 10 * time.Millisecond, 8},
		{0x140, 20 * time.Millisecond, 8},
		{0x1A6, 50 * time.Millisecond, 6},
		{0x2FA, 100 * time.Millisecond, 8},
		{0x31C, 100 * time.Millisecond, 4},
		{0x4E0, 200 * time.Millisecond, 8},
		{0x5D2, 500 * time.Millisecond, 3},
	}
	for i, o := range other {
		m.Messages = append(m.Messages, restbus.Message{
			ID:          o.id,
			Transmitter: "ECU-" + string(rune('A'+i)),
			DLC:         o.dlc,
			Period:      o.period,
		})
	}
	// Keep ascending ID order.
	for i := 1; i < len(m.Messages); i++ {
		for j := i; j > 0 && m.Messages[j-1].ID > m.Messages[j].ID; j-- {
			m.Messages[j-1], m.Messages[j] = m.Messages[j], m.Messages[j-1]
		}
	}
	return m
}

// Status is the dashboard's view of the park-assist feature.
type Status uint8

const (
	// Available means ParkSense telemetry is arriving on time.
	Available Status = iota + 1
	// Unavailable corresponds to the paper's observed cluster message
	// "PARKSENSE UNAVAILABLE SERVICE REQUIRED".
	Unavailable
)

// String renders the dashboard text.
func (s Status) String() string {
	if s == Unavailable {
		return "PARKSENSE UNAVAILABLE SERVICE REQUIRED"
	}
	return "ParkSense available"
}

// Transition is one dashboard status change.
type Transition struct {
	At     bus.BitTime
	Status Status
}

// Dashboard is the instrument cluster: a receiver that watches the primary
// ParkSense message and declares the feature unavailable when it stops
// arriving (the failure mode the paper triggers). It implements bus.Node.
type Dashboard struct {
	ctl         *controller.Controller
	rate        bus.Rate
	timeoutBits int64
	lastSeen    bus.BitTime
	status      Status
	transitions []Transition
	okRun       int
}

var _ bus.Node = (*Dashboard)(nil)

// NewDashboard creates the cluster node. The feature times out after missing
// roughly three periods of the primary ParkSense message.
func NewDashboard(rate bus.Rate) *Dashboard {
	d := &Dashboard{
		rate:        rate,
		timeoutBits: rate.Bits(3 * 20 * time.Millisecond),
		status:      Available,
	}
	d.ctl = controller.New(controller.Config{
		Name:        "cluster",
		AutoRecover: true,
		OnReceive: func(t bus.BitTime, f can.Frame) {
			if f.ID == ParkSenseLowestID {
				d.lastSeen = t
				if d.status == Unavailable {
					d.okRun++
					if d.okRun >= 3 {
						d.setStatus(t, Available)
					}
				}
			}
		},
	})
	return d
}

// Status returns the current dashboard status.
func (d *Dashboard) Status() Status { return d.status }

// Transitions returns the status history.
func (d *Dashboard) Transitions() []Transition {
	out := make([]Transition, len(d.transitions))
	copy(out, d.transitions)
	return out
}

func (d *Dashboard) setStatus(t bus.BitTime, s Status) {
	if d.status == s {
		return
	}
	d.status = s
	d.okRun = 0
	d.transitions = append(d.transitions, Transition{At: t, Status: s})
}

// Drive implements bus.Node.
func (d *Dashboard) Drive(t bus.BitTime) can.Level { return d.ctl.Drive(t) }

// Observe implements bus.Node: receive traffic and run the timeout watchdog.
func (d *Dashboard) Observe(t bus.BitTime, level can.Level) {
	d.ctl.Observe(t, level)
	if d.status == Available && int64(t-d.lastSeen) > d.timeoutBits {
		d.setStatus(t, Unavailable)
	}
}
