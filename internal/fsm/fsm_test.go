package fsm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"michican/internal/can"
)

func mustIVN(t *testing.T, ids ...can.ID) *IVN {
	t.Helper()
	v, err := NewIVN(ids)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewIVNValidation(t *testing.T) {
	if _, err := NewIVN(nil); !errors.Is(err, ErrEmptyIVN) {
		t.Error("empty IVN accepted")
	}
	if _, err := NewIVN([]can.ID{0x10, 0x10}); !errors.Is(err, ErrDuplicateID) {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewIVN([]can.ID{0x800}); !errors.Is(err, can.ErrIDRange) {
		t.Error("out-of-range ID accepted")
	}
}

func TestIVNOrdering(t *testing.T) {
	v := mustIVN(t, 0x300, 0x005, 0x0F0)
	ids := v.IDs()
	want := []can.ID{0x005, 0x0F0, 0x300}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
	if v.Index(0x0F0) != 1 || v.Index(0x123) != -1 {
		t.Error("Index lookup wrong")
	}
	if !v.Contains(0x005) || v.Contains(0x006) {
		t.Error("Contains lookup wrong")
	}
}

// TestDetectionSetPaperExample reproduces the worked example from Sec. IV-A:
// 𝔼 = {0x005, 0x00F}. The ECU with 0x00F must flag 0x000–0x004 and
// 0x006–0x00F (its own ID included) but not 0x005.
func TestDetectionSetPaperExample(t *testing.T) {
	v := mustIVN(t, 0x005, 0x00F)
	d, err := NewDetectionSet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := can.ID(0); id <= 0x004; id++ {
		if !d.Contains(id) {
			t.Errorf("%s should be flagged (DoS range)", id)
		}
	}
	if d.Contains(0x005) {
		t.Error("0x005 is the other legitimate ECU; must not be flagged")
	}
	for id := can.ID(0x006); id <= 0x00F; id++ {
		if !d.Contains(id) {
			t.Errorf("%s should be flagged", id)
		}
	}
	if d.Contains(0x010) {
		t.Error("IDs above own must not be flagged (miscellaneous attacks are benign)")
	}
	if d.Size() != 15 {
		t.Errorf("|D| = %d, want 15", d.Size())
	}
}

func TestDetectionSetLowestPriorityECU(t *testing.T) {
	// The highest-priority ECU (lowest ID) flags everything at or below its
	// own ID except nothing (no higher-priority legitimate IDs exist).
	v := mustIVN(t, 0x005, 0x00F)
	d, err := NewDetectionSet(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := can.ID(0); id <= 0x005; id++ {
		if !d.Contains(id) {
			t.Errorf("%s should be flagged by ECU_1", id)
		}
	}
	if d.Contains(0x006) {
		t.Error("ECU_1 cannot judge IDs above its own")
	}
}

func TestNewDetectionSetIndexRange(t *testing.T) {
	v := mustIVN(t, 0x10)
	if _, err := NewDetectionSet(v, 1); err == nil {
		t.Error("out-of-range ECU index accepted")
	}
	if _, err := NewSpoofOnlySet(v, -1); err == nil {
		t.Error("negative ECU index accepted")
	}
}

func TestSpoofOnlySet(t *testing.T) {
	v := mustIVN(t, 0x100, 0x200, 0x300)
	d, err := NewSpoofOnlySet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 || !d.Contains(0x200) {
		t.Fatalf("light scenario set must contain exactly the own ID; got %v", d.IDs())
	}
}

func TestNewCustomSet(t *testing.T) {
	d, err := NewCustomSet([]can.ID{5, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Errorf("duplicates must collapse: size %d", d.Size())
	}
	if _, err := NewCustomSet([]can.ID{0x900}); err == nil {
		t.Error("invalid ID accepted")
	}
}

func TestFSMClassifyMatchesSet(t *testing.T) {
	v := mustIVN(t, 0x005, 0x064, 0x173, 0x25F, 0x3E8)
	for i := 0; i < v.Size(); i++ {
		d, err := NewDetectionSet(v, i)
		if err != nil {
			t.Fatal(err)
		}
		f := Build(d)
		if _, err := f.Stats(d); err != nil {
			t.Errorf("ECU %d: %v", i, err)
		}
	}
}

func TestFSMStreamingMatchesClassify(t *testing.T) {
	v := mustIVN(t, 0x064, 0x173)
	d, err := NewDetectionSet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	for id := can.ID(0); id <= can.MaxID; id++ {
		want, wantBits := f.Classify(id)
		f.Reset()
		var got Decision
		gotBits := 0
		for i := 0; i < can.IDBits; i++ {
			got = f.Step(id.Bit(i))
			if got != Undecided && gotBits == 0 {
				gotBits = i + 1
			}
		}
		if got != want {
			t.Fatalf("ID %s: streaming %v, batch %v", id, got, want)
		}
		if want != Undecided && gotBits != wantBits {
			t.Fatalf("ID %s: streaming decided at %d, batch at %d", id, gotBits, wantBits)
		}
	}
}

func TestFSMStepAfterDecisionIsStable(t *testing.T) {
	d, err := NewCustomSet([]can.ID{0})
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	f.Reset()
	for i := 0; i < can.IDBits; i++ {
		f.Step(can.Dominant)
	}
	dec := f.Decided()
	for i := 0; i < 5; i++ {
		if got := f.Step(can.Recessive); got != dec {
			t.Fatal("decision changed after being reached")
		}
	}
}

func TestFSMEarlyDecisionDominantPrefix(t *testing.T) {
	// With 𝔻 = [0, 0x0FF] (all IDs with the top 3 bits dominant), the FSM
	// must decide malicious after exactly 3 bits for any ID inside.
	ids := make([]can.ID, 0x100)
	for i := range ids {
		ids[i] = can.ID(i)
	}
	d, err := NewCustomSet(ids)
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	dec, bits := f.Classify(0x012)
	if dec != Malicious || bits != 3 {
		t.Fatalf("Classify(0x012) = %v after %d bits, want malicious after 3", dec, bits)
	}
	dec, bits = f.Classify(0x100)
	if dec != Benign || bits != 3 {
		t.Fatalf("Classify(0x100) = %v after %d bits, want benign after 3", dec, bits)
	}
}

func TestFSMEmptySet(t *testing.T) {
	d, err := NewCustomSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	if f.Size() != 1 {
		t.Errorf("empty set should build a single benign leaf, size %d", f.Size())
	}
	dec, bits := f.Classify(0x123)
	if dec != Benign || bits != 0 {
		t.Errorf("empty set: Classify = %v/%d", dec, bits)
	}
}

func TestFSMFullSet(t *testing.T) {
	ids := make([]can.ID, int(can.MaxID)+1)
	for i := range ids {
		ids[i] = can.ID(i)
	}
	d, err := NewCustomSet(ids)
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	if f.Size() != 1 {
		t.Errorf("full set should collapse to one malicious leaf, size %d", f.Size())
	}
}

// TestFSMEquivalenceProperty: for random IVNs, the FSM decision equals the
// naive membership test for every possible identifier.
func TestFSMEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%40 + 2
		v, err := RandomIVN(rng, n)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		d, err := NewDetectionSet(v, i)
		if err != nil {
			return false
		}
		f := Build(d)
		_, err = f.Stats(d)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIVNProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v, err := RandomIVN(rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 30 {
		t.Fatalf("size %d", v.Size())
	}
	ids := v.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("IDs not strictly ascending")
		}
	}
	if _, err := RandomIVN(rng, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomIVN(rng, 5000); err == nil {
		t.Error("n beyond ID space accepted")
	}
}

func TestFSMDot(t *testing.T) {
	d, err := NewCustomSet([]can.ID{0x7FF})
	if err != nil {
		t.Fatal(err)
	}
	f := Build(d)
	dot := f.Dot("test")
	if len(dot) == 0 || dot[0] != 'd' {
		t.Error("dot output malformed")
	}
}

// TestDetectionLatencyShape checks the headline Sec. V-B result at reduced
// scale: over random IVNs, the mean detection bit position is well below the
// full 11 bits (the paper reports a mean of ~9).
func TestDetectionLatencyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	total, count := 0.0, 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(62)
		v, err := RandomIVN(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		i := rng.Intn(n)
		d, err := NewDetectionSet(v, i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Size() == 0 {
			continue
		}
		stats, err := Build(d).Stats(d)
		if err != nil {
			t.Fatal(err)
		}
		total += stats.MeanBits
		count++
	}
	mean := total / float64(count)
	if mean >= float64(can.IDBits) {
		t.Errorf("mean detection position %.2f should be below 11", mean)
	}
	if mean < 4 || mean > 10.5 {
		t.Errorf("mean detection position %.2f outside plausible band [4,10.5]", mean)
	}
	t.Logf("mean detection bit position over %d random FSMs: %.2f (paper: ~9)", count, mean)
}
