package fsm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"michican/internal/can"
)

func TestMarshalRoundTrip(t *testing.T) {
	v := mustIVN(t, 0x064, 0x173, 0x25F)
	ds, err := NewDetectionSet(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	original := Build(ds)
	restored, err := Unmarshal(original.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != original.Size() {
		t.Fatalf("size %d != %d", restored.Size(), original.Size())
	}
	for id := can.ID(0); id <= can.MaxID; id++ {
		d1, b1 := original.Classify(id)
		d2, b2 := restored.Classify(id)
		if d1 != d2 || b1 != b2 {
			t.Fatalf("ID %s: (%v,%d) vs (%v,%d)", id, d1, b1, d2, b2)
		}
	}
}

// TestMarshalRoundTripProperty: any generated FSM survives the image format.
func TestMarshalRoundTripProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%30 + 2
		v, err := RandomIVN(rng, n)
		if err != nil {
			return false
		}
		ds, err := NewDetectionSet(v, rng.Intn(n))
		if err != nil {
			return false
		}
		original := Build(ds)
		restored, err := Unmarshal(original.Marshal())
		if err != nil {
			return false
		}
		_, err = restored.Stats(ds)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	v := mustIVN(t, 0x100, 0x200)
	ds, err := NewDetectionSet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := Build(ds).Marshal()

	tests := []struct {
		name  string
		image []byte
	}{
		{"empty", nil},
		{"short", good[:5]},
		{"bad magic", append([]byte("XFSM"), good[4:]...)},
		{"bad version", func() []byte {
			b := append([]byte{}, good...)
			b[4] = 99
			return b
		}()},
		{"truncated body", good[:len(good)-3]},
		{"trailing bytes", append(append([]byte{}, good...), 0)},
		{"bad kind", func() []byte {
			b := append([]byte{}, good...)
			b[9] = 7
			return b
		}()},
		{"zero nodes", func() []byte {
			b := append([]byte{}, good[:9]...)
			b[5], b[6], b[7], b[8] = 0, 0, 0, 0
			return b
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.image); err == nil {
				t.Error("corrupt image accepted")
			}
		})
	}
}

func TestUnmarshalChildOutOfRange(t *testing.T) {
	// Hand-build an image whose internal node points beyond the node count.
	image := []byte("MFSM")
	image = append(image, 1)          // version
	image = append(image, 0, 0, 0, 1) // 1 node
	image = append(image, 0)          // internal node...
	image = append(image, 0, 0, 0, 9) // child0 out of range
	image = append(image, 0, 0, 0, 0) // child1
	_, err := Unmarshal(image)
	if !errors.Is(err, ErrBadImage) {
		t.Fatalf("want ErrBadImage, got %v", err)
	}
}

func TestMarshalStable(t *testing.T) {
	v := mustIVN(t, 0x050, 0x300)
	ds, err := NewDetectionSet(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := Build(ds).Marshal()
	b := Build(ds).Marshal()
	if string(a) != string(b) {
		t.Error("image not deterministic")
	}
}
