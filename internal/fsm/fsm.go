// Package fsm implements MichiCAN's detection machinery (Sec. IV-A): the
// per-ECU detection range 𝔻 of malicious CAN identifiers and the binary-tree
// finite state machine that classifies an incoming 11-bit CAN ID bit by bit,
// deciding as early as possible whether the ID is malicious.
//
// The FSM is generated offline (by the OEM, per the paper's initial
// configuration phase — cmd/fsmgen plays that role here) and evaluated online
// by the defense's interrupt handler, one ID bit per nominal bit time.
package fsm

import (
	"errors"
	"fmt"
	"sort"

	"michican/internal/can"
)

// Decision is the FSM's verdict about the CAN ID observed so far.
type Decision uint8

const (
	// Undecided means more ID bits are needed.
	Undecided Decision = iota
	// Malicious means the ID prefix can only complete to an ID in 𝔻; the
	// defense raises the counterattack flag and stops the FSM.
	Malicious
	// Benign means the ID prefix can only complete to IDs outside 𝔻.
	Benign
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case Malicious:
		return "malicious"
	case Benign:
		return "benign"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// IVN is the ordered list 𝔼 of legitimate CAN IDs on the in-vehicle network,
// one per ECU (the paper assumes each unique CAN ID is tied to exactly one
// ECU). Construct with NewIVN to enforce ordering and uniqueness.
type IVN struct {
	ids []can.ID
}

// Errors returned by IVN construction.
var (
	// ErrEmptyIVN indicates that no ECU IDs were supplied.
	ErrEmptyIVN = errors.New("fsm: IVN needs at least one ECU")
	// ErrDuplicateID indicates a CAN ID claimed by two ECUs.
	ErrDuplicateID = errors.New("fsm: duplicate CAN ID in IVN")
)

// NewIVN builds the ordered ECU list 𝔼 from the set of legitimate CAN IDs.
// IDs may be passed in any order; duplicates and out-of-range IDs are
// rejected.
func NewIVN(ids []can.ID) (*IVN, error) {
	if len(ids) == 0 {
		return nil, ErrEmptyIVN
	}
	sorted := make([]can.ID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, id := range sorted {
		if !id.Valid() {
			return nil, fmt.Errorf("%w: %#x", can.ErrIDRange, uint32(id))
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
		}
	}
	return &IVN{ids: sorted}, nil
}

// Size returns the number of ECUs N = |𝔼|.
func (v *IVN) Size() int { return len(v.ids) }

// IDs returns a copy of the ordered ID list (ascending = priority order).
func (v *IVN) IDs() []can.ID {
	out := make([]can.ID, len(v.ids))
	copy(out, v.ids)
	return out
}

// Index returns the position of id within 𝔼, or -1 if the ID is not a
// legitimate ECU ID.
func (v *IVN) Index(id can.ID) int {
	i := sort.Search(len(v.ids), func(k int) bool { return v.ids[k] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return i
	}
	return -1
}

// Contains reports whether id belongs to a legitimate ECU.
func (v *IVN) Contains(id can.ID) bool { return v.Index(id) >= 0 }

// DetectionSet is the set 𝔻 of CAN IDs a particular ECU must flag as
// malicious, represented as a bitmap over the 2048 possible identifiers.
type DetectionSet struct {
	mask [can.MaxID + 1]bool
	n    int
}

// NewDetectionSet builds 𝔻 per Definition IV.4 for the ECU at position i of
// 𝔼 (the "full scenario"): every ID j with 0 ≤ j ≤ 𝔼_i that is not a
// legitimate ID of a higher-priority ECU. The ECU's own ID is included —
// observing it from another node is a spoofing attack (Def. IV.1); lower
// unknown IDs are DoS attacks (Def. IV.2).
func NewDetectionSet(v *IVN, i int) (*DetectionSet, error) {
	if i < 0 || i >= v.Size() {
		return nil, fmt.Errorf("fsm: ECU index %d out of range [0,%d)", i, v.Size())
	}
	var d DetectionSet
	own := v.ids[i]
	for j := can.ID(0); j <= own; j++ {
		legit := v.Contains(j) && j != own
		if !legit {
			d.mask[j] = true
			d.n++
		}
	}
	return &d, nil
}

// NewSpoofOnlySet builds the "light scenario" detection set: only the ECU's
// own ID is flagged (spoofing detection without DoS coverage), used for the
// lower-priority half 𝔼₁ when the IVN is split (Sec. IV-A).
func NewSpoofOnlySet(v *IVN, i int) (*DetectionSet, error) {
	if i < 0 || i >= v.Size() {
		return nil, fmt.Errorf("fsm: ECU index %d out of range [0,%d)", i, v.Size())
	}
	var d DetectionSet
	d.mask[v.ids[i]] = true
	d.n = 1
	return &d, nil
}

// NewCustomSet builds a detection set from an explicit list of malicious
// IDs. It is the hook for deployments that flag additional ranges (e.g. the
// ParkSense protection covering IDs below a feature's lowest ID).
func NewCustomSet(ids []can.ID) (*DetectionSet, error) {
	var d DetectionSet
	for _, id := range ids {
		if !id.Valid() {
			return nil, fmt.Errorf("%w: %#x", can.ErrIDRange, uint32(id))
		}
		if !d.mask[id] {
			d.mask[id] = true
			d.n++
		}
	}
	return &d, nil
}

// Contains reports whether id ∈ 𝔻.
func (d *DetectionSet) Contains(id can.ID) bool {
	return id.Valid() && d.mask[id]
}

// Size returns |𝔻|.
func (d *DetectionSet) Size() int { return d.n }

// IDs returns the malicious IDs in ascending order.
func (d *DetectionSet) IDs() []can.ID {
	out := make([]can.ID, 0, d.n)
	for id := range d.mask {
		if d.mask[id] {
			out = append(out, can.ID(id))
		}
	}
	return out
}
