package fsm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary FSM image format — the artifact the OEM's offline tool patches into
// ECU firmware (Sec. IV-A: "unique FSMs are generated and patched into each
// ECU's source code"):
//
//	magic   [4]byte  "MFSM"
//	version uint8    1
//	nodes   uint32   state count
//	per node:
//	  kind  uint8    0 = internal, 1 = malicious leaf, 2 = benign leaf
//	  child0, child1 uint32 (internal nodes only)
const (
	fsmMagic   = "MFSM"
	fsmVersion = 1
)

// Errors returned by Unmarshal.
var (
	// ErrBadImage indicates a corrupt or truncated FSM image.
	ErrBadImage = errors.New("fsm: bad FSM image")
	// ErrBadVersion indicates an unsupported image version.
	ErrBadVersion = errors.New("fsm: unsupported FSM image version")
)

// Marshal serializes the FSM into its firmware image.
func (f *FSM) Marshal() []byte {
	out := make([]byte, 0, 9+len(f.nodes)*9)
	out = append(out, fsmMagic...)
	out = append(out, fsmVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(f.nodes)))
	for _, n := range f.nodes {
		switch n.decision {
		case Malicious:
			out = append(out, 1)
		case Benign:
			out = append(out, 2)
		default:
			out = append(out, 0)
			out = binary.BigEndian.AppendUint32(out, uint32(n.child[0]))
			out = binary.BigEndian.AppendUint32(out, uint32(n.child[1]))
		}
	}
	return out
}

// Unmarshal reconstructs an FSM from its firmware image, validating the
// structure (magic, version, child indices in range).
func Unmarshal(image []byte) (*FSM, error) {
	if len(image) < 9 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadImage)
	}
	if string(image[:4]) != fsmMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	if image[4] != fsmVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, image[4])
	}
	count := binary.BigEndian.Uint32(image[5:9])
	if count == 0 || count > 1<<20 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrBadImage, count)
	}
	f := &FSM{nodes: make([]treeNode, 0, count)}
	off := 9
	for i := uint32(0); i < count; i++ {
		if off >= len(image) {
			return nil, fmt.Errorf("%w: truncated node %d", ErrBadImage, i)
		}
		kind := image[off]
		off++
		switch kind {
		case 1:
			f.nodes = append(f.nodes, treeNode{child: [2]int32{-1, -1}, decision: Malicious})
		case 2:
			f.nodes = append(f.nodes, treeNode{child: [2]int32{-1, -1}, decision: Benign})
		case 0:
			if off+8 > len(image) {
				return nil, fmt.Errorf("%w: truncated children of node %d", ErrBadImage, i)
			}
			c0 := int32(binary.BigEndian.Uint32(image[off:]))
			c1 := int32(binary.BigEndian.Uint32(image[off+4:]))
			off += 8
			if c0 < 0 || c1 < 0 || uint32(c0) >= count || uint32(c1) >= count {
				return nil, fmt.Errorf("%w: node %d child out of range", ErrBadImage, i)
			}
			f.nodes = append(f.nodes, treeNode{child: [2]int32{c0, c1}})
		default:
			return nil, fmt.Errorf("%w: node %d kind %d", ErrBadImage, i, kind)
		}
	}
	if off != len(image) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(image)-off)
	}
	f.Reset()
	return f, nil
}
