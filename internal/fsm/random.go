package fsm

import (
	"math/rand"

	"michican/internal/can"
)

// RandomIVN draws a random in-vehicle network of n distinct CAN IDs using
// the supplied generator. It backs the paper's detection-latency study
// (Sec. V-B evaluates 160,000 random FSMs).
func RandomIVN(rng *rand.Rand, n int) (*IVN, error) {
	if n <= 0 || n > int(can.MaxID)+1 {
		return nil, ErrEmptyIVN
	}
	seen := make(map[can.ID]struct{}, n)
	ids := make([]can.ID, 0, n)
	for len(ids) < n {
		id := can.ID(rng.Intn(int(can.MaxID) + 1))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	return NewIVN(ids)
}
