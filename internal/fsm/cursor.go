package fsm

import "michican/internal/can"

// Cursor is a non-mutating streaming walker over an FSM. The defense core
// uses it to pre-scan a proposed run of bits (the bus frame fast path's
// PassiveRun query) without disturbing the FSM's own streaming state: the
// proposal may be discarded, and only a later ObserveRun commits it.
type Cursor struct {
	f    *FSM
	eval int32
	done Decision
}

// Cursor returns a walker positioned at the FSM's current streaming state.
func (f *FSM) Cursor() Cursor {
	return Cursor{f: f, eval: f.eval, done: f.done}
}

// RootCursor returns a walker positioned at the machine's start state — the
// state Reset establishes — regardless of the FSM's current streaming
// position. The defense core uses it to pre-scan a span that begins at a
// frame's SOF, where the real FSM would be reset before stepping.
func (f *FSM) RootCursor() Cursor {
	return Cursor{f: f, eval: 0, done: f.nodes[0].decision}
}

// Step consumes the next ID bit exactly as FSM.Step would, but only the
// cursor moves.
func (cu *Cursor) Step(bit can.Level) Decision {
	if cu.done != Undecided {
		return cu.done
	}
	next := cu.f.nodes[cu.eval].child[bit&1]
	cu.eval = next
	cu.done = cu.f.nodes[next].decision
	return cu.done
}

// Decided returns the cursor's decision so far.
func (cu *Cursor) Decided() Decision { return cu.done }

// Restore sets the FSM's streaming state to the cursor's position — the
// inverse of Cursor(). The defense core's splice fast path walks a compiled
// window with a cursor once, memoizes the exit position, and on later cache
// hits restores the FSM directly instead of re-stepping every ID bit. The
// cursor must have been derived from this FSM.
func (f *FSM) Restore(cu Cursor) {
	f.eval = cu.eval
	f.done = cu.done
}
