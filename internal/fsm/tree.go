package fsm

import (
	"fmt"
	"strings"

	"michican/internal/can"
)

// FSM is the earliest-decision binary tree over the 11 CAN ID bits (MSB
// first). Each internal node branches on the next observed ID bit; a subtree
// whose identifiers are entirely inside (or entirely outside) the detection
// set collapses into a Malicious (or Benign) leaf, which is what lets most
// attacks be detected before the full 11-bit ID has been observed
// (Sec. V-B reports a mean detection position of ~9 bits).
type FSM struct {
	nodes []treeNode
	// eval is the streaming cursor used by Step.
	eval int32
	done Decision
}

// treeNode is one state. Leaves carry a decision; internal nodes carry child
// indices for the dominant (0) and recessive (1) transitions.
type treeNode struct {
	child    [2]int32 // -1 on leaves
	decision Decision // Undecided on internal nodes
}

// Build generates the FSM for a detection set. The construction is the
// paper's offline initial-configuration step.
func Build(d *DetectionSet) *FSM {
	f := &FSM{nodes: make([]treeNode, 0, 64)}
	f.build(d, 0, 0, can.MaxID)
	f.Reset()
	return f
}

// build recursively constructs the subtree covering identifier range
// [lo, hi] at the given bit depth and returns its node index.
func (f *FSM) build(d *DetectionSet, depth int, lo, hi can.ID) int32 {
	count := 0
	for id := lo; ; id++ {
		if d.mask[id] {
			count++
		}
		if id == hi {
			break
		}
	}
	idx := int32(len(f.nodes))
	total := int(hi-lo) + 1
	switch {
	case count == total:
		f.nodes = append(f.nodes, treeNode{child: [2]int32{-1, -1}, decision: Malicious})
	case count == 0:
		f.nodes = append(f.nodes, treeNode{child: [2]int32{-1, -1}, decision: Benign})
	default:
		f.nodes = append(f.nodes, treeNode{child: [2]int32{-1, -1}})
		mid := lo + can.ID(total/2)
		left := f.build(d, depth+1, lo, mid-1) // dominant = 0 = lower half
		right := f.build(d, depth+1, mid, hi)  // recessive = 1 = upper half
		f.nodes[idx].child[0] = left
		f.nodes[idx].child[1] = right
	}
	return idx
}

// Reset rewinds the streaming evaluator to the root (done at every SOF).
func (f *FSM) Reset() {
	f.eval = 0
	f.done = f.nodes[0].decision
}

// Step consumes the next CAN ID bit (MSB first) and returns the decision so
// far. Once a decision is reached further calls return it unchanged; the
// defense stops stepping the FSM after a decision to save CPU cycles
// (Algorithm 1, line 11).
func (f *FSM) Step(bit can.Level) Decision {
	if f.done != Undecided {
		return f.done
	}
	next := f.nodes[f.eval].child[bit&1]
	f.eval = next
	f.done = f.nodes[next].decision
	return f.done
}

// Decided returns the current decision of the streaming evaluator.
func (f *FSM) Decided() Decision { return f.done }

// Classify evaluates a complete identifier and returns the decision together
// with the number of ID bits consumed before the decision was reached (the
// detection bit position of Sec. V-B; 11 means the full ID was needed).
func (f *FSM) Classify(id can.ID) (Decision, int) {
	node := int32(0)
	if dec := f.nodes[0].decision; dec != Undecided {
		return dec, 0
	}
	for i := 0; i < can.IDBits; i++ {
		node = f.nodes[node].child[id.Bit(i)&1]
		if dec := f.nodes[node].decision; dec != Undecided {
			return dec, i + 1
		}
	}
	// The tree bottoms out at depth 11 with a decision by construction.
	return f.nodes[node].decision, can.IDBits
}

// Size returns the number of FSM states, the complexity measure behind the
// paper's "CPU load depends on FSM complexity" observation.
func (f *FSM) Size() int { return len(f.nodes) }

// Depth returns the maximum decision depth over all 2048 identifiers.
func (f *FSM) Depth() int {
	max := 0
	for id := can.ID(0); id <= can.MaxID; id++ {
		if _, d := f.Classify(id); d > max {
			max = d
		}
	}
	return max
}

// DetectionStats summarizes how early the FSM detects the IDs it flags.
type DetectionStats struct {
	// Detected counts identifiers classified malicious.
	Detected int
	// MeanBits is the mean detection bit position over detected IDs.
	MeanBits float64
	// MaxBits is the worst-case detection bit position.
	MaxBits int
}

// Stats computes detection statistics against the generating set, verifying
// a 100% detection rate in the process: every ID in d must classify
// malicious and every ID outside must classify benign, or an error is
// returned (the paper's correctness check over 160,000 random FSMs).
func (f *FSM) Stats(d *DetectionSet) (DetectionStats, error) {
	var out DetectionStats
	sum := 0
	for id := can.ID(0); id <= can.MaxID; id++ {
		dec, bits := f.Classify(id)
		want := Benign
		if d.mask[id] {
			want = Malicious
		}
		if dec != want {
			return out, fmt.Errorf("fsm: ID %s classified %v, want %v", id, dec, want)
		}
		if dec == Malicious {
			out.Detected++
			sum += bits
			if bits > out.MaxBits {
				out.MaxBits = bits
			}
		}
	}
	if out.Detected > 0 {
		out.MeanBits = float64(sum) / float64(out.Detected)
	}
	return out, nil
}

// Dot renders the FSM in Graphviz dot syntax (for cmd/fsmgen).
func (f *FSM) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", name)
	for i, n := range f.nodes {
		switch n.decision {
		case Malicious:
			fmt.Fprintf(&b, "  n%d [label=\"MAL\" shape=box style=filled fillcolor=salmon];\n", i)
		case Benign:
			fmt.Fprintf(&b, "  n%d [label=\"OK\" shape=box style=filled fillcolor=palegreen];\n", i)
		default:
			fmt.Fprintf(&b, "  n%d [label=\"\" shape=circle];\n", i)
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"0\"];\n", i, n.child[0])
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"1\"];\n", i, n.child[1])
		}
	}
	b.WriteString("}\n")
	return b.String()
}
