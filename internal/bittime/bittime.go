// Package bittime simulates MichiCAN's software bit sampling below bit
// granularity (Sec. IV-C). The protocol simulation in internal/bus works in
// whole bit quanta — correct for arbitration and error handling — but the
// paper's synchronization design lives inside the bit: a timer interrupt
// must land at the 70% sample point of every bit despite oscillator drift,
// interrupt jitter, and the constant frame-reset work at SOF (compensated by
// the fudge factor).
//
// This package renders a bit sequence as a continuous waveform, drives a
// software sampler with a drifting, jittering local clock that hard-
// synchronizes at the SOF edge, and reports whether every bit was sampled
// correctly — the experiment that justifies treating the defense's RX path
// as bit-perfect in the main simulation.
package bittime

import (
	"errors"
	"math/rand"
	"time"

	"michican/internal/can"
	"michican/internal/mcu"
)

// Waveform is a wire-level signal: a bit sequence stretched over time.
type Waveform struct {
	bitTime time.Duration
	levels  []can.Level
}

// ErrNoEdge indicates a waveform without a SOF edge to synchronize on.
var ErrNoEdge = errors.New("bittime: no falling edge in waveform")

// NewWaveform renders the levels at the given nominal bit time.
func NewWaveform(levels []can.Level, bitTime time.Duration) *Waveform {
	cp := make([]can.Level, len(levels))
	copy(cp, levels)
	return &Waveform{bitTime: bitTime, levels: cp}
}

// At returns the wire level at absolute time t (recessive beyond the ends).
func (w *Waveform) At(t time.Duration) can.Level {
	if t < 0 {
		return can.Recessive
	}
	i := int(t / w.bitTime)
	if i >= len(w.levels) {
		return can.Recessive
	}
	return w.levels[i]
}

// Duration returns the waveform's total length.
func (w *Waveform) Duration() time.Duration {
	return time.Duration(len(w.levels)) * w.bitTime
}

// firstFallingEdge returns the time of the first recessive→dominant
// transition — the SOF edge the defense hard-synchronizes on.
func (w *Waveform) firstFallingEdge() (time.Duration, error) {
	prev := can.Recessive
	for i, l := range w.levels {
		if prev == can.Recessive && l == can.Dominant {
			return time.Duration(i) * w.bitTime, nil
		}
		prev = l
	}
	return 0, ErrNoEdge
}

// Sampler is the defense's software bit-timing machinery: a local clock with
// drift and per-interrupt jitter, hard-synchronized at the SOF edge, firing
// at the sample point of each subsequent bit.
type Sampler struct {
	// Clock carries the nominal bit time, sample point, drift, fudge factor
	// and residual reset error.
	Clock mcu.BitClock
	// Jitter is the maximum absolute per-interrupt timer jitter; each
	// interrupt lands uniformly within ±Jitter of its scheduled time.
	Jitter time.Duration
	// Rng drives the jitter; nil means no jitter regardless of Jitter.
	Rng *rand.Rand
}

// Result is the outcome of sampling one frame-length waveform.
type Result struct {
	// Sampled are the levels read at each interrupt, starting with the
	// first bit after SOF.
	Sampled []can.Level
	// SampleTimes are the absolute interrupt times.
	SampleTimes []time.Duration
	// Errors counts samples that differ from the ground-truth bit occupying
	// the nominal bit slot.
	Errors int
}

// SampleFrame hard-synchronizes at the waveform's SOF edge and samples
// every subsequent nominal bit until the waveform ends. truth must be the
// bit sequence following the SOF bit (the ground truth to compare against);
// sampling stops after len(truth) bits.
func (s *Sampler) SampleFrame(w *Waveform, truth []can.Level) (Result, error) {
	var res Result
	sofEdge, err := w.firstFallingEdge()
	if err != nil {
		return res, err
	}
	if s.Clock.SamplePoint <= 0 || s.Clock.SamplePoint >= 1 {
		return res, mcu.ErrBadSamplePoint
	}
	nominal := float64(s.Clock.BitTime)
	// The local oscillator runs fast by DriftPPM: its idea of one bit time
	// is shorter than nominal, so samples creep earlier within the true bit.
	local := nominal * (1 - s.Clock.DriftPPM*1e-6)
	// First interrupt: one sample point into the first ID bit (the SOF bit
	// itself is skipped, Sec. IV-C), scheduled FirstInterruptDelay after the
	// edge plus the frame-reset work the fudge factor models; a perfectly
	// chosen fudge factor cancels to the pure sample point, any mismatch
	// shows up as ResetError.
	t := float64(sofEdge) + nominal + nominal*s.Clock.SamplePoint + float64(s.Clock.ResetError)

	for i := 0; i < len(truth); i++ {
		when := time.Duration(t)
		if s.Rng != nil && s.Jitter > 0 {
			when += time.Duration(s.Rng.Int63n(int64(2*s.Jitter))) - s.Jitter
		}
		level := w.At(when)
		res.Sampled = append(res.Sampled, level)
		res.SampleTimes = append(res.SampleTimes, when)
		if level != truth[i] {
			res.Errors++
		}
		t += local
	}
	return res, nil
}

// MaxToleratedDriftPPM empirically finds the largest oscillator drift (in
// ppm, symmetric) at which a frame of the given wire length still samples
// without error: the margin the SOF hard-sync buys (Sec. IV-C). The search
// is a simple doubling/bisection over a synthetic worst-case alternating
// waveform.
func MaxToleratedDriftPPM(bitTime time.Duration, samplePoint float64, frameBits int) (float64, error) {
	truth := make([]can.Level, frameBits)
	for i := range truth {
		truth[i] = can.Level(i % 2) // alternating: every bit has edges
	}
	wave := buildFrameWave(truth, bitTime)
	ok := func(ppm float64) bool {
		s := &Sampler{Clock: mcu.BitClock{BitTime: bitTime, SamplePoint: samplePoint, DriftPPM: ppm}}
		res, err := s.SampleFrame(wave, truth)
		if err != nil {
			return false
		}
		return res.Errors == 0
	}
	if !ok(0) {
		return 0, errors.New("bittime: sampling fails even without drift")
	}
	lo, hi := 0.0, 64.0
	for ok(hi) && hi < 1e6 {
		lo, hi = hi, hi*2
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// buildFrameWave prepends an idle window and a SOF bit to the truth bits.
func buildFrameWave(truth []can.Level, bitTime time.Duration) *Waveform {
	levels := make([]can.Level, 0, len(truth)+13)
	for i := 0; i < 12; i++ {
		levels = append(levels, can.Recessive)
	}
	levels = append(levels, can.Dominant) // SOF
	levels = append(levels, truth...)
	return NewWaveform(levels, bitTime)
}

// SampleCANFrame builds the waveform of a real CAN frame (idle + SOF + wire
// bits) and samples it, returning the result against the frame's own wire
// bits. It is the end-to-end check that a drifting software sampler still
// reads real frames correctly.
func SampleCANFrame(s *Sampler, f *can.Frame, bitTime time.Duration) (Result, error) {
	wire := can.WireBits(f, can.Dominant)
	truth := wire[1:] // everything after SOF
	return s.SampleFrame(buildFrameWave(truth, bitTime), truth)
}
