package bittime

import (
	"testing"

	"michican/internal/can"
	"michican/internal/mcu"
)

func TestResyncSamplerPerfectClock(t *testing.T) {
	f := can.Frame{ID: 0x173, Data: []byte{0xA5, 0x5A}}
	wire := can.WireBits(&f, can.Dominant)
	truth := wire[1:]
	s := &ResyncSampler{
		Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70},
		SJW:   0.2,
	}
	res, err := s.SampleFrame(buildFrameWave(truth, bit500k), truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors with a perfect clock", res.Errors)
	}
}

func TestResyncBeatsHardSyncOnly(t *testing.T) {
	// The 1% oscillator that defeats the hard-sync-only sampler is handled
	// by edge resynchronization — the reason CAN hardware works with cheap
	// clocks, and the contrast that bounds what the software defense needs.
	f := can.Frame{ID: 0x2AA, Data: []byte{0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA}}
	wire := can.WireBits(&f, can.Dominant)
	truth := wire[1:]
	wave := buildFrameWave(truth, bit500k)

	hard := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: 10_000}}
	hres, err := hard.SampleFrame(wave, truth)
	if err != nil {
		t.Fatal(err)
	}
	soft := &ResyncSampler{
		Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: 10_000},
		SJW:   0.25,
	}
	sres, err := soft.SampleFrame(wave, truth)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Errors == 0 {
		t.Error("hard-sync-only should fail at 1% drift (premise)")
	}
	if sres.Errors != 0 {
		t.Errorf("resync sampler made %d errors at 1%% drift", sres.Errors)
	}
}

func TestResyncDriftToleranceScales(t *testing.T) {
	hardOnly, err := MaxToleratedDriftPPM(bit500k, 0.70, 130)
	if err != nil {
		t.Fatal(err)
	}
	withResync, err := MaxToleratedDriftPPMWithResync(bit500k, 0.70, 0.25, 130)
	if err != nil {
		t.Fatal(err)
	}
	if withResync < 4*hardOnly {
		t.Errorf("resync tolerance %.0f ppm should dwarf hard-sync-only %.0f ppm",
			withResync, hardOnly)
	}
	t.Logf("drift tolerance over a 130-bit frame: hard sync only %.0f ppm, with edge resync %.0f ppm",
		hardOnly, withResync)
}

func TestResyncSJWZeroMatchesHardSync(t *testing.T) {
	// With SJW = 0 the resync sampler degenerates to the plain one.
	f := can.Frame{ID: 0x0F0, Data: make([]byte, 8)}
	wire := can.WireBits(&f, can.Dominant)
	truth := wire[1:]
	wave := buildFrameWave(truth, bit500k)
	clock := mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: 3000}

	plain, err := (&Sampler{Clock: clock}).SampleFrame(wave, truth)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := (&ResyncSampler{Clock: clock, SJW: 0}).SampleFrame(wave, truth)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Errors != zero.Errors {
		t.Errorf("SJW=0 (%d errors) should match the plain sampler (%d)", zero.Errors, plain.Errors)
	}
}
