package bittime

import (
	"time"

	"michican/internal/can"
	"michican/internal/mcu"
)

// ResyncSampler extends Sampler with the soft resynchronization real CAN
// controllers perform: on every recessive→dominant edge the sampler measures
// the phase error between the observed edge and its own notion of the bit
// boundary and corrects it, bounded by the synchronization jump width (SJW).
// This is what lets hardware tolerate oscillators far worse than the one-
// hard-sync-per-frame software approach of Sec. IV-C — and quantifying the
// difference shows why the paper's approach still suffices for crystal-grade
// clocks.
type ResyncSampler struct {
	// Clock carries the nominal timing (sample point, drift, fudge).
	Clock mcu.BitClock
	// SJW is the maximum per-edge phase correction, as a fraction of the
	// nominal bit time (hardware typically allows 1-4 time quanta of ~10-20
	// per bit; 0.1-0.3 is realistic). Zero disables resynchronization,
	// reducing to the hard-sync-only behavior.
	SJW float64
}

// SampleFrame samples the waveform like Sampler.SampleFrame but applies a
// bounded phase correction at every recessive→dominant transition it
// observes between samples.
func (s *ResyncSampler) SampleFrame(w *Waveform, truth []can.Level) (Result, error) {
	var res Result
	sofEdge, err := w.firstFallingEdge()
	if err != nil {
		return res, err
	}
	if s.Clock.SamplePoint <= 0 || s.Clock.SamplePoint >= 1 {
		return res, mcu.ErrBadSamplePoint
	}
	nominal := float64(s.Clock.BitTime)
	local := nominal * (1 - s.Clock.DriftPPM*1e-6)

	// boundary is the sampler's belief of where the current bit began.
	boundary := float64(sofEdge) + nominal // first bit after SOF
	prev := can.Dominant                   // the SOF level
	for i := 0; i < len(truth); i++ {
		sampleAt := boundary + local*s.Clock.SamplePoint
		level := w.At(time.Duration(sampleAt))
		res.Sampled = append(res.Sampled, level)
		res.SampleTimes = append(res.SampleTimes, time.Duration(sampleAt))
		if level != truth[i] {
			res.Errors++
		}
		// Soft resync: if a recessive→dominant edge occurred in this bit,
		// measure its phase error against our boundary and correct by at
		// most SJW·bit.
		if s.SJW > 0 && prev == can.Recessive && level == can.Dominant {
			trueEdge := float64(edgeTimeNear(w, time.Duration(boundary)))
			if trueEdge >= 0 {
				phaseErr := trueEdge - boundary
				limit := s.SJW * nominal
				if phaseErr > limit {
					phaseErr = limit
				}
				if phaseErr < -limit {
					phaseErr = -limit
				}
				boundary += phaseErr
			}
		}
		prev = level
		boundary += local
	}
	return res, nil
}

// edgeTimeNear finds the recessive→dominant transition closest to t,
// searching the boundary nearest to t and its neighbors, returning -1 when
// none exists nearby.
func edgeTimeNear(w *Waveform, t time.Duration) time.Duration {
	center := int(float64(t)/float64(w.bitTime) + 0.5) // nearest boundary
	best := time.Duration(-1)
	bestDist := time.Duration(1 << 62)
	for j := center - 1; j <= center+1; j++ {
		if j <= 0 || j >= len(w.levels) {
			continue
		}
		if w.levels[j-1] != can.Recessive || w.levels[j] != can.Dominant {
			continue
		}
		edge := time.Duration(j) * w.bitTime
		dist := edge - t
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = edge, dist
		}
	}
	return best
}

// MaxToleratedDriftPPMWithResync is MaxToleratedDriftPPM for the
// edge-resynchronizing sampler: the bound hardware-style sync achieves.
func MaxToleratedDriftPPMWithResync(bitTime time.Duration, samplePoint, sjw float64, frameBits int) (float64, error) {
	truth := make([]can.Level, frameBits)
	for i := range truth {
		truth[i] = can.Level(i % 2) // alternating: an edge every other bit
	}
	wave := buildFrameWave(truth, bitTime)
	ok := func(ppm float64) bool {
		s := &ResyncSampler{
			Clock: mcu.BitClock{BitTime: bitTime, SamplePoint: samplePoint, DriftPPM: ppm},
			SJW:   sjw,
		}
		res, err := s.SampleFrame(wave, truth)
		if err != nil {
			return false
		}
		return res.Errors == 0
	}
	if !ok(0) {
		return 0, ErrNoEdge
	}
	lo, hi := 0.0, 64.0
	for ok(hi) && hi < 1e6 {
		lo, hi = hi, hi*2
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
