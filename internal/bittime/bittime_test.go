package bittime

import (
	"math/rand"
	"testing"
	"time"

	"michican/internal/can"
	"michican/internal/mcu"
)

const bit500k = 2 * time.Microsecond // 500 kbit/s nominal bit time

func TestWaveformAt(t *testing.T) {
	w := NewWaveform([]can.Level{can.Dominant, can.Recessive}, bit500k)
	if w.At(-1) != can.Recessive {
		t.Error("before start must read recessive")
	}
	if w.At(0) != can.Dominant || w.At(bit500k-1) != can.Dominant {
		t.Error("first bit window")
	}
	if w.At(bit500k) != can.Recessive {
		t.Error("second bit window")
	}
	if w.At(10*bit500k) != can.Recessive {
		t.Error("beyond end must read recessive")
	}
	if w.Duration() != 2*bit500k {
		t.Errorf("duration = %v", w.Duration())
	}
}

func TestFirstFallingEdge(t *testing.T) {
	w := buildFrameWave([]can.Level{can.Recessive}, bit500k)
	edge, err := w.firstFallingEdge()
	if err != nil {
		t.Fatal(err)
	}
	if edge != 12*bit500k {
		t.Errorf("edge at %v, want %v", edge, 12*bit500k)
	}
	idle := NewWaveform(make([]can.Level, 5), bit500k) // all dominant: no rec→dom edge
	for i := range idle.levels {
		idle.levels[i] = can.Recessive
	}
	if _, err := idle.firstFallingEdge(); err == nil {
		t.Error("pure idle waveform has no edge")
	}
}

func TestPerfectClockSamplesPerfectly(t *testing.T) {
	f := can.Frame{ID: 0x173, Data: []byte{0xA5, 0x5A, 0xFF, 0x00}}
	s := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70}}
	res, err := SampleCANFrame(s, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("perfect clock made %d sampling errors", res.Errors)
	}
	// The sampled bits decode back into the original frame.
	stream := append([]can.Level{can.Dominant}, res.Sampled...)
	got, _, err := can.DecodeWire(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&f) {
		t.Errorf("decoded %s, want %s", got.String(), f.String())
	}
}

func TestCrystalDriftTolerated(t *testing.T) {
	// Automotive crystals stay within ±100 ppm; a full 8-byte frame (~130
	// wire bits) must sample without error after one SOF hard sync.
	f := can.Frame{ID: 0x0F0, Data: make([]byte, 8)}
	for _, ppm := range []float64{-100, -50, 50, 100} {
		s := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: ppm}}
		res, err := SampleCANFrame(s, &f, bit500k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Errorf("drift %v ppm: %d sampling errors", ppm, res.Errors)
		}
	}
}

func TestExtremeDriftFails(t *testing.T) {
	// A 1% oscillator error (ceramic-resonator territory) walks the sample
	// point out of the bit within a frame — the reason hard sync alone is
	// not enough for bad clocks and CAN controllers resynchronize on edges.
	f := can.Frame{ID: 0x0F0, Data: make([]byte, 8)}
	s := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: 10_000}}
	res, err := SampleCANFrame(s, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("1% drift should corrupt sampling within one frame")
	}
}

func TestMaxToleratedDrift(t *testing.T) {
	// A fast clock (positive ppm) pulls samples earlier, toward the start
	// of the bit: the available margin is the full 70% pre-sample window,
	// spread over ~130 bits ≈ 0.70/130 ≈ 5385 ppm. The empirical bound must
	// land there — two orders of magnitude above crystal tolerances, which
	// is why one hard sync per frame suffices (Sec. IV-C).
	ppm, err := MaxToleratedDriftPPM(bit500k, 0.70, 130)
	if err != nil {
		t.Fatal(err)
	}
	if ppm < 4000 || ppm > 7000 {
		t.Errorf("tolerated drift = %.0f ppm, expected ≈5385", ppm)
	}
	t.Logf("max tolerated drift for a 130-bit frame at 70%% sample point: %.0f ppm", ppm)
}

func TestFudgeFactorCompensation(t *testing.T) {
	// An uncompensated frame-reset delay shifts every sample late; if it
	// exceeds the 30% post-sample-point margin the first bits misread.
	f := can.Frame{ID: 0x001, Data: []byte{0x0F}}
	bad := &Sampler{Clock: mcu.BitClock{
		BitTime:     bit500k,
		SamplePoint: 0.70,
		ResetError:  time.Duration(0.35 * float64(bit500k)), // > the 30% margin
	}}
	res, err := SampleCANFrame(bad, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("a reset error beyond the sample-point margin must corrupt sampling")
	}
	good := &Sampler{Clock: mcu.BitClock{
		BitTime:     bit500k,
		SamplePoint: 0.70,
		ResetError:  time.Duration(0.1 * float64(bit500k)), // well compensated
	}}
	res, err = SampleCANFrame(good, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("small residual reset error should be harmless, got %d errors", res.Errors)
	}
}

func TestJitterTolerance(t *testing.T) {
	// Interrupt jitter below the sample-point margins is harmless; jitter
	// comparable to the bit time corrupts samples.
	f := can.Frame{ID: 0x2AA, Data: []byte{0x55, 0xAA}}
	small := &Sampler{
		Clock:  mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70},
		Jitter: time.Duration(0.2 * float64(bit500k)),
		Rng:    rand.New(rand.NewSource(1)),
	}
	res, err := SampleCANFrame(small, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("20%% jitter should be tolerated, got %d errors", res.Errors)
	}
	big := &Sampler{
		Clock:  mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70},
		Jitter: bit500k,
		Rng:    rand.New(rand.NewSource(1)),
	}
	res, err = SampleCANFrame(big, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Error("full-bit jitter must corrupt samples")
	}
}

func TestSamplerRejectsBadSamplePoint(t *testing.T) {
	s := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 1.2}}
	f := can.Frame{ID: 0x1}
	if _, err := SampleCANFrame(s, &f, bit500k); err == nil {
		t.Error("bad sample point accepted")
	}
}

func TestSampleTimesMonotonic(t *testing.T) {
	f := can.Frame{ID: 0x123, Data: []byte{1, 2, 3}}
	s := &Sampler{Clock: mcu.BitClock{BitTime: bit500k, SamplePoint: 0.70, DriftPPM: 80}}
	res, err := SampleCANFrame(s, &f, bit500k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.SampleTimes); i++ {
		if res.SampleTimes[i] <= res.SampleTimes[i-1] {
			t.Fatal("sample times must be strictly increasing")
		}
	}
}
