package watch

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"michican/internal/controller"
	"michican/internal/forensics"
	"michican/internal/telemetry"
)

// engagedIncident is a canonical fully-engaged, eradicated campaign.
func engagedIncident() forensics.Incident {
	return forensics.Incident{
		ID: 0x123, IDHex: "0x123",
		Start: 1000, End: 40000,
		Attempts:      forensics.FullCampaignAttempts,
		Detections:    forensics.FullCampaignAttempts,
		FirstDetectAt: 1014,
		Eradicated:    true,
		BusOffAt:      39000,
		FramesLeaked:  0,
	}
}

func TestEvaluateIncidentVerdicts(t *testing.T) {
	cfg := Config{}

	v := EvaluateIncident(engagedIncident(), true, 200000, cfg)
	if !v.Engaged || v.InProgress {
		t.Fatalf("engaged closed incident misclassified: %+v", v)
	}
	if v.DetectionLatencyBits != 14 || !v.DetectionOK {
		t.Fatalf("detection latency: got %d ok=%v", v.DetectionLatencyBits, v.DetectionOK)
	}
	if !v.EradicationOK || !v.LeakFree {
		t.Fatalf("eradication/leak: %+v", v)
	}

	// Late detection violates the SLO window.
	late := engagedIncident()
	late.FirstDetectAt = late.Start + 25
	v = EvaluateIncident(late, false, -1, cfg)
	if v.DetectionOK || v.DetectionLatencyBits != 25 {
		t.Fatalf("late detection should violate: %+v", v)
	}

	// A benign fight (no FSM verdicts) is never engaged.
	benign := engagedIncident()
	benign.Detections = 0
	benign.FirstDetectAt = -1
	v = EvaluateIncident(benign, true, 200000, cfg)
	if v.Engaged {
		t.Fatalf("unengaged incident scored: %+v", v)
	}

	// Full campaign without bus-off fails the eradication SLO ...
	fail := engagedIncident()
	fail.Eradicated = false
	fail.BusOffAt = -1
	v = EvaluateIncident(fail, true, 200000, cfg)
	if v.EradicationOK {
		t.Fatalf("full un-eradicated campaign should fail: %+v", v)
	}
	// ... but an abandoned partial campaign does not.
	partial := fail
	partial.Attempts = 5
	partial.Detections = 5
	v = EvaluateIncident(partial, true, 200000, cfg)
	if !v.EradicationOK {
		t.Fatalf("abandoned partial campaign is not a defense failure: %+v", v)
	}

	// A trailing partial campaign within the edge margin is in progress.
	edge := partial
	edge.End = 199990
	v = EvaluateIncident(edge, true, 200000, cfg)
	if !v.InProgress {
		t.Fatalf("recording-edge incident should be in progress: %+v", v)
	}

	leak := engagedIncident()
	leak.FramesLeaked = 2
	v = EvaluateIncident(leak, true, 200000, cfg)
	if v.LeakFree {
		t.Fatalf("leaked incident marked leak-free: %+v", v)
	}
}

func TestEngineIncidentAlertsAndSLO(t *testing.T) {
	hub := telemetry.NewHub()
	var alerts []telemetry.Event
	hub.Subscribe(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EvAlert {
			alerts = append(alerts, ev)
		}
	})
	w := New(hub, nil, Config{})

	// A clean eradicated campaign: campaign fire+resolve, detection /
	// leak resolves are no-ops (nothing active), eradication resolve no-op.
	w.onIncident(engagedIncident(), false, -1)
	snap := w.Snapshot()
	if snap.SLO.EngagedIncidents != 1 || snap.SLO.Eradications != 1 || snap.SLO.DetectionViolations != 0 {
		t.Fatalf("clean campaign SLO: %+v", snap.SLO)
	}
	if len(snap.Active) != 0 {
		t.Fatalf("no alert should stay active after a clean campaign: %+v", snap.Active)
	}
	// Campaign ledger = fire + resolve.
	if got := len(snap.Log); got != 2 {
		t.Fatalf("want 2 transitions (campaign pair), got %d: %+v", got, snap.Log)
	}

	// A failing campaign: leaked frames + late detection + no eradication.
	bad := engagedIncident()
	bad.FirstDetectAt = bad.Start + 30
	bad.FramesLeaked = 3
	bad.Eradicated = false
	bad.BusOffAt = -1
	w.onIncident(bad, false, -1)
	snap = w.Snapshot()
	if snap.SLO.DetectionViolations != 1 || snap.SLO.FramesLeaked != 3 || snap.SLO.EradicationFailures != 1 {
		t.Fatalf("failing campaign SLO: %+v", snap.SLO)
	}
	wantActive := map[string]bool{
		RuleDetectionLatency.String(): true,
		RuleFrameLeak.String():        true,
		RuleEradication.String():      true,
	}
	for _, a := range snap.Active {
		delete(wantActive, a.Rule)
	}
	if len(wantActive) != 0 {
		t.Fatalf("missing active alerts %v; active: %+v", wantActive, snap.Active)
	}

	// A subsequent clean campaign resolves all three.
	w.onIncident(engagedIncident(), false, -1)
	snap = w.Snapshot()
	if len(snap.Active) != 0 {
		t.Fatalf("clean campaign should resolve everything: %+v", snap.Active)
	}
	if snap.Verdicts != 3 {
		t.Fatalf("want 3 verdicts, got %d", snap.Verdicts)
	}

	// Every transition was re-emitted as EvAlert with the rule id in A.
	if len(alerts) != len(snap.Log) {
		t.Fatalf("EvAlert fan-out: want %d, got %d", len(snap.Log), len(alerts))
	}
	for i, ev := range alerts {
		if int(ev.A) != snap.Log[i].RuleID {
			t.Fatalf("EvAlert[%d] rule mismatch: %d vs %d", i, ev.A, snap.Log[i].RuleID)
		}
		wantB := int64(0)
		if snap.Log[i].State == "fire" {
			wantB = 1
		}
		if ev.B != wantB {
			t.Fatalf("EvAlert[%d] state mismatch", i)
		}
	}

	// Metric side: transition counters and SLO counters registered and folded.
	reg := hub.Registry()
	if c := reg.FindCounter("michican_slo_incidents_engaged_total"); c == nil || c.Value() != 3 {
		t.Fatalf("engaged counter: %+v", c)
	}
	if c := reg.FindCounter("michican_alert_transitions_total", "rule", "campaign"); c == nil || c.Value() != 6 {
		t.Fatalf("campaign transitions counter: %+v", c)
	}
}

func TestEngineInProgressAndUnengagedSkipped(t *testing.T) {
	hub := telemetry.NewHub()
	w := New(hub, nil, Config{})

	benign := engagedIncident()
	benign.Detections = 0
	benign.FirstDetectAt = -1
	w.onIncident(benign, false, -1)

	edge := engagedIncident()
	edge.Attempts = 3
	edge.End = 99999
	w.onIncident(edge, true, 100000)

	snap := w.Snapshot()
	if snap.SLO.EngagedIncidents != 0 || len(snap.Log) != 0 {
		t.Fatalf("unengaged/in-progress incidents must not alert: %+v", snap)
	}
	if snap.Verdicts != 2 {
		t.Fatalf("verdicts still recorded: %d", snap.Verdicts)
	}
}

func TestDefenderConfinementStateMachine(t *testing.T) {
	hub := telemetry.NewHub()
	w := New(hub, nil, Config{})
	def := hub.Probe("defender")
	other := hub.Probe("attacker")

	// Another node's TEC runaway is not the defender's problem.
	other.Emit(10, telemetry.EvTEC, 200, 0)
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("non-defender TEC fired: %d", n)
	}

	def.Emit(20, telemetry.EvTEC, int64(controller.PassiveThreshold)+1, 0)
	log := w.Alerts()
	if len(log) != 1 || log[0].Rule != RuleDefenderConfinement.String() || log[0].Severity != "warning" {
		t.Fatalf("error-passive warning: %+v", log)
	}

	// Escalation to bus-off upgrades to critical (a second fire).
	def.Emit(30, telemetry.EvBusOff, 0, 0)
	log = w.Alerts()
	if len(log) != 2 || log[1].Severity != "critical" {
		t.Fatalf("bus-off critical: %+v", log)
	}

	// Recovery with TEC back down resolves.
	def.Emit(40, telemetry.EvTEC, 0, 0)
	def.Emit(41, telemetry.EvRecover, 0, 0)
	log = w.Alerts()
	if len(log) != 3 || log[2].State != "resolve" {
		t.Fatalf("recovery resolve: %+v", log)
	}
	if len(w.Snapshot().Active) != 0 {
		t.Fatalf("confinement alert still active")
	}
}

func TestLadderCollapseDetection(t *testing.T) {
	hub := telemetry.NewHub()
	cfg := Config{LadderWindowBits: 1000, LadderWarmupWindows: 2}
	w := New(hub, nil, cfg)
	bus := hub.Probe("bus")

	// Healthy warmup + steady state: ~90% of each window fast-forwarded.
	emitWindow := func(winStart, ffBits int64) {
		bus.Emit(winStart+1, telemetry.EvFFSpan, ffBits, 0)
	}
	var t0 int64
	for i := 0; i < 5; i++ {
		emitWindow(t0, 900)
		t0 += 1000
	}
	// Collapse: two windows at 10%.
	emitWindow(t0, 100)
	t0 += 1000
	emitWindow(t0, 100)
	t0 += 1000
	// One more emission to close the last collapsed window.
	emitWindow(t0, 900)

	log := w.Alerts()
	var fired bool
	for _, a := range log {
		if a.Rule == RuleLadderCollapse.String() && a.State == "fire" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("ladder collapse not detected: %+v", log)
	}
	// Recovery window closes once the next span arrives past it.
	t0 += 1000
	emitWindow(t0, 900)
	if act := w.Snapshot().Active; len(act) != 0 {
		t.Fatalf("collapse should resolve after recovery: %+v", act)
	}
}

func TestLatencyHistPercentiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 99; i++ {
		h.add(14)
	}
	h.add(300) // clamps to top bucket
	if p := h.percentile(50); p != 14 {
		t.Fatalf("p50: %v", p)
	}
	if p := h.percentile(99); p != 14 {
		t.Fatalf("p99 with 1%% outlier: %v", p)
	}
	if p := h.percentile(100); p != latencyHistBuckets-1 {
		t.Fatalf("p100 should hit the clamp bucket: %v", p)
	}
	var empty latencyHist
	if p := empty.percentile(50); p != 0 {
		t.Fatalf("empty hist: %v", p)
	}
}

func TestAlertEncodeDecodeRoundTrip(t *testing.T) {
	a := Alert{
		Seq: 7, Rule: "frame-leak", RuleID: int(RuleFrameLeak),
		Severity: "critical", State: "fire", Time: 12345,
		Reason:   "3 frames leaked",
		Evidence: map[string]int64{"frames": 3},
	}
	p, err := EncodeAlert(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAlert(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round trip: %+v vs %+v", a, got)
	}
	// Encoding is deterministic (evidence keys sorted by encoding/json).
	p2, _ := EncodeAlert(a)
	if string(p) != string(p2) {
		t.Fatalf("non-deterministic encoding")
	}
}

func TestMonitorProbes(t *testing.T) {
	var backlog int64 = 10
	var age time.Duration = time.Second
	m := &Monitor{}
	m.Attach(StoreBacklogProbe(func() int64 { return backlog }, 100))
	m.Attach(FsyncStallProbe(func(time.Time) time.Duration { return age }, 5*time.Second))

	if issues := m.Check(time.Now()); len(issues) != 0 {
		t.Fatalf("healthy store flagged: %+v", issues)
	}
	backlog = 1000
	age = time.Minute
	issues := m.Check(time.Now())
	if len(issues) != 2 {
		t.Fatalf("want 2 issues, got %+v", issues)
	}
	if issues[0].Rule != RuleStoreBacklog.String() || issues[1].Rule != RuleFsyncStall.String() {
		t.Fatalf("issue rules: %+v", issues)
	}
	var nilMon *Monitor
	if issues := nilMon.Check(time.Now()); issues != nil {
		t.Fatalf("nil monitor must be healthy")
	}
}

func TestFleetWatcherStallDetection(t *testing.T) {
	progress := []VehicleProgress{{ID: 0, NowBits: 100}, {ID: 1, NowBits: 100}}
	fw := NewFleetWatcher(func() []VehicleProgress { return progress }, 10*time.Second)

	base := time.Now()
	if issues := fw.Check(base); len(issues) != 0 {
		t.Fatalf("first observation can't be a stall: %+v", issues)
	}
	// Vehicle 0 advances, vehicle 1 does not.
	progress = []VehicleProgress{{ID: 0, NowBits: 200}, {ID: 1, NowBits: 100}}
	if issues := fw.Check(base.Add(5 * time.Second)); len(issues) != 0 {
		t.Fatalf("within the stall bound: %+v", issues)
	}
	// Vehicle 0 keeps advancing; vehicle 1 is now 20s stuck.
	progress = []VehicleProgress{{ID: 0, NowBits: 300}, {ID: 1, NowBits: 100}}
	issues := fw.Check(base.Add(20 * time.Second))
	if len(issues) != 1 || issues[0].Rule != RuleWorkerStall.String() {
		t.Fatalf("vehicle 1 should be flagged: %+v", issues)
	}
	// A done vehicle is never a stall.
	progress = []VehicleProgress{{ID: 0, NowBits: 200, Done: true}, {ID: 1, NowBits: 300}}
	if issues := fw.Check(base.Add(60 * time.Second)); len(issues) != 0 {
		t.Fatalf("done/advanced vehicles flagged: %+v", issues)
	}
}

func TestFleetCollectorMerge(t *testing.T) {
	mkEngine := func(latency int64) *Engine {
		hub := telemetry.NewHub()
		w := New(hub, nil, Config{})
		inc := engagedIncident()
		inc.FirstDetectAt = inc.Start + latency
		w.onIncident(inc, false, -1)
		return w
	}
	fc := NewFleetCollector(nil)
	fc.Register(0, mkEngine(14))
	fc.Register(1, mkEngine(30)) // violation

	view := fc.Snapshot(time.Now())
	if len(view.Vehicles) != 2 || view.SLO.EngagedIncidents != 2 {
		t.Fatalf("merge: %+v", view.SLO)
	}
	if view.SLO.DetectionViolations != 1 {
		t.Fatalf("violations: %+v", view.SLO)
	}
	// Merged percentile comes from the pooled histogram (14 and 30 → p99=30).
	if view.SLO.DetectionP99Bits != 30 {
		t.Fatalf("fleet p99: %v", view.SLO.DetectionP99Bits)
	}
	if view.ActiveTotal == 0 {
		t.Fatalf("vehicle 1's detection alert should be active fleet-wide")
	}

	fc.Unregister(1)
	view = fc.Snapshot(time.Now())
	if len(view.Vehicles) != 1 || view.SLO.EngagedIncidents != 1 {
		t.Fatalf("unregister: %+v", view.SLO)
	}
}

func TestRenderDashboard(t *testing.T) {
	hub := telemetry.NewHub()
	w := New(hub, nil, Config{})
	bad := engagedIncident()
	bad.FramesLeaked = 1
	w.onIncident(bad, false, -1)
	fc := NewFleetCollector(nil)
	fc.Register(3, w)

	frame := RenderDashboard(DashboardData{
		Title:      "demo",
		Elapsed:    90 * time.Second,
		BitsPerSec: 2.5e6,
		Vehicles: []DashboardVehicle{
			{ID: 3, Worker: 0, NowBits: 50000, HorizonBits: 100000, Incidents: 1, Active: 1},
			{ID: 4, Worker: 1, NowBits: 100000, HorizonBits: 100000, Done: true},
		},
		View: fc.Snapshot(time.Now()),
	})
	plain := StripANSI(frame)
	for _, want := range []string{"michican-top", "SLO", "frame-leak", "VEHICLES", "50%", "100%"} {
		if !strings.Contains(plain, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, plain)
		}
	}
}

// TestEngineLiveWithForensics drives a real forensics engine via the hub and
// checks the watch engine observes closures through SetOnIncident without
// deadlocking (the OnIncident callback runs under forensics.mu and emits
// EvAlert back through the hub, which the forensics Feed must ignore).
func TestEngineLiveWithForensics(t *testing.T) {
	hub := telemetry.NewHub()
	eng := forensics.NewEngine(hub)
	w := New(hub, eng, Config{})

	att := hub.Probe("attacker")
	def := hub.Probe("defender")
	// One destroyed spoof attempt — the canonical MichiCAN exchange: SOF,
	// verdict at ID bit 9, 7-bit counterattack pull, the attacker's bit error
	// and TEC bump, the shared error delimiter. The campaign is then
	// abandoned; Finalize closes it far from the recording edge.
	const t0 = int64(1000)
	att.Emit(t0, telemetry.EvTxStart, 0x123, 0)
	def.Emit(t0+12, telemetry.EvDetect, 9, 0)
	def.Emit(t0+12, telemetry.EvPullStart, 0, 0)
	att.Emit(t0+14, telemetry.EvError, int64(controller.BitError), 1)
	att.Emit(t0+14, telemetry.EvTEC, 8, 0)
	def.Emit(t0+20, telemetry.EvPullEnd, 7, 0)
	def.Emit(t0+31, telemetry.EvErrorEnd, 0, 0)
	eng.Finalize(500000)

	verdicts := w.Verdicts()
	if len(verdicts) != 1 {
		t.Fatalf("want 1 verdict, got %+v", verdicts)
	}
	v := verdicts[0]
	if !v.Engaged || v.InProgress {
		t.Fatalf("verdict: %+v", v)
	}
	if v.DetectionLatencyBits != 12 || !v.DetectionOK {
		t.Fatalf("latency: %+v", v)
	}
	// Parity: the pure evaluator over the forensics record agrees.
	incs := eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents: %+v", incs)
	}
	recomputed := EvaluateIncident(incs[0], true, 500000, Config{})
	if !reflect.DeepEqual(v, recomputed) {
		t.Fatalf("live vs recomputed verdict:\n%+v\n%+v", v, recomputed)
	}
}
