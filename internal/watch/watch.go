// Package watch is the live SLO and alerting engine: a streaming evaluator
// that subscribes to a simulation's telemetry hub and forensics engine and
// continuously scores the run against the paper's service-level objectives —
// detection latency inside the counterattack window, eradication of every
// full spoofing campaign, zero leaked frames — plus the defender's own
// fault-confinement health and the simulator's self-health sentinels
// (fast-path ladder collapse, store writer backlog, fleet worker liveness).
//
// Rules split into two classes with different determinism contracts:
//
//   - Simulation-time rules (RuleDetectionLatency … RuleLadderCollapse) are
//     driven exclusively by the canonical incident-closure stream
//     (forensics.SetOnIncident) and by single-node event streams, both of
//     which are bit-identical for a given scenario within a stepping mode.
//     Their fire/resolve transitions are appended to a deterministic alert
//     log, re-emitted onto the hub as EvAlert events, and persisted through
//     the durable store's alert seglog — a crash-resumed run regenerates the
//     exact same byte sequence.
//
//   - Wall-clock sentinels (RuleStoreBacklog, RuleFsyncStall,
//     RuleWorkerStall) observe the host, not the simulation. They live in
//     Monitor/FleetWatcher (monitor.go), are evaluated on read, never emit
//     EvAlert, and are never persisted.
//
// The disabled cost follows the telemetry package's probe discipline: a
// simulation without a watch engine attached pays nothing beyond the nil
// checks it already paid, and the forensics engine's OnIncident hook is a
// single nil comparison per incident closure.
package watch

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"michican/internal/controller"
	"michican/internal/forensics"
	"michican/internal/telemetry"
)

// Severity grades an alert.
type Severity uint8

// Severity levels, least to most urgent.
const (
	SevInfo Severity = iota
	SevWarning
	SevCritical
)

// String names the severity as it appears in alert records.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// Rule identifies one alert rule. The value is the EvAlert A-argument.
type Rule uint8

// The rule taxonomy. Rules 0-5 are simulation-time (deterministic, emitted
// as EvAlert, persisted); rules 6-8 are wall-clock sentinels evaluated by
// Monitor/FleetWatcher on read.
const (
	// RuleDetectionLatency fires when an engaged incident's first FSM verdict
	// lands outside the paper's detection window (SOF + stuffed ID bits; the
	// counterattack must still be able to drive bits 13-19 of the attempt).
	RuleDetectionLatency Rule = iota
	// RuleEradication fires when a full spoofing campaign (a complete TEC
	// ladder's worth of destroyed attempts) closes without driving the
	// attacker bus-off.
	RuleEradication
	// RuleFrameLeak fires when an engaged incident leaked complete attacker
	// frames — the zero-leaked-frames SLO.
	RuleFrameLeak
	// RuleDefenderConfinement tracks the defender's own fault-confinement
	// state: warning on error-passive entry (TEC or REC runaway), critical on
	// bus-off.
	RuleDefenderConfinement
	// RuleCampaign records each engaged incident as a fire/resolve pair at
	// the incident's own boundaries — the alert log's campaign ledger.
	RuleCampaign
	// RuleLadderCollapse fires when the fast-path ladder's windowed hit rate
	// collapses against its rolling baseline (a stepping-performance
	// regression sentinel; silent in exact mode, which commits no spans).
	RuleLadderCollapse
	// RuleStoreBacklog: the store writer's drain backlog exceeded its bound
	// (wall-clock sentinel; Monitor only).
	RuleStoreBacklog
	// RuleFsyncStall: the group-commit fsync has not completed within its
	// stall bound (wall-clock sentinel; Monitor only).
	RuleFsyncStall
	// RuleWorkerStall: a fleet vehicle stopped advancing while not retired
	// (wall-clock sentinel; FleetWatcher only).
	RuleWorkerStall

	numRules
)

// String names the rule as it appears in alert records and metric labels.
func (r Rule) String() string {
	switch r {
	case RuleDetectionLatency:
		return "detection-latency"
	case RuleEradication:
		return "eradication"
	case RuleFrameLeak:
		return "frame-leak"
	case RuleDefenderConfinement:
		return "defender-confinement"
	case RuleCampaign:
		return "campaign"
	case RuleLadderCollapse:
		return "ladder-collapse"
	case RuleStoreBacklog:
		return "store-backlog"
	case RuleFsyncStall:
		return "fsync-stall"
	case RuleWorkerStall:
		return "worker-stall"
	default:
		return fmt.Sprintf("Rule(%d)", uint8(r))
	}
}

// Alert is one fire or resolve transition of a rule. Records are
// deterministic for a deterministic run: times are simulated bit times,
// evidence values are bit times and counts, and encoding/json renders
// evidence maps with sorted keys.
type Alert struct {
	// Seq is the transition's position in the engine's alert log (0-based).
	Seq int64 `json:"seq"`
	// Rule and RuleID name the rule (RuleID is the Rule enum value, also the
	// EvAlert A-argument).
	Rule   string `json:"rule"`
	RuleID int    `json:"rule_id"`
	// Severity grades the transition ("info", "warning", "critical").
	Severity string `json:"severity"`
	// State is "fire" or "resolve".
	State string `json:"state"`
	// Time is the simulated bit time the transition is anchored to.
	Time int64 `json:"t"`
	// Reason is a one-line human-readable cause.
	Reason string `json:"reason"`
	// Evidence carries the rule's numeric witnesses (bit times, counts).
	Evidence map[string]int64 `json:"evidence,omitempty"`
}

// EncodeAlert renders one alert transition as its canonical JSON payload —
// the bytes the durable store's alert log holds.
func EncodeAlert(a Alert) ([]byte, error) { return json.Marshal(a) }

// DecodeAlert parses a stored alert payload.
func DecodeAlert(payload []byte) (Alert, error) {
	var a Alert
	err := json.Unmarshal(payload, &a)
	return a, err
}

// EncodeAlerts renders a transition log as store payloads, one per alert.
func EncodeAlerts(log []Alert) ([][]byte, error) {
	out := make([][]byte, 0, len(log))
	for _, a := range log {
		p, err := EncodeAlert(a)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Config tunes an Engine. The zero value applies the paper-grounded
// defaults.
type Config struct {
	// DefenderNode is the telemetry node name whose fault-confinement state
	// RuleDefenderConfinement tracks (default "defender").
	DefenderNode string
	// SLOMaxDetectionLatencyBits bounds the wire distance from an attempt's
	// SOF to the first FSM verdict. The default 19 is the last bit of the
	// counterattack window (Sec. IV: the pull overwrites bits 13-19), so a
	// verdict past it cannot destroy the frame in flight.
	SLOMaxDetectionLatencyBits int64
	// LadderWindowBits is the hit-rate window for RuleLadderCollapse
	// (default 1<<17 simulated bits).
	LadderWindowBits int64
	// LadderCollapseRatio fires RuleLadderCollapse when a window's fast-path
	// hit rate drops below this fraction of the rolling baseline
	// (default 0.5).
	LadderCollapseRatio float64
	// LadderWarmupWindows is how many windows seed the baseline before the
	// collapse comparison arms (default 4).
	LadderWarmupWindows int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.DefenderNode == "" {
		c.DefenderNode = "defender"
	}
	if c.SLOMaxDetectionLatencyBits <= 0 {
		c.SLOMaxDetectionLatencyBits = 19
	}
	if c.LadderWindowBits <= 0 {
		c.LadderWindowBits = 1 << 17
	}
	if c.LadderCollapseRatio <= 0 {
		c.LadderCollapseRatio = 0.5
	}
	if c.LadderWarmupWindows <= 0 {
		c.LadderWarmupWindows = 4
	}
	return c
}

// IncidentVerdict is the engine's SLO scoring of one closed incident — the
// live counterpart of the values Tables I/II regenerate from the forensics
// log. Verdicts are produced by the pure EvaluateIncident, so a post-hoc
// pass over forensics.Incidents yields the same records the live engine
// collected (the experiment package's parity test pins this, across all
// stepping modes).
type IncidentVerdict struct {
	IDHex    string `json:"id"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	Attempts int    `json:"attempts"`
	// Engaged reports that the defense fired at least one FSM verdict inside
	// the incident. Benign arbitration fights (rival replayer retransmits)
	// reconstruct as incidents too; they are never scored against the
	// detection/leak/eradication SLOs.
	Engaged bool `json:"engaged"`
	// InProgress applies the forensics recording-edge rule: a trailing
	// incident with fewer than a full campaign's attempts ending within one
	// recovery window of the recording's end is still unfolding and is not
	// scored.
	InProgress bool `json:"in_progress,omitempty"`
	// DetectionLatencyBits is FirstDetectAt - Start (-1 when the defense
	// never fired); DetectionOK applies the SLO window to it.
	DetectionLatencyBits int64 `json:"detection_latency_bits"`
	DetectionOK          bool  `json:"detection_ok"`
	// Eradicated mirrors the incident; EradicationOK is false only for a
	// full campaign that failed to eradicate (shorter incidents are
	// attacker-abandoned, not defense failures).
	Eradicated    bool `json:"eradicated"`
	EradicationOK bool `json:"eradication_ok"`
	// FramesLeaked mirrors the incident; LeakFree is the SLO verdict.
	FramesLeaked int  `json:"frames_leaked"`
	LeakFree     bool `json:"leak_free"`
}

// EvaluateIncident scores one closed incident against the SLOs. atEnd and
// recordingEnd are the forensics closure callback's arguments (atEnd false /
// recordingEnd -1 for mid-run closures).
func EvaluateIncident(inc forensics.Incident, atEnd bool, recordingEnd int64, cfg Config) IncidentVerdict {
	cfg = cfg.withDefaults()
	v := IncidentVerdict{
		IDHex:                inc.IDHex,
		Start:                inc.Start,
		End:                  inc.End,
		Attempts:             inc.Attempts,
		Engaged:              inc.Detections > 0,
		DetectionLatencyBits: -1,
		Eradicated:           inc.Eradicated,
		FramesLeaked:         inc.FramesLeaked,
	}
	if atEnd && inc.Attempts < forensics.FullCampaignAttempts &&
		recordingEnd-inc.End < forensics.EpisodeEdgeMarginBits {
		v.InProgress = true
	}
	if v.Engaged && inc.FirstDetectAt >= 0 {
		v.DetectionLatencyBits = inc.FirstDetectAt - inc.Start
	}
	v.DetectionOK = v.Engaged && v.DetectionLatencyBits >= 0 &&
		v.DetectionLatencyBits <= cfg.SLOMaxDetectionLatencyBits
	v.EradicationOK = inc.Eradicated || inc.Attempts < forensics.FullCampaignAttempts
	v.LeakFree = inc.FramesLeaked == 0
	return v
}

// latencyHistBuckets bounds the exact counting histogram: detection
// latencies land in single-digit bits; anything larger clamps into the top
// bucket (it is an SLO violation regardless).
const latencyHistBuckets = 128

// latencyHist is an exact counting histogram over small integer latencies —
// unlike telemetry.Histogram (an Accumulator: mean/stddev only) it yields
// true percentiles, which the SLO summary needs.
type latencyHist struct {
	counts [latencyHistBuckets]int64
	n      int64
}

// add folds one latency in, clamping into the top bucket.
func (h *latencyHist) add(v int64) {
	if v < 0 {
		v = 0
	}
	if v >= latencyHistBuckets {
		v = latencyHistBuckets - 1
	}
	h.counts[v]++
	h.n++
}

// percentile returns the p-th percentile (0-100, nearest-rank) by counting
// up the exact buckets; 0 when empty.
func (h *latencyHist) percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for v, c := range h.counts {
		seen += c
		if seen >= rank {
			return float64(v)
		}
	}
	return float64(latencyHistBuckets - 1)
}

// SLOSummary is the live SLO scoreboard.
type SLOSummary struct {
	EngagedIncidents    int64   `json:"engaged_incidents"`
	DetectionP50Bits    float64 `json:"detection_p50_bits"`
	DetectionP99Bits    float64 `json:"detection_p99_bits"`
	DetectionViolations int64   `json:"detection_violations"`
	Eradications        int64   `json:"eradications"`
	EradicationFailures int64   `json:"eradication_failures"`
	LeakIncidents       int64   `json:"leak_incidents"`
	FramesLeaked        int64   `json:"frames_leaked"`
	LadderHitRate       float64 `json:"ladder_hit_rate"`
	LadderBaseline      float64 `json:"ladder_baseline_hit_rate"`
}

// Snapshot is the /alerts payload: the currently-firing alerts, the full
// transition log, and the SLO scoreboard.
type Snapshot struct {
	Active   []Alert    `json:"active"`
	Log      []Alert    `json:"log"`
	SLO      SLOSummary `json:"slo"`
	Verdicts int        `json:"verdicts"`
}

// Engine is the per-simulation watch engine. Create with New; it subscribes
// to the hub and registers itself as the forensics engine's incident-closure
// observer. All methods are safe for concurrent use with ongoing emission.
type Engine struct {
	mu    sync.Mutex
	hub   *telemetry.Hub
	probe telemetry.Probe
	cfg   Config

	cancel func()

	// defender node resolution: names are looked up lazily (nodes register
	// as they first emit) and cached.
	names      map[telemetry.NodeID]string
	defenderID telemetry.NodeID
	defenderOK bool

	// alert state
	log         []Alert
	active      [numRules]*Alert
	transitions [numRules]*telemetry.Counter
	gActive     [numRules]*telemetry.Gauge

	// SLO state
	verdicts []IncidentVerdict
	lat      latencyHist
	engaged  int64
	detViol  int64
	erad     int64
	eradFail int64
	leakInc  int64
	leaked   int64

	// defender fault confinement
	defTEC, defREC int64
	defBusOff      bool

	// ladder collapse: windowed fast-path hit rate vs rolling EWMA baseline.
	winEnd   int64
	winFF    int64
	windows  int
	baseline float64
	ladRate  float64

	// registry instruments
	cEngaged, cDetViol, cErad, cEradFail, cLeakInc, cLeaked *telemetry.Counter
	gP50, gP99, gLadRate, gLadBase                          *telemetry.Gauge
}

// New attaches a watch engine to the hub (and, when eng is non-nil, to the
// forensics engine's incident-closure hook). Call before the run starts so
// the engine sees the whole stream; detach with Close.
func New(hub *telemetry.Hub, eng *forensics.Engine, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	w := &Engine{
		hub:   hub,
		cfg:   cfg,
		names: make(map[telemetry.NodeID]string),
	}
	w.probe = hub.Probe("watch")
	reg := hub.Registry()
	for r := Rule(0); r < numRules; r++ {
		w.transitions[r] = reg.Counter("michican_alert_transitions_total", "rule", r.String())
		w.gActive[r] = reg.Gauge("michican_alert_active", "rule", r.String())
	}
	w.cEngaged = reg.Counter("michican_slo_incidents_engaged_total")
	w.cDetViol = reg.Counter("michican_slo_detection_violations_total")
	w.cErad = reg.Counter("michican_slo_eradications_total")
	w.cEradFail = reg.Counter("michican_slo_eradication_failures_total")
	w.cLeakInc = reg.Counter("michican_slo_leak_incidents_total")
	w.cLeaked = reg.Counter("michican_slo_frames_leaked_total")
	w.gP50 = reg.Gauge("michican_slo_detection_latency_bits_p50")
	w.gP99 = reg.Gauge("michican_slo_detection_latency_bits_p99")
	w.gLadRate = reg.Gauge("michican_slo_ladder_hit_rate")
	w.gLadBase = reg.Gauge("michican_slo_ladder_baseline_hit_rate")
	if eng != nil {
		eng.SetOnIncident(w.onIncident)
	}
	w.cancel = hub.Subscribe(w.onEvent)
	return w
}

// Close cancels the hub subscription. The forensics hook stays registered
// (the engine owner decides its lifetime); a closed watch engine simply
// stops folding events.
func (w *Engine) Close() {
	if w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
}

// onEvent is the hub subscription: it folds only the single-node streams the
// simulation-time rules need. The EvAlert early-return is load-bearing —
// the engine's own probe emissions fan back out to this handler, and
// re-locking w.mu (already held at every emit site) would self-deadlock.
func (w *Engine) onEvent(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EvAlert:
		return
	case telemetry.EvFFSpan:
		w.mu.Lock()
		w.foldLadder(ev)
		w.mu.Unlock()
	case telemetry.EvTEC, telemetry.EvREC, telemetry.EvBusOff, telemetry.EvRecover:
		w.mu.Lock()
		if w.isDefender(ev.Node) {
			w.foldDefender(ev)
		}
		w.mu.Unlock()
	}
}

// isDefender resolves whether the node is the configured defender, caching
// hub name lookups. Called with w.mu held; the hub lock is independent.
func (w *Engine) isDefender(id telemetry.NodeID) bool {
	if w.defenderOK {
		return id == w.defenderID
	}
	name, ok := w.names[id]
	if !ok {
		name = w.hub.NodeName(id)
		w.names[id] = name
	}
	if name == w.cfg.DefenderNode {
		w.defenderID = id
		w.defenderOK = true
		return true
	}
	return false
}

// foldDefender tracks the defender's fault-confinement level and drives
// RuleDefenderConfinement: 0 error-active (resolved), 1 error-passive
// (warning), 2 bus-off (critical). Called with w.mu held.
func (w *Engine) foldDefender(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EvTEC:
		w.defTEC = ev.A
	case telemetry.EvREC:
		w.defREC = ev.A
	case telemetry.EvBusOff:
		w.defBusOff = true
	case telemetry.EvRecover:
		w.defBusOff = false
	}
	level, sev := 0, SevInfo
	switch {
	case w.defBusOff:
		level, sev = 2, SevCritical
	case w.defTEC > controller.PassiveThreshold || w.defREC > controller.PassiveThreshold:
		level, sev = 1, SevWarning
	}
	cur := w.activeLevel(RuleDefenderConfinement)
	switch {
	case level > cur:
		reason := fmt.Sprintf("defender error-passive (TEC=%d REC=%d)", w.defTEC, w.defREC)
		if level == 2 {
			reason = "defender bus-off: fault confinement breached"
		}
		w.fire(RuleDefenderConfinement, sev, ev.Time, reason, map[string]int64{
			"tec": w.defTEC, "rec": w.defREC, "level": int64(level),
		})
	case level == 0 && cur > 0:
		w.resolveRule(RuleDefenderConfinement, ev.Time,
			fmt.Sprintf("defender error-active again (TEC=%d REC=%d)", w.defTEC, w.defREC))
	}
}

// activeLevel reads the "level" evidence of the rule's active alert (0 when
// resolved). Called with w.mu held.
func (w *Engine) activeLevel(r Rule) int {
	if a := w.active[r]; a != nil {
		return int(a.Evidence["level"])
	}
	return 0
}

// foldLadder drives RuleLadderCollapse from EvFFSpan commits: fast-path bits
// accumulate into fixed windows of simulated time, each closed window's hit
// rate updates the rolling baseline (EWMA, alpha 1/4 — but only while
// healthy, so a persistent collapse stays fired instead of eroding its own
// reference), and a window below LadderCollapseRatio x baseline fires.
// Called with w.mu held.
func (w *Engine) foldLadder(ev telemetry.Event) {
	win := w.cfg.LadderWindowBits
	if w.winEnd == 0 {
		w.winEnd = ev.Time - ev.Time%win + win
	}
	for ev.Time >= w.winEnd {
		w.closeLadderWindow()
		w.winEnd += win
	}
	w.winFF += ev.A
}

// closeLadderWindow scores one elapsed window. Called with w.mu held.
func (w *Engine) closeLadderWindow() {
	rate := float64(w.winFF) / float64(w.cfg.LadderWindowBits)
	if rate > 1 {
		rate = 1 // spans straddling the boundary over-credit slightly
	}
	w.winFF = 0
	w.windows++
	w.ladRate = rate
	w.gLadRate.Set(rate)
	if w.windows <= w.cfg.LadderWarmupWindows {
		// Seed the baseline with a plain running average over the warmup.
		w.baseline += (rate - w.baseline) / float64(w.windows)
		w.gLadBase.Set(w.baseline)
		return
	}
	collapsed := rate < w.cfg.LadderCollapseRatio*w.baseline
	t := w.winEnd
	if collapsed {
		w.fire(RuleLadderCollapse, SevWarning, t,
			fmt.Sprintf("fast-path hit rate %.2f collapsed below %.2f of baseline %.2f",
				rate, w.cfg.LadderCollapseRatio, w.baseline),
			map[string]int64{
				"hit_rate_pct": int64(rate * 100), "baseline_pct": int64(w.baseline * 100),
			})
	} else {
		w.resolveRule(RuleLadderCollapse, t,
			fmt.Sprintf("fast-path hit rate %.2f recovered", rate))
		w.baseline += (rate - w.baseline) / 4
	}
	w.gLadBase.Set(w.baseline)
}

// onIncident is the forensics closure hook. It runs with the forensics
// engine's lock held (lock order: forensics.mu -> watch.mu, never the
// reverse) and must not call back into the forensics engine; emitting
// EvAlert is safe because forensics.Feed ignores alerts without locking.
func (w *Engine) onIncident(inc forensics.Incident, atEnd bool, recordingEnd int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v := EvaluateIncident(inc, atEnd, recordingEnd, w.cfg)
	w.verdicts = append(w.verdicts, v)
	if v.InProgress || !v.Engaged {
		return
	}
	w.engaged++
	w.cEngaged.Inc()

	// Campaign ledger: one fire/resolve pair at the incident's boundaries.
	evidence := map[string]int64{
		"attempts":   int64(v.Attempts),
		"detections": int64(inc.Detections),
		"leaked":     int64(v.FramesLeaked),
	}
	if v.Eradicated {
		evidence["bus_off_at"] = inc.BusOffAt
	}
	w.fire(RuleCampaign, SevInfo, v.Start,
		fmt.Sprintf("spoofing campaign on %s engaged (%d attempts)", v.IDHex, v.Attempts), evidence)
	outcome := "attacker abandoned"
	if v.Eradicated {
		outcome = "attacker eradicated"
	} else if !v.EradicationOK {
		outcome = "full campaign NOT eradicated"
	}
	w.resolveRule(RuleCampaign, v.End,
		fmt.Sprintf("campaign on %s closed: %s", v.IDHex, outcome))

	// Detection-latency SLO.
	if v.DetectionLatencyBits >= 0 {
		w.lat.add(v.DetectionLatencyBits)
		w.gP50.Set(w.lat.percentile(50))
		w.gP99.Set(w.lat.percentile(99))
	}
	if !v.DetectionOK {
		w.detViol++
		w.cDetViol.Inc()
		w.fire(RuleDetectionLatency, SevWarning, v.Start,
			fmt.Sprintf("detection on %s took %d bits (SLO <= %d)",
				v.IDHex, v.DetectionLatencyBits, w.cfg.SLOMaxDetectionLatencyBits),
			map[string]int64{"latency_bits": v.DetectionLatencyBits})
	} else {
		w.resolveRule(RuleDetectionLatency, v.End,
			fmt.Sprintf("detection on %s back inside the window (%d bits)", v.IDHex, v.DetectionLatencyBits))
	}

	// Zero-leaked-frames SLO.
	if v.FramesLeaked > 0 {
		w.leakInc++
		w.leaked += int64(v.FramesLeaked)
		w.cLeakInc.Inc()
		w.cLeaked.Add(int64(v.FramesLeaked))
		w.fire(RuleFrameLeak, SevCritical, v.Start,
			fmt.Sprintf("%d attacker frame(s) of %s leaked during the campaign", v.FramesLeaked, v.IDHex),
			map[string]int64{"frames": int64(v.FramesLeaked)})
	} else {
		w.resolveRule(RuleFrameLeak, v.End,
			fmt.Sprintf("campaign on %s leaked nothing", v.IDHex))
	}

	// Eradication SLO.
	switch {
	case v.Eradicated:
		w.erad++
		w.cErad.Inc()
		w.resolveRule(RuleEradication, inc.BusOffAt,
			fmt.Sprintf("attacker on %s driven bus-off after %d attempts", v.IDHex, v.Attempts))
	case !v.EradicationOK:
		w.eradFail++
		w.cEradFail.Inc()
		w.fire(RuleEradication, SevCritical, v.End,
			fmt.Sprintf("full campaign on %s (%d attempts) closed without bus-off", v.IDHex, v.Attempts),
			map[string]int64{"attempts": int64(v.Attempts)})
	}
}

// fire appends a fire transition unless the rule is already active at the
// same severity, and re-emits it onto the hub as EvAlert. Called with w.mu
// held.
func (w *Engine) fire(r Rule, sev Severity, t int64, reason string, evidence map[string]int64) {
	if a := w.active[r]; a != nil && a.Severity == sev.String() && r != RuleCampaign {
		return // already firing at this grade; no churn
	}
	a := Alert{
		Seq:      int64(len(w.log)),
		Rule:     r.String(),
		RuleID:   int(r),
		Severity: sev.String(),
		State:    "fire",
		Time:     t,
		Reason:   reason,
		Evidence: evidence,
	}
	w.log = append(w.log, a)
	w.active[r] = &w.log[len(w.log)-1]
	w.transitions[r].Inc()
	w.gActive[r].Set(1)
	w.probe.Emit(t, telemetry.EvAlert, int64(r), 1)
}

// resolveRule appends a resolve transition when the rule is active. Called
// with w.mu held.
func (w *Engine) resolveRule(r Rule, t int64, reason string) {
	if w.active[r] == nil {
		return
	}
	sev := w.active[r].Severity
	w.log = append(w.log, Alert{
		Seq:      int64(len(w.log)),
		Rule:     r.String(),
		RuleID:   int(r),
		Severity: sev,
		State:    "resolve",
		Time:     t,
		Reason:   reason,
	})
	w.active[r] = nil
	w.transitions[r].Inc()
	w.gActive[r].Set(0)
	w.probe.Emit(t, telemetry.EvAlert, int64(r), 0)
}

// sloLocked assembles the scoreboard. Called with w.mu held.
func (w *Engine) sloLocked() SLOSummary {
	return SLOSummary{
		EngagedIncidents:    w.engaged,
		DetectionP50Bits:    w.lat.percentile(50),
		DetectionP99Bits:    w.lat.percentile(99),
		DetectionViolations: w.detViol,
		Eradications:        w.erad,
		EradicationFailures: w.eradFail,
		LeakIncidents:       w.leakInc,
		FramesLeaked:        w.leaked,
		LadderHitRate:       w.ladRate,
		LadderBaseline:      w.baseline,
	}
}

// SLO snapshots the scoreboard.
func (w *Engine) SLO() SLOSummary {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sloLocked()
}

// Snapshot renders the /alerts payload (slices non-nil for a stable JSON
// shape).
func (w *Engine) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Snapshot{
		Active:   []Alert{},
		Log:      append([]Alert{}, w.log...),
		SLO:      w.sloLocked(),
		Verdicts: len(w.verdicts),
	}
	for r := Rule(0); r < numRules; r++ {
		if a := w.active[r]; a != nil {
			s.Active = append(s.Active, *a)
		}
	}
	return s
}

// Alerts returns a copy of the transition log.
func (w *Engine) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.log...)
}

// Verdicts returns a copy of the per-incident SLO scorecards, in closure
// order (mid-run closures first, recording-edge closures last in canonical
// (Start, ID) order).
func (w *Engine) Verdicts() []IncidentVerdict {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]IncidentVerdict(nil), w.verdicts...)
}

// EncodeAlertLog renders the transition log as durable-store payloads — the
// batch FinalizeDurable hands to Sink.AppendAlerts.
func (w *Engine) EncodeAlertLog() ([][]byte, error) {
	w.mu.Lock()
	log := append([]Alert(nil), w.log...)
	w.mu.Unlock()
	return EncodeAlerts(log)
}

// histCounts exposes the latency histogram for fleet-level merging.
func (w *Engine) histCounts() ([latencyHistBuckets]int64, int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lat.counts, w.lat.n
}
