package watch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DashboardVehicle is one row of the live dashboard's fleet table,
// assembled by the CLI from the fleet's atomic mirrors.
type DashboardVehicle struct {
	ID          int
	Worker      int
	NowBits     int64
	HorizonBits int64
	Done        bool
	Incidents   int
	Active      int // currently-firing alerts
}

// DashboardData is everything RenderDashboard needs for one frame. The CLI
// assembles it from lock-free mirrors (fleet.Vehicles, FleetCollector
// snapshots) so rendering never stalls a worker.
type DashboardData struct {
	Title     string
	Elapsed   time.Duration
	BitsPerSec float64
	Vehicles  []DashboardVehicle
	View      FleetAlertView
}

// ANSI fragments for the dashboard. Kept as plain constants so tests can
// strip them.
const (
	ansiClear  = "\x1b[2J\x1b[H"
	ansiBold   = "\x1b[1m"
	ansiDim    = "\x1b[2m"
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiReset  = "\x1b[0m"
)

func sevColor(sev string) string {
	switch sev {
	case SevCritical.String():
		return ansiRed
	case SevWarning.String():
		return ansiYellow
	default:
		return ansiDim
	}
}

// RenderDashboard renders one full-screen frame of the michican-top live
// view: header, fleet SLO scoreboard, active alerts (worst first), health
// issues, and a per-vehicle progress table. Pure string assembly — the
// caller owns the terminal.
func RenderDashboard(d DashboardData) string {
	var b strings.Builder
	b.WriteString(ansiClear)

	// Header.
	fmt.Fprintf(&b, "%smichican-top%s  %s  elapsed %s  %.2f Mbit/s sim\n",
		ansiBold, ansiReset, d.Title, d.Elapsed.Round(time.Second), d.BitsPerSec/1e6)

	// SLO scoreboard.
	s := d.View.SLO
	detState := ansiGreen + "ok" + ansiReset
	if s.DetectionViolations > 0 {
		detState = ansiRed + fmt.Sprintf("%d violations", s.DetectionViolations) + ansiReset
	}
	leakState := ansiGreen + "0 leaked" + ansiReset
	if s.FramesLeaked > 0 {
		leakState = ansiRed + fmt.Sprintf("%d leaked", s.FramesLeaked) + ansiReset
	}
	eradState := ansiGreen + fmt.Sprintf("%d/%d", s.Eradications, s.Eradications+s.EradicationFailures) + ansiReset
	if s.EradicationFailures > 0 {
		eradState = ansiRed + fmt.Sprintf("%d/%d", s.Eradications, s.Eradications+s.EradicationFailures) + ansiReset
	}
	fmt.Fprintf(&b, "\n%sSLO%s  engaged %d  detect p50/p99 %.0f/%.0f bits (%s)  eradicate %s  frames %s\n",
		ansiBold, ansiReset, s.EngagedIncidents,
		s.DetectionP50Bits, s.DetectionP99Bits, detState, eradState, leakState)

	// Active alerts, worst severity first, then rule name.
	fmt.Fprintf(&b, "\n%sALERTS%s (%d active)\n", ansiBold, ansiReset, d.View.ActiveTotal)
	type row struct {
		vid int
		a   Alert
	}
	var rows []row
	for _, v := range d.View.Vehicles {
		for _, a := range v.Active {
			rows = append(rows, row{v.ID, a})
		}
	}
	sevRank := map[string]int{SevCritical.String(): 0, SevWarning.String(): 1, SevInfo.String(): 2}
	sort.Slice(rows, func(i, j int) bool {
		if ri, rj := sevRank[rows[i].a.Severity], sevRank[rows[j].a.Severity]; ri != rj {
			return ri < rj
		}
		if rows[i].a.Rule != rows[j].a.Rule {
			return rows[i].a.Rule < rows[j].a.Rule
		}
		return rows[i].vid < rows[j].vid
	})
	const maxAlertRows = 12
	for i, r := range rows {
		if i == maxAlertRows {
			fmt.Fprintf(&b, "  %s… %d more%s\n", ansiDim, len(rows)-maxAlertRows, ansiReset)
			break
		}
		fmt.Fprintf(&b, "  %s%-8s%s v%-4d %-20s t=%-12d %s\n",
			sevColor(r.a.Severity), r.a.Severity, ansiReset, r.vid, r.a.Rule, r.a.Time, r.a.Reason)
	}
	if len(rows) == 0 {
		fmt.Fprintf(&b, "  %snone%s\n", ansiGreen, ansiReset)
	}

	// Wall-clock health issues.
	if len(d.View.Health) > 0 {
		fmt.Fprintf(&b, "\n%sHEALTH%s\n", ansiBold, ansiReset)
		for _, is := range d.View.Health {
			fmt.Fprintf(&b, "  %s%-8s%s %-14s %s\n",
				sevColor(is.Severity), is.Severity, ansiReset, is.Rule, is.Reason)
		}
	}

	// Vehicle progress table.
	fmt.Fprintf(&b, "\n%sVEHICLES%s (%d)\n", ansiBold, ansiReset, len(d.Vehicles))
	fmt.Fprintf(&b, "  %sid    wrk   progress                    now-bits        inc  alerts%s\n", ansiDim, ansiReset)
	const maxVehicleRows = 24
	for i, v := range d.Vehicles {
		if i == maxVehicleRows {
			fmt.Fprintf(&b, "  %s… %d more%s\n", ansiDim, len(d.Vehicles)-maxVehicleRows, ansiReset)
			break
		}
		frac := 0.0
		if v.HorizonBits > 0 {
			frac = float64(v.NowBits) / float64(v.HorizonBits)
			if frac > 1 {
				frac = 1
			}
		}
		const barW = 20
		filled := int(frac * barW)
		bar := strings.Repeat("█", filled) + strings.Repeat("░", barW-filled)
		state := " "
		if v.Done {
			state = ansiGreen + "✓" + ansiReset
		}
		alerts := fmt.Sprintf("%d", v.Active)
		if v.Active > 0 {
			alerts = ansiRed + alerts + ansiReset
		}
		fmt.Fprintf(&b, "  %-5d %-5d %s %3.0f%% %s %-15d %-4d %s\n",
			v.ID, v.Worker, bar, frac*100, state, v.NowBits, v.Incidents, alerts)
	}
	return b.String()
}

// StripANSI removes the escape sequences RenderDashboard emits — for tests
// and for piping the dashboard to a file.
func StripANSI(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == 0x1b {
			for i < len(s) && s[i] != 'm' && s[i] != 'H' && s[i] != 'J' {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
