package watch

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Issue is one wall-clock health finding. Unlike Alert transitions, issues
// are evaluated on read (Monitor.Check) against the host clock: they never
// enter the deterministic alert log, never emit EvAlert, and are never
// persisted — a crash-resumed run must not replay the previous process's
// fsync stalls.
type Issue struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Reason   string `json:"reason"`
}

// Probe is one wall-clock health check: it inspects the host at now and
// reports zero or more issues.
type Probe func(now time.Time) []Issue

// Monitor aggregates wall-clock probes — the /healthz liveness source.
type Monitor struct {
	mu     sync.Mutex
	probes []Probe
}

// Attach registers a probe.
func (m *Monitor) Attach(p Probe) {
	m.mu.Lock()
	m.probes = append(m.probes, p)
	m.mu.Unlock()
}

// Check runs every probe. A nil Monitor is healthy.
func (m *Monitor) Check(now time.Time) []Issue {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	probes := append([]Probe(nil), m.probes...)
	m.mu.Unlock()
	var issues []Issue
	for _, p := range probes {
		issues = append(issues, p(now)...)
	}
	return issues
}

// StoreBacklogProbe flags a store writer whose drain backlog (events
// buffered but not yet appended) exceeds max — the writer goroutine is
// falling behind or wedged.
func StoreBacklogProbe(backlog func() int64, max int64) Probe {
	return func(time.Time) []Issue {
		if b := backlog(); b > max {
			return []Issue{{
				Rule:     RuleStoreBacklog.String(),
				Severity: SevCritical.String(),
				Reason:   fmt.Sprintf("store writer backlog %d events exceeds bound %d", b, max),
			}}
		}
		return nil
	}
}

// FsyncStallProbe flags a store whose group-commit fsync has not completed
// within max — the disk (or the writer goroutine) is stalled.
func FsyncStallProbe(age func(now time.Time) time.Duration, max time.Duration) Probe {
	return func(now time.Time) []Issue {
		if a := age(now); a > max {
			return []Issue{{
				Rule:     RuleFsyncStall.String(),
				Severity: SevCritical.String(),
				Reason:   fmt.Sprintf("no store fsync for %s (bound %s)", a.Round(time.Millisecond), max),
			}}
		}
		return nil
	}
}

// VehicleProgress is one fleet vehicle's advancement snapshot, read from the
// shard's atomic mirrors (never from the worker itself).
type VehicleProgress struct {
	ID      int
	NowBits int64
	Done    bool
}

// FleetWatcher detects stalled fleet workers: a vehicle that is not done and
// whose NowBits has not advanced for stallAfter is flagged. It keeps a
// per-vehicle high-water mark with the wall time it last moved.
type FleetWatcher struct {
	mu         sync.Mutex
	fetch      func() []VehicleProgress
	stallAfter time.Duration
	seen       map[int]*vehicleMark
}

type vehicleMark struct {
	nowBits int64
	movedAt time.Time
}

// NewFleetWatcher builds a watcher over fetch (typically wrapping
// fleet.Fleet.Vehicles).
func NewFleetWatcher(fetch func() []VehicleProgress, stallAfter time.Duration) *FleetWatcher {
	return &FleetWatcher{
		fetch:      fetch,
		stallAfter: stallAfter,
		seen:       make(map[int]*vehicleMark),
	}
}

// Check is a Probe: it compares each live vehicle's position against its
// high-water mark and flags the ones stuck past the stall bound.
func (fw *FleetWatcher) Check(now time.Time) []Issue {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var issues []Issue
	for _, vp := range fw.fetch() {
		m, ok := fw.seen[vp.ID]
		if !ok {
			fw.seen[vp.ID] = &vehicleMark{nowBits: vp.NowBits, movedAt: now}
			continue
		}
		if vp.NowBits != m.nowBits {
			m.nowBits = vp.NowBits
			m.movedAt = now
			continue
		}
		if vp.Done {
			continue
		}
		if stuck := now.Sub(m.movedAt); stuck > fw.stallAfter {
			issues = append(issues, Issue{
				Rule:     RuleWorkerStall.String(),
				Severity: SevCritical.String(),
				Reason: fmt.Sprintf("vehicle %d stalled at bit %d for %s",
					vp.ID, vp.NowBits, stuck.Round(time.Millisecond)),
			})
		}
	}
	return issues
}

// VehicleAlerts is one vehicle's contribution to the fleet alert view.
type VehicleAlerts struct {
	ID     int        `json:"id"`
	Active []Alert    `json:"active"`
	SLO    SLOSummary `json:"slo"`
}

// FleetAlertView is the /fleet/alerts payload: every vehicle's active alerts
// and SLO scoreboard, fleet-wide rollups, and the wall-clock health issues.
type FleetAlertView struct {
	Vehicles    []VehicleAlerts  `json:"vehicles"`
	ActiveTotal int              `json:"active_total"`
	ByRule      map[string]int   `json:"by_rule"`
	SLO         SLOSummary       `json:"slo"`
	Health      []Issue          `json:"health"`
	Transitions map[string]int64 `json:"transitions"`
}

// FleetCollector aggregates per-vehicle watch engines into fleet-level
// views. Registration is cheap (a map insert); Snapshot does the merging,
// so workers never block on the collector.
type FleetCollector struct {
	mu      sync.Mutex
	engines map[int]*Engine
	monitor *Monitor
}

// NewFleetCollector builds a collector; monitor (optional) contributes the
// Health section of snapshots.
func NewFleetCollector(monitor *Monitor) *FleetCollector {
	return &FleetCollector{engines: make(map[int]*Engine), monitor: monitor}
}

// Register adds (or replaces) a vehicle's engine.
func (fc *FleetCollector) Register(id int, e *Engine) {
	fc.mu.Lock()
	fc.engines[id] = e
	fc.mu.Unlock()
}

// Unregister drops a vehicle (e.g. on churn retirement).
func (fc *FleetCollector) Unregister(id int) {
	fc.mu.Lock()
	delete(fc.engines, id)
	fc.mu.Unlock()
}

// Snapshot merges every registered engine. Percentiles are recomputed from
// the merged exact histograms, so the fleet p50/p99 are true percentiles
// over all engaged incidents, not averages of averages.
func (fc *FleetCollector) Snapshot(now time.Time) FleetAlertView {
	fc.mu.Lock()
	ids := make([]int, 0, len(fc.engines))
	engines := make(map[int]*Engine, len(fc.engines))
	for id, e := range fc.engines {
		ids = append(ids, id)
		engines[id] = e
	}
	mon := fc.monitor
	fc.mu.Unlock()
	sort.Ints(ids)

	view := FleetAlertView{
		Vehicles:    []VehicleAlerts{},
		ByRule:      make(map[string]int),
		Transitions: make(map[string]int64),
		Health:      []Issue{},
	}
	var merged latencyHist
	for _, id := range ids {
		e := engines[id]
		snap := e.Snapshot()
		view.Vehicles = append(view.Vehicles, VehicleAlerts{
			ID:     id,
			Active: snap.Active,
			SLO:    snap.SLO,
		})
		view.ActiveTotal += len(snap.Active)
		for _, a := range snap.Active {
			view.ByRule[a.Rule]++
		}
		view.Transitions["total"] += int64(len(snap.Log))
		view.SLO.EngagedIncidents += snap.SLO.EngagedIncidents
		view.SLO.DetectionViolations += snap.SLO.DetectionViolations
		view.SLO.Eradications += snap.SLO.Eradications
		view.SLO.EradicationFailures += snap.SLO.EradicationFailures
		view.SLO.LeakIncidents += snap.SLO.LeakIncidents
		view.SLO.FramesLeaked += snap.SLO.FramesLeaked
		counts, n := e.histCounts()
		for v, c := range counts {
			merged.counts[v] += c
		}
		merged.n += n
	}
	view.SLO.DetectionP50Bits = merged.percentile(50)
	view.SLO.DetectionP99Bits = merged.percentile(99)
	if issues := mon.Check(now); issues != nil {
		view.Health = issues
	}
	return view
}
