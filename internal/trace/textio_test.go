package trace

import (
	"testing"
	"testing/quick"

	"michican/internal/can"
)

func TestFormatParseRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		bits := make([]can.Level, len(raw))
		for i, b := range raw {
			if b {
				bits[i] = can.Recessive
			}
		}
		out, err := ParseBits(FormatBits(bits, 40))
		if err != nil || len(out) != len(bits) {
			return false
		}
		for i := range bits {
			if out[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBitsWrapping(t *testing.T) {
	bits := make([]can.Level, 10)
	s := FormatBits(bits, 4)
	if s != "0000\n0000\n00\n" {
		t.Errorf("wrapped output = %q", s)
	}
	if FormatBits(bits, 0) != "0000000000\n" {
		t.Error("unwrapped output wrong")
	}
}

func TestParseBitsIgnoresWhitespace(t *testing.T) {
	got, err := ParseBits(" 0 1\n0\t1\r\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []can.Level{can.Dominant, can.Recessive, can.Dominant, can.Recessive}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bit %d = %v", i, got[i])
		}
	}
}

func TestParseBitsRejectsGarbage(t *testing.T) {
	if _, err := ParseBits("0102"); err == nil {
		t.Error("invalid character accepted")
	}
}
