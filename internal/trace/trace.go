// Package trace is the simulation's logic analyzer (Sec. V-A): a passive bus
// tap that records every resolved bit, plus decoders that reconstruct
// frames, destroyed transmission attempts, and error episodes from the raw
// bit stream. The evaluation harness uses it to measure bus-off times
// (Table II), the Experiment-5 interleaving pattern (Fig. 6), and bus load
// (Sec. V-E).
package trace

import (
	"michican/internal/bus"
	"michican/internal/can"
)

// Recorder is a bus.Tap that stores the resolved level of every bit. Storage
// is bit-packed — one uint64 word per 64 bits, a set bit meaning recessive —
// an 8× memory cut over level-per-byte on long captures; Bits() materializes
// (and caches) the conventional []can.Level view for the decoders.
type Recorder struct {
	start bus.BitTime
	words []uint64
	n     int
	began bool
	// view is the lazily materialized prefix of the stream. The stream is
	// append-only, so the prefix never goes stale — Bits() only extends it.
	view []can.Level
}

var (
	_ bus.Tap              = (*Recorder)(nil)
	_ bus.TapFastForwarder = (*Recorder)(nil)
	_ bus.TapRunObserver   = (*Recorder)(nil)
)

// NewRecorder creates an empty recorder; attach it with Bus.AttachTap.
func NewRecorder() *Recorder {
	return &Recorder{words: make([]uint64, 0, 1<<10)}
}

// Bit implements bus.Tap.
func (r *Recorder) Bit(t bus.BitTime, level can.Level) {
	if !r.began {
		r.start = t
		r.began = true
	}
	if r.n&63 == 0 {
		r.words = append(r.words, 0)
	}
	r.words[len(r.words)-1] |= uint64(level&1) << (r.n & 63)
	r.n++
}

// BitRun implements bus.TapRunObserver: record a resolved span in one call,
// word-packed via the same routine the bus's contested-window path uses.
// A zero-length run is a no-op: it must not latch the stream start time,
// so an empty delivery before the first real bit leaves Start() untouched.
func (r *Recorder) BitRun(from bus.BitTime, levels []can.Level) {
	if len(levels) == 0 {
		return
	}
	if !r.began {
		r.start = from
		r.began = true
	}
	for need := (r.n + len(levels) + 63) >> 6; len(r.words) < need; {
		r.words = append(r.words, 0)
	}
	can.PackLevels(r.words, r.n, levels)
	r.n += len(levels)
}

// SkipIdle implements bus.TapFastForwarder: record to-from recessive bits as
// word fills. The resulting bit stream is identical to per-bit recording, so
// decoders (and golden-trace comparisons) cannot tell a fast-forwarded run
// from an exact-stepped one.
func (r *Recorder) SkipIdle(from, to bus.BitTime) {
	if !r.began {
		r.start = from
		r.began = true
	}
	n := int(to - from)
	for n > 0 {
		off := r.n & 63
		if off == 0 {
			r.words = append(r.words, 0)
		}
		take := 64 - off
		if take > n {
			take = n
		}
		r.words[len(r.words)-1] |= (^uint64(0) >> (64 - take)) << off
		r.n += take
		n -= take
	}
}

// Start returns the bit time of the first recorded bit.
func (r *Recorder) Start() bus.BitTime { return r.start }

// Len returns the number of recorded bits.
func (r *Recorder) Len() int { return r.n }

// Bits returns the recorded levels (shared storage; treat as read-only).
func (r *Recorder) Bits() []can.Level {
	for i := len(r.view); i < r.n; i++ {
		r.view = append(r.view, can.Level(r.words[i>>6]>>(i&63)&1))
	}
	return r.view
}

// EventKind distinguishes decoded bus episodes.
type EventKind uint8

const (
	// FrameEvent is a complete, well-formed frame.
	FrameEvent EventKind = iota + 1
	// ErrorEvent is a transmission attempt destroyed by an error frame (the
	// signature of a MichiCAN counterattack or any other bus error).
	ErrorEvent
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case FrameEvent:
		return "frame"
	case ErrorEvent:
		return "error"
	default:
		return "unknown"
	}
}

// Event is one decoded episode on the bus.
type Event struct {
	// Kind classifies the episode.
	Kind EventKind
	// Start is the bit time of the episode's SOF.
	Start bus.BitTime
	// End is the bit time of the episode's last busy bit (last EOF bit for
	// frames; the last dominant bit of the error signalling for errors).
	End bus.BitTime
	// Frame is the decoded frame for FrameEvent.
	Frame can.Frame
	// ID is the identifier recovered from the arbitration field; valid for
	// FrameEvent always and for ErrorEvent when IDComplete is true (the
	// attempt survived past the ID field — true for MichiCAN counterattacks,
	// which by design strike only after arbitration).
	ID can.ID
	// IDComplete reports whether all 11 ID bits were recovered.
	IDComplete bool
}

// Bits returns the episode length in bits.
func (e Event) Bits() int64 { return int64(e.End-e.Start) + 1 }

// Decode reconstructs the episode sequence from a recorded bit stream that
// begins at bit time start. The stream is assumed idle before its first bit
// (true for recordings started before traffic, as in the experiments).
func Decode(bits []can.Level, start bus.BitTime) []Event {
	var events []Event
	idle := can.IdleForSOF
	i := 0
	for i < len(bits) {
		if bits[i] == can.Recessive {
			idle++
			i++
			continue
		}
		if idle < can.IdleForSOF {
			// Dominant without a preceding idle window: stray bits from a
			// partially captured episode; skip.
			idle = 0
			i++
			continue
		}
		idle = 0
		ev, consumed := decodeEpisode(bits[i:], start+bus.BitTime(i))
		events = append(events, ev)
		i += consumed
		if ev.Kind == FrameEvent {
			// The consumed frame already ends with the recessive ACK
			// delimiter plus 7 EOF bits; with the 3-bit intermission that
			// satisfies the 11-recessive SOF rule, so back-to-back frames
			// (3-bit gaps) decode correctly.
			idle = 1 + can.EOFBits
		}
	}
	return events
}

// decodeEpisode parses one episode starting at a SOF bit.
func decodeEpisode(bits []can.Level, start bus.BitTime) (Event, int) {
	if f, n, err := can.DecodeWire(bits); err == nil {
		return Event{
			Kind:       FrameEvent,
			Start:      start,
			End:        start + bus.BitTime(n) - 1,
			Frame:      f,
			ID:         f.ID,
			IDComplete: true,
		}, n
	}
	// Destroyed attempt: recover what we can of the ID, then consume
	// through the error signalling until the bus has been recessive for a
	// full inter-attempt gap (11 bits).
	ev := Event{Kind: ErrorEvent, Start: start}
	ev.ID, ev.IDComplete = partialID(bits)
	lastBusy := 0
	run := 0
	n := 0
	for n < len(bits) {
		if bits[n] == can.Dominant {
			lastBusy = n
			run = 0
		} else {
			run++
			if run >= can.IdleForSOF {
				break
			}
		}
		n++
	}
	ev.End = start + bus.BitTime(lastBusy)
	consumed := lastBusy + 1
	if consumed < 1 {
		consumed = 1
	}
	return ev, consumed
}

// partialID destuffs the opening of an attempt and recovers the 11 ID bits
// if they were all transmitted before the episode collapsed.
func partialID(bits []can.Level) (can.ID, bool) {
	var d can.Destuffer
	d.Reset()
	var id can.ID
	got := 0
	for i := 0; i < len(bits) && got < 1+can.IDBits; i++ {
		payload, err := d.Next(bits[i])
		if err != nil {
			return 0, false
		}
		if !payload {
			continue
		}
		if got > 0 { // skip SOF
			id = id<<1 | can.ID(bits[i]&1)
		}
		got++
	}
	return id, got == 1+can.IDBits
}

// BusyBits returns the total number of bits covered by episodes.
func BusyBits(events []Event) int64 {
	var sum int64
	for _, e := range events {
		sum += e.Bits()
	}
	return sum
}

// Load returns the overall bus load of a recording: episode bits divided by
// total recorded bits.
func Load(events []Event, totalBits int64) float64 {
	if totalBits == 0 {
		return 0
	}
	return float64(BusyBits(events)) / float64(totalBits)
}

// WindowedLoad computes the bus load over consecutive windows of the given
// width (in bits), for spike analysis (Sec. V-E: the counterattack causes a
// short load spike around the bus-off episode).
func WindowedLoad(bits []can.Level, events []Event, start bus.BitTime, window int) []float64 {
	if window <= 0 || len(bits) == 0 {
		return nil
	}
	busy := make([]bool, len(bits))
	for _, e := range events {
		for t := e.Start; t <= e.End; t++ {
			i := int(t - start)
			if i >= 0 && i < len(busy) {
				busy[i] = true
			}
		}
	}
	n := (len(bits) + window - 1) / window
	loads := make([]float64, n)
	for w := 0; w < n; w++ {
		lo := w * window
		hi := lo + window
		if hi > len(bits) {
			hi = len(bits)
		}
		count := 0
		for i := lo; i < hi; i++ {
			if busy[i] {
				count++
			}
		}
		loads[w] = float64(count) / float64(hi-lo)
	}
	return loads
}

// AttemptsOf filters the error episodes whose recovered ID matches id — the
// destroyed retransmissions of one attacker.
func AttemptsOf(events []Event, id can.ID) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == ErrorEvent && e.IDComplete && e.ID == id {
			out = append(out, e)
		}
	}
	return out
}
