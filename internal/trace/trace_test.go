package trace

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/fsm"
)

func idle(n int) []can.Level {
	out := make([]can.Level, n)
	for i := range out {
		out[i] = can.Recessive
	}
	return out
}

func TestRecorderCapturesBits(t *testing.T) {
	b := bus.New(bus.Rate500k)
	r := NewRecorder()
	b.AttachTap(r)
	b.Run(100)
	if r.Len() != 100 {
		t.Fatalf("recorded %d bits, want 100", r.Len())
	}
	if r.Start() != 0 {
		t.Fatalf("start = %d", r.Start())
	}
}

func TestDecodeSingleFrame(t *testing.T) {
	f := can.Frame{ID: 0x123, Data: []byte{1, 2, 3}}
	stream := append(idle(12), can.WireBits(&f, can.Dominant)...)
	stream = append(stream, idle(20)...)

	events := Decode(stream, 0)
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != FrameEvent || !e.Frame.Equal(&f) || !e.IDComplete || e.ID != 0x123 {
		t.Fatalf("event = %+v", e)
	}
	if e.Start != 12 {
		t.Errorf("frame start = %d, want 12", e.Start)
	}
	if e.Bits() != int64(can.WireLen(&f)) {
		t.Errorf("frame span = %d bits, want %d", e.Bits(), can.WireLen(&f))
	}
}

func TestDecodeMultipleFrames(t *testing.T) {
	f1 := can.Frame{ID: 0x100, Data: []byte{1}}
	f2 := can.Frame{ID: 0x200, Data: []byte{2}}
	stream := append(idle(12), can.WireBits(&f1, can.Dominant)...)
	stream = append(stream, idle(11)...)
	stream = append(stream, can.WireBits(&f2, can.Dominant)...)
	stream = append(stream, idle(11)...)

	events := Decode(stream, 0)
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(events))
	}
	if events[0].Frame.ID != 0x100 || events[1].Frame.ID != 0x200 {
		t.Errorf("wrong frames: %v %v", events[0].Frame, events[1].Frame)
	}
}

func TestDecodeErrorEpisode(t *testing.T) {
	// Hand-build a destroyed attempt: SOF + 11-bit ID 0x173 + RTR, then the
	// bus pulled dominant for 7 bits and an error flag — i.e. >6 dominant
	// bits — then recessive recovery.
	attempt := []can.Level{can.Dominant} // SOF
	id := can.ID(0x173)
	for i := 0; i < can.IDBits; i++ {
		attempt = append(attempt, id.Bit(i))
	}
	attempt = append(attempt, can.Dominant) // RTR
	for i := 0; i < 9; i++ {                // pull + error flag
		attempt = append(attempt, can.Dominant)
	}
	stream := append(idle(12), attempt...)
	stream = append(stream, idle(30)...)

	events := Decode(stream, 0)
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != ErrorEvent {
		t.Fatalf("kind = %v, want error", e.Kind)
	}
	if !e.IDComplete || e.ID != 0x173 {
		t.Errorf("recovered ID %v (complete=%v), want 0x173", e.ID, e.IDComplete)
	}
	if e.Bits() != int64(len(attempt)) {
		t.Errorf("span = %d, want %d", e.Bits(), len(attempt))
	}
}

func TestDecodeIgnoresStrayDominants(t *testing.T) {
	// A dominant bit without 11 preceding recessive bits must not create an
	// event (it belongs to an episode already consumed or to noise).
	f := can.Frame{ID: 0x100}
	stream := append(idle(12), can.WireBits(&f, can.Dominant)...)
	stream = append(stream, idle(2)...) // frame tail (8R) + 2 < 11: not idle yet
	stream = append(stream, can.Dominant, can.Dominant)
	stream = append(stream, idle(30)...)
	events := Decode(stream, 0)
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want only the initial frame", len(events))
	}
}

func TestLoadComputation(t *testing.T) {
	f := can.Frame{ID: 0x100, Data: make([]byte, 8)}
	stream := append(idle(12), can.WireBits(&f, can.Dominant)...)
	stream = append(stream, idle(50)...)
	events := Decode(stream, 0)
	load := Load(events, int64(len(stream)))
	wantBusy := float64(can.WireLen(&f))
	want := wantBusy / float64(len(stream))
	if load < want-0.001 || load > want+0.001 {
		t.Errorf("load = %f, want %f", load, want)
	}
	if Load(events, 0) != 0 {
		t.Error("zero-length recording must have zero load")
	}
}

func TestWindowedLoadSpike(t *testing.T) {
	// idle window, then a dense frame window: the loads must differ sharply.
	f := can.Frame{ID: 0x001, Data: make([]byte, 8)}
	stream := append(idle(200), can.WireBits(&f, can.Dominant)...)
	stream = append(stream, idle(100)...)
	events := Decode(stream, 0)
	loads := WindowedLoad(stream, events, 0, 100)
	if len(loads) < 3 {
		t.Fatalf("windows = %d", len(loads))
	}
	if loads[0] != 0 {
		t.Errorf("idle window load = %f, want 0", loads[0])
	}
	if loads[2] < 0.5 {
		t.Errorf("frame window load = %f, want ≥0.5", loads[2])
	}
	if WindowedLoad(stream, events, 0, 0) != nil {
		t.Error("zero window must return nil")
	}
}

// TestEndToEndAttackTrace decodes a full MichiCAN counterattack episode from
// a live simulation: 32 destroyed attempts of the attacker's ID, no complete
// attacker frames.
func TestEndToEndAttackTrace(t *testing.T) {
	b := bus.New(bus.Rate50k)
	r := NewRecorder()
	b.AttachTap(r)

	v, err := fsm.NewIVN([]can.ID{0x173})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fsm.NewDetectionSet(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := core.New(core.Config{Name: "m", FSM: fsm.Build(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(core.NewECU(defCtl, def))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)
	if err := att.Enqueue(can.Frame{ID: 0x064, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 3000) {
		t.Fatal("attacker not bused off")
	}
	b.Run(30) // flush trailing recovery bits into the trace

	events := Decode(r.Bits(), r.Start())
	attempts := AttemptsOf(events, 0x064)
	if len(attempts) != 32 {
		t.Fatalf("decoded %d destroyed attempts, want 32", len(attempts))
	}
	for _, e := range events {
		if e.Kind == FrameEvent && e.Frame.ID == 0x064 {
			t.Fatal("attacker frame completed despite the defense")
		}
	}
	// The bus-off time per the paper: first bit of the malicious message to
	// the end of the final error episode.
	busOff := attempts[len(attempts)-1].End - attempts[0].Start + 1
	if busOff < 1000 || busOff > 1400 {
		t.Errorf("bus-off span = %d bits, want ≈1230", busOff)
	}
	t.Logf("trace-measured bus-off time: %d bits", busOff)
}
