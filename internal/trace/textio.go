package trace

import (
	"fmt"
	"strings"

	"michican/internal/can"
)

// FormatBits renders a recorded level sequence as '0'/'1' characters (0 =
// dominant), wrapped at the given width (0 = single line). This is the
// interchange format between michican-sim and candump.
func FormatBits(bits []can.Level, width int) string {
	var b strings.Builder
	for i, l := range bits {
		if width > 0 && i > 0 && i%width == 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('0' + byte(l))
	}
	b.WriteByte('\n')
	return b.String()
}

// ParseBits parses a '0'/'1' dump back into levels. Whitespace is ignored;
// any other character is an error.
func ParseBits(s string) ([]can.Level, error) {
	out := make([]can.Level, 0, len(s))
	for i, r := range s {
		switch r {
		case '0':
			out = append(out, can.Dominant)
		case '1':
			out = append(out, can.Recessive)
		case ' ', '\t', '\n', '\r':
		default:
			return nil, fmt.Errorf("trace: invalid character %q at offset %d", r, i)
		}
	}
	return out, nil
}
