package trace

import (
	"math/rand"
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

// pattern builds a deterministic pseudo-random level sequence of length n.
func pattern(seed int64, n int) []can.Level {
	rng := rand.New(rand.NewSource(seed))
	levels := make([]can.Level, n)
	for i := range levels {
		if rng.Intn(2) == 1 {
			levels[i] = can.Recessive
		} else {
			levels[i] = can.Dominant
		}
	}
	return levels
}

// feedPerBit records a level sequence one Bit() call at a time.
func feedPerBit(r *Recorder, from bus.BitTime, levels []can.Level) {
	for i, lv := range levels {
		r.Bit(from+bus.BitTime(i), lv)
	}
}

// requireSameBits asserts two recorders hold identical streams.
func requireSameBits(t *testing.T, got, want *Recorder) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.Start() != want.Start() {
		t.Fatalf("Start = %d, want %d", got.Start(), want.Start())
	}
	gb, wb := got.Bits(), want.Bits()
	for i := range wb {
		if gb[i] != wb[i] {
			t.Fatalf("bit %d = %v, want %v", i, gb[i], wb[i])
		}
	}
}

// TestBitRunMatchesBit: a single BitRun delivery produces the exact bit
// stream of per-bit recording, across every packing-relevant span length
// (sub-word, exactly one word, word+1, multi-word, multi-word with tail).
func TestBitRunMatchesBit(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 128, 200, 1000} {
		levels := pattern(int64(n), n)
		run, ref := NewRecorder(), NewRecorder()
		run.BitRun(40, levels)
		feedPerBit(ref, 40, levels)
		requireSameBits(t, run, ref)
	}
}

// TestBitRunWordBoundaryOffsets: BitRun deliveries landing at every offset
// within a 64-bit storage word — the span start, end, or both can fall
// mid-word, and the packed words must still agree with per-bit recording.
func TestBitRunWordBoundaryOffsets(t *testing.T) {
	for _, prefix := range []int{0, 1, 31, 62, 63, 64, 65, 127} {
		for _, n := range []int{1, 2, 63, 64, 65, 130} {
			pre := pattern(1, prefix)
			span := pattern(int64(prefix*1000+n), n)
			run, ref := NewRecorder(), NewRecorder()
			feedPerBit(run, 0, pre)
			run.BitRun(bus.BitTime(prefix), span)
			feedPerBit(ref, 0, pre)
			feedPerBit(ref, bus.BitTime(prefix), span)
			requireSameBits(t, run, ref)
		}
	}
}

// TestBitRunChainedSpans: back-to-back BitRun deliveries of varying lengths
// (the frame fast path delivers one span per forwarded frame) keep the
// packing consistent across span joins that straddle word boundaries.
func TestBitRunChainedSpans(t *testing.T) {
	run, ref := NewRecorder(), NewRecorder()
	at := bus.BitTime(0)
	for i, n := range []int{5, 59, 64, 1, 63, 66, 128, 3} {
		span := pattern(int64(i+1), n)
		run.BitRun(at, span)
		feedPerBit(ref, at, span)
		at += bus.BitTime(n)
	}
	requireSameBits(t, run, ref)
}

// TestBitRunAfterSkipIdle: interleaving the idle fast path's word-fill
// recording with BitRun spans and per-bit stretches — the three recording
// paths must compose into one indistinguishable stream.
func TestBitRunAfterSkipIdle(t *testing.T) {
	for _, idle := range []int{1, 11, 63, 64, 65, 200} {
		span := pattern(int64(idle), 97)
		run, ref := NewRecorder(), NewRecorder()
		run.Bit(0, can.Dominant)
		run.SkipIdle(1, bus.BitTime(1+idle))
		run.BitRun(bus.BitTime(1+idle), span)

		ref.Bit(0, can.Dominant)
		for i := 0; i < idle; i++ {
			ref.Bit(bus.BitTime(1+i), can.Recessive)
		}
		feedPerBit(ref, bus.BitTime(1+idle), span)
		requireSameBits(t, run, ref)
	}
}

// TestBitRunZeroLength: an empty span is a no-op — no bits recorded, and in
// particular a zero-length run before the first real delivery must not latch
// the stream start time (splice boundaries can propose empty clamps).
func TestBitRunZeroLength(t *testing.T) {
	r := NewRecorder()
	r.BitRun(500, nil)
	r.BitRun(700, []can.Level{})
	if r.Len() != 0 {
		t.Fatalf("Len = %d after zero-length runs, want 0", r.Len())
	}
	r.BitRun(900, []can.Level{can.Dominant})
	if r.Start() != 900 {
		t.Errorf("Start = %d, want 900 (zero-length run must not latch start)", r.Start())
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}

	// Zero-length runs interleaved with real spans leave the stream identical.
	run, ref := NewRecorder(), NewRecorder()
	a, b := pattern(3, 37), pattern(4, 91)
	run.BitRun(0, a)
	run.BitRun(bus.BitTime(len(a)), nil)
	run.BitRun(bus.BitTime(len(a)), b)
	feedPerBit(ref, 0, a)
	feedPerBit(ref, bus.BitTime(len(a)), b)
	requireSameBits(t, run, ref)
}

// TestBitRunBackToBackSplices: consecutive full-frame splice deliveries with
// no exact bits between them — every combination of span end offset and next
// span start offset within a storage word must pack identically to per-bit
// recording.
func TestBitRunBackToBackSplices(t *testing.T) {
	// Frame-ish span lengths that cover mid-word starts and ends (a classical
	// CAN frame window is 47..111+ bits, never word-aligned in general).
	lens := []int{47, 55, 64, 65, 95, 111, 128, 63}
	for shift := 0; shift < 3; shift++ {
		run, ref := NewRecorder(), NewRecorder()
		at := bus.BitTime(shift * 17)
		if shift > 0 {
			pre := pattern(int64(shift), shift*17)
			feedPerBit(run, 0, pre)
			feedPerBit(ref, 0, pre)
		}
		for i, n := range lens {
			span := pattern(int64(100*shift+i), n)
			run.BitRun(at, span)
			feedPerBit(ref, at, span)
			at += bus.BitTime(n)
		}
		requireSameBits(t, run, ref)
	}
}

// TestBitRunSetsStart: a BitRun as the first delivery must latch the stream
// start time, exactly like the first Bit() call.
func TestBitRunSetsStart(t *testing.T) {
	r := NewRecorder()
	r.BitRun(1234, []can.Level{can.Dominant, can.Recessive})
	if r.Start() != 1234 {
		t.Errorf("Start = %d, want 1234", r.Start())
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}
