// Package sched implements the classical CAN schedulability analysis of
// Davis, Burns, Bril & Lukkien ("Controller Area Network (CAN)
// schedulability analysis: Refuted, revisited and revised", Real-Time
// Systems 35, 2007) — the paper's reference [49] and the source of its
// deadline arguments: the 10 ms minimum deadline that bounds the tolerable
// bus-off time (Sec. V-C) and the harmlessness of miscellaneous attacks
// (Sec. IV-A).
//
// The analysis computes, for every periodic message of a communication
// matrix, its worst-case transmission time C, blocking from lower-priority
// traffic B, and worst-case response time R via the standard fixed-point
// iteration. A message set is schedulable when every R stays within its
// deadline (here: the period, the usual implicit-deadline assumption).
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/restbus"
)

// FrameTimeBits returns the worst-case on-wire length of a base-format data
// frame with s payload bytes: the 34+8s stuffable bits, the maximum
// ⌊(34+8s−1)/4⌋ stuff bits, and the 13-bit fixed trailer (CRC delimiter,
// ACK, ACK delimiter, EOF, intermission). For s = 8 this is the classic 135
// bit times.
func FrameTimeBits(dataLen int) int {
	stuffable := 34 + 8*dataLen
	maxStuff := (stuffable - 1) / 4
	return stuffable + maxStuff + 13
}

// Result is the analysis outcome for one message.
type Result struct {
	// ID is the message identifier (priority).
	ID can.ID
	// C is the worst-case transmission time.
	C time.Duration
	// B is the blocking time: the longest lower-priority frame that may
	// occupy the bus when the message becomes ready.
	B time.Duration
	// R is the worst-case response time (queueing + transmission).
	R time.Duration
	// Deadline is the implicit deadline (the period).
	Deadline time.Duration
	// Schedulable reports R ≤ Deadline.
	Schedulable bool
}

// String renders the result row.
func (r Result) String() string {
	verdict := "ok"
	if !r.Schedulable {
		verdict = "MISSES DEADLINE"
	}
	return fmt.Sprintf("%s C=%v B=%v R=%v D=%v %s", r.ID, r.C, r.B, r.R, r.Deadline, verdict)
}

// Errors returned by Analyze.
var (
	// ErrEmptyMatrix indicates a matrix without messages.
	ErrEmptyMatrix = errors.New("sched: empty matrix")
	// ErrOverUtilized indicates total utilization ≥ 1: the fixed point
	// cannot converge for at least one message.
	ErrOverUtilized = errors.New("sched: bus utilization ≥ 100%")
)

// Utilization returns the worst-case bus utilization of the matrix at the
// given rate: Σ C_m / T_m.
func Utilization(m *restbus.Matrix, rate bus.Rate) float64 {
	u := 0.0
	for _, msg := range m.Messages {
		if msg.Period <= 0 {
			continue
		}
		c := float64(FrameTimeBits(msg.DLC)) / float64(rate)
		u += c / msg.Period.Seconds()
	}
	return u
}

// Analyze runs the response-time analysis over the matrix at the given bus
// rate, assuming priority equals the CAN ID (lower wins) and implicit
// deadlines (deadline = period). Results come back in ascending ID order.
func Analyze(m *restbus.Matrix, rate bus.Rate) ([]Result, error) {
	if m == nil || len(m.Messages) == 0 {
		return nil, ErrEmptyMatrix
	}
	if Utilization(m, rate) >= 1 {
		return nil, fmt.Errorf("%w: %.1f%%", ErrOverUtilized, Utilization(m, rate)*100)
	}
	msgs := make([]restbus.Message, len(m.Messages))
	copy(msgs, m.Messages)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })

	bit := rate.BitDuration()
	cOf := func(msg restbus.Message) time.Duration {
		return time.Duration(FrameTimeBits(msg.DLC)) * bit
	}

	results := make([]Result, 0, len(msgs))
	for i, msg := range msgs {
		c := cOf(msg)
		// Blocking: the longest lower-priority frame already on the wire.
		var b time.Duration
		for _, lp := range msgs[i+1:] {
			if blk := cOf(lp); blk > b {
				b = blk
			}
		}
		// Fixed-point iteration for the queueing delay w:
		//   w = B + Σ_{hp} ⌈(w + τ_bit) / T_k⌉ · C_k
		w := b
		for iter := 0; iter < 10_000; iter++ {
			next := b
			for _, hp := range msgs[:i] {
				interf := (w + bit + hp.Period - 1) / hp.Period
				next += time.Duration(interf) * cOf(hp)
			}
			if next == w {
				break
			}
			w = next
			if w > 10*msg.Period && msg.Period > 0 {
				break // diverging well past the deadline; report as miss
			}
		}
		r := Result{
			ID:       msg.ID,
			C:        c,
			B:        b,
			R:        w + c,
			Deadline: msg.Period,
		}
		r.Schedulable = r.R <= r.Deadline
		results = append(results, r)
	}
	return results, nil
}

// Schedulable reports whether every message of the matrix meets its
// deadline at the given rate.
func Schedulable(m *restbus.Matrix, rate bus.Rate) (bool, error) {
	results, err := Analyze(m, rate)
	if err != nil {
		return false, err
	}
	for _, r := range results {
		if !r.Schedulable {
			return false, nil
		}
	}
	return true, nil
}

// MaxBusOffBudget returns, for a matrix, the largest bus occupation (in bit
// times) that an exceptional episode — such as a MichiCAN bus-off campaign —
// may add without any message missing its implicit deadline, assuming the
// episode behaves like top-priority interference. This generalizes the
// paper's 5000-bit rule of thumb (10 ms at 500 kbit/s, Sec. V-C).
func MaxBusOffBudget(m *restbus.Matrix, rate bus.Rate) (int64, error) {
	results, err := Analyze(m, rate)
	if err != nil {
		return 0, err
	}
	bit := rate.BitDuration()
	budget := int64(1 << 62)
	for _, r := range results {
		slack := r.Deadline - r.R
		if slack < 0 {
			return 0, nil
		}
		if b := int64(slack / bit); b < budget {
			budget = b
		}
	}
	return budget, nil
}

// FrameTimeBitsFD returns the worst-case on-wire length of a base-format
// CAN FD frame (constant bit rate) with an s-byte payload: the dynamically
// stuffable region (22 + 8s bits) with its maximum stuff bits, the
// fixed-stuff-protected stuff-count and CRC field (27 bits for CRC-17, 32
// for CRC-21), and the 13-bit trailer.
func FrameTimeBitsFD(dataLen int) int {
	stuffable := 22 + 8*dataLen
	maxStuff := (stuffable - 1) / 4
	crcField := 27 // FSB + 4 SC + (FSB + 4)×4 CRC-17 bits = 6 FSB + 21
	if dataLen > 16 {
		crcField = 32 // 7 FSB + 25
	}
	return stuffable + maxStuff + crcField + 13
}
