package sched

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/restbus"
)

func TestFrameTimeBitsClassicValues(t *testing.T) {
	// The canonical worst-case lengths from the CAN literature: 135 bit
	// times for an 8-byte frame, 55 for a 0-byte frame.
	if got := FrameTimeBits(8); got != 135 {
		t.Errorf("FrameTimeBits(8) = %d, want 135", got)
	}
	if got := FrameTimeBits(0); got != 55 {
		t.Errorf("FrameTimeBits(0) = %d, want 55", got)
	}
	// Monotone in the payload.
	for s := 1; s <= 8; s++ {
		if FrameTimeBits(s) <= FrameTimeBits(s-1) {
			t.Errorf("not monotone at %d", s)
		}
	}
}

func TestFrameTimeBitsUpperBoundsEncoder(t *testing.T) {
	// The analytic worst case must dominate every actual encoding (+IFS).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		dlc := rng.Intn(9)
		f := can.Frame{ID: can.ID(rng.Intn(2048))}
		if dlc > 0 {
			f.Data = make([]byte, dlc)
			rng.Read(f.Data)
		}
		actual := can.WireLen(&f) + can.IFSBits
		if actual > FrameTimeBits(dlc) {
			t.Fatalf("frame %s: actual %d bits > analytic bound %d", f.String(), actual, FrameTimeBits(dlc))
		}
	}
	// All-dominant payloads maximize stuffing; the bound must still hold
	// and be reasonably tight.
	f := can.Frame{ID: 0x000, Data: make([]byte, 8)}
	actual := can.WireLen(&f) + can.IFSBits
	if actual > FrameTimeBits(8) {
		t.Fatalf("worst stuffing case %d > bound %d", actual, FrameTimeBits(8))
	}
}

func testMatrix() *restbus.Matrix {
	return &restbus.Matrix{Vehicle: "t", Bus: "t", Messages: []restbus.Message{
		{ID: 0x100, Transmitter: "A", DLC: 8, Period: 10 * time.Millisecond},
		{ID: 0x200, Transmitter: "B", DLC: 8, Period: 20 * time.Millisecond},
		{ID: 0x300, Transmitter: "C", DLC: 4, Period: 50 * time.Millisecond},
	}}
}

func TestAnalyzeBasics(t *testing.T) {
	res, err := Analyze(testMatrix(), bus.Rate500k)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// Ascending priority order; R grows down the priority order.
	for i := 1; i < len(res); i++ {
		if res[i].ID < res[i-1].ID {
			t.Fatal("results not sorted")
		}
	}
	// The highest-priority message suffers only blocking: R = B + C.
	if res[0].R != res[0].B+res[0].C {
		t.Errorf("top priority R = %v, want B+C = %v", res[0].R, res[0].B+res[0].C)
	}
	// The lowest-priority message has no blocking (nothing below it).
	if res[2].B != 0 {
		t.Errorf("lowest priority B = %v, want 0", res[2].B)
	}
	for _, r := range res {
		if !r.Schedulable {
			t.Errorf("%v unschedulable on a lightly loaded bus", r.ID)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&restbus.Matrix{}, bus.Rate500k); !errors.Is(err, ErrEmptyMatrix) {
		t.Error("empty matrix accepted")
	}
	over := &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x100, DLC: 8, Period: 200 * time.Microsecond}, // 135 bits per 200µs at 500k = 135%...
	}}
	if _, err := Analyze(over, bus.Rate500k); !errors.Is(err, ErrOverUtilized) {
		t.Error("overutilized matrix accepted")
	}
}

func TestUtilization(t *testing.T) {
	u := Utilization(testMatrix(), bus.Rate500k)
	// 135/0.01 + 135/0.02 + 103/0.05 bits/s over 500k ≈ 4.5%.
	if u < 0.03 || u > 0.06 {
		t.Errorf("utilization = %.3f", u)
	}
	if Utilization(testMatrix(), bus.Rate50k) <= u {
		t.Error("slower bus must raise utilization")
	}
}

func TestVehicleMatricesSchedulable(t *testing.T) {
	// The synthetic vehicle matrices must be schedulable at their native
	// 500 kbit/s — otherwise they would not be realistic vehicle buses.
	for _, v := range restbus.Vehicles() {
		for _, m := range restbus.Buses(v) {
			ok, err := Schedulable(m, bus.Rate500k)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Vehicle, m.Bus, err)
			}
			if !ok {
				t.Errorf("%s/%s not schedulable at 500k", m.Vehicle, m.Bus)
			}
		}
	}
}

func TestPaperDeadlineBudget(t *testing.T) {
	// Sec. V-C reasons with a 10 ms deadline = 5000 bits at 500 kbit/s. A
	// lightly loaded matrix whose fastest message has a 10 ms period must
	// yield a bus-off budget near (but below) 5000 bits.
	budget, err := MaxBusOffBudget(testMatrix(), bus.Rate500k)
	if err != nil {
		t.Fatal(err)
	}
	if budget < 3500 || budget > 5000 {
		t.Errorf("budget = %d bits, expected a bit under the 5000-bit rule of thumb", budget)
	}
	t.Logf("bus-off budget for the test matrix: %d bits (paper's rule of thumb: 5000)", budget)
}

// TestAnalysisUpperBoundsSimulation is the validation the analysis exists
// for: simulate the matrix with one independent node per message and verify
// that every observed latency stays within the analytic worst case.
func TestAnalysisUpperBoundsSimulation(t *testing.T) {
	matrix := testMatrix()
	res, err := Analyze(matrix, bus.Rate500k)
	if err != nil {
		t.Fatal(err)
	}
	bound := make(map[can.ID]int64, len(res))
	bit := bus.Rate500k.BitDuration()
	for _, r := range res {
		bound[r.ID] = int64(r.R / bit)
	}

	b := bus.New(bus.Rate500k)
	replayers := make([]*restbus.Replayer, 0, len(matrix.Messages))
	for _, msg := range matrix.Messages {
		one := &restbus.Matrix{Messages: []restbus.Message{msg}}
		r := restbus.NewReplayer(msg.Transmitter, one, bus.Rate500k, rand.New(rand.NewSource(int64(msg.ID))))
		replayers = append(replayers, r)
		b.Attach(r)
	}
	b.RunFor(2 * time.Second)

	for _, r := range replayers {
		st := r.Stats()
		if st.Transmitted == 0 {
			t.Fatal("no traffic")
		}
		if st.DeadlineMisses != 0 {
			t.Errorf("%v: unexpected deadline misses", st.MissByID)
		}
		for id, lat := range st.MaxLatencyBits {
			if lat > bound[id] {
				t.Errorf("%s: observed latency %d bits exceeds analytic bound %d", id, lat, bound[id])
			}
		}
	}
}

func TestFrameTimeBitsFDUpperBoundsEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 8, 12, 16, 20, 32, 48, 64} {
		for trial := 0; trial < 50; trial++ {
			f := can.Frame{ID: can.ID(rng.Intn(2048)), FD: true}
			if n > 0 {
				f.Data = make([]byte, n)
				rng.Read(f.Data)
			}
			actual := can.WireLen(&f) + can.IFSBits
			if actual > FrameTimeBitsFD(n) {
				t.Fatalf("FD len=%d: actual %d > bound %d", n, actual, FrameTimeBitsFD(n))
			}
		}
		// All-dominant payload maximizes dynamic stuffing.
		f := can.Frame{ID: 0x000, FD: true, Data: make([]byte, n)}
		actual := can.WireLen(&f) + can.IFSBits
		if actual > FrameTimeBitsFD(n) {
			t.Fatalf("FD worst stuffing len=%d: %d > %d", n, actual, FrameTimeBitsFD(n))
		}
	}
	// An FD frame carries up to 64 bytes in one arbitration slot: the bound
	// must still beat eight separate classical frames.
	if FrameTimeBitsFD(64) >= 8*FrameTimeBits(8) {
		t.Errorf("FD-64 (%d bits) should undercut 8 classical frames (%d bits)",
			FrameTimeBitsFD(64), 8*FrameTimeBits(8))
	}
}
