package bus

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// ContendCommitter is the contested-window analogue of Transmitting: a node
// that can publish the levels it will drive even while other nodes are
// driving too.
//
// ContendBits(now) returns the exact levels this node drives for bits
// [now, horizon) *conditional on winning every monitored bit so far*: as long
// as each resolved bus bit equals the node's own driven bit, the node keeps
// driving the published stream. The bus computes the wired-AND of all
// published streams and clamps the batch at the first divergence bit — the
// first position where some committer's recessive is overridden by another's
// dominant (an arbitration loss, a bit error under a counterattack pull, or a
// stuff-error collision). That bit, where the loser's behaviour forks, is
// re-stepped exactly. A horizon <= now, or an empty slice, declines.
//
// ContendFrameBit reports the wire index within the current frame (SOF = 0)
// of the bit the node drives at query time when the stream comes from a
// serialized transmit plan, and -1 for unconditional dominant runs (error
// flags, counterattack pulls) that carry no frame position.
type ContendCommitter interface {
	ContendBits(now BitTime) ([]can.Level, BitTime)
	ContendFrameBit() int
}

// contendForwardedTotal is the process-wide counter for the contested-window
// path, alongside its idle and frame siblings in framepath.go.
var contendForwardedTotal atomic.Int64

// ContendForwardedTotal returns the cumulative process-wide count of bits
// advanced via the contested-window (multi-driver) fast path.
func ContendForwardedTotal() int64 { return contendForwardedTotal.Load() }

// SetContendFastForward enables or disables the contested-window fast path
// independently of the other two (enabled by default; SetFastForward false
// disables all three). The separate knob exists so benchmarks can ablate
// exact vs idle-FF vs frame-FF vs contend-FF.
func (b *Bus) SetContendFastForward(on bool) { b.contendFFOff = !on }

// ContendForwardedBits returns how many bits this bus advanced via the
// contested-window fast path.
func (b *Bus) ContendForwardedBits() int64 { return b.ffContendBits }

// contendScratch is the per-proposal working set of tryContendForward: the
// committer index list, their published streams, the bit-packed words (one
// row of W words per committer, flat), and the running wired-AND row. Buses
// keep one between negotiations and recycle it through a pool, so steady-state
// proposals allocate nothing even across the short-lived buses of parallel
// experiment runs.
type contendScratch struct {
	idx   []int
	bits  [][]can.Level
	words []uint64
	and   []uint64
}

// release drops all node-owned slice references (the committed streams alias
// immutable transmit plans whose lifetime belongs to their controllers) so a
// pooled scratch pins no detached node's memory.
func (sc *contendScratch) release() {
	for i := range sc.bits {
		sc.bits[i] = nil
	}
	sc.bits = sc.bits[:0]
	sc.idx = sc.idx[:0]
}

var contendScratchPool = sync.Pool{New: func() any { return new(contendScratch) }}

// invalidateProposal discards the bus's retained proposal scratch — called by
// Detach, because a cached proposal may reference the detached node's
// committed stream, and by anything else that makes in-flight span bookkeeping
// stale.
func (b *Bus) invalidateProposal() {
	if b.contendSc == nil {
		return
	}
	b.contendSc.release()
	contendScratchPool.Put(b.contendSc)
	b.contendSc = nil
}

// tryContendForward attempts one contested-window batch advance, bounded by
// end. It generalizes tryFrameForward to any number of simultaneous drivers:
//
//  1. every ContendCommitter publishes its conditional stream; conflicting
//     frame positions among plan-backed streams decline the proposal (the
//     drivers are not bit-aligned — nothing to resolve in bulk);
//  2. each stream is bit-packed into []uint64 words (set bit = recessive, as
//     in trace.Recorder) and the resolved span is their word-wise AND;
//  3. the first divergence bit — where some committer's recessive is overridden
//     (committed &^ resolved != 0) — clamps the span via TrailingZeros64; the
//     divergence bit itself is left to an exact Step, where arbitration loss,
//     bit error, or stuff error runs the ordinary per-bit logic;
//  4. within the clamp the resolved levels equal *every* committer's own
//     bits, so one committer's stream stands in for the resolved span — the
//     delivered slice keeps the stable backing-array identity that the
//     receiver-side span memos key on — and the usual passive negotiation and
//     RunObserver/TapRunObserver delivery machinery finishes the job.
func (b *Bus) tryContendForward(end BitTime) bool {
	if b.ffDisabled || b.contendFFOff || b.runPinned > 0 || b.tapRunPinned > 0 || end <= b.now {
		return false
	}
	var sc *contendScratch
	n := int(end - b.now)
	frameBit := -1
	for i, cc := range b.contendCap {
		if cc == nil {
			continue
		}
		levels, h := cc.ContendBits(b.now)
		if h <= b.now || len(levels) == 0 {
			continue
		}
		if m := int64(h - b.now); m < int64(len(levels)) {
			levels = levels[:m]
		}
		if fb := cc.ContendFrameBit(); fb >= 0 {
			if frameBit >= 0 && frameBit != fb {
				if sc != nil {
					sc.release()
				}
				return false // misaligned plan streams: exact-step it
			}
			frameBit = fb
		}
		if sc == nil {
			// Scratch is acquired lazily: the common decline — no committer
			// at all — touches neither the retained scratch nor the pool.
			if sc = b.contendSc; sc == nil {
				sc = contendScratchPool.Get().(*contendScratch)
				b.contendSc = sc
			}
		}
		sc.idx = append(sc.idx, i)
		sc.bits = append(sc.bits, levels)
		if len(levels) < n {
			n = len(levels)
		}
	}
	if sc == nil {
		return false
	}
	defer sc.release()
	if n < minFrameRun {
		return false
	}
	if len(sc.idx) > 1 {
		n = contendResolve(sc, n)
		if n < minFrameRun {
			return false
		}
	}
	// The resolved span equals each committer's own bits over the clamp;
	// prefer a plan-backed stream as the canonical slice (its identity recurs
	// across periodic retransmissions, keeping span memos hot).
	span := sc.bits[0]
	if frameBit >= 0 {
		for k, i := range sc.idx {
			if b.contendCap[i].ContendFrameBit() >= 0 {
				span = sc.bits[k]
				break
			}
		}
	}
	span = span[:n]
	next := 0
	for i, ro := range b.runObs {
		if next < len(sc.idx) && sc.idx[next] == i {
			next++ // committers are not passive parties
			continue
		}
		k := ro.PassiveRun(b.now, frameBit, span[:n])
		if k < n {
			n = k
		}
		if n < minFrameRun {
			return false
		}
	}
	span = span[:n]
	for _, ro := range b.runObs {
		ro.ObserveRun(b.now, span)
	}
	for _, tr := range b.tapRun {
		tr.BitRun(b.now, span)
	}
	if k := trailingRecessive(span); k == n {
		b.idleRun += n
	} else {
		b.idleRun = k
	}
	b.tel.Emit(int64(b.now), telemetry.EvFFSpan, int64(n), 2)
	b.last = span[n-1]
	b.now += BitTime(n)
	b.ffContendBits += int64(n)
	contendForwardedTotal.Add(int64(n))
	return true
}

// contendResolve packs every committed stream, ANDs them word-wise, and
// returns the span length clamped at the first divergence bit (n unchanged
// when no committer's recessive is overridden within the first n bits).
func contendResolve(sc *contendScratch, n int) int {
	w := (n + 63) >> 6
	need := (len(sc.bits) + 1) * w
	if cap(sc.words) < need {
		sc.words = make([]uint64, need)
	}
	sc.words = sc.words[:need]
	for i := range sc.words {
		sc.words[i] = 0
	}
	sc.and = sc.words[len(sc.bits)*w:]
	for k, levels := range sc.bits {
		can.PackLevels(sc.words[k*w:(k+1)*w], 0, levels[:n])
	}
	copy(sc.and, sc.words[:w])
	for k := 1; k < len(sc.bits); k++ {
		row := sc.words[k*w : (k+1)*w]
		for j := range sc.and {
			sc.and[j] &= row[j]
		}
	}
	for j := 0; j < w; j++ {
		var d uint64
		for k := range sc.bits {
			d |= sc.words[k*w+j] &^ sc.and[j]
		}
		if d != 0 {
			if div := j<<6 + bits.TrailingZeros64(d); div < n {
				return div
			}
			return n
		}
	}
	return n
}
