package bus

import (
	"sync/atomic"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// The hyperperiod super-splice is the fifth fast-forward tier: where the
// compiled-splice path (splicepath.go) resolves one frame window per bus
// entry, this tier chains consecutive accepted splice windows and the idle
// gaps between them into one compiled super-window — typically a whole
// schedule hyperperiod of the restbus traffic — and replays the chain in
// O(1) per node.
//
// The mechanism is record-then-replay with an exact entry match:
//
//   - An anchor is any ladder iteration immediately after a committed splice
//     (or a previous hyper apply). At an anchor the bus fingerprints the
//     joint quiescent state — its own wire state plus every node's
//     HyperFP — and looks the fingerprint up in its memo table.
//   - On a miss it snapshots every node (HyperSnap) and keeps stepping the
//     normal ladder, logging each committed op: idle jumps and spliced
//     windows extend the recording; any exact step, frame-path span, or
//     contended span aborts it (the chain would no longer be a pure
//     splice/idle evolution). When the chain reaches the target length the
//     bus asks every node to seal a delta (HyperSeal) — the exact difference
//     between its entry snapshot and its live state — and stores the memo.
//   - On a hit the bus re-verifies the entry exactly (HyperMatch per node
//     plus its own wire state), then applies every node's sealed delta
//     (HyperApply), replays the taps per segment, replays the chain's
//     telemetry tape time-shifted, and advances the clock by the whole chain
//     in one step.
//
// Correctness never depends on the cache: a memo is only applied after a
// bit-exact entry match, and the simulation is deterministic with external
// mutation confined to Run-family boundaries, so the recorded evolution is
// the evolution. Anything that cannot be proven — an attacker node that does
// not implement Hypering, a node whose callbacks the delta cannot fold, a
// diverging offer — either pins the tier off or clamps the chain, and the
// window falls down the existing ladder exactly as before (the same
// all-or-nothing argument as the splice tier).
//
// Invalidation: every memo is stamped with the bus's hyper generation, which
// bumps on BOTH Attach and Detach (per-node entries are indexed by
// attachment order, and unlike splice memos an attach extends the node set a
// recorded chain never consulted), and with the splice generation whose
// compiled windows the chain references.

// Hypering is the node capability of the hyperperiod super-splice tier.
// A node that implements it can have a whole chain of splice windows and
// idle gaps folded into it as one precomputed delta.
//
// HyperFP fingerprints the node's chain-relevant state at an anchor and
// reports whether the node can participate in a chain that begins now; hub
// is the hub whose tape the bus would record, and a node whose telemetry
// flows elsewhere must decline (its emissions could not be replayed).
// HyperSnap captures an exact entry snapshot (absolute times stored
// relative to now). HyperMatch reports whether the node's live state is
// bit-equivalent to a snapshot taken at an earlier anchor — "equivalent"
// meaning equal in every field the chain's evolution can read, the same
// standard the splice tier's summaries already meet. HyperSeal, called at
// the chain's exit with the entry snapshot and the number of spliced
// windows, compiles the delta (additive for counters, entry-relative for
// times, absolute for overwritten fields); it reports false when the
// evolution is outside the delta's vocabulary, abandoning the memo.
// HyperApply folds a sealed delta into the node; now is the chain's exit
// time. Applying a delta whose snapshot matched must leave the node in
// exactly the state per-bit stepping over the chain would have produced.
type Hypering interface {
	HyperFP(now BitTime, hub *telemetry.Hub) (uint64, bool)
	HyperSnap(now BitTime) any
	HyperMatch(now BitTime, snap any) bool
	HyperSeal(now BitTime, snap any, windows int) (delta any, ok bool)
	HyperApply(now BitTime, delta any)
}

const (
	// hyperMemoMax bounds the memo table; on overflow the table resets
	// wholesale (the same policy as the controller plan cache) rather than
	// evicting, keeping the steady state allocation-free.
	hyperMemoMax = 4096
	// hyperMaxWindows caps a chain's window count regardless of bit length.
	hyperMaxWindows = 256
	// hyperMinWindows is the minimum chain length worth memoizing when a Run
	// boundary ends a recording early.
	hyperMinWindows = 4
	// hyperDefaultChain is the chain-length target in bits when the caller
	// has not wired a schedule hyperperiod via SetHyperChainBits.
	hyperDefaultChain = 1 << 13
)

// hyperSeg is one committed op of a recorded chain: an idle jump (resolved
// nil) or a spliced window (the memoized resolved span, shared with the
// splice tier's SpliceMemo — never copied). Segments exist to replay the
// taps; node state replays through the sealed deltas.
type hyperSeg struct {
	idle     int64
	resolved []can.Level
}

// HyperMemo is one compiled hyperperiod super-window: the per-node entry
// snapshots and sealed deltas for a recorded chain of splice windows and
// idle gaps, keyed by the joint quiescent-state fingerprint at its anchor.
type HyperMemo struct {
	gen          uint64 // Bus.hyperGen at record time (attach/detach stamp)
	sgen         uint64 // Bus.spliceGen the chain's windows were compiled under
	fp           uint64
	n            int64
	windows      int
	entryLast    can.Level
	entryIdleRun int
	exitLast     can.Level
	exitIdleRun  int
	entries      []any
	deltas       []any
	segs         []hyperSeg
	tape         []telemetry.Event // event times relative to the chain start
}

// hyperRecording is an in-flight chain recording.
type hyperRecording struct {
	fp           uint64
	start        BitTime
	edge         BitTime // first absolute multiple of the chain target past start
	entryLast    can.Level
	entryIdleRun int
	entries      []any
	segs         []hyperSeg
	bits         int64
	windows      int
	capturing    bool
}

// hyperForwardedTotal is the process-wide counter for the hyperperiod path,
// alongside its idle/frame/contend/splice siblings.
var hyperForwardedTotal atomic.Int64

// HyperForwardedTotal returns the cumulative process-wide count of bits
// advanced via the hyperperiod super-splice fast path.
func HyperForwardedTotal() int64 { return hyperForwardedTotal.Load() }

// SetHyperFastForward enables or disables the hyperperiod super-splice path
// independently of the lower tiers (enabled by default). Note the tier
// chains compiled splice windows, so disabling the splice tier disables this
// one too.
func (b *Bus) SetHyperFastForward(on bool) {
	b.hyperFFOff = !on
	if !on {
		b.hyperAbort()
		b.hyperArmed = false
	}
}

// HyperForwardedBits returns how many bits this bus advanced via the
// hyperperiod super-splice fast path.
func (b *Bus) HyperForwardedBits() int64 { return b.ffHyperBits }

// SetHyperChainBits sets the chain-length target in bits — normally the
// schedule hyperperiod of the traffic on this bus (restbus wires it from
// Matrix.HyperperiodBits), so that one memo covers one hyperperiod and the
// working set is the rolling-counter rotation. Zero restores the default.
func (b *Bus) SetHyperChainBits(n int64) {
	if n < 0 {
		n = 0
	}
	b.hyperChainBits = n
}

// HyperChainBits returns the configured chain-length target, or zero when
// the default applies.
func (b *Bus) HyperChainBits() int64 { return b.hyperChainBits }

// HyperMemoCount returns the number of compiled super-windows currently
// cached (for tests and diagnostics).
func (b *Bus) HyperMemoCount() int { return len(b.hyperMemos) }

// HyperGen returns the hyper generation stamp — bumped on every Attach and
// Detach — that every cached super-window is validated against.
func (b *Bus) HyperGen() uint64 { return b.hyperGen }

// hyperTarget returns the configured chain-length target.
func (b *Bus) hyperTarget() int64 {
	if b.hyperChainBits > 0 {
		return b.hyperChainBits
	}
	return hyperDefaultChain
}

// hyperEligible reports whether the tier can run at all on this bus: every
// node speaks Hypering, every tap can absorb both idle runs and bit runs,
// and neither the global kill switch nor the splice tier (whose windows the
// chains are made of) is off.
func (b *Bus) hyperEligible() bool {
	return !b.ffDisabled && !b.hyperFFOff && !b.spliceFFOff &&
		b.hyperPinned == 0 && b.splicePinned == 0 &&
		b.tapPinned == 0 && b.tapRunPinned == 0 &&
		len(b.nodes) > 0
}

// fnvMix folds one 64-bit word into a running FNV-1a hash.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// tryHyperForward is the top rung of the fast-forward ladder. While a
// recording is in flight it only checks the finalize thresholds and lets the
// lower tiers keep extending the chain. At an anchor it fingerprints the
// joint state, applies a matching memo in O(1), or starts a new recording.
// It returns false — having advanced nothing — in every case except a memo
// application.
func (b *Bus) tryHyperForward(end BitTime) bool {
	if rec := b.hyperRec; rec != nil {
		// Chains close on the first idle tail at or past an absolute
		// multiple of the chain target (the schedule hyperperiod). The edge
		// grid — not a chain-relative length — is what locks anchor phases:
		// a periodic schedule looks identical around every multiple of its
		// hyperperiod, so the first idle-tail overshoot past each edge is
		// the same, every anchor lands on the same schedule-relative spot,
		// and the fingerprint working set closes after one payload-counter
		// rotation instead of drifting with chain-length history. Idle
		// tails themselves end at schedule-due bits, absolute-time-anchored
		// for the same reason. The window and hard bit caps are fallbacks
		// for gapless traffic.
		k := len(rec.segs)
		idleTail := k > 0 && rec.segs[k-1].resolved == nil
		if (b.now >= rec.edge && idleTail) ||
			rec.windows >= hyperMaxWindows || rec.bits >= 4*b.hyperTarget() {
			b.hyperFinalize()
		} else {
			return false
		}
	}
	if !b.hyperArmed || end <= b.now || !b.hyperEligible() {
		return false
	}
	hub := b.tel.Hub()
	h := uint64(14695981039346656037)
	h = fnvMix(h, uint64(b.last))
	h = fnvMix(h, uint64(b.idleRun))
	for _, hc := range b.hyperCap {
		fp, ok := hc.HyperFP(b.now, hub)
		if !ok {
			return false
		}
		h = fnvMix(h, fp)
	}
	if memo, ok := b.hyperMemos[h]; ok {
		if memo.gen != b.hyperGen || memo.sgen != b.spliceGen {
			delete(b.hyperMemos, h) // stale generation: never served
			return false
		}
		if b.now+BitTime(memo.n) > end ||
			memo.entryLast != b.last || memo.entryIdleRun != b.idleRun {
			return false
		}
		for i, hc := range b.hyperCap {
			if !hc.HyperMatch(b.now, memo.entries[i]) {
				return false
			}
		}
		b.hyperApply(memo)
		return true
	}
	// Miss: start a recording, unless the hub cannot capture the chain's
	// telemetry (a shared hub would interleave foreign events on the tape,
	// so capture is opt-in; without it a replay would drop events).
	if hub != nil && !hub.StartCapture() {
		return false
	}
	target := BitTime(b.hyperTarget())
	rec := &hyperRecording{
		fp:           h,
		start:        b.now,
		edge:         (b.now/target + 1) * target,
		entryLast:    b.last,
		entryIdleRun: b.idleRun,
		capturing:    hub != nil,
		entries:      make([]any, len(b.hyperCap)),
	}
	for i, hc := range b.hyperCap {
		rec.entries[i] = hc.HyperSnap(b.now)
	}
	b.hyperRec = rec
	return false
}

// hyperApply commits a verified memo: every node folds its sealed delta, the
// taps replay the chain segment by segment, the telemetry tape replays
// time-shifted, and the clock advances by the whole chain.
func (b *Bus) hyperApply(m *HyperMemo) {
	start := b.now
	exit := start + BitTime(m.n)
	for i, hc := range b.hyperCap {
		hc.HyperApply(exit, m.deltas[i])
	}
	t := start
	for _, seg := range m.segs {
		if seg.resolved == nil {
			for _, ft := range b.ffTaps {
				ft.SkipIdle(t, t+BitTime(seg.idle))
			}
			t += BitTime(seg.idle)
		} else {
			for _, tr := range b.tapRun {
				tr.BitRun(t, seg.resolved)
			}
			t += BitTime(len(seg.resolved))
		}
	}
	b.tel.Emit(int64(start), telemetry.EvFFSpan, m.n, 4)
	if hub := b.tel.Hub(); hub != nil && len(m.tape) > 0 {
		hub.ReplayShifted(m.tape, int64(start))
	}
	b.idleRun = m.exitIdleRun
	b.last = m.exitLast
	b.now = exit
	b.ffHyperBits += m.n
	hyperForwardedTotal.Add(m.n)
	// b.hyperArmed stays true: steady-state hyperperiods apply back to back.
}

// hyperIdleRecorded extends an in-flight recording with a committed idle
// jump (called from jumpIdle; a no-op otherwise).
func (b *Bus) hyperIdleRecorded(n int64) {
	rec := b.hyperRec
	if rec == nil {
		return
	}
	if k := len(rec.segs); k > 0 && rec.segs[k-1].resolved == nil {
		rec.segs[k-1].idle += n // merge consecutive idles: SkipIdle is count-pure
	} else {
		rec.segs = append(rec.segs, hyperSeg{idle: n})
	}
	rec.bits += n
}

// hyperSpliceRecorded extends an in-flight recording with a committed splice
// window (called from trySpliceForward on success; a no-op otherwise). The
// resolved span is shared with the window's SpliceMemo, not copied.
func (b *Bus) hyperSpliceRecorded(resolved []can.Level) {
	rec := b.hyperRec
	if rec == nil {
		return
	}
	rec.segs = append(rec.segs, hyperSeg{resolved: resolved})
	rec.bits += int64(len(resolved))
	rec.windows++
}

// hyperStepRecorded extends an in-flight recording with one exact-stepped
// recessive bit (called from Run after such a step; a no-op otherwise). A
// recessive exact step is chain-safe: the wire effect is one idle bit (taps
// replay it as a 1-bit SkipIdle, which their contract defines as equivalent),
// any events it emitted are on the captured tape, and node state needs no
// per-op accounting because the sealed deltas are entry-vs-exit diffs and
// the entry match pins the whole deterministic evolution. This is what lets
// chains run through schedule-due bits — the bus exact-steps exactly one
// recessive bit there so the replayer's enqueue scan fires — without
// clamping at every gap.
func (b *Bus) hyperStepRecorded() {
	b.hyperIdleRecorded(1)
}

// hyperDivert marks that the evolution left the pure splice/idle regime: any
// dominant exact step, frame-path span, or contended span both aborts an
// in-flight recording and disarms the anchor (the next anchor is the next
// committed splice).
func (b *Bus) hyperDivert() {
	b.hyperArmed = false
	b.hyperAbort()
}

// hyperAbort discards an in-flight recording.
func (b *Bus) hyperAbort() {
	if b.hyperRec == nil {
		return
	}
	if b.hyperRec.capturing {
		b.tel.Hub().StopCapture()
	}
	b.hyperRec = nil
}

// hyperRunEnd closes a recording at a Run boundary: chains long enough to be
// worth replaying are sealed (external mutation between Runs is exactly what
// the entry match re-verifies), shorter ones are discarded.
func (b *Bus) hyperRunEnd() {
	if b.hyperRec == nil {
		return
	}
	if b.hyperRec.windows >= hyperMinWindows {
		b.hyperFinalize()
	} else {
		b.hyperAbort()
	}
}

// hyperFinalize seals an in-flight recording into a memo: every node
// compiles its delta against its entry snapshot; any decline abandons the
// chain (correctness never depends on sealing succeeding).
func (b *Bus) hyperFinalize() {
	rec := b.hyperRec
	b.hyperRec = nil
	seal := rec.windows >= hyperMinWindows
	deltas := make([]any, len(b.hyperCap))
	if seal {
		for i, hc := range b.hyperCap {
			d, ok := hc.HyperSeal(b.now, rec.entries[i], rec.windows)
			if !ok {
				seal = false
				break
			}
			deltas[i] = d
		}
	}
	var tape []telemetry.Event
	if rec.capturing {
		tape = b.tel.Hub().StopCapture()
		for i := range tape {
			tape[i].Time -= int64(rec.start)
		}
	}
	if !seal {
		return
	}
	if b.hyperMemos == nil {
		b.hyperMemos = make(map[uint64]*HyperMemo)
	} else if len(b.hyperMemos) >= hyperMemoMax {
		b.hyperMemos = make(map[uint64]*HyperMemo) // reset-on-full
	}
	b.hyperMemos[rec.fp] = &HyperMemo{
		gen:          b.hyperGen,
		sgen:         b.spliceGen,
		fp:           rec.fp,
		n:            rec.bits,
		windows:      rec.windows,
		entryLast:    rec.entryLast,
		entryIdleRun: rec.entryIdleRun,
		exitLast:     b.last,
		exitIdleRun:  b.idleRun,
		entries:      rec.entries,
		deltas:       deltas,
		segs:         rec.segs,
		tape:         tape,
	}
}
