package bus

import (
	"sync/atomic"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// SpliceWindow is a transmitter's offer to the compiled-splice fast path: one
// whole frame window (SOF through the last EOF bit) whose wire levels are
// fully determined ahead of time, provided the bus stays quiescent around it.
//
// Bits is the serialized window with the ACK slot recessive (the transmitter
// cannot know who acks); the bus substitutes a dominant ACK when at least one
// error-active receiver confirms it will ack. RxView is the frame exactly as
// a conformant receiver's decoder would report it — receivers deliver it to
// their applications without re-decoding the bit stream. Memo, when set, is
// the window's cross-offer cache (see SpliceMemo); offers without one still
// splice, they just rebuild the resolved span and per-node summaries each
// time.
//
// Resolved, when non-nil, is the pre-resolved span (dominant ACK, recessive
// intermission tail) shared by a fleet-wide plan cache; the bus adopts it
// into the memo instead of rebuilding it, so N vehicles stamped from the
// same matrix share one immutable copy. It must be exactly the window plus
// intermission and is never mutated.
type SpliceWindow struct {
	Bits     []can.Level
	AckIdx   int
	RxView   can.Frame
	Memo     *SpliceMemo
	Resolved []can.Level
}

// SpliceMemo is the per-window cache an offerer's transmit plan carries
// across offers of the same frame content. Periodic traffic re-offers the
// same few thousand windows (messages × their rolling-counter rotation), so
// everything derivable from the window alone is computed once and then
// reached by direct pointer: the ACK-substituted resolved span with its
// trailing idle run (the bus's half), and one opaque slot per attached node
// for whatever that node wants to remember about this window (the defense
// stores its compiled Algorithm-1 summary there). The memo lives on the plan
// and is only reachable through it, so invalidation is the plan's own
// content-addressed lifecycle — no address hashing, no aliasing. The
// owner/gen stamp resets the slots when the memo meets a different bus or a
// detach renumbers the nodes.
type SpliceMemo struct {
	owner    *Bus
	gen      uint64
	resolved []can.Level
	idleRun  int
	slots    []any
}

// Splicing is the node capability of the fourth fast-forward tier: splicing a
// compiled frame window into the simulation in O(1) per node.
//
// The tier trades the contended path's mid-span divergence clamp for an
// up-front, all-or-nothing passivity proof: SpliceOffer nominates exactly one
// transmitter with a precompiled window (SOF through the last EOF bit; the
// bus appends the recessive intermission tail, so the resolved span handed to
// Query/Apply/Commit is IntermissionBits longer than the offer), and
// SpliceQuery asks every other node to promise — without mutating state —
// that over the whole resolved span it (a) drives recessive on every bit
// except a dominant ACK it declares via acks, and (b) can advance its meters,
// counters, and telemetry by a precompiled summary whose effect is
// bit-identical to exact stepping.
// Any decline aborts the splice before any state changes, and the window
// falls through to the contend/frame/exact tiers — the divergence clamp is
// the decline itself, so correctness never depends on the cache.
//
// SpliceCommit and SpliceApply then commit the window for real: Commit on the
// offerer (it completes its own transmission), Apply on everyone else (they
// fold the precompiled summary). Both must leave the node in exactly the
// state len(resolved) per-bit Observe calls with the resolved levels would
// have produced.
//
// slot points at this node's private entry in the window's memo: whatever the
// node stores there it gets back verbatim on every later offer of the same
// window, letting Query compile once and Apply (and every repeat of the
// window) reuse the result. The bus clears slots when node numbering or bus
// identity changes; nodes must tolerate a foreign value only in so far as
// type-asserting their own.
type Splicing interface {
	SpliceOffer(now BitTime) (SpliceWindow, bool)
	SpliceQuery(now BitTime, resolved []can.Level, ackIdx int, slot *any) (ok, acks bool)
	SpliceApply(now BitTime, resolved []can.Level, ackIdx int, rx can.Frame, slot *any)
	SpliceCommit(now BitTime, resolved []can.Level, slot *any)
}

// spliceForwardedTotal is the process-wide counter for the compiled-splice
// path, alongside its idle/frame/contend siblings.
var spliceForwardedTotal atomic.Int64

// SpliceForwardedTotal returns the cumulative process-wide count of bits
// advanced via the compiled-splice fast path.
func SpliceForwardedTotal() int64 { return spliceForwardedTotal.Load() }

// SetSpliceFastForward enables or disables the compiled-splice fast path
// independently of the other three (enabled by default; SetFastForward false
// disables all four). The separate knob exists so benchmarks can ablate
// exact vs idle-FF vs frame-FF vs contend-FF vs splice-FF.
func (b *Bus) SetSpliceFastForward(on bool) { b.spliceFFOff = !on }

// SpliceForwardedBits returns how many bits this bus advanced via the
// compiled-splice fast path.
func (b *Bus) SpliceForwardedBits() int64 { return b.ffSpliceBits }

// resolveMemo brings the window's memo up to date for this bus: reset on an
// owner or topology change, build the resolved span (dominant ACK, recessive
// intermission tail) on first sight, and size the per-node slot array.
func (b *Bus) resolveMemo(memo *SpliceMemo, win SpliceWindow, n int) {
	if memo.owner != b || memo.gen != b.spliceGen {
		memo.owner, memo.gen = b, b.spliceGen
		memo.resolved = nil
		for i := range memo.slots {
			memo.slots[i] = nil
		}
	}
	if len(memo.resolved) != n {
		r := win.Resolved
		if len(r) != n {
			r = make([]can.Level, n)
			copy(r, win.Bits)
			r[win.AckIdx] = can.Dominant
			for i := len(win.Bits); i < n; i++ {
				r[i] = can.Recessive
			}
		}
		memo.resolved = r
		// A full window never ends recessive-only from SOF, so the trailing
		// run (ACK delimiter + EOF + intermission) is the post-splice idle run.
		memo.idleRun = trailingRecessive(r)
	}
	if len(memo.slots) < len(b.spliceCap) {
		slots := make([]any, len(b.spliceCap))
		copy(slots, memo.slots)
		memo.slots = slots
	}
}

// trySpliceForward attempts one compiled-window splice, bounded by end. It
// returns false — having done nothing — unless exactly one node offers a
// compiled window that fits wholly within the bound, every other node
// promises whole-window passivity, and at least one of them promises a
// dominant ACK (a window nobody acks raises an ACK error, which only the
// exact/contend machinery handles).
func (b *Bus) trySpliceForward(end BitTime) bool {
	if b.ffDisabled || b.spliceFFOff || b.splicePinned > 0 || b.tapRunPinned > 0 || end <= b.now {
		return false
	}
	tx := -1
	var win SpliceWindow
	for i, sp := range b.spliceCap {
		if sp == nil {
			continue
		}
		w, ok := sp.SpliceOffer(b.now)
		if !ok {
			continue
		}
		if tx >= 0 {
			return false // two pending transmitters: contention, lower tiers resolve it
		}
		tx, win = i, w
	}
	if tx < 0 || len(win.Bits) == 0 {
		return false
	}
	n := len(win.Bits) + can.IntermissionBits
	if b.now+BitTime(n) > end {
		return false // window must fit wholly; a partial splice has no summary
	}
	memo := win.Memo
	if memo == nil {
		memo = &SpliceMemo{} // transient offer: cache for this window only
	}
	b.resolveMemo(memo, win, n)
	resolved := memo.resolved
	acked := false
	for i, sp := range b.spliceCap {
		if i == tx {
			continue
		}
		ok, acks := sp.SpliceQuery(b.now, resolved, win.AckIdx, &memo.slots[i])
		if !ok {
			return false
		}
		if acks {
			acked = true
		}
	}
	if !acked {
		return false
	}
	for i, sp := range b.spliceCap {
		if i == tx {
			sp.SpliceCommit(b.now, resolved, &memo.slots[i])
		} else {
			sp.SpliceApply(b.now, resolved, win.AckIdx, win.RxView, &memo.slots[i])
		}
	}
	for _, tr := range b.tapRun {
		tr.BitRun(b.now, resolved)
	}
	b.idleRun = memo.idleRun
	b.tel.Emit(int64(b.now), telemetry.EvFFSpan, int64(n), 3)
	b.hyperSpliceRecorded(resolved)
	b.hyperArmed = true // a committed splice is a hyper-chain anchor
	b.last = resolved[n-1]
	b.now += BitTime(n)
	b.ffSpliceBits += int64(n)
	spliceForwardedTotal.Add(int64(n))
	return true
}
