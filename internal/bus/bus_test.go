package bus

import (
	"testing"
	"time"

	"michican/internal/can"
)

// constNode drives a fixed level and records what it observes.
type constNode struct {
	drive    can.Level
	observed []can.Level
	times    []BitTime
}

func (n *constNode) Drive(BitTime) can.Level { return n.drive }
func (n *constNode) Observe(t BitTime, l can.Level) {
	n.observed = append(n.observed, l)
	n.times = append(n.times, t)
}

// tapRec records tap callbacks.
type tapRec struct {
	levels []can.Level
}

func (t *tapRec) Bit(_ BitTime, l can.Level) { t.levels = append(t.levels, l) }

func TestRateConversions(t *testing.T) {
	tests := []struct {
		rate Rate
		bit  time.Duration
	}{
		{Rate50k, 20 * time.Microsecond},
		{Rate125k, 8 * time.Microsecond},
		{Rate250k, 4 * time.Microsecond},
		{Rate500k, 2 * time.Microsecond},
		{Rate1M, time.Microsecond},
	}
	for _, tt := range tests {
		if got := tt.rate.BitDuration(); got != tt.bit {
			t.Errorf("%v bit time = %v, want %v", tt.rate, got, tt.bit)
		}
	}
	if Rate(0).BitDuration() != 0 {
		t.Error("zero rate bit time")
	}
	if got := Rate500k.Duration(1000); got != 2*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := Rate500k.Bits(time.Millisecond); got != 500 {
		t.Errorf("Bits = %d", got)
	}
	if Rate(0).Bits(time.Second) != 0 {
		t.Error("zero rate Bits must be 0")
	}
}

func TestRateString(t *testing.T) {
	if Rate500k.String() != "500kbit/s" {
		t.Errorf("got %q", Rate500k.String())
	}
	if Rate1M.String() != "1Mbit/s" {
		t.Errorf("got %q", Rate1M.String())
	}
}

func TestWiredAND(t *testing.T) {
	b := New(Rate500k)
	r1 := &constNode{drive: can.Recessive}
	r2 := &constNode{drive: can.Recessive}
	b.Attach(r1)
	b.Attach(r2)
	if got := b.Step(); got != can.Recessive {
		t.Error("all-recessive bus must resolve recessive")
	}
	d := &constNode{drive: can.Dominant}
	b.Attach(d)
	if got := b.Step(); got != can.Dominant {
		t.Error("any dominant driver must win")
	}
	// Every node observes the resolved level, including the drivers.
	if r1.observed[1] != can.Dominant || d.observed[0] != can.Dominant {
		t.Error("observers did not see the resolved level")
	}
}

func TestEmptyBusFloatsRecessive(t *testing.T) {
	b := New(Rate500k)
	for i := 0; i < 5; i++ {
		if b.Step() != can.Recessive {
			t.Fatal("empty bus must float recessive")
		}
	}
	if b.IdleRun() != 5 {
		t.Errorf("IdleRun = %d", b.IdleRun())
	}
}

func TestTimeAdvances(t *testing.T) {
	b := New(Rate500k)
	n := &constNode{drive: can.Recessive}
	b.Attach(n)
	b.Run(10)
	if b.Now() != 10 {
		t.Errorf("Now = %d", b.Now())
	}
	for i, tm := range n.times {
		if tm != BitTime(i) {
			t.Fatalf("observation %d at time %d", i, tm)
		}
	}
	if b.Elapsed() != 20*time.Microsecond {
		t.Errorf("Elapsed = %v", b.Elapsed())
	}
}

func TestRunFor(t *testing.T) {
	b := New(Rate50k)
	b.RunFor(time.Millisecond) // 50 bits
	if b.Now() != 50 {
		t.Errorf("Now = %d after 1ms at 50 kbit/s", b.Now())
	}
}

func TestRunUntil(t *testing.T) {
	b := New(Rate500k)
	fired := b.RunUntil(func() bool { return b.Now() >= 7 }, 100)
	if !fired || b.Now() != 7 {
		t.Errorf("RunUntil stopped at %d (fired=%v)", b.Now(), fired)
	}
	fired = b.RunUntil(func() bool { return false }, 10)
	if fired || b.Now() != 17 {
		t.Errorf("RunUntil budget: now=%d fired=%v", b.Now(), fired)
	}
}

func TestDetach(t *testing.T) {
	b := New(Rate500k)
	d := &constNode{drive: can.Dominant}
	b.Attach(d)
	if b.Step() != can.Dominant {
		t.Fatal("driver not wired")
	}
	if !b.Detach(d) {
		t.Fatal("detach failed")
	}
	if b.Step() != can.Recessive {
		t.Error("detached node still drives")
	}
	if b.Detach(d) {
		t.Error("double detach reported success")
	}
}

func TestIdleRunResetsOnDominant(t *testing.T) {
	b := New(Rate500k)
	n := &constNode{drive: can.Recessive}
	b.Attach(n)
	b.Run(3)
	n.drive = can.Dominant
	b.Step()
	if b.IdleRun() != 0 {
		t.Errorf("IdleRun = %d after dominant", b.IdleRun())
	}
	if b.Level() != can.Dominant {
		t.Error("Level should report last resolved bit")
	}
}

func TestTapSeesEveryBit(t *testing.T) {
	b := New(Rate500k)
	tap := &tapRec{}
	b.AttachTap(tap)
	d := &constNode{drive: can.Dominant}
	b.Attach(d)
	b.Run(4)
	if len(tap.levels) != 4 {
		t.Fatalf("tap saw %d bits", len(tap.levels))
	}
	for _, l := range tap.levels {
		if l != can.Dominant {
			t.Error("tap level mismatch")
		}
	}
}

func TestMidSimulationAttach(t *testing.T) {
	b := New(Rate500k)
	b.Run(5)
	n := &constNode{drive: can.Recessive}
	b.Attach(n)
	b.Run(3)
	if len(n.observed) != 3 {
		t.Errorf("late node observed %d bits", len(n.observed))
	}
	if n.times[0] != 5 {
		t.Errorf("late node first observation at %d", n.times[0])
	}
}

func TestGroupLockstep(t *testing.T) {
	fast := New(Rate500k)
	slow := New(Rate125k)
	g := NewGroup(fast, slow)
	g.RunFor(time.Millisecond)
	if fast.Now() < 500 || slow.Now() < 125 {
		t.Fatalf("fast=%d slow=%d bits after 1ms", fast.Now(), slow.Now())
	}
	// Virtual clocks stay within one bit time of each other.
	diff := fast.Elapsed() - slow.Elapsed()
	if diff < 0 {
		diff = -diff
	}
	if diff > slow.Rate().BitDuration() {
		t.Errorf("clocks diverged by %v", diff)
	}
	empty := NewGroup()
	empty.Step() // must not panic
}
