package bus

import (
	"testing"
	"time"

	"michican/internal/can"
)

// quietNode is a Quiescent test node: idle until wakeAt, at which bit it
// drives one dominant bit, then idle forever. It counts exact observations
// and skipped bits so tests can see which path the bus took.
type quietNode struct {
	wakeAt   BitTime
	fired    bool
	observed int64
	skipped  int64
	times    []BitTime
}

func (n *quietNode) Drive(t BitTime) can.Level {
	if !n.fired && t == n.wakeAt {
		n.fired = true
		return can.Dominant
	}
	return can.Recessive
}

func (n *quietNode) Observe(t BitTime, _ can.Level) {
	n.observed++
	n.times = append(n.times, t)
}

func (n *quietNode) QuiescentUntil(now BitTime) BitTime {
	if n.fired {
		return QuiescentForever
	}
	if n.wakeAt <= now {
		return now
	}
	return n.wakeAt
}

func (n *quietNode) SkipIdle(from, to BitTime) { n.skipped += int64(to - from) }

// ffTap is a fast-forward-capable tap counting both paths.
type ffTap struct {
	bits    int64
	skipped int64
}

func (t *ffTap) Bit(_ BitTime, _ can.Level) { t.bits++ }
func (t *ffTap) SkipIdle(from, to BitTime)  { t.skipped += int64(to - from) }

func TestFastForwardJumpsIdle(t *testing.T) {
	b := New(Rate500k)
	n := &quietNode{wakeAt: 1000}
	tap := &ffTap{}
	b.Attach(n)
	b.AttachTap(tap)

	b.Run(2000)
	if b.Now() != 2000 {
		t.Fatalf("Now = %d", b.Now())
	}
	// Bits [0,1000) are one quiescent jump; bit 1000 (the dominant wake
	// bit) and its aftermath are exact; the remainder is one more jump.
	if n.skipped == 0 {
		t.Fatal("no bits were skipped")
	}
	if b.FastForwardedBits() != n.skipped {
		t.Errorf("FastForwardedBits = %d, node saw %d", b.FastForwardedBits(), n.skipped)
	}
	if n.skipped+n.observed != 2000 {
		t.Errorf("skipped %d + observed %d != 2000", n.skipped, n.observed)
	}
	if tap.skipped+tap.bits != 2000 {
		t.Errorf("tap skipped %d + bits %d != 2000", tap.skipped, tap.bits)
	}
	// The wake bit itself must have been exact-stepped at the right time.
	found := false
	for _, tm := range n.times {
		if tm == 1000 {
			found = true
		}
	}
	if !found {
		t.Error("wake bit 1000 was not exact-stepped")
	}
	if !n.fired {
		t.Error("node never fired")
	}
	if b.IdleRun() < 999 {
		t.Errorf("IdleRun = %d after a 999-bit idle tail", b.IdleRun())
	}
}

func TestNonQuiescentNodePinsExactStepping(t *testing.T) {
	b := New(Rate500k)
	q := &quietNode{wakeAt: -1, fired: true} // quiescent forever
	pin := &constNode{drive: can.Recessive}  // no Quiescent capability
	b.Attach(q)
	b.Attach(pin)
	b.Run(500)
	if b.FastForwardedBits() != 0 {
		t.Fatalf("fast-forwarded %d bits with a pinning node attached", b.FastForwardedBits())
	}
	if q.observed != 500 {
		t.Errorf("observed %d bits, want 500 exact steps", q.observed)
	}
}

func TestNonQuiescentTapPinsExactStepping(t *testing.T) {
	b := New(Rate500k)
	q := &quietNode{wakeAt: -1, fired: true}
	tap := &tapRec{} // no TapFastForwarder capability
	b.Attach(q)
	b.AttachTap(tap)
	b.Run(500)
	if b.FastForwardedBits() != 0 {
		t.Fatalf("fast-forwarded %d bits with a pinning tap attached", b.FastForwardedBits())
	}
	if len(tap.levels) != 500 {
		t.Errorf("tap saw %d bits, want 500", len(tap.levels))
	}
}

func TestSetFastForwardOff(t *testing.T) {
	b := New(Rate500k)
	q := &quietNode{wakeAt: -1, fired: true}
	b.Attach(q)
	b.SetFastForward(false)
	b.Run(500)
	if b.FastForwardedBits() != 0 {
		t.Fatalf("fast-forwarded %d bits while disabled", b.FastForwardedBits())
	}
	b.SetFastForward(true)
	b.Run(500)
	if b.FastForwardedBits() != 500 {
		t.Fatalf("fast-forwarded %d bits after re-enable, want 500", b.FastForwardedBits())
	}
}

func TestDetachUnpinsBus(t *testing.T) {
	b := New(Rate500k)
	q := &quietNode{wakeAt: -1, fired: true}
	pin := &constNode{drive: can.Recessive}
	b.Attach(q)
	b.Attach(pin)
	b.Run(10)
	if b.FastForwardedBits() != 0 {
		t.Fatal("pinned bus fast-forwarded")
	}
	if !b.Detach(pin) {
		t.Fatal("detach failed")
	}
	b.Run(10)
	if b.FastForwardedBits() == 0 {
		t.Error("bus still pinned after detaching the non-quiescent node")
	}
}

func TestDetachClearsBackingArray(t *testing.T) {
	b := New(Rate500k)
	n1 := &constNode{drive: can.Recessive}
	n2 := &constNode{drive: can.Recessive}
	b.Attach(n1)
	b.Attach(n2)
	if !b.Detach(n1) {
		t.Fatal("detach failed")
	}
	// The element past the new length must be nil so the detached node is
	// not pinned in memory by the backing array.
	tail := b.nodes[:cap(b.nodes)][len(b.nodes)]
	if tail != nil {
		t.Errorf("stale tail element %T still referenced after Detach", tail)
	}
	if len(b.nodes) != 1 || b.nodes[0] != Node(n2) {
		t.Error("surviving node list wrong")
	}
}

// TestGroupMixedRateLockstep drives a 500k and a 125k bus in one group and
// checks that the heap-based scheduler interleaves them exactly as virtual
// time dictates: four 500k bits per 125k bit, with ties going to the
// earlier-attached bus.
func TestGroupMixedRateLockstep(t *testing.T) {
	fast := New(Rate500k)
	slow := New(Rate125k)
	fastN := &constNode{drive: can.Recessive}
	slowN := &constNode{drive: can.Recessive}
	fast.Attach(fastN)
	slow.Attach(slowN)
	g := NewGroup(fast, slow)

	g.RunFor(time.Millisecond)
	if fast.Now() != 500 {
		t.Errorf("500k bus advanced %d bits, want 500", fast.Now())
	}
	if slow.Now() != 125 {
		t.Errorf("125k bus advanced %d bits, want 125", slow.Now())
	}

	// Reproduce the reference interleaving with a naive rescan and compare
	// step-by-step against a second, heap-scheduled group.
	type sim struct{ fastBits, slowBits int64 }
	var ref []sim
	refFast, refSlow := int64(0), int64(0)
	for refFast < 40 || refSlow < 10 {
		// Naive reference: pick the bus with the least elapsed time,
		// first-attached wins ties (elapsed in picoseconds at these rates).
		ef := refFast * int64(Rate500k.BitDuration())
		es := refSlow * int64(Rate125k.BitDuration())
		if ef <= es {
			refFast++
		} else {
			refSlow++
		}
		ref = append(ref, sim{refFast, refSlow})
	}

	f2, s2 := New(Rate500k), New(Rate125k)
	f2.Attach(&constNode{drive: can.Recessive})
	s2.Attach(&constNode{drive: can.Recessive})
	g2 := NewGroup(f2, s2)
	for i, want := range ref {
		g2.Step()
		if int64(f2.Now()) != want.fastBits || int64(s2.Now()) != want.slowBits {
			t.Fatalf("step %d: heap order (%d,%d), reference (%d,%d)",
				i, f2.Now(), s2.Now(), want.fastBits, want.slowBits)
		}
	}
}

func TestGroupRunForEmpty(t *testing.T) {
	g := NewGroup()
	g.RunFor(time.Millisecond) // must not hang or panic
	g.Step()
}
