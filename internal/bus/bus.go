// Package bus simulates the physical layer of a Controller Area Network: a
// shared wire with wired-AND semantics advancing in discrete nominal bit
// times.
//
// Each attached Node is asked once per bit which level it drives; the bus
// resolves the wired-AND of all driven levels (any dominant wins) and then
// delivers the resolved level back to every node and every tap. This mirrors
// the CAN assumption that signals propagate to all nodes well within one bit
// time, which is the granularity at which arbitration, error signalling, and
// the MichiCAN counterattack all operate.
package bus

import (
	"fmt"
	"time"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// BitTime is the index of a nominal bit time since the start of simulation.
type BitTime int64

// Rate is a CAN bus speed in bits per second.
type Rate int

// Standard automotive CAN bus speeds used in the paper's evaluation.
const (
	Rate50k  Rate = 50_000
	Rate125k Rate = 125_000
	Rate250k Rate = 250_000
	Rate500k Rate = 500_000
	Rate1M   Rate = 1_000_000
)

// BitDuration returns the nominal bit time at this rate.
func (r Rate) BitDuration() time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(int64(time.Second) / int64(r))
}

// Duration converts a number of bits at this rate into wall-clock time.
func (r Rate) Duration(bits int64) time.Duration {
	return time.Duration(bits) * r.BitDuration()
}

// Bits returns how many whole bit times fit into d at this rate.
func (r Rate) Bits(d time.Duration) int64 {
	bt := r.BitDuration()
	if bt == 0 {
		return 0
	}
	return int64(d / bt)
}

// String formats the rate in the conventional kbit/s notation.
func (r Rate) String() string {
	if r >= 1_000_000 && r%1_000_000 == 0 {
		return fmt.Sprintf("%dMbit/s", int(r)/1_000_000)
	}
	return fmt.Sprintf("%dkbit/s", int(r)/1000)
}

// Node is anything wired to the bus: a CAN controller, an attacker, a
// defense, or a passive monitor.
//
// The bus calls Drive for every node first, resolves the wired-AND, and then
// calls Observe on every node with the resolved level. A node must base its
// Drive decision for bit t only on levels observed through bit t-1; Observe
// for bit t is where it reads back the wire (CAN bit monitoring).
type Node interface {
	// Drive returns the level this node puts on the wire during bit t.
	// Nodes that do not transmit must return Recessive (the wire floats).
	Drive(t BitTime) can.Level
	// Observe delivers the resolved bus level for bit t.
	Observe(t BitTime, level can.Level)
}

// Tap is a passive observer (logic analyzer) that sees every resolved bit
// but never drives the wire.
type Tap interface {
	Bit(t BitTime, level can.Level)
}

// Bus is a simulated CAN bus. The zero value is not usable; create one with
// New. Bus is not safe for concurrent use; a simulation is single-threaded
// by design (determinism), and experiment-level parallelism runs one Bus per
// goroutine.
type Bus struct {
	rate    Rate
	nodes   []Node
	taps    []Tap
	now     BitTime
	idleRun int
	last    can.Level

	// Idle fast-forward state (see quiesce.go). quiescent is parallel to
	// nodes and ffTaps to taps, with nil entries for participants lacking
	// the capability; pinned/tapPinned count those entries so the hot path
	// can bail in O(1) without re-querying interfaces.
	quiescent  []Quiescent
	ffTaps     []TapFastForwarder
	pinned     int
	tapPinned  int
	ffDisabled bool
	ffSkipped  int64

	// Frame fast-forward state (see framepath.go). txCap and runObs are
	// parallel to nodes, tapRun to taps; runPinned/tapRunPinned count the
	// participants lacking batch delivery.
	txCap        []Transmitting
	runObs       []RunObserver
	runPinned    int
	tapRun       []TapRunObserver
	tapRunPinned int
	frameFFOff   bool
	ffFrameBits  int64

	// Contested-window fast-forward state (see contendpath.go). contendCap is
	// parallel to nodes; contendSc is the retained proposal scratch, which
	// Detach invalidates (it may reference a detached node's committed
	// stream).
	contendCap    []ContendCommitter
	contendFFOff  bool
	ffContendBits int64
	contendSc     *contendScratch

	// Compiled-splice fast-forward state (see splicepath.go). spliceCap is
	// parallel to nodes; splicePinned counts nodes lacking the capability;
	// spliceGen stamps the node topology so plan-carried splice memos —
	// whose per-node slots are indexed by attachment order — invalidate
	// when a detach renumbers the nodes.
	spliceCap    []Splicing
	splicePinned int
	spliceFFOff  bool
	ffSpliceBits int64
	spliceGen    uint64

	// Hyperperiod super-splice state (see hyperpath.go). hyperCap is
	// parallel to nodes; hyperPinned counts nodes lacking the capability;
	// hyperGen stamps the node topology — unlike spliceGen it bumps on
	// Attach as well as Detach, because a cached super-window's per-node
	// entries/deltas cover exactly the node set recorded, and an attach
	// extends that set. hyperArmed marks that the last committed ladder op
	// was a splice (or hyper apply), the only anchors worth fingerprinting.
	hyperCap       []Hypering
	hyperPinned    int
	hyperFFOff     bool
	ffHyperBits    int64
	hyperGen       uint64
	hyperChainBits int64
	hyperArmed     bool
	hyperRec       *hyperRecording
	hyperMemos     map[uint64]*HyperMemo

	// tel receives fast-path span events (EvFFSpan). The zero Probe is a
	// no-op, so unwired buses pay one nil check per committed span — never
	// per bit.
	tel telemetry.Probe
}

// New creates an idle bus running at the given rate.
func New(rate Rate) *Bus {
	return &Bus{rate: rate, last: can.Recessive}
}

// Rate returns the configured bus speed.
func (b *Bus) Rate() Rate { return b.rate }

// SetTelemetry wires the bus to a telemetry hub under the given node name.
// The bus emits one EvFFSpan per committed fast-path span (idle jump or
// sole-transmitter frame batch); a nil hub disables emission.
func (b *Bus) SetTelemetry(hub *telemetry.Hub, name string) {
	b.tel = hub.Probe(name)
}

// Now returns the index of the next bit to be simulated.
func (b *Bus) Now() BitTime { return b.now }

// Elapsed returns the wall-clock time represented by the simulation so far.
func (b *Bus) Elapsed() time.Duration { return b.rate.Duration(int64(b.now)) }

// Attach wires a node to the bus. Nodes may be attached mid-simulation
// (e.g. plugging a device into the OBD-II port).
func (b *Bus) Attach(n Node) {
	b.nodes = append(b.nodes, n)
	q, ok := n.(Quiescent)
	b.quiescent = append(b.quiescent, q)
	if !ok {
		b.pinned++
	}
	tc, _ := n.(Transmitting)
	b.txCap = append(b.txCap, tc)
	ro, ok := n.(RunObserver)
	b.runObs = append(b.runObs, ro)
	if !ok {
		b.runPinned++
	}
	cc, _ := n.(ContendCommitter)
	b.contendCap = append(b.contendCap, cc)
	sp, ok := n.(Splicing)
	b.spliceCap = append(b.spliceCap, sp)
	if !ok {
		b.splicePinned++
	}
	hc, ok := n.(Hypering)
	b.hyperCap = append(b.hyperCap, hc)
	if !ok {
		b.hyperPinned++
	}
	// An attach extends the node set every cached super-window was recorded
	// against, so the hyper generation bumps here too (splice memos are
	// per-window and unaffected: the new node is simply queried).
	b.hyperGen++
	b.hyperDivert()
}

// Detach removes a node from the bus. It reports whether the node was found.
func (b *Bus) Detach(n Node) bool {
	for i, node := range b.nodes {
		if node == n {
			last := len(b.nodes) - 1
			copy(b.nodes[i:], b.nodes[i+1:])
			b.nodes[last] = nil // clear the stale tail so the node can be GC'd
			b.nodes = b.nodes[:last]
			if b.quiescent[i] == nil {
				b.pinned--
			}
			copy(b.quiescent[i:], b.quiescent[i+1:])
			b.quiescent[last] = nil
			b.quiescent = b.quiescent[:last]
			copy(b.txCap[i:], b.txCap[i+1:])
			b.txCap[last] = nil
			b.txCap = b.txCap[:last]
			if b.runObs[i] == nil {
				b.runPinned--
			}
			copy(b.runObs[i:], b.runObs[i+1:])
			b.runObs[last] = nil
			b.runObs = b.runObs[:last]
			copy(b.contendCap[i:], b.contendCap[i+1:])
			b.contendCap[last] = nil
			b.contendCap = b.contendCap[:last]
			if b.spliceCap[i] == nil {
				b.splicePinned--
			}
			copy(b.spliceCap[i:], b.spliceCap[i+1:])
			b.spliceCap[last] = nil
			b.spliceCap = b.spliceCap[:last]
			if b.hyperCap[i] == nil {
				b.hyperPinned--
			}
			copy(b.hyperCap[i:], b.hyperCap[i+1:])
			b.hyperCap[last] = nil
			b.hyperCap = b.hyperCap[:last]
			// Compaction renumbered the surviving nodes, so every per-node
			// slot in the plan-carried splice memos is stale, as is every
			// cached super-window (their entries are indexed the same way).
			b.spliceGen++
			b.hyperGen++
			b.hyperDivert()
			b.invalidateProposal()
			return true
		}
	}
	return false
}

// AttachTap adds a passive observer.
func (b *Bus) AttachTap(t Tap) {
	b.taps = append(b.taps, t)
	ft, ok := t.(TapFastForwarder)
	b.ffTaps = append(b.ffTaps, ft)
	if !ok {
		b.tapPinned++
	}
	tr, ok := t.(TapRunObserver)
	b.tapRun = append(b.tapRun, tr)
	if !ok {
		b.tapRunPinned++
	}
}

// Step advances the simulation by one nominal bit time and returns the
// resolved bus level for that bit.
func (b *Bus) Step() can.Level {
	t := b.now
	level := can.Recessive
	for _, n := range b.nodes {
		if n.Drive(t) == can.Dominant {
			level = can.Dominant
		}
	}
	for _, n := range b.nodes {
		n.Observe(t, level)
	}
	for _, tap := range b.taps {
		tap.Bit(t, level)
	}
	if level == can.Recessive {
		b.idleRun++
	} else {
		b.idleRun = 0
	}
	b.last = level
	b.now++
	return level
}

// Run advances the simulation by n bit times, fast-forwarding through
// stretches where every attached node and tap is quiescent (see quiesce.go).
func (b *Bus) Run(n int64) {
	if n <= 0 {
		return
	}
	end := b.now + BitTime(n)
	for b.now < end {
		if b.tryHyperForward(end) || b.tryFastForward(end) || b.trySpliceForward(end) {
			continue
		}
		if b.tryFrameForward(end) || b.tryContendForward(end) {
			// A frame-path or contended span left the pure splice/idle
			// regime: abandon any in-flight chain recording and disarm the
			// hyper anchor.
			b.hyperDivert()
			continue
		}
		if b.Step() == can.Recessive {
			// A lone recessive exact step (typically a schedule-due bit) is
			// chain-safe; see hyperStepRecorded.
			b.hyperStepRecorded()
		} else {
			b.hyperDivert()
		}
	}
	b.hyperRunEnd()
	simulatedBits.Add(n)
}

// RunFor advances the simulation by the number of bit times equivalent to d
// at the bus rate.
func (b *Bus) RunFor(d time.Duration) {
	b.Run(b.rate.Bits(d))
}

// RunUntil advances the bus until the predicate returns true or maxBits have
// elapsed, and reports whether the predicate fired. The predicate is checked
// after every exact step and after every quiescent jump; predicates must
// therefore depend only on node state (which evolves identically on both
// paths), not on the specific bit time at which they are polled.
func (b *Bus) RunUntil(pred func() bool, maxBits int64) bool {
	start := b.now
	end := b.now + BitTime(maxBits)
	defer func() { simulatedBits.Add(int64(b.now - start)) }()
	for b.now < end {
		if !b.tryFastForward(end) && !b.trySpliceForward(end) &&
			!b.tryFrameForward(end) && !b.tryContendForward(end) {
			b.Step()
		}
		if pred() {
			return true
		}
	}
	return false
}

// IdleRun returns the number of consecutive recessive bits observed up to and
// including the most recent bit.
func (b *Bus) IdleRun() int { return b.idleRun }

// Level returns the most recently resolved bus level (recessive before the
// first step).
func (b *Bus) Level() can.Level { return b.last }

// Group steps several buses in virtual-time lockstep — the multi-domain
// in-vehicle network case (e.g. a 500 kbit/s powertrain bus bridged to a
// 125 kbit/s body bus by a gateway). Buses may run at different rates; the
// group always advances the bus whose simulated clock is furthest behind.
//
// The lagging bus is tracked with a binary min-heap keyed on (elapsed time,
// attach order), so each Step costs O(log buses) instead of rescanning every
// bus; the attach-order tie-break reproduces the first-wins selection of the
// original linear scan exactly.
type Group struct {
	buses []*Bus
	order []int // heap of indices into buses
}

// NewGroup creates a lockstep group over the given buses.
func NewGroup(buses ...*Bus) *Group {
	g := &Group{buses: buses, order: make([]int, len(buses))}
	for i := range g.order {
		g.order[i] = i
	}
	for i := len(g.order)/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
	return g
}

// lags reports whether bus index a orders strictly before bus index b:
// less elapsed simulated time, with attach order breaking ties.
func (g *Group) lags(a, b int) bool {
	ea, eb := g.buses[a].Elapsed(), g.buses[b].Elapsed()
	if ea != eb {
		return ea < eb
	}
	return a < b
}

func (g *Group) siftDown(i int) {
	n := len(g.order)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && g.lags(g.order[l], g.order[least]) {
			least = l
		}
		if r < n && g.lags(g.order[r], g.order[least]) {
			least = r
		}
		if least == i {
			return
		}
		g.order[i], g.order[least] = g.order[least], g.order[i]
		i = least
	}
}

// Step advances the bus with the smallest elapsed simulated time by one bit.
func (g *Group) Step() {
	if len(g.buses) == 0 {
		return
	}
	g.buses[g.order[0]].Step()
	g.siftDown(0)
}

// RunFor advances every bus in the group to at least d of simulated time.
// Because the heap root is always the furthest-behind bus, the group is done
// exactly when the root has reached d — no per-bit rescan of all buses.
//
// When every member bus is quiescent, the whole group jumps in lockstep to
// the minimum quiescence horizon (in elapsed-time terms) instead of stepping
// bit by bit; any pinned member forces exact stepping for the group, so the
// result is bit-identical to per-bit lockstep.
func (g *Group) RunFor(d time.Duration) {
	if len(g.buses) == 0 {
		return
	}
	var stepped int64
	for g.buses[g.order[0]].Elapsed() < d {
		if n := g.tryJump(d); n > 0 {
			stepped += n
			continue
		}
		g.buses[g.order[0]].Step()
		g.siftDown(0)
		stepped++
	}
	simulatedBits.Add(stepped)
}

// targetBits returns the bit count at which this bus's elapsed time first
// reaches at least d — exactly where per-bit lockstep would leave it.
func (b *Bus) targetBits(d time.Duration) BitTime {
	n := b.rate.Bits(d)
	if b.rate.Duration(n) < d {
		n++
	}
	return BitTime(n)
}

// tryJump advances every member bus toward d through a window in which all
// of them are quiescent, returning the total bits jumped (0 when any member
// pins or no bus can move). Idle bits carry no cross-bus influence — every
// node has promised passivity and count-pure state over the window — so
// jumping all buses to a common wall-clock point T is interleaving-equivalent
// to per-bit lockstep over the same region. Each bus lands at floor(T/bit),
// never past its own promise horizon; the per-bit loop tops off the ragged
// last bits exactly.
func (g *Group) tryJump(d time.Duration) int64 {
	T := d
	for _, b := range g.buses {
		target := b.targetBits(d)
		if b.now >= target {
			continue // already past the window; it jumps nowhere below
		}
		h := b.idleHorizon(target)
		if h <= b.now {
			return 0
		}
		if t := b.rate.Duration(int64(h)); t < T {
			T = t
		}
	}
	var moved int64
	for _, b := range g.buses {
		if to := BitTime(b.rate.Bits(T)); to > b.now {
			moved += int64(to - b.now)
			b.jumpIdle(to)
		}
	}
	if moved > 0 {
		for i := len(g.order)/2 - 1; i >= 0; i-- {
			g.siftDown(i)
		}
	}
	return moved
}
