// Package bus simulates the physical layer of a Controller Area Network: a
// shared wire with wired-AND semantics advancing in discrete nominal bit
// times.
//
// Each attached Node is asked once per bit which level it drives; the bus
// resolves the wired-AND of all driven levels (any dominant wins) and then
// delivers the resolved level back to every node and every tap. This mirrors
// the CAN assumption that signals propagate to all nodes well within one bit
// time, which is the granularity at which arbitration, error signalling, and
// the MichiCAN counterattack all operate.
package bus

import (
	"fmt"
	"time"

	"michican/internal/can"
)

// BitTime is the index of a nominal bit time since the start of simulation.
type BitTime int64

// Rate is a CAN bus speed in bits per second.
type Rate int

// Standard automotive CAN bus speeds used in the paper's evaluation.
const (
	Rate50k  Rate = 50_000
	Rate125k Rate = 125_000
	Rate250k Rate = 250_000
	Rate500k Rate = 500_000
	Rate1M   Rate = 1_000_000
)

// BitDuration returns the nominal bit time at this rate.
func (r Rate) BitDuration() time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(int64(time.Second) / int64(r))
}

// Duration converts a number of bits at this rate into wall-clock time.
func (r Rate) Duration(bits int64) time.Duration {
	return time.Duration(bits) * r.BitDuration()
}

// Bits returns how many whole bit times fit into d at this rate.
func (r Rate) Bits(d time.Duration) int64 {
	bt := r.BitDuration()
	if bt == 0 {
		return 0
	}
	return int64(d / bt)
}

// String formats the rate in the conventional kbit/s notation.
func (r Rate) String() string {
	if r >= 1_000_000 && r%1_000_000 == 0 {
		return fmt.Sprintf("%dMbit/s", int(r)/1_000_000)
	}
	return fmt.Sprintf("%dkbit/s", int(r)/1000)
}

// Node is anything wired to the bus: a CAN controller, an attacker, a
// defense, or a passive monitor.
//
// The bus calls Drive for every node first, resolves the wired-AND, and then
// calls Observe on every node with the resolved level. A node must base its
// Drive decision for bit t only on levels observed through bit t-1; Observe
// for bit t is where it reads back the wire (CAN bit monitoring).
type Node interface {
	// Drive returns the level this node puts on the wire during bit t.
	// Nodes that do not transmit must return Recessive (the wire floats).
	Drive(t BitTime) can.Level
	// Observe delivers the resolved bus level for bit t.
	Observe(t BitTime, level can.Level)
}

// Tap is a passive observer (logic analyzer) that sees every resolved bit
// but never drives the wire.
type Tap interface {
	Bit(t BitTime, level can.Level)
}

// Bus is a simulated CAN bus. The zero value is not usable; create one with
// New. Bus is not safe for concurrent use; a simulation is single-threaded
// by design (determinism), and experiment-level parallelism runs one Bus per
// goroutine.
type Bus struct {
	rate    Rate
	nodes   []Node
	taps    []Tap
	now     BitTime
	idleRun int
	last    can.Level
}

// New creates an idle bus running at the given rate.
func New(rate Rate) *Bus {
	return &Bus{rate: rate, last: can.Recessive}
}

// Rate returns the configured bus speed.
func (b *Bus) Rate() Rate { return b.rate }

// Now returns the index of the next bit to be simulated.
func (b *Bus) Now() BitTime { return b.now }

// Elapsed returns the wall-clock time represented by the simulation so far.
func (b *Bus) Elapsed() time.Duration { return b.rate.Duration(int64(b.now)) }

// Attach wires a node to the bus. Nodes may be attached mid-simulation
// (e.g. plugging a device into the OBD-II port).
func (b *Bus) Attach(n Node) {
	b.nodes = append(b.nodes, n)
}

// Detach removes a node from the bus. It reports whether the node was found.
func (b *Bus) Detach(n Node) bool {
	for i, node := range b.nodes {
		if node == n {
			b.nodes = append(b.nodes[:i], b.nodes[i+1:]...)
			return true
		}
	}
	return false
}

// AttachTap adds a passive observer.
func (b *Bus) AttachTap(t Tap) {
	b.taps = append(b.taps, t)
}

// Step advances the simulation by one nominal bit time and returns the
// resolved bus level for that bit.
func (b *Bus) Step() can.Level {
	t := b.now
	level := can.Recessive
	for _, n := range b.nodes {
		if n.Drive(t) == can.Dominant {
			level = can.Dominant
		}
	}
	for _, n := range b.nodes {
		n.Observe(t, level)
	}
	for _, tap := range b.taps {
		tap.Bit(t, level)
	}
	if level == can.Recessive {
		b.idleRun++
	} else {
		b.idleRun = 0
	}
	b.last = level
	b.now++
	return level
}

// Run advances the simulation by n bit times.
func (b *Bus) Run(n int64) {
	for i := int64(0); i < n; i++ {
		b.Step()
	}
}

// RunFor advances the simulation by the number of bit times equivalent to d
// at the bus rate.
func (b *Bus) RunFor(d time.Duration) {
	b.Run(b.rate.Bits(d))
}

// RunUntil steps the bus until the predicate returns true (checked after
// each bit) or maxBits have elapsed. It reports whether the predicate fired.
func (b *Bus) RunUntil(pred func() bool, maxBits int64) bool {
	for i := int64(0); i < maxBits; i++ {
		b.Step()
		if pred() {
			return true
		}
	}
	return false
}

// IdleRun returns the number of consecutive recessive bits observed up to and
// including the most recent bit.
func (b *Bus) IdleRun() int { return b.idleRun }

// Level returns the most recently resolved bus level (recessive before the
// first step).
func (b *Bus) Level() can.Level { return b.last }

// Group steps several buses in virtual-time lockstep — the multi-domain
// in-vehicle network case (e.g. a 500 kbit/s powertrain bus bridged to a
// 125 kbit/s body bus by a gateway). Buses may run at different rates; the
// group always advances the bus whose simulated clock is furthest behind.
type Group struct {
	buses []*Bus
}

// NewGroup creates a lockstep group over the given buses.
func NewGroup(buses ...*Bus) *Group {
	return &Group{buses: buses}
}

// Step advances the bus with the smallest elapsed simulated time by one bit.
func (g *Group) Step() {
	if len(g.buses) == 0 {
		return
	}
	min := g.buses[0]
	for _, b := range g.buses[1:] {
		if b.Elapsed() < min.Elapsed() {
			min = b
		}
	}
	min.Step()
}

// RunFor advances every bus in the group to at least d of simulated time.
func (g *Group) RunFor(d time.Duration) {
	for {
		done := true
		for _, b := range g.buses {
			if b.Elapsed() < d {
				done = false
			}
		}
		if done {
			return
		}
		g.Step()
	}
}
