package bus

import (
	"math"
	"sync/atomic"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// QuiescentForever is the horizon a node returns from QuiescentUntil when it
// will never spontaneously drive dominant or change state while the bus stays
// recessive (e.g. an idle controller with an empty transmit queue).
const QuiescentForever = BitTime(math.MaxInt64)

// Quiescent is an optional capability a Node may implement to let the bus
// fast-forward through idle stretches.
//
// QuiescentUntil(now) is a promise: assuming every bit in [now, horizon)
// resolves recessive, this node drives recessive for all of them and its
// externally visible behaviour over that prefix is a pure function of the
// bit count (computable in O(1)). A horizon <= now declines the promise and
// pins the bus to exact per-bit stepping. Nodes with time-triggered work (a
// pending transmission, a scheduled replay, bus-off recovery) return the bit
// time of that event so the bus resumes exact stepping there.
//
// When every node and tap on a bus is quiescent past the current bit, the
// bus skips the clock to the minimum horizon and calls SkipIdle(from, to) on
// each participant instead of per-bit Drive/Observe. SkipIdle must leave the
// node in exactly the state it would have reached had it observed to-from
// recessive bits one at a time.
type Quiescent interface {
	QuiescentUntil(now BitTime) BitTime
	SkipIdle(from, to BitTime)
}

// TapFastForwarder is the tap-side analogue of Quiescent: a Tap that can
// account for a run of recessive bits in one call. Taps that do not
// implement it pin the bus to exact stepping (they need every Bit call).
type TapFastForwarder interface {
	SkipIdle(from, to BitTime)
}

// simulatedBits counts every nominal bit time advanced by Run/RunFor/
// RunUntil across all buses in the process, whether exact-stepped or
// fast-forwarded. cmd/michican-bench divides it by wall time for a
// bits-per-second throughput figure.
var simulatedBits atomic.Int64

// SimulatedBits returns the cumulative process-wide simulated bit count.
func SimulatedBits() int64 { return simulatedBits.Load() }

// AddSimulatedBits credits bits advanced outside the Run family (callers
// that drive Step directly in their own loops).
func AddSimulatedBits(n int64) {
	if n > 0 {
		simulatedBits.Add(n)
	}
}

// SetFastForward enables or disables idle fast-forwarding (enabled by
// default). Disabling forces exact per-bit stepping regardless of node
// capabilities — the reference path for golden-trace differential tests.
func (b *Bus) SetFastForward(on bool) { b.ffDisabled = !on }

// FastForwardedBits returns how many bit times this bus advanced via a fast
// path — the idle quiescence jump, the sole-transmitter frame path, the
// contested-window path, the compiled-splice path, and the hyperperiod
// super-splice path — rather than exact stepping.
func (b *Bus) FastForwardedBits() int64 {
	return b.ffSkipped + b.ffFrameBits + b.ffContendBits + b.ffSpliceBits + b.ffHyperBits
}

// idleHorizon computes the furthest bit time, bounded by end, through which
// every node promises quiescence. It returns b.now when any participant pins
// the bus or declines the promise. It performs no state changes.
func (b *Bus) idleHorizon(end BitTime) BitTime {
	if b.ffDisabled || b.pinned > 0 || b.tapPinned > 0 || end <= b.now {
		return b.now
	}
	if len(b.nodes) == 0 {
		// An empty bus is trivially cheap to step exactly, and callers of
		// RunUntil on a bare bus (tests, examples) may poll Now() in their
		// predicates; keep their per-bit timing.
		return b.now
	}
	horizon := end
	for _, q := range b.quiescent {
		h := q.QuiescentUntil(b.now)
		if h <= b.now {
			return b.now
		}
		if h < horizon {
			horizon = h
		}
	}
	return horizon
}

// jumpIdle commits a quiescent jump to the given horizon, which the caller
// must have obtained from idleHorizon with no intervening state changes.
func (b *Bus) jumpIdle(horizon BitTime) {
	n := int64(horizon - b.now)
	for _, q := range b.quiescent {
		q.SkipIdle(b.now, horizon)
	}
	for _, ft := range b.ffTaps {
		ft.SkipIdle(b.now, horizon)
	}
	b.tel.Emit(int64(b.now), telemetry.EvFFSpan, n, 0)
	b.hyperIdleRecorded(n)
	b.idleRun += int(n)
	b.last = can.Recessive
	b.now = horizon
	b.ffSkipped += n
	idleForwardedTotal.Add(n)
}

// tryFastForward attempts one quiescent jump, bounded by end. It returns
// false — having done nothing — when any participant pins the bus or
// declines, in which case the caller tries the frame fast path and then an
// exact Step.
//
// The bound matters for correctness: external code only interacts with the
// bus (Enqueue, Attach, predicate checks) at Run-family boundaries, so a
// jump may never overshoot the window the caller asked for.
func (b *Bus) tryFastForward(end BitTime) bool {
	horizon := b.idleHorizon(end)
	if horizon <= b.now {
		return false
	}
	b.jumpIdle(horizon)
	return true
}
