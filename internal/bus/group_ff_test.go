package bus_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/restbus"
	"michican/internal/trace"
)

// mixedRateGroup builds a two-domain network — a 500 kbit/s powertrain bus
// and a 125 kbit/s body bus, each carrying its own periodic restbus traffic
// with an ACKing peer — plus a full-trace recorder tap per bus.
func mixedRateGroup(t *testing.T, ff bool) (*bus.Group, *bus.Bus, *bus.Bus, *trace.Recorder, *trace.Recorder) {
	t.Helper()
	ptMatrix := &restbus.Matrix{Vehicle: "test", Bus: "powertrain", Messages: []restbus.Message{
		{ID: 0x0C1, Transmitter: "ecm", DLC: 8, Period: 2 * time.Millisecond},
		{ID: 0x1A4, Transmitter: "tcm", DLC: 4, Period: 5 * time.Millisecond},
	}}
	bodyMatrix := &restbus.Matrix{Vehicle: "test", Bus: "body", Messages: []restbus.Message{
		{ID: 0x2F0, Transmitter: "bcm", DLC: 6, Period: 8 * time.Millisecond},
		{ID: 0x4D3, Transmitter: "dcm", DLC: 2, Period: 20 * time.Millisecond},
	}}

	pt := bus.New(bus.Rate500k)
	body := bus.New(bus.Rate125k)
	pt.SetFastForward(ff)
	pt.SetFrameFastForward(ff)
	body.SetFastForward(ff)
	body.SetFrameFastForward(ff)

	pt.Attach(restbus.NewReplayer("pt-restbus", ptMatrix, bus.Rate500k, rand.New(rand.NewSource(3))))
	pt.Attach(controller.New(controller.Config{Name: "pt-peer", AutoRecover: true}))
	body.Attach(restbus.NewReplayer("body-restbus", bodyMatrix, bus.Rate125k, rand.New(rand.NewSource(4))))
	body.Attach(controller.New(controller.Config{Name: "body-peer", AutoRecover: true}))

	ptRec, bodyRec := trace.NewRecorder(), trace.NewRecorder()
	pt.AttachTap(ptRec)
	body.AttachTap(bodyRec)
	return bus.NewGroup(pt, body), pt, body, ptRec, bodyRec
}

// TestGroupMixedRateFastForwardIdentity runs the same two-domain scenario
// through exact lockstep stepping and through the group's quiescent jump
// (plus each member's frame fast path) and requires bit-identical wire
// traces on both buses — the satellite regression for Group fast-forward.
func TestGroupMixedRateFastForwardIdentity(t *testing.T) {
	const d = 100 * time.Millisecond

	exactGrp, exactPT, exactBody, exactPTRec, exactBodyRec := mixedRateGroup(t, false)
	exactGrp.RunFor(d)
	if exactPT.FastForwardedBits() != 0 || exactBody.FastForwardedBits() != 0 {
		t.Fatal("exact group run fast-forwarded")
	}

	ffGrp, ffPT, ffBody, ffPTRec, ffBodyRec := mixedRateGroup(t, true)
	ffGrp.RunFor(d)
	if ffPT.IdleForwardedBits() == 0 && ffBody.IdleForwardedBits() == 0 {
		t.Fatal("group jump never engaged")
	}

	if exactPT.Now() != ffPT.Now() || exactBody.Now() != ffBody.Now() {
		t.Fatalf("clock divergence: exact (%d,%d), ff (%d,%d)",
			exactPT.Now(), exactBody.Now(), ffPT.Now(), ffBody.Now())
	}
	compareTraces(t, "powertrain", exactPTRec.Bits(), ffPTRec.Bits())
	compareTraces(t, "body", exactBodyRec.Bits(), ffBodyRec.Bits())
}

func compareTraces(t *testing.T, name string, exact, ff []can.Level) {
	t.Helper()
	if len(exact) == 0 {
		t.Fatalf("%s: empty exact trace", name)
	}
	if !reflect.DeepEqual(exact, ff) {
		i := 0
		for i < len(exact) && i < len(ff) && exact[i] == ff[i] {
			i++
		}
		t.Fatalf("%s: traces diverge at bit %d (exact %d bits, ff %d bits)",
			name, i, len(exact), len(ff))
	}
}
