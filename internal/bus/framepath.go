package bus

import (
	"sync/atomic"

	"michican/internal/can"
	"michican/internal/telemetry"
)

// Transmitting is an optional capability a Node may implement to let the bus
// fast-forward through sole-transmitter transmission windows.
//
// CommittedBits(now) returns the exact levels this node is committed to
// driving for bits [now, horizon), provided every other node drives recessive
// throughout — for a CAN controller these are the serialized wire bits of the
// frame in flight. The commitment must be unconditional on the observed bus
// levels over that span (which is why it must exclude the ACK slot and any
// bit whose outcome feeds back into the node's next drive decision; the
// frame-completion bit may commit — its level is unconditional — provided the
// node's ObserveRun fires the completion events at that exact bit time). A
// horizon <= now, or an empty slice, declines.
//
// FrameBit reports the wire index within the current frame (SOF = 0) of the
// bit the node drives at the time CommittedBits was queried; receivers use it
// to prove they are bit-synchronized to the committed stream.
type Transmitting interface {
	CommittedBits(now BitTime) ([]can.Level, BitTime)
	FrameBit() int
}

// RunObserver is the batch-delivery capability of the frame fast path. Nodes
// lacking it pin every transmission window to exact per-bit stepping.
//
// PassiveRun(now, frameBit, levels) is the span-side analogue of
// Quiescent.QuiescentUntil: the bus proposes that bits [now, now+len(levels))
// resolve to exactly levels (the sole transmitter's committed stream, whose
// position within its frame is frameBit), and the node answers with the
// longest prefix it can consume while (a) driving recessive for every one of
// those bits and (b) deferring no externally visible event — no error flag,
// no frame-completion callback, no counterattack pull — past the prefix. The
// answer must be prefix-monotone: accepting k bits implies the same k bits
// would be accepted from any longer proposal. Returning 0 pins the span.
// PassiveRun must not mutate any state — the bus may discard the proposal.
//
// ObserveRun(from, levels) then delivers a (possibly clamped) span for real:
// the node must leave itself in exactly the state len(levels) per-bit
// Observe calls with these resolved levels would have produced.
type RunObserver interface {
	PassiveRun(now BitTime, frameBit int, levels []can.Level) int
	ObserveRun(from BitTime, levels []can.Level)
}

// TapRunObserver is the tap-side analogue of RunObserver: a Tap that can
// record a run of resolved levels in one call. Taps without it pin the frame
// fast path (they need every Bit call).
type TapRunObserver interface {
	BitRun(from BitTime, levels []can.Level)
}

// minFrameRun is the shortest span worth negotiating: below this the
// per-node scan overhead exceeds the cost of exact stepping.
const minFrameRun = 4

// Process-wide fast-path counters, split by path, for the benchmark harness's
// hit-rate accounting (cmd/michican-bench -json).
var (
	idleForwardedTotal  atomic.Int64
	frameForwardedTotal atomic.Int64
)

// IdleForwardedTotal returns the cumulative process-wide count of bits
// advanced via the idle (quiescence) fast path.
func IdleForwardedTotal() int64 { return idleForwardedTotal.Load() }

// FrameForwardedTotal returns the cumulative process-wide count of bits
// advanced via the sole-transmitter frame fast path.
func FrameForwardedTotal() int64 { return frameForwardedTotal.Load() }

// SetFrameFastForward enables or disables the sole-transmitter frame fast
// path independently of the idle path (enabled by default; SetFastForward
// false disables both). The separate knob exists so benchmarks can measure
// exact vs idle-FF vs frame-FF.
func (b *Bus) SetFrameFastForward(on bool) { b.frameFFOff = !on }

// IdleForwardedBits returns how many bits this bus skipped via the idle
// quiescence path.
func (b *Bus) IdleForwardedBits() int64 { return b.ffSkipped }

// FrameForwardedBits returns how many bits this bus advanced via the
// sole-transmitter frame fast path.
func (b *Bus) FrameForwardedBits() int64 { return b.ffFrameBits }

// tryFrameForward attempts one sole-transmitter batch advance, bounded by
// end. It returns false — having done nothing — unless exactly one node has
// committed bits, every other node accepts the whole (clamped) span
// passively, and every participant supports batch delivery.
//
// The wired-AND over the span is then trivial: the resolved levels are the
// committed levels themselves, because every other driver is recessive.
func (b *Bus) tryFrameForward(end BitTime) bool {
	if b.ffDisabled || b.frameFFOff || b.runPinned > 0 || b.tapRunPinned > 0 || end <= b.now {
		return false
	}
	tx := -1
	var levels []can.Level
	for i, tc := range b.txCap {
		if tc == nil {
			continue
		}
		bits, h := tc.CommittedBits(b.now)
		if h <= b.now || len(bits) == 0 {
			continue
		}
		if tx >= 0 {
			return false // two mid-frame drivers: contention, exact-step it
		}
		if m := int64(h - b.now); m < int64(len(bits)) {
			bits = bits[:m]
		}
		tx, levels = i, bits
	}
	if tx < 0 {
		return false
	}
	if m := int64(end - b.now); m < int64(len(levels)) {
		levels = levels[:m]
	}
	frameBit := b.txCap[tx].FrameBit()
	n := len(levels)
	for i, ro := range b.runObs {
		if i == tx {
			continue
		}
		k := ro.PassiveRun(b.now, frameBit, levels[:n])
		if k < n {
			n = k
		}
		if n < minFrameRun {
			return false
		}
	}
	levels = levels[:n]
	for _, ro := range b.runObs {
		ro.ObserveRun(b.now, levels)
	}
	for _, tr := range b.tapRun {
		tr.BitRun(b.now, levels)
	}
	if k := trailingRecessive(levels); k == n {
		b.idleRun += n
	} else {
		b.idleRun = k
	}
	b.tel.Emit(int64(b.now), telemetry.EvFFSpan, int64(n), 1)
	b.last = levels[n-1]
	b.now += BitTime(n)
	b.ffFrameBits += int64(n)
	frameForwardedTotal.Add(int64(n))
	return true
}

// trailingRecessive returns the length of the trailing recessive run.
func trailingRecessive(levels []can.Level) int {
	k := 0
	for i := len(levels) - 1; i >= 0 && levels[i] == can.Recessive; i-- {
		k++
	}
	return k
}
