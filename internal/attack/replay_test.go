package attack

import (
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/fsm"
	"michican/internal/ids"
	"michican/internal/restbus"
)

func TestReplayAttackerDuplicatesFrames(t *testing.T) {
	b := bus.New(bus.Rate50k)
	victim := restbus.NewReplayer("victim", &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x150, Transmitter: "V", DLC: 4, Period: 50 * time.Millisecond},
	}}, bus.Rate50k, nil)
	b.Attach(victim)

	var seen []can.Frame
	rx := controller.New(controller.Config{Name: "rx", AutoRecover: true,
		OnReceive: func(_ bus.BitTime, f can.Frame) {
			if f.ID == 0x150 {
				seen = append(seen, f)
			}
		}})
	b.Attach(rx)

	rep := NewReplayAttacker("replay", 0x150, 500)
	b.Attach(rep)
	b.RunFor(500 * time.Millisecond)

	if rep.Captured == 0 || rep.Replayed == 0 {
		t.Fatalf("captured=%d replayed=%d", rep.Captured, rep.Replayed)
	}
	// Roughly twice the genuine rate: originals plus replays.
	genuine := victim.Stats().Transmitted
	if len(seen) < genuine+genuine/2 {
		t.Errorf("observer saw %d frames of 0x150; genuine %d — replays missing", len(seen), genuine)
	}
	// Replayed copies are byte-identical to some genuine frame (payload
	// carries a sequence number, so duplicates prove replay).
	dups := 0
	counts := map[string]int{}
	for _, f := range seen {
		counts[f.String()]++
	}
	for _, c := range counts {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no byte-identical duplicates observed")
	}
}

func TestIDSFlagsReplay(t *testing.T) {
	// The replayed copies double the apparent rate of 0x150: a frequency
	// IDS catches that even though the payloads are genuine.
	b := bus.New(bus.Rate50k)
	victim := restbus.NewReplayer("victim", &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x150, Transmitter: "V", DLC: 4, Period: 50 * time.Millisecond},
	}}, bus.Rate50k, nil)
	b.Attach(victim)
	det := ids.New(ids.Config{Name: "ids", TrainingBits: 25_000, RateFactor: 1.5})
	b.Attach(det)
	b.RunFor(600 * time.Millisecond) // train on clean traffic

	rep := NewReplayAttacker("replay", 0x150, 100)
	b.Attach(rep)
	b.RunFor(400 * time.Millisecond)

	anomalies := 0
	for _, a := range det.Alerts() {
		if a.Kind == ids.FrequencyAnomaly && a.ID == 0x150 {
			anomalies++
		}
	}
	if anomalies == 0 {
		t.Error("IDS missed the replay-rate anomaly")
	}
}

func TestMichiCANEradicatesReplayOfDefendedID(t *testing.T) {
	// Replaying the defended ECU's own ID is a spoof by Definition IV.1 —
	// the payload being genuine does not help the attacker.
	b := bus.New(bus.Rate50k)
	v, err := fsm.NewIVN([]can.ID{0x173, 0x300})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fsm.NewDetectionSet(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	def, err := core.New(core.Config{
		Name: "michican", FSM: fsm.Build(ds), SelfTransmitting: defCtl.Transmitting,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Attach(core.NewECU(defCtl, def))
	peer := controller.New(controller.Config{Name: "peer", AutoRecover: true})
	b.Attach(peer)

	rep := NewReplayAttacker("replay", 0x173, 200)
	b.Attach(rep)

	// The defender broadcasts; the attacker captures and replays.
	for i := 0; i < 3; i++ {
		if err := defCtl.Enqueue(can.Frame{ID: 0x173, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
		b.Run(1000)
	}
	if !b.RunUntil(func() bool {
		return rep.Controller().Stats().BusOffEvents > 0
	}, 20_000) {
		t.Fatalf("replay attacker not eradicated (captured=%d replayed=%d TEC=%d)",
			rep.Captured, rep.Replayed, rep.Controller().TEC())
	}
	if rep.Controller().Stats().TxSuccess != 0 {
		t.Errorf("replayed frames leaked: %d", rep.Controller().Stats().TxSuccess)
	}
}
