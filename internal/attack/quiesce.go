package attack

import "michican/internal/bus"

// QuiescentPolicy is an optional capability an injection Policy implements
// to let the attacker's bus node participate in idle fast-forwarding.
//
// QuiescentUntil(now, pending) promises that, given the mailbox depth stays
// at pending and the bus stays recessive, Tick returns nil (and mutates
// nothing) for every bit in [now, horizon). A policy with a scheduled
// injection returns its due bit so that bit is exact-stepped and Tick runs
// there, exactly as in per-bit mode. Policies without the capability pin the
// attacker's bus to exact stepping.
type QuiescentPolicy interface {
	QuiescentUntil(now bus.BitTime, pending int) bus.BitTime
}

var (
	_ bus.Quiescent   = (*Attacker)(nil)
	_ QuiescentPolicy = (*Flood)(nil)
	_ QuiescentPolicy = (*RandomDoS)(nil)
	_ QuiescentPolicy = (*Toggle)(nil)
	_ QuiescentPolicy = (*Masquerade)(nil)
)

// QuiescentUntil implements bus.Quiescent: the attacker is quiescent until
// either its injection policy wants to run or its controller has work.
func (a *Attacker) QuiescentUntil(now bus.BitTime) bus.BitTime {
	qp, ok := a.policy.(QuiescentPolicy)
	if !ok {
		return now
	}
	h := qp.QuiescentUntil(now, a.ctl.PendingTx())
	if hc := a.ctl.QuiescentUntil(now); hc < h {
		h = hc
	}
	return h
}

// SkipIdle implements bus.Quiescent. Policies carry no per-bit state over a
// quiescent run (their horizons guarantee Tick would have been a no-op), so
// only the controller advances.
func (a *Attacker) SkipIdle(from, to bus.BitTime) {
	a.ctl.SkipIdle(from, to)
}

// QuiescentUntil implements QuiescentPolicy. A periodic flood sleeps until
// its next due bit; a back-to-back flood re-arms the moment the mailbox
// drains, so it is only quiescent while a frame is still pending (and the
// controller pins the bus for as long as that matters).
func (f *Flood) QuiescentUntil(now bus.BitTime, pending int) bus.BitTime {
	if f.PeriodBits > 0 {
		if f.nextDue <= now {
			return now
		}
		return f.nextDue
	}
	if pending == 0 {
		return now
	}
	return bus.QuiescentForever
}

// QuiescentUntil implements QuiescentPolicy: sleep until the next periodic
// draw (the RNG is only consumed inside Tick, at an exact step).
func (r *RandomDoS) QuiescentUntil(now bus.BitTime, _ int) bus.BitTime {
	if r.nextDue <= now {
		return now
	}
	return r.nextDue
}

// QuiescentUntil implements QuiescentPolicy: a toggler fires as soon as the
// mailbox drains, so it pins the bus exactly then.
func (g *Toggle) QuiescentUntil(now bus.BitTime, pending int) bus.BitTime {
	if len(g.Frames) == 0 {
		return bus.QuiescentForever
	}
	if pending == 0 {
		return now
	}
	return bus.QuiescentForever
}

// QuiescentUntil implements QuiescentPolicy: the active phase's horizon,
// clamped at the phase switch so Tick's delegation flips during an exact
// step.
func (m *Masquerade) QuiescentUntil(now bus.BitTime, pending int) bus.BitTime {
	active := m.Fabricate
	if now < m.SwitchBit {
		active = m.Suspend
	}
	qp, ok := active.(QuiescentPolicy)
	if !ok {
		return now
	}
	h := qp.QuiescentUntil(now, pending)
	if now < m.SwitchBit && m.SwitchBit < h {
		h = m.SwitchBit
	}
	return h
}
