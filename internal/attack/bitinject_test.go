package attack

import (
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/fsm"
	"michican/internal/restbus"
)

func TestBitInjectorBusesOffVictim(t *testing.T) {
	// The offensive use of bit-level access (Sec. VI-A): a legitimate,
	// compliant victim is driven to bus-off in exactly 32 attempts — the
	// same fault-confinement arithmetic MichiCAN uses defensively.
	b := bus.New(bus.Rate500k)
	victim := controller.New(controller.Config{Name: "victim", AutoRecover: false})
	witness := controller.New(controller.Config{Name: "witness", AutoRecover: true})
	b.Attach(victim)
	b.Attach(witness)
	b.Attach(NewBitInjector(0x0B0))

	if err := victim.Enqueue(can.Frame{ID: 0x0B0, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return victim.State() == controller.BusOff }, 5000) {
		t.Fatalf("victim not bused off (TEC=%d attempts=%d)", victim.TEC(), victim.Stats().TxAttempts)
	}
	if victim.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", victim.Stats().TxAttempts)
	}
	if victim.Stats().TxSuccess != 0 {
		t.Errorf("victim slipped %d frames through", victim.Stats().TxSuccess)
	}
}

func TestBitInjectorIsSelective(t *testing.T) {
	// Only the victim ID is destroyed; other traffic passes — the stealthy,
	// selective link-layer DoS of Palanca et al. [27].
	b := bus.New(bus.Rate500k)
	victim := restbus.NewReplayer("victim", &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x0B0, Transmitter: "victim", DLC: 8, Period: 10 * time.Millisecond},
	}}, bus.Rate500k, nil)
	other := restbus.NewReplayer("other", &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x200, Transmitter: "other", DLC: 8, Period: 10 * time.Millisecond},
	}}, bus.Rate500k, nil)
	b.Attach(victim)
	b.Attach(other)
	b.Attach(NewBitInjector(0x0B0))

	b.RunFor(150 * time.Millisecond)
	if victim.Stats().DeadlineMisses < 5 {
		t.Errorf("victim missed only %d deadlines", victim.Stats().DeadlineMisses)
	}
	if other.Stats().DeadlineMisses != 0 {
		t.Errorf("non-victim 0x200 missed %d deadlines", other.Stats().DeadlineMisses)
	}
	if other.Stats().Transmitted < 10 {
		t.Errorf("non-victim delivered only %d frames", other.Stats().Transmitted)
	}
}

func TestMichiCANCannotStopBitInjection(t *testing.T) {
	// The defense watches CAN IDs; the injected frames carry the victim's
	// *legitimate* ID, so MichiCAN never flags them. This is why the paper
	// insists the bit-level access itself must be isolated (hypervisor /
	// MPU / TrustZone, Sec. III) rather than defended on the wire.
	b := bus.New(bus.Rate500k)
	v, err := fsm.NewIVN([]can.ID{0x0B0, 0x173})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fsm.NewDetectionSet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	def, err := core.New(core.Config{Name: "michican", FSM: fsm.Build(ds)})
	if err != nil {
		t.Fatal(err)
	}
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(core.NewECU(defCtl, def))

	victim := controller.New(controller.Config{Name: "victim", AutoRecover: false})
	b.Attach(victim)
	b.Attach(NewBitInjector(0x0B0))

	if err := victim.Enqueue(can.Frame{ID: 0x0B0, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return victim.State() == controller.BusOff }, 5000) {
		t.Fatal("victim not bused off")
	}
	if def.Stats().Counterattacks != 0 {
		t.Errorf("defense counterattacked %d times against a legitimate-ID attack",
			def.Stats().Counterattacks)
	}
}
