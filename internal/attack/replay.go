package attack

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
)

// Replayer is a replay attacker: it records legitimate frames from the bus
// and re-injects byte-identical copies after a delay. Replay is the
// canonical attack that payload inspection cannot catch (the frames are
// genuine); frequency-based IDSes see a rate anomaly, and MichiCAN sees a
// spoof/DoS by ID exactly as for fabricated frames — the re-injected copy
// still comes from the wrong node.
type Replayer struct {
	ctl *controller.Controller

	// target restricts recording to one ID (0 = record everything).
	target can.ID
	all    bool
	// delayBits is how long after capture a frame is re-injected.
	delayBits int64

	captured []timedFrame
	// Captured counts frames recorded; Replayed counts re-injections
	// scheduled.
	Captured, Replayed int
}

type timedFrame struct {
	at    bus.BitTime
	frame can.Frame
}

var _ bus.Node = (*Replayer)(nil)

// NewReplayAttacker creates a replay attacker. target selects the ID to
// capture (pass ReplayAll to capture every frame); delayBits is the
// capture-to-replay delay.
func NewReplayAttacker(name string, target can.ID, delayBits int64) *Replayer {
	r := &Replayer{target: target, all: target == ReplayAll, delayBits: delayBits}
	r.ctl = controller.New(controller.Config{
		Name:        name,
		AutoRecover: true,
		OnReceive:   r.onFrame,
	})
	return r
}

// ReplayAll captures every frame regardless of ID.
const ReplayAll can.ID = 1<<31 - 1

// Controller exposes the attacker's protocol controller.
func (r *Replayer) Controller() *controller.Controller { return r.ctl }

func (r *Replayer) onFrame(t bus.BitTime, f can.Frame) {
	if !r.all && f.ID != r.target {
		return
	}
	r.captured = append(r.captured, timedFrame{at: t, frame: f.Clone()})
	r.Captured++
}

// Drive implements bus.Node.
func (r *Replayer) Drive(t bus.BitTime) can.Level { return r.ctl.Drive(t) }

// Observe implements bus.Node: due captures are re-injected, then the
// controller advances.
func (r *Replayer) Observe(t bus.BitTime, level can.Level) {
	for len(r.captured) > 0 && int64(t-r.captured[0].at) >= r.delayBits {
		if err := r.ctl.Enqueue(r.captured[0].frame); err == nil {
			r.Replayed++
		}
		r.captured = r.captured[1:]
	}
	r.ctl.Observe(t, level)
}
