// Package attack implements the adversaries of the paper's threat model
// (Sec. III, Fig. 2): fabrication (spoofing), suspension/DoS in its
// traditional, random, and targeted flavors, masquerade, the harmless
// miscellaneous attack, and the Experiment-6 multi-ID toggler.
//
// Every attacker drives a *compliant* CAN controller — the threat model
// grants arbitrary code execution on the ECU but forbids modifying the
// protocol controller — which is precisely why MichiCAN's induced errors
// march the attacker's TEC to bus-off.
package attack

import (
	"math/rand"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/telemetry"
)

// Policy decides which frames the compromised application injects at a given
// bit time. Implementations must be deterministic given their construction
// inputs (seeded RNGs) so experiments are reproducible.
type Policy interface {
	// Tick returns the frames to enqueue at bit time t, given how many
	// frames are already pending in the attacker's transmit mailbox.
	Tick(t bus.BitTime, pending int) []can.Frame
}

// Attacker is a compromised ECU: a compliant controller plus an injection
// policy. It implements bus.Node.
type Attacker struct {
	ctl    *controller.Controller
	policy Policy
}

var _ bus.Node = (*Attacker)(nil)

// New creates an attacker with the given name and policy. The underlying
// controller auto-recovers from bus-off — the persistent attacker of
// Sec. V-E.
func New(name string, policy Policy) *Attacker {
	return &Attacker{
		ctl:    controller.New(controller.Config{Name: name, AutoRecover: true}),
		policy: policy,
	}
}

// Controller exposes the attacker's protocol controller (for state and
// statistics inspection).
func (a *Attacker) Controller() *controller.Controller { return a.ctl }

// SetTelemetry wires the attacker's controller to a telemetry hub, so the
// induced error episodes, TEC march, and bus-off entries are captured.
func (a *Attacker) SetTelemetry(hub *telemetry.Hub) { a.ctl.SetTelemetry(hub) }

// Drive implements bus.Node.
func (a *Attacker) Drive(t bus.BitTime) can.Level { return a.ctl.Drive(t) }

// Observe implements bus.Node: the application layer runs its injection
// policy, then the controller advances.
func (a *Attacker) Observe(t bus.BitTime, level can.Level) {
	for _, f := range a.policy.Tick(t, a.ctl.PendingTx()) {
		// Policies only produce valid frames; an enqueue failure would be a
		// programming error surfaced by tests, so drop silently here.
		_ = a.ctl.Enqueue(f)
	}
	a.ctl.Observe(t, level)
}

// Flood injects one fixed frame persistently: whenever the mailbox drains,
// the next copy is queued, so the wire sees the ID back-to-back — the
// "continuously sending" DoS pattern of Sec. I.
type Flood struct {
	// Frame is the injected frame.
	Frame can.Frame
	// PeriodBits, when positive, spaces injections instead of flooding
	// back-to-back.
	PeriodBits int64

	nextDue bus.BitTime
}

var _ Policy = (*Flood)(nil)

// Tick implements Policy.
func (f *Flood) Tick(t bus.BitTime, pending int) []can.Frame {
	if f.PeriodBits > 0 {
		if t < f.nextDue {
			return nil
		}
		f.nextDue = t + bus.BitTime(f.PeriodBits)
		return []can.Frame{f.Frame.Clone()}
	}
	if pending > 0 {
		return nil
	}
	return []can.Frame{f.Frame.Clone()}
}

// NewTraditionalDoS floods CAN ID 0x000 — the highest priority on the bus —
// blocking every other ECU (Fig. 2, traditional).
func NewTraditionalDoS(name string) *Attacker {
	return New(name, &Flood{Frame: can.Frame{ID: 0x000, Data: make([]byte, 8)}})
}

// NewTargetedDoS floods an ID chosen just below the victim's, silencing the
// victim and everything of lower priority while leaving higher-priority
// traffic untouched (Fig. 2, targeted; the ParkSense attack of Sec. V-F uses
// 0x25F against a feature whose lowest ID is 0x260).
func NewTargetedDoS(name string, id can.ID) *Attacker {
	return New(name, &Flood{Frame: can.Frame{ID: id, Data: make([]byte, 8)}})
}

// NewFabrication injects spoofed frames carrying the victim's CAN ID with
// attacker-controlled payload at the given period (Fig. 2 / Sec. III,
// fabrication). To override the victim's genuine messages the period is
// typically much shorter than the victim's.
func NewFabrication(name string, id can.ID, payload []byte, periodBits int64) *Attacker {
	data := make([]byte, len(payload))
	copy(data, payload)
	return New(name, &Flood{Frame: can.Frame{ID: id, Data: data}, PeriodBits: periodBits})
}

// NewMiscellaneous injects an ID above every legitimate one (Definition
// IV.3): it only ever wins idle arbitration and harms nothing — MichiCAN
// deliberately ignores it.
func NewMiscellaneous(name string, id can.ID, periodBits int64) *Attacker {
	return New(name, &Flood{Frame: can.Frame{ID: id, Data: make([]byte, 8)}, PeriodBits: periodBits})
}

// RandomDoS injects frames with IDs drawn uniformly below a bound at a fixed
// period (Fig. 2, random).
type RandomDoS struct {
	// Below bounds the drawn IDs: ids are uniform in [0, Below).
	Below can.ID
	// PeriodBits spaces the injections.
	PeriodBits int64
	// Rng drives the draw; required.
	Rng *rand.Rand

	nextDue bus.BitTime
}

var _ Policy = (*RandomDoS)(nil)

// Tick implements Policy.
func (r *RandomDoS) Tick(t bus.BitTime, _ int) []can.Frame {
	if t < r.nextDue {
		return nil
	}
	r.nextDue = t + bus.BitTime(r.PeriodBits)
	id := can.ID(r.Rng.Intn(int(r.Below)))
	return []can.Frame{{ID: id, Data: make([]byte, 8)}}
}

// NewRandomDoS creates the random-DoS attacker of Fig. 2.
func NewRandomDoS(name string, below can.ID, periodBits int64, rng *rand.Rand) *Attacker {
	return New(name, &RandomDoS{Below: below, PeriodBits: periodBits, Rng: rng})
}

// Toggle alternates between several frames, queueing the next as soon as the
// mailbox drains — the Experiment-6 attacker toggling 0x050/0x051.
type Toggle struct {
	// Frames are injected round-robin.
	Frames []can.Frame

	next int
}

var _ Policy = (*Toggle)(nil)

// Tick implements Policy.
func (g *Toggle) Tick(_ bus.BitTime, pending int) []can.Frame {
	if pending > 0 || len(g.Frames) == 0 {
		return nil
	}
	f := g.Frames[g.next].Clone()
	g.next = (g.next + 1) % len(g.Frames)
	return []can.Frame{f}
}

// NewToggling creates the Experiment-6 attacker sending the given IDs
// consecutively from one node.
func NewToggling(name string, ids ...can.ID) *Attacker {
	frames := make([]can.Frame, len(ids))
	for i, id := range ids {
		frames[i] = can.Frame{ID: id, Data: make([]byte, 8)}
	}
	return New(name, &Toggle{Frames: frames})
}

// Masquerade first suspends the victim (a targeted DoS on its ID range) and
// then fabricates the victim's messages — the combined attack of Sec. III
// that motivates DoS prevention. Phase two begins after SwitchBit.
type Masquerade struct {
	// Suspend is the phase-one policy (typically a targeted DoS).
	Suspend Policy
	// Fabricate is the phase-two policy (spoofed victim frames).
	Fabricate Policy
	// SwitchBit is the bus time at which the attacker switches phases.
	SwitchBit bus.BitTime
}

var _ Policy = (*Masquerade)(nil)

// Tick implements Policy.
func (m *Masquerade) Tick(t bus.BitTime, pending int) []can.Frame {
	if t < m.SwitchBit {
		return m.Suspend.Tick(t, pending)
	}
	return m.Fabricate.Tick(t, pending)
}

// NewMasquerade builds the two-phase masquerade attacker: suspend the victim
// by flooding just below its ID until switchBit, then fabricate the victim's
// frames with forged payloads.
func NewMasquerade(name string, victim can.ID, forged []byte, switchBit bus.BitTime, periodBits int64) *Attacker {
	data := make([]byte, len(forged))
	copy(data, forged)
	suspendID := victim
	if suspendID > 0 {
		suspendID--
	}
	return New(name, &Masquerade{
		Suspend:   &Flood{Frame: can.Frame{ID: suspendID, Data: make([]byte, 8)}},
		Fabricate: &Flood{Frame: can.Frame{ID: victim, Data: data}, PeriodBits: periodBits},
		SwitchBit: switchBit,
	})
}
