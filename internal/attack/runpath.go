package attack

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var (
	_ bus.Transmitting     = (*Attacker)(nil)
	_ bus.RunObserver      = (*Attacker)(nil)
	_ bus.ContendCommitter = (*Attacker)(nil)
)

// policyHorizon returns the earliest bit at which the injection policy may
// act (Tick is a pure no-op strictly before it), or now when the policy
// lacks the quiescence capability. Tick takes no bus level, so its promise
// holds over busy spans exactly as over idle ones. The mailbox depth it is
// conditioned on can now change on a span's final bit (a frame's last EOF
// bit commits, and txSuccess drains the queue there), but that matches the
// exact path bit for bit: per-bit Tick runs before the controller consumes
// the bit, so even there the depth change at bit T is first visible to the
// Tick at T+1 — which lies past the span either way.
func (a *Attacker) policyHorizon(now bus.BitTime) bus.BitTime {
	qp, ok := a.policy.(QuiescentPolicy)
	if !ok {
		return now
	}
	return qp.QuiescentUntil(now, a.ctl.PendingTx())
}

// CommittedBits implements bus.Transmitting: the controller's commitment,
// clamped below the policy's next action so the injection runs on an exact
// step — the attacker's controller is compliant, so its mid-frame stream is
// as predictable as anyone's.
func (a *Attacker) CommittedBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	bits, h := a.ctl.CommittedBits(now)
	if h <= now || len(bits) == 0 {
		return nil, now
	}
	if hp := a.policyHorizon(now); hp < h {
		if hp <= now {
			return nil, now
		}
		h = hp
		bits = bits[:int64(h-now)]
	}
	return bits, h
}

// FrameBit implements bus.Transmitting.
func (a *Attacker) FrameBit() int { return a.ctl.FrameBit() }

// ContendBits implements bus.ContendCommitter: the controller's contested
// commitment (mid-frame stream or error-flag run), clamped below the policy's
// next action exactly as CommittedBits is.
func (a *Attacker) ContendBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	bits, h := a.ctl.ContendBits(now)
	if h <= now || len(bits) == 0 {
		return nil, now
	}
	if hp := a.policyHorizon(now); hp < h {
		if hp <= now {
			return nil, now
		}
		h = hp
		bits = bits[:int64(h-now)]
	}
	return bits, h
}

// ContendFrameBit implements bus.ContendCommitter.
func (a *Attacker) ContendFrameBit() int { return a.ctl.ContendFrameBit() }

// PassiveRun implements bus.RunObserver: the controller's answer, clamped
// below the policy's next action (an injection changes the mailbox and with
// it the controller's drive decisions, so that bit must be exact-stepped).
func (a *Attacker) PassiveRun(now bus.BitTime, frameBit int, levels []can.Level) int {
	n := len(levels)
	if hp := a.policyHorizon(now); hp < now+bus.BitTime(n) {
		if hp <= now {
			return 0
		}
		n = int(hp - now)
	}
	if k := a.ctl.PassiveRun(now, frameBit, levels[:n]); k < n {
		n = k
	}
	return n
}

// ObserveRun implements bus.RunObserver. Spans are clamped inside the
// policy's quiet window, where Tick is a promised no-op, so only the
// controller advances.
func (a *Attacker) ObserveRun(from bus.BitTime, levels []can.Level) {
	a.ctl.ObserveRun(from, levels)
}
