package attack

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var _ bus.Splicing = (*Attacker)(nil)

// SpliceOffer implements bus.Splicing: the compiled-splice tier is
// indifferent to intent, so the attacker's compliant controller may offer its
// own window — provided the injection policy promises to be a no-op across
// it, because Tick never runs on the splice path. (A window the defense would
// counterattack is declined at query time by the defense itself, exactly as
// the lower tiers decline it.)
func (a *Attacker) SpliceOffer(now bus.BitTime) (bus.SpliceWindow, bool) {
	win, ok := a.ctl.SpliceOffer(now)
	if !ok {
		return bus.SpliceWindow{}, false
	}
	if a.policyHorizon(now) < now+bus.BitTime(len(win.Bits)+can.IntermissionBits) {
		return bus.SpliceWindow{}, false
	}
	return win, true
}

// SpliceQuery implements bus.Splicing: the controller's promise, gated on the
// policy sleeping through the whole window (an injection inside it would
// change the mailbox mid-window, which only exact stepping reproduces).
func (a *Attacker) SpliceQuery(now bus.BitTime, resolved []can.Level, ackIdx int, slot *any) (bool, bool) {
	if a.policyHorizon(now) < now+bus.BitTime(len(resolved)) {
		return false, false
	}
	return a.ctl.SpliceQuery(now, resolved, ackIdx, slot)
}

// SpliceApply implements bus.Splicing. The offer/query gates promised the
// policy a no-op over the window, so only the controller advances.
func (a *Attacker) SpliceApply(now bus.BitTime, resolved []can.Level, ackIdx int, rx can.Frame, slot *any) {
	a.ctl.SpliceApply(now, resolved, ackIdx, rx, slot)
}

// SpliceCommit implements bus.Splicing.
func (a *Attacker) SpliceCommit(now bus.BitTime, resolved []can.Level, slot *any) {
	a.ctl.SpliceCommit(now, resolved, slot)
}
