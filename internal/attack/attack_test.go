package attack

import (
	"math/rand"
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/restbus"
)

// victimBus builds a bus with one periodic victim ECU (ID 0x260, 20ms) and
// returns the bus and the victim's replayer.
func victimBus(rate bus.Rate) (*bus.Bus, *restbus.Replayer) {
	b := bus.New(rate)
	m := &restbus.Matrix{Vehicle: "t", Bus: "t", Messages: []restbus.Message{
		{ID: 0x260, Transmitter: "victim", DLC: 8, Period: 20 * time.Millisecond},
	}}
	v := restbus.NewReplayer("victim", m, rate, nil)
	b.Attach(v)
	return b, v
}

func TestTraditionalDoSStarvesEverything(t *testing.T) {
	b, victim := victimBus(bus.Rate500k)
	att := NewTraditionalDoS("dos")
	b.Attach(att)
	b.RunFor(100 * time.Millisecond)

	if att.Controller().Stats().TxSuccess < 100 {
		t.Errorf("flood transmitted only %d frames", att.Controller().Stats().TxSuccess)
	}
	if victim.Stats().Transmitted > 1 {
		t.Errorf("victim transmitted %d frames under a 0x000 flood", victim.Stats().Transmitted)
	}
	if victim.Stats().DeadlineMisses == 0 {
		t.Error("victim should be missing deadlines")
	}
}

func TestTargetedDoSSparesHigherPriority(t *testing.T) {
	// A targeted DoS at 0x25F silences 0x260+ but must not block an 0x100
	// sender (Fig. 2, targeted).
	b := bus.New(bus.Rate500k)
	m := &restbus.Matrix{Vehicle: "t", Bus: "t", Messages: []restbus.Message{
		{ID: 0x100, Transmitter: "hi", DLC: 8, Period: 20 * time.Millisecond},
		{ID: 0x260, Transmitter: "lo", DLC: 8, Period: 20 * time.Millisecond},
	}}
	v := restbus.NewReplayer("ecus", m, bus.Rate500k, nil)
	b.Attach(v)
	b.Attach(NewTargetedDoS("dos", 0x25F))
	b.RunFor(100 * time.Millisecond)

	miss := v.Stats().MissByID
	if miss[0x100] != 0 {
		t.Errorf("high-priority 0x100 missed %d deadlines under targeted DoS", miss[0x100])
	}
	if miss[0x260] < 3 {
		t.Errorf("victim 0x260 missed only %d deadlines", miss[0x260])
	}
}

func TestFabricationOverridesVictim(t *testing.T) {
	// The fabrication attacker injects spoofed 0x260 frames far more often
	// than the victim's 20ms period; a receiver sees mostly forged payloads.
	b, _ := victimBus(bus.Rate500k)
	forged := 0
	genuine := 0
	rx := controller.New(controller.Config{Name: "rx", AutoRecover: true,
		OnReceive: func(_ bus.BitTime, f can.Frame) {
			if f.ID != 0x260 {
				return
			}
			if len(f.Data) == 2 && f.Data[0] == 0xBA && f.Data[1] == 0xD1 {
				forged++
			} else {
				genuine++
			}
		}})
	b.Attach(rx)
	period := bus.Rate500k.Bits(2 * time.Millisecond)
	b.Attach(NewFabrication("fab", 0x260, []byte{0xBA, 0xD1}, period))
	b.RunFor(100 * time.Millisecond)

	if forged < 40 {
		t.Errorf("forged frames seen = %d, want ≈50", forged)
	}
	if forged <= genuine*5 {
		t.Errorf("forged (%d) should dwarf genuine (%d)", forged, genuine)
	}
}

func TestRandomDoSDrawsVariedIDs(t *testing.T) {
	b := bus.New(bus.Rate500k)
	seen := make(map[can.ID]bool)
	rx := controller.New(controller.Config{Name: "rx", AutoRecover: true,
		OnReceive: func(_ bus.BitTime, f can.Frame) { seen[f.ID] = true }})
	b.Attach(rx)
	b.Attach(NewRandomDoS("rand", 0x100, 200, rand.New(rand.NewSource(9))))
	b.RunFor(50 * time.Millisecond)

	if len(seen) < 5 {
		t.Errorf("random DoS produced only %d distinct IDs", len(seen))
	}
	for id := range seen {
		if id >= 0x100 {
			t.Errorf("ID %v outside the configured bound", id)
		}
	}
}

func TestTogglingAlternatesIDs(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var order []can.ID
	rx := controller.New(controller.Config{Name: "rx", AutoRecover: true,
		OnReceive: func(_ bus.BitTime, f can.Frame) { order = append(order, f.ID) }})
	b.Attach(rx)
	b.Attach(NewToggling("toggle", 0x050, 0x051))
	b.RunFor(10 * time.Millisecond)

	if len(order) < 4 {
		t.Fatalf("only %d frames observed", len(order))
	}
	for i, id := range order {
		want := can.ID(0x050 + i%2)
		if id != want {
			t.Fatalf("frame %d has ID %v, want %v (strict alternation)", i, id, want)
		}
	}
}

func TestMasqueradePhases(t *testing.T) {
	// Phase 1 suppresses the victim; phase 2 fabricates its frames.
	b, victim := victimBus(bus.Rate500k)
	switchAt := bus.Rate500k.Bits(50 * time.Millisecond)
	var spoofed int
	rx := controller.New(controller.Config{Name: "rx", AutoRecover: true,
		OnReceive: func(tt bus.BitTime, f can.Frame) {
			if f.ID == 0x260 && int64(tt) > switchAt && len(f.Data) == 1 {
				spoofed++
			}
		}})
	b.Attach(rx)
	period := bus.Rate500k.Bits(5 * time.Millisecond)
	b.Attach(NewMasquerade("masq", 0x260, []byte{0x66}, bus.BitTime(switchAt), period))
	b.RunFor(100 * time.Millisecond)

	if victim.Stats().DeadlineMisses == 0 {
		t.Error("phase 1 should suppress the victim")
	}
	if spoofed < 5 {
		t.Errorf("phase 2 spoofed %d frames, want ≈10", spoofed)
	}
}

func TestMiscellaneousAttackerHarmless(t *testing.T) {
	b, victim := victimBus(bus.Rate500k)
	b.Attach(NewMiscellaneous("misc", 0x7F5, 500))
	b.RunFor(100 * time.Millisecond)
	if victim.Stats().DeadlineMisses != 0 {
		t.Errorf("miscellaneous attack caused %d deadline misses", victim.Stats().DeadlineMisses)
	}
	if victim.MissRate() != 0 {
		t.Error("victim should be unaffected")
	}
}

func TestAttackerUsesCompliantController(t *testing.T) {
	// The threat model: the attacker cannot violate protocol. Its controller
	// ramps TEC and buses off like any compliant node when its frames are
	// destroyed (here by a raw jammer).
	b := bus.New(bus.Rate500k)
	att := NewTraditionalDoS("dos")
	b.Attach(att)
	witness := controller.New(controller.Config{Name: "w", AutoRecover: true})
	b.Attach(witness)
	jam := &rawJammer{}
	b.Attach(jam)
	if !b.RunUntil(func() bool { return att.Controller().State() == controller.BusOff }, 5000) {
		t.Fatal("attacker controller never bused off under jamming")
	}
	if att.Controller().Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Controller().Stats().TxAttempts)
	}
}

// rawJammer pulls the bus dominant for bits 14-20 of every frame, like the
// MichiCAN prevention pull.
type rawJammer struct {
	idle  int
	cnt   int
	frame bool
	next  can.Level
}

func (j *rawJammer) Drive(bus.BitTime) can.Level {
	if j.next == can.Dominant {
		return can.Dominant
	}
	return can.Recessive
}

func (j *rawJammer) Observe(_ bus.BitTime, level can.Level) {
	j.next = can.Recessive
	if !j.frame {
		if level == can.Dominant && j.idle >= 11 {
			j.frame = true
			j.cnt = 1
		}
	} else {
		j.cnt++
	}
	if level == can.Recessive {
		j.idle++
		if j.idle >= 11 {
			j.frame = false
		}
	} else {
		j.idle = 0
	}
	if j.frame && j.cnt+1 >= 14 && j.cnt+1 <= 20 {
		j.next = can.Dominant
	}
}
