package attack

import (
	"michican/internal/bus"
	"michican/internal/can"
)

// BitInjector is the offensive mirror of MichiCAN (Sec. VI-A): an attacker
// who gained the same bit-level access the defense uses — an integrated CAN
// controller with pin multiplexing (CANflict [28]) or peripheral clock
// gating (CANnon [64]) — and turns it into a bus-off attack on a *legitimate*
// victim: it waits for the victim ID's frames and pulls the bus dominant
// right after arbitration, exactly as the defense does to attackers.
//
// It exists to demonstrate the paper's "attacker limitations" discussion
// (Sec. III): bit-level CAN access must be isolated from compromised
// application code (hypervisor/MPU/TrustZone), because in the wrong hands it
// defeats any protocol-compliant node. MichiCAN cannot prevent this attack —
// the destroyed frames carry a legitimate ID.
type BitInjector struct {
	victim can.ID

	idle      int
	inFrame   bool
	destuf    can.Destuffer
	idBits    int
	matched   bool
	pulling   int
	driveNext can.Level

	// Injections counts prevention pulls launched against the victim.
	Injections int
}

var _ bus.Node = (*BitInjector)(nil)

// NewBitInjector creates a bit-injection attacker against the victim ID.
func NewBitInjector(victim can.ID) *BitInjector {
	return &BitInjector{victim: victim, idle: can.IdleForSOF, driveNext: can.Recessive}
}

// Drive implements bus.Node.
func (a *BitInjector) Drive(bus.BitTime) can.Level { return a.driveNext }

// Observe implements bus.Node: SOF hunting, ID matching, and the dominant
// pull — Algorithm 1 with a one-ID "detection set".
func (a *BitInjector) Observe(_ bus.BitTime, level can.Level) {
	a.driveNext = can.Recessive

	if !a.inFrame {
		if level == can.Recessive {
			a.idle++
			return
		}
		if a.idle >= can.IdleForSOF {
			a.inFrame = true
			a.destuf.Reset()
			_, _ = a.destuf.Next(can.Dominant) // seed with SOF
			a.idBits = 0
			a.matched = true
			a.pulling = 0
		}
		a.idle = 0
		return
	}

	if level == can.Recessive {
		a.idle++
		if a.idle >= can.IdleForSOF {
			a.inFrame = false
			return
		}
	} else {
		a.idle = 0
	}

	if a.pulling > 0 {
		a.pulling--
		if a.pulling == 0 {
			a.inFrame = false
			return
		}
		a.driveNext = can.Dominant
		return
	}

	payload, err := a.destuf.Next(level)
	if err != nil {
		// Error frame in progress; wait for the next SOF.
		a.inFrame = false
		a.idle = 0
		return
	}
	if !payload {
		return
	}
	if a.idBits < can.IDBits {
		if level != a.victim.Bit(a.idBits) {
			a.matched = false
		}
		a.idBits++
		return
	}
	// First bit past the ID (the RTR slot): strike if the ID matched.
	if a.matched {
		a.Injections++
		a.pulling = 7
		a.driveNext = can.Dominant
		return
	}
	a.inFrame = false
}
