package store

import (
	"bytes"
	"testing"

	"michican/internal/telemetry"
)

// emitScripted drives a deterministic cross-node event script through a
// hub: two nodes whose emissions interleave out of global time order (as
// batch fast-path delivery does), exercising the sink's sequencer. Returns
// the final bit time.
func emitScripted(h *telemetry.Hub, n int) int64 {
	return emitScriptedFrom(h, 0, n)
}

// emitScriptedFrom is emitScripted starting at bit time start, so a run can
// be split around an explicit checkpoint.
func emitScriptedFrom(h *telemetry.Hub, start int64, n int) int64 {
	a := h.Probe("alice")
	b := h.Probe("bob")
	t := start
	for i := 0; i < n; i++ {
		t += 50
		// bob's span is delivered first even though alice's events in it are
		// earlier — the sequencer must restore (Time, Node) order.
		b.Emit(t+20, telemetry.EvTxStart, int64(0x123), 0)
		b.Emit(t+40, telemetry.EvTxSuccess, int64(0x123), 0)
		a.Emit(t+10, telemetry.EvArbLost, 3, 0)
		a.Emit(t+30, telemetry.EvREC, int64(i%16), int64((i-1)%16))
		t += 100
	}
	return t
}

// durableJSONL reads every stored event back as JSONL text.
func durableJSONL(t *testing.T, dir string) []byte {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	err = s.Events(func(ev telemetry.NamedEvent) error {
		line := telemetry.AppendEventJSON(nil, ev.Node, telemetry.Event{Time: ev.Time, Kind: ev.Kind, A: ev.A, B: ev.B})
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSinkMatchesWriteJSONL(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.NewHub()
	sink := NewSink(st, h, SinkOptions{FlushEvents: 7})
	end := emitScripted(h, 500)
	if err := sink.Close(end, true); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var want bytes.Buffer
	if err := h.WriteJSONL(&want); err != nil {
		t.Fatal(err)
	}
	got := durableJSONL(t, dir)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("durable stream diverges from WriteJSONL: %d vs %d bytes", len(got), want.Len())
	}

	// The completed run left a final checkpoint covering everything.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cp, err := st2.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Completed || cp.Events != st2.EventCount() {
		t.Fatalf("final checkpoint = %+v, events on disk %d", cp, st2.EventCount())
	}
}

func TestSinkCountersOnHubRegistry(t *testing.T) {
	st, err := Create(t.TempDir(), Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.NewHub()
	sink := NewSink(st, h, SinkOptions{FlushEvents: 16})
	end := emitScripted(h, 100)
	if err := sink.Close(end, true); err != nil {
		t.Fatal(err)
	}
	st.Close()
	reg := h.Registry()
	if c := reg.FindCounter("michican_store_events_appended_total"); c == nil || c.Value() != 400 {
		t.Fatalf("events_appended counter = %v", c)
	}
	if c := reg.FindCounter("michican_store_bytes_appended_total"); c == nil || c.Value() == 0 {
		t.Fatal("bytes_appended counter missing or zero")
	}
	if c := reg.FindCounter("michican_store_fsyncs_total"); c == nil || c.Value() == 0 {
		t.Fatal("fsyncs counter missing or zero")
	}
	if c := reg.FindCounter("michican_store_checkpoints_total"); c == nil || c.Value() != 1 {
		t.Fatalf("checkpoints counter = %v", c)
	}
	if g := reg.FindGauge("michican_store_drain_backlog"); g == nil || g.Value() != 0 {
		t.Fatalf("drain backlog gauge should be 0 after Close, got %v", g)
	}
}

func TestSinkResumeConvergesByteIdentical(t *testing.T) {
	// Reference: an uninterrupted run with periodic checkpoints.
	refDir := t.TempDir()
	refStore, err := Create(refDir, Meta{Kind: "test", SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	refHub := telemetry.NewHub()
	refSink := NewSink(refStore, refHub, SinkOptions{FlushEvents: 64, CheckpointIntervalBits: 10_000})
	refEnd := emitScripted(refHub, 2000)
	refIncs := [][]byte{[]byte(`{"id":"0x123","start":100,"end":900}`)}
	if err := refSink.AppendIncidents(refIncs); err != nil {
		t.Fatal(err)
	}
	if err := refSink.Close(refEnd, true); err != nil {
		t.Fatal(err)
	}
	refStore.Close()

	// Interrupted run: same stream, killed mid-way with no clean close. The
	// run reaches a durable checkpoint at 50%, emits a further 10% whose
	// records are buffered or appended but never checkpointed, then
	// "crashes": everything past the checkpoint — writer-queue backlog and
	// post-checkpoint appends alike — is simply abandoned, as after SIGKILL.
	dir := t.TempDir()
	st1, err := Create(dir, Meta{Kind: "test", SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	h1 := telemetry.NewHub()
	s1 := NewSink(st1, h1, SinkOptions{FlushEvents: 64, CheckpointIntervalBits: 10_000})
	mid := emitScriptedFrom(h1, 0, 1000)
	if err := s1.Checkpoint(mid); err != nil {
		t.Fatal(err)
	}
	emitScriptedFrom(h1, mid, 200) // the doomed tail
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	st1.Close() // release file handles only; no Close(), no final checkpoint

	// Recovery: open, rewind to the newest checkpoint, re-run the generator
	// with the sink skipping the durable prefix.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := st2.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Events == 0 || cp.Completed {
		t.Fatalf("unexpected checkpoint %+v", cp)
	}
	if err := st2.TruncateTo(cp); err != nil {
		t.Fatal(err)
	}
	h2 := telemetry.NewHub()
	s2 := NewSink(st2, h2, SinkOptions{
		FlushEvents:            64,
		CheckpointIntervalBits: 10_000,
		SkipEvents:             cp.Events,
		SkipIncidents:          cp.Incidents,
		ExpectPrefixHash:       cp.PrefixHash,
		ExpectIncidentHash:     cp.IncidentHash,
		ResumeFromBits:         cp.TimeBits,
	})
	end2 := emitScripted(h2, 2000) // the full deterministic run, regenerated
	if err := s2.AppendIncidents(refIncs); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(end2, true); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	assertSameSegments(t, dir, refDir)
	if got, want := durableJSONL(t, dir), durableJSONL(t, refDir); !bytes.Equal(got, want) {
		t.Fatal("resumed event stream differs from uninterrupted run")
	}
}

func TestSinkResumeDetectsDivergedPrefix(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.NewHub()
	s := NewSink(st, h, SinkOptions{})
	emitScripted(h, 50)
	if err := s.Close(100000, false); err != nil {
		t.Fatal(err)
	}
	n := st.EventCount()
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2 := telemetry.NewHub()
	s2 := NewSink(st2, h2, SinkOptions{
		SkipEvents:       n,
		ExpectPrefixHash: "0000000000000000", // wrong on purpose
	})
	end := emitScripted(h2, 50)
	if err := s2.Close(end, false); err == nil {
		t.Fatal("diverged prefix hash must poison the sink")
	}
}
