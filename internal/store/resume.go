package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ResumePoint rewinds an opened store to its newest usable checkpoint and
// returns SinkOptions prefilled with the skip cursor a resuming sink needs
// (DESIGN.md §8.3). A store with no checkpoint rewinds to empty — the whole
// run regenerates. completed reports a store whose final checkpoint says the
// run already reached its horizon; the returned options are then zero and the
// store is left untouched.
func (s *Store) ResumePoint() (opts SinkOptions, completed bool, err error) {
	cp, err := s.LatestCheckpoint()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		cp = Checkpoint{}
	case err != nil:
		return SinkOptions{}, false, err
	case cp.Completed:
		return SinkOptions{}, true, nil
	}
	if err := s.TruncateTo(cp); err != nil {
		return SinkOptions{}, false, err
	}
	return SinkOptions{
		SkipEvents:         cp.Events,
		SkipIncidents:      cp.Incidents,
		SkipAlerts:         cp.Alerts,
		ExpectPrefixHash:   cp.PrefixHash,
		ExpectIncidentHash: cp.IncidentHash,
		ExpectAlertHash:    cp.AlertHash,
		ResumeFromBits:     cp.TimeBits,
	}, false, nil
}

// ParseWindow parses a bit-time window written as "from:to". Either side may
// be empty to leave that side open ("5000:" is everything from bit 5000 on;
// ":" or "" is the whole recording); a bare "N" means from=N with an open
// end. The returned to is exclusive-ish in the EventsInWindow sense (events
// with Time in [from, to] are included) and defaults to a practically
// unbounded value when open.
func ParseWindow(s string) (from, to int64, err error) {
	const open = int64(1) << 62
	from, to = 0, open
	s = strings.TrimSpace(s)
	if s == "" {
		return from, to, nil
	}
	lo, hi, found := strings.Cut(s, ":")
	if lo = strings.TrimSpace(lo); lo != "" {
		if from, err = strconv.ParseInt(lo, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad window start %q", lo)
		}
	}
	if hi = strings.TrimSpace(hi); found && hi != "" {
		if to, err = strconv.ParseInt(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad window end %q", hi)
		}
	}
	if to < from {
		return 0, 0, fmt.Errorf("empty window %q: start %d past end %d", s, from, to)
	}
	return from, to, nil
}
