package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"michican/internal/telemetry"
)

// appendN appends n synthetic event payloads with ascending times.
func appendN(t *testing.T, s *Store, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		payload := []byte(fmt.Sprintf(`{"t":%d,"node":"n","event":"tx_start","id":"0x0%02X"}`, i*100, i%200))
		if err := s.AppendEvent(payload, int64(i*100)); err != nil {
			t.Fatalf("AppendEvent %d: %v", i, err)
		}
	}
}

func collectTimes(t *testing.T, s *Store, from, to int64) []int64 {
	t.Helper()
	var times []int64
	err := s.EventsInWindow(from, to, func(ev telemetry.NamedEvent) error {
		times = append(times, ev.Time)
		return nil
	})
	if err != nil {
		t.Fatalf("EventsInWindow: %v", err)
	}
	return times
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 250)
	if err := s.AppendIncident([]byte(`{"id":"0x123","start":5}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.EventCount(); got != 250 {
		t.Fatalf("EventCount after reopen = %d, want 250", got)
	}
	if got := s2.IncidentCount(); got != 1 {
		t.Fatalf("IncidentCount after reopen = %d, want 1", got)
	}
	times := collectTimes(t, s2, 0, 1<<62)
	if len(times) != 250 || times[0] != 0 || times[249] != 24900 {
		t.Fatalf("event replay wrong: len=%d first=%v last=%v", len(times), times[0], times[len(times)-1])
	}
	var incs int
	if err := s2.IncidentPayloads(func(p []byte) error { incs++; return nil }); err != nil {
		t.Fatal(err)
	}
	if incs != 1 {
		t.Fatalf("incident replay count = %d, want 1", incs)
	}
	// Appends continue after reopen.
	appendN(t, s2, 250, 10)
	if got := s2.EventCount(); got != 260 {
		t.Fatalf("EventCount after post-reopen appends = %d, want 260", got)
	}
}

func TestSegmentRollSealAndWindowSkip(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rolls.
	s, err := Create(dir, Meta{Kind: "test", SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 200)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SegmentsSealed < 5 {
		t.Fatalf("expected many sealed segments with 512-byte rolls, got %d", st.SegmentsSealed)
	}
	idx, _ := filepath.Glob(filepath.Join(dir, "events-*.idx"))
	if int64(len(idx)) != st.SegmentsSealed {
		t.Fatalf("idx sidecars = %d, sealed = %d", len(idx), st.SegmentsSealed)
	}
	// A narrow window returns exactly the in-range events, in order.
	times := collectTimes(t, s, 5000, 7000)
	if len(times) != 21 || times[0] != 5000 || times[20] != 7000 {
		t.Fatalf("window [5000,7000]: len=%d bounds=%v..%v", len(times), times[0], times[len(times)-1])
	}
	s.Close()
}

func TestLayoutIndependentOfFlushCadence(t *testing.T) {
	// The on-disk segment layout must be a pure function of the record
	// stream: per-record roll decisions, never flush-batch ones. Two stores
	// fed identically but flushed at wildly different cadences must be
	// byte-identical.
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Create(dirA, Meta{Kind: "test", SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Create(dirB, Meta{Kind: "test", SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		payload := []byte(fmt.Sprintf(`{"t":%d,"node":"n","event":"tx_start","id":"0x0%02X"}`, i*100, i%200))
		if err := a.AppendEvent(payload, int64(i*100)); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendEvent(payload, int64(i*100)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := a.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	a.Close()
	b.Close()
	assertSameSegments(t, dirA, dirB)
}

// assertSameSegments compares the .seg files of two store dirs byte for byte.
func assertSameSegments(t *testing.T, dirA, dirB string) {
	t.Helper()
	segsA, _ := filepath.Glob(filepath.Join(dirA, "*.seg"))
	segsB, _ := filepath.Glob(filepath.Join(dirB, "*.seg"))
	if len(segsA) != len(segsB) {
		t.Fatalf("segment count differs: %d vs %d", len(segsA), len(segsB))
	}
	for i := range segsA {
		da, err := os.ReadFile(segsA[i])
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(segsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Fatalf("%s differs from %s (%d vs %d bytes)", segsA[i], segsB[i], len(da), len(db))
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 50)
	s.Close()

	// Tear the tail: chop the last 7 bytes of the active segment, splitting
	// the final record's CRC trailer as a crash mid-write would.
	seg := filepath.Join(dir, "events-000001.seg")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.EventCount(); got != 49 {
		t.Fatalf("EventCount after torn-tail recovery = %d, want 49", got)
	}
	// The log accepts appends again and replays cleanly.
	appendN(t, s2, 49, 1)
	times := collectTimes(t, s2, 0, 1<<62)
	if len(times) != 50 {
		t.Fatalf("replay after recovery = %d events, want 50", len(times))
	}
}

func TestCorruptRecordTruncatesAndDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Meta{Kind: "test", SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 200)
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments for this test, got %d", len(segs))
	}
	// Flip a payload byte mid-way through the second segment.
	victim := segs[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	// Everything from the corrupt record onward is gone; the valid prefix
	// survives and the count matches a full replay.
	times := collectTimes(t, s2, 0, 1<<62)
	if int64(len(times)) != s2.EventCount() {
		t.Fatalf("replay %d != count %d", len(times), s2.EventCount())
	}
	if len(times) == 0 || len(times) >= 200 {
		t.Fatalf("corruption should cost some but not all records, kept %d", len(times))
	}
	left, _ := filepath.Glob(filepath.Join(dir, "events-*.seg"))
	if len(left) != 2 {
		t.Fatalf("later segments should be dropped, %d files remain", len(left))
	}
}

func TestCheckpointTruncateResumePoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Meta{Kind: "test", SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 0, 120)
	cp, err := s.WriteCheckpoint(Checkpoint{TimeBits: 11900, Events: 120, Incidents: 0, PrefixHash: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 1 {
		t.Fatalf("first checkpoint seq = %d", cp.Seq)
	}
	// A durable-but-uncheckpointed tail follows.
	appendN(t, s, 120, 80)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != 120 || got.PrefixHash != "abc" {
		t.Fatalf("LatestCheckpoint = %+v", got)
	}
	if err := s2.TruncateTo(got); err != nil {
		t.Fatal(err)
	}
	if n := s2.EventCount(); n != 120 {
		t.Fatalf("EventCount after TruncateTo = %d, want 120", n)
	}
	// Re-appending the same tail reproduces the same layout as a run that
	// never had the extra records truncated.
	appendN(t, s2, 120, 80)
	s2.Close()

	ref, err := Create(t.TempDir(), Meta{Kind: "test", SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, ref, 0, 200)
	ref.Close()
	assertSameSegments(t, dir, ref.Dir())
}

func TestCheckpointBeyondAppendedRejected(t *testing.T) {
	s, err := Create(t.TempDir(), Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 0, 5)
	if _, err := s.WriteCheckpoint(Checkpoint{Events: 6}); err == nil {
		t.Fatal("checkpoint with cursor beyond appended records must be rejected")
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Meta{Kind: "test"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Create(dir, Meta{Kind: "test"}); err == nil {
		t.Fatal("Create over an existing store must fail")
	}
}
