// Package store is the durable half of the observability stack: an
// append-only, CRC-framed segment store for telemetry events and forensics
// incidents, plus lightweight whole-sim checkpoints that make a killed or
// paused run resumable and any historical window re-openable for time-travel
// replay (DESIGN.md §8).
//
// Events are persisted as the exact canonical JSONL bytes
// telemetry.AppendEventJSON produces, framed with a length prefix and a
// CRC-32 trailer, in rolling segments that seal with an index sidecar once
// full. Because the simulation is deterministic — same spec and seed mean a
// bit-identical event stream — a checkpoint does not snapshot mutable sim
// state. It records a cursor (how many events and incidents were durable)
// and a running FNV-1a hash of the durable event prefix. Resume rebuilds the
// simulation from the spec recorded in meta.json, re-runs it with the sink
// in skip mode (the first N regenerated events are hashed and compared
// against the checkpoint instead of re-appended), and the tail then lands on
// disk byte-identical to an uninterrupted run. The simulator runs thousands
// of times faster than the 50 kbit/s bus it models, so regenerating the
// prefix is cheap; what the checkpoint buys is not avoided compute but a
// truncation point that crash recovery can trust.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"michican/internal/telemetry"
)

// FormatVersion stamps meta.json so a future layout change can refuse or
// migrate old directories instead of misreading them.
const FormatVersion = 1

// DefaultSegmentBytes is the segment roll threshold when Meta leaves it
// zero. Rolls cost file-metadata syscalls (seal fsync + sidecar + open), so
// the default is sized to keep them rare even at fast-forward event rates
// while still bounding the tail a window read has to scan.
const DefaultSegmentBytes = 1 << 20

// Fsync policies. The policy is recorded in meta.json (it is part of the
// store's durability contract, not a per-open mood).
const (
	// FsyncGroup fsyncs once per drain batch — the group-commit discipline
	// matching the telemetry NetCommitter's thresholded pushes.
	FsyncGroup = "group"
	// FsyncCheckpoint fsyncs only when a checkpoint is written; a crash can
	// lose the tail back to the last checkpoint, which resume regenerates.
	FsyncCheckpoint = "checkpoint"
	// FsyncNone never fsyncs explicitly (the OS flushes at its leisure).
	FsyncNone = "none"
)

// Meta is the store's immutable description, written to meta.json at Create.
// Config carries the run's own generator spec (a fleet vehicle spec, the sim
// CLI's parameters) opaque to this package; resume reads it back to rebuild
// the identical simulation.
type Meta struct {
	FormatVersion int             `json:"format_version"`
	Kind          string          `json:"kind"` // "sim", "vehicle", ...
	SegmentBytes  int64           `json:"segment_bytes"`
	Fsync         string          `json:"fsync"`
	Config        json.RawMessage `json:"config,omitempty"`
}

// Checkpoint is one durable resume point. It is a cursor plus integrity
// hashes, not a state snapshot: TimeBits records sim progress for reporting,
// while Events/Incidents say how much of each log was durable and the hashes
// pin the exact bytes of those prefixes (FNV-1a over the framed payloads in
// append order). Completed marks the final checkpoint of a run that finished
// its horizon.
type Checkpoint struct {
	Seq          int    `json:"seq"`
	TimeBits     int64  `json:"time_bits"`
	Events       int64  `json:"events"`
	Incidents    int64  `json:"incidents"`
	PrefixHash   string `json:"prefix_hash"`
	IncidentHash string `json:"incident_hash"`
	// Alerts/AlertHash cursor the watch engine's alert log the same way
	// Incidents/IncidentHash cursor the incident log. Both are JSON-additive:
	// checkpoints written before the alert log existed unmarshal to zero,
	// which is exactly the cursor of their (empty) alert log.
	Alerts    int64  `json:"alerts,omitempty"`
	AlertHash string `json:"alert_hash,omitempty"`
	Completed bool   `json:"completed"`
}

// Stats is a snapshot of the store's lifetime persistence counters (this
// process only; recovery does not reconstruct historical fsync counts).
type Stats struct {
	EventsAppended    int64   `json:"events_appended"`
	IncidentsAppended int64   `json:"incidents_appended"`
	AlertsAppended    int64   `json:"alerts_appended"`
	BytesAppended     int64   `json:"bytes_appended"`
	SegmentsSealed    int64   `json:"segments_sealed"`
	Fsyncs            int64   `json:"fsyncs"`
	Checkpoints       int64   `json:"checkpoints"`
	LastCheckpointMs  float64 `json:"last_checkpoint_ms"`
	DiskBytes         int64   `json:"disk_bytes"`
	Segments          int     `json:"segments"`
}

// Store is one durable run directory: meta.json, rolling events-NNNNNN.seg
// segments (with .idx sidecars once sealed), an incidents log, and
// checkpoint-NNNNNNNN.json files. All methods are safe for concurrent use.
type Store struct {
	dir  string
	meta Meta

	mu        sync.Mutex
	events    *segLog
	incidents *segLog
	alerts    *segLog
	cpSeq     int

	stats Stats
}

// Create initialises a new store directory. The directory must not already
// contain a store (a meta.json). Zero Meta fields get defaults; Config is
// stored verbatim.
func Create(dir string, meta Meta) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, "meta.json")
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store (meta.json exists)", dir)
	}
	meta.FormatVersion = FormatVersion
	if meta.SegmentBytes == 0 {
		meta.SegmentBytes = DefaultSegmentBytes
	}
	if meta.Fsync == "" {
		meta.Fsync = FsyncGroup
	}
	switch meta.Fsync {
	case FsyncGroup, FsyncCheckpoint, FsyncNone:
	default:
		return nil, fmt.Errorf("store: unknown fsync policy %q", meta.Fsync)
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(metaPath, append(data, '\n')); err != nil {
		return nil, err
	}
	events, err := newSegLog(dir, "events", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	incidents, err := newSegLog(dir, "incidents", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	alerts, err := newSegLog(dir, "alerts", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, meta: meta, events: events, incidents: incidents, alerts: alerts}, nil
}

// Open reopens an existing store directory, scanning every segment,
// truncating torn tails, and leaving both logs ready to append.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %s is not a store: %w", dir, err)
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("store: corrupt meta.json in %s: %w", dir, err)
	}
	if meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: %s has format version %d, want %d", dir, meta.FormatVersion, FormatVersion)
	}
	events, err := openSegLog(dir, "events", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	incidents, err := openSegLog(dir, "incidents", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	// Stores created before the alert log existed simply have no alerts-*.seg
	// files; openSegLog starts them a fresh, empty log.
	alerts, err := openSegLog(dir, "alerts", meta.SegmentBytes)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, meta: meta, events: events, incidents: incidents, alerts: alerts}
	cps, err := s.Checkpoints()
	if err != nil {
		return nil, err
	}
	if len(cps) > 0 {
		s.cpSeq = cps[len(cps)-1].Seq
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Meta returns the store's immutable description.
func (s *Store) Meta() Meta { return s.meta }

// AppendEvent frames and appends one canonical event payload (the bytes
// telemetry.AppendEventJSON produced, no trailing newline) at bit time t.
func (s *Store) AppendEvent(payload []byte, t int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(s.events, recEvent, payload, t, &s.stats.EventsAppended)
}

// AppendIncident frames and appends one marshalled forensics incident.
func (s *Store) AppendIncident(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(s.incidents, recIncident, payload, 0, &s.stats.IncidentsAppended)
}

// AppendAlert frames and appends one marshalled watch alert transition.
func (s *Store) AppendAlert(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(s.alerts, recAlert, payload, 0, &s.stats.AlertsAppended)
}

func (s *Store) appendLocked(l *segLog, typ byte, payload []byte, t int64, counter *int64) error {
	before := len(l.segs)
	n, err := l.append(typ, payload, t)
	if err != nil {
		return err
	}
	*counter++
	s.stats.BytesAppended += n
	s.stats.SegmentsSealed += int64(len(l.segs) - before)
	return nil
}

// Flush pushes buffered appends to the OS without fsyncing.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.events.flush(); err != nil {
		return err
	}
	if err := s.incidents.flush(); err != nil {
		return err
	}
	return s.alerts.flush()
}

// Sync flushes and fsyncs both logs — one group commit.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.events.sync(); err != nil {
		return err
	}
	if err := s.incidents.sync(); err != nil {
		return err
	}
	if err := s.alerts.sync(); err != nil {
		return err
	}
	s.stats.Fsyncs++
	return nil
}

// EventCount returns the number of event records in the store (durable plus
// buffered).
func (s *Store) EventCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events.count
}

// IncidentCount returns the number of incident records in the store.
func (s *Store) IncidentCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incidents.count
}

// AlertCount returns the number of alert records in the store.
func (s *Store) AlertCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alerts.count
}

// Stats snapshots the persistence counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DiskBytes = s.events.diskBytes() + s.incidents.diskBytes() + s.alerts.diskBytes()
	st.Segments = len(s.events.segs) + len(s.incidents.segs) + len(s.alerts.segs)
	return st
}

// WriteCheckpoint durably records a resume point: both logs are synced first
// (a checkpoint must never reference records the disk does not hold), then
// the checkpoint file lands atomically under the next sequence number.
func (s *Store) WriteCheckpoint(cp Checkpoint) (Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cp.Events > s.events.count || cp.Incidents > s.incidents.count || cp.Alerts > s.alerts.count {
		return cp, fmt.Errorf("store: checkpoint cursor (%d ev, %d inc, %d al) beyond appended (%d ev, %d inc, %d al)",
			cp.Events, cp.Incidents, cp.Alerts, s.events.count, s.incidents.count, s.alerts.count)
	}
	if err := s.syncLocked(); err != nil {
		return cp, err
	}
	s.cpSeq++
	cp.Seq = s.cpSeq
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return cp, err
	}
	path := filepath.Join(s.dir, fmt.Sprintf("checkpoint-%08d.json", cp.Seq))
	if err := writeFileAtomic(path, append(data, '\n')); err != nil {
		return cp, err
	}
	s.stats.Checkpoints++
	return cp, nil
}

// noteCheckpointMs records the last checkpoint's wall cost for Stats.
func (s *Store) noteCheckpointMs(ms float64) {
	s.mu.Lock()
	s.stats.LastCheckpointMs = ms
	s.mu.Unlock()
}

// Checkpoints returns every readable checkpoint in ascending sequence order.
// Unreadable or torn checkpoint files are skipped, not fatal: writeFileAtomic
// means they can only be stray tmp leftovers or external damage, and recovery
// just falls back to an older point.
func (s *Store) Checkpoints() ([]Checkpoint, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "checkpoint-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	out := make([]Checkpoint, 0, len(names))
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			continue
		}
		data, err := os.ReadFile(n)
		if err != nil {
			continue
		}
		var cp Checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			continue
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ErrNoCheckpoint reports a store with no usable resume point.
var ErrNoCheckpoint = errors.New("store: no usable checkpoint")

// LatestCheckpoint returns the newest checkpoint whose cursors are covered
// by the records actually on disk (a crash between appends and checkpointing
// cannot produce one, but external tampering or a lost+found restore could;
// recovery then falls back to the newest still-covered point).
func (s *Store) LatestCheckpoint() (Checkpoint, error) {
	cps, err := s.Checkpoints()
	if err != nil {
		return Checkpoint{}, err
	}
	s.mu.Lock()
	evCount, incCount, alCount := s.events.count, s.incidents.count, s.alerts.count
	s.mu.Unlock()
	for i := len(cps) - 1; i >= 0; i-- {
		if cps[i].Events <= evCount && cps[i].Incidents <= incCount && cps[i].Alerts <= alCount {
			return cps[i], nil
		}
	}
	return Checkpoint{}, ErrNoCheckpoint
}

// TruncateTo rewinds both logs to a checkpoint's cursors and deletes every
// checkpoint after it. This is the recovery protocol's first step: the
// durable-but-uncheckpointed tail is discarded so the resumed simulation can
// regenerate it bit-identically (DESIGN.md §8.3).
func (s *Store) TruncateTo(cp Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.events.truncate(cp.Events); err != nil {
		return err
	}
	if err := s.incidents.truncate(cp.Incidents); err != nil {
		return err
	}
	if err := s.alerts.truncate(cp.Alerts); err != nil {
		return err
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "checkpoint-*.json"))
	if err != nil {
		return err
	}
	for _, n := range names {
		base := filepath.Base(n)
		num := strings.TrimSuffix(strings.TrimPrefix(base, "checkpoint-"), ".json")
		seq, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if seq > cp.Seq {
			os.Remove(n)
		}
	}
	s.cpSeq = cp.Seq
	return nil
}

// Events streams every stored event in append order (which is canonical
// order: the sink sequences before appending).
func (s *Store) Events(fn func(telemetry.NamedEvent) error) error {
	return s.EventsInWindow(math.MinInt64, math.MaxInt64, fn)
}

// EventsInWindow streams stored events whose bit time lies in [from, to],
// using sealed-segment indexes to skip segments wholly outside the window.
func (s *Store) EventsInWindow(from, to int64, fn func(telemetry.NamedEvent) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events.iterate(from, to, func(typ byte, payload []byte) error {
		if typ != recEvent {
			return fmt.Errorf("store: record type %d in events log", typ)
		}
		ev, err := telemetry.ParseEventJSON(payload)
		if err != nil {
			return err
		}
		if ev.Time < from || ev.Time > to {
			return nil
		}
		return fn(ev)
	})
}

// IncidentPayloads streams every stored incident's raw JSON payload in
// append order. Decoding lives in the forensics package (which owns the
// Incident type); this keeps store → forensics dependency-free.
func (s *Store) IncidentPayloads(fn func(payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incidents.iterate(math.MinInt64, math.MaxInt64, func(typ byte, payload []byte) error {
		if typ != recIncident {
			return fmt.Errorf("store: record type %d in incidents log", typ)
		}
		return fn(payload)
	})
}

// AlertPayloads streams every stored alert transition's raw JSON payload in
// append order. Decoding lives in the watch package (which owns the Alert
// type); this keeps store → watch dependency-free.
func (s *Store) AlertPayloads(fn func(payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alerts.iterate(math.MinInt64, math.MaxInt64, func(typ byte, payload []byte) error {
		if typ != recAlert {
			return fmt.Errorf("store: record type %d in alerts log", typ)
		}
		return fn(payload)
	})
}

// Close flushes and closes the logs without sealing the active segments.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.events.close(); err != nil {
		return err
	}
	if err := s.incidents.close(); err != nil {
		return err
	}
	return s.alerts.close()
}
