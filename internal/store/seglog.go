package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record framing: every appended record is
//
//	[u32 length][u8 type][payload][u32 crc]
//
// with length = 1 + len(payload) (the type byte plus the payload), both
// integers little-endian, and crc the IEEE CRC-32 of the type byte followed
// by the payload. A torn tail — a partial header, a partial payload, or a
// CRC mismatch from a crash mid-write — is detected on open and truncated
// away; everything before it is intact by construction because records are
// appended strictly in order.
const (
	recHeaderLen  = 5 // u32 length + u8 type
	recTrailerLen = 4 // u32 crc
	// recMaxLen bounds a single record so a corrupted length field cannot
	// drive a giant allocation during recovery.
	recMaxLen = 16 << 20
)

// Record types.
const (
	recEvent    = 1
	recIncident = 2
	recAlert    = 3
)

// segIndex is the sidecar written when a segment seals: enough to answer
// window queries without reading the segment and to sanity-check recovery.
type segIndex struct {
	Records   int64 `json:"records"`
	Bytes     int64 `json:"bytes"`
	FirstTime int64 `json:"first_time"`
	LastTime  int64 `json:"last_time"`
}

// segment is one on-disk segment file of a segLog.
type segment struct {
	seq     int
	records int64
	bytes   int64
	firstT  int64
	lastT   int64
	sealed  bool
}

// segLog is an append-only, CRC-framed, segmented record log. The active
// (last) segment takes appends through a buffered writer; when an append
// would push it past segBytes it seals — index written, file synced — and a
// new segment opens. Roll decisions are made per record against cumulative
// byte counts, so the segment layout is a pure function of the record stream
// and never depends on flush or sync cadence; that is what lets a resumed
// run's store converge byte-for-byte with an uninterrupted run's.
type segLog struct {
	dir      string
	prefix   string
	segBytes int64

	segs   []segment
	f      *os.File
	bw     *bufio.Writer
	active *segment // == &segs[len(segs)-1]

	count int64 // records across all segments
}

func segName(prefix string, seq int) string { return fmt.Sprintf("%s-%06d.seg", prefix, seq) }
func idxName(prefix string, seq int) string { return fmt.Sprintf("%s-%06d.idx", prefix, seq) }
func (l *segLog) segPath(seq int) string    { return filepath.Join(l.dir, segName(l.prefix, seq)) }
func (l *segLog) idxPath(seq int) string    { return filepath.Join(l.dir, idxName(l.prefix, seq)) }

// newSegLog creates an empty log with its first segment open.
func newSegLog(dir, prefix string, segBytes int64) (*segLog, error) {
	l := &segLog{dir: dir, prefix: prefix, segBytes: segBytes}
	if err := l.openSegment(1); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegLog reopens an existing log, scanning every segment, truncating any
// torn tail, and reopening the last segment for append. Missing files mean
// an empty log (a fresh first segment is created).
func openSegLog(dir, prefix string, segBytes int64) (*segLog, error) {
	l := &segLog{dir: dir, prefix: prefix, segBytes: segBytes}
	names, err := filepath.Glob(filepath.Join(dir, prefix+"-*.seg"))
	if err != nil {
		return nil, err
	}
	seqs := make([]int, 0, len(names))
	for _, n := range names {
		base := filepath.Base(n)
		num := strings.TrimSuffix(strings.TrimPrefix(base, prefix+"-"), ".seg")
		seq, err := strconv.Atoi(num)
		if err != nil {
			return nil, fmt.Errorf("store: stray segment file %s", base)
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	if len(seqs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	torn := false
	for i, seq := range seqs {
		if torn {
			// Everything after a torn segment is unreachable garbage from a
			// crash mid-roll; drop it.
			os.Remove(l.segPath(seq))
			os.Remove(l.idxPath(seq))
			continue
		}
		seg, tornHere, err := l.scanSegment(seq)
		if err != nil {
			return nil, err
		}
		seg.sealed = i < len(seqs)-1 && !tornHere
		l.segs = append(l.segs, seg)
		l.count += seg.records
		torn = tornHere
	}
	last := &l.segs[len(l.segs)-1]
	last.sealed = false
	os.Remove(l.idxPath(last.seq)) // the reopened tail is active again
	f, err := os.OpenFile(l.segPath(last.seq), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f, l.bw, l.active = f, bufio.NewWriterSize(f, 64<<10), last
	return l, nil
}

// scanSegment validates one segment record by record. A torn or corrupt tail
// truncates the file at the last valid record boundary; tornHere reports that
// this happened (later segments are then dropped by the caller).
func (l *segLog) scanSegment(seq int) (segment, bool, error) {
	seg := segment{seq: seq, firstT: -1, lastT: -1}
	path := l.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return seg, false, err
	}
	off := int64(0)
	torn := false
	for int64(len(data))-off >= recHeaderLen+recTrailerLen {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		if n < 1 || n > recMaxLen || off+4+n+recTrailerLen > int64(len(data)) {
			torn = true
			break
		}
		body := data[off+4 : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(body) != crc {
			torn = true
			break
		}
		if t, ok := recordTime(body); ok {
			if seg.firstT < 0 {
				seg.firstT = t
			}
			seg.lastT = t
		}
		off += 4 + n + recTrailerLen
		seg.records++
	}
	if off != int64(len(data)) {
		torn = true
		if err := os.Truncate(path, off); err != nil {
			return seg, true, err
		}
	}
	seg.bytes = off
	return seg, torn, nil
}

// recordTime extracts the event's bit time from a framed body (type byte +
// payload). Event payloads are JSONL lines beginning {"t":N, so the time is
// parsed without a full JSON decode; incident payloads report no time.
func recordTime(body []byte) (int64, bool) {
	if len(body) < 1 || body[0] != recEvent {
		return 0, false
	}
	p := body[1:]
	const pre = `{"t":`
	if len(p) < len(pre)+1 || string(p[:len(pre)]) != pre {
		return 0, false
	}
	i := len(pre)
	var t int64
	neg := false
	if p[i] == '-' {
		neg = true
		i++
	}
	start := i
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		t = t*10 + int64(p[i]-'0')
		i++
	}
	if i == start {
		return 0, false
	}
	if neg {
		t = -t
	}
	return t, true
}

// openSegment creates and activates a fresh segment file.
func (l *segLog) openSegment(seq int) error {
	f, err := os.OpenFile(l.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.segs = append(l.segs, segment{seq: seq, firstT: -1, lastT: -1})
	l.f, l.bw = f, bufio.NewWriterSize(f, 64<<10)
	l.active = &l.segs[len(l.segs)-1]
	return nil
}

// seal closes the active segment: flush, fsync, index sidecar.
func (l *segLog) seal() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	a := l.active
	a.sealed = true
	idx, err := json.Marshal(segIndex{Records: a.records, Bytes: a.bytes, FirstTime: a.firstT, LastTime: a.lastT})
	if err != nil {
		return err
	}
	// The index sidecar is a derived summary, never load-bearing: recovery
	// rescans the segment bytes and deletes stale sidecars. A plain write
	// keeps segment rolls from paying a second fsync + rename for a file a
	// crash is allowed to tear.
	return os.WriteFile(l.idxPath(a.seq), append(idx, '\n'), 0o644)
}

// append frames and writes one record, rolling the active segment first when
// the record would push it past segBytes.
func (l *segLog) append(typ byte, payload []byte, t int64) (int64, error) {
	recLen := int64(recHeaderLen + len(payload) + recTrailerLen)
	if l.active.bytes > 0 && l.active.bytes+recLen > l.segBytes {
		if err := l.seal(); err != nil {
			return 0, err
		}
		if err := l.openSegment(l.active.seq + 1); err != nil {
			return 0, err
		}
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	crc := crc32.ChecksumIEEE(hdr[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tr [recTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], crc)
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.bw.Write(payload); err != nil {
		return 0, err
	}
	if _, err := l.bw.Write(tr[:]); err != nil {
		return 0, err
	}
	a := l.active
	a.bytes += recLen
	a.records++
	if typ == recEvent {
		if a.firstT < 0 {
			a.firstT = t
		}
		a.lastT = t
	}
	l.count++
	return recLen, nil
}

// flush pushes buffered writes to the OS.
func (l *segLog) flush() error { return l.bw.Flush() }

// sync flushes and fsyncs the active segment.
func (l *segLog) sync() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// close flushes and closes the active segment without sealing it (it reopens
// as the active tail on the next open).
func (l *segLog) close() error {
	if l.f == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// truncate rewinds the log to exactly n records: the segment holding record
// n is cut at that record's boundary and reopened as the active tail, and
// every later segment is deleted. This is the recovery protocol's rewind to
// a checkpoint cursor — the un-checkpointed tail is regenerated bit-identical
// by the resumed simulation.
func (l *segLog) truncate(n int64) error {
	if n > l.count {
		return fmt.Errorf("store: truncate %s to %d records but only %d on disk", l.prefix, n, l.count)
	}
	if n == l.count {
		return nil
	}
	if err := l.close(); err != nil {
		return err
	}
	// Find the segment holding record n (the first kept-count records of it).
	var cum int64
	cut := len(l.segs) - 1
	var keep int64
	for i := range l.segs {
		if cum+l.segs[i].records >= n {
			cut, keep = i, n-cum
			break
		}
		cum += l.segs[i].records
	}
	for _, s := range l.segs[cut+1:] {
		if err := os.Remove(l.segPath(s.seq)); err != nil {
			return err
		}
		os.Remove(l.idxPath(s.seq))
	}
	l.segs = l.segs[:cut+1]
	seg := &l.segs[cut]
	os.Remove(l.idxPath(seg.seq))
	seg.sealed = false
	// Re-scan the kept prefix for the byte offset and time bounds.
	off, firstT, lastT, err := l.offsetOfRecord(seg.seq, keep)
	if err != nil {
		return err
	}
	if err := os.Truncate(l.segPath(seg.seq), off); err != nil {
		return err
	}
	seg.bytes, seg.records, seg.firstT, seg.lastT = off, keep, firstT, lastT
	f, err := os.OpenFile(l.segPath(seg.seq), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.bw, l.active = f, bufio.NewWriterSize(f, 64<<10), seg
	l.count = cum + keep
	return nil
}

// offsetOfRecord returns the byte offset just past the keep-th record of a
// segment, plus the event-time bounds of the kept prefix.
func (l *segLog) offsetOfRecord(seq int, keep int64) (off, firstT, lastT int64, err error) {
	firstT, lastT = -1, -1
	if keep == 0 {
		return 0, firstT, lastT, nil
	}
	data, err := os.ReadFile(l.segPath(seq))
	if err != nil {
		return 0, 0, 0, err
	}
	for i := int64(0); i < keep; i++ {
		if int64(len(data))-off < recHeaderLen+recTrailerLen {
			return 0, 0, 0, fmt.Errorf("store: %s segment %d shorter than %d records", l.prefix, seq, keep)
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		if t, ok := recordTime(data[off+4 : off+4+n]); ok {
			if firstT < 0 {
				firstT = t
			}
			lastT = t
		}
		off += 4 + n + recTrailerLen
	}
	return off, firstT, lastT, nil
}

// iterate streams every record of the log in append order through fn, which
// receives the record type and payload (valid only during the call). Segments
// whose event-time range falls entirely outside [fromT, toT] are skipped via
// their bounds (use math.MinInt64/MaxInt64 to scan everything); records are
// still delivered unfiltered within visited segments — callers filter.
func (l *segLog) iterate(fromT, toT int64, fn func(typ byte, payload []byte) error) error {
	if err := l.flush(); err != nil {
		return err
	}
	for _, seg := range l.segs {
		if seg.records == 0 {
			continue
		}
		if seg.firstT >= 0 && (seg.lastT < fromT || seg.firstT > toT) {
			continue
		}
		if err := l.iterateSegment(seg.seq, fn); err != nil {
			return err
		}
	}
	return nil
}

// iterateSegment streams one segment's records.
func (l *segLog) iterateSegment(seq int, fn func(typ byte, payload []byte) error) error {
	f, err := os.Open(l.segPath(seq))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [recHeaderLen]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:4]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		n := int(binary.LittleEndian.Uint32(hdr[:4]))
		if n < 1 || n > recMaxLen {
			return fmt.Errorf("store: corrupt record length %d in %s", n, segName(l.prefix, seq))
		}
		if cap(buf) < n+recTrailerLen {
			buf = make([]byte, n+recTrailerLen)
		}
		buf = buf[:n+recTrailerLen]
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		crc := binary.LittleEndian.Uint32(buf[n:])
		if crc32.ChecksumIEEE(buf[:n]) != crc {
			return fmt.Errorf("store: CRC mismatch in %s", segName(l.prefix, seq))
		}
		if err := fn(buf[0], buf[1:n]); err != nil {
			return err
		}
	}
}

// diskBytes sums the on-disk size of every segment.
func (l *segLog) diskBytes() int64 {
	var total int64
	for _, s := range l.segs {
		total += s.bytes
	}
	return total
}

// writeFileAtomic writes data to path via a temp file + rename, so a crash
// never leaves a half-written file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
