package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"michican/internal/telemetry"
)

// Sink drain thresholds when SinkOptions leaves them zero. They mirror the
// fleet's net-commit discipline (CommitThreshold / CommitIntervalBits): drain
// when enough events have accumulated or when the simulation has advanced far
// enough that even a quiet store should make its tail durable.
const (
	DefaultFlushEvents       = 4096
	DefaultFlushIntervalBits = 1 << 20
	// sinkBatchEvents is the hand-off granularity between the emitting
	// goroutine and the writer goroutine: the hot path buffers this many
	// events before shipping them off the simulation thread.
	sinkBatchEvents = 1024
	// sinkQueueBatches bounds the in-flight hand-off queue. A full queue
	// blocks the emitter (backpressure) so memory stays bounded when the
	// disk cannot keep up.
	sinkQueueBatches = 8
	// sinkSyncInterval is the group-commit fsync cadence under FsyncGroup:
	// drains flush to the OS at the event threshold, but the fsync itself
	// fires at most once per interval of wall time. A crash therefore loses
	// at most this much freshly-flushed tail — which checkpoint-resume
	// regenerates bit-identically anyway, so the window trades nothing but
	// a few hundred milliseconds of re-simulation. Keeping it long also
	// keeps an idle bus from paying a steady fsync tax, and fast-forwarded
	// cells, whose simulated-bit clock runs thousands of times faster than
	// the wall clock, stop paying one fsync per 4096 events.
	sinkSyncInterval = 250 * time.Millisecond
)

// SinkOptions tunes a Sink. The zero value persists every event with
// group-commit fsyncs per the store's meta policy and no automatic
// checkpoints.
type SinkOptions struct {
	// FlushEvents drains after this many appended-but-unflushed events
	// (DefaultFlushEvents when zero).
	FlushEvents int64
	// FlushIntervalBits drains when the event stream has advanced this many
	// bit times since the last drain (DefaultFlushIntervalBits when zero).
	FlushIntervalBits int64
	// CheckpointIntervalBits writes a checkpoint every so many bit times of
	// stream progress. Zero disables automatic checkpoints (explicit
	// Checkpoint calls still work).
	CheckpointIntervalBits int64
	// SkipEvents puts the sink in resume mode: the first SkipEvents canonical
	// events are hashed and discarded instead of appended, because they are
	// already durable from the interrupted run. SkipIncidents does the same
	// for incident handoffs.
	SkipEvents    int64
	SkipIncidents int64
	// SkipAlerts mirrors SkipIncidents for the watch engine's alert log.
	SkipAlerts int64
	// ExpectPrefixHash / ExpectIncidentHash / ExpectAlertHash, when non-empty,
	// are compared against the running hash once the skip cursor is reached; a
	// mismatch poisons the sink (Err reports it) because the regenerated
	// prefix diverged from the durable one and appending the tail would
	// corrupt the log.
	ExpectPrefixHash   string
	ExpectIncidentHash string
	ExpectAlertHash    string
	// ResumeFromBits seeds the flush/checkpoint interval clocks at resume so
	// the first post-resume checkpoint does not fire immediately.
	ResumeFromBits int64
}

// Sink subscribes to a telemetry hub and persists the canonical event stream
// into a Store. Events pass through a Sequencer (the same reorder machinery
// JSONLStreamer uses) so they land on disk in canonical (Time, Node, arrival)
// order, are encoded with telemetry.AppendEventJSON — the store holds the
// exact bytes WriteJSONL would have produced — and drain to disk on
// NetCommitter-style thresholds with one group fsync per drain.
//
// The hub callback only buffers: events batch on the emitting goroutine and
// hand off to a dedicated writer goroutine that does everything expensive
// (canonical ordering, JSON encoding, CRC framing, disk writes, group
// fsyncs). The on-disk layout is unaffected by the hand-off — segment rolls
// are a pure function of the record stream — so persistence costs the
// simulation thread a buffered append, not a write. Persistence errors are
// sticky and surface from Err, Checkpoint, and Close rather than panicking
// the datapath.
//
// Close requires that emission has stopped (detach order: stop the sim, then
// Close the sink) — events still in flight on other goroutines at Close time
// are not guaranteed to persist, exactly as a crash would drop them.
type Sink struct {
	st   *Store
	hub  *telemetry.Hub
	opts SinkOptions

	cancel func()

	// Hot path: the hub callback appends into inBuf under inMu; full batches
	// ship through work to the writer goroutine, which recycles their backing
	// arrays through free.
	inMu  sync.Mutex
	inBuf []telemetry.Event
	added atomic.Int64 // events received from the hub
	work  chan sinkBatch
	free  chan []telemetry.Event
	done  chan struct{}

	// mu guards the writer-side state below plus the incident cursor. The
	// writer holds it while processing a batch; control calls (Checkpoint,
	// AppendIncidents, Close, Err) take it between batches.
	mu    sync.Mutex
	seq   telemetry.Sequencer
	names map[telemetry.NodeID]string
	enc   []byte

	evHash       uint64 // FNV-1a over appended (or skipped) event payloads, canonical order
	incHash      uint64 // same, over incident payloads
	alertHash    uint64 // same, over alert payloads
	skippedEv    int64
	skippedInc   int64
	skippedAlert int64

	pendEvents   int64 // appended since last drain
	lastFlushT   int64
	lastCpT      int64
	lastSyncWall time.Time
	err          error

	// Registry instruments (on the hub's registry, so the counters surface on
	// /metrics, the obs snapshot, and — via the fleet NetCommitter fold —
	// /fleet/metrics). Reconciled from Store.Stats deltas at drain points to
	// keep the per-event path free of extra atomics.
	cEvents, cIncidents, cAlerts, cBytes, cSealed, cFsyncs, cCheckpoints *telemetry.Counter
	gBacklog, gCheckpointMs                                              *telemetry.Gauge
	lastStats                                                            Stats
	lastSyncAt                                                           atomic.Int64 // unix nanos of the last fsync (health probe input)
}

// sinkBatch is one hand-off unit. A non-nil done channel is a barrier: the
// writer closes it once every event received before the hand-off is
// processed.
type sinkBatch struct {
	evs  []telemetry.Event
	done chan struct{}
}

const fnvOffset64 = 14695981039346656037

// NewSink attaches a persistence sink to hub, writing into st. Detach with
// Close.
func NewSink(st *Store, hub *telemetry.Hub, opts SinkOptions) *Sink {
	if opts.FlushEvents == 0 {
		opts.FlushEvents = DefaultFlushEvents
	}
	if opts.FlushIntervalBits == 0 {
		opts.FlushIntervalBits = DefaultFlushIntervalBits
	}
	s := &Sink{
		st:           st,
		hub:          hub,
		opts:         opts,
		inBuf:        make([]telemetry.Event, 0, sinkBatchEvents),
		work:         make(chan sinkBatch, sinkQueueBatches),
		free:         make(chan []telemetry.Event, sinkQueueBatches+1),
		done:         make(chan struct{}),
		names:        make(map[telemetry.NodeID]string),
		evHash:       fnvOffset64,
		incHash:      fnvOffset64,
		alertHash:    fnvOffset64,
		lastFlushT:   opts.ResumeFromBits,
		lastCpT:      opts.ResumeFromBits,
		lastSyncWall: time.Now(),
	}
	s.lastSyncAt.Store(time.Now().UnixNano())
	reg := hub.Registry()
	s.cEvents = reg.Counter("michican_store_events_appended_total")
	s.cIncidents = reg.Counter("michican_store_incidents_appended_total")
	s.cAlerts = reg.Counter("michican_store_alerts_appended_total")
	s.cBytes = reg.Counter("michican_store_bytes_appended_total")
	s.cSealed = reg.Counter("michican_store_segments_sealed_total")
	s.cFsyncs = reg.Counter("michican_store_fsyncs_total")
	s.cCheckpoints = reg.Counter("michican_store_checkpoints_total")
	s.gBacklog = reg.Gauge("michican_store_drain_backlog")
	s.gCheckpointMs = reg.Gauge("michican_store_checkpoint_ms")
	s.seq.Emit = s.release
	go s.writer()
	s.cancel = hub.Subscribe(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EvAlert {
			// Alert transitions persist in their own log (AppendAlerts) with
			// their own cursor and hash. Keeping them out of the event log
			// keeps the stored stream canonical (alerts are emitted at
			// incident-closure observation time, behind the stream head) and
			// keeps event prefix hashes identical whether or not a watch
			// engine was attached.
			return
		}
		s.inMu.Lock()
		s.inBuf = append(s.inBuf, ev)
		n := len(s.inBuf)
		s.inMu.Unlock()
		s.added.Add(1)
		if n >= sinkBatchEvents {
			s.handOff(nil)
		}
	})
	return s
}

// handOff ships the hot-path buffer to the writer, optionally with a barrier
// the writer closes once the batch is processed. Empty buffers still ship
// when a barrier rides along.
func (s *Sink) handOff(barrier chan struct{}) {
	s.inMu.Lock()
	evs := s.inBuf
	var next []telemetry.Event
	select {
	case next = <-s.free:
	default:
		next = make([]telemetry.Event, 0, sinkBatchEvents)
	}
	s.inBuf = next
	s.inMu.Unlock()
	if len(evs) == 0 && barrier == nil {
		// Nothing to ship; put the swapped-in buffer's predecessor back.
		select {
		case s.free <- evs:
		default:
		}
		return
	}
	s.work <- sinkBatch{evs: evs, done: barrier}
}

// barrier flushes the hot-path buffer and waits until the writer has
// processed every event received so far.
func (s *Sink) barrier() {
	ch := make(chan struct{})
	s.handOff(ch)
	<-ch
}

// writer is the persistence goroutine: it owns the sequencer and the store
// appends, so the emitting thread never waits on the disk.
func (s *Sink) writer() {
	defer close(s.done)
	for b := range s.work {
		s.mu.Lock()
		for _, ev := range b.evs {
			s.seq.Add(ev)
		}
		s.mu.Unlock()
		if b.evs != nil {
			select {
			case s.free <- b.evs[:0]:
			default:
			}
		}
		if b.done != nil {
			close(b.done)
		}
	}
}

// hashPayload folds one framed payload into a running FNV-1a hash, with a
// newline as the record separator (so the hash equals FNV-1a of the JSONL
// text of the prefix).
func hashPayload(h uint64, payload []byte) uint64 {
	const prime = 1099511628211
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime
	}
	h ^= '\n'
	h *= prime
	return h
}

func hashString(h uint64) string { return fmt.Sprintf("%016x", h) }

// release receives one canonically-ordered event from the sequencer. Called
// with s.mu held, on the writer goroutine.
func (s *Sink) release(ev telemetry.Event) {
	if s.err != nil {
		return
	}
	name, ok := s.names[ev.Node]
	if !ok {
		name = s.hub.NodeName(ev.Node)
		s.names[ev.Node] = name
	}
	s.enc = telemetry.AppendEventJSON(s.enc[:0], name, ev)
	s.evHash = hashPayload(s.evHash, s.enc)
	if s.skippedEv < s.opts.SkipEvents {
		// Resume: this event is already durable from the interrupted run.
		// Hash it for the boundary check instead of re-appending.
		s.skippedEv++
		if s.skippedEv == s.opts.SkipEvents && s.opts.ExpectPrefixHash != "" {
			if got := hashString(s.evHash); got != s.opts.ExpectPrefixHash {
				s.err = fmt.Errorf("store: resume prefix diverged: regenerated %d events hash %s, checkpoint recorded %s",
					s.skippedEv, got, s.opts.ExpectPrefixHash)
			}
		}
		return
	}
	if err := s.st.AppendEvent(s.enc, ev.Time); err != nil {
		s.err = err
		return
	}
	s.pendEvents++
	if s.pendEvents >= s.opts.FlushEvents || ev.Time-s.lastFlushT >= s.opts.FlushIntervalBits {
		s.drainLocked(ev.Time)
	}
	if s.opts.CheckpointIntervalBits > 0 && ev.Time-s.lastCpT >= s.opts.CheckpointIntervalBits {
		s.checkpointLocked(ev.Time, false)
	}
}

// drainLocked flushes the appended tail to the OS, group-commits it with an
// fsync when the policy and wall-clock cadence call for one, and reconciles
// the registry instruments.
func (s *Sink) drainLocked(t int64) {
	var err error
	if s.st.Meta().Fsync == FsyncGroup && time.Since(s.lastSyncWall) >= sinkSyncInterval {
		err = s.st.Sync()
		s.lastSyncWall = time.Now()
		s.lastSyncAt.Store(s.lastSyncWall.UnixNano())
	} else {
		err = s.st.Flush()
	}
	if err != nil && s.err == nil {
		s.err = err
	}
	s.pendEvents = 0
	s.lastFlushT = t
	s.reconcileLocked()
}

// reconcileLocked folds Store.Stats deltas into the hub registry instruments.
func (s *Sink) reconcileLocked() {
	st := s.st.Stats()
	s.cEvents.Add(st.EventsAppended - s.lastStats.EventsAppended)
	s.cIncidents.Add(st.IncidentsAppended - s.lastStats.IncidentsAppended)
	s.cAlerts.Add(st.AlertsAppended - s.lastStats.AlertsAppended)
	s.cBytes.Add(st.BytesAppended - s.lastStats.BytesAppended)
	s.cSealed.Add(st.SegmentsSealed - s.lastStats.SegmentsSealed)
	s.cFsyncs.Add(st.Fsyncs - s.lastStats.Fsyncs)
	s.cCheckpoints.Add(st.Checkpoints - s.lastStats.Checkpoints)
	s.gCheckpointMs.Set(st.LastCheckpointMs)
	s.lastStats = st
	// Backlog: events received from the hub but not yet durable — the
	// hand-off queue plus the sequencer's reorder window plus anything
	// buffered between drains. Stats counters restart at zero per process,
	// so at resume the skipped prefix is subtracted rather than the prior
	// run's appends.
	s.gBacklog.Set(float64(s.added.Load() - s.skippedEv - st.EventsAppended))
}

// checkpointLocked writes a checkpoint at bit time t. Suppressed while the
// skip cursor has not been reached (the interrupted run's checkpoints
// already cover that prefix).
func (s *Sink) checkpointLocked(t int64, completed bool) {
	if s.err != nil {
		return
	}
	if s.skippedEv < s.opts.SkipEvents {
		return
	}
	start := time.Now()
	cp := Checkpoint{
		TimeBits:     t,
		Events:       s.st.EventCount(),
		Incidents:    s.st.IncidentCount(),
		Alerts:       s.st.AlertCount(),
		PrefixHash:   hashString(s.evHash),
		IncidentHash: hashString(s.incHash),
		AlertHash:    hashString(s.alertHash),
		Completed:    completed,
	}
	if _, err := s.st.WriteCheckpoint(cp); err != nil && s.err == nil {
		s.err = err
	}
	s.st.noteCheckpointMs(float64(time.Since(start).Nanoseconds()) / 1e6)
	s.lastCpT = t
	s.pendEvents = 0
	s.lastFlushT = t
	s.reconcileLocked()
}

// AppendIncidents persists a batch of marshalled incident payloads (the
// forensics package's canonical encoding), honouring the resume skip cursor.
func (s *Sink) AppendIncidents(payloads [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range payloads {
		s.incHash = hashPayload(s.incHash, p)
		if s.skippedInc < s.opts.SkipIncidents {
			s.skippedInc++
			if s.skippedInc == s.opts.SkipIncidents && s.opts.ExpectIncidentHash != "" {
				if got := hashString(s.incHash); got != s.opts.ExpectIncidentHash {
					s.err = fmt.Errorf("store: resume incident prefix diverged: hash %s, checkpoint recorded %s",
						got, s.opts.ExpectIncidentHash)
				}
			}
			continue
		}
		if err := s.st.AppendIncident(p); err != nil {
			if s.err == nil {
				s.err = err
			}
			return err
		}
	}
	return s.err
}

// AppendAlerts persists a batch of marshalled watch-alert payloads (the watch
// package's canonical encoding), honouring the resume skip cursor exactly as
// AppendIncidents does.
func (s *Sink) AppendAlerts(payloads [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range payloads {
		s.alertHash = hashPayload(s.alertHash, p)
		if s.skippedAlert < s.opts.SkipAlerts {
			s.skippedAlert++
			if s.skippedAlert == s.opts.SkipAlerts && s.opts.ExpectAlertHash != "" {
				if got := hashString(s.alertHash); got != s.opts.ExpectAlertHash {
					s.err = fmt.Errorf("store: resume alert prefix diverged: hash %s, checkpoint recorded %s",
						got, s.opts.ExpectAlertHash)
				}
			}
			continue
		}
		if err := s.st.AppendAlert(p); err != nil {
			if s.err == nil {
				s.err = err
			}
			return err
		}
	}
	return s.err
}

// SyncAge reports how long ago the last group fsync completed. Health probes
// use it to flag an fsync stall (a disk that stopped acknowledging writes).
func (s *Sink) SyncAge(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastSyncAt.Load()))
}

// Backlog reports the events received from the hub but not yet durable (the
// hand-off queue plus the reorder window plus anything buffered between
// drains). It is the same figure the michican_store_drain_backlog gauge
// carries, but readable without a registry snapshot.
func (s *Sink) Backlog() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added.Load() - s.skippedEv - s.lastStats.EventsAppended
}

// Checkpoint waits for the writer to catch up with everything received so
// far, flushes the reorder window's released tail, and durably records a
// resume point at bit time t.
func (s *Sink) Checkpoint(t int64) error {
	s.barrier()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkpointLocked(t, false)
	return s.err
}

// Skipping reports whether the sink is still discarding the regenerated
// prefix of a resumed run.
func (s *Sink) Skipping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skippedEv < s.opts.SkipEvents
}

// Err returns the first persistence or resume-validation error, if any.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close detaches from the hub, joins the writer goroutine, flushes the
// reorder window, makes everything durable, and — when completed is true —
// writes a final checkpoint marked Completed at bit time t. Returns the
// first error encountered.
func (s *Sink) Close(t int64, completed bool) error {
	s.cancel()
	s.barrier()
	close(s.work)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq.Flush()
	if s.err != nil {
		return s.err
	}
	if err := s.st.Sync(); err != nil {
		if s.err == nil {
			s.err = err
		}
		return s.err
	}
	if completed {
		s.checkpointLocked(t, true)
	}
	s.reconcileLocked()
	return s.err
}
