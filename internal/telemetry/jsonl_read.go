package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// NamedEvent is a decoded JSONL record: an Event with the node name resolved,
// since a reader has no Hub to map IDs through.
type NamedEvent struct {
	Time int64
	Node string
	Kind Kind
	A, B int64
}

// kindByName is the inverse of Kind.String for the JSONL reader.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := EvArbWon; k <= EvAlert; k++ {
		m[k.String()] = k
	}
	return m
}()

// errorKindCode is the inverse of ErrorKindName.
func errorKindCode(name string) int64 {
	for i, n := range errorKindNames {
		if i > 0 && n == name {
			return int64(i)
		}
	}
	var code int64
	fmt.Sscanf(name, "kind%d", &code)
	return code
}

// ffPathCode is the inverse of ffPathName.
func ffPathCode(name string) int64 {
	switch name {
	case "frame":
		return 1
	case "contend":
		return 2
	case "splice":
		return 3
	default:
		return 0
	}
}

// jsonlRecord is the union of every kind-specific field AppendEventJSON emits.
type jsonlRecord struct {
	T         int64  `json:"t"`
	Node      string `json:"node"`
	Event     string `json:"event"`
	ID        string `json:"id"`
	AtWireBit int64  `json:"at_wire_bit"`
	Bit       int64  `json:"bit"`
	Bits      int64  `json:"bits"`
	Kind      string `json:"kind"`
	Role      string `json:"role"`
	Value     int64  `json:"value"`
	Prev      int64  `json:"prev"`
	Path      string `json:"path"`
	Rule      int64  `json:"rule"`
	State     string `json:"state"`
}

// ParseEventJSON decodes one JSONL record previously produced by
// AppendEventJSON (one line, without or with surrounding whitespace) back
// into a named event. Exported so the durable store's replay path decodes
// segment payloads through the same inverse WriteJSONL readers use.
func ParseEventJSON(line []byte) (NamedEvent, error) {
	var rec jsonlRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return NamedEvent{}, err
	}
	kind, ok := kindByName[rec.Event]
	if !ok {
		return NamedEvent{}, fmt.Errorf("unknown event %q", rec.Event)
	}
	ev := NamedEvent{Time: rec.T, Node: rec.Node, Kind: kind}
	switch kind {
	case EvArbWon, EvTxStart, EvTxSuccess:
		id, err := strconv.ParseInt(strings.TrimPrefix(rec.ID, "0x"), 16, 64)
		if err != nil {
			return NamedEvent{}, fmt.Errorf("bad id %q", rec.ID)
		}
		ev.A = id
	case EvArbLost:
		ev.A = rec.AtWireBit
	case EvDetect:
		ev.A = rec.Bit
	case EvPullStart, EvPullEnd:
		ev.A = rec.Bits
	case EvError:
		ev.A = errorKindCode(rec.Kind)
		if rec.Role == "tx" {
			ev.B = 1
		}
	case EvTEC, EvREC:
		ev.A, ev.B = rec.Value, rec.Prev
	case EvFFSpan:
		ev.A = rec.Bits
		ev.B = ffPathCode(rec.Path)
	case EvAlert:
		ev.A = rec.Rule
		if rec.State == "fire" {
			ev.B = 1
		}
	}
	return ev, nil
}

// ReadJSONL parses a stream previously produced by WriteJSONL or a
// JSONLStreamer back into named events, preserving stream order.
func ReadJSONL(r io.Reader) ([]NamedEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []NamedEvent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		ev, err := ParseEventJSON([]byte(text))
		if err != nil {
			return nil, fmt.Errorf("events line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
