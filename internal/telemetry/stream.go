package telemetry

import (
	"bufio"
	"io"
	"sort"
	"sync"
)

// DefaultSequencerSlack is the reorder horizon used when a Sequencer is
// created with Slack 0. Batch fast-path delivery hands each node its whole
// span one node at a time, so an event can arrive displaced from global
// bit-time order by at most one span length. Spans are bounded by the
// longest classic CAN frame plus error signalling (~160 bits) — idle jumps
// carry no node events — so 4096 bits of slack is a generous safety margin.
const DefaultSequencerSlack = 4096

// sequencerDrainLen is the buffered-event count that triggers an incremental
// drain.
const sequencerDrainLen = 1024

// Sequencer restores global (Time, Node) order over a stream of events that
// arrives ordered per node but interleaved across nodes, without waiting for
// the end of the run. Events older than the newest-seen time minus Slack are
// released to Emit in canonical order: ascending Time, ties broken by Node,
// and same-(Time, Node) events kept in arrival order — the same canonical
// order WriteJSONL produces from a retained log, and identical across exact
// and fast-forward stepping because per-node streams are.
//
// Sequencer is not safe for concurrent use; callers that feed it from
// concurrent emitters must serialize Add.
type Sequencer struct {
	// Slack is the reorder horizon in bit times (DefaultSequencerSlack when
	// zero). Events can be released as soon as they are Slack older than the
	// newest event seen.
	Slack int64
	// Emit receives released events in canonical order.
	Emit func(Event)

	buf  []Event
	seq  []int64 // arrival index per buffered event, the final tie-break
	next int64
	maxT int64
}

// Add accepts one event and releases any events that have fallen behind the
// reorder horizon.
func (s *Sequencer) Add(ev Event) {
	s.buf = append(s.buf, ev)
	s.seq = append(s.seq, s.next)
	s.next++
	if ev.Time > s.maxT {
		s.maxT = ev.Time
	}
	if len(s.buf) >= sequencerDrainLen {
		slack := s.Slack
		if slack == 0 {
			slack = DefaultSequencerSlack
		}
		s.drain(s.maxT - slack)
	}
}

// Flush releases every buffered event. Call at end of run.
func (s *Sequencer) Flush() {
	s.drain(s.maxT + 1)
	s.buf, s.seq = s.buf[:0], s.seq[:0]
}

// drain emits all buffered events with Time < cutoff in canonical order and
// compacts the rest.
func (s *Sequencer) drain(cutoff int64) {
	sort.Sort(seqByKey{s})
	kept := 0
	for i, ev := range s.buf {
		if ev.Time < cutoff {
			s.Emit(ev)
			continue
		}
		s.buf[kept], s.seq[kept] = s.buf[i], s.seq[i]
		kept++
	}
	s.buf, s.seq = s.buf[:kept], s.seq[:kept]
}

// seqByKey sorts a Sequencer's buffer by (Time, Node, arrival).
type seqByKey struct{ s *Sequencer }

func (o seqByKey) Len() int { return len(o.s.buf) }
func (o seqByKey) Less(i, j int) bool {
	a, b := o.s.buf[i], o.s.buf[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return o.s.seq[i] < o.s.seq[j]
}
func (o seqByKey) Swap(i, j int) {
	o.s.buf[i], o.s.buf[j] = o.s.buf[j], o.s.buf[i]
	o.s.seq[i], o.s.seq[j] = o.s.seq[j], o.s.seq[i]
}

// JSONLStreamer writes the JSONL event stream incrementally from a hub
// subscription instead of a retained log: memory stays bounded by the
// sequencer's reorder window however long the run, which is what lets
// michican-sim export events with retention off. Create with StreamJSONL,
// then Close after the run to flush the tail.
type JSONLStreamer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	seq    Sequencer
	hub    *Hub
	names  map[NodeID]string
	cancel func()
	err    error
}

// StreamJSONL subscribes to the hub and streams every event to w in
// canonical bit-time order (the same order WriteJSONL produces).
func StreamJSONL(w io.Writer, h *Hub) *JSONLStreamer {
	s := &JSONLStreamer{bw: bufio.NewWriter(w), hub: h, names: make(map[NodeID]string)}
	s.seq.Emit = s.write
	s.cancel = h.Subscribe(func(ev Event) {
		s.mu.Lock()
		s.seq.Add(ev)
		s.mu.Unlock()
	})
	return s
}

// write renders one released event. Called with s.mu held (via Sequencer.Emit
// from Add/Flush).
func (s *JSONLStreamer) write(ev Event) {
	if s.err != nil {
		return
	}
	name, ok := s.names[ev.Node]
	if !ok {
		name = s.hub.NodeName(ev.Node)
		s.names[ev.Node] = name
	}
	s.err = writeEventJSON(s.bw, name, ev)
}

// Close unsubscribes, flushes the reorder window and the write buffer, and
// returns the first error encountered while streaming.
func (s *JSONLStreamer) Close() error {
	s.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq.Flush()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
