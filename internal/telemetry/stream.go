package telemetry

import (
	"bufio"
	"io"
	"slices"
	"sort"
	"sync"
)

// DefaultSequencerSlack is the reorder horizon used when a Sequencer is
// created with Slack 0. Batch fast-path delivery hands each node its whole
// span one node at a time, so an event can arrive displaced from global
// bit-time order by at most one span length. Spans are bounded by the
// longest classic CAN frame plus error signalling (~160 bits) — idle jumps
// carry no node events — so 4096 bits of slack is a generous safety margin.
const DefaultSequencerSlack = 4096

// sequencerDrainLen is the buffered-event count that triggers an incremental
// drain.
const sequencerDrainLen = 1024

// Sequencer restores global (Time, Node) order over a stream of events that
// arrives ordered per node but interleaved across nodes, without waiting for
// the end of the run. Events older than the newest-seen time minus Slack are
// released to Emit in canonical order: ascending Time, ties broken by Node,
// and same-(Time, Node) events kept in arrival order — the same canonical
// order WriteJSONL produces from a retained log, and identical across exact
// and fast-forward stepping because per-node streams are.
//
// Sequencer is not safe for concurrent use; callers that feed it from
// concurrent emitters must serialize Add.
//
// The buffer tracks whether it is already in canonical order: exact-stepped
// simulations emit in global (Time, Node) order bit by bit, so the common
// case drains with a binary search and a copy, no sort at all. Only when a
// fast-forward span lands displaced does a drain pay for sorting — and the
// buffer is then a handful of concatenated per-node runs, which the
// pattern-defeating quicksort behind slices.SortFunc handles near-linearly.
type Sequencer struct {
	// Slack is the reorder horizon in bit times (DefaultSequencerSlack when
	// zero). Events can be released as soon as they are Slack older than the
	// newest event seen.
	Slack int64
	// Emit receives released events in canonical order.
	Emit func(Event)

	buf    []seqEntry
	next   int64
	maxT   int64
	sorted bool // buf is in canonical order as it stands
}

// seqEntry pairs a buffered event with its arrival index, the final
// tie-break of the canonical order.
type seqEntry struct {
	ev  Event
	seq int64
}

// seqLess is the canonical (Time, Node, arrival) order.
func seqLess(a, b seqEntry) bool {
	if a.ev.Time != b.ev.Time {
		return a.ev.Time < b.ev.Time
	}
	if a.ev.Node != b.ev.Node {
		return a.ev.Node < b.ev.Node
	}
	return a.seq < b.seq
}

// Add accepts one event and releases any events that have fallen behind the
// reorder horizon.
func (s *Sequencer) Add(ev Event) {
	e := seqEntry{ev: ev, seq: s.next}
	s.next++
	if n := len(s.buf); n == 0 {
		s.sorted = true
	} else if s.sorted && seqLess(e, s.buf[n-1]) {
		s.sorted = false
	}
	s.buf = append(s.buf, e)
	if ev.Time > s.maxT {
		s.maxT = ev.Time
	}
	if len(s.buf) >= sequencerDrainLen {
		slack := s.Slack
		if slack == 0 {
			slack = DefaultSequencerSlack
		}
		s.drain(s.maxT - slack)
	}
}

// Flush releases every buffered event. Call at end of run.
func (s *Sequencer) Flush() {
	s.drain(s.maxT + 1)
	s.buf = s.buf[:0]
	s.sorted = true
}

// drain emits all buffered events with Time < cutoff in canonical order and
// compacts the rest.
func (s *Sequencer) drain(cutoff int64) {
	if !s.sorted {
		slices.SortFunc(s.buf, func(a, b seqEntry) int {
			if seqLess(a, b) {
				return -1
			}
			return 1
		})
		s.sorted = true
	}
	// Canonical order is by Time first, so the releasable prefix is
	// contiguous.
	i := sort.Search(len(s.buf), func(i int) bool { return s.buf[i].ev.Time >= cutoff })
	for _, e := range s.buf[:i] {
		s.Emit(e.ev)
	}
	n := copy(s.buf, s.buf[i:])
	s.buf = s.buf[:n]
}

// JSONLStreamer writes the JSONL event stream incrementally from a hub
// subscription instead of a retained log: memory stays bounded by the
// sequencer's reorder window however long the run, which is what lets
// michican-sim export events with retention off. Create with StreamJSONL,
// then Close after the run to flush the tail.
type JSONLStreamer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	seq    Sequencer
	hub    *Hub
	names  map[NodeID]string
	cancel func()
	err    error
}

// StreamJSONL subscribes to the hub and streams every event to w in
// canonical bit-time order (the same order WriteJSONL produces).
func StreamJSONL(w io.Writer, h *Hub) *JSONLStreamer {
	s := &JSONLStreamer{bw: bufio.NewWriter(w), hub: h, names: make(map[NodeID]string)}
	s.seq.Emit = s.write
	s.cancel = h.Subscribe(func(ev Event) {
		s.mu.Lock()
		s.seq.Add(ev)
		s.mu.Unlock()
	})
	return s
}

// write renders one released event. Called with s.mu held (via Sequencer.Emit
// from Add/Flush).
func (s *JSONLStreamer) write(ev Event) {
	if s.err != nil {
		return
	}
	name, ok := s.names[ev.Node]
	if !ok {
		name = s.hub.NodeName(ev.Node)
		s.names[ev.Node] = name
	}
	s.err = writeEventJSON(s.bw, name, ev)
}

// Close unsubscribes, flushes the reorder window and the write buffer, and
// returns the first error encountered while streaming.
func (s *JSONLStreamer) Close() error {
	s.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq.Flush()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}
