package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestZeroProbeIsNoOp(t *testing.T) {
	var p Probe
	if p.Enabled() {
		t.Fatal("zero Probe reports enabled")
	}
	p.Emit(1, EvDetect, 5, 0) // must not panic
	var h *Hub
	if got := h.Probe("x"); got.Enabled() {
		t.Fatal("nil hub issued an enabled probe")
	}
	if h.Events() != nil || h.Len() != 0 || h.Registry() != nil {
		t.Fatal("nil hub not inert")
	}
	if err := h.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteChromeTrace(&bytes.Buffer{}, 50_000); err != nil {
		t.Fatal(err)
	}
}

func TestProbeDedupeByName(t *testing.T) {
	h := NewHub()
	a := h.Probe("defender")
	b := h.Probe("defender")
	c := h.Probe("attacker")
	if a.node != b.node {
		t.Fatalf("same name produced distinct nodes: %d vs %d", a.node, b.node)
	}
	if a.node == c.node {
		t.Fatal("distinct names share a node")
	}
	if got := h.Nodes(); len(got) != 2 || got[0] != "defender" || got[1] != "attacker" {
		t.Fatalf("Nodes() = %v", got)
	}
}

func TestEmitFoldsMetrics(t *testing.T) {
	h := NewHub()
	p := h.Probe("michican")
	p.Emit(100, EvDetect, 5, 0)
	p.Emit(120, EvDetect, 9, 0)
	p.Emit(101, EvPullStart, 7, 0)
	p.Emit(108, EvPullEnd, 7, 0)
	p.Emit(130, EvError, 1, 1)
	p.Emit(131, EvError, 2, 0)
	p.Emit(132, EvTEC, 8, 0)
	p.Emit(133, EvBusOff, 0, 0)
	p.Emit(200, EvRecover, 0, 0)
	p.Emit(210, EvFFSpan, 64, 0)
	p.Emit(220, EvFFSpan, 32, 1)

	r := h.Registry()
	checks := []struct {
		name string
		want int64
	}{
		{"michican_detections_total", 2},
		{"michican_counterattacks_total", 1},
		{"michican_counterattack_bits_total", 7},
		{"michican_errors_total", 2},
		{"michican_frames_destroyed_total", 1},
		{"michican_busoff_total", 1},
		{"michican_recoveries_total", 1},
		{"michican_ff_idle_bits_total", 64},
		{"michican_ff_frame_bits_total", 32},
	}
	for _, c := range checks {
		if got := r.Counter(c.name, "node", "michican").Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := r.Gauge("michican_tec", "node", "michican").Value(); got != 8 {
		t.Errorf("tec gauge = %g, want 8", got)
	}
	s := r.Histogram("michican_detection_bits", "node", "michican").Summary()
	if s.N != 2 || s.Mean != 7 || s.Min != 5 || s.Max != 9 {
		t.Errorf("detection bits summary = %+v", s)
	}
	if h.Len() != 11 {
		t.Errorf("retained %d events, want 11", h.Len())
	}
}

func TestRetainEventsOff(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	p := h.Probe("n")
	p.Emit(1, EvDetect, 3, 0)
	if h.Len() != 0 {
		t.Fatalf("retained %d events with retention off", h.Len())
	}
	if got := h.Registry().Counter("michican_detections_total", "node", "n").Value(); got != 1 {
		t.Fatalf("metrics not folded with retention off: %d", got)
	}
}

func TestConcurrentEmit(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := h.Probe("defender") // same name from every goroutine
			for i := 0; i < 1000; i++ {
				p.Emit(int64(i), EvDetect, int64(i%11+1), 0)
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != 8000 {
		t.Fatalf("retained %d events, want 8000", h.Len())
	}
	if got := h.Registry().Counter("michican_detections_total", "node", "defender").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestWriteJSONL(t *testing.T) {
	h := NewHub()
	d := h.Probe("michican")
	a := h.Probe("attacker")
	d.Emit(100, EvDetect, 5, 0)
	d.Emit(101, EvPullStart, 7, 0)
	a.Emit(110, EvError, 1, 1)
	a.Emit(125, EvTEC, 8, 0)
	a.Emit(300, EvBusOff, 0, 0)

	var buf bytes.Buffer
	if err := h.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if lines[0]["event"] != "detect" || lines[0]["bit"] != float64(5) || lines[0]["node"] != "michican" {
		t.Errorf("detect line = %v", lines[0])
	}
	if lines[2]["kind"] != "bit" || lines[2]["role"] != "tx" {
		t.Errorf("error line = %v", lines[2])
	}
	if lines[3]["value"] != float64(8) || lines[3]["prev"] != float64(0) {
		t.Errorf("tec line = %v", lines[3])
	}
	// Bit-time ordering preserved.
	last := float64(-1)
	for i, m := range lines {
		tt := m["t"].(float64)
		if tt < last {
			t.Fatalf("line %d out of order: t=%g after %g", i, tt, last)
		}
		last = tt
	}
}

func TestWriteChromeTrace(t *testing.T) {
	h := NewHub()
	d := h.Probe("michican")
	a := h.Probe("attacker")
	d.Emit(100, EvDetect, 5, 0)
	d.Emit(101, EvPullStart, 7, 0)
	d.Emit(108, EvPullEnd, 7, 0)
	a.Emit(110, EvError, 1, 1)
	a.Emit(124, EvErrorEnd, 0, 0)
	a.Emit(124, EvTEC, 8, 0)
	a.Emit(300, EvBusOff, 0, 0)
	a.Emit(1708, EvRecover, 0, 0)
	h.Probe("bus").Emit(400, EvFFSpan, 128, 0)

	var buf bytes.Buffer
	if err := h.WriteChromeTrace(&buf, 50_000); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var names []string
	spans := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		names = append(names, name)
		if ev["ph"] == "X" {
			spans[name], _ = ev["dur"].(float64)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"process_name", "thread_name", "counterattack", "error(bit)", "bus-off", "idle-ff", "detect@bit5", "TEC"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q (have %s)", want, joined)
		}
	}
	// 7 pull bits at 50 kbit/s = 140 µs.
	if got := spans["counterattack"]; got < 139 || got > 141 {
		t.Errorf("counterattack span dur = %g µs, want 140", got)
	}
	// bus-off span: 1708-300 = 1408 bits = 28160 µs.
	if got := spans["bus-off"]; got < 28159 || got > 28161 {
		t.Errorf("bus-off span dur = %g µs, want 28160", got)
	}
	if got := spans["idle-ff"]; got < 2559 || got > 2561 {
		t.Errorf("idle-ff span dur = %g µs, want 2560", got)
	}
	if err := h.WriteChromeTrace(&buf, 0); err == nil {
		t.Error("rate 0 accepted")
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("michican_detections_total", "node", "a").Add(3)
	r.Counter("michican_detections_total", "node", "b").Add(1)
	r.Gauge("michican_sim_bits_per_second").Set(1.25e8)
	r.Histogram("michican_detection_bits", "node", "a").Observe(5)
	r.Histogram("michican_detection_bits", "node", "a").Observe(9)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE michican_detections_total counter",
		`michican_detections_total{node="a"} 3`,
		`michican_detections_total{node="b"} 1`,
		"michican_sim_bits_per_second 125000000",
		`michican_detection_bits_count{node="a"} 2`,
		`michican_detection_bits_mean{node="a"} 7`,
		`michican_detection_bits_max{node="a"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
	// Deterministic output: a second render must match exactly.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("WriteText not deterministic")
	}
}

func TestMetricKeyLabelOrder(t *testing.T) {
	a := metricKey("m", []string{"b", "2", "a", "1"})
	b := metricKey("m", []string{"a", "1", "b", "2"})
	if a != b || a != `m{a="1",b="2"}` {
		t.Fatalf("metricKey unstable: %q vs %q", a, b)
	}
}

func BenchmarkProbeEmitDisabled(b *testing.B) {
	var p Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Emit(int64(i), EvDetect, 5, 0)
	}
}

func BenchmarkProbeEmitEnabled(b *testing.B) {
	h := NewHub()
	h.RetainEvents(false)
	p := h.Probe("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Emit(int64(i), EvDetect, 5, 0)
	}
}
