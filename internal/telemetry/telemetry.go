// Package telemetry is the simulation's observability substrate: a typed
// event bus keyed by simulated bit time, a metrics registry (atomic counters
// and gauges plus Accumulator-backed histograms), and exporters that turn a
// captured run into a JSONL event stream, a Chrome trace_event JSON viewable
// in Perfetto, or a Prometheus-style text snapshot.
//
// The paper's evaluation (Sec. V) leans on external instruments — a logic
// analyzer for bus-off timing, a cycle counter for defense overhead — that
// the simulation previously improvised per experiment. This package bakes
// the measurement surface into the datapath instead: the bus, the protocol
// controllers, and the MichiCAN defense all emit typed events (arbitration
// won/lost, FSM detection verdicts with the decision bit, counterattack pull
// start/end, error-frame episodes, TEC/REC transitions, bus-off entry, and
// fast-path span commits) through a Probe handle whose zero value is a
// no-op. A hot path pays exactly one nil check per emit site when telemetry
// is disabled, and no emit site sits on a per-bit loop — every event is per
// frame, per error, or per fast-forward span.
//
// A Hub is safe for concurrent emission, so the parallel experiment runner
// can share one hub across trials: node registration dedupes by name, and
// the per-node metric instruments aggregate across trials through atomics.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind identifies an event type on the telemetry bus.
type Kind uint8

// The event taxonomy (DESIGN.md §5). A and B are kind-specific arguments;
// see the per-kind comments.
const (
	// EvArbWon: a transmitter survived the arbitration field and owns the
	// bus for the rest of the frame. A = the frame's CAN ID.
	EvArbWon Kind = iota + 1
	// EvArbLost: a transmitter saw a dominant overwrite on a recessive
	// arbitration bit and dropped to receiver. A = the wire index (SOF = 0)
	// at which it lost.
	EvArbLost
	// EvDetect: the defense FSM reached a malicious verdict. A = the
	// decision bit position within the 11-bit CAN ID (1-11).
	EvDetect
	// EvPullStart: a counterattack pull began (CAN_TX multiplexed to GPIO
	// and pulled dominant). A = the pull width in bits.
	EvPullStart
	// EvPullEnd: the counterattack released CAN_TX. A = the pull width in
	// bits that was driven.
	EvPullEnd
	// EvError: a protocol error was detected and error signalling begins.
	// A = the error kind code (the controller package's ErrorKind values:
	// 1 bit, 2 stuff, 3 form, 4 crc, 5 ack), B = 1 when this node was the
	// frame's transmitter (its attempt was destroyed), 0 for a receiver.
	EvError
	// EvErrorEnd: the error delimiter completed; the episode is over.
	EvErrorEnd
	// EvTEC: the transmit error counter changed. A = new value, B = old.
	EvTEC
	// EvREC: the receive error counter changed. A = new value, B = old.
	EvREC
	// EvBusOff: the node's TEC reached the bus-off threshold and it left
	// the bus.
	EvBusOff
	// EvRecover: a bus-off node completed the 128×11-recessive-bit recovery
	// sequence and rejoined as error-active.
	EvRecover
	// EvFFSpan: the bus committed a fast-path span. A = the span length in
	// bits, B = 0 for the idle quiescence path, 1 for the sole-transmitter
	// frame path, 2 for the contested-window (multi-driver) path, 3 for the
	// compiled-splice (whole-frame cache) path, 4 for the hyperperiod
	// super-splice (chained-window cache) path.
	EvFFSpan
	// EvTxStart: a controller began a transmission attempt — the SOF bit of
	// a frame it is driving. A = the pending frame's CAN ID. The event time
	// is the SOF bit on the wire, which is what lets the forensics engine
	// line attempts up with the trace decoder's episode boundaries.
	EvTxStart
	// EvTxSuccess: a transmission completed acknowledged and error-free.
	// A = the frame's CAN ID; the event time is the final EOF bit.
	EvTxSuccess
	// EvAlert: the watch engine changed an alert rule's state. A = the rule
	// index (watch.Rule), B = 1 on fire, 0 on resolve. Alerts describe the
	// observer, not the simulated network: they are excluded from the
	// hyperperiod capture tape and ignored by the forensics engine.
	EvAlert
)

// String names the kind as it appears in the JSONL stream.
func (k Kind) String() string {
	switch k {
	case EvArbWon:
		return "arb_won"
	case EvArbLost:
		return "arb_lost"
	case EvDetect:
		return "detect"
	case EvPullStart:
		return "pull_start"
	case EvPullEnd:
		return "pull_end"
	case EvError:
		return "error"
	case EvErrorEnd:
		return "error_end"
	case EvTEC:
		return "tec"
	case EvREC:
		return "rec"
	case EvBusOff:
		return "bus_off"
	case EvRecover:
		return "recover"
	case EvFFSpan:
		return "ff_span"
	case EvTxStart:
		return "tx_start"
	case EvTxSuccess:
		return "tx_success"
	case EvAlert:
		return "alert"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// errorKindNames mirrors the controller package's ErrorKind codes without
// importing it (telemetry is a leaf package).
var errorKindNames = [...]string{"", "bit", "stuff", "form", "crc", "ack"}

// ErrorKindName names an EvError A-argument code.
func ErrorKindName(code int64) string {
	if code > 0 && int(code) < len(errorKindNames) {
		return errorKindNames[code]
	}
	return fmt.Sprintf("kind%d", code)
}

// Event is one fixed-size telemetry record. Time is the simulated bit time
// of the event (a bus.BitTime, held as int64 so this package stays a leaf).
type Event struct {
	Time int64
	Kind Kind
	Node NodeID
	A, B int64
}

// NodeID indexes a registered node within a Hub.
type NodeID int32

// nodeInstruments holds the pre-resolved per-node metric handles so that
// folding an event into the registry is a few atomic operations — no map
// lookups, no label formatting, no allocation on the emit path.
type nodeInstruments struct {
	arbWon, arbLost                               *Counter
	detections                                    *Counter
	detectionBits                                 *Histogram
	pulls                                         *Counter
	pullBits                                      *Counter
	errors                                        *Counter
	framesDestroyed                               *Counter
	busOff, recovered                             *Counter
	tec, rec                                      *Gauge
	ffIdle, ffFrame, ffContend, ffSplice, ffHyper *Counter
	txStarts, txSuccess                           *Counter
}

// Hub is the telemetry collector: a registry of named nodes, an append-only
// event log, and a metrics registry fed by the same emit calls. Create with
// NewHub; a nil *Hub is a valid "disabled" hub (Probe returns a no-op probe).
type Hub struct {
	mu      sync.Mutex
	names   []string
	byName  map[string]NodeID
	perNode []*nodeInstruments
	events  []Event
	retain  bool
	reg     *Registry
	// subs is the subscriber list, replaced wholesale on every
	// Subscribe/unsubscribe (copy-on-write): emit reads the slice header
	// under mu and iterates outside it, so a steady-state emit never copies
	// and subscribers may call back into the hub without deadlocking.
	subs      []subscriber
	nextSubID int
	// emits counts every event ever emitted through this hub, retained or
	// not. It is the O(1) "logical updates" proxy the fleet's thresholded
	// net-commit policy checks per scheduling slice: comparing two EmitCount
	// readings tells a worker how much telemetry a vehicle produced without
	// scanning its registry.
	emits atomic.Int64
	// Capture state for the hyperperiod super-splice recorder (see
	// internal/bus hyperpath.go). While capturing, every emitted event except
	// EvFFSpan is also appended to the capture tape; the bus replays the tape
	// time-shifted on later cache hits. Capture is only meaningful when this
	// hub hears exactly one simulation (one bus and its nodes) — a shared hub
	// would pollute the tape with foreign events — so it is deny-by-default
	// and must be opted in with AllowCapture.
	captureOK bool
	capturing bool
	capture   []Event
}

// subscriber is one registered streaming consumer.
type subscriber struct {
	id int
	fn func(Event)
}

// NewHub creates an empty hub that retains events.
func NewHub() *Hub {
	return &Hub{byName: make(map[string]NodeID), retain: true, reg: NewRegistry()}
}

// RetainEvents toggles event retention. Metrics-only consumers (the
// experiment runner aggregating thousands of trials) disable retention so
// the log cannot grow without bound; metric folding is unaffected.
func (h *Hub) RetainEvents(on bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.retain = on
	h.mu.Unlock()
}

// Registry returns the hub's metrics registry (never nil for a non-nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Probe registers (or looks up) a named node and returns its emit handle.
// Calling Probe with the same name returns a handle to the same node, which
// is what lets a shared hub aggregate per-node metrics across parallel
// trials that all name their defender "defender". Probe on a nil hub
// returns the zero Probe, whose Emit is a no-op after one nil check.
func (h *Hub) Probe(name string) Probe {
	if h == nil {
		return Probe{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	id, ok := h.byName[name]
	if !ok {
		id = NodeID(len(h.names))
		h.byName[name] = id
		h.names = append(h.names, name)
		h.perNode = append(h.perNode, h.instrumentsFor(name))
	}
	return Probe{hub: h, node: id}
}

// instrumentsFor pre-resolves the per-node metric handles. Called with h.mu
// held.
func (h *Hub) instrumentsFor(name string) *nodeInstruments {
	r := h.reg
	return &nodeInstruments{
		arbWon:          r.Counter("michican_arbitration_won_total", "node", name),
		arbLost:         r.Counter("michican_arbitration_lost_total", "node", name),
		detections:      r.Counter("michican_detections_total", "node", name),
		detectionBits:   r.Histogram("michican_detection_bits", "node", name),
		pulls:           r.Counter("michican_counterattacks_total", "node", name),
		pullBits:        r.Counter("michican_counterattack_bits_total", "node", name),
		errors:          r.Counter("michican_errors_total", "node", name),
		framesDestroyed: r.Counter("michican_frames_destroyed_total", "node", name),
		busOff:          r.Counter("michican_busoff_total", "node", name),
		recovered:       r.Counter("michican_recoveries_total", "node", name),
		tec:             r.Gauge("michican_tec", "node", name),
		rec:             r.Gauge("michican_rec", "node", name),
		ffIdle:          r.Counter("michican_ff_idle_bits_total", "node", name),
		ffFrame:         r.Counter("michican_ff_frame_bits_total", "node", name),
		ffContend:       r.Counter("michican_ff_contend_bits_total", "node", name),
		ffSplice:        r.Counter("michican_ff_splice_bits_total", "node", name),
		ffHyper:         r.Counter("michican_ff_hyper_bits_total", "node", name),
		txStarts:        r.Counter("michican_tx_attempts_total", "node", name),
		txSuccess:       r.Counter("michican_tx_success_total", "node", name),
	}
}

// NodeName returns the registered name of a node ID ("" if out of range).
func (h *Hub) NodeName(id NodeID) string {
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(id) < 0 || int(id) >= len(h.names) {
		return ""
	}
	return h.names[id]
}

// Nodes returns the registered node names in registration order.
func (h *Hub) Nodes() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.names))
	copy(out, h.names)
	return out
}

// Events returns a snapshot of the retained event log.
func (h *Hub) Events() []Event {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// Len returns the number of retained events.
func (h *Hub) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// Subscribe registers a streaming consumer and returns its cancel function.
// The callback is invoked synchronously from every Emit, outside the hub
// lock, after the event has been retained (if retention is on) and before
// Emit returns — so a single-threaded simulation delivers events to
// subscribers in exact emission order, with no retained-log copy needed.
// When multiple goroutines emit concurrently, callbacks run concurrently
// too: subscribers that keep state must do their own locking.
func (h *Hub) Subscribe(fn func(Event)) (unsubscribe func()) {
	if h == nil || fn == nil {
		return func() {}
	}
	h.mu.Lock()
	id := h.nextSubID
	h.nextSubID++
	subs := make([]subscriber, len(h.subs), len(h.subs)+1)
	copy(subs, h.subs)
	h.subs = append(subs, subscriber{id: id, fn: fn})
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		subs := make([]subscriber, 0, len(h.subs))
		for _, s := range h.subs {
			if s.id != id {
				subs = append(subs, s)
			}
		}
		h.subs = subs
	}
}

// EmitCount returns the number of events emitted through the hub so far
// (independent of retention).
func (h *Hub) EmitCount() int64 {
	if h == nil {
		return 0
	}
	return h.emits.Load()
}

// AllowCapture declares that this hub hears exactly one simulation, making
// event-tape capture (StartCapture) legal. The hyperperiod fast path records
// a chain's telemetry through the tape and replays it on cache hits; with a
// hub shared across concurrent trials the tape would interleave foreign
// events, so the bus refuses to record unless the owner has opted in.
func (h *Hub) AllowCapture(on bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.captureOK = on
	h.mu.Unlock()
}

// CaptureAllowed reports whether AllowCapture(true) was called.
func (h *Hub) CaptureAllowed() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.captureOK
}

// StartCapture begins recording every emitted event (except EvFFSpan and
// EvAlert, which describe the stepping machinery and the watch engine
// rather than the simulated network) onto
// the capture tape. It reports false — and records nothing — unless the hub
// owner opted in with AllowCapture. A nil hub reports true: there is nothing
// to capture and nothing to replay, which is vacuously faithful.
func (h *Hub) StartCapture() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.captureOK {
		return false
	}
	h.capturing = true
	h.capture = h.capture[:0]
	return true
}

// StopCapture ends recording and returns the captured tape (nil when nothing
// was captured). The returned slice is the caller's to keep.
func (h *Hub) StopCapture() []Event {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.capturing = false
	if len(h.capture) == 0 {
		return nil
	}
	out := make([]Event, len(h.capture))
	copy(out, h.capture)
	h.capture = h.capture[:0]
	return out
}

// ReplayShifted re-emits a captured tape with every event time shifted by
// the given delta, through the full emit path: retention, metric folding,
// and subscriber fan-out all see the replayed events exactly as if the nodes
// had emitted them live. Event times on the tape are relative to the capture
// epoch the caller chose when it stored them.
func (h *Hub) ReplayShifted(tape []Event, shift int64) {
	if h == nil {
		return
	}
	for _, ev := range tape {
		ev.Time += shift
		h.emit(ev)
	}
}

// emit appends the event, folds it into the metrics registry, and fans it
// out to subscribers.
func (h *Hub) emit(ev Event) {
	h.emits.Add(1)
	h.mu.Lock()
	if h.retain {
		h.events = append(h.events, ev)
	}
	if h.capturing && ev.Kind != EvFFSpan && ev.Kind != EvAlert {
		h.capture = append(h.capture, ev)
	}
	ni := h.perNode[ev.Node]
	subs := h.subs
	h.mu.Unlock()

	switch ev.Kind {
	case EvArbWon:
		ni.arbWon.Inc()
	case EvArbLost:
		ni.arbLost.Inc()
	case EvDetect:
		ni.detections.Inc()
		ni.detectionBits.Observe(float64(ev.A))
	case EvPullStart:
		ni.pulls.Inc()
	case EvPullEnd:
		ni.pullBits.Add(ev.A)
	case EvError:
		ni.errors.Inc()
		if ev.B != 0 {
			ni.framesDestroyed.Inc()
		}
	case EvTEC:
		ni.tec.Set(float64(ev.A))
	case EvREC:
		ni.rec.Set(float64(ev.A))
	case EvBusOff:
		ni.busOff.Inc()
	case EvRecover:
		ni.recovered.Inc()
	case EvFFSpan:
		switch ev.B {
		case 0:
			ni.ffIdle.Add(ev.A)
		case 1:
			ni.ffFrame.Add(ev.A)
		case 3:
			ni.ffSplice.Add(ev.A)
		case 4:
			ni.ffHyper.Add(ev.A)
		default:
			ni.ffContend.Add(ev.A)
		}
	case EvTxStart:
		ni.txStarts.Inc()
	case EvTxSuccess:
		ni.txSuccess.Inc()
	}
	for _, s := range subs {
		s.fn(ev)
	}
}

// Probe is a node's emit handle: a hub pointer plus a pre-registered node
// ID. The zero Probe is disabled — Emit returns after a single nil check —
// so datapath structs embed a Probe and never branch on configuration.
type Probe struct {
	hub  *Hub
	node NodeID
}

// Enabled reports whether this probe is wired to a hub. Emit sites that
// need to compute arguments (diffing TEC against the last emitted value)
// guard the computation with Enabled; plain emits just call Emit.
func (p Probe) Enabled() bool { return p.hub != nil }

// Hub returns the hub this probe emits into (nil for the zero Probe). The
// hyperperiod fast path uses it to check that a node's telemetry flows into
// the same hub whose tape the bus is recording.
func (p Probe) Hub() *Hub { return p.hub }

// Emit records one event at simulated bit time t. It is a no-op on the zero
// Probe.
func (p Probe) Emit(t int64, kind Kind, a, b int64) {
	if p.hub == nil {
		return
	}
	p.hub.emit(Event{Time: t, Kind: kind, Node: p.node, A: a, B: b})
}
