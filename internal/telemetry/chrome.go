package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (consumed by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// openSpan tracks a begin event awaiting its end.
type openSpan struct {
	name string
	ts   float64
	args map[string]any
}

// WriteChromeTrace renders the retained event log as a Chrome trace_event
// JSON document: one thread track per registered node, spans over simulated
// bit time mapped to microseconds at the given bus rate, TEC/REC as counter
// tracks, and instant markers for arbitration outcomes and detection
// verdicts. Open it in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Span pairing per node: counterattack pulls (pull_start→pull_end), error
// episodes (error→error_end, or →bus_off when the node leaves the bus
// mid-episode), bus-off confinement (bus_off→recover), and fast-path spans
// (ff_span, emitted pre-paired with a duration). Spans still open at the end
// of the capture are closed at the last event's time.
func (h *Hub) WriteChromeTrace(w io.Writer, bitsPerSecond int64) error {
	if h == nil {
		return nil
	}
	if bitsPerSecond <= 0 {
		return fmt.Errorf("telemetry: chrome trace needs a positive bus rate, got %d", bitsPerSecond)
	}
	usPerBit := 1e6 / float64(bitsPerSecond)
	events := h.sortedEvents()
	nodes := h.Nodes()

	const pid = 1
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"source": "michican telemetry", "bus_rate_bits_per_second": bitsPerSecond},
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "michican"},
	})
	for i, name := range nodes {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]any{"name": name},
		})
	}

	var end float64
	if n := len(events); n > 0 {
		end = float64(events[n-1].Time) * usPerBit
	}

	// Per-node open spans, one slot per pairable span class.
	type spanState struct {
		pull, errEp, busOff *openSpan
	}
	state := make([]spanState, len(nodes))
	closeSpan := func(tid int, sp *openSpan, ts float64) {
		dur := ts - sp.ts
		if dur <= 0 {
			dur = usPerBit // zero-width spans vanish in Perfetto; show one bit
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.name, Ph: "X", Ts: sp.ts, Dur: dur, Pid: pid, Tid: tid, Args: sp.args,
		})
	}

	for _, ev := range events {
		tid := int(ev.Node) + 1
		ts := float64(ev.Time) * usPerBit
		st := &state[ev.Node]
		switch ev.Kind {
		case EvArbWon:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("arb won 0x%03X", ev.A), Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t",
			})
		case EvArbLost:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "arb lost", Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t",
				Args: map[string]any{"at_wire_bit": ev.A},
			})
		case EvDetect:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("detect@bit%d", ev.A), Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t",
				Args: map[string]any{"decision_bit": ev.A},
			})
		case EvPullStart:
			st.pull = &openSpan{name: "counterattack", ts: ts, args: map[string]any{"pull_bits": ev.A}}
		case EvPullEnd:
			if st.pull != nil {
				closeSpan(tid, st.pull, ts)
				st.pull = nil
			}
		case EvError:
			st.errEp = &openSpan{
				name: "error(" + ErrorKindName(ev.A) + ")", ts: ts,
				args: map[string]any{"kind": ErrorKindName(ev.A), "transmitter": ev.B != 0},
			}
		case EvErrorEnd:
			if st.errEp != nil {
				closeSpan(tid, st.errEp, ts)
				st.errEp = nil
			}
		case EvBusOff:
			if st.errEp != nil {
				closeSpan(tid, st.errEp, ts)
				st.errEp = nil
			}
			st.busOff = &openSpan{name: "bus-off", ts: ts}
		case EvRecover:
			if st.busOff != nil {
				closeSpan(tid, st.busOff, ts)
				st.busOff = nil
			}
		case EvTEC:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "TEC", Ph: "C", Ts: ts, Pid: pid, Tid: tid,
				Args: map[string]any{"tec": ev.A},
			})
		case EvREC:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "REC", Ph: "C", Ts: ts, Pid: pid, Tid: tid,
				Args: map[string]any{"rec": ev.A},
			})
		case EvFFSpan:
			name := "idle-ff"
			switch ev.B {
			case 1:
				name = "frame-ff"
			case 2:
				name = "contend-ff"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Ts: ts, Dur: float64(ev.A) * usPerBit, Pid: pid, Tid: tid,
				Args: map[string]any{"bits": ev.A},
			})
		case EvAlert:
			state := "resolve"
			if ev.B != 0 {
				state = "fire"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("alert %s rule%d", state, ev.A), Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t",
				Args: map[string]any{"rule": ev.A, "state": state},
			})
		}
	}

	// Close spans that were still open when the capture ended.
	for i := range state {
		tid := i + 1
		for _, sp := range []*openSpan{state[i].pull, state[i].errEp, state[i].busOff} {
			if sp != nil {
				closeSpan(tid, sp, end)
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
