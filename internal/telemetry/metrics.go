package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"michican/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are ignored — counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a mutex-guarded streaming histogram backed by
// stats.Accumulator: constant space, exact mean/stddev/min/max.
type Histogram struct {
	mu  sync.Mutex
	acc stats.Accumulator
}

// Observe folds one sample in.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	h.acc.Add(x)
	h.mu.Unlock()
}

// Summary snapshots the distribution.
func (h *Histogram) Summary() stats.Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.Summarize()
}

// Registry is a named collection of metrics with Prometheus-style
// name-plus-labels identity. Instrument lookups (Counter, Gauge, Histogram)
// are idempotent: the same name and labels return the same instrument, so
// concurrent trials sharing a registry aggregate into one set of values.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// metricKey renders the canonical identity of an instrument: the family
// name plus sorted label pairs, in the Prometheus exposition format.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter with this name and
// label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with this name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with this name and
// labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{}
		r.hists[key] = h
	}
	return h
}

// FindCounter returns the counter with this name and labels, or nil if it
// was never created — unlike Counter it never materializes a zero series,
// which keeps read-only consumers (the observability server's /snapshot)
// from polluting the /metrics exposition.
func (r *Registry) FindCounter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[key]
}

// FindGauge returns the gauge with this name and labels, or nil if it was
// never created.
func (r *Registry) FindGauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[key]
}

// familyOf strips the label set off a metric key.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WriteText renders a Prometheus-style text snapshot: families sorted by
// name with a # TYPE header, series sorted within each family. Histograms
// export as a gauge family of _count/_mean/_stddev/_min/_max series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]stats.Summary, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h.Summary()
	}
	r.mu.Unlock()

	// Expand histograms into gauge series.
	for k, s := range hists {
		fam, rest := familyOf(k), ""
		if len(fam) < len(k) {
			rest = k[len(fam):]
		}
		gauges[fam+"_count"+rest] = float64(s.N)
		gauges[fam+"_mean"+rest] = s.Mean
		gauges[fam+"_stddev"+rest] = s.StdDev
		gauges[fam+"_min"+rest] = s.Min
		gauges[fam+"_max"+rest] = s.Max
	}

	type series struct {
		key  string
		kind string // "counter" or "gauge"
		val  string
	}
	all := make([]series, 0, len(counters)+len(gauges))
	for k, v := range counters {
		all = append(all, series{k, "counter", fmt.Sprintf("%d", v)})
	}
	for k, v := range gauges {
		all = append(all, series{k, "gauge", formatFloat(v)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })

	lastFam := ""
	for _, s := range all {
		fam := familyOf(s.key)
		if fam != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, s.kind); err != nil {
				return err
			}
			lastFam = fam
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.key, s.val); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a gauge value: integers without a decimal point,
// everything else with %g.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
