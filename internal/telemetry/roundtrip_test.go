package telemetry

import (
	"bytes"
	"sort"
	"sync"
	"testing"
)

// TestSequencerOrderUnderSubscriberChurn closes the coverage gap the durable
// store leans on: a sequencer-backed consumer (the store's sink shape) must
// release every event in canonical order even while other subscribers join
// and leave the hub mid-stream. Churn rebuilds the hub's copy-on-write
// subscriber list under emission; the long-lived consumer's view must be
// unaffected — no losses, no duplicates, no reorders beyond the sequencer's
// contract.
func TestSequencerOrderUnderSubscriberChurn(t *testing.T) {
	h := NewHub()
	h.RetainEvents(true)
	var mu sync.Mutex
	var released []Event
	seq := Sequencer{Emit: func(ev Event) { released = append(released, ev) }}
	cancel := h.Subscribe(func(ev Event) {
		mu.Lock()
		seq.Add(ev)
		mu.Unlock()
	})

	// Churn runs concurrently with emission: transient subscribers attach
	// and detach as fast as they can.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Subscribe(func(Event) {})()
			}
		}
	}()

	// Two nodes whose spans interleave out of global order, the batch
	// fast-path delivery pattern the sequencer exists to repair.
	a, b := h.Probe("alice"), h.Probe("bob")
	const rounds = 5000
	tm := int64(0)
	for i := 0; i < rounds; i++ {
		tm += 30
		b.Emit(tm+20, EvTxStart, 0x123, 0)
		a.Emit(tm+10, EvArbLost, 2, 0)
		tm += 50
	}
	close(stop)
	churnWG.Wait()
	cancel()
	mu.Lock()
	seq.Flush()
	mu.Unlock()

	if len(released) != 2*rounds {
		t.Fatalf("sequencer released %d events, want %d (churn lost or duplicated events)", len(released), 2*rounds)
	}
	if !sort.SliceIsSorted(released, func(i, j int) bool {
		if released[i].Time != released[j].Time {
			return released[i].Time < released[j].Time
		}
		return released[i].Node < released[j].Node
	}) {
		t.Fatal("released stream is not in canonical (Time, Node) order")
	}
	// The released stream must match the retained log's canonical order
	// exactly — same events, same order WriteJSONL would produce.
	want := h.sortedEvents()
	for i := range want {
		if released[i] != want[i] {
			t.Fatalf("event %d: released %+v, canonical %+v", i, released[i], want[i])
		}
	}
}

// TestReadJSONLRoundTripEveryKind writes one event of every kind — including
// every EvFFSpan path (idle, frame, contend, splice), both EvError roles, and
// every error-kind code — through WriteJSONL and parses it back, asserting a
// lossless round trip. This is the encoder/decoder pairing the durable
// store's replay path depends on; the splice path had no decoder case before
// this PR.
func TestReadJSONLRoundTripEveryKind(t *testing.T) {
	h := NewHub()
	p := h.Probe("node")
	tm := int64(0)
	emit := func(k Kind, a, b int64) {
		tm += 10
		p.Emit(tm, k, a, b)
	}
	emit(EvArbWon, 0x7FF, 0)
	emit(EvArbWon, 0x001, 0) // exercises the %03X zero-padding
	emit(EvArbLost, 5, 0)
	emit(EvDetect, 9, 0)
	emit(EvPullStart, 7, 0)
	emit(EvPullEnd, 7, 0)
	for code := int64(1); code <= 5; code++ { // bit, stuff, form, crc, ack
		emit(EvError, code, code%2) // alternating rx/tx roles
	}
	emit(EvErrorEnd, 0, 0)
	emit(EvTEC, 8, 0)
	emit(EvREC, 1, 2)
	emit(EvBusOff, 0, 0)
	emit(EvRecover, 0, 0)
	for path := int64(0); path <= 3; path++ { // idle, frame, contend, splice
		emit(EvFFSpan, 100+path, path)
	}
	emit(EvTxStart, 0x173, 0)
	emit(EvTxSuccess, 0x173, 0)

	events := h.sortedEvents()
	var buf bytes.Buffer
	if err := h.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(events))
	}
	for i, ev := range events {
		want := NamedEvent{Time: ev.Time, Node: "node", Kind: ev.Kind, A: ev.A, B: ev.B}
		if got[i] != want {
			t.Fatalf("event %d (%s): round trip %+v, want %+v", i, ev.Kind, got[i], want)
		}
	}
}
