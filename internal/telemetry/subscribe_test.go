package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSubscribeReceivesEvents(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	var got []Event
	cancel := h.Subscribe(func(ev Event) { got = append(got, ev) })
	p := h.Probe("n")
	p.Emit(10, EvDetect, 5, 0)
	p.Emit(20, EvTEC, 8, 0)
	if len(got) != 2 || got[0].Kind != EvDetect || got[0].A != 5 || got[1].Time != 20 {
		t.Fatalf("subscriber saw %+v", got)
	}
	cancel()
	p.Emit(30, EvBusOff, 0, 0)
	if len(got) != 2 {
		t.Fatalf("event delivered after unsubscribe: %+v", got)
	}
	cancel() // idempotent
}

func TestSubscribeMultiple(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	var a, b int
	cancelA := h.Subscribe(func(Event) { a++ })
	cancelB := h.Subscribe(func(Event) { b++ })
	p := h.Probe("n")
	p.Emit(1, EvDetect, 5, 0)
	cancelA()
	p.Emit(2, EvDetect, 5, 0)
	cancelB()
	p.Emit(3, EvDetect, 5, 0)
	if a != 1 || b != 2 {
		t.Fatalf("a=%d b=%d, want 1 and 2", a, b)
	}
}

// TestConcurrentEmitWithSubscriber hammers one hub from concurrent emitters
// while subscribers come and go — the shape `go test -race` must hold for the
// live observability server, whose forensics engine subscribes mid-run.
func TestConcurrentEmitWithSubscriber(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	var delivered atomic.Int64
	cancel := h.Subscribe(func(ev Event) { delivered.Add(1) })

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := h.Probe("defender")
			for i := 0; i < perG; i++ {
				p.Emit(int64(i), EvDetect, int64(i%11+1), 0)
			}
		}(g)
	}
	// Subscriber churn while emission is in flight: transient subscribers must
	// neither lose the long-lived subscriber's events nor race the emitters.
	for i := 0; i < 50; i++ {
		h.Subscribe(func(Event) {})()
	}
	wg.Wait()
	cancel()
	if got := delivered.Load(); got != goroutines*perG {
		t.Fatalf("long-lived subscriber saw %d events, want %d", got, goroutines*perG)
	}
	if got := h.Registry().Counter("michican_detections_total", "node", "defender").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestSequencerCanonicalOrder feeds the sequencer node-interleaved events and
// checks the released order is the canonical (Time, Node, arrival) order.
func TestSequencerCanonicalOrder(t *testing.T) {
	var got []Event
	s := Sequencer{Slack: 4, Emit: func(ev Event) { got = append(got, ev) }}
	// Node 2's span arrives whole before node 1's — the batch fast-path
	// delivery pattern.
	s.Add(Event{Time: 10, Node: 2, Kind: EvTxStart, A: 7})
	s.Add(Event{Time: 12, Node: 2, Kind: EvError})
	s.Add(Event{Time: 10, Node: 1, Kind: EvTxStart, A: 7})
	s.Add(Event{Time: 11, Node: 1, Kind: EvDetect, A: 9})
	s.Flush()
	want := []struct {
		t    int64
		node NodeID
	}{{10, 1}, {10, 2}, {11, 1}, {12, 2}}
	if len(got) != len(want) {
		t.Fatalf("released %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Time != w.t || got[i].Node != w.node {
			t.Fatalf("event %d = t%d node%d, want t%d node%d", i, got[i].Time, got[i].Node, w.t, w.node)
		}
	}
}
