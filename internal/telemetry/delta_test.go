package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNetCommitterFoldsNetDeltas(t *testing.T) {
	src, dst := NewRegistry(), NewRegistry()
	nc := NewNetCommitter(src, dst)

	src.Counter("frames_total", "node", "bus").Add(10)
	if got := nc.Commit(); got != 10 {
		t.Fatalf("first commit pushed %d, want 10", got)
	}
	if v := dst.Counter("frames_total", "node", "bus").Value(); v != 10 {
		t.Fatalf("dst = %d after first commit, want 10", v)
	}
	// A quiet source commits nothing — not a re-push of the old value.
	if got := nc.Commit(); got != 0 {
		t.Fatalf("idle commit pushed %d, want 0", got)
	}
	if v := dst.Counter("frames_total", "node", "bus").Value(); v != 10 {
		t.Fatalf("dst = %d after idle commit, want 10 (double count)", v)
	}
	// Series created after the committer exists are picked up on the next
	// commit, and only the net delta of existing series moves.
	src.Counter("frames_total", "node", "bus").Add(5)
	src.Counter("detects_total").Inc()
	if got := nc.Commit(); got != 6 {
		t.Fatalf("commit pushed %d, want 6", got)
	}
	if v := dst.Counter("detects_total").Value(); v != 1 {
		t.Fatalf("late series dst = %d, want 1", v)
	}
	if nc.Commits() != 2 || nc.Pushed() != 16 {
		t.Fatalf("commits=%d pushed=%d, want 2 and 16", nc.Commits(), nc.Pushed())
	}
}

func TestNetCommitterGaugesStayLocal(t *testing.T) {
	src, dst := NewRegistry(), NewRegistry()
	nc := NewNetCommitter(src, dst)
	src.Gauge("tec").Set(96)
	src.Counter("c").Inc()
	nc.Commit()
	if g := dst.FindGauge("tec"); g != nil {
		t.Fatalf("gauge leaked into the destination registry: %v", g.Value())
	}
}

// TestNetCommitterConcurrentShards is the satellite's merge-correctness
// contract: many shards, each a private source registry hammered by its own
// publisher goroutine and folded by its own committer into one shared
// destination, with commits racing the publishers. After a final drain
// commit per shard the destination must equal the exact sum of the sources —
// no lost deltas, no double counts.
func TestNetCommitterConcurrentShards(t *testing.T) {
	const shards = 8
	const perShard = 20_000
	dst := NewRegistry()

	srcs := make([]*Registry, shards)
	ncs := make([]*NetCommitter, shards)
	for i := range srcs {
		srcs[i] = NewRegistry()
		ncs[i] = NewNetCommitter(srcs[i], dst)
	}

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, nc := srcs[i], ncs[i]
			// Two series per shard, one shared across shards and one
			// shard-unique, created mid-stream to exercise refresh under load.
			shared := r.Counter("events_total", "node", "bus")
			for n := 0; n < perShard; n++ {
				shared.Inc()
				if n == perShard/2 {
					r.Counter("late_total", "shard", fmt.Sprint(i)).Add(3)
				}
				if n%1024 == 0 {
					nc.Commit() // interleave commits with publishing
				}
			}
			nc.Commit() // drain
		}(i)
	}
	wg.Wait()

	if v := dst.Counter("events_total", "node", "bus").Value(); v != shards*perShard {
		t.Fatalf("shared series = %d, want %d (lost or double-counted deltas)", v, shards*perShard)
	}
	for i := 0; i < shards; i++ {
		if v := dst.Counter("late_total", "shard", fmt.Sprint(i)).Value(); v != 3 {
			t.Fatalf("shard %d late series = %d, want 3", i, v)
		}
	}
	var pushed int64
	for _, nc := range ncs {
		pushed += nc.Pushed()
	}
	want := int64(shards*perShard + shards*3)
	if pushed != want {
		t.Fatalf("total pushed = %d, want %d", pushed, want)
	}
}

// TestHubEmitCountTracksEmits pins the O(1) pending-events proxy the fleet's
// commit threshold reads every slice.
func TestHubEmitCountTracksEmits(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	p := h.Probe("n")
	if h.EmitCount() != 0 {
		t.Fatalf("fresh hub EmitCount = %d", h.EmitCount())
	}
	for i := 0; i < 7; i++ {
		p.Emit(int64(i), EvDetect, 0, 0)
	}
	if got := h.EmitCount(); got != 7 {
		t.Fatalf("EmitCount = %d, want 7", got)
	}
}

// TestHubSubscribeUnderMultiShardPublish runs the observability shapes the
// fleet control plane relies on concurrently against one hub: multiple
// publisher goroutines emitting, subscribers attaching and detaching, a
// committer folding the hub's registry into an aggregate, and snapshot
// readers. Run under -race this is the fleet's no-torn-reads contract.
func TestHubSubscribeUnderMultiShardPublish(t *testing.T) {
	h := NewHub()
	h.RetainEvents(false)
	agg := NewRegistry()
	nc := NewNetCommitter(h.Registry(), agg)

	const publishers = 4
	const perPub = 5_000
	var delivered atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Subscriber churn: attach, observe a little, detach, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cancel := h.Subscribe(func(Event) { delivered.Add(1) })
			for i := 0; i < 64; i++ {
				_ = h.EmitCount()
			}
			cancel()
		}
	}()
	// Aggregation + snapshot readers racing the publishers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			nc.Commit()
			_ = h.Registry().SnapshotCounters()
			_ = h.Registry().SnapshotGauges()
		}
	}()

	var pubs sync.WaitGroup
	for g := 0; g < publishers; g++ {
		pubs.Add(1)
		go func(g int) {
			defer pubs.Done()
			p := h.Probe(fmt.Sprintf("node%d", g))
			c := h.Registry().Counter("pub_total", "g", fmt.Sprint(g))
			for i := 0; i < perPub; i++ {
				p.Emit(int64(i), EvTEC, int64(i), 0)
				c.Inc()
			}
		}(g)
	}
	pubs.Wait()
	close(stop)
	wg.Wait()

	if got := h.EmitCount(); got != publishers*perPub {
		t.Fatalf("EmitCount = %d, want %d", got, publishers*perPub)
	}
	nc.Commit()
	var total int64
	for g := 0; g < publishers; g++ {
		total += agg.Counter("pub_total", "g", fmt.Sprint(g)).Value()
	}
	if total != publishers*perPub {
		t.Fatalf("aggregate = %d, want %d", total, publishers*perPub)
	}
}
