package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// sortedEvents snapshots the event log in global bit-time order. Each node's
// own emissions are monotone in time, but batch (fast-path) delivery appends
// whole per-node spans one node at a time, so the raw log can interleave
// across nodes; a stable sort restores global order while preserving every
// node's begin/end pairing order.
// The secondary key is the node ID so that ties at the same bit time land in
// a canonical order regardless of stepping mode: per-node streams are
// identical across exact and batch delivery, and the stable sort keeps each
// node's same-time emissions in program order.
func (h *Hub) sortedEvents() []Event {
	events := h.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Node < events[j].Node
	})
	return events
}

// WriteJSONL streams the retained event log as one JSON object per line, in
// bit-time order. Kind-specific arguments are decoded into named fields so
// the stream is self-describing:
//
//	{"t":1042,"node":"michican","event":"detect","bit":5}
//	{"t":1056,"node":"michican","event":"pull_start","bits":7}
//	{"t":1063,"node":"attacker","event":"error","kind":"bit","role":"tx"}
//	{"t":1079,"node":"attacker","event":"tec","value":8,"prev":0}
func (h *Hub) WriteJSONL(w io.Writer) error {
	if h == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, ev := range h.sortedEvents() {
		if err := writeEventJSON(bw, h.NodeName(ev.Node), ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEventJSON renders one event. Hand-rolled rather than encoding/json:
// the field set depends on the kind, and the stable field order keeps the
// stream diffable across runs.
func writeEventJSON(w *bufio.Writer, node string, ev Event) error {
	if _, err := fmt.Fprintf(w, `{"t":%d,"node":%s,"event":%q`,
		ev.Time, strconv.Quote(node), ev.Kind.String()); err != nil {
		return err
	}
	var err error
	switch ev.Kind {
	case EvArbWon:
		_, err = fmt.Fprintf(w, `,"id":"0x%03X"`, ev.A)
	case EvArbLost:
		_, err = fmt.Fprintf(w, `,"at_wire_bit":%d`, ev.A)
	case EvDetect:
		_, err = fmt.Fprintf(w, `,"bit":%d`, ev.A)
	case EvPullStart, EvPullEnd:
		_, err = fmt.Fprintf(w, `,"bits":%d`, ev.A)
	case EvError:
		role := "rx"
		if ev.B != 0 {
			role = "tx"
		}
		_, err = fmt.Fprintf(w, `,"kind":%q,"role":%q`, ErrorKindName(ev.A), role)
	case EvTEC, EvREC:
		_, err = fmt.Fprintf(w, `,"value":%d,"prev":%d`, ev.A, ev.B)
	case EvFFSpan:
		path := "idle"
		switch ev.B {
		case 1:
			path = "frame"
		case 2:
			path = "contend"
		}
		_, err = fmt.Fprintf(w, `,"bits":%d,"path":%q`, ev.A, path)
	case EvTxStart, EvTxSuccess:
		_, err = fmt.Fprintf(w, `,"id":"0x%03X"`, ev.A)
	case EvErrorEnd, EvBusOff, EvRecover:
		// No arguments.
	}
	if err != nil {
		return err
	}
	_, err = w.WriteString("}\n")
	return err
}
