package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// sortedEvents snapshots the event log in global bit-time order. Each node's
// own emissions are monotone in time, but batch (fast-path) delivery appends
// whole per-node spans one node at a time, so the raw log can interleave
// across nodes; a stable sort restores global order while preserving every
// node's begin/end pairing order.
// The secondary key is the node ID so that ties at the same bit time land in
// a canonical order regardless of stepping mode: per-node streams are
// identical across exact and batch delivery, and the stable sort keeps each
// node's same-time emissions in program order.
func (h *Hub) sortedEvents() []Event {
	events := h.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Node < events[j].Node
	})
	return events
}

// WriteJSONL streams the retained event log as one JSON object per line, in
// bit-time order. Kind-specific arguments are decoded into named fields so
// the stream is self-describing:
//
//	{"t":1042,"node":"michican","event":"detect","bit":5}
//	{"t":1056,"node":"michican","event":"pull_start","bits":7}
//	{"t":1063,"node":"attacker","event":"error","kind":"bit","role":"tx"}
//	{"t":1079,"node":"attacker","event":"tec","value":8,"prev":0}
func (h *Hub) WriteJSONL(w io.Writer) error {
	if h == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, ev := range h.sortedEvents() {
		buf = AppendEventJSON(buf[:0], h.NodeName(ev.Node), ev)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEventJSON renders one event plus its newline. Kept as the internal
// convenience the streaming exporters use; AppendEventJSON is the canonical
// encoder.
func writeEventJSON(w *bufio.Writer, node string, ev Event) error {
	buf := AppendEventJSON(make([]byte, 0, 96), node, ev)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}

// ffPathName names an EvFFSpan B-argument path code as it appears in the
// JSONL stream.
func ffPathName(code int64) string {
	switch code {
	case 1:
		return "frame"
	case 2:
		return "contend"
	case 3:
		return "splice"
	default:
		return "idle"
	}
}

// AppendEventJSON appends one event's JSONL record (without the trailing
// newline) to dst and returns the grown slice. The encoding is hand-rolled
// rather than encoding/json: the field set depends on the kind, and the
// stable field order keeps the stream diffable across runs. Exported so the
// durable store can frame the exact bytes WriteJSONL would produce, and so
// the two stay one encoder.
func AppendEventJSON(dst []byte, node string, ev Event) []byte {
	dst = append(dst, `{"t":`...)
	dst = strconv.AppendInt(dst, ev.Time, 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendQuote(dst, node)
	dst = append(dst, `,"event":`...)
	dst = strconv.AppendQuote(dst, ev.Kind.String())
	appendHexID := func(dst []byte, id int64) []byte {
		dst = append(dst, `,"id":"0x`...)
		hex := strconv.FormatInt(id, 16)
		for i := len(hex); i < 3; i++ {
			dst = append(dst, '0')
		}
		for _, c := range hex {
			if c >= 'a' && c <= 'f' {
				c -= 'a' - 'A'
			}
			dst = append(dst, byte(c))
		}
		return append(dst, '"')
	}
	switch ev.Kind {
	case EvArbWon, EvTxStart, EvTxSuccess:
		dst = appendHexID(dst, ev.A)
	case EvArbLost:
		dst = append(dst, `,"at_wire_bit":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
	case EvDetect:
		dst = append(dst, `,"bit":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
	case EvPullStart, EvPullEnd:
		dst = append(dst, `,"bits":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
	case EvError:
		dst = append(dst, `,"kind":`...)
		dst = strconv.AppendQuote(dst, ErrorKindName(ev.A))
		dst = append(dst, `,"role":`...)
		if ev.B != 0 {
			dst = append(dst, `"tx"`...)
		} else {
			dst = append(dst, `"rx"`...)
		}
	case EvTEC, EvREC:
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
		dst = append(dst, `,"prev":`...)
		dst = strconv.AppendInt(dst, ev.B, 10)
	case EvFFSpan:
		dst = append(dst, `,"bits":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
		dst = append(dst, `,"path":`...)
		dst = strconv.AppendQuote(dst, ffPathName(ev.B))
	case EvAlert:
		dst = append(dst, `,"rule":`...)
		dst = strconv.AppendInt(dst, ev.A, 10)
		dst = append(dst, `,"state":`...)
		if ev.B != 0 {
			dst = append(dst, `"fire"`...)
		} else {
			dst = append(dst, `"resolve"`...)
		}
	case EvErrorEnd, EvBusOff, EvRecover:
		// No arguments.
	}
	return append(dst, '}')
}
