package telemetry

import "sync"

// This file is the net-commit half of the fleet aggregation story (DESIGN.md
// §6): per-vehicle registries accumulate counter increments through the
// ordinary atomic emit path, and a NetCommitter periodically folds the *net
// delta since its last commit* into a shared destination registry. The
// pattern is the VSA thresholded net-commit accumulator: the hot path never
// touches the shared aggregate, and the aggregation cost is proportional to
// the number of metric series and the commit rate — not to the event rate.
//
// Contrast with the two designs it replaces:
//
//   - persist-every-op: every emit also updates the aggregate (one extra
//     atomic RMW on a cache line shared across all workers — the ~20% class
//     of overhead the hotstuff-cursor persistence benchmarks measure);
//   - end-of-run merge: cheap, but the aggregate is blind until a vehicle
//     retires, which defeats a live fleet control plane.

// CounterSnapshot is a point-in-time copy of a registry's counter values,
// keyed by the rendered series key (name{labels}).
type CounterSnapshot map[string]int64

// GaugeSnapshot is a point-in-time copy of a registry's gauge values.
type GaugeSnapshot map[string]float64

// SnapshotCounters copies the registry's counter values. The copy is made
// under the registry lock, so no series is missed, but each value is an
// independent atomic load — series mutated concurrently land at whatever
// value they held during the scan.
func (r *Registry) SnapshotCounters() CounterSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(CounterSnapshot, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// SnapshotGauges copies the registry's gauge values.
func (r *Registry) SnapshotGauges() GaugeSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(GaugeSnapshot, len(r.gauges))
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	return out
}

// committedSeries is one source counter paired with its destination
// instrument and the last value committed.
type committedSeries struct {
	src, dst *Counter
	last     int64
}

// NetCommitter folds net counter deltas from a source registry into a
// destination registry. Each source series maps to the destination series
// with the same name and labels, so many sources committing into one
// destination produce a sum across sources (the fleet aggregate).
//
// Commit is idempotent-safe in the only sense that matters: a delta is
// committed exactly once, however many times Commit runs, because the
// committer remembers the last value it pushed per series. Concurrent
// Commits from *different* committers into the same destination are safe
// (destination counters are atomic); a single committer must not be invoked
// concurrently with itself — in the fleet each vehicle's committer is owned
// by exactly one worker.
//
// Gauges and histograms are deliberately not committed: a gauge is a
// point-in-time per-vehicle reading (TEC of *this* defender) with no
// meaningful cross-vehicle sum, and histogram accumulators cannot be
// net-delta'd without subtraction error. Both stay readable per vehicle
// through the fleet's per-vehicle snapshot endpoint.
type NetCommitter struct {
	mu       sync.Mutex
	src, dst *Registry
	series   []committedSeries
	known    int // len(src.counters) at last refresh
	commits  int64
	pushed   int64
}

// NewNetCommitter creates a committer from src into dst. Nothing is
// committed until the first Commit call.
func NewNetCommitter(src, dst *Registry) *NetCommitter {
	return &NetCommitter{src: src, dst: dst}
}

// refresh picks up source series created since the last refresh, resolving
// their destination instruments once so a steady-state Commit is pure atomic
// loads and adds. Called with nc.mu held.
func (nc *NetCommitter) refresh() {
	nc.src.mu.Lock()
	n := len(nc.src.counters)
	if n == nc.known {
		nc.src.mu.Unlock()
		return
	}
	have := make(map[*Counter]bool, len(nc.series))
	for _, s := range nc.series {
		have[s.src] = true
	}
	type pending struct {
		key string
		src *Counter
	}
	var fresh []pending
	for k, c := range nc.src.counters {
		if !have[c] {
			fresh = append(fresh, pending{k, c})
		}
	}
	nc.known = n
	nc.src.mu.Unlock()

	// Resolve destination handles outside the source lock (dst has its own).
	for _, p := range fresh {
		nc.dst.mu.Lock()
		d, ok := nc.dst.counters[p.key]
		if !ok {
			d = &Counter{}
			nc.dst.counters[p.key] = d
		}
		nc.dst.mu.Unlock()
		nc.series = append(nc.series, committedSeries{src: p.src, dst: d})
	}
}

// Commit folds every source series' net delta since the last commit into the
// destination and returns the total delta pushed. A zero return means the
// source was quiet — nothing was written to the destination at all.
func (nc *NetCommitter) Commit() int64 {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.refresh()
	var total int64
	for i := range nc.series {
		s := &nc.series[i]
		cur := s.src.Value()
		if d := cur - s.last; d > 0 {
			s.dst.Add(d)
			s.last = cur
			total += d
		}
	}
	if total > 0 {
		nc.commits++
		nc.pushed += total
	}
	return total
}

// Commits returns how many Commit calls actually wrote to the destination.
func (nc *NetCommitter) Commits() int64 {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.commits
}

// Pushed returns the cumulative counter delta committed to the destination.
func (nc *NetCommitter) Pushed() int64 {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.pushed
}
