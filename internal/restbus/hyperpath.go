package restbus

import (
	"michican/internal/bus"
	"michican/internal/telemetry"
)

var _ bus.Hypering = (*Replayer)(nil)

// The replayer's hyperperiod support composes its controller's (the
// controller's OnTransmit callback is the replayer's own completion hook,
// whose every effect — outstanding flags, latency maxima, transmit counts —
// is folded below, which is what justifies the AllowHyperWithCallbacks
// opt-in in NewReplayer) with the schedule state: per-item deadlines
// relative to the anchor, rolling-counter positions, and outstanding
// instances. Deadlines are absolute bit times, so the snapshot stores them
// relative to now and the delta re-anchors them at the replay's exit time;
// with harmonic periods the relative pattern recurs every hyperperiod, which
// is exactly what makes the fingerprints hit.
type rpHyperState struct {
	ctl   any
	items []rpItemState
	// Seal-time decline stash (not matched).
	enqueued    int
	transmitted int
	misses      int
	maxLat      []int64
}

type rpItemState struct {
	due         int64 // nextDue - now
	seq         byte
	outstanding bool
	enqAge      int64 // now - enqueuedAt while outstanding, else 0
}

type rpHyperDelta struct {
	ctl          any
	items        []rpItemState // exit schedule state, dues relative to exit
	maxCand      []int64       // per-item latency maximum the chain produced, 0 = none
	dEnqueued    int
	dTransmitted int
	nextScanRel  int64
	nextScanInf  bool
}

// HyperFP implements bus.Hypering.
func (r *Replayer) HyperFP(now bus.BitTime, hub *telemetry.Hub) (uint64, bool) {
	h, ok := r.ctl.HyperFP(now, hub)
	if !ok {
		return 0, false
	}
	for i := range r.items {
		item := &r.items[i]
		h = rpMix(h, uint64(item.nextDue-now)<<9|uint64(item.seq)<<1|rpB2u(item.outstanding))
		if item.outstanding {
			h = rpMix(h, uint64(now-item.enqueuedAt))
		}
	}
	return h, true
}

func rpMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

func rpB2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (r *Replayer) itemStates(now bus.BitTime) []rpItemState {
	out := make([]rpItemState, len(r.items))
	for i := range r.items {
		item := &r.items[i]
		out[i] = rpItemState{
			due:         int64(item.nextDue - now),
			seq:         item.seq,
			outstanding: item.outstanding,
		}
		if item.outstanding {
			out[i].enqAge = int64(now - item.enqueuedAt)
		}
	}
	return out
}

// HyperSnap implements bus.Hypering.
func (r *Replayer) HyperSnap(now bus.BitTime) any {
	s := &rpHyperState{
		ctl:         r.ctl.HyperSnap(now),
		items:       r.itemStates(now),
		enqueued:    r.stats.Enqueued,
		transmitted: r.stats.Transmitted,
		misses:      r.stats.DeadlineMisses,
		maxLat:      make([]int64, len(r.items)),
	}
	for i := range r.items {
		s.maxLat[i] = r.items[i].maxLat
	}
	return s
}

// HyperMatch implements bus.Hypering.
func (r *Replayer) HyperMatch(now bus.BitTime, snap any) bool {
	s, ok := snap.(*rpHyperState)
	if !ok || len(s.items) != len(r.items) {
		return false
	}
	if !r.ctl.HyperMatch(now, s.ctl) {
		return false
	}
	for i := range r.items {
		item := &r.items[i]
		w := &s.items[i]
		if int64(item.nextDue-now) != w.due || item.seq != w.seq ||
			item.outstanding != w.outstanding {
			return false
		}
		if item.outstanding && int64(now-item.enqueuedAt) != w.enqAge {
			return false
		}
	}
	return true
}

// HyperSeal implements bus.Hypering.
func (r *Replayer) HyperSeal(now bus.BitTime, snap any, windows int) (any, bool) {
	s, ok := snap.(*rpHyperState)
	if !ok {
		return nil, false
	}
	if r.stats.DeadlineMisses != s.misses {
		// A chain with deadline misses would also need a MissByID fold;
		// misses mean the schedule is saturated and chains are the wrong
		// tool anyway, so decline.
		return nil, false
	}
	dc, ok := r.ctl.HyperSeal(now, s.ctl, windows)
	if !ok {
		return nil, false
	}
	d := &rpHyperDelta{
		ctl:          dc,
		items:        r.itemStates(now),
		maxCand:      make([]int64, len(r.items)),
		dEnqueued:    r.stats.Enqueued - s.enqueued,
		dTransmitted: r.stats.Transmitted - s.transmitted,
	}
	for i := range r.items {
		// Latency maxima are monotone and not entry-matched; record only a
		// maximum the chain itself raised (a pure time difference, so it is
		// shift-invariant across replays).
		if r.items[i].maxLat > s.maxLat[i] {
			d.maxCand[i] = r.items[i].maxLat
		}
	}
	if r.nextScan == neverDue {
		d.nextScanInf = true
	} else {
		d.nextScanRel = int64(r.nextScan - now)
	}
	return d, true
}

// HyperApply implements bus.Hypering.
func (r *Replayer) HyperApply(now bus.BitTime, delta any) {
	d := delta.(*rpHyperDelta)
	r.ctl.HyperApply(now, d.ctl)
	for i := range r.items {
		item := &r.items[i]
		w := &d.items[i]
		item.nextDue = now + bus.BitTime(w.due)
		item.seq = w.seq
		item.outstanding = w.outstanding
		if w.outstanding {
			item.enqueuedAt = now - bus.BitTime(w.enqAge)
		}
		if d.maxCand[i] > item.maxLat {
			item.maxLat = d.maxCand[i]
		}
	}
	r.stats.Enqueued += d.dEnqueued
	r.stats.Transmitted += d.dTransmitted
	if d.nextScanInf {
		r.nextScan = neverDue
	} else {
		r.nextScan = now + bus.BitTime(d.nextScanRel)
	}
}
