package restbus

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var _ bus.Splicing = (*Replayer)(nil)

// SpliceOffer implements bus.Splicing: the controller's offer, declined when
// a schedule deadline is due at this very bit — the enqueue could reorder a
// priority-sorted mailbox's head out from under the offered window, exactly
// as ContendBits declines a due-at-SOF commitment. Deadlines due strictly
// inside the resolved span are fine: Enqueue is a pure mailbox push (the
// in-flight plan is latched and txSuccess removes that specific frame, not
// the head), so SpliceCommit replays them at their recorded bit times before
// the completion callbacks run, matching the exact path's
// scanDue-before-Observe order at every bit including the last.
//
// The one exception is the offered message's own deadline landing in the
// intermission tail: exact stepping clears its outstanding flag at the frame
// end, before such a due fires, while the commit-time drain runs before
// OnTransmit — so the drain would record a deadline miss the exact path does
// not. Those windows are declined.
func (r *Replayer) SpliceOffer(now bus.BitTime) (bus.SpliceWindow, bool) {
	if r.nextScan <= now {
		return bus.SpliceWindow{}, false
	}
	win, ok := r.ctl.SpliceOffer(now)
	if !ok {
		return bus.SpliceWindow{}, false
	}
	if i := r.itemIdx(win.RxView.ID); i >= 0 {
		to := now + bus.BitTime(len(win.Bits)+can.IntermissionBits)
		if r.items[i].nextDue < to {
			return bus.SpliceWindow{}, false
		}
	}
	return win, true
}

// SpliceQuery implements bus.Splicing: the controller's promise alone. A
// deadline due at or inside the window is safe on the receiving side — no
// transmission can complete, so the outstanding flags scanDue reads are
// constant across the window and the enqueues only touch the dormant queue,
// which no windowed bit observes (the same argument ObserveRun's whole-span
// branch rests on).
func (r *Replayer) SpliceQuery(now bus.BitTime, resolved []can.Level, ackIdx int, slot *any) (bool, bool) {
	return r.ctl.SpliceQuery(now, resolved, ackIdx, slot)
}

// SpliceApply implements bus.Splicing: process every deadline the window
// covered at its recorded due time, then fold the controller — identical
// period arithmetic and miss/enqueue stamps to the exact path, in the same
// order. Draining first matters at the window's edge: the controller's
// end-of-intermission transition reads the queue, so a deadline enqueued
// anywhere in the span must already be there — exactly as the exact path's
// scanDue-before-Observe order guarantees bit by bit.
func (r *Replayer) SpliceApply(now bus.BitTime, resolved []can.Level, ackIdx int, rx can.Frame, slot *any) {
	to := now + bus.BitTime(len(resolved))
	for r.nextScan < to {
		r.scanDue(r.nextScan)
	}
	r.ctl.SpliceApply(now, resolved, ackIdx, rx, slot)
}

// SpliceCommit implements bus.Splicing: process every deadline the window
// covered at its recorded due time, then fold the controller. Exact stepping
// runs scanDue before ctl.Observe within each bit, so every in-window due —
// including one at the final bit — lands before txSuccess fires OnTransmit
// there; draining first preserves that order, and with it the deadline-miss
// check against the still-outstanding in-flight message.
func (r *Replayer) SpliceCommit(now bus.BitTime, resolved []can.Level, slot *any) {
	to := now + bus.BitTime(len(resolved))
	for r.nextScan < to {
		r.scanDue(r.nextScan)
	}
	r.ctl.SpliceCommit(now, resolved, slot)
}

// WarmSplice precompiles the transmit plans for the next rounds instances of
// every scheduled message — the frames the rolling sequence counter will
// produce — so steady-state splicing starts on plan-cache hits instead of
// paying a serialization on each first sight. The warm set is what the
// splice tier keys every memo on (window identity = the plan's backing
// array), making this the schedule-driven warm half of the cache story; the
// invalidate half is content ageing through the bounded plan cache.
func (r *Replayer) WarmSplice(rounds int) {
	for i := range r.items {
		item := &r.items[i]
		seq := item.seq
		for k := 0; k < rounds; k++ {
			seq++
			r.plannedFor(item, seq)
		}
	}
}
