package restbus

import (
	"errors"
	"strings"
	"testing"
	"time"
)

const sampleMatrix = `
# vehicle: TestCar bus: body

message 0x260 PAM dlc=8 period=20ms
message 0x100 ECM dlc=4 period=10ms
message 0x300 BCM
`

func TestParseMatrix(t *testing.T) {
	m, err := ParseMatrix(strings.NewReader(sampleMatrix))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vehicle != "TestCar" || m.Bus != "body" {
		t.Errorf("header = %q/%q", m.Vehicle, m.Bus)
	}
	if len(m.Messages) != 3 {
		t.Fatalf("messages = %d", len(m.Messages))
	}
	// Sorted ascending.
	if m.Messages[0].ID != 0x100 || m.Messages[1].ID != 0x260 || m.Messages[2].ID != 0x300 {
		t.Errorf("order = %v %v %v", m.Messages[0].ID, m.Messages[1].ID, m.Messages[2].ID)
	}
	if m.Messages[0].DLC != 4 || m.Messages[0].Period != 10*time.Millisecond || m.Messages[0].Transmitter != "ECM" {
		t.Errorf("message 0x100 = %+v", m.Messages[0])
	}
	// Defaults.
	if m.Messages[2].DLC != 8 || m.Messages[2].Period != 100*time.Millisecond {
		t.Errorf("defaults = %+v", m.Messages[2])
	}
}

func TestParseMatrixTxOverride(t *testing.T) {
	m, err := ParseMatrix(strings.NewReader("message 0x10 NAME tx=REAL dlc=2 period=1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages[0].Transmitter != "REAL" {
		t.Errorf("tx = %q", m.Messages[0].Transmitter)
	}
}

func TestParseMatrixErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"not a message", "frame 0x10 A\n"},
		{"too few fields", "message 0x10\n"},
		{"bad id", "message zz A\n"},
		{"id too large", "message 0x800 A\n"},
		{"duplicate id", "message 0x10 A\nmessage 0x10 B\n"},
		{"bad dlc", "message 0x10 A dlc=9\n"},
		{"negative dlc", "message 0x10 A dlc=-1\n"},
		{"bad period", "message 0x10 A period=fast\n"},
		{"zero period", "message 0x10 A period=0s\n"},
		{"unknown attr", "message 0x10 A color=red\n"},
		{"malformed attr", "message 0x10 A dlc\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseMatrix(strings.NewReader(tt.in)); !errors.Is(err, ErrBadMatrix) {
				t.Errorf("want ErrBadMatrix, got %v", err)
			}
		})
	}
}

func TestFormatParseMatrixRoundTrip(t *testing.T) {
	for _, v := range Vehicles() {
		for _, m := range Buses(v) {
			text := FormatMatrix(m)
			got, err := ParseMatrix(strings.NewReader(text))
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Vehicle, m.Bus, err)
			}
			if got.Vehicle != m.Vehicle || got.Bus != m.Bus {
				t.Errorf("header lost: %q/%q", got.Vehicle, got.Bus)
			}
			if len(got.Messages) != len(m.Messages) {
				t.Fatalf("message count %d != %d", len(got.Messages), len(m.Messages))
			}
			for i := range m.Messages {
				if got.Messages[i] != m.Messages[i] {
					t.Fatalf("message %d: %+v != %+v", i, got.Messages[i], m.Messages[i])
				}
			}
		}
	}
}
