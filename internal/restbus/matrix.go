// Package restbus provides the benign-traffic substrate of the evaluation
// (Sec. V-A): communication matrices in the spirit of OpenDBC for four
// production vehicles with two CAN buses each, and a replayer that injects
// that traffic onto the simulated bus — the paper's PCAN-USB restbus
// simulation.
//
// The paper replays traces captured from real 2016–2019 vehicles of one OEM;
// those traces are proprietary, so the matrices here are synthetic but
// deterministic (seeded per vehicle/bus) with realistic ID ranges, payload
// sizes, and periods. The experiments only depend on which IDs exist, their
// relative priorities, and their periods — exactly what a communication
// matrix defines.
package restbus

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
)

// Message is one periodic CAN message of a communication matrix.
type Message struct {
	// ID is the message identifier (unique per matrix; one transmitter per
	// ID, per the paper's Sec. IV-A assumption).
	ID can.ID
	// Transmitter names the ECU that owns the ID.
	Transmitter string
	// DLC is the payload length (0-8).
	DLC int
	// Period is the transmission period.
	Period time.Duration
}

// Matrix is the communication matrix of one vehicle CAN bus.
type Matrix struct {
	// Vehicle and Bus identify the source (e.g. "Veh. D", "powertrain").
	Vehicle, Bus string
	// Messages are sorted by ascending ID.
	Messages []Message
}

// IDs returns the matrix's identifiers in ascending order.
func (m *Matrix) IDs() []can.ID {
	out := make([]can.ID, len(m.Messages))
	for i, msg := range m.Messages {
		out[i] = msg.ID
	}
	return out
}

// MinPeriod returns the shortest message period — the deadline class of the
// bus's most demanding traffic.
func (m *Matrix) MinPeriod() time.Duration {
	if len(m.Messages) == 0 {
		return 0
	}
	min := m.Messages[0].Period
	for _, msg := range m.Messages[1:] {
		if msg.Period < min {
			min = msg.Period
		}
	}
	return min
}

// Load computes the static bus load b = s_f/f_baud · Σ 1/p_m (Sec. V-E,
// [58]) at the given bus rate, using the per-message frame length with the
// average stuffing overhead the paper assumes (s_f ≈ 125 bits for 8-byte
// frames).
func (m *Matrix) Load(rate bus.Rate) float64 {
	if rate <= 0 {
		return 0
	}
	var load float64
	for _, msg := range m.Messages {
		if msg.Period <= 0 {
			continue
		}
		sf := avgWireLen(msg.DLC)
		perSecond := float64(time.Second) / float64(msg.Period)
		load += sf * perSecond / float64(rate)
	}
	return load
}

// avgWireLen estimates the on-wire frame length including average stuff-bit
// overhead: the nominal 44+8n bits plus ~10% stuffing over the stuffed
// region, landing at the paper's s_f = 125 for n = 8.
func avgWireLen(dlc int) float64 {
	nominal := float64(can.NominalFrameLen(dlc))
	stuffed := float64(can.UnstuffedLen(dlc)) * 0.16
	return nominal + stuffed
}

// hyperLCMCap bounds the usable hyperperiod: past ~4M bit times a schedule
// recurrence is too long for super-splice memos to pay off within a
// realistic simulation horizon.
const hyperLCMCap = int64(1) << 22

// HyperperiodBits returns the schedule hyperperiod of the matrix at the
// given bus rate, in bit times: the least common multiple of the per-message
// periods exactly as the replayer quantizes them (whole bit times, floored
// at one). Zero means no exploitable hyperperiod — an empty matrix, or an
// lcm beyond hyperLCMCap, which happens when the periods are not harmonic.
// The bus's hyperperiod super-splice tier chains splice windows to this
// length so one compiled memo covers one full schedule recurrence.
func (m *Matrix) HyperperiodBits(rate bus.Rate) int64 {
	var h int64
	for _, msg := range m.Messages {
		p := rate.Bits(msg.Period)
		if p < 1 {
			p = 1
		}
		if h == 0 {
			h = p
		} else {
			h = h / gcd64(h, p) * p
		}
		if h > hyperLCMCap {
			return 0
		}
	}
	return h
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// VehicleID selects one of the paper's four test vehicles (Sec. V-A).
type VehicleID int

// The four production vehicles of Sec. V-A.
const (
	// VehA is the luxury mid-size sedan.
	VehA VehicleID = iota + 1
	// VehB is the compact crossover SUV.
	VehB
	// VehC is the full-size crossover SUV.
	VehC
	// VehD is the full-size pickup truck (used for the restbus traffic).
	VehD
)

// String names the vehicle as in the paper.
func (v VehicleID) String() string {
	switch v {
	case VehA:
		return "Veh. A (luxury mid-size sedan)"
	case VehB:
		return "Veh. B (compact crossover SUV)"
	case VehC:
		return "Veh. C (full-size crossover SUV)"
	case VehD:
		return "Veh. D (full-size pickup truck)"
	default:
		return fmt.Sprintf("VehicleID(%d)", int(v))
	}
}

// Vehicles lists all four test vehicles.
func Vehicles() []VehicleID { return []VehicleID{VehA, VehB, VehC, VehD} }

// Buses returns the two communication matrices (powertrain and body CAN) of
// a vehicle. The matrices are deterministic per vehicle.
func Buses(v VehicleID) []*Matrix {
	seed := int64(v) * 7919
	return []*Matrix{
		synthMatrix(v.String(), "powertrain", rand.New(rand.NewSource(seed)), matrixSpec{
			messages:  22 + int(v)*2,
			idLo:      0x0C0,
			idHi:      0x4FF,
			periodsMs: []int{10, 10, 20, 20, 50, 100},
			dlcs:      []int{8, 8, 8, 6, 4},
		}),
		synthMatrix(v.String(), "body", rand.New(rand.NewSource(seed+1)), matrixSpec{
			messages:  16 + int(v),
			idLo:      0x200,
			idHi:      0x7F0,
			periodsMs: []int{100, 100, 200, 500, 1000},
			dlcs:      []int{8, 8, 6, 4, 2},
		}),
	}
}

// matrixSpec parameterizes synthetic matrix generation.
type matrixSpec struct {
	messages   int
	idLo, idHi can.ID
	periodsMs  []int
	dlcs       []int
}

// synthMatrix draws a deterministic matrix from the spec.
func synthMatrix(vehicle, busName string, rng *rand.Rand, spec matrixSpec) *Matrix {
	seen := make(map[can.ID]bool, spec.messages)
	msgs := make([]Message, 0, spec.messages)
	for len(msgs) < spec.messages {
		id := spec.idLo + can.ID(rng.Intn(int(spec.idHi-spec.idLo)+1))
		if seen[id] {
			continue
		}
		seen[id] = true
		msgs = append(msgs, Message{
			ID:          id,
			Transmitter: fmt.Sprintf("ECU-%02d", len(msgs)+1),
			DLC:         spec.dlcs[rng.Intn(len(spec.dlcs))],
			Period:      time.Duration(spec.periodsMs[rng.Intn(len(spec.periodsMs))]) * time.Millisecond,
		})
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })
	return &Matrix{Vehicle: vehicle, Bus: busName, Messages: msgs}
}
