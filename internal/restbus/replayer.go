package restbus

import (
	"math"
	"math/rand"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/telemetry"
)

// ReplayStats summarizes a replayer's delivery performance.
type ReplayStats struct {
	// Enqueued counts message instances scheduled.
	Enqueued int
	// Transmitted counts instances that made it onto the bus.
	Transmitted int
	// DeadlineMisses counts instances whose predecessor was still pending
	// when the next period arrived (the instance is dropped, as a real
	// mailbox overwrite would).
	DeadlineMisses int
	// MissByID breaks deadline misses down per message ID.
	MissByID map[can.ID]int
	// MaxLatencyBits is the worst observed queueing+transmission latency per
	// message ID, in bit times (enqueue to successful transmission) — the
	// empirical counterpart of the sched package's response-time analysis.
	MaxLatencyBits map[can.ID]int64
}

// Replayer injects a matrix's periodic traffic onto the bus through a single
// compliant controller — the paper's PCAN-USB restbus node. It implements
// bus.Node.
type Replayer struct {
	ctl   *controller.Controller
	rate  bus.Rate
	items []schedItem
	// byID maps a message ID to its index in items, for the per-transmission
	// completion callback; the per-bit schedule scan reads item fields only.
	byID map[can.ID]int
	// idIdx is byID flattened over the base-frame ID space (-1 = not
	// scheduled); extended IDs fall back to the map.
	idIdx [1 << can.IDBits]int16
	stats ReplayStats
	// nextScan caches the earliest nextDue across items, so the per-bit
	// Observe path is O(1) until a message actually comes due. Item deadlines
	// only move inside scanDue, which recomputes the cache, so nextScan is
	// always exact — never late.
	nextScan bus.BitTime
}

type schedItem struct {
	msg        Message
	periodBits int64
	nextDue    bus.BitTime
	seq        byte
	// outstanding is true while an instance of this message awaits
	// transmission; enqueuedAt is the bit time it was queued.
	outstanding bool
	enqueuedAt  bus.BitTime
	// maxLat accumulates the worst observed latency; Stats materializes the
	// per-ID map from it, keeping the per-transmission callback map-free.
	maxLat int64
	// bufs holds the message's 256 payload instances (the rolling counter is
	// the only varying byte), pre-built so the schedule scan enqueues without
	// allocating. The slices are immutable once built: the controller's plan
	// cache and receivers key off their identity.
	bufs [][]byte
	// planned holds the pre-serialized enqueue handle per rolling-counter
	// value, filled lazily (or by WarmSplice) so the steady-state schedule
	// scan enqueues by direct pointer — no validation, cloning, or plan-cache
	// probing per instance.
	planned []controller.Planned
}

var (
	_ bus.Node      = (*Replayer)(nil)
	_ bus.Quiescent = (*Replayer)(nil)
)

// NewReplayer creates a restbus node for the matrix at the given bus rate.
// The rng, when non-nil, staggers the initial phase of each message (real
// ECUs do not boot in phase); a nil rng starts everything at time zero.
func NewReplayer(name string, m *Matrix, rate bus.Rate, rng *rand.Rand) *Replayer {
	r := &Replayer{
		rate:  rate,
		items: make([]schedItem, 0, len(m.Messages)),
		byID:  make(map[can.ID]int, len(m.Messages)),
	}
	r.ctl = controller.New(controller.Config{
		Name:                name,
		AutoRecover:         true,
		SortQueueByPriority: true,
		OnTransmit: func(t bus.BitTime, f can.Frame) {
			r.stats.Transmitted++
			i := r.itemIdx(f.ID)
			if i < 0 {
				return
			}
			item := &r.items[i]
			if item.outstanding {
				if lat := int64(t - item.enqueuedAt + 1); lat > item.maxLat {
					item.maxLat = lat
				}
			}
			item.outstanding = false
		},
	})
	// The OnTransmit hook above is the replayer's own completion accounting,
	// and the replayer's hyper delta folds all of it (see hyperpath.go), so
	// the controller may join hyperperiod chains despite the callback.
	r.ctl.AllowHyperWithCallbacks()
	for i := range r.idIdx {
		r.idIdx[i] = -1
	}
	for _, msg := range m.Messages {
		period := rate.Bits(msg.Period)
		if period < 1 {
			period = 1
		}
		item := schedItem{
			msg: msg, periodBits: period,
			bufs: seqBufs(msg.DLC), planned: make([]controller.Planned, 256),
		}
		if rng != nil {
			item.nextDue = bus.BitTime(rng.Int63n(period))
		}
		if int(msg.ID) < len(r.idIdx) {
			r.idIdx[msg.ID] = int16(len(r.items))
		}
		r.byID[msg.ID] = len(r.items)
		r.items = append(r.items, item)
	}
	r.nextScan = neverDue
	for i := range r.items {
		if r.items[i].nextDue < r.nextScan {
			r.nextScan = r.items[i].nextDue
		}
	}
	return r
}

// neverDue is the nextScan value of an empty matrix.
const neverDue = bus.BitTime(math.MaxInt64)

// itemIdx returns the items index scheduled for id, or -1.
func (r *Replayer) itemIdx(id can.ID) int {
	if int(id) < len(r.idIdx) {
		return int(r.idIdx[id])
	}
	if i, ok := r.byID[id]; ok {
		return i
	}
	return -1
}

// plannedFor returns the pre-serialized enqueue handle for the item's given
// rolling-counter value, building it on first sight. Matrix messages are
// classical base frames, so planning cannot fail; the zero handle is returned
// only for a malformed message, which the enqueue path then skips exactly as
// Enqueue would have rejected it.
func (r *Replayer) plannedFor(item *schedItem, seq byte) controller.Planned {
	if pl := item.planned[seq]; pl.Valid() {
		return pl
	}
	pl, err := r.ctl.Plan(can.Frame{ID: item.msg.ID, Data: item.bufs[seq]})
	if err != nil {
		return controller.Planned{}
	}
	item.planned[seq] = pl
	return pl
}

// seqBufs pre-builds one payload per rolling-counter value, sliced out of a
// single allocation with full capacity caps so no later append can alias.
func seqBufs(dlc int) [][]byte {
	bufs := make([][]byte, 256)
	base := make([]byte, 256*dlc)
	for s := range bufs {
		buf := base[s*dlc : (s+1)*dlc : (s+1)*dlc]
		if dlc > 0 {
			buf[0] = byte(s)
		}
		bufs[s] = buf
	}
	return bufs
}

// Controller exposes the replayer's protocol controller.
func (r *Replayer) Controller() *controller.Controller { return r.ctl }

// SharePlans wires a fleet-shared compiled-plan cache into the replayer's
// controller: every plan the schedule compiles (lazily or via WarmSplice)
// resolves through the source, so N replayers stamped from the same matrix
// share one immutable copy of each serialization and its pre-resolved splice
// span. Call before the replayer produces traffic; behavior is bit-identical
// with or without sharing.
func (r *Replayer) SharePlans(src *controller.PlanSource) { r.ctl.SetPlanSource(src) }

// SetTelemetry wires the replayer's controller to a telemetry hub.
func (r *Replayer) SetTelemetry(hub *telemetry.Hub) { r.ctl.SetTelemetry(hub) }

// Stats returns a copy of the delivery statistics, materializing the per-ID
// latency map from the per-item accumulators.
func (r *Replayer) Stats() ReplayStats {
	st := r.stats
	for i := range r.items {
		item := &r.items[i]
		if item.maxLat == 0 {
			continue
		}
		if st.MaxLatencyBits == nil {
			st.MaxLatencyBits = make(map[can.ID]int64, len(r.items))
		}
		st.MaxLatencyBits[item.msg.ID] = item.maxLat
	}
	return st
}

// Drive implements bus.Node.
func (r *Replayer) Drive(t bus.BitTime) can.Level { return r.ctl.Drive(t) }

// Observe implements bus.Node: due messages are enqueued, then the
// controller advances one bit. The item scan is skipped entirely until the
// cached earliest deadline arrives — behaviorally identical to scanning every
// bit, because no item can come due before nextScan.
func (r *Replayer) Observe(t bus.BitTime, level can.Level) {
	if t >= r.nextScan {
		r.scanDue(t)
	}
	r.ctl.Observe(t, level)
}

// scanDue processes every due item and recomputes the nextScan cache.
func (r *Replayer) scanDue(t bus.BitTime) {
	next := neverDue
	for i := range r.items {
		item := &r.items[i]
		if t >= item.nextDue {
			item.nextDue = t + bus.BitTime(item.periodBits)
			if item.outstanding {
				// The previous instance never got out: deadline missed; the
				// fresh instance replaces it logically (we keep the queued
				// frame — its payload is stale but its slot is reused).
				r.stats.DeadlineMisses++
				if r.stats.MissByID == nil {
					r.stats.MissByID = make(map[can.ID]int)
				}
				r.stats.MissByID[item.msg.ID]++
			} else {
				item.seq++
				if pl := r.plannedFor(item, item.seq); pl.Valid() {
					if err := r.ctl.EnqueuePlanned(pl); err == nil {
						r.stats.Enqueued++
						item.outstanding = true
						item.enqueuedAt = t
					}
				}
			}
		}
		if item.nextDue < next {
			next = item.nextDue
		}
	}
	r.nextScan = next
}

// QuiescentUntil implements bus.Quiescent: the replayer's only
// spontaneous activity is enqueueing the next due message, so its horizon is
// the cached earliest nextDue, clamped by the controller's own horizon. The
// due bit itself is exact-stepped, which is where Observe enqueues the
// instance — exactly as in per-bit mode.
func (r *Replayer) QuiescentUntil(now bus.BitTime) bus.BitTime {
	h := r.ctl.QuiescentUntil(now)
	if r.nextScan < h {
		h = r.nextScan
	}
	if h <= now {
		return now
	}
	return h
}

// SkipIdle implements bus.Quiescent: schedule state is absolute (nextDue bit
// times), so only the wrapped controller has per-bit state to advance.
func (r *Replayer) SkipIdle(from, to bus.BitTime) {
	r.ctl.SkipIdle(from, to)
}

// MissRate returns the fraction of scheduled instances that missed their
// deadline.
func (r *Replayer) MissRate() float64 {
	total := r.stats.Enqueued + r.stats.DeadlineMisses
	if total == 0 {
		return 0
	}
	return float64(r.stats.DeadlineMisses) / float64(total)
}

// PeriodOf returns the configured period for an ID, or zero when the matrix
// does not carry it.
func (r *Replayer) PeriodOf(id can.ID) time.Duration {
	for _, item := range r.items {
		if item.msg.ID == id {
			return item.msg.Period
		}
	}
	return 0
}
