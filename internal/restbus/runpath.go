package restbus

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var (
	_ bus.Transmitting     = (*Replayer)(nil)
	_ bus.RunObserver      = (*Replayer)(nil)
	_ bus.ContendCommitter = (*Replayer)(nil)
)

// CommittedBits implements bus.Transmitting: the controller's commitment,
// unclamped. A controller mid-frame never consults its transmit queue before
// the bit after the frame's last EOF bit, so a scheduled deadline inside the
// span does not alter any drive decision; ObserveRun interleaves every due
// item at its exact virtual bit, before the controller consumes that bit.
// (Deadlines due while the controller is *outside* a frame keep their
// exact-step treatment through QuiescentUntil and the PassiveRun clamp
// below.)
func (r *Replayer) CommittedBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	return r.ctl.CommittedBits(now)
}

// FrameBit implements bus.Transmitting.
func (r *Replayer) FrameBit() int { return r.ctl.FrameBit() }

// ContendBits implements bus.ContendCommitter: the controller's contested
// commitment. Mid-frame and error-signal phases never read the transmit
// queue, so deadlines inside the span defer to ObserveRun as above. The one
// commitment that does read the queue is a pending SOF (the head frame is
// serialized at the SOF bit itself), so it declines when a deadline is due at
// this very bit — the enqueue could reorder a priority-sorted mailbox's head
// out from under the published stream; the SOF is exact-stepped instead, as
// on the per-bit path.
func (r *Replayer) ContendBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	if !r.ctl.InFrame() && r.nextScan <= now {
		return nil, now
	}
	return r.ctl.ContendBits(now)
}

// ContendFrameBit implements bus.ContendCommitter.
func (r *Replayer) ContendFrameBit() int { return r.ctl.ContendFrameBit() }

// PassiveRun implements bus.RunObserver: the controller's answer, clamped
// below the earliest deadline only when the controller is at a point where an
// enqueue changes its drive decisions (idle, intermission, suspend — the
// phases that poll the queue for a SOF). Inside a frame or an error signal
// the queue is dormant and the due item is instead processed by ObserveRun at
// its exact virtual bit.
func (r *Replayer) PassiveRun(now bus.BitTime, frameBit int, levels []can.Level) int {
	n := len(levels)
	if !r.ctl.InFrame() {
		if m := int64(r.nextScan - now); m < int64(n) {
			if m <= 0 {
				return 0
			}
			n = int(m)
		}
	}
	if k := r.ctl.PassiveRun(now, frameBit, levels[:n]); k < n {
		n = k
	}
	return n
}

// ObserveRun implements bus.RunObserver: the span is delivered to the
// controller in chunks split at every deadline that falls inside it, so each
// due item is processed at its exact virtual bit relative to the controller —
// after the bits before it, before the due bit itself. The ordering matters
// two ways: a frame whose final EOF bit lies in the span completes mid-span
// (OnTransmit clears the outstanding flag scanDue checks — a due bit earlier
// in the span must still see it set and record the deadline miss), and a
// frameBit-0 span begins a frame whose plan was chosen from the queue head at
// the SOF bit (dues strictly inside the span can only touch the queue, which
// the controller does not read again before its next exact-stepped bit).
//
// Splitting is skipped when the controller cannot complete a transmission
// within the span: then OnTransmit cannot fire, the outstanding flags scanDue
// reads are constant across the span, and the enqueues only touch the
// transmit queue — which no bit of the span observes (the bus clamps every
// queue-visible idle/intermission proposal at nextScan via PassiveRun and
// QuiescentUntil above). Delivering the span whole keeps its backing-array
// identity intact for the controller's span memos, then each due is processed
// at its recorded time with identical period arithmetic and stamps.
func (r *Replayer) ObserveRun(from bus.BitTime, levels []can.Level) {
	to := from + bus.BitTime(len(levels))
	if r.nextScan < to && !r.ctl.TxCompleteWithin(len(levels)) {
		r.ctl.ObserveRun(from, levels)
		for r.nextScan < to {
			r.scanDue(r.nextScan)
		}
		return
	}
	for r.nextScan < to {
		due := r.nextScan
		if due > from {
			r.ctl.ObserveRun(from, levels[:due-from])
			levels = levels[due-from:]
			from = due
		}
		r.scanDue(due)
	}
	if len(levels) > 0 {
		r.ctl.ObserveRun(from, levels)
	}
}
