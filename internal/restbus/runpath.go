package restbus

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var (
	_ bus.Transmitting = (*Replayer)(nil)
	_ bus.RunObserver  = (*Replayer)(nil)
)

// CommittedBits implements bus.Transmitting: the controller's commitment,
// clamped below the earliest scheduled deadline. An enqueue never alters the
// in-flight plan's bits, but the due item must be queued (and any deadline
// miss recorded) at its exact bit, so that bit is left to exact stepping.
func (r *Replayer) CommittedBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	bits, h := r.ctl.CommittedBits(now)
	if h <= now || len(bits) == 0 {
		return nil, now
	}
	if r.nextScan < h {
		if r.nextScan <= now {
			return nil, now
		}
		h = r.nextScan
		bits = bits[:int64(h-now)]
	}
	return bits, h
}

// FrameBit implements bus.Transmitting.
func (r *Replayer) FrameBit() int { return r.ctl.FrameBit() }

// PassiveRun implements bus.RunObserver: the controller's answer, clamped
// below the earliest deadline — the enqueue there changes the controller's
// mailbox and hence its drive decisions, so that bit must be exact-stepped.
func (r *Replayer) PassiveRun(now bus.BitTime, frameBit int, levels []can.Level) int {
	n := len(levels)
	if m := int64(r.nextScan - now); m < int64(n) {
		if m <= 0 {
			return 0
		}
		n = int(m)
	}
	if k := r.ctl.PassiveRun(now, frameBit, levels[:n]); k < n {
		n = k
	}
	return n
}

// ObserveRun implements bus.RunObserver. Both PassiveRun and CommittedBits
// clamp every span inside [now, nextScan), so no item can come due in here
// and only the controller advances.
func (r *Replayer) ObserveRun(from bus.BitTime, levels []can.Level) {
	r.ctl.ObserveRun(from, levels)
}
