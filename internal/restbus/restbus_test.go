package restbus

import (
	"math/rand"
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
)

func TestBusesDeterministic(t *testing.T) {
	a := Buses(VehD)
	b := Buses(VehD)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("each vehicle has two buses, got %d/%d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Messages) != len(b[i].Messages) {
			t.Fatalf("bus %d not deterministic", i)
		}
		for j := range a[i].Messages {
			if a[i].Messages[j] != b[i].Messages[j] {
				t.Fatalf("bus %d message %d differs across generations", i, j)
			}
		}
	}
}

func TestMatricesWellFormed(t *testing.T) {
	for _, v := range Vehicles() {
		for _, m := range Buses(v) {
			seen := make(map[can.ID]bool)
			lastID := can.ID(0)
			for i, msg := range m.Messages {
				if !msg.ID.Valid() {
					t.Errorf("%s/%s: invalid ID %v", m.Vehicle, m.Bus, msg.ID)
				}
				if seen[msg.ID] {
					t.Errorf("%s/%s: duplicate ID %v", m.Vehicle, m.Bus, msg.ID)
				}
				seen[msg.ID] = true
				if i > 0 && msg.ID < lastID {
					t.Errorf("%s/%s: not sorted", m.Vehicle, m.Bus)
				}
				lastID = msg.ID
				if msg.DLC < 0 || msg.DLC > 8 {
					t.Errorf("%s/%s: DLC %d", m.Vehicle, m.Bus, msg.DLC)
				}
				if msg.Period <= 0 {
					t.Errorf("%s/%s: period %v", m.Vehicle, m.Bus, msg.Period)
				}
				if msg.Transmitter == "" {
					t.Errorf("%s/%s: missing transmitter", m.Vehicle, m.Bus)
				}
			}
		}
	}
}

func TestVehiclesDiffer(t *testing.T) {
	a := Buses(VehA)[0]
	d := Buses(VehD)[0]
	same := len(a.Messages) == len(d.Messages)
	if same {
		for i := range a.Messages {
			if a.Messages[i].ID != d.Messages[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different vehicles must have different matrices")
	}
}

func TestMatrixLoadRealistic(t *testing.T) {
	// Sec. V-E cites 40% observed bus load in real vehicles and 80% as the
	// recommended ceiling. On a 500 kbit/s powertrain bus our matrices must
	// land in a plausible band.
	for _, v := range Vehicles() {
		m := Buses(v)[0]
		load := m.Load(bus.Rate500k)
		if load < 0.10 || load > 0.80 {
			t.Errorf("%s powertrain load at 500k = %.1f%%, want within [10%%, 80%%]",
				v, load*100)
		}
	}
}

func TestMatrixLoadScalesWithRate(t *testing.T) {
	m := Buses(VehD)[0]
	if m.Load(bus.Rate250k) <= m.Load(bus.Rate500k) {
		t.Error("halving the bus speed must increase the load")
	}
	if m.Load(0) != 0 {
		t.Error("zero rate must not divide")
	}
}

func TestMinPeriod(t *testing.T) {
	m := &Matrix{Messages: []Message{
		{ID: 1, Period: 100 * time.Millisecond},
		{ID: 2, Period: 10 * time.Millisecond},
	}}
	if m.MinPeriod() != 10*time.Millisecond {
		t.Errorf("MinPeriod = %v", m.MinPeriod())
	}
	empty := &Matrix{}
	if empty.MinPeriod() != 0 {
		t.Error("empty matrix MinPeriod should be 0")
	}
}

func TestReplayerDeliversTraffic(t *testing.T) {
	m := &Matrix{Vehicle: "test", Bus: "t", Messages: []Message{
		{ID: 0x100, Transmitter: "E1", DLC: 8, Period: 10 * time.Millisecond},
		{ID: 0x200, Transmitter: "E2", DLC: 4, Period: 20 * time.Millisecond},
	}}
	b := bus.New(bus.Rate500k)
	r := NewReplayer("restbus", m, bus.Rate500k, nil)
	b.Attach(r)
	// An acknowledging peer so transmissions complete.
	peer := NewReplayer("peer", &Matrix{}, bus.Rate500k, nil)
	b.Attach(peer)

	b.RunFor(100 * time.Millisecond)
	st := r.Stats()
	// 100ms: ~10 instances of 0x100 and ~5 of 0x200.
	if st.Transmitted < 13 || st.Transmitted > 17 {
		t.Errorf("transmitted %d frames, want ≈15", st.Transmitted)
	}
	if st.DeadlineMisses != 0 {
		t.Errorf("unexpected deadline misses on an idle bus: %d", st.DeadlineMisses)
	}
	if r.MissRate() != 0 {
		t.Errorf("miss rate %f", r.MissRate())
	}
}

func TestReplayerDeadlineMissesUnderDoS(t *testing.T) {
	// A traditional DoS flood starves the restbus: deadline misses must
	// accumulate.
	m := &Matrix{Vehicle: "test", Bus: "t", Messages: []Message{
		{ID: 0x100, Transmitter: "E1", DLC: 8, Period: 10 * time.Millisecond},
	}}
	b := bus.New(bus.Rate500k)
	r := NewReplayer("restbus", m, bus.Rate500k, nil)
	b.Attach(r)
	b.Attach(attack.NewTraditionalDoS("flood"))

	b.RunFor(200 * time.Millisecond)
	if r.Stats().DeadlineMisses == 0 {
		t.Error("DoS flood should cause deadline misses")
	}
	if r.MissRate() <= 0.3 {
		t.Errorf("miss rate %f under continuous flood, want > 0.3", r.MissRate())
	}
}

func TestReplayerStaggeredStart(t *testing.T) {
	m := Buses(VehD)[0]
	b := bus.New(bus.Rate500k)
	r := NewReplayer("restbus", m, bus.Rate500k, rand.New(rand.NewSource(1)))
	b.Attach(r)
	peer := NewReplayer("peer", &Matrix{}, bus.Rate500k, nil)
	b.Attach(peer)
	b.RunFor(200 * time.Millisecond)
	st := r.Stats()
	if st.Transmitted == 0 {
		t.Fatal("no traffic delivered")
	}
	if r.MissRate() > 0.05 {
		t.Errorf("healthy bus miss rate %f, want ~0", r.MissRate())
	}
}

func TestPeriodOf(t *testing.T) {
	m := &Matrix{Messages: []Message{{ID: 0x42, DLC: 1, Period: time.Second}}}
	r := NewReplayer("r", m, bus.Rate500k, nil)
	if r.PeriodOf(0x42) != time.Second {
		t.Error("PeriodOf known ID wrong")
	}
	if r.PeriodOf(0x43) != 0 {
		t.Error("PeriodOf unknown ID must be 0")
	}
}
