package restbus

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"michican/internal/can"
)

// Text format for communication matrices, in the spirit of the OpenDBC
// files the paper consults (Sec. IV-A, V-F). One message per line:
//
//	# vehicle: 2017 Pacifica bus: body
//	message 0x260 PAM dlc=8 period=20ms
//
// The third field is the transmitting ECU (overridable with tx=); dlc
// defaults to 8 and period to 100ms. Comments (#) and blank lines are
// ignored; the header comment is optional.
//
// ErrBadMatrix indicates a syntax or semantic error in a matrix file.
var ErrBadMatrix = errors.New("restbus: bad matrix file")

// ParseMatrix reads a communication matrix in the text format.
func ParseMatrix(r io.Reader) (*Matrix, error) {
	m := &Matrix{}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	seen := make(map[can.ID]bool)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseHeaderComment(m, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "message" {
			return nil, fmt.Errorf("%w: line %d: want \"message <id> <name> ...\"", ErrBadMatrix, lineNo)
		}
		idv, err := strconv.ParseUint(fields[1], 0, 16)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: id: %v", ErrBadMatrix, lineNo, err)
		}
		id := can.ID(idv)
		if !id.Valid() {
			return nil, fmt.Errorf("%w: line %d: id %#x exceeds 11 bits", ErrBadMatrix, lineNo, idv)
		}
		if seen[id] {
			return nil, fmt.Errorf("%w: line %d: duplicate id %s", ErrBadMatrix, lineNo, id)
		}
		seen[id] = true
		msg := Message{ID: id, Transmitter: fields[2], DLC: 8, Period: 100 * time.Millisecond}
		for _, attr := range fields[3:] {
			key, value, ok := strings.Cut(attr, "=")
			if !ok {
				return nil, fmt.Errorf("%w: line %d: attribute %q", ErrBadMatrix, lineNo, attr)
			}
			switch key {
			case "dlc":
				dlc, err := strconv.Atoi(value)
				if err != nil || dlc < 0 || dlc > can.MaxDataLen {
					return nil, fmt.Errorf("%w: line %d: dlc %q", ErrBadMatrix, lineNo, value)
				}
				msg.DLC = dlc
			case "period":
				p, err := time.ParseDuration(value)
				if err != nil || p <= 0 {
					return nil, fmt.Errorf("%w: line %d: period %q", ErrBadMatrix, lineNo, value)
				}
				msg.Period = p
			case "tx":
				msg.Transmitter = value
			default:
				return nil, fmt.Errorf("%w: line %d: unknown attribute %q", ErrBadMatrix, lineNo, key)
			}
		}
		m.Messages = append(m.Messages, msg)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(m.Messages) == 0 {
		return nil, fmt.Errorf("%w: no messages", ErrBadMatrix)
	}
	// Keep ascending ID order (Matrix invariant).
	for i := 1; i < len(m.Messages); i++ {
		for j := i; j > 0 && m.Messages[j-1].ID > m.Messages[j].ID; j-- {
			m.Messages[j-1], m.Messages[j] = m.Messages[j], m.Messages[j-1]
		}
	}
	return m, nil
}

// parseHeaderComment extracts "# vehicle: X bus: Y" metadata when present.
func parseHeaderComment(m *Matrix, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	if v, rest, ok := strings.Cut(body, "bus:"); ok {
		if name, ok := strings.CutPrefix(strings.TrimSpace(v), "vehicle:"); ok {
			m.Vehicle = strings.TrimSpace(name)
		}
		m.Bus = strings.TrimSpace(rest)
	} else if name, ok := strings.CutPrefix(body, "vehicle:"); ok {
		m.Vehicle = strings.TrimSpace(name)
	}
}

// FormatMatrix renders a matrix in the text format; ParseMatrix inverts it.
func FormatMatrix(m *Matrix) string {
	var b strings.Builder
	if m.Vehicle != "" || m.Bus != "" {
		fmt.Fprintf(&b, "# vehicle: %s bus: %s\n", m.Vehicle, m.Bus)
	}
	for _, msg := range m.Messages {
		fmt.Fprintf(&b, "message %s %s dlc=%d period=%s\n",
			msg.ID, msg.Transmitter, msg.DLC, msg.Period)
	}
	return b.String()
}
