// Package stats provides the small statistical toolkit the evaluation
// harness needs: streaming mean/variance (Welford), min/max, percentiles,
// and fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming summary statistics over float64 samples
// using Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Summary is a value snapshot of an Accumulator.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
}

// String renders the summary in the compact n/μ/σ/min/max form used by the
// experiment tables and the telemetry text exporter.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d μ=%.4g σ=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Summarize snapshots the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), Min: a.Min(), Max: a.Max()}
}

// Merge combines two accumulators into one covering both sample sets, using
// the parallel variance formula of Chan et al. Useful for fan-out/fan-in
// experiment workers.
func Merge(a, b Accumulator) Accumulator {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	out := Accumulator{
		n:    n,
		mean: a.mean + delta*float64(b.n)/float64(n),
		m2:   a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n),
		min:  a.min,
		max:  a.max,
	}
	if b.min < out.min {
		out.min = b.min
	}
	if b.max > out.max {
		out.max = b.max
	}
	return out
}

// ErrNoSamples indicates a percentile query on an empty data set.
var ErrNoSamples = errors.New("stats: no samples")

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the samples using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); samples outside
// the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int
	Underflow int
	Overflow  int
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, errors.New("stats: histogram needs n > 0 and hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) {
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		n += b
	}
	return n
}
