package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %f, want 5", a.Mean())
	}
	// Population σ of this classic data set is 2; sample σ = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %f, want %f", a.StdDev(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %f/%f", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("empty accumulator must read zero")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(42)
	if a.Mean() != 42 || a.StdDev() != 0 || a.Min() != 42 || a.Max() != 42 {
		t.Error("single-sample statistics wrong")
	}
}

// TestWelfordMatchesNaive: the streaming computation agrees with the
// two-pass formula.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%50 + 2
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			a.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		variance := varSum / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(3)
	s := a.Summarize()
	if s.N != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	got := a.Summarize().String()
	want := "n=8 μ=5 σ=2.138 min=2 max=9"
	if got != want {
		t.Errorf("Summary.String() = %q, want %q", got, want)
	}
	var empty Accumulator
	if got := empty.Summarize().String(); got != "n=0 μ=0 σ=0 min=0 max=0" {
		t.Errorf("empty Summary.String() = %q", got)
	}
}

// TestPercentileDistribution checks the interpolated percentiles against the
// exact quantile function of a known distribution: for uniform samples
// 0..n-1, Pp must equal p/100·(n-1) exactly (every rank is populated).
func TestPercentileDistribution(t *testing.T) {
	const n = 101
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 95, 99, 100} {
		got, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		want := p / 100 * (n - 1)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P%g = %f, want %f", p, got, want)
		}
	}
	// Interpolation between ranks: median of {1,2,3,4} is 2.5.
	if got, _ := Percentile([]float64{4, 1, 3, 2}, 50); got != 2.5 {
		t.Errorf("interpolated median = %f, want 2.5", got)
	}
	if got, _ := Percentile([]float64{4, 1, 3, 2}, 90); math.Abs(got-3.7) > 1e-9 {
		t.Errorf("P90 of {1..4} = %f, want 3.7", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {200, 5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("P%.0f = %f, want %f", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrNoSamples) {
		t.Error("empty percentile must fail")
	}
	if got, _ := Percentile([]float64{7}, 50); got != 7 {
		t.Error("single-sample percentile")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	if _, err := Percentile(in, 50); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole Accumulator
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 40; i++ {
		x := rng.NormFloat64() * 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	m := Merge(a, b)
	if m.N() != whole.N() {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("mean %f vs %f", m.Mean(), whole.Mean())
	}
	if math.Abs(m.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("variance %f vs %f", m.Variance(), whole.Variance())
	}
	if m.Min() != whole.Min() || m.Max() != whole.Max() {
		t.Errorf("min/max %f/%f vs %f/%f", m.Min(), m.Max(), whole.Min(), whole.Max())
	}
	// Identity with the empty accumulator.
	var empty Accumulator
	if got := Merge(empty, a); got.N() != a.N() || got.Mean() != a.Mean() {
		t.Error("merge with empty left operand")
	}
	if got := Merge(a, empty); got.N() != a.N() || got.Mean() != a.Mean() {
		t.Error("merge with empty right operand")
	}
}
