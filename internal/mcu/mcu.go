// Package mcu models the microcontroller facilities MichiCAN depends on
// (Sec. II-C, IV-B, IV-C): pin multiplexing between the integrated CAN
// controller and GPIO, the per-bit timer interrupt with hard synchronization
// at SOF, and a cycle-accounting meter that stands in for the paper's
// external ESP8266 cycle counter when evaluating CPU utilization (Sec. V-D).
package mcu

import (
	"fmt"

	"michican/internal/can"
)

// PinMux models the peripheral I/O controller's multiplexing of the
// CAN_RX/CAN_TX lines (Fig. 4a). CAN_RX is always readable once the defense
// boots; CAN_TX is multiplexed to GPIO only for the duration of a
// counterattack and released immediately afterwards, because holding the pin
// would either destroy traffic (held low) or break ACK generation (held
// high) — Sec. IV-B.
type PinMux struct {
	rx        can.Level
	txEnabled bool
	txLevel   can.Level

	// TxEnableCount counts EnableTX calls (counterattacks started).
	TxEnableCount int
}

// NewPinMux returns a mux with CAN_TX released and the bus idle.
func NewPinMux() *PinMux {
	return &PinMux{rx: can.Recessive, txLevel: can.Recessive}
}

// LatchRX stores the current bus level on the CAN_RX line. The simulation
// harness calls this once per bit before the defense's handler runs.
func (p *PinMux) LatchRX(level can.Level) { p.rx = level }

// ReadRX reads the CAN_RX register directly (Algorithm 1, line 2).
func (p *PinMux) ReadRX() can.Level { return p.rx }

// EnableTX multiplexes CAN_TX to GPIO for a counterattack.
func (p *PinMux) EnableTX() {
	if !p.txEnabled {
		p.txEnabled = true
		p.TxEnableCount++
	}
	p.txLevel = can.Recessive
}

// DisableTX releases CAN_TX back to the CAN controller; the pin stops
// driving the bus.
func (p *PinMux) DisableTX() {
	p.txEnabled = false
	p.txLevel = can.Recessive
}

// PullLow drives CAN_TX dominant. It has no effect unless EnableTX was
// called first (the PIO controller owns the pin otherwise).
func (p *PinMux) PullLow() {
	if p.txEnabled {
		p.txLevel = can.Dominant
	}
}

// TXEnabled reports whether CAN_TX is multiplexed to GPIO.
func (p *PinMux) TXEnabled() bool { return p.txEnabled }

// DriveLevel returns the level the mux currently puts on the bus: dominant
// only while a counterattack is pulling the pin low.
func (p *PinMux) DriveLevel() can.Level {
	if p.txEnabled && p.txLevel == can.Dominant {
		return can.Dominant
	}
	return can.Recessive
}

// Op is a meterable operation inside the defense's interrupt handler.
type Op uint8

// Operations charged by the defense, mirroring Algorithm 1's structure.
const (
	// OpISREnterExit is the fixed interrupt entry/exit overhead; the paper
	// singles this out as unusually expensive on the Arduino Due (Sec. VI-B).
	OpISREnterExit Op = iota + 1
	// OpReadRX is the direct register read of CAN_RX (line 2).
	OpReadRX
	// OpStuffTrack is the stuff-bit bookkeeping (lines 6-15).
	OpStuffTrack
	// OpFrameStore appends the destuffed bit to the frame array (line 10).
	OpFrameStore
	// OpFSMStep is one detection-FSM transition (line 12).
	OpFSMStep
	// OpCounterattack covers mux enable/disable and pulling the pin
	// (lines 16-23).
	OpCounterattack
	// OpIdleTrack is the SOF-hunting bookkeeping during bus idle
	// (lines 24-28).
	OpIdleTrack
	// OpFrameReset reinitializes counters and the FSM at SOF (lines 29-31);
	// its constant cost is what the fudge factor compensates (Sec. IV-C).
	OpFrameReset
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpISREnterExit:
		return "isr"
	case OpReadRX:
		return "read-rx"
	case OpStuffTrack:
		return "stuff-track"
	case OpFrameStore:
		return "frame-store"
	case OpFSMStep:
		return "fsm-step"
	case OpCounterattack:
		return "counterattack"
	case OpIdleTrack:
		return "idle-track"
	case OpFrameReset:
		return "frame-reset"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Meter accumulates the cycles consumed by the defense on a given MCU,
// playing the role of the paper's ESP8266 external timer.
type Meter struct {
	profile Profile
	cycles  int64
	perBit  int64
	// histogram of per-invocation handler cost, for max/mean reporting.
	invocations int64
	maxPerBit   int64
	sumPerBit   int64
	// Per-class accounting: "active" invocations process a frame bit,
	// "idle" invocations only hunt for SOF. The paper's Sec. V-D reports
	// idle load, active load, and their average as the combined load.
	idleCycles, idleInv     int64
	activeCycles, activeInv int64
}

// NewMeter creates a meter for the given MCU profile.
func NewMeter(p Profile) *Meter {
	return &Meter{profile: p}
}

// Charge adds the cycle cost of one operation to the running handler
// invocation.
func (m *Meter) Charge(op Op) {
	m.perBit += m.profile.Cost(op)
}

// ChargeFSMStep adds the cost of one FSM transition for a machine of the
// given state count; bigger FSMs cost more cycles per step (the paper's
// "CPU load depends on FSM complexity").
func (m *Meter) ChargeFSMStep(fsmStates int) {
	m.perBit += m.profile.FSMStepCost(fsmStates)
}

// EndInvocation closes one handler invocation (one bit time) and folds its
// cost into the totals, classified as an idle (SOF-hunting) bit.
func (m *Meter) EndInvocation() { m.EndInvocationAs(false) }

// EndInvocationAs closes one handler invocation, classifying it as active
// (frame processing) or idle (bus idle, SOF hunting).
func (m *Meter) EndInvocationAs(active bool) {
	m.cycles += m.perBit
	m.invocations++
	m.sumPerBit += m.perBit
	if m.perBit > m.maxPerBit {
		m.maxPerBit = m.perBit
	}
	if active {
		m.activeCycles += m.perBit
		m.activeInv++
	} else {
		m.idleCycles += m.perBit
		m.idleInv++
	}
	m.perBit = 0
}

// ChargeIdleInvocations folds n identical idle (SOF-hunting) handler
// invocations, each consuming the listed operations, into the totals in
// O(1). It is exactly equivalent to n rounds of Charge(ops...) followed by
// EndInvocationAs(false) — the batch path the bus idle fast-forward uses.
func (m *Meter) ChargeIdleInvocations(n int64, ops ...Op) {
	if n <= 0 {
		return
	}
	var per int64
	for _, op := range ops {
		per += m.profile.Cost(op)
	}
	m.cycles += n * per
	m.invocations += n
	m.sumPerBit += n * per
	if per > m.maxPerBit {
		m.maxPerBit = per
	}
	m.idleCycles += n * per
	m.idleInv += n
}

// ChargeInvocationsAs folds n handler invocations of per cycles each into
// the totals, classified active or idle. It is exactly equivalent to n
// rounds of charges totalling per cycles, each closed by
// EndInvocationAs(active) — the batch path for uniform-cost bit runs.
func (m *Meter) ChargeInvocationsAs(n, per int64, active bool) {
	if n <= 0 {
		return
	}
	m.cycles += n * per
	m.invocations += n
	m.sumPerBit += n * per
	if per > m.maxPerBit {
		m.maxPerBit = per
	}
	if active {
		m.activeCycles += n * per
		m.activeInv += n
	} else {
		m.idleCycles += n * per
		m.idleInv += n
	}
}

// OpCost returns the cycle cost of one operation under this meter's profile,
// for callers precomputing batched invocation costs.
func (m *Meter) OpCost(op Op) int64 { return m.profile.Cost(op) }

// FSMStepCostOf returns the cycle cost of one FSM transition for a machine
// of the given state count under this meter's profile.
func (m *Meter) FSMStepCostOf(fsmStates int) int64 { return m.profile.FSMStepCost(fsmStates) }

// IdleLoad returns the mean CPU utilization of idle-bit invocations: cycles
// per idle bit divided by cycles per bit time at the given bus rate.
func (m *Meter) IdleLoad(rate int) float64 {
	if m.idleInv == 0 || rate <= 0 {
		return 0
	}
	return float64(m.idleCycles) / float64(m.idleInv) / m.profile.CyclesPerBit(rate)
}

// ActiveLoad returns the mean CPU utilization of frame-processing
// invocations.
func (m *Meter) ActiveLoad(rate int) float64 {
	if m.activeInv == 0 || rate <= 0 {
		return 0
	}
	return float64(m.activeCycles) / float64(m.activeInv) / m.profile.CyclesPerBit(rate)
}

// CombinedLoad returns the paper's Sec. V-D "combined load": the average of
// the idle and active loads (the CPU overhead oscillates between the two
// states).
func (m *Meter) CombinedLoad(rate int) float64 {
	return (m.IdleLoad(rate) + m.ActiveLoad(rate)) / 2
}

// TotalCycles returns the cycles consumed so far.
func (m *Meter) TotalCycles() int64 { return m.cycles }

// Invocations returns the number of handler invocations metered.
func (m *Meter) Invocations() int64 { return m.invocations }

// MeanCyclesPerBit returns the average handler cost per invocation.
func (m *Meter) MeanCyclesPerBit() float64 {
	if m.invocations == 0 {
		return 0
	}
	return float64(m.sumPerBit) / float64(m.invocations)
}

// MaxCyclesPerBit returns the worst-case handler cost observed.
func (m *Meter) MaxCyclesPerBit() int64 { return m.maxPerBit }

// Utilization returns the CPU load over an interval of elapsedBits nominal
// bit times at the given bus rate: cycles consumed divided by cycles
// available.
func (m *Meter) Utilization(elapsedBits int64, rate int) float64 {
	if elapsedBits == 0 || rate == 0 {
		return 0
	}
	available := float64(elapsedBits) * float64(m.profile.ClockHz) / float64(rate)
	return float64(m.cycles) / available
}

// Reset zeroes all accumulators.
func (m *Meter) Reset() {
	m.cycles, m.perBit, m.invocations, m.maxPerBit, m.sumPerBit = 0, 0, 0, 0, 0
	m.idleCycles, m.idleInv, m.activeCycles, m.activeInv = 0, 0, 0, 0
}

// MeterState is a value snapshot of a Meter's accumulators, used by the
// hyperperiod fast path to fold a whole recorded chain's cycle accounting
// into the meter in O(1): the difference of two snapshots (State at chain
// entry and exit) is the chain's exact charge sequence collapsed to sums,
// except MaxPerBit, which is the exit's running maximum rather than a delta.
type MeterState struct {
	Cycles, PerBit                    int64
	Invocations, MaxPerBit, SumPerBit int64
	IdleCycles, IdleInv               int64
	ActiveCycles, ActiveInv           int64
}

// State snapshots the meter's accumulators.
func (m *Meter) State() MeterState {
	return MeterState{
		Cycles: m.cycles, PerBit: m.perBit,
		Invocations: m.invocations, MaxPerBit: m.maxPerBit, SumPerBit: m.sumPerBit,
		IdleCycles: m.idleCycles, IdleInv: m.idleInv,
		ActiveCycles: m.activeCycles, ActiveInv: m.activeInv,
	}
}

// Diff returns the delta from an earlier snapshot to this one. MaxPerBit in
// the result carries the later snapshot's absolute running maximum.
func (s MeterState) Diff(entry MeterState) MeterState {
	return MeterState{
		Cycles: s.Cycles - entry.Cycles, PerBit: s.PerBit - entry.PerBit,
		Invocations: s.Invocations - entry.Invocations,
		MaxPerBit:   s.MaxPerBit,
		SumPerBit:   s.SumPerBit - entry.SumPerBit,
		IdleCycles:  s.IdleCycles - entry.IdleCycles, IdleInv: s.IdleInv - entry.IdleInv,
		ActiveCycles: s.ActiveCycles - entry.ActiveCycles, ActiveInv: s.ActiveInv - entry.ActiveInv,
	}
}

// ApplyDelta folds a Diff result into the meter: additive for every
// accumulator except the running maximum, which is raised to the delta's
// absolute MaxPerBit if that is larger. Folding a delta whose entry snapshot
// matches the meter's current state reproduces the recorded charge sequence
// exactly.
func (m *Meter) ApplyDelta(d MeterState) {
	m.cycles += d.Cycles
	m.perBit += d.PerBit
	m.invocations += d.Invocations
	m.sumPerBit += d.SumPerBit
	if d.MaxPerBit > m.maxPerBit {
		m.maxPerBit = d.MaxPerBit
	}
	m.idleCycles += d.IdleCycles
	m.idleInv += d.IdleInv
	m.activeCycles += d.ActiveCycles
	m.activeInv += d.ActiveInv
}
