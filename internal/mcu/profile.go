package mcu

import "math"

// Profile is the cycle-cost model of one MCU. The per-operation constants
// are the one calibrated element of this reproduction (see DESIGN.md §1 and
// §4.6): the paper measures handler execution with an external ESP8266 cycle
// counter on real silicon, which we cannot do, so each operation of
// Algorithm 1 carries a fixed cycle cost chosen to land the aggregate loads
// near the paper's reported figures (Sec. V-D: Arduino Due ≈40% full / ≈30%
// light at 125 kbit/s; NXP S32K144 ≈44% at 500 kbit/s) while preserving the
// paper's three relationships: load grows with bus speed, with FSM
// complexity, and shrinks with MCU capability.
type Profile struct {
	// Name identifies the MCU.
	Name string
	// ClockHz is the CPU clock.
	ClockHz int64

	// CostISR is the interrupt entry/exit overhead; the dominant term on the
	// Arduino Due (Sec. VI-B cites its unusually high ISR cost).
	CostISR int64
	// CostReadRX is a direct PIO register read.
	CostReadRX int64
	// CostStuffTrack is the per-bit stuff bookkeeping.
	CostStuffTrack int64
	// CostFrameStore appends a bit to the frame array.
	CostFrameStore int64
	// CostCounterattack covers pin-mux toggling and pulling CAN_TX.
	CostCounterattack int64
	// CostIdleTrack is the SOF-hunting path during bus idle.
	CostIdleTrack int64
	// CostFrameReset reinitializes state at SOF (the fudge-factor work).
	CostFrameReset int64
	// CostFSMBase and CostFSMPerState model one detection-FSM transition:
	// generated dispatch code grows with the state count, so larger FSMs
	// cost more per step ("CPU load depends on FSM complexity").
	CostFSMBase     int64
	CostFSMPerState float64
}

// Cost returns the cycle cost of a fixed-cost operation.
func (p *Profile) Cost(op Op) int64 {
	switch op {
	case OpISREnterExit:
		return p.CostISR
	case OpReadRX:
		return p.CostReadRX
	case OpStuffTrack:
		return p.CostStuffTrack
	case OpFrameStore:
		return p.CostFrameStore
	case OpCounterattack:
		return p.CostCounterattack
	case OpIdleTrack:
		return p.CostIdleTrack
	case OpFrameReset:
		return p.CostFrameReset
	case OpFSMStep:
		return p.CostFSMBase
	default:
		return 0
	}
}

// FSMStepCost returns the cycle cost of one FSM transition for a machine
// with the given number of states.
func (p *Profile) FSMStepCost(states int) int64 {
	return p.CostFSMBase + int64(math.Round(p.CostFSMPerState*float64(states)))
}

// CyclesPerBit returns how many CPU cycles fit into one nominal bit time at
// the given bus rate.
func (p *Profile) CyclesPerBit(rate int) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(p.ClockHz) / float64(rate)
}

// FitsBitTime reports whether a handler invocation of the given worst-case
// cost completes within one bit time at the given rate — the feasibility
// condition behind "MichiCAN does not always reliably work on bus speeds
// above 125 kbit/s on Arduino Dues" (Sec. V-D).
func (p *Profile) FitsBitTime(worstCycles int64, rate int) bool {
	return float64(worstCycles) <= p.CyclesPerBit(rate)
}

// MCU profiles used in the paper's evaluation and discussion (Sec. V-A,
// V-D, VI-B). Constants are calibrated, not measured; see Profile.
var (
	// ArduinoDue is the Atmel SAM3X8E (Cortex-M3, 84 MHz) on the paper's
	// primary testbed. Its interrupt entry/exit overhead dominates.
	ArduinoDue = Profile{
		Name:              "Arduino Due (SAM3X8E @ 84 MHz)",
		ClockHz:           84_000_000,
		CostISR:           170,
		CostReadRX:        10,
		CostStuffTrack:    38,
		CostFrameStore:    12,
		CostCounterattack: 15,
		CostIdleTrack:     12,
		CostFrameReset:    80,
		CostFSMBase:       20,
		CostFSMPerState:   0.70,
	}

	// NXPS32K144 is the production-grade automotive MCU (Cortex-M4F,
	// 112 MHz) the paper uses to demonstrate 500 kbit/s operation.
	NXPS32K144 = Profile{
		Name:              "NXP S32K144 (Cortex-M4F @ 112 MHz)",
		ClockHz:           112_000_000,
		CostISR:           52,
		CostReadRX:        6,
		CostStuffTrack:    28,
		CostFrameStore:    12,
		CostCounterattack: 10,
		CostIdleTrack:     14,
		CostFrameReset:    40,
		CostFSMBase:       12,
		CostFSMPerState:   0.08,
	}

	// SAMV71 is the Microchip SAM V71 Xplained Ultra (150 MHz) from the
	// replicability discussion (Sec. VI-B).
	SAMV71 = Profile{
		Name:              "Microchip SAM V71 (Cortex-M7 @ 150 MHz)",
		ClockHz:           150_000_000,
		CostISR:           40,
		CostReadRX:        5,
		CostStuffTrack:    16,
		CostFrameStore:    6,
		CostCounterattack: 8,
		CostIdleTrack:     10,
		CostFrameReset:    32,
		CostFSMBase:       10,
		CostFSMPerState:   0.08,
	}

	// SPC58EC is the STMicro SPC58EC Discovery (180 MHz) from the
	// replicability discussion (Sec. VI-B).
	SPC58EC = Profile{
		Name:              "STMicro SPC58EC (e200z4 @ 180 MHz)",
		ClockHz:           180_000_000,
		CostISR:           38,
		CostReadRX:        5,
		CostStuffTrack:    15,
		CostFrameStore:    6,
		CostCounterattack: 8,
		CostIdleTrack:     9,
		CostFrameReset:    30,
		CostFSMBase:       9,
		CostFSMPerState:   0.07,
	}
)

// Profiles lists the built-in MCU profiles.
func Profiles() []Profile {
	return []Profile{ArduinoDue, NXPS32K144, SAMV71, SPC58EC}
}
