package mcu

import (
	"errors"
	"testing"
	"time"

	"michican/internal/can"
)

func TestPinMuxDefaults(t *testing.T) {
	p := NewPinMux()
	if p.TXEnabled() {
		t.Error("CAN_TX must start released")
	}
	if p.DriveLevel() != can.Recessive {
		t.Error("released pin must not drive the bus")
	}
	if p.ReadRX() != can.Recessive {
		t.Error("idle bus reads recessive")
	}
}

func TestPinMuxPullLowRequiresEnable(t *testing.T) {
	p := NewPinMux()
	p.PullLow()
	if p.DriveLevel() != can.Recessive {
		t.Error("PullLow without EnableTX must be a no-op")
	}
	p.EnableTX()
	p.PullLow()
	if p.DriveLevel() != can.Dominant {
		t.Error("enabled+pulled pin must drive dominant")
	}
	p.DisableTX()
	if p.TXEnabled() {
		t.Error("DisableTX must release the pin")
	}
	if p.DriveLevel() != can.Recessive {
		t.Error("released pin drives recessive")
	}
}

func TestPinMuxEnableCount(t *testing.T) {
	p := NewPinMux()
	p.EnableTX()
	p.EnableTX() // already enabled; not a new counterattack
	p.DisableTX()
	p.EnableTX()
	if p.TxEnableCount != 2 {
		t.Errorf("TxEnableCount = %d, want 2", p.TxEnableCount)
	}
}

func TestPinMuxLatchRead(t *testing.T) {
	p := NewPinMux()
	p.LatchRX(can.Dominant)
	if p.ReadRX() != can.Dominant {
		t.Error("latched level not visible on ReadRX")
	}
}

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter(ArduinoDue)
	m.Charge(OpISREnterExit)
	m.Charge(OpReadRX)
	m.EndInvocation()
	want := ArduinoDue.CostISR + ArduinoDue.CostReadRX
	if m.TotalCycles() != want {
		t.Errorf("TotalCycles = %d, want %d", m.TotalCycles(), want)
	}
	if m.Invocations() != 1 {
		t.Errorf("Invocations = %d", m.Invocations())
	}
	if m.MaxCyclesPerBit() != want {
		t.Errorf("MaxCyclesPerBit = %d, want %d", m.MaxCyclesPerBit(), want)
	}
}

func TestMeterUtilization(t *testing.T) {
	m := NewMeter(Profile{Name: "test", ClockHz: 1_000_000, CostISR: 10})
	// 1 MHz clock, 1 kbit/s bus: 1000 cycles per bit.
	for i := 0; i < 100; i++ {
		m.Charge(OpISREnterExit) // 10 cycles per bit
		m.EndInvocation()
	}
	got := m.Utilization(100, 1000)
	if got < 0.0099 || got > 0.0101 {
		t.Errorf("Utilization = %f, want 0.01", got)
	}
	if m.Utilization(0, 1000) != 0 {
		t.Error("zero elapsed must yield zero utilization")
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(ArduinoDue)
	m.Charge(OpReadRX)
	m.EndInvocation()
	m.Reset()
	if m.TotalCycles() != 0 || m.Invocations() != 0 || m.MeanCyclesPerBit() != 0 {
		t.Error("Reset must clear accumulators")
	}
}

func TestFSMStepCostGrowsWithStates(t *testing.T) {
	small := ArduinoDue.FSMStepCost(10)
	large := ArduinoDue.FSMStepCost(1000)
	if large <= small {
		t.Errorf("FSM cost must grow with state count: %d vs %d", small, large)
	}
}

func TestProfileCyclesPerBit(t *testing.T) {
	// 84 MHz at 125 kbit/s = 672 cycles per bit.
	if got := ArduinoDue.CyclesPerBit(125_000); got != 672 {
		t.Errorf("CyclesPerBit = %v, want 672", got)
	}
	if ArduinoDue.CyclesPerBit(0) != 0 {
		t.Error("zero rate must not divide")
	}
}

func TestFitsBitTimeReproducesDueLimit(t *testing.T) {
	// The paper: the Due is reliable at 125 kbit/s but not above. A handler
	// with a representative vehicle-bus FSM (~300 states) must fit at 125k
	// and fail at 250k.
	worst := ArduinoDue.CostISR + ArduinoDue.CostReadRX + ArduinoDue.CostStuffTrack +
		ArduinoDue.CostFrameStore + ArduinoDue.FSMStepCost(300)
	if !ArduinoDue.FitsBitTime(worst, 125_000) {
		t.Errorf("worst-case handler (%d cycles) should fit a 125 kbit/s bit time", worst)
	}
	if ArduinoDue.FitsBitTime(worst, 250_000) {
		t.Errorf("worst-case handler (%d cycles) should NOT fit a 250 kbit/s bit time", worst)
	}
	// The S32K144 runs 500 kbit/s (Sec. VI-B).
	worstNXP := NXPS32K144.CostISR + NXPS32K144.CostReadRX + NXPS32K144.CostStuffTrack +
		NXPS32K144.CostFrameStore + NXPS32K144.FSMStepCost(300)
	if !NXPS32K144.FitsBitTime(worstNXP, 500_000) {
		t.Errorf("S32K144 worst case (%d cycles) should fit a 500 kbit/s bit time", worstNXP)
	}
}

func TestProfilesComplete(t *testing.T) {
	for _, p := range Profiles() {
		if p.Name == "" || p.ClockHz == 0 || p.CostISR == 0 {
			t.Errorf("profile %+v incomplete", p)
		}
		for _, op := range []Op{OpISREnterExit, OpReadRX, OpStuffTrack, OpFrameStore,
			OpCounterattack, OpIdleTrack, OpFrameReset, OpFSMStep} {
			if p.Cost(op) <= 0 {
				t.Errorf("%s: op %v has non-positive cost", p.Name, op)
			}
		}
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpISREnterExit, OpReadRX, OpStuffTrack, OpFrameStore, OpFSMStep,
		OpCounterattack, OpIdleTrack, OpFrameReset}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Errorf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
}

func TestBitClockSampleOffset(t *testing.T) {
	c := &BitClock{BitTime: 2 * time.Microsecond, SamplePoint: 0.70}
	off, err := c.SampleOffset(0)
	if err != nil {
		t.Fatal(err)
	}
	if off != 0.70 {
		t.Errorf("zero-drift sample offset = %f, want 0.70", off)
	}
}

func TestBitClockDriftDirection(t *testing.T) {
	c := &BitClock{BitTime: 2 * time.Microsecond, SamplePoint: 0.70, DriftPPM: 100}
	o0, _ := c.SampleOffset(0)
	o100, _ := c.SampleOffset(100)
	if o100 >= o0 {
		t.Error("positive drift must move samples earlier over time")
	}
}

func TestBitClockBadSamplePoint(t *testing.T) {
	c := &BitClock{BitTime: time.Microsecond, SamplePoint: 1.5}
	if _, err := c.SampleOffset(0); !errors.Is(err, ErrBadSamplePoint) {
		t.Error("bad sample point accepted")
	}
	if _, err := c.MaxSafeBits(0.1); !errors.Is(err, ErrBadSamplePoint) {
		t.Error("bad sample point accepted by MaxSafeBits")
	}
}

func TestBitClockStaysSyncedForOneFrame(t *testing.T) {
	// Crystal oscillators are ≤100 ppm; a hard sync at SOF must keep the
	// sample point within the bit for a full maximum-length frame (~130 wire
	// bits) — the property MichiCAN's synchronization design relies on.
	c := &BitClock{BitTime: 2 * time.Microsecond, SamplePoint: 0.70, DriftPPM: 100}
	n, err := c.MaxSafeBits(0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n < 130 {
		t.Errorf("only %d bits safe at 100 ppm; a full frame needs ≥130", n)
	}
}

func TestBitClockExtremeDriftFails(t *testing.T) {
	// A 10,000 ppm (1%) oscillator cannot hold sync for a frame — this is
	// why resynchronization exists at all.
	c := &BitClock{BitTime: 2 * time.Microsecond, SamplePoint: 0.70, DriftPPM: 10_000}
	n, err := c.MaxSafeBits(0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 130 {
		t.Errorf("1%% drift should lose sync within a frame, lasted %d bits", n)
	}
}

func TestFirstInterruptDelay(t *testing.T) {
	c := &BitClock{
		BitTime:     2 * time.Microsecond,
		SamplePoint: 0.70,
		FudgeFactor: 200 * time.Nanosecond,
	}
	// Sec. IV-C: at 500 kbit/s the first interrupt fires at 1.4µs minus the
	// fudge factor.
	if got, want := c.FirstInterruptDelay(), 1200*time.Nanosecond; got != want {
		t.Errorf("FirstInterruptDelay = %v, want %v", got, want)
	}
	c.FudgeFactor = 10 * time.Microsecond
	if c.FirstInterruptDelay() != 0 {
		t.Error("delay must clamp at zero")
	}
}

func TestResetErrorShiftsSamples(t *testing.T) {
	c := &BitClock{
		BitTime:     2 * time.Microsecond,
		SamplePoint: 0.70,
		ResetError:  200 * time.Nanosecond,
	}
	off, err := c.SampleOffset(0)
	if err != nil {
		t.Fatal(err)
	}
	if off <= 0.70 {
		t.Errorf("positive reset error must delay samples: %f", off)
	}
}

func TestMeterClassifiedLoads(t *testing.T) {
	// 1 MHz clock, 1 kbit/s bus: 1000 cycles per bit.
	p := Profile{Name: "t", ClockHz: 1_000_000, CostISR: 100, CostIdleTrack: 100,
		CostStuffTrack: 300, CostFSMBase: 50, CostFSMPerState: 1}
	m := NewMeter(p)
	// 10 idle bits at 200 cycles, 10 active bits at 400 cycles.
	for i := 0; i < 10; i++ {
		m.Charge(OpISREnterExit)
		m.Charge(OpIdleTrack)
		m.EndInvocationAs(false)
	}
	for i := 0; i < 10; i++ {
		m.Charge(OpISREnterExit)
		m.Charge(OpStuffTrack)
		m.EndInvocationAs(true)
	}
	if got := m.IdleLoad(1000); got != 0.2 {
		t.Errorf("IdleLoad = %f, want 0.2", got)
	}
	if got := m.ActiveLoad(1000); got != 0.4 {
		t.Errorf("ActiveLoad = %f, want 0.4", got)
	}
	if got := m.CombinedLoad(1000); got < 0.2999 || got > 0.3001 {
		t.Errorf("CombinedLoad = %f, want 0.3", got)
	}
	if got := m.MeanCyclesPerBit(); got != 300 {
		t.Errorf("MeanCyclesPerBit = %f, want 300", got)
	}
	// FSM step charging: 50 + 1*100 = 150 cycles.
	m.Reset()
	m.ChargeFSMStep(100)
	m.EndInvocationAs(true)
	if m.TotalCycles() != 150 {
		t.Errorf("FSM step cycles = %d, want 150", m.TotalCycles())
	}
	// Zero-rate and empty-class guards.
	empty := NewMeter(p)
	if empty.IdleLoad(1000) != 0 || empty.ActiveLoad(1000) != 0 || empty.MeanCyclesPerBit() != 0 {
		t.Error("empty meter loads must be zero")
	}
	if m.IdleLoad(0) != 0 || m.ActiveLoad(0) != 0 {
		t.Error("zero rate loads must be zero")
	}
}
