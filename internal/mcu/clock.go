package mcu

import (
	"errors"
	"time"
)

// DefaultSamplePoint is the position within the nominal bit time where CAN
// controllers (and MichiCAN's software replica) sample the bus: 70%
// (Sec. IV-C).
const DefaultSamplePoint = 0.70

// BitClock models the software bit-timing machinery of Sec. IV-C: a timer
// interrupt that should fire at the sample point of every bit, an oscillator
// with a drift measured in parts per million, a hard synchronization at each
// SOF edge, and a fudge factor compensating the constant frame-reset work
// executed between the SOF edge and the restart of the timer.
//
// BitClock answers the question the paper answers empirically: does the
// sample point stay inside the bit for an entire maximum-length frame given
// the oscillator drift, or must the defense resynchronize more often?
type BitClock struct {
	// BitTime is the nominal bit duration (e.g. 2µs at 500 kbit/s).
	BitTime time.Duration
	// SamplePoint is the target sampling position within the bit, as a
	// fraction in (0,1).
	SamplePoint float64
	// DriftPPM is the oscillator drift in parts per million. Positive means
	// the local clock runs fast (samples creep earlier in later bits).
	DriftPPM float64
	// FudgeFactor is the constant time consumed by the frame-reset work at
	// SOF before the timer restarts; the first interrupt is scheduled this
	// much earlier to compensate (Sec. IV-C).
	FudgeFactor time.Duration
	// ResetError is any residual error of the fudge-factor compensation
	// (positive = first sample lands late by this much).
	ResetError time.Duration
}

// ErrBadSamplePoint indicates a sample point outside (0,1).
var ErrBadSamplePoint = errors.New("mcu: sample point must be in (0,1)")

// SampleOffset returns the position, as a fraction of the bit time, at which
// bit n (0 = first bit after the hard sync at SOF) is sampled. The hard sync
// zeroes accumulated jitter; afterwards each bit accrues DriftPPM of error.
func (c *BitClock) SampleOffset(n int) (float64, error) {
	if c.SamplePoint <= 0 || c.SamplePoint >= 1 {
		return 0, ErrBadSamplePoint
	}
	drift := c.DriftPPM * 1e-6 * float64(n+1)
	resid := 0.0
	if c.BitTime > 0 {
		resid = float64(c.ResetError) / float64(c.BitTime)
	}
	return c.SamplePoint + resid - drift, nil
}

// MaxSafeBits returns how many consecutive bits can be sampled after a hard
// sync before the sample point leaves the safe window [margin, 1-margin] of
// the bit. A CAN frame is at most ~130 wire bits, so a return value above
// that means the defense stays synchronized for any single frame.
func (c *BitClock) MaxSafeBits(margin float64) (int, error) {
	if c.SamplePoint <= 0 || c.SamplePoint >= 1 {
		return 0, ErrBadSamplePoint
	}
	n := 0
	for {
		off, err := c.SampleOffset(n)
		if err != nil {
			return n, err
		}
		if off < margin || off > 1-margin {
			return n, nil
		}
		n++
		if n > 1_000_000 {
			return n, nil // effectively unbounded
		}
	}
}

// FirstInterruptDelay returns the delay from the SOF edge to the first timer
// interrupt: one sample point into the bit, minus the fudge factor that
// accounts for the frame-reset work (Sec. IV-C: 1.4µs minus the fudge factor
// at 500 kbit/s).
func (c *BitClock) FirstInterruptDelay() time.Duration {
	d := time.Duration(float64(c.BitTime)*c.SamplePoint) - c.FudgeFactor
	if d < 0 {
		return 0
	}
	return d
}
