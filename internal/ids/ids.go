// Package ids implements a frequency-based intrusion detection system — the
// kind of reactive, frame-level IDS the paper's Table I compares MichiCAN
// against ([15]-[17]): it learns each CAN ID's inter-arrival statistics
// during a training window and afterwards flags frequency anomalies
// (injected duplicates, floods) and unknown identifiers.
//
// The IDS exists as a *measured* baseline: it receives complete frames (no
// bit-level access), so its detection necessarily lags the attack by at
// least one full frame, and it has no eradication capability whatsoever —
// the two Table-I deficits MichiCAN was designed to fix.
package ids

import (
	"fmt"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
)

// AlertKind classifies an IDS detection.
type AlertKind uint8

const (
	// UnknownID flags an identifier never seen during training.
	UnknownID AlertKind = iota + 1
	// FrequencyAnomaly flags a known identifier arriving much faster than
	// its learned period.
	FrequencyAnomaly
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case UnknownID:
		return "unknown-id"
	case FrequencyAnomaly:
		return "frequency-anomaly"
	default:
		return fmt.Sprintf("AlertKind(%d)", uint8(k))
	}
}

// Alert is one IDS detection.
type Alert struct {
	// At is the bus time of the complete frame that triggered the alert.
	At bus.BitTime
	// ID is the offending identifier.
	ID can.ID
	// Kind classifies the anomaly.
	Kind AlertKind
}

// Config parameterizes the IDS.
type Config struct {
	// Name identifies the node.
	Name string
	// TrainingBits is the observation window before enforcement starts.
	TrainingBits int64
	// RateFactor is how much faster than the learned minimum inter-arrival
	// a frame must arrive to count as a frequency anomaly (default 2: twice
	// as fast).
	RateFactor float64
	// ListenOnly puts the IDS in bus-monitoring mode: it never ACKs and
	// never signals errors, making it electrically invisible. Leave false
	// when the IDS doubles as an ordinary receiving node.
	ListenOnly bool
	// OnAlert fires for every detection.
	OnAlert func(Alert)
}

// IDS is the monitoring node. It implements bus.Node and is completely
// passive apart from ACKing well-formed frames (it is an ordinary receiver).
type IDS struct {
	cfg   Config
	ctl   *controller.Controller
	start bus.BitTime
	began bool

	// Learned model: minimum observed inter-arrival per ID during training.
	lastSeen map[can.ID]bus.BitTime
	minGap   map[can.ID]int64
	trained  bool

	alerts []Alert
}

var _ bus.Node = (*IDS)(nil)

// New creates an IDS with the given configuration.
func New(cfg Config) *IDS {
	if cfg.TrainingBits <= 0 {
		cfg.TrainingBits = 50_000 // 1 s at 50 kbit/s
	}
	if cfg.RateFactor <= 1 {
		cfg.RateFactor = 2
	}
	d := &IDS{
		cfg:      cfg,
		lastSeen: make(map[can.ID]bus.BitTime),
		minGap:   make(map[can.ID]int64),
	}
	d.ctl = controller.New(controller.Config{
		Name:        cfg.Name,
		AutoRecover: true,
		ListenOnly:  cfg.ListenOnly,
		OnReceive:   d.onFrame,
	})
	return d
}

// Alerts returns a copy of the alerts raised since enforcement began.
func (d *IDS) Alerts() []Alert {
	out := make([]Alert, len(d.alerts))
	copy(out, d.alerts)
	return out
}

// Trained reports whether the training window has elapsed.
func (d *IDS) Trained() bool { return d.trained }

// onFrame updates the model (training) or checks it (enforcement).
func (d *IDS) onFrame(t bus.BitTime, f can.Frame) {
	last, seen := d.lastSeen[f.ID]
	d.lastSeen[f.ID] = t
	if !d.trained {
		if seen {
			gap := int64(t - last)
			if cur, ok := d.minGap[f.ID]; !ok || gap < cur {
				d.minGap[f.ID] = gap
			}
		}
		return
	}
	// Enforcement.
	minGap, known := d.minGap[f.ID]
	if !known {
		d.raise(Alert{At: t, ID: f.ID, Kind: UnknownID})
		return
	}
	if seen && float64(t-last) < float64(minGap)/d.cfg.RateFactor {
		d.raise(Alert{At: t, ID: f.ID, Kind: FrequencyAnomaly})
	}
}

func (d *IDS) raise(a Alert) {
	d.alerts = append(d.alerts, a)
	if d.cfg.OnAlert != nil {
		d.cfg.OnAlert(a)
	}
}

// Drive implements bus.Node.
func (d *IDS) Drive(t bus.BitTime) can.Level { return d.ctl.Drive(t) }

// Observe implements bus.Node.
func (d *IDS) Observe(t bus.BitTime, level can.Level) {
	if !d.began {
		d.start = t
		d.began = true
	}
	if !d.trained && int64(t-d.start) >= d.cfg.TrainingBits {
		d.trained = true
	}
	d.ctl.Observe(t, level)
}
