package ids

import (
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/restbus"
)

// vehicleBus builds a bus with benign periodic traffic and an attached IDS.
func vehicleBus(trainingBits int64) (*bus.Bus, *IDS, *restbus.Replayer) {
	b := bus.New(bus.Rate50k)
	m := &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x100, Transmitter: "A", DLC: 8, Period: 20 * time.Millisecond},
		{ID: 0x200, Transmitter: "B", DLC: 4, Period: 50 * time.Millisecond},
	}}
	r := restbus.NewReplayer("ecus", m, bus.Rate50k, nil)
	b.Attach(r)
	d := New(Config{Name: "ids", TrainingBits: trainingBits})
	b.Attach(d)
	return b, d, r
}

func TestIDSNoFalsePositivesOnBenignTraffic(t *testing.T) {
	b, d, _ := vehicleBus(25_000) // 0.5 s training
	b.RunFor(2 * time.Second)
	if !d.Trained() {
		t.Fatal("training window never elapsed")
	}
	if len(d.Alerts()) != 0 {
		t.Errorf("false positives on benign traffic: %v", d.Alerts())
	}
}

func TestIDSFlagsUnknownID(t *testing.T) {
	b, d, _ := vehicleBus(25_000)
	b.RunFor(600 * time.Millisecond) // training done
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x064, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(100 * time.Millisecond)
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Kind != UnknownID || alerts[0].ID != 0x064 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestIDSFlagsInjectionFlood(t *testing.T) {
	b, d, _ := vehicleBus(25_000)
	b.RunFor(600 * time.Millisecond)
	// Fabrication: spoof the known ID 0x100 far above its learned rate.
	period := bus.Rate50k.Bits(2 * time.Millisecond)
	b.Attach(attack.NewFabrication("fab", 0x100, []byte{0xFF}, period))
	b.RunFor(200 * time.Millisecond)
	anomalies := 0
	for _, a := range d.Alerts() {
		if a.Kind == FrequencyAnomaly && a.ID == 0x100 {
			anomalies++
		}
	}
	if anomalies < 20 {
		t.Errorf("frequency anomalies = %d, want many", anomalies)
	}
}

func TestIDSCannotEradicate(t *testing.T) {
	// The Table-I deficit: the IDS detects the traditional DoS but the
	// flood continues unimpeded — detection without eradication.
	b, d, r := vehicleBus(25_000)
	b.RunFor(600 * time.Millisecond)
	att := attack.NewTraditionalDoS("dos")
	b.Attach(att)
	b.RunFor(400 * time.Millisecond)

	if len(d.Alerts()) == 0 {
		t.Fatal("IDS missed the flood")
	}
	if att.Controller().Stats().TxSuccess < 50 {
		t.Errorf("flood delivered only %d frames?", att.Controller().Stats().TxSuccess)
	}
	if att.Controller().State() == controller.BusOff {
		t.Error("an IDS has no way to bus the attacker off")
	}
	if r.Stats().DeadlineMisses == 0 {
		t.Error("victims should be starving despite the IDS")
	}
}

func TestIDSDetectionLagsAtLeastOneFrame(t *testing.T) {
	// The structural latency disadvantage vs MichiCAN: the IDS sees only
	// complete frames, so its first alert comes no earlier than the end of
	// the first injected frame, while MichiCAN flags within the ID field.
	b, d, _ := vehicleBus(25_000)
	b.RunFor(600 * time.Millisecond)
	spoofStart := b.Now()
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x050, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(50 * time.Millisecond)
	alerts := d.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alert")
	}
	latency := int64(alerts[0].At - spoofStart)
	// A full 8-byte frame is ≥ 108 bits; MichiCAN's detection position for
	// an unknown low ID is ≤ 11 bits + strike at 13.
	if latency < 100 {
		t.Errorf("IDS alert after %d bits — cannot be faster than one frame", latency)
	}
}

func TestIDSListenOnlyIsInvisible(t *testing.T) {
	// A stealth IDS must not change the wire at all: with another receiver
	// providing ACKs, traffic and detections proceed while the IDS itself
	// never drives a bit.
	b := bus.New(bus.Rate50k)
	m := &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x100, Transmitter: "A", DLC: 8, Period: 20 * time.Millisecond},
	}}
	b.Attach(restbus.NewReplayer("ecus", m, bus.Rate50k, nil))
	b.Attach(controller.New(controller.Config{Name: "acker", AutoRecover: true}))
	d := New(Config{Name: "stealth", TrainingBits: 25_000, ListenOnly: true})
	b.Attach(d)

	b.RunFor(600 * time.Millisecond)
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x050, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(100 * time.Millisecond)
	if len(d.Alerts()) == 0 {
		t.Error("stealth IDS missed the injection")
	}
}

func TestAlertKindStrings(t *testing.T) {
	if UnknownID.String() != "unknown-id" || FrequencyAnomaly.String() != "frequency-anomaly" {
		t.Error("alert kind names changed")
	}
	if AlertKind(99).String() == "" {
		t.Error("unknown kind must render something")
	}
}

func TestIDSDefaults(t *testing.T) {
	d := New(Config{Name: "d"}) // defaults: 50k training bits, factor 2
	if d.cfg.TrainingBits != 50_000 || d.cfg.RateFactor != 2 {
		t.Errorf("defaults = %d / %f", d.cfg.TrainingBits, d.cfg.RateFactor)
	}
}

func TestIDSOnAlertCallback(t *testing.T) {
	fired := 0
	b := bus.New(bus.Rate50k)
	m := &restbus.Matrix{Messages: []restbus.Message{
		{ID: 0x100, Transmitter: "A", DLC: 2, Period: 20 * time.Millisecond},
	}}
	b.Attach(restbus.NewReplayer("ecus", m, bus.Rate50k, nil))
	d := New(Config{Name: "ids", TrainingBits: 10_000, OnAlert: func(Alert) { fired++ }})
	b.Attach(d)
	b.RunFor(300 * time.Millisecond)
	spoofer := controller.New(controller.Config{Name: "s", AutoRecover: true})
	b.Attach(spoofer)
	if err := spoofer.Enqueue(can.Frame{ID: 0x055, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.RunFor(50 * time.Millisecond)
	if fired == 0 {
		t.Error("OnAlert never fired")
	}
}
