package can

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtendedIDHelpers(t *testing.T) {
	id := ID(0x18DAF110) // a typical J1939-style 29-bit ID
	if id.Valid() {
		t.Error("29-bit ID must not validate as base")
	}
	if !id.ValidExt() {
		t.Error("29-bit ID must validate as extended")
	}
	if (MaxExtID + 1).ValidExt() {
		t.Error("30-bit value accepted")
	}
	if got := id.Base(); got != id>>18 {
		t.Errorf("Base() = %#x", uint32(got))
	}
	if id.String() != "0x18DAF110" {
		t.Errorf("String() = %q", id.String())
	}
}

func TestExtBitMSBFirst(t *testing.T) {
	id := ID(1) << (ExtIDBits - 1) // only the MSB set
	if id.ExtBit(0) != Recessive {
		t.Error("MSB should read recessive")
	}
	for i := 1; i < ExtIDBits; i++ {
		if id.ExtBit(i) != Dominant {
			t.Fatalf("bit %d should be dominant", i)
		}
	}
	if id.ExtBit(-1) != Recessive || id.ExtBit(ExtIDBits) != Recessive {
		t.Error("out-of-range ExtBit must read recessive")
	}
}

func TestExtendedFrameValidate(t *testing.T) {
	ok := Frame{ID: 0x18DAF110, Extended: true, Data: []byte{1}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	tooBig := Frame{ID: MaxExtID + 1, Extended: true}
	if tooBig.Validate() == nil {
		t.Error("30-bit extended ID accepted")
	}
	baseWith29 := Frame{ID: 0x18DAF110}
	if baseWith29.Validate() == nil {
		t.Error("29-bit ID accepted on a base frame")
	}
}

func TestExtendedLayoutGeometry(t *testing.T) {
	l := Layout{Extended: true}
	if PosSRR != 12 || PosExtIDStart != 14 || PosRTRExt != 32 || PosDLCStartExt != 35 || PosDataStartExt != 39 {
		t.Fatalf("extended geometry shifted: SRR=%d ext=%d RTR=%d DLC=%d data=%d",
			PosSRR, PosExtIDStart, PosRTRExt, PosDLCStartExt, PosDataStartExt)
	}
	if l.ArbEndPos() != 32 {
		t.Errorf("extended arbitration ends at %d, want 32 (through RTR)", l.ArbEndPos())
	}
	base := Layout{}
	if base.ArbEndPos() != 12 || base.DLCStart() != 15 || base.DataStart() != 19 {
		t.Error("base layout answers changed")
	}
	// The classic figure: extended frames are 64+8n unstuffed bits.
	for dlc := 0; dlc <= 8; dlc++ {
		if got := NominalFrameLenExt(dlc); got != 64+8*dlc {
			t.Errorf("NominalFrameLenExt(%d) = %d, want %d", dlc, got, 64+8*dlc)
		}
	}
}

func TestExtendedBodySRRIDERecessive(t *testing.T) {
	f := Frame{ID: 0x00000000, Extended: true}
	body := UnstuffedBody(&f)
	if body[PosSRR] != Recessive || body[PosIDE] != Recessive {
		t.Error("SRR and IDE must be recessive in an extended frame")
	}
	if body[PosRTRExt] != Dominant || body[PosR1Ext] != Dominant || body[PosR0Ext] != Dominant {
		t.Error("RTR/r1/r0 must be dominant in an extended data frame")
	}
}

func TestExtendedDecodeWireRoundTrip(t *testing.T) {
	frames := []Frame{
		{ID: 0x00000000, Extended: true},
		{ID: MaxExtID, Extended: true, Data: []byte{0xFF}},
		{ID: 0x18DAF110, Extended: true, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{ID: 0x1ABCDE42, Extended: true, Data: []byte{0xAA}},
	}
	for _, f := range frames {
		t.Run(f.String(), func(t *testing.T) {
			wire := WireBits(&f, Dominant)
			got, n, err := DecodeWire(wire)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(wire) {
				t.Errorf("consumed %d of %d", n, len(wire))
			}
			if !got.Equal(&f) {
				t.Errorf("decoded %s (ext=%v), want %s", got.String(), got.Extended, f.String())
			}
		})
	}
}

// TestExtendedRoundTripProperty: encode→decode identity over random 29-bit
// frames.
func TestExtendedRoundTripProperty(t *testing.T) {
	prop := func(idRaw uint32, dlcRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Frame{ID: ID(idRaw) & MaxExtID, Extended: true}
		dlc := int(dlcRaw) % (MaxDataLen + 1)
		if dlc > 0 {
			f.Data = make([]byte, dlc)
			rng.Read(f.Data)
		}
		wire := WireBits(&f, Dominant)
		got, n, err := DecodeWire(wire)
		return err == nil && n == len(wire) && got.Equal(&f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBaseAndExtendedShareElevenBitPrefix(t *testing.T) {
	// The first 12 wire-relevant bits of an extended frame are SOF + the
	// 11-bit base part — the property MichiCAN's FSM relies on when it
	// classifies extended traffic by prefix.
	base := Frame{ID: 0x555}
	ext := Frame{ID: ID(0x555)<<ExtLowBits | 0x2AAAA, Extended: true}
	bb := UnstuffedBody(&base)
	eb := UnstuffedBody(&ext)
	for i := 0; i <= IDBits; i++ {
		if bb[i] != eb[i] {
			t.Fatalf("bit %d differs between base and extended with the same prefix", i)
		}
	}
	// ...and the extended frame loses arbitration at the SRR bit.
	if bb[PosRTR] != Dominant || eb[PosSRR] != Recessive {
		t.Error("base RTR dominant must beat extended SRR recessive")
	}
}
