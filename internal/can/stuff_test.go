package can

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func levelsFromString(s string) []Level {
	out := make([]Level, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			out = append(out, Dominant)
		case '1':
			out = append(out, Recessive)
		}
	}
	return out
}

func levelsToString(bits []Level) string {
	b := make([]byte, len(bits))
	for i, l := range bits {
		b[i] = '0' + byte(l)
	}
	return string(b)
}

func TestStuffBitsInsertsAfterFiveEqual(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"no stuffing", "0101010101", "0101010101"},
		{"five zeros", "00000", "000001"},
		{"five ones", "11111", "111110"},
		{"six zeros input", "000000", "0000010"},
		{"stuff bit restarts run", "0000000000", "000001000001"},
		{"run broken at four", "0000100001", "0000100001"},
		// The stuff bit itself counts toward the next run: 000001 then 1111
		// makes five ones including the stuff bit.
		{"stuff joins next run", "000001111", "00000111110"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := levelsToString(StuffBits(levelsFromString(tt.in)))
			if got != tt.want {
				t.Errorf("StuffBits(%s) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestDestuffBitsRemovesStuffBits(t *testing.T) {
	in := levelsFromString("000001000001")
	got, err := DestuffBits(in)
	if err != nil {
		t.Fatal(err)
	}
	if levelsToString(got) != "0000000000" {
		t.Errorf("destuffed = %s", levelsToString(got))
	}
}

func TestDestuffBitsDetectsViolation(t *testing.T) {
	_, err := DestuffBits(levelsFromString("000000"))
	if !errors.Is(err, ErrStuffViolation) {
		t.Fatalf("want ErrStuffViolation, got %v", err)
	}
	_, err = DestuffBits(levelsFromString("111111"))
	if !errors.Is(err, ErrStuffViolation) {
		t.Fatalf("want ErrStuffViolation, got %v", err)
	}
}

func TestDestufferExpecting(t *testing.T) {
	var d Destuffer
	d.Reset()
	for i := 0; i < StuffLimit; i++ {
		if d.Expecting() {
			t.Fatalf("expecting stuff bit too early at %d", i)
		}
		if _, err := d.Next(Dominant); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Expecting() {
		t.Fatal("destuffer must expect a stuff bit after five equal levels")
	}
}

func TestStufferPendingStuff(t *testing.T) {
	var s Stuffer
	s.Reset()
	for i := 0; i < StuffLimit-1; i++ {
		s.Next(Recessive)
		if s.PendingStuff() {
			t.Fatalf("pending stuff too early at %d", i)
		}
	}
	out := s.Next(Recessive)
	if len(out) != 2 || out[0] != Recessive || out[1] != Dominant {
		t.Fatalf("fifth equal bit must emit payload+stuff, got %v", out)
	}
	if s.PendingStuff() {
		t.Fatal("stuff already emitted; must not be pending")
	}
}

// TestStuffRoundTrip is the core property: destuff(stuff(x)) == x for any
// payload bit sequence.
func TestStuffRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%120 + 1
		in := make([]Level, n)
		for i := range in {
			in[i] = Level(rng.Intn(2))
		}
		wire := StuffBits(in)
		out, err := DestuffBits(wire)
		if err != nil {
			return false
		}
		return levelsToString(out) == levelsToString(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStuffedStreamNeverHasSixEqual: the defining invariant of the wire
// format — no six consecutive equal levels ever appear after stuffing.
func TestStuffedStreamNeverHasSixEqual(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%120 + 1
		in := make([]Level, n)
		for i := range in {
			in[i] = Level(rng.Intn(2))
		}
		wire := StuffBits(in)
		run := 0
		var last Level
		for i, b := range wire {
			if i > 0 && b == last {
				run++
			} else {
				run = 1
			}
			last = b
			if run > StuffLimit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStuffOverheadBound: stuffing adds at most len/4 extra bits (one stuff
// bit per four payload bits in the worst alternating-runs case).
func TestStuffOverheadBound(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%120 + 1
		in := make([]Level, n)
		for i := range in {
			in[i] = Level(rng.Intn(2))
		}
		wire := StuffBits(in)
		return len(wire) <= n+n/4+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseStuffing(t *testing.T) {
	// 20 all-dominant payload bits: each recessive stuff bit resets the run,
	// so a stuff bit follows every 5 payload dominants — after payload bits
	// 5, 10, 15, and 20, giving 24 wire bits.
	in := make([]Level, 20) // all dominant
	wire := StuffBits(in)
	if len(wire) != 24 {
		t.Fatalf("wire = %s (len %d), want 24 bits", levelsToString(wire), len(wire))
	}
	out, err := DestuffBits(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
}
