// Package can defines the core Controller Area Network protocol types and
// bit-level encodings used throughout the simulator: bus levels,
// identifiers, frames, checksums, and bit stuffing. It covers classical CAN
// 2.0A (11-bit IDs, the paper's scope), CAN 2.0B extended frames (29-bit
// IDs), remote frames, and CAN FD at constant bit rate.
//
// The package is deliberately free of any simulation machinery; it only knows
// how CAN frames are laid out on the wire. Higher layers (internal/bus,
// internal/controller) animate these encodings in time.
package can

import (
	"errors"
	"fmt"
)

// Level is the logical level of the CAN bus during one nominal bit time.
//
// CAN uses wired-AND signaling: a dominant level (logical 0) transmitted by
// any node overrides recessive levels (logical 1) transmitted by all others.
type Level uint8

const (
	// Dominant is logical 0. It wins on the bus.
	Dominant Level = 0
	// Recessive is logical 1. It is the idle level of the bus.
	Recessive Level = 1
)

// String returns "D" for dominant and "R" for recessive.
func (l Level) String() string {
	if l == Dominant {
		return "D"
	}
	return "R"
}

// And resolves two simultaneously transmitted levels per CAN's wired-AND
// electrical model: the result is dominant if either input is dominant.
func (l Level) And(other Level) Level {
	if l == Dominant || other == Dominant {
		return Dominant
	}
	return Recessive
}

// Resolve computes the bus level resulting from all levels driven onto the
// bus in one bit time. With no drivers the bus floats recessive.
func Resolve(levels ...Level) Level {
	for _, l := range levels {
		if l == Dominant {
			return Dominant
		}
	}
	return Recessive
}

// IDBits is the number of identifier bits in a CAN 2.0A (base) frame.
const IDBits = 11

// Extended (CAN 2.0B) identifier geometry: the 29-bit identifier is
// transmitted as an 11-bit base part (the 11 most significant bits, which
// alone decide arbitration against base frames) followed by an 18-bit
// extension.
const (
	// ExtIDBits is the width of a CAN 2.0B identifier.
	ExtIDBits = 29
	// ExtLowBits is the width of the identifier extension field.
	ExtLowBits = ExtIDBits - IDBits
)

// MaxID is the largest valid 11-bit CAN identifier.
const MaxID ID = 1<<IDBits - 1

// MaxExtID is the largest valid 29-bit CAN 2.0B identifier.
const MaxExtID ID = 1<<ExtIDBits - 1

// ID is a CAN message identifier: 11 bits for base (CAN 2.0A) frames, up to
// 29 bits for extended (CAN 2.0B) frames. Lower values have higher priority
// and win arbitration within a format; a base frame always beats an extended
// frame sharing its 11-bit prefix (the recessive SRR/IDE bits lose).
type ID uint32

// Valid reports whether the identifier fits in 11 bits (base format).
func (id ID) Valid() bool { return id <= MaxID }

// ValidExt reports whether the identifier fits in 29 bits.
func (id ID) ValidExt() bool { return id <= MaxExtID }

// Bit returns the identifier bit at position i, MSB first (i = 0 is the most
// significant of the 11 bits, transmitted first on the wire).
func (id ID) Bit(i int) Level {
	if i < 0 || i >= IDBits {
		return Recessive
	}
	if id&(1<<(IDBits-1-i)) != 0 {
		return Recessive
	}
	return Dominant
}

// ExtBit returns bit i of the 29-bit extended identifier, MSB first.
func (id ID) ExtBit(i int) Level {
	if i < 0 || i >= ExtIDBits {
		return Recessive
	}
	if id&(1<<(ExtIDBits-1-i)) != 0 {
		return Recessive
	}
	return Dominant
}

// Base returns the 11-bit base part of a 29-bit extended identifier — the
// bits that compete in the first arbitration phase.
func (id ID) Base() ID { return id >> ExtLowBits & MaxID }

// String formats the identifier in the conventional 0x-prefixed hex form
// (three digits for base IDs, eight for extended ones).
func (id ID) String() string {
	if id > MaxID {
		return fmt.Sprintf("0x%08X", uint32(id))
	}
	return fmt.Sprintf("0x%03X", uint32(id))
}

// MaxDataLen is the maximum payload length of a classical CAN frame.
const MaxDataLen = 8

// Frame is a CAN frame as seen by the application layer. The zero flags
// describe the paper's scope — a classical CAN 2.0A data frame (11-bit
// identifier, 0-8 bytes of payload, RTR/IDE/r0 dominant); the Extended,
// Remote and FD flags select the other wire formats.
type Frame struct {
	// ID is the message identifier: 11 bits for base frames, 29 bits when
	// Extended is set.
	ID ID
	// Extended selects the CAN 2.0B (29-bit identifier) wire format.
	Extended bool
	// FD selects the CAN FD wire format (constant bit rate, BRS = 0):
	// payloads up to 64 bytes from the FD DLC table, stuff-count field, and
	// CRC-17/21 protected by fixed stuff bits.
	FD bool
	// ESIPassive sets the FD error-state indicator (transmitter is
	// error-passive); only meaningful with FD.
	ESIPassive bool
	// Remote marks a remote frame (RTR recessive): a data-less request for
	// the message with this identifier. Data must be empty; the DLC field
	// carries RequestLen instead.
	Remote bool
	// RequestLen is the data length requested by a remote frame (0-8).
	RequestLen int
	// Data is the payload; its length (0-8) defines the DLC field.
	Data []byte
}

// Errors reported by frame validation and decoding.
var (
	// ErrIDRange indicates an identifier that does not fit in 11 bits.
	ErrIDRange = errors.New("can: identifier exceeds 11 bits")
	// ErrDataLen indicates a payload longer than 8 bytes.
	ErrDataLen = errors.New("can: payload exceeds 8 bytes")
	// ErrFrameTooShort indicates a truncated bitstream during decoding.
	ErrFrameTooShort = errors.New("can: bitstream too short for frame")
	// ErrCRCMismatch indicates a failed cyclic redundancy check.
	ErrCRCMismatch = errors.New("can: CRC mismatch")
	// ErrFormViolation indicates a fixed-form field with the wrong level.
	ErrFormViolation = errors.New("can: form error in fixed-form field")
	// ErrStuffViolation indicates six consecutive equal levels in a stuffed
	// region of the bitstream.
	ErrStuffViolation = errors.New("can: bit stuffing violation")
)

// Validate checks that the frame can be legally encoded.
func (f *Frame) Validate() error {
	if f.Extended {
		if !f.ID.ValidExt() {
			return fmt.Errorf("%w: %#x exceeds 29 bits", ErrIDRange, uint32(f.ID))
		}
	} else if !f.ID.Valid() {
		return fmt.Errorf("%w: %#x", ErrIDRange, uint32(f.ID))
	}
	if f.FD {
		return f.validateFD()
	}
	if len(f.Data) > MaxDataLen {
		return fmt.Errorf("%w: %d", ErrDataLen, len(f.Data))
	}
	if f.Remote {
		if len(f.Data) != 0 {
			return fmt.Errorf("%w: remote frames carry no data", ErrDataLen)
		}
		if f.RequestLen < 0 || f.RequestLen > MaxDataLen {
			return fmt.Errorf("%w: remote request length %d", ErrDataLen, f.RequestLen)
		}
	}
	return nil
}

// DLC returns the data length code of the frame.
func (f *Frame) DLC() int { return len(f.Data) }

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() Frame {
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	return Frame{ID: f.ID, Extended: f.Extended, FD: f.FD, ESIPassive: f.ESIPassive,
		Remote: f.Remote, RequestLen: f.RequestLen, Data: data}
}

// Equal reports whether two frames carry the same identifier, format, and
// payload.
func (f *Frame) Equal(other *Frame) bool {
	if f.ID != other.ID || f.Extended != other.Extended || f.FD != other.FD ||
		f.Remote != other.Remote || f.RequestLen != other.RequestLen ||
		len(f.Data) != len(other.Data) {
		return false
	}
	for i := range f.Data {
		if f.Data[i] != other.Data[i] {
			return false
		}
	}
	return true
}

// String renders the frame in candump-like notation (remote frames use the
// conventional R marker with the requested length).
func (f *Frame) String() string {
	if f.Remote {
		return fmt.Sprintf("%s#R%d", f.ID, f.RequestLen)
	}
	return fmt.Sprintf("%s#%X", f.ID, f.Data)
}
