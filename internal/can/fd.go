package can

import "fmt"

// CAN FD support (ISO 11898-1:2015), restricted to a constant bit rate
// (BRS = 0): the frame format, the non-linear DLC table, the stuff-count
// field, and the CRC-17/CRC-21 sequences protected by fixed stuff bits. The
// constant-rate restriction keeps the bit-quantum bus model exact; bit-rate
// switching only changes wall-clock scaling, not protocol logic.
//
// FD frames matter to MichiCAN as future work: the arbitration phase — the
// only part the defense samples — is bit-identical to classical CAN, so the
// detection FSM and the counterattack carry over unchanged.

// MaxFDDataLen is the largest CAN FD payload.
const MaxFDDataLen = 64

// fdLengths is the non-linear DLC → byte-count table for DLC 9..15.
var fdLengths = [7]int{12, 16, 20, 24, 32, 48, 64}

// FDLenFromDLC maps a DLC code (0-15) to the FD payload length in bytes.
func FDLenFromDLC(dlc int) int {
	if dlc <= 8 {
		if dlc < 0 {
			return 0
		}
		return dlc
	}
	if dlc > 15 {
		dlc = 15
	}
	return fdLengths[dlc-9]
}

// FDDLCFromLen maps a payload length to its DLC code; ok is false when the
// length is not encodable (FD payloads must hit a table entry).
func FDDLCFromLen(n int) (dlc int, ok bool) {
	if n >= 0 && n <= 8 {
		return n, true
	}
	for i, l := range fdLengths {
		if l == n {
			return 9 + i, true
		}
	}
	return 0, false
}

// ValidFDLen reports whether n is an encodable FD payload length.
func ValidFDLen(n int) bool {
	_, ok := FDDLCFromLen(n)
	return ok
}

// FD field geometry, in unstuffed positions from SOF (base format):
// SOF | ID(11) | RRS | IDE | FDF | res | BRS | ESI | DLC(4) | data...
const (
	// PosRRS is the remote-request-substitution bit (always dominant; CAN
	// FD has no remote frames), occupying the classical RTR slot.
	PosRRS = 12
	// PosFDF is the FD-format bit: recessive marks an FD frame where a
	// classical base frame carries the dominant r0 — the format
	// discriminator at position 14.
	PosFDF = 14
	// PosRes, PosBRS, PosESI complete the FD control field.
	PosRes = 15
	PosBRS = 16
	PosESI = 17
	// PosDLCStartFD is the first DLC bit of a base FD frame.
	PosDLCStartFD = 18
	// PosDataStartFD is the first data bit of a base FD frame.
	PosDataStartFD = PosDLCStartFD + DLCBits // 22
)

// Extended FD geometry: SOF | ID11 | SRR | IDE | ID18 | RRS | FDF | res |
// BRS | ESI | DLC(4) | data...
const (
	// PosRRSExt is the RRS bit of an extended FD frame.
	PosRRSExt = PosExtIDStart + ExtLowBits // 32
	// PosFDFExt discriminates extended FD (recessive) from classical
	// extended (dominant r1) at position 33.
	PosFDFExt = PosRRSExt + 1 // 33
	// PosDLCStartFDExt / PosDataStartFDExt locate the extended FD DLC/data.
	PosDLCStartFDExt  = PosFDFExt + 4 // res,BRS,ESI then DLC => 37
	PosDataStartFDExt = PosDLCStartFDExt + DLCBits
)

// CRC-17 and CRC-21 generator polynomials (x^17/x^21 terms implicit) and
// register initializations (a single 1 in the MSB, per ISO 11898-1:2015).
const (
	CRC17Poly uint32 = 0x1685B
	CRC17Init uint32 = 1 << 16
	crc17Mask uint32 = 1<<17 - 1
	CRC21Poly uint32 = 0x102899
	CRC21Init uint32 = 1 << 20
	crc21Mask uint32 = 1<<21 - 1
)

// FDCRC is the running FD checksum register.
type FDCRC struct {
	reg, poly, mask uint32
	bits            int
}

// NewFDCRC creates the FD CRC register for the given payload length:
// CRC-17 protects payloads up to 16 bytes, CRC-21 longer ones.
func NewFDCRC(dataLen int) *FDCRC {
	if dataLen <= 16 {
		return &FDCRC{reg: CRC17Init, poly: CRC17Poly, mask: crc17Mask, bits: 17}
	}
	return &FDCRC{reg: CRC21Init, poly: CRC21Poly, mask: crc21Mask, bits: 21}
}

// Update feeds one bit into the register.
func (c *FDCRC) Update(bit Level) {
	nxt := uint32(bit) ^ (c.reg >> (c.bits - 1) & 1)
	c.reg = (c.reg << 1) & c.mask
	if nxt != 0 {
		c.reg ^= c.poly
	}
}

// Reset re-seeds the register for a fresh frame, preserving its width so a
// receiver can reuse the same two registers across frames instead of
// allocating a pair per reception.
func (c *FDCRC) Reset() {
	if c.bits == 17 {
		c.reg = CRC17Init
	} else {
		c.reg = CRC21Init
	}
}

// Sum returns the checksum; Bits its width.
func (c *FDCRC) Sum() uint32 { return c.reg & c.mask }

// Bits returns the CRC width (17 or 21).
func (c *FDCRC) Bits() int { return c.bits }

// grayCode3 Gray-codes a 3-bit value.
func grayCode3(v int) int { return (v ^ (v >> 1)) & 7 }

// grayDecode3 inverts grayCode3.
func grayDecode3(g int) int {
	v := 0
	for mask := 4; mask > 0; mask >>= 1 {
		if (g^v>>1)&mask != 0 {
			v |= mask
		}
	}
	return v & 7
}

// StuffCountBits encodes the dynamic-stuff-bit count (mod 8) as the 4-bit
// stuff-count field: 3 Gray-coded bits plus an even-parity bit.
func StuffCountBits(count int) [4]Level {
	g := grayCode3(count & 7)
	var out [4]Level
	ones := 0
	for i := 0; i < 3; i++ {
		bit := g >> (2 - i) & 1
		out[i] = Level(bit)
		ones += bit
	}
	out[3] = Level(ones & 1) // even parity over the Gray bits
	return out
}

// DecodeStuffCount parses a stuff-count field, verifying parity.
func DecodeStuffCount(bits [4]Level) (count int, ok bool) {
	g, ones := 0, 0
	for i := 0; i < 3; i++ {
		g = g<<1 | int(bits[i])
		ones += int(bits[i])
	}
	if Level(ones&1) != bits[3] {
		return 0, false
	}
	return grayDecode3(g), true
}

// FDWireBits serializes a CAN FD frame to its wire form: the dynamically
// stuffed region (SOF through the last data bit), the fixed-stuff-protected
// stuff-count and CRC fields, and the classical trailer. ack selects the
// observed ACK slot level. The CRC covers the dynamically stuffed stream
// plus the stuff-count payload bits, per ISO's post-Bosch fix for the
// classical stuffing vulnerability.
func FDWireBits(f *Frame, ack Level) []Level {
	wire, _, _, ackIdx := FDWirePlan(f)
	out := make([]Level, len(wire))
	copy(out, wire)
	out[ackIdx] = ack
	return out
}

// fdUnstuffedPrefix builds the unstuffed SOF-through-data region of an FD
// frame.
func fdUnstuffedPrefix(f *Frame) []Level {
	out := make([]Level, 0, PosDataStartFDExt+8*len(f.Data))
	out = append(out, Dominant) // SOF
	if f.Extended {
		for i := 0; i < ExtIDBits; i++ {
			out = append(out, f.ID.ExtBit(i))
			if i == IDBits-1 {
				out = append(out, Recessive, Recessive) // SRR, IDE
			}
		}
	} else {
		for i := 0; i < IDBits; i++ {
			out = append(out, f.ID.Bit(i))
		}
	}
	esi := Dominant // error-active transmitter
	if f.ESIPassive {
		esi = Recessive
	}
	// RRS, (IDE for base), FDF, res, BRS(=0), ESI
	if f.Extended {
		out = append(out, Dominant, Recessive, Dominant, Dominant, esi)
	} else {
		out = append(out, Dominant, Dominant, Recessive, Dominant, Dominant, esi)
	}
	dlc, _ := FDDLCFromLen(len(f.Data))
	for i := DLCBits - 1; i >= 0; i-- {
		out = append(out, bitOf(uint(dlc), i))
	}
	for _, b := range f.Data {
		for i := 7; i >= 0; i-- {
			out = append(out, bitOf(uint(b), i))
		}
	}
	return out
}

// validateFD checks FD-specific constraints.
func (f *Frame) validateFD() error {
	if f.Remote {
		return fmt.Errorf("%w: CAN FD has no remote frames", ErrFormViolation)
	}
	if !ValidFDLen(len(f.Data)) {
		return fmt.Errorf("%w: FD payload %d not in the DLC table", ErrDataLen, len(f.Data))
	}
	return nil
}

// DecodeFDWire parses one complete CAN FD frame from a wire sequence
// starting at the SOF bit, returning the frame and the wire bits consumed.
func DecodeFDWire(bits []Level) (Frame, int, error) {
	var (
		d        Destuffer
		payload  []Level
		consumed int
		dynStuff int
		crc17    = &FDCRC{reg: CRC17Init, poly: CRC17Poly, mask: crc17Mask, bits: 17}
		crc21    = &FDCRC{reg: CRC21Init, poly: CRC21Poly, mask: crc21Mask, bits: 21}
	)
	d.Reset()

	extended := false
	dataLen := -1
	dlcStart, dataStart := PosDLCStartFD, PosDataStartFD
	// Dynamic region: SOF through the last data bit.
	for {
		if dataLen >= 0 && len(payload) == dataStart+8*dataLen {
			break
		}
		if consumed >= len(bits) {
			return Frame{}, consumed, ErrFrameTooShort
		}
		b := bits[consumed]
		consumed++
		crc17.Update(b)
		crc21.Update(b)
		isPayload, err := d.Next(b)
		if err != nil {
			return Frame{}, consumed, err
		}
		if !isPayload {
			dynStuff++
			continue
		}
		payload = append(payload, b)
		n := len(payload)
		if n == PosIDE+1 && b == Recessive {
			extended = true
			dlcStart, dataStart = PosDLCStartFDExt, PosDataStartFDExt
		}
		if n == dlcStart+DLCBits {
			dataLen = FDLenFromDLC(DecodeField(payload, dlcStart, DLCBits))
		}
	}

	// A pending dynamic stuff bit can follow the final data bit; consume it
	// before the fixed-stuff region (the encoder emits it and counts it).
	if d.Expecting() {
		if consumed >= len(bits) {
			return Frame{}, consumed, ErrFrameTooShort
		}
		b := bits[consumed]
		consumed++
		crc17.Update(b)
		crc21.Update(b)
		if _, err := d.Next(b); err != nil {
			return Frame{}, consumed, err
		}
		dynStuff++
	}

	// Form checks over the control field.
	if payload[PosSOF] != Dominant {
		return Frame{}, consumed, ErrFormViolation
	}
	fdfPos, resPos, brsPos, esiPos, rrsPos := PosFDF, PosRes, PosBRS, PosESI, PosRRS
	if extended {
		fdfPos, rrsPos = PosFDFExt, PosRRSExt
		resPos, brsPos, esiPos = PosFDFExt+1, PosFDFExt+2, PosFDFExt+3
	}
	if payload[fdfPos] != Recessive {
		return Frame{}, consumed, fmt.Errorf("%w: not an FD frame", ErrFormViolation)
	}
	if payload[rrsPos] != Dominant || payload[resPos] != Dominant {
		return Frame{}, consumed, ErrFormViolation
	}
	if payload[brsPos] != Dominant {
		return Frame{}, consumed, fmt.Errorf("%w: bit-rate switching unsupported", ErrFormViolation)
	}

	// Fixed-stuff region: stuff count (4 payload bits) + CRC.
	crc := crc17
	if dataLen > 16 {
		crc = crc21
	}
	fieldLen := 4 + crc.Bits()
	var scBits [4]Level
	var gotCRC uint32
	for i := 0; i < fieldLen; i++ {
		if i%4 == 0 {
			if consumed >= len(bits) {
				return Frame{}, consumed, ErrFrameTooShort
			}
			fsb := bits[consumed]
			if fsb != opposite(bits[consumed-1]) {
				return Frame{}, consumed, fmt.Errorf("%w: fixed stuff bit", ErrStuffViolation)
			}
			consumed++
		}
		if consumed >= len(bits) {
			return Frame{}, consumed, ErrFrameTooShort
		}
		b := bits[consumed]
		consumed++
		if i < 4 {
			scBits[i] = b
			crc17.Update(b)
			crc21.Update(b)
		} else {
			gotCRC = gotCRC<<1 | uint32(b)
		}
	}
	count, ok := DecodeStuffCount(scBits)
	if !ok {
		return Frame{}, consumed, fmt.Errorf("%w: stuff count parity", ErrFormViolation)
	}
	if count != dynStuff&7 {
		return Frame{}, consumed, fmt.Errorf("%w: stuff count %d, counted %d", ErrStuffViolation, count, dynStuff&7)
	}
	if gotCRC != crc.Sum() {
		return Frame{}, consumed, ErrCRCMismatch
	}

	// Classical trailer.
	trailer := 3 + EOFBits
	if consumed+trailer > len(bits) {
		return Frame{}, consumed, ErrFrameTooShort
	}
	if bits[consumed] != Recessive || bits[consumed+2] != Recessive {
		return Frame{}, consumed, ErrFormViolation
	}
	for i := 3; i < trailer; i++ {
		if bits[consumed+i] != Recessive {
			return Frame{}, consumed, ErrFormViolation
		}
	}
	consumed += trailer

	f := Frame{FD: true, Extended: extended, ESIPassive: payload[esiPos] == Recessive}
	f.ID = Layout{Extended: extended}.DecodeID(payload)
	if dataLen > 0 {
		f.Data = make([]byte, dataLen)
		for i := 0; i < dataLen; i++ {
			f.Data[i] = byte(DecodeField(payload, dataStart+8*i, 8))
		}
	}
	return f, consumed, nil
}

// sniffFD peeks at the format discriminators (FDF at payload position 14 for
// base frames, 33 for extended ones) without committing to a full decode.
func sniffFD(bits []Level) bool {
	var d Destuffer
	d.Reset()
	var payload []Level
	ext := false
	for i := 0; i < len(bits) && len(payload) <= PosFDFExt; i++ {
		isPayload, err := d.Next(bits[i])
		if err != nil {
			return false
		}
		if !isPayload {
			continue
		}
		payload = append(payload, bits[i])
		n := len(payload)
		if n == PosIDE+1 {
			ext = payload[PosIDE] == Recessive
		}
		if !ext && n == PosFDF+1 {
			return payload[PosFDF] == Recessive
		}
		if ext && n == PosFDFExt+1 {
			return payload[PosFDFExt] == Recessive
		}
	}
	return false
}

// FDWirePlan serializes an FD frame for transmission: the wire bits, the
// stuff-bit mask (dynamic and fixed stuff bits), the end of the arbitration
// field on the wire, and the ACK slot index.
func FDWirePlan(f *Frame) (wire []Level, isStuff []bool, arbEnd, ackIdx int) {
	unstuffed := fdUnstuffedPrefix(f)
	arbEndPos := PosRRS
	if f.Extended {
		arbEndPos = PosRRSExt
	}
	crc := NewFDCRC(len(f.Data))
	var s Stuffer
	s.Reset()
	dynStuff := 0
	for pos, b := range unstuffed {
		out := s.Next(b)
		for j, w := range out {
			wire = append(wire, w)
			isStuff = append(isStuff, j == 1)
			crc.Update(w)
		}
		if len(out) == 2 {
			dynStuff++
		}
		if pos <= arbEndPos {
			arbEnd = len(wire)
		}
	}
	sc := StuffCountBits(dynStuff)
	fieldPayload := make([]Level, 0, 4+crc.Bits())
	for _, b := range sc {
		crc.Update(b)
		fieldPayload = append(fieldPayload, b)
	}
	sum := crc.Sum()
	for i := crc.Bits() - 1; i >= 0; i-- {
		fieldPayload = append(fieldPayload, Level(sum>>i&1))
	}
	for i, b := range fieldPayload {
		if i%4 == 0 {
			wire = append(wire, opposite(wire[len(wire)-1]))
			isStuff = append(isStuff, true)
		}
		wire = append(wire, b)
		isStuff = append(isStuff, false)
	}
	wire = append(wire, Recessive) // CRC delimiter
	isStuff = append(isStuff, false)
	ackIdx = len(wire)
	wire = append(wire, Recessive, Recessive) // ACK slot, ACK delimiter
	isStuff = append(isStuff, false, false)
	for i := 0; i < EOFBits; i++ {
		wire = append(wire, Recessive)
		isStuff = append(isStuff, false)
	}
	return wire, isStuff, arbEnd, ackIdx
}
