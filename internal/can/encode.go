package can

import "fmt"

// Field geometry of a CAN 2.0A data frame, in unstuffed (payload) bit
// positions counted from the SOF bit at position 0.
const (
	// PosSOF is the start-of-frame bit position.
	PosSOF = 0
	// PosIDStart is the first (most significant) identifier bit.
	PosIDStart = 1
	// PosRTR is the remote-transmission-request bit (dominant: data frame).
	PosRTR = PosIDStart + IDBits // 12
	// PosIDE is the identifier-extension bit (dominant: base format).
	PosIDE = PosRTR + 1 // 13
	// PosR0 is the reserved bit r0 (dominant).
	PosR0 = PosIDE + 1 // 14
	// PosDLCStart is the first (most significant) DLC bit.
	PosDLCStart = PosR0 + 1 // 15
	// DLCBits is the width of the data length code.
	DLCBits = 4
	// PosDataStart is the first data bit.
	PosDataStart = PosDLCStart + DLCBits // 19
)

// Extended (CAN 2.0B) field geometry, in unstuffed bit positions from SOF.
// The first 12 positions coincide with the base layout; position 13 (IDE)
// discriminates the formats: dominant = base, recessive = extended.
const (
	// PosSRR is the substitute remote request bit (recessive) of an
	// extended frame, occupying the base layout's RTR slot.
	PosSRR = 12
	// PosExtIDStart is the first bit of the 18-bit identifier extension.
	PosExtIDStart = PosIDE + 1 // 14
	// PosRTRExt is the extended frame's RTR bit, closing its arbitration
	// field.
	PosRTRExt = PosExtIDStart + ExtLowBits // 32
	// PosR1Ext and PosR0Ext are the reserved bits of the extended control
	// field.
	PosR1Ext = PosRTRExt + 1 // 33
	PosR0Ext = PosR1Ext + 1  // 34
	// PosDLCStartExt is the first DLC bit of an extended frame.
	PosDLCStartExt = PosR0Ext + 1 // 35
	// PosDataStartExt is the first data bit of an extended frame.
	PosDataStartExt = PosDLCStartExt + DLCBits // 39
)

// Layout selects between the two CAN wire formats and answers the geometry
// questions decoders need.
type Layout struct {
	// Extended is true for the CAN 2.0B (29-bit identifier) format.
	Extended bool
}

// DLCStart returns the unstuffed position of the first DLC bit.
func (l Layout) DLCStart() int {
	if l.Extended {
		return PosDLCStartExt
	}
	return PosDLCStart
}

// DataStart returns the unstuffed position of the first data bit.
func (l Layout) DataStart() int {
	if l.Extended {
		return PosDataStartExt
	}
	return PosDataStart
}

// UnstuffedLen returns the unstuffed bit count from SOF through the last CRC
// bit for a payload of dataLen bytes.
func (l Layout) UnstuffedLen(dataLen int) int {
	return l.DataStart() + 8*dataLen + CRCBits
}

// ArbEndPos returns the unstuffed position of the last arbitration-field
// bit (RTR): a dominant level read by a transmitter sending recessive at or
// before this position is arbitration, not an error.
func (l Layout) ArbEndPos() int {
	if l.Extended {
		return PosRTRExt
	}
	return PosRTR
}

// DecodeID extracts the identifier from an unstuffed payload prefix.
func (l Layout) DecodeID(payload []Level) ID {
	if !l.Extended {
		return ID(DecodeField(payload, PosIDStart, IDBits))
	}
	base := ID(DecodeField(payload, PosIDStart, IDBits))
	low := ID(DecodeField(payload, PosExtIDStart, ExtLowBits))
	return base<<ExtLowBits | low
}

// Trailer geometry (fixed-form, never stuffed).
const (
	// EOFBits is the number of recessive end-of-frame bits.
	EOFBits = 7
	// IntermissionBits is the recessive inter-frame space that must follow
	// every frame before the bus is idle again (ISO 11898-1 intermission).
	IntermissionBits = 3
	// IFSBits is the intermission (inter-frame space) after EOF.
	IFSBits = 3
	// IdleForSOF is the minimum number of consecutive recessive bits after
	// which a new SOF may be asserted (EOF tail + intermission; the paper
	// works with "at least 11 recessive bits").
	IdleForSOF = 11
)

// UnstuffedLen returns the number of unstuffed bits from SOF through the last
// CRC bit for a base-format payload of dataLen bytes.
func UnstuffedLen(dataLen int) int {
	return PosDataStart + 8*dataLen + CRCBits
}

// NominalFrameLen returns the total unstuffed frame length from SOF through
// the last EOF bit (excluding intermission) for a payload of dataLen bytes:
// 44 + 8*dataLen bits (base format); 64 + 8*dataLen for extended frames.
func NominalFrameLen(dataLen int) int {
	return UnstuffedLen(dataLen) + 3 + EOFBits // CRC delim + ACK slot + ACK delim + EOF
}

// NominalFrameLenExt is NominalFrameLen for the extended format.
func NominalFrameLenExt(dataLen int) int {
	return Layout{Extended: true}.UnstuffedLen(dataLen) + 3 + EOFBits
}

// UnstuffedBody serializes the stuffed region of the frame — SOF through the
// last CRC bit — as unstuffed levels in transmission order. The CRC is
// computed over SOF through the last data bit per ISO 11898-1. Both base and
// extended formats are supported.
func UnstuffedBody(f *Frame) []Level {
	layout := Layout{Extended: f.Extended}
	body := make([]Level, 0, layout.UnstuffedLen(len(f.Data)))
	body = append(body, Dominant) // SOF
	rtr := Dominant
	if f.Remote {
		rtr = Recessive
	}
	if f.Extended {
		for i := 0; i < ExtIDBits; i++ {
			body = append(body, f.ID.ExtBit(i))
			if i == IDBits-1 {
				body = append(body, Recessive, Recessive) // SRR, IDE
			}
		}
		body = append(body, rtr, Dominant, Dominant) // RTR, r1, r0
	} else {
		for i := 0; i < IDBits; i++ {
			body = append(body, f.ID.Bit(i))
		}
		body = append(body, rtr, Dominant, Dominant) // RTR, IDE, r0
	}
	dlc := len(f.Data)
	if f.Remote {
		dlc = f.RequestLen
	}
	for i := DLCBits - 1; i >= 0; i-- {
		body = append(body, bitOf(uint(dlc), i))
	}
	for _, b := range f.Data {
		for i := 7; i >= 0; i-- {
			body = append(body, bitOf(uint(b), i))
		}
	}
	crc := ChecksumBits(body)
	for i := CRCBits - 1; i >= 0; i-- {
		body = append(body, bitOf(uint(crc), i))
	}
	return body
}

// WireBits serializes the full frame as it appears on an error-free bus:
// the stuffed body followed by the fixed-form trailer. ack selects the level
// observed in the ACK slot (Dominant when at least one receiver acknowledges,
// which is the normal case on a multi-node bus).
func WireBits(f *Frame, ack Level) []Level {
	if f.FD {
		return FDWireBits(f, ack)
	}
	body := StuffBits(UnstuffedBody(f))
	out := make([]Level, 0, len(body)+3+EOFBits)
	out = append(out, body...)
	out = append(out, Recessive) // CRC delimiter
	out = append(out, ack)       // ACK slot
	out = append(out, Recessive) // ACK delimiter
	for i := 0; i < EOFBits; i++ {
		out = append(out, Recessive)
	}
	return out
}

// WireLen returns the on-wire length (including stuff bits, excluding
// intermission) of the frame assuming error-free transmission.
func WireLen(f *Frame) int { return len(WireBits(f, Dominant)) }

// DecodeWire parses one complete frame (base or extended format) from the
// beginning of a wire-level bit sequence that starts at the SOF bit. It
// returns the decoded frame and the number of wire bits consumed (through
// the last EOF bit). The ACK slot is accepted at either level.
func DecodeWire(bits []Level) (Frame, int, error) {
	if sniffFD(bits) {
		return DecodeFDWire(bits)
	}
	var (
		d        Destuffer
		crc      CRC15
		payload  []Level
		consumed int
		layout   Layout
	)
	d.Reset()
	// Stuffed region: the format is unknown until the IDE bit (payload
	// position 13) and the length until the DLC field, so destuff
	// incrementally against a running upper bound.
	// remote reports whether the (known-layout) frame has a recessive RTR;
	// remote frames carry no data field regardless of the DLC value.
	remote := func() bool {
		if !layout.Extended {
			return len(payload) > PosRTR && payload[PosRTR] == Recessive
		}
		return len(payload) > PosRTRExt && payload[PosRTRExt] == Recessive
	}
	dataLen := func() (int, bool) {
		if len(payload) <= PosIDE || len(payload) < layout.DLCStart()+DLCBits {
			return 0, false
		}
		if remote() {
			return 0, true
		}
		dlc := decodeField(payload, layout.DLCStart(), DLCBits)
		if dlc > MaxDataLen {
			dlc = MaxDataLen
		}
		return dlc, true
	}
	need := func() int {
		if len(payload) > PosIDE {
			layout = Layout{Extended: payload[PosIDE] == Recessive}
		}
		n, known := dataLen()
		if !known {
			return Layout{Extended: true}.UnstuffedLen(MaxDataLen) // upper bound
		}
		return layout.UnstuffedLen(n)
	}
	dataEnd := func() int {
		// SOF..last data bit (the CRC-protected region); an over-estimate
		// until the DLC is known, which is safe because every pre-DLC bit is
		// CRC-protected anyway.
		n, known := dataLen()
		if !known {
			return 1 << 30
		}
		return layout.UnstuffedLen(n) - CRCBits
	}
	for len(payload) < need() {
		if consumed >= len(bits) {
			return Frame{}, consumed, ErrFrameTooShort
		}
		b := bits[consumed]
		consumed++
		isPayload, err := d.Next(b)
		if err != nil {
			return Frame{}, consumed, err
		}
		if isPayload {
			payload = append(payload, b)
			if len(payload) <= dataEnd() {
				crc.Update(b)
			}
		}
	}
	// A stuff bit may follow the final CRC bit (the stuffed region covers
	// SOF through the CRC sequence); consume it before the delimiter.
	if d.Expecting() {
		if consumed >= len(bits) {
			return Frame{}, consumed, ErrFrameTooShort
		}
		if _, err := d.Next(bits[consumed]); err != nil {
			return Frame{}, consumed, err
		}
		consumed++
	}
	if payload[PosSOF] != Dominant {
		return Frame{}, consumed, ErrFormViolation
	}
	isRemote := remote()
	if layout.Extended {
		// SRR and IDE recessive (checked by layout selection); r1/r0
		// dominant; RTR dominant for data frames, recessive for remote.
		if payload[PosR1Ext] != Dominant || payload[PosR0Ext] != Dominant {
			return Frame{}, consumed, ErrFormViolation
		}
	} else {
		if payload[PosIDE] != Dominant || payload[PosR0] != Dominant {
			return Frame{}, consumed, ErrFormViolation
		}
	}
	dlc := decodeField(payload, layout.DLCStart(), DLCBits)
	if dlc > MaxDataLen {
		if !isRemote {
			return Frame{}, consumed, fmt.Errorf("%w: DLC %d", ErrDataLen, dlc)
		}
		dlc = MaxDataLen // remote DLC 9..15 requests 8 bytes
	}
	payloadLen := dlc
	if isRemote {
		payloadLen = 0
	}
	// The CRC is over SOF..last data bit; recompute and compare with the
	// transmitted CRC field.
	gotCRC := uint16(decodeField(payload, layout.DataStart()+8*payloadLen, CRCBits))
	if crc.Sum() != gotCRC {
		return Frame{}, consumed, ErrCRCMismatch
	}
	// Fixed-form trailer: CRC delim, ACK slot, ACK delim, EOF.
	trailer := 3 + EOFBits
	if consumed+trailer > len(bits) {
		return Frame{}, consumed, ErrFrameTooShort
	}
	if bits[consumed] != Recessive { // CRC delimiter
		return Frame{}, consumed, ErrFormViolation
	}
	if bits[consumed+2] != Recessive { // ACK delimiter
		return Frame{}, consumed, ErrFormViolation
	}
	for i := 3; i < trailer; i++ {
		if bits[consumed+i] != Recessive {
			return Frame{}, consumed, ErrFormViolation
		}
	}
	consumed += trailer

	f := Frame{ID: layout.DecodeID(payload), Extended: layout.Extended}
	if isRemote {
		f.Remote = true
		f.RequestLen = dlc
	} else if dlc > 0 {
		f.Data = make([]byte, dlc)
		for i := 0; i < dlc; i++ {
			f.Data[i] = byte(decodeField(payload, layout.DataStart()+8*i, 8))
		}
	}
	return f, consumed, nil
}

// DecodeField reads a width-bit big-endian value starting at unstuffed bit
// position pos from a payload sequence (recessive = 1).
func DecodeField(payload []Level, pos, width int) int {
	return decodeField(payload, pos, width)
}

// decodeField reads width bits MSB-first starting at pos from an unstuffed
// payload sequence.
func decodeField(payload []Level, pos, width int) int {
	v := 0
	for i := 0; i < width; i++ {
		v <<= 1
		if payload[pos+i] == Recessive {
			v |= 1
		}
	}
	return v
}

func bitOf(v uint, i int) Level {
	if v&(1<<uint(i)) != 0 {
		return Recessive
	}
	return Dominant
}
