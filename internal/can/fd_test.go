package can

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFDDLCTable(t *testing.T) {
	want := map[int]int{0: 0, 1: 1, 8: 8, 9: 12, 10: 16, 11: 20, 12: 24, 13: 32, 14: 48, 15: 64}
	for dlc, n := range want {
		if got := FDLenFromDLC(dlc); got != n {
			t.Errorf("FDLenFromDLC(%d) = %d, want %d", dlc, got, n)
		}
		back, ok := FDDLCFromLen(n)
		if !ok || back != dlc {
			t.Errorf("FDDLCFromLen(%d) = %d,%v, want %d", n, back, ok, dlc)
		}
	}
	if FDLenFromDLC(-1) != 0 || FDLenFromDLC(99) != 64 {
		t.Error("out-of-range DLC clamping wrong")
	}
	for _, bad := range []int{9, 10, 11, 13, 63, 65} {
		if ValidFDLen(bad) {
			t.Errorf("length %d should not be encodable", bad)
		}
	}
}

func TestFDValidate(t *testing.T) {
	ok := Frame{ID: 0x123, FD: true, Data: make([]byte, 64)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	badLen := Frame{ID: 0x123, FD: true, Data: make([]byte, 9)}
	if badLen.Validate() == nil {
		t.Error("9-byte FD payload accepted")
	}
	remote := Frame{ID: 0x123, FD: true, Remote: true}
	if remote.Validate() == nil {
		t.Error("FD remote frame accepted")
	}
}

func TestStuffCountRoundTrip(t *testing.T) {
	for count := 0; count < 16; count++ {
		bits := StuffCountBits(count)
		got, ok := DecodeStuffCount(bits)
		if !ok || got != count&7 {
			t.Errorf("count %d → %v → %d,%v", count, bits, got, ok)
		}
		// Any single flipped bit breaks parity or changes the value.
		for i := 0; i < 4; i++ {
			mutated := bits
			mutated[i] ^= 1
			g, ok := DecodeStuffCount(mutated)
			if ok && g == count&7 {
				t.Errorf("count %d: flip of bit %d undetected", count, i)
			}
		}
	}
}

func TestFDWireRoundTrip(t *testing.T) {
	lengths := []int{0, 1, 8, 12, 16, 20, 24, 32, 48, 64}
	rng := rand.New(rand.NewSource(9))
	for _, n := range lengths {
		for _, ext := range []bool{false, true} {
			f := Frame{ID: 0x155, Extended: ext, FD: true}
			if ext {
				f.ID = 0x155<<ExtLowBits | 0x0AAAA
			}
			if n > 0 {
				f.Data = make([]byte, n)
				rng.Read(f.Data)
			}
			wire := WireBits(&f, Dominant)
			got, consumed, err := DecodeWire(wire)
			if err != nil {
				t.Fatalf("len=%d ext=%v: %v", n, ext, err)
			}
			if consumed != len(wire) {
				t.Errorf("len=%d ext=%v: consumed %d/%d", n, ext, consumed, len(wire))
			}
			if !got.Equal(&f) {
				t.Errorf("len=%d ext=%v: decoded %s FD=%v", n, ext, got.String(), got.FD)
			}
		}
	}
}

// TestFDRoundTripProperty fuzzes IDs and payload contents across the DLC
// table.
func TestFDRoundTripProperty(t *testing.T) {
	lengths := []int{0, 3, 8, 12, 16, 20, 24, 32, 48, 64}
	prop := func(idRaw uint32, lenIdx uint8, ext, esi bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Frame{FD: true, Extended: ext, ESIPassive: esi}
		if ext {
			f.ID = ID(idRaw) & MaxExtID
		} else {
			f.ID = ID(idRaw) & MaxID
		}
		n := lengths[int(lenIdx)%len(lengths)]
		if n > 0 {
			f.Data = make([]byte, n)
			rng.Read(f.Data)
		}
		wire := WireBits(&f, Dominant)
		got, consumed, err := DecodeWire(wire)
		return err == nil && consumed == len(wire) && got.Equal(&f) &&
			got.ESIPassive == f.ESIPassive
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFDCorruptionDetected(t *testing.T) {
	f := Frame{ID: 0x321, FD: true, Data: make([]byte, 12)}
	for i := range f.Data {
		f.Data[i] = byte(i * 17)
	}
	wire := WireBits(&f, Dominant)
	// Flip every data-region bit in turn: no mutation may decode to the
	// original frame (FD's CRC-over-stuff-bits closes the classical
	// stuffing hole, so even stuff-bit flips are caught).
	for pos := 20; pos < len(wire)-12; pos++ {
		mutated := make([]Level, len(wire))
		copy(mutated, wire)
		mutated[pos] ^= 1
		got, _, err := DecodeWire(mutated)
		if err == nil && got.Equal(&f) {
			t.Fatalf("flip at %d undetected", pos)
		}
	}
}

func TestFDCRCWidthSelection(t *testing.T) {
	if NewFDCRC(16).Bits() != 17 {
		t.Error("≤16 bytes must use CRC-17")
	}
	if NewFDCRC(20).Bits() != 21 {
		t.Error(">16 bytes must use CRC-21")
	}
}

func TestFDESIPassiveEncoded(t *testing.T) {
	f := Frame{ID: 0x100, FD: true, ESIPassive: true, Data: []byte{1}}
	got, _, err := DecodeWire(WireBits(&f, Dominant))
	if err != nil {
		t.Fatal(err)
	}
	if !got.ESIPassive {
		t.Error("ESI lost in transit")
	}
}

func TestClassicalStillDecodesAfterFD(t *testing.T) {
	// The sniffing dispatch must leave classical frames untouched.
	frames := []Frame{
		{ID: 0x123, Data: []byte{1, 2, 3}},
		{ID: 0x18DAF110, Extended: true, Data: []byte{4}},
		{ID: 0x050, Remote: true, RequestLen: 8},
	}
	for _, f := range frames {
		got, _, err := DecodeWire(WireBits(&f, Dominant))
		if err != nil {
			t.Fatalf("%s: %v", f.String(), err)
		}
		if got.FD {
			t.Errorf("%s misdetected as FD", f.String())
		}
		if !got.Equal(&f) {
			t.Errorf("%s decoded as %s", f.String(), got.String())
		}
	}
}
