package can

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldGeometry(t *testing.T) {
	// The constants encode the CAN 2.0A layout; pin them so a refactor
	// cannot silently shift field boundaries.
	if PosRTR != 12 || PosIDE != 13 || PosR0 != 14 || PosDLCStart != 15 || PosDataStart != 19 {
		t.Fatalf("field geometry changed: RTR=%d IDE=%d r0=%d DLC=%d data=%d",
			PosRTR, PosIDE, PosR0, PosDLCStart, PosDataStart)
	}
}

func TestUnstuffedLen(t *testing.T) {
	for dlc := 0; dlc <= 8; dlc++ {
		want := 19 + 8*dlc + 15
		if got := UnstuffedLen(dlc); got != want {
			t.Errorf("UnstuffedLen(%d) = %d, want %d", dlc, got, want)
		}
	}
}

func TestNominalFrameLen(t *testing.T) {
	// The classic figure: a frame with n data bytes is 44+8n bits before
	// stuffing (SOF..EOF).
	for dlc := 0; dlc <= 8; dlc++ {
		if got := NominalFrameLen(dlc); got != 44+8*dlc {
			t.Errorf("NominalFrameLen(%d) = %d, want %d", dlc, got, 44+8*dlc)
		}
	}
}

func TestUnstuffedBodyLayout(t *testing.T) {
	f := Frame{ID: 0x555, Data: []byte{0xF0}}
	body := UnstuffedBody(&f)
	if len(body) != UnstuffedLen(1) {
		t.Fatalf("body length %d, want %d", len(body), UnstuffedLen(1))
	}
	if body[PosSOF] != Dominant {
		t.Error("SOF must be dominant")
	}
	for i := 0; i < IDBits; i++ {
		if body[PosIDStart+i] != f.ID.Bit(i) {
			t.Errorf("ID bit %d mismatch", i)
		}
	}
	if body[PosRTR] != Dominant || body[PosIDE] != Dominant || body[PosR0] != Dominant {
		t.Error("RTR/IDE/r0 must be dominant in a base data frame")
	}
	if got := DecodeField(body, PosDLCStart, DLCBits); got != 1 {
		t.Errorf("DLC = %d, want 1", got)
	}
	if got := DecodeField(body, PosDataStart, 8); got != 0xF0 {
		t.Errorf("data byte = %#x, want 0xF0", got)
	}
}

func TestWireBitsTrailer(t *testing.T) {
	f := Frame{ID: 0x1}
	wire := WireBits(&f, Dominant)
	// The last 7 bits are the recessive EOF.
	for i := len(wire) - EOFBits; i < len(wire); i++ {
		if wire[i] != Recessive {
			t.Fatalf("EOF bit %d not recessive", i)
		}
	}
}

func TestDecodeWireRoundTrip(t *testing.T) {
	tests := []Frame{
		{ID: 0x000},
		{ID: 0x7FF, Data: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
		{ID: 0x173, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{ID: 0x064, Data: []byte{0xAA}},
		{ID: 0x25F, Data: []byte{0, 0, 0}},
	}
	for _, f := range tests {
		t.Run(f.String(), func(t *testing.T) {
			wire := WireBits(&f, Dominant)
			got, n, err := DecodeWire(wire)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(wire) {
				t.Errorf("consumed %d of %d wire bits", n, len(wire))
			}
			if !got.Equal(&f) {
				t.Errorf("decoded %s, want %s", got.String(), f.String())
			}
		})
	}
}

// TestDecodeWireRoundTripProperty: encode→decode is the identity for any
// valid frame.
func TestDecodeWireRoundTripProperty(t *testing.T) {
	f := func(idRaw uint16, dlcRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := Frame{ID: ID(idRaw) & MaxID}
		dlc := int(dlcRaw) % (MaxDataLen + 1)
		if dlc > 0 {
			frame.Data = make([]byte, dlc)
			rng.Read(frame.Data)
		}
		wire := WireBits(&frame, Dominant)
		got, n, err := DecodeWire(wire)
		return err == nil && n == len(wire) && got.Equal(&frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWireTruncated(t *testing.T) {
	f := Frame{ID: 0x123, Data: []byte{1, 2}}
	wire := WireBits(&f, Dominant)
	for _, cut := range []int{1, 10, len(wire) / 2, len(wire) - 1} {
		if _, _, err := DecodeWire(wire[:cut]); err == nil {
			t.Errorf("truncation at %d bits went undetected", cut)
		}
	}
}

func TestDecodeWireCorruptedCRC(t *testing.T) {
	f := Frame{ID: 0x321, Data: []byte{9, 8, 7}}
	wire := WireBits(&f, Dominant)
	// Flip a data-region wire bit. This may produce a CRC mismatch or a
	// stuff violation depending on the neighborhood; either way it must not
	// decode as a valid frame equal to the original.
	for pos := 20; pos < 40; pos++ {
		mutated := make([]Level, len(wire))
		copy(mutated, wire)
		mutated[pos] ^= 1
		got, _, err := DecodeWire(mutated)
		if err == nil && got.Equal(&f) {
			t.Errorf("flip at %d produced identical valid frame", pos)
		}
	}
}

func TestDecodeWireFormErrors(t *testing.T) {
	f := Frame{ID: 0x040, Data: []byte{1}}
	wire := WireBits(&f, Dominant)
	// Dominant CRC delimiter is a form error. Find it: it is the third bit
	// from the end minus EOF and ACK fields.
	crcDelim := len(wire) - EOFBits - 2 - 1
	mutated := make([]Level, len(wire))
	copy(mutated, wire)
	mutated[crcDelim] = Dominant
	_, _, err := DecodeWire(mutated)
	if err == nil {
		t.Fatal("dominant CRC delimiter must not decode cleanly")
	}
}

func TestDecodeWireStuffViolation(t *testing.T) {
	// Construct six consecutive dominant bits right after SOF.
	bits := make([]Level, 30)
	for i := range bits {
		bits[i] = Dominant
	}
	_, _, err := DecodeWire(bits)
	if !errors.Is(err, ErrStuffViolation) {
		t.Fatalf("want stuff violation, got %v", err)
	}
}

func TestWireLenAverageFrame(t *testing.T) {
	// The paper works with an average CAN frame of ~125 bits including stuff
	// bits for an 8-byte payload (s_f = 125). Sanity-check that our encoder
	// lands in that neighborhood for typical payloads.
	rng := rand.New(rand.NewSource(3))
	total := 0
	const n = 1000
	for i := 0; i < n; i++ {
		f := Frame{ID: ID(rng.Intn(int(MaxID) + 1)), Data: make([]byte, 8)}
		rng.Read(f.Data)
		total += WireLen(&f)
	}
	avg := float64(total) / n
	if avg < 108 || avg > 125 {
		t.Errorf("average 8-byte wire length = %.1f bits, expected within [108,125]", avg)
	}
}
