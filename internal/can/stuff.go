package can

// StuffLimit is the number of consecutive equal levels after which the CAN
// data-link layer inserts a stuff bit of the opposite polarity.
const StuffLimit = 5

// Stuffer inserts stuff bits into an outgoing bit stream. It is used by the
// controller's transmit path: after five consecutive equal levels it emits a
// sixth bit of the opposite polarity before continuing with payload bits.
//
// The zero value is ready to use; the SOF bit should be the first bit pushed.
type Stuffer struct {
	last  Level
	run   int
	begun bool
	buf   [2]Level
}

// Reset prepares the stuffer for a new frame.
func (s *Stuffer) Reset() {
	s.last = Recessive
	s.run = 0
	s.begun = false
}

// Next accepts the next payload (unstuffed) level and returns the levels to
// place on the wire: either just the payload bit, or the payload bit followed
// by a stuff bit of opposite polarity. The returned slice aliases an internal
// buffer valid until the next call.
func (s *Stuffer) Next(bit Level) []Level {
	s.push(bit)
	if s.run == StuffLimit {
		stuff := opposite(bit)
		s.push(stuff)
		s.buf[0], s.buf[1] = bit, stuff
		return s.buf[:2]
	}
	s.buf[0] = bit
	return s.buf[:1]
}

// PendingStuff reports whether the very next wire bit must be a stuff bit
// (five equal levels just went out). The controller uses this to know where
// stuff bits fall without materializing the whole frame.
func (s *Stuffer) PendingStuff() bool { return s.run == StuffLimit }

func (s *Stuffer) push(bit Level) {
	if s.begun && bit == s.last {
		s.run++
	} else {
		s.last = bit
		s.run = 1
		s.begun = true
	}
}

// Destuffer removes stuff bits from an incoming bit stream and detects stuff
// violations (six consecutive equal levels where a stuff bit was expected).
type Destuffer struct {
	last  Level
	run   int
	begun bool
}

// Reset prepares the destuffer for a new frame.
func (d *Destuffer) Reset() {
	d.last = Recessive
	d.run = 0
	d.begun = false
}

// Next consumes the next wire-level bit. It returns:
//
//	payload = true  — bit is a payload bit, pass it up;
//	payload = false — bit was a stuff bit, discard it;
//	err != nil      — stuff violation (six equal consecutive levels).
func (d *Destuffer) Next(bit Level) (payload bool, err error) {
	if d.begun && d.run == StuffLimit {
		// This wire bit must be a stuff bit of opposite polarity.
		if bit == d.last {
			return false, ErrStuffViolation
		}
		d.last = bit
		d.run = 1
		return false, nil
	}
	if d.begun && bit == d.last {
		d.run++
	} else {
		d.last = bit
		d.run = 1
		d.begun = true
	}
	return true, nil
}

// Expecting reports whether the next wire bit must be a stuff bit.
func (d *Destuffer) Expecting() bool { return d.begun && d.run == StuffLimit }

// StuffBits applies CAN bit stuffing to a complete unstuffed bit sequence and
// returns the wire sequence. Useful for offline encoding and tests.
func StuffBits(unstuffed []Level) []Level {
	var s Stuffer
	s.Reset()
	out := make([]Level, 0, len(unstuffed)+len(unstuffed)/4)
	for _, b := range unstuffed {
		out = append(out, s.Next(b)...)
	}
	return out
}

// DestuffBits removes stuff bits from a wire sequence, returning the payload
// bits. It returns ErrStuffViolation if six equal consecutive levels appear.
func DestuffBits(wire []Level) ([]Level, error) {
	var d Destuffer
	d.Reset()
	out := make([]Level, 0, len(wire))
	for _, b := range wire {
		payload, err := d.Next(b)
		if err != nil {
			return out, err
		}
		if payload {
			out = append(out, b)
		}
	}
	return out, nil
}

func opposite(l Level) Level {
	if l == Dominant {
		return Recessive
	}
	return Dominant
}
