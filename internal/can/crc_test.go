package can

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC15Zero(t *testing.T) {
	var c CRC15
	if c.Sum() != 0 {
		t.Fatal("fresh register must read zero")
	}
}

func TestCRC15AllZeroBits(t *testing.T) {
	// Feeding dominant (0) bits into a zero register never sets it.
	var c CRC15
	for i := 0; i < 100; i++ {
		c.Update(Dominant)
	}
	if c.Sum() != 0 {
		t.Fatalf("CRC of all-dominant stream = %#x, want 0", c.Sum())
	}
}

func TestCRC15SingleRecessive(t *testing.T) {
	// One recessive bit: NXT=1, register becomes the polynomial.
	var c CRC15
	c.Update(Recessive)
	if c.Sum() != CRCPoly {
		t.Fatalf("CRC of single recessive bit = %#x, want %#x", c.Sum(), CRCPoly)
	}
}

func TestCRC15Reset(t *testing.T) {
	var c CRC15
	c.Update(Recessive)
	c.Reset()
	if c.Sum() != 0 {
		t.Fatal("Reset must clear the register")
	}
}

func TestCRC15Width(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var c CRC15
	for i := 0; i < 10_000; i++ {
		c.Update(Level(rng.Intn(2)))
		if c.Sum() > crcMask {
			t.Fatalf("register escaped 15 bits: %#x", c.Sum())
		}
	}
}

// TestCRC15DetectsSingleBitFlips is the property that makes the checksum
// useful: flipping any single bit of the protected region changes the CRC.
func TestCRC15DetectsSingleBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 19 + rng.Intn(64)
		bits := make([]Level, n)
		for i := range bits {
			bits[i] = Level(rng.Intn(2))
		}
		orig := ChecksumBits(bits)
		for i := range bits {
			bits[i] ^= 1
			if ChecksumBits(bits) == orig {
				t.Fatalf("trial %d: flip at %d undetected", trial, i)
			}
			bits[i] ^= 1
		}
	}
}

// TestCRC15DetectsBurstErrors: CRC-15 detects all burst errors up to 15 bits.
func TestCRC15DetectsBurstErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 40 + rng.Intn(60)
		bits := make([]Level, n)
		for i := range bits {
			bits[i] = Level(rng.Intn(2))
		}
		orig := ChecksumBits(bits)
		burstLen := 2 + rng.Intn(14)
		start := rng.Intn(n - burstLen)
		// Flip the burst boundaries (guaranteeing a nonzero error pattern
		// spanning burstLen bits) plus random interior bits.
		mutated := make([]Level, n)
		copy(mutated, bits)
		mutated[start] ^= 1
		mutated[start+burstLen-1] ^= 1
		for i := start + 1; i < start+burstLen-1; i++ {
			if rng.Intn(2) == 0 {
				mutated[i] ^= 1
			}
		}
		if ChecksumBits(mutated) == orig {
			t.Fatalf("trial %d: burst of %d at %d undetected", trial, burstLen, start)
		}
	}
}

// TestCRC15Linearity: CRC(a xor b) == CRC(a) xor CRC(b) for equal-length
// streams, since the register update is linear over GF(2).
func TestCRC15Linearity(t *testing.T) {
	f := func(a, b uint64) bool {
		const n = 64
		bitsA := make([]Level, n)
		bitsB := make([]Level, n)
		bitsX := make([]Level, n)
		for i := 0; i < n; i++ {
			la := Level(a >> i & 1)
			lb := Level(b >> i & 1)
			bitsA[i], bitsB[i] = la, lb
			bitsX[i] = la ^ lb
		}
		return ChecksumBits(bitsX) == (ChecksumBits(bitsA) ^ ChecksumBits(bitsB))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
