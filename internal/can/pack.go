package can

// PackLevels ORs a span of levels into a bit-packed word buffer starting at
// bit offset off: bit i of the stream (word i/64, bit i%64) is set when
// levels[i] is recessive. Destination bits must be zero on entry — the
// caller provides a zeroed buffer — so wired-AND over several packed streams
// is plain word-wise AND. The packing matches trace.Recorder's storage
// (set bit = recessive), so both share this routine.
func PackLevels(words []uint64, off int, levels []Level) {
	i := 0
	// Head: fill the partially occupied word bit by bit.
	for ; i < len(levels) && (off+i)&63 != 0; i++ {
		words[(off+i)>>6] |= uint64(levels[i]&1) << ((off + i) & 63)
	}
	// Body: whole words, eight bits per iteration step kept simple — the
	// compiler unrolls the inner loop well and spans are short (≤ ~130 bits).
	for ; i+64 <= len(levels); i += 64 {
		var w uint64
		for j := 0; j < 64; j++ {
			w |= uint64(levels[i+j]&1) << j
		}
		words[(off+i)>>6] = w
	}
	// Tail.
	for ; i < len(levels); i++ {
		words[(off+i)>>6] |= uint64(levels[i]&1) << ((off + i) & 63)
	}
}

// dominantRunArr backs DominantRun: Dominant is the zero Level, so the zero
// array is all-dominant. It is never written, giving every returned run a
// stable backing-array identity — pointer-keyed span memos treat equal
// (pointer, length) pairs as equal bit content, which holds here because the
// content is immutable.
var dominantRunArr [256]Level

// DominantRun returns a read-only slice of n dominant levels (n ≤ 256,
// longer runs are clamped). Error flags and counterattack pulls commit such
// runs to the contested-window fast path; callers must not modify the
// returned slice.
func DominantRun(n int) []Level {
	if n > len(dominantRunArr) {
		n = len(dominantRunArr)
	}
	if n < 0 {
		n = 0
	}
	return dominantRunArr[:n]
}
