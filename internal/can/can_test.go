package can

import (
	"errors"
	"testing"
)

func TestLevelString(t *testing.T) {
	if Dominant.String() != "D" || Recessive.String() != "R" {
		t.Fatalf("unexpected level strings: %s %s", Dominant, Recessive)
	}
}

func TestLevelAnd(t *testing.T) {
	tests := []struct {
		a, b, want Level
	}{
		{Dominant, Dominant, Dominant},
		{Dominant, Recessive, Dominant},
		{Recessive, Dominant, Dominant},
		{Recessive, Recessive, Recessive},
	}
	for _, tt := range tests {
		if got := tt.a.And(tt.b); got != tt.want {
			t.Errorf("%v AND %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestResolve(t *testing.T) {
	if Resolve() != Recessive {
		t.Error("empty bus should float recessive")
	}
	if Resolve(Recessive, Recessive, Recessive) != Recessive {
		t.Error("all recessive should resolve recessive")
	}
	if Resolve(Recessive, Dominant, Recessive) != Dominant {
		t.Error("any dominant should win")
	}
}

func TestIDBitMSBFirst(t *testing.T) {
	// 0x555 = 101 0101 0101: alternating starting with recessive (1) at MSB.
	id := ID(0x555)
	for i := 0; i < IDBits; i++ {
		want := Recessive
		if i%2 == 1 {
			want = Dominant
		}
		if got := id.Bit(i); got != want {
			t.Errorf("bit %d of %s = %v, want %v", i, id, got, want)
		}
	}
}

func TestIDBitOutOfRange(t *testing.T) {
	id := ID(0)
	if id.Bit(-1) != Recessive || id.Bit(IDBits) != Recessive {
		t.Error("out-of-range bit positions should read recessive")
	}
}

func TestIDValid(t *testing.T) {
	if !MaxID.Valid() {
		t.Error("MaxID must be valid")
	}
	if (MaxID + 1).Valid() {
		t.Error("MaxID+1 must be invalid")
	}
}

func TestIDString(t *testing.T) {
	if got := ID(0x173).String(); got != "0x173" {
		t.Errorf("ID string = %q, want 0x173", got)
	}
}

func TestFrameValidate(t *testing.T) {
	tests := []struct {
		name    string
		frame   Frame
		wantErr error
	}{
		{"ok empty", Frame{ID: 0x100}, nil},
		{"ok full", Frame{ID: 0x7FF, Data: make([]byte, 8)}, nil},
		{"bad id", Frame{ID: 0x800}, ErrIDRange},
		{"bad len", Frame{ID: 0x1, Data: make([]byte, 9)}, ErrDataLen},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.frame.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestFrameCloneIndependence(t *testing.T) {
	f := Frame{ID: 0x10, Data: []byte{1, 2, 3}}
	g := f.Clone()
	g.Data[0] = 99
	if f.Data[0] != 1 {
		t.Error("Clone must deep-copy the payload")
	}
	if !f.Equal(&Frame{ID: 0x10, Data: []byte{1, 2, 3}}) {
		t.Error("original frame mutated")
	}
}

func TestFrameEqual(t *testing.T) {
	a := Frame{ID: 1, Data: []byte{1}}
	tests := []struct {
		name string
		b    Frame
		want bool
	}{
		{"same", Frame{ID: 1, Data: []byte{1}}, true},
		{"different id", Frame{ID: 2, Data: []byte{1}}, false},
		{"different len", Frame{ID: 1, Data: []byte{1, 2}}, false},
		{"different data", Frame{ID: 1, Data: []byte{9}}, false},
	}
	for _, tt := range tests {
		if got := a.Equal(&tt.b); got != tt.want {
			t.Errorf("%s: Equal = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: 0x123, Data: []byte{0xDE, 0xAD}}
	if got := f.String(); got != "0x123#DEAD" {
		t.Errorf("String() = %q", got)
	}
}
