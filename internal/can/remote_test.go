package can

import "testing"

func TestRemoteFrameValidate(t *testing.T) {
	ok := Frame{ID: 0x123, Remote: true, RequestLen: 8}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	withData := Frame{ID: 0x123, Remote: true, RequestLen: 2, Data: []byte{1}}
	if withData.Validate() == nil {
		t.Error("remote frame with data accepted")
	}
	badLen := Frame{ID: 0x123, Remote: true, RequestLen: 9}
	if badLen.Validate() == nil {
		t.Error("request length 9 accepted")
	}
}

func TestRemoteFrameString(t *testing.T) {
	f := Frame{ID: 0x123, Remote: true, RequestLen: 4}
	if f.String() != "0x123#R4" {
		t.Errorf("String() = %q", f.String())
	}
}

func TestRemoteFrameEncoding(t *testing.T) {
	f := Frame{ID: 0x123, Remote: true, RequestLen: 8}
	body := UnstuffedBody(&f)
	if body[PosRTR] != Recessive {
		t.Error("remote RTR must be recessive")
	}
	if got := DecodeField(body, PosDLCStart, DLCBits); got != 8 {
		t.Errorf("remote DLC field = %d, want the request length 8", got)
	}
	if len(body) != UnstuffedLen(0) {
		t.Errorf("remote body = %d bits, want the data-less %d", len(body), UnstuffedLen(0))
	}
}

func TestRemoteFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{ID: 0x123, Remote: true, RequestLen: 8},
		{ID: 0x7FF, Remote: true, RequestLen: 0},
		{ID: 0x000, Remote: true, RequestLen: 3},
		{ID: 0x18DAF110, Extended: true, Remote: true, RequestLen: 8},
		{ID: 0x00000001, Extended: true, Remote: true, RequestLen: 1},
	}
	for _, f := range frames {
		t.Run(f.String(), func(t *testing.T) {
			wire := WireBits(&f, Dominant)
			got, n, err := DecodeWire(wire)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(wire) {
				t.Errorf("consumed %d/%d", n, len(wire))
			}
			if !got.Equal(&f) {
				t.Errorf("decoded %s (remote=%v len=%d), want %s",
					got.String(), got.Remote, got.RequestLen, f.String())
			}
		})
	}
}

func TestDataBeatsRemoteBitwise(t *testing.T) {
	// The RTR bit is the last arbitration bit: a data frame (dominant RTR)
	// beats a remote frame with the same ID.
	data := Frame{ID: 0x123, Data: []byte{1}}
	remote := Frame{ID: 0x123, Remote: true, RequestLen: 1}
	db := UnstuffedBody(&data)
	rb := UnstuffedBody(&remote)
	for i := 0; i < PosRTR; i++ {
		if db[i] != rb[i] {
			t.Fatalf("bit %d differs before RTR", i)
		}
	}
	if db[PosRTR] != Dominant || rb[PosRTR] != Recessive {
		t.Error("data RTR must dominate remote RTR")
	}
}
