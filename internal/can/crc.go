package can

// CRCPoly is the CAN CRC-15 generator polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1, conventionally written as
// 0x4599 (the x^15 term is implicit in the shift).
const CRCPoly uint16 = 0x4599

// CRCBits is the width of the CAN frame checksum.
const CRCBits = 15

// crcMask keeps the register within 15 bits.
const crcMask uint16 = 1<<CRCBits - 1

// CRC15 is the running CRC register used while serializing or sampling a
// frame. The zero value is ready to use (CAN initializes the register to 0).
type CRC15 struct {
	reg uint16
}

// Update feeds one unstuffed bit (transmitted-order) into the register.
func (c *CRC15) Update(bit Level) {
	// Per ISO 11898-1: CRC_NXT = NXTBIT EXOR CRC_RG(14); shift left; if
	// CRC_NXT then CRC_RG ^= 0x4599.
	nxt := uint16(bit) ^ (c.reg >> (CRCBits - 1) & 1)
	c.reg = (c.reg << 1) & crcMask
	if nxt != 0 {
		c.reg ^= CRCPoly
	}
}

// Sum returns the current 15-bit checksum.
func (c *CRC15) Sum() uint16 { return c.reg & crcMask }

// Reset clears the register for a new frame.
func (c *CRC15) Reset() { c.reg = 0 }

// ChecksumBits computes the CRC-15 over a sequence of unstuffed levels in
// transmission order (SOF through the last data bit).
func ChecksumBits(bits []Level) uint16 {
	var c CRC15
	for _, b := range bits {
		c.Update(b)
	}
	return c.Sum()
}
