package controller

import (
	"fmt"
	"math/rand"
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

// noiseNode flips random bits on the wire by driving dominant with a given
// per-bit probability — transient electrical faults.
type noiseNode struct {
	rng  *rand.Rand
	prob float64
}

func (n *noiseNode) Drive(bus.BitTime) can.Level {
	if n.rng.Float64() < n.prob {
		return can.Dominant
	}
	return can.Recessive
}

func (n *noiseNode) Observe(bus.BitTime, can.Level) {}

// TestFuzzMultiNodeTraffic drives random traffic through random topologies
// and checks global invariants: every enqueued frame is delivered to every
// other node exactly once, in priority-consistent order per sender, with all
// controllers ending error-active at TEC 0.
func TestFuzzMultiNodeTraffic(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 911))
			nodes := 2 + rng.Intn(5)
			b := bus.New(bus.Rate500k)
			ctls := make([]*Controller, nodes)
			received := make([]map[string]int, nodes)
			for i := range ctls {
				i := i
				received[i] = make(map[string]int)
				ctls[i] = New(Config{
					Name:        fmt.Sprintf("ecu%d", i),
					AutoRecover: true,
					OnReceive: func(_ bus.BitTime, f can.Frame) {
						received[i][f.String()]++
					},
				})
				b.Attach(ctls[i])
			}
			// Unique IDs per (sender, frame) so deliveries are countable.
			sent := make([]can.Frame, 0, 32)
			totalFrames := 4 + rng.Intn(12)
			for k := 0; k < totalFrames; k++ {
				sender := rng.Intn(nodes)
				f := can.Frame{ID: can.ID(k*16 + sender)}
				dlc := rng.Intn(9)
				if dlc > 0 {
					f.Data = make([]byte, dlc)
					rng.Read(f.Data)
				}
				if err := ctls[sender].Enqueue(f); err != nil {
					t.Fatal(err)
				}
				sent = append(sent, f)
			}
			b.Run(int64(totalFrames)*200 + 500)

			for _, f := range sent {
				for i := range ctls {
					count := received[i][f.String()]
					if ctls[i].Stats().TxSuccess > 0 {
						// The sender itself never self-delivers.
					}
					isSender := false
					// Identify the sender by ID construction.
					if int(f.ID)%16 == i && int(f.ID)%16 < nodes {
						isSender = true
					}
					if isSender {
						if count != 0 {
							t.Errorf("sender %d self-delivered %s", i, f.String())
						}
						continue
					}
					if count != 1 {
						t.Errorf("node %d received %s %d times, want 1", i, f.String(), count)
					}
				}
			}
			for i, c := range ctls {
				if c.TEC() != 0 || c.State() != ErrorActive {
					t.Errorf("node %d ended TEC=%d state=%v", i, c.TEC(), c.State())
				}
				if c.PendingTx() != 0 {
					t.Errorf("node %d still has %d pending frames", i, c.PendingTx())
				}
			}
		})
	}
}

// TestNoiseRobustness injects random dominant glitches and checks the
// protocol self-heals: all frames eventually deliver (retransmission), no
// duplicates beyond the error-recovery semantics, and nobody ends bus-off
// under sporadic noise — the paper's Sec. IV-E argument that 32 consecutive
// errors are needed for a false-positive bus-off.
func TestNoiseRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	b := bus.New(bus.Rate500k)
	tx := New(Config{Name: "tx", AutoRecover: true})
	delivered := 0
	rx := New(Config{Name: "rx", AutoRecover: true,
		OnReceive: func(bus.BitTime, can.Frame) { delivered++ }})
	b.Attach(tx)
	b.Attach(rx)
	// One dominant glitch every ~500 bits on average (a brutally noisy bus;
	// real buses are orders of magnitude cleaner).
	b.Attach(&noiseNode{rng: rng, prob: 0.002})

	const n = 40
	for i := 0; i < n; i++ {
		if err := tx.Enqueue(can.Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(60_000)

	if tx.Stats().TxSuccess != n {
		t.Errorf("transmitted %d/%d frames under noise", tx.Stats().TxSuccess, n)
	}
	if delivered < n {
		t.Errorf("delivered %d/%d frames", delivered, n)
	}
	if tx.State() == BusOff || rx.State() == BusOff {
		t.Error("sporadic noise must never confine a node (needs 32 consecutive errors)")
	}
	t.Logf("under 0.2%% glitch noise: %d tx errors, %d rx errors, final TEC=%d REC=%d",
		sum(tx.Stats().TxErrors), sum(rx.Stats().RxErrors), tx.TEC(), rx.REC())
}

func sum(m map[ErrorKind]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// TestHeavyNoiseEventuallyConfines is the converse: a stuck-dominant fault
// (probability high enough to destroy every frame) must drive the
// transmitter into bus-off — fault confinement working as designed.
func TestHeavyNoiseEventuallyConfines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := bus.New(bus.Rate500k)
	tx := New(Config{Name: "tx", AutoRecover: false})
	rx := New(Config{Name: "rx", AutoRecover: false})
	b.Attach(tx)
	b.Attach(rx)
	b.Attach(&noiseNode{rng: rng, prob: 0.2}) // wire effectively broken

	if err := tx.Enqueue(can.Frame{ID: 0x100, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return tx.State() == BusOff }, 100_000) {
		t.Fatalf("transmitter survived a broken wire (TEC=%d)", tx.TEC())
	}
}
