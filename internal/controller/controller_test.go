package controller

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

// recorder collects frames delivered to a controller's application.
type recorder struct {
	frames []can.Frame
	times  []bus.BitTime
}

func (r *recorder) onReceive(t bus.BitTime, f can.Frame) {
	r.frames = append(r.frames, f)
	r.times = append(r.times, t)
}

func newTestController(name string, rec *recorder) *Controller {
	cfg := Config{Name: name, AutoRecover: true}
	if rec != nil {
		cfg.OnReceive = rec.onReceive
	}
	return New(cfg)
}

func TestSingleFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	rxc := newTestController("rx", &rx)
	b.Attach(tx)
	b.Attach(rxc)

	want := can.Frame{ID: 0x123, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}
	if err := tx.Enqueue(want); err != nil {
		t.Fatal(err)
	}
	b.Run(400)

	if len(rx.frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(rx.frames))
	}
	if !rx.frames[0].Equal(&want) {
		t.Errorf("received %s, want %s", rx.frames[0].String(), want.String())
	}
	if got := tx.Stats().TxSuccess; got != 1 {
		t.Errorf("TxSuccess = %d, want 1", got)
	}
	if tx.PendingTx() != 0 {
		t.Errorf("frame still queued after success")
	}
	if tx.TEC() != 0 || rxc.REC() != 0 {
		t.Errorf("error counters moved on a clean bus: TEC=%d REC=%d", tx.TEC(), rxc.REC())
	}
}

func TestZeroLengthFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	want := can.Frame{ID: 0x7FF}
	if err := tx.Enqueue(want); err != nil {
		t.Fatal(err)
	}
	b.Run(200)
	if len(rx.frames) != 1 || !rx.frames[0].Equal(&want) {
		t.Fatalf("zero-length frame not delivered: %v", rx.frames)
	}
}

func TestEnqueueRejectsInvalidFrames(t *testing.T) {
	c := newTestController("c", nil)
	if err := c.Enqueue(can.Frame{ID: 0x800}); err == nil {
		t.Error("oversized ID accepted")
	}
	if err := c.Enqueue(can.Frame{ID: 1, Data: make([]byte, 9)}); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestBackToBackFrames(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	const n = 5
	for i := 0; i < n; i++ {
		if err := tx.Enqueue(can.Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(int64(n)*150 + 100)
	if len(rx.frames) != n {
		t.Fatalf("received %d frames, want %d", len(rx.frames), n)
	}
	for i, f := range rx.frames {
		if f.Data[0] != byte(i) {
			t.Errorf("frame %d out of order: payload %d", i, f.Data[0])
		}
	}
	// Consecutive frames must be separated by at least EOF+IFS worth of bits.
	for i := 1; i < len(rx.times); i++ {
		if gap := rx.times[i] - rx.times[i-1]; gap < 44 {
			t.Errorf("frames %d and %d only %d bits apart", i-1, i, gap)
		}
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	high := newTestController("high", nil) // higher numeric ID = lower priority
	low := newTestController("low", nil)
	b.Attach(high)
	b.Attach(low)
	b.Attach(newTestController("rx", &rx))

	if err := high.Enqueue(can.Frame{ID: 0x400, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := low.Enqueue(can.Frame{ID: 0x100, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	b.Run(600)

	if len(rx.frames) != 2 {
		t.Fatalf("received %d frames, want 2", len(rx.frames))
	}
	if rx.frames[0].ID != 0x100 || rx.frames[1].ID != 0x400 {
		t.Errorf("arbitration order wrong: %s then %s", rx.frames[0].String(), rx.frames[1].String())
	}
	if high.Stats().ArbitrationLosses == 0 {
		t.Error("loser did not record an arbitration loss")
	}
	if high.TEC() != 0 || low.TEC() != 0 {
		t.Error("arbitration must not raise errors")
	}
}

func TestArbitrationTransmitterReceivesWinner(t *testing.T) {
	// The losing transmitter must deliver the winner's frame to its own
	// application (it becomes a receiver mid-frame).
	b := bus.New(bus.Rate500k)
	var loserRx recorder
	winner := newTestController("winner", nil)
	loser := New(Config{Name: "loser", AutoRecover: true, OnReceive: loserRx.onReceive})
	b.Attach(winner)
	b.Attach(loser)
	b.Attach(newTestController("third", nil)) // someone to ACK

	if err := winner.Enqueue(can.Frame{ID: 0x010, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	if err := loser.Enqueue(can.Frame{ID: 0x020, Data: []byte{8}}); err != nil {
		t.Fatal(err)
	}
	b.Run(600)

	if len(loserRx.frames) == 0 || loserRx.frames[0].ID != 0x010 {
		t.Fatalf("loser did not receive winner's frame: %v", loserRx.frames)
	}
	if winner.Stats().TxSuccess != 1 || loser.Stats().TxSuccess != 1 {
		t.Errorf("both frames should eventually transmit: winner=%d loser=%d",
			winner.Stats().TxSuccess, loser.Stats().TxSuccess)
	}
}

func TestIdenticalIDCollisionResolvedByData(t *testing.T) {
	// Two nodes sending the same ID simultaneously: arbitration cannot
	// separate them; the first differing data bit causes a bit error for the
	// node transmitting recessive. Both must survive (retransmit) without
	// deadlock.
	b := bus.New(bus.Rate500k)
	var rx recorder
	a := newTestController("a", nil)
	c := newTestController("c", nil)
	b.Attach(a)
	b.Attach(c)
	b.Attach(newTestController("rx", &rx))

	if err := a.Enqueue(can.Frame{ID: 0x123, Data: []byte{0x00}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(can.Frame{ID: 0x123, Data: []byte{0xFF}}); err != nil {
		t.Fatal(err)
	}
	b.Run(1500)
	if a.Stats().TxSuccess != 1 || c.Stats().TxSuccess != 1 {
		t.Fatalf("both frames should transmit after the collision: a=%d c=%d",
			a.Stats().TxSuccess, c.Stats().TxSuccess)
	}
	if len(rx.frames) != 2 {
		t.Fatalf("receiver got %d frames, want 2", len(rx.frames))
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := New(Config{Name: "tx", AutoRecover: true, SortQueueByPriority: true})
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	for _, id := range []can.ID{0x300, 0x100, 0x200} {
		if err := tx.Enqueue(can.Frame{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(600)
	if len(rx.frames) != 3 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	want := []can.ID{0x100, 0x200, 0x300}
	for i, f := range rx.frames {
		if f.ID != want[i] {
			t.Errorf("frame %d: got %s want %s", i, f.ID, want[i])
		}
	}
}

func TestFIFOQueueOrdering(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	for _, id := range []can.ID{0x300, 0x100, 0x200} {
		if err := tx.Enqueue(can.Frame{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(600)
	want := []can.ID{0x300, 0x100, 0x200}
	if len(rx.frames) != 3 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	for i, f := range rx.frames {
		if f.ID != want[i] {
			t.Errorf("frame %d: got %s want %s", i, f.ID, want[i])
		}
	}
}
