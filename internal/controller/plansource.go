package controller

import (
	"sync"
	"sync/atomic"

	"michican/internal/can"
)

// PlanSource is a content-addressed, concurrency-safe cache of compiled
// transmission plans shared across controllers. A fleet of vehicles stamped
// from the same communication matrix transmits the same frame population —
// tens of IDs times a 256-value rolling-counter rotation — and without
// sharing, every vehicle's controllers serialize and store their own copy of
// every plan. A PlanSource wired into N controllers keeps exactly one
// immutable copy of each plan's hot arrays (the wire bits, the stuff map,
// and the pre-resolved splice span) and hands out thin per-controller
// wrappers copy-on-write: the wrapper carries the controller's own mutable
// header (frame value, splice memo) while the arrays are shared and never
// written after publication.
//
// Sharing is purely a memory/compile-time optimization: a plan's content
// depends only on the frame, so a controller behaves bit-identically with
// and without a source — the fleet determinism tests pin exactly that.
type PlanSource struct {
	mu    sync.RWMutex
	plans map[planKey]*sharedPlan
	// hits/misses count resolve requests served from the table vs. built
	// (first sight); bytes approximates the resident size of the shared
	// arrays. All are read lock-free by Stats.
	hits   atomic.Int64
	misses atomic.Int64
	bytes  atomic.Int64
}

// sharedPlan is the immutable, fleet-shared core of a compiled plan. All
// fields are write-once before publication into the source's table.
type sharedPlan struct {
	bits     []can.Level
	isStuff  []bool
	arbEnd   int
	ackIdx   int
	resolved []can.Level // window + dominant ACK + recessive intermission
}

// planSourceMax bounds the shared table. It is sized an order of magnitude
// above a realistic matrix's full rotation; past it new plans are served
// unshared rather than resetting (a reset would re-serialize across the
// whole fleet at once).
const planSourceMax = 1 << 17

// NewPlanSource creates an empty shared plan cache.
func NewPlanSource() *PlanSource {
	return &PlanSource{plans: make(map[planKey]*sharedPlan)}
}

// PlanSourceStats is a point-in-time snapshot of a source's counters.
type PlanSourceStats struct {
	// Hits counts plan resolutions served from the shared table; Misses
	// counts first-sight builds. With N vehicles over one matrix the steady
	// hit rate approaches (N-1)/N.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Plans is the number of distinct compiled plans resident.
	Plans int `json:"plans"`
	// ResidentBytes approximates the memory held by the shared plan arrays
	// (one copy fleet-wide, however many controllers reference them).
	ResidentBytes int64 `json:"resident_bytes"`
}

// Stats returns the source's counters.
func (s *PlanSource) Stats() PlanSourceStats {
	if s == nil {
		return PlanSourceStats{}
	}
	s.mu.RLock()
	n := len(s.plans)
	s.mu.RUnlock()
	return PlanSourceStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Plans:         n,
		ResidentBytes: s.bytes.Load(),
	}
}

// HitRate returns Hits / (Hits + Misses), or zero before any resolution.
func (s *PlanSource) HitRate() float64 {
	st := s.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		return float64(st.Hits) / float64(total)
	}
	return 0
}

// planFor resolves the shared plan for a classical frame (the caller has
// already excluded FD and oversize frames) and wraps it for one controller.
// The first build of each key wins the publication race, so every controller
// ends up referencing the same arrays.
func (s *PlanSource) planFor(key planKey, f can.Frame) *txPlan {
	s.mu.RLock()
	sp := s.plans[key]
	s.mu.RUnlock()
	if sp == nil {
		s.misses.Add(1)
		base := newTxPlan(f)
		n := len(base.bits) + IntermissionBits
		resolved := make([]can.Level, n)
		copy(resolved, base.bits)
		resolved[base.ackIdx] = can.Dominant
		for i := len(base.bits); i < n; i++ {
			resolved[i] = can.Recessive
		}
		sp = &sharedPlan{
			bits:     base.bits,
			isStuff:  base.isStuff,
			arbEnd:   base.arbEnd,
			ackIdx:   base.ackIdx,
			resolved: resolved,
		}
		s.mu.Lock()
		if s.plans == nil {
			s.plans = make(map[planKey]*sharedPlan) // zero-value source, e.g. decoded from a stored spec
		}
		if prev, ok := s.plans[key]; ok {
			sp = prev
		} else if len(s.plans) < planSourceMax {
			s.plans[key] = sp
			s.bytes.Add(int64(len(sp.bits)) + int64(len(sp.isStuff)) + int64(len(sp.resolved)))
		}
		s.mu.Unlock()
	} else {
		s.hits.Add(1)
	}
	return &txPlan{
		frame:    f,
		bits:     sp.bits,
		isStuff:  sp.isStuff,
		arbEnd:   sp.arbEnd,
		ackIdx:   sp.ackIdx,
		resolved: sp.resolved,
	}
}

// SetPlanSource wires a shared plan cache into this controller: subsequent
// serializations resolve through it, sharing the immutable plan arrays with
// every other controller on the same source. Wiring (or rewiring) is safe at
// any quiescent point — plans already cached locally stay valid, and shared
// and locally built plans are bit-identical by construction.
func (c *Controller) SetPlanSource(s *PlanSource) { c.plans = s }

// PlanSource returns the wired shared plan cache, or nil.
func (c *Controller) PlanSource() *PlanSource { return c.plans }
