package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var _ bus.ContendCommitter = (*Controller)(nil)

// ContendBits implements bus.ContendCommitter. Two controller states publish
// a conditional stream:
//
//   - mid-frame transmitter: the same plan spans as CommittedBits. The
//     commitment there is unconditional only under the sole-transmitter
//     premise; under contention it holds bit by bit as long as the resolved
//     level matches the driven one, which is exactly the condition the bus's
//     divergence clamp enforces — the first overridden recessive (arbitration
//     loss or bit error) is re-stepped exactly;
//   - active error flag: the remaining dominant flag bits, unconditional by
//     construction (the flag ignores the wire entirely);
//   - pending SOF: the controller decided last bit to assert SOF
//     (driveNext is dominant), so the head frame's serialized plan from the
//     SOF through the CRC delimiter is its conditional stream — the frame it
//     will begin transmitting holds bit by bit as long as it keeps winning,
//     and the first overridden recessive is an arbitration loss (or stuff
//     error) re-stepped exactly, as mid-frame.
//
// Passive flags, delimiters, and queue-less idle commit nothing — they are
// recessive waits, covered by the passive side of the negotiation.
func (c *Controller) ContendBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	switch c.phase {
	case phaseFrame:
		return c.CommittedBits(now)
	case phaseActiveFlag:
		n := ActiveFlagBits - c.flagCount
		if n <= 0 {
			return nil, now
		}
		run := can.DominantRun(n)
		return run, now + bus.BitTime(len(run))
	case phaseIdle:
		if !c.pendingSOF {
			return nil, now
		}
		if f, ok := c.queue.head(); ok {
			p := c.queue.headPlan()
			if p == nil {
				p = c.planFor(f)
			}
			c.pendingPlan = p
			run := p.bits[:p.ackIdx]
			return run, now + bus.BitTime(len(run))
		}
	}
	return nil, now
}

// ContendFrameBit implements bus.ContendCommitter: the transmit-plan wire
// index for a mid-frame transmitter, 0 for a pending SOF, -1 for flag runs.
func (c *Controller) ContendFrameBit() int {
	if c.phase == phaseFrame && c.transmitting {
		return c.txIdx
	}
	if c.pendingSOF {
		return 0
	}
	return -1
}

// TxCompleteWithin reports whether delivering the next n resolved bits could
// fire this controller's transmit-completion callback (txSuccess and with it
// Config.OnTransmit). Only a transmitting controller whose plan's last bit
// lies within the next n bits completes; a receiver, an error-signalling
// node, or a transmitter whose frame extends past the span cannot. Schedule
// wrappers (restbus.Replayer) use the answer to decide whether deadline
// processing must interleave with span delivery or may batch at the span's
// end.
func (c *Controller) TxCompleteWithin(n int) bool {
	switch c.phase {
	case phaseFrame:
		return c.transmitting && c.txIdx+n >= len(c.plan.bits)
	case phaseIdle:
		if !c.pendingSOF {
			return false
		}
		if c.pendingPlan == nil {
			return true // plan unknown: assume completion is reachable
		}
		return n >= len(c.pendingPlan.bits)
	}
	return false
}

// InFrame reports whether the controller is inside a frame or signalling an
// error — the phases whose drive decisions never consult the transmit queue.
// While it holds, an Enqueue can be deferred to any later bit of the phase
// without changing externally visible behaviour, which is what lets schedule
// wrappers (restbus.Replayer) process deadlines at batch boundaries instead
// of clamping every span at the next due bit.
func (c *Controller) InFrame() bool {
	switch c.phase {
	case phaseFrame, phaseActiveFlag, phasePassiveFlag, phaseErrorDelim:
		return true
	}
	return false
}

// contendScan answers passivity for a mid-frame receiver offered a contested
// span (frameBit < 0: the levels come from error flags or a counterattack
// pull, not from this frame's serialized plan — by construction such spans
// are dominant runs). The receive pipeline may hit a stuff error anywhere in
// them, so the scan walks a copy of the destuffer and accepts through the
// detection bit: the receiver drives recessive up to and including it, and
// its own error flag only reaches the wire on the following bit, which the
// clamp leaves to exact stepping.
func (c *Controller) contendScan(levels []can.Level) int {
	if c.rxTrailer != 0 || c.rxAwaitStuff || c.rxFSIdx >= 0 || (c.rxFDKnown && c.rxFD) {
		return 0 // trailer form checks / FD fixed-stuff region: exact-step
	}
	// Stay strictly inside the dynamically stuffed region, so the CRC check
	// and trailer transitions land on exact steps. While the header is still
	// being decoded, the classical DLC-0 length floors every layout the frame
	// can still turn out to have — provided no recessive bit is consumed,
	// since a recessive IDE/FDF would switch to extended or FD framing.
	stable := c.rxFDKnown && !c.rxFD && c.rxLayoutKnown && c.rxDLC >= 0
	regionEnd := can.UnstuffedLen(0)
	if stable {
		regionEnd = c.rxLayout.UnstuffedLen(c.rxDataLen)
	}
	budget := regionEnd - len(c.rxBits) - 1
	if budget <= 0 {
		return 0
	}
	if budget > len(levels) {
		budget = len(levels)
	}
	destuf := c.rxDestuf
	for i := 0; i < budget; i++ {
		if !stable && levels[i] != can.Dominant {
			return i
		}
		if _, err := destuf.Next(levels[i]); err != nil {
			return i + 1
		}
	}
	return budget
}

// errorSignalScan replays the passive-flag / error-delimiter counters over a
// span on copies, accepting through the delimiter-completion bit: the node
// drives recessive throughout, the EvErrorEnd transition fires within the
// prefix (ObserveRun replays it at its exact bit), and intermission — where
// the transmit queue starts mattering — begins on the following bit.
func (c *Controller) errorSignalScan(levels []can.Level) int {
	ph := c.phase
	flagCount, delimCount := c.flagCount, c.delimCount
	passiveLast, passiveBegun := c.passiveLast, c.passiveBegun
	for i, level := range levels {
		if ph == phasePassiveFlag {
			if passiveBegun && level == passiveLast {
				flagCount++
			} else {
				passiveLast, passiveBegun, flagCount = level, true, 1
			}
			if flagCount >= PassiveFlagBits {
				ph = phaseErrorDelim
				delimCount = 0
			}
			continue
		}
		if level == can.Dominant {
			delimCount = 0
			continue
		}
		delimCount++
		if delimCount >= ErrorDelimiterBits {
			return i + 1
		}
	}
	return len(levels)
}
