// Package controller implements a bit-accurate CAN 2.0A protocol controller:
// the data-link engine that every ECU in the simulation (benign, attacker,
// and the MichiCAN defender's own application traffic) uses to exchange
// frames.
//
// The controller implements the subset of ISO 11898-1 that the MichiCAN
// paper's evaluation depends on: frame serialization with bit stuffing and
// CRC-15, CSMA/CR arbitration, bit monitoring, stuff/form/CRC/ACK error
// detection, active and passive error flags, transmit/receive error counters
// (TEC/REC) with the error-active → error-passive → bus-off fault-confinement
// rules, suspend transmission for error-passive transmitters, automatic
// retransmission, and bus-off recovery after 128 occurrences of 11 recessive
// bits.
//
// The controller is a bus.Node: the simulated bus calls Drive then Observe
// once per nominal bit time. All protocol logic lives in Observe, which also
// decides the level to drive during the next bit.
package controller

import (
	"errors"
	"fmt"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

// State is the fault-confinement state of a CAN node (Fig. 1b of the paper).
type State uint8

const (
	// ErrorActive nodes signal errors with active (dominant) error flags.
	ErrorActive State = iota + 1
	// ErrorPassive nodes signal errors with passive (recessive) error flags
	// and observe a suspend-transmission period after transmitting.
	ErrorPassive
	// BusOff nodes do not participate in bus traffic until recovery.
	BusOff
)

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Fault-confinement thresholds per ISO 11898-1.
const (
	// PassiveThreshold is the TEC/REC value above which a node is
	// error-passive.
	PassiveThreshold = 127
	// BusOffThreshold is the TEC value at which a node enters bus-off.
	BusOffThreshold = 256
	// TxErrorPenalty is added to the TEC when a transmitter detects an error.
	TxErrorPenalty = 8
	// RecoverySequences is the number of 11-recessive-bit sequences a
	// bus-off node must observe before rejoining as error-active.
	RecoverySequences = 128
	// RecoveryIdleBits is the length of one recovery idle sequence.
	RecoveryIdleBits = 11
	// ActiveFlagBits is the number of dominant bits in an active error flag.
	ActiveFlagBits = 6
	// PassiveFlagBits is the number of recessive bits in a passive error
	// flag before the delimiter (the paper counts flag+delimiter = 14).
	PassiveFlagBits = 6
	// ErrorDelimiterBits is the number of recessive bits closing any error
	// frame.
	ErrorDelimiterBits = 8
	// IntermissionBits is the inter-frame space.
	IntermissionBits = can.IntermissionBits
	// SuspendBits is the suspend-transmission penalty for an error-passive
	// node that transmitted the current or previous frame.
	SuspendBits = 8
)

// ErrorKind classifies a detected protocol error.
type ErrorKind uint8

// The five CAN error types (Sec. II-B); the paper's defense exploits Bit and
// Stuff errors.
const (
	BitError ErrorKind = iota + 1
	StuffError
	FormError
	CRCError
	AckError
)

// String names the error kind.
func (k ErrorKind) String() string {
	switch k {
	case BitError:
		return "bit"
	case StuffError:
		return "stuff"
	case FormError:
		return "form"
	case CRCError:
		return "crc"
	case AckError:
		return "ack"
	default:
		return fmt.Sprintf("ErrorKind(%d)", uint8(k))
	}
}

// phase is the controller's position within the frame/error/idle cycle.
type phase uint8

const (
	phaseIdle phase = iota + 1
	phaseFrame
	phaseActiveFlag
	phasePassiveFlag
	phaseErrorDelim
	phaseIntermission
	phaseSuspend
	phaseBusOff
)

// Stats accumulates observable controller activity for the experiments.
type Stats struct {
	// TxSuccess counts frames transmitted and acknowledged.
	TxSuccess int
	// TxAttempts counts transmission attempts including retransmissions.
	TxAttempts int
	// TxErrors counts errors detected while transmitting, by kind.
	TxErrors map[ErrorKind]int
	// RxSuccess counts frames received with a valid CRC.
	RxSuccess int
	// RxErrors counts errors detected while receiving, by kind.
	RxErrors map[ErrorKind]int
	// ArbitrationLosses counts arbitration rounds lost to a lower ID.
	ArbitrationLosses int
	// BusOffEvents counts transitions into the bus-off state.
	BusOffEvents int
	// Recoveries counts bus-off recoveries back to error-active.
	Recoveries int
}

func newStats() Stats {
	return Stats{
		TxErrors: make(map[ErrorKind]int),
		RxErrors: make(map[ErrorKind]int),
	}
}

// Config parameterizes a Controller.
type Config struct {
	// Name identifies the controller in traces and test failures.
	Name string
	// AutoRecover enables automatic bus-off recovery after 128×11 recessive
	// bits (most integrated controllers support this; the paper's persistent
	// attacker relies on it). Default true via New.
	AutoRecover bool
	// SortQueueByPriority makes the transmit mailbox always offer the
	// lowest-ID pending frame first, as priority-mailbox controllers do.
	// When false the queue is FIFO (Experiment 6 relies on FIFO order).
	SortQueueByPriority bool
	// ListenOnly puts the controller in bus-monitoring mode: it receives
	// frames but never drives the wire — no ACKs, no error flags, no
	// transmissions (Enqueue fails). Real controllers offer this for
	// diagnostics; a listen-only IDS is invisible to the bus.
	ListenOnly bool
	// OnReceive, when set, is invoked for every frame received with a valid
	// CRC (excluding the controller's own transmissions).
	OnReceive func(t bus.BitTime, f can.Frame)
	// OnTransmit, when set, is invoked when one of this controller's frames
	// completes successfully.
	OnTransmit func(t bus.BitTime, f can.Frame)
	// OnStateChange, when set, is invoked on fault-confinement transitions.
	OnStateChange func(t bus.BitTime, old, new State)
	// OnError, when set, is invoked whenever this controller detects a
	// protocol error (before the error flag is sent).
	OnError func(t bus.BitTime, kind ErrorKind, transmitting bool)
	// Plans, when set, resolves frame serializations through a shared
	// content-addressed plan cache instead of building them per controller;
	// see PlanSource. Behavior is bit-identical either way.
	Plans *PlanSource
}

// Controller is a simulated CAN protocol controller. Create with New.
type Controller struct {
	cfg   Config
	state State
	tec   int
	rec   int
	stats Stats

	queue txQueue

	phase     phase
	driveNext can.Level

	// Frame-attempt state (phaseFrame).
	transmitting bool
	plan         *txPlan
	txIdx        int
	acked        bool
	// planCache memoizes serializations of recently transmitted frames
	// (periodic traffic retransmits a small fixed message set); see planFor.
	planCache map[planKey]*txPlan
	// plans, when non-nil, is the fleet-shared plan cache consulted on
	// planCache misses (see PlanSource); wired from Config.Plans or
	// SetPlanSource.
	plans *PlanSource
	// planSlots is a direct-mapped front cache over planCache: the map probe
	// hashes the full frame content on every lookup, which dominates the
	// compiled-splice offer path, so hot frames are also indexed by a cheap
	// hash and verified by value comparison. Lazily sized; misses fall
	// through to the map.
	planSlots []*txPlan
	// rxSpanCache memoizes the receive pipeline's end state per committed
	// span (see rxRun); adoption copies the snapshot into the controller's
	// own working buffers, so the cached slices are never aliased.
	rxSpanCache []rxSpanSlot

	// Receive pipeline, active for every frame on the bus from its SOF.
	rxDestuf      can.Destuffer
	rxBits        []can.Level
	rxCRC         can.CRC15
	rxDLC         int
	rxCRCOK       bool
	rxTrailer     int // 0 while in the stuffed region; 1..10 trailer bit index
	rxAwaitStuff  bool
	rxLayout      can.Layout
	rxLayoutKnown bool
	rxRemote      bool
	rxDataLen     int
	// FD receive state: parallel FD CRCs run over every wire bit of the
	// dynamic region (FD CRCs cover stuff bits), plus the fixed-stuff
	// region cursor.
	rxFD        bool
	rxFDKnown   bool
	rxFDCRC17   *can.FDCRC
	rxFDCRC21   *can.FDCRC
	rxDynStuff  int
	rxFSIdx     int // payload index within the fixed-stuff region
	rxFSBNext   bool
	rxSCBits    [4]can.Level
	rxFDCRCBits []can.Level
	rxLastWire  can.Level
	// rxWire counts the wire bits of the current frame this controller has
	// consumed (SOF included, so it reads 1 after the SOF bit). A receiver is
	// bit-synchronized to a transmitter exactly when rxWire equals the
	// transmitter's txIdx — the proof the frame fast path relies on.
	rxWire int

	// Error-signalling counters.
	flagCount    int
	delimCount   int
	passiveLast  can.Level
	passiveBegun bool

	// Idle / intermission / suspend bookkeeping.
	interCount   int
	suspendCount int
	idleRun      int

	// Suspend-transmission rule: an error-passive node suspends if it
	// transmitted the current or previous frame (ISO 11898, quoted in
	// Sec. V-C). framesSinceTx counts frame attempts by other nodes since
	// this node's last attempt.
	framesSinceTx int

	// pendingSOF records that we decided to assert SOF during the next bit,
	// so that when the dominant level appears we know we are a contender.
	pendingSOF bool

	// pendingPlan caches the head frame's plan between the pending-SOF
	// ContendBits query and the beginFrame that consumes it, saving the
	// second plan-cache probe; beginFrame validates it against the live
	// queue head before trusting it.
	pendingPlan *txPlan

	// Bus-off recovery progress.
	recoverSeqs int
	recoverRun  int

	// hyperCallbacksOK permits hyperperiod chains despite configured
	// callbacks; see AllowHyperWithCallbacks (hyperpath.go).
	hyperCallbacksOK bool

	// Telemetry. tel's zero value is a no-op probe; lastTEC/lastREC track
	// the last emitted counter values so EvTEC/EvREC events carry the
	// previous value and fire only on change.
	tel     telemetry.Probe
	lastTEC int
	lastREC int
}

var _ bus.Node = (*Controller)(nil)

// New creates an idle, error-active controller.
func New(cfg Config) *Controller {
	c := &Controller{
		cfg:           cfg,
		plans:         cfg.Plans,
		state:         ErrorActive,
		stats:         newStats(),
		phase:         phaseIdle,
		driveNext:     can.Recessive,
		rxDLC:         -1,
		framesSinceTx: 2, // no suspend before the first own transmission
	}
	c.rxBits = make([]can.Level, 0, can.UnstuffedLen(can.MaxDataLen))
	return c
}

// Name returns the configured controller name.
func (c *Controller) Name() string { return c.cfg.Name }

// SetTelemetry wires the controller to a telemetry hub, registering it under
// its configured name. The controller emits arbitration outcomes, error
// episodes, TEC/REC transitions, bus-off entry, and recovery. A nil hub
// disables emission (the default).
func (c *Controller) SetTelemetry(hub *telemetry.Hub) {
	c.tel = hub.Probe(c.cfg.Name)
	c.lastTEC, c.lastREC = c.tec, c.rec
}

// emitCounters emits EvTEC/EvREC for any counter change since the last
// emission. Call after every mutation of tec or rec; no-op when unwired.
func (c *Controller) emitCounters(t bus.BitTime) {
	if !c.tel.Enabled() {
		return
	}
	if c.tec != c.lastTEC {
		c.tel.Emit(int64(t), telemetry.EvTEC, int64(c.tec), int64(c.lastTEC))
		c.lastTEC = c.tec
	}
	if c.rec != c.lastREC {
		c.tel.Emit(int64(t), telemetry.EvREC, int64(c.rec), int64(c.lastREC))
		c.lastREC = c.rec
	}
}

// State returns the current fault-confinement state.
func (c *Controller) State() State { return c.state }

// TEC returns the transmit error counter.
func (c *Controller) TEC() int { return c.tec }

// REC returns the receive error counter.
func (c *Controller) REC() int { return c.rec }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.TxErrors = make(map[ErrorKind]int, len(c.stats.TxErrors))
	for k, v := range c.stats.TxErrors {
		s.TxErrors[k] = v
	}
	s.RxErrors = make(map[ErrorKind]int, len(c.stats.RxErrors))
	for k, v := range c.stats.RxErrors {
		s.RxErrors[k] = v
	}
	return s
}

// ErrListenOnly indicates a transmission request on a monitoring-mode
// controller.
var ErrListenOnly = errors.New("controller: listen-only mode cannot transmit")

// Enqueue schedules a frame for transmission. It returns an error if the
// frame is invalid or the controller is in listen-only mode.
func (c *Controller) Enqueue(f can.Frame) error {
	if c.cfg.ListenOnly {
		return ErrListenOnly
	}
	if err := f.Validate(); err != nil {
		return err
	}
	c.queue.push(f.Clone(), nil, c.cfg.SortQueueByPriority)
	return nil
}

// PendingTx returns the number of frames waiting for transmission
// (including one mid-retransmission).
func (c *Controller) PendingTx() int { return c.queue.len() }

// Transmitting reports whether the controller is actively driving a frame on
// the bus this instant.
func (c *Controller) Transmitting() bool {
	return c.phase == phaseFrame && c.transmitting
}

// Drive implements bus.Node: it returns the level decided at the end of the
// previous bit.
func (c *Controller) Drive(_ bus.BitTime) can.Level { return c.driveNext }

// Observe implements bus.Node: it consumes the resolved bus level for bit t,
// advances the protocol state machine, and decides the level to drive during
// bit t+1.
func (c *Controller) Observe(t bus.BitTime, level can.Level) {
	if level == can.Recessive {
		c.idleRun++
	} else {
		c.idleRun = 0
	}
	c.driveNext = can.Recessive

	switch c.phase {
	case phaseBusOff:
		c.observeBusOff(t, level)
	case phaseIdle:
		c.observeIdle(t, level)
	case phaseFrame:
		c.observeFrame(t, level)
	case phaseActiveFlag:
		c.observeActiveFlag(t, level)
	case phasePassiveFlag:
		c.observePassiveFlag(t, level)
	case phaseErrorDelim:
		c.observeErrorDelim(t, level)
	case phaseIntermission:
		c.observeIntermission(t, level)
	case phaseSuspend:
		c.observeSuspend(t, level)
	}
}

func (c *Controller) observeBusOff(t bus.BitTime, level can.Level) {
	if !c.cfg.AutoRecover {
		return
	}
	if level == can.Recessive {
		c.recoverRun++
		if c.recoverRun >= RecoveryIdleBits {
			c.recoverSeqs++
			c.recoverRun = 0
		}
	} else {
		c.recoverRun = 0
	}
	if c.recoverSeqs >= RecoverySequences {
		old := c.state
		c.state = ErrorActive
		c.tec, c.rec = 0, 0
		c.recoverSeqs, c.recoverRun = 0, 0
		c.phase = phaseIdle
		c.stats.Recoveries++
		c.tel.Emit(int64(t), telemetry.EvRecover, 0, 0)
		c.emitCounters(t)
		c.notifyState(t, old, c.state)
	}
}

func (c *Controller) observeIdle(t bus.BitTime, level can.Level) {
	if level == can.Dominant {
		// Someone asserted SOF (possibly us — Drive already returned
		// dominant if we decided to start last bit).
		c.beginFrame(t, level, c.pendingSOF)
		c.pendingSOF = false
		return
	}
	// Bus idle; start a transmission next bit if a frame is pending.
	if c.queue.len() > 0 {
		c.driveNext = can.Dominant
		c.pendingSOF = true
	}
}

func (c *Controller) observeIntermission(t bus.BitTime, level can.Level) {
	if level == can.Dominant {
		// A node started early (or overload condition, simplified): treat
		// as SOF of a new frame.
		c.beginFrame(t, level, false)
		return
	}
	c.interCount++
	if c.interCount >= IntermissionBits {
		if c.state == ErrorPassive && c.framesSinceTx < 2 {
			c.phase = phaseSuspend
			c.suspendCount = 0
			return
		}
		c.phase = phaseIdle
		if c.queue.len() > 0 {
			c.driveNext = can.Dominant
			c.pendingSOF = true
		}
	}
}

func (c *Controller) observeSuspend(t bus.BitTime, level can.Level) {
	if level == can.Dominant {
		// Another node accessed the bus during our suspend period; we join
		// as a receiver.
		c.beginFrame(t, level, false)
		return
	}
	c.suspendCount++
	if c.suspendCount >= SuspendBits {
		c.phase = phaseIdle
		if c.queue.len() > 0 {
			c.driveNext = can.Dominant
			c.pendingSOF = true
		}
	}
}

// notifyState invokes the state-change callback if configured.
func (c *Controller) notifyState(t bus.BitTime, old, new State) {
	if old != new && c.cfg.OnStateChange != nil {
		c.cfg.OnStateChange(t, old, new)
	}
}
