package controller

import (
	"unsafe"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

var (
	_ bus.Transmitting = (*Controller)(nil)
	_ bus.RunObserver  = (*Controller)(nil)
)

// CommittedBits implements bus.Transmitting. A transmitter mid-frame has its
// entire wire stream serialized up front (txPlan), so as long as every other
// node stays recessive, the bits it will drive are known in advance. Two
// spans of the plan qualify:
//
//   - arbitration through the CRC delimiter (txIdx in [1, ackIdx)): under the
//     sole-transmitter premise no competing dominant bit can appear, so
//     arbitration is uncontested by construction — any contender either
//     commits bits itself (two committers, bus declines) or reports a
//     dominant driveNext (pins the span);
//   - ACK delimiter through the last EOF bit (txIdx in (ackIdx, len)). The
//     trailer levels are unconditional — all recessive — so the final EOF bit
//     commits too; txSuccess (callbacks, mailbox pop, counter updates) then
//     fires inside the batch at the span's last bit, exactly as per-bit
//     stepping would, and the queue cannot be read again before the next
//     exact-stepped bit.
//
// The SOF (txIdx 0 never occurs between bits — beginFrame consumes it) and
// the ACK slot (its observed level feeds back into acked) stay on the exact
// path.
func (c *Controller) CommittedBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	if c.phase != phaseFrame || !c.transmitting || c.plan == nil {
		return nil, now
	}
	switch {
	case c.txIdx >= 1 && c.txIdx < c.plan.ackIdx:
		run := c.plan.bits[c.txIdx:c.plan.ackIdx]
		return run, now + bus.BitTime(len(run))
	case c.txIdx > c.plan.ackIdx && c.txIdx < len(c.plan.bits):
		run := c.plan.bits[c.txIdx:]
		return run, now + bus.BitTime(len(run))
	}
	return nil, now
}

// FrameBit implements bus.Transmitting: the wire index (SOF = 0) of the next
// bit this transmitter drives.
func (c *Controller) FrameBit() int { return c.txIdx }

// PassiveRun implements bus.RunObserver. The controller promises passivity
// over the proposed span when:
//
//   - it is a receiver in the same frame, bit-synchronized to the
//     transmitter (rxWire == frameBit). Committed streams only ever come
//     from a txPlan — a stuff-compliant serialization of a validated frame
//     with a correct CRC — so a synchronized receiver consuming that stream
//     can raise no stuff/form/CRC/bit error; frame completion (rxComplete,
//     OnReceive) can only fall on the span's own final bit, where ObserveRun
//     replays it at its exact bit time. The whole span is accepted in O(1);
//     the possible dominant ACK decision lands on driveNext at span end,
//     after the span's last bit, which keeps the promise.
//   - it is out of the frame (idle, intermission, suspend) and the span
//     starts at a frame's SOF (frameBit 0, dominant first level): it joins
//     as a bit-synchronized receiver at that SOF and the previous case
//     applies from bit 1 on — the whole span is accepted in O(1), even with
//     frames pending (a foreign SOF always wins the slot on the exact path
//     too, unless this node is asserting SOF itself, which pendingSOF /
//     driveNext pin);
//   - it is out of the frame with nothing to send: it accepts the leading
//     recessive prefix — a dominant bit would be a join-as-SOF event, left
//     to the exact path (or to a frameBit-0 span negotiated at it);
//   - it is bus-off: always passive; with auto-recovery the span is clamped
//     below the recovery-completion bit so the rejoin transition fires on an
//     exact step.
//
// Everything else — a pending dominant drive, error signalling, a desynced
// receiver — pins the span.
func (c *Controller) PassiveRun(now bus.BitTime, frameBit int, levels []can.Level) int {
	if c.driveNext == can.Dominant {
		return 0
	}
	switch c.phase {
	case phaseFrame:
		if c.transmitting {
			return 0
		}
		if frameBit >= 0 {
			if c.rxWire == frameBit {
				return len(levels)
			}
			return 0
		}
		return c.contendScan(levels)
	case phasePassiveFlag, phaseErrorDelim:
		return c.errorSignalScan(levels)
	case phaseIdle, phaseIntermission, phaseSuspend:
		if frameBit == 0 && len(levels) > 0 && levels[0] == can.Dominant && !c.pendingSOF {
			return len(levels)
		}
		if c.queue.len() > 0 || c.pendingSOF {
			return 0
		}
		return leadingRecessive(levels)
	case phaseBusOff:
		if !c.cfg.AutoRecover {
			return len(levels)
		}
		remaining := int64(RecoverySequences-c.recoverSeqs)*RecoveryIdleBits - int64(c.recoverRun)
		if remaining <= 1 {
			return 0
		}
		if int64(len(levels)) < remaining {
			return len(levels)
		}
		return int(remaining - 1)
	}
	return 0
}

// ObserveRun implements bus.RunObserver: consume a span of resolved levels,
// leaving the controller in exactly the state len(levels) per-bit Observe
// calls would have produced.
func (c *Controller) ObserveRun(from bus.BitTime, levels []can.Level) {
	switch c.phase {
	case phaseFrame:
		c.frameRun(from, levels)
	case phaseActiveFlag, phasePassiveFlag, phaseErrorDelim:
		// Error-signal spans are short (≤ 14 bits) and dense with counter
		// transitions — flag completion, delimiter restart, EvErrorEnd — so
		// they replay through the exact per-bit handler. The span clamps
		// (ContendBits length, errorSignalScan) guarantee the replay never
		// runs past the delimiter-completion bit into intermission.
		for i, level := range levels {
			c.Observe(from+bus.BitTime(i), level)
		}
	case phaseBusOff:
		c.trackIdleRun(levels)
		c.driveNext = can.Recessive
		if c.cfg.AutoRecover {
			// PassiveRun clamped the span below recovery completion, so the
			// counters can only accumulate here — no transition check.
			for _, level := range levels {
				if level == can.Recessive {
					c.recoverRun++
					if c.recoverRun >= RecoveryIdleBits {
						c.recoverSeqs++
						c.recoverRun = 0
					}
				} else {
					c.recoverRun = 0
				}
			}
		}
	default:
		if len(levels) > 0 && levels[0] == can.Dominant {
			// A frameBit-0 span: bit 0 is the SOF — of our own pending frame
			// (pendingSOF, published through ContendBits) or of a foreign
			// frame we join as receiver — and the rest of the span is
			// mid-frame, exactly as observeIdle/-Intermission/-Suspend would
			// process it bit by bit.
			c.idleRun = 0
			c.driveNext = can.Recessive
			c.beginFrame(from, levels[0], c.pendingSOF)
			c.pendingSOF = false
			if len(levels) > 1 {
				c.frameRun(from+1, levels[1:])
			}
			return
		}
		// Idle/intermission/suspend spans are all-recessive by this
		// controller's own PassiveRun answer (the bus clamps to it), which is
		// exactly the SkipIdle contract.
		c.SkipIdle(from, from+bus.BitTime(len(levels)))
	}
}

// frameRun advances a mid-frame controller over a span of resolved levels.
// For the sole transmitter the levels are its own committed bits, so bit
// monitoring reduces to advancing txIdx, and the receive pipeline stays
// deferred (see rxProcess) — the whole span is O(1). A receiver runs the
// full pipeline, as in per-bit observeFrame.
func (c *Controller) frameRun(from bus.BitTime, levels []can.Level) {
	c.trackIdleRun(levels)
	if c.transmitting {
		before := c.txIdx
		c.txIdx += len(levels)
		if before < c.plan.arbEnd && c.txIdx >= c.plan.arbEnd {
			// The span crossed the end of arbitration: the win landed at the
			// bit where txIdx first reached arbEnd, the same instant the
			// exact path emits at.
			c.tel.Emit(int64(from)+int64(c.plan.arbEnd-1-before),
				telemetry.EvArbWon, int64(c.plan.frame.ID), 0)
		}
		if c.txIdx >= len(c.plan.bits) {
			// The span reached the final EOF bit: the transmission completed
			// at the span's last bit time, with the same callbacks and
			// counter updates the exact path runs there.
			c.driveNext = can.Recessive
			c.txSuccess(from + bus.BitTime(len(levels)-1))
			return
		}
		c.driveNext = c.plan.bits[c.txIdx]
		return
	}
	c.rxRun(from, levels)
}

// trackIdleRun replays Observe's per-bit idle-run accounting for a span.
func (c *Controller) trackIdleRun(levels []can.Level) {
	k := 0
	for i := len(levels) - 1; i >= 0 && levels[i] == can.Recessive; i-- {
		k++
	}
	if k == len(levels) {
		c.idleRun += k
	} else {
		c.idleRun = k
	}
}

// leadingRecessive returns the length of the leading recessive prefix.
func leadingRecessive(levels []can.Level) int {
	for i, level := range levels {
		if level != can.Recessive {
			return i
		}
	}
	return len(levels)
}

// rxSpanSlot is one direct-mapped entry of the span cache. The span is
// identified by the identity of its bits: plans are immutable once built and
// memoized (planFor), so a span's backing array pointer plus its length pins
// the exact level sequence — the stored strong pointer keeps the array
// alive, so the address cannot be reused for different bits. A collision
// simply evicts the previous entry.
type rxSpanSlot struct {
	ptr  *can.Level
	snap *rxSnapshot
	n    int32
}

// rxSpanSlotBits sizes the direct-mapped span cache (message set ×
// rolling-counter rotation × the few clamped lengths each span recurs at).
// Sized so a realistic matrix's full rotation (tens of IDs × 256 counter
// values ≈ 8k identities) keeps the per-set load low: at 2^16 slots in
// two-way sets, virtually no set holds three or more live identities, which
// under round-robin rotation would otherwise defeat the LRU and redecode
// those spans every cycle.
const rxSpanSlotBits = 16

// rxSpanIdx hashes a span identity into the cache.
func rxSpanIdx(p *can.Level, n int) uint {
	h := uintptr(unsafe.Pointer(p)) >> 3
	h ^= h >> rxSpanSlotBits
	return uint(h^uintptr(n)<<5) & (1<<rxSpanSlotBits - 1)
}

// rxSnapshot is the receive pipeline's complete state after consuming a
// span from the post-SOF baseline. Both slices are stored with cap == len,
// so a later append (a follow-up bit after a clamped span) reallocates and
// leaves the cached arrays untouched.
type rxSnapshot struct {
	destuf      can.Destuffer
	bits        []can.Level
	crc         can.CRC15
	dlc         int
	crcOK       bool
	trailer     int
	layout      can.Layout
	layoutKnown bool
	remote      bool
	dataLen     int
	awaitStuff  bool
	fd, fdKnown bool
	fdcrc17     can.FDCRC
	fdcrc21     can.FDCRC
	dynStuff    int
	fsIdx       int
	fsbNext     bool
	fdCRCBits   []can.Level
	lastWire    can.Level
	wire        int
	driveNext   can.Level
}

// rxRun feeds a span of resolved levels through the receive pipeline.
//
// A receiver consuming a committed span from the post-SOF baseline (rxWire
// == 1, the state resetRx plus the SOF bit always produces) ends in a state
// that is a pure function of the span's levels — the pipeline reads nothing
// else, the bit time only feeds error paths a compliant stream cannot reach,
// and no receiver-visible callback fires before the final EOF bit, which is
// never committed. Periodic traffic replays the same spans over and over, so
// that end state is memoized per span identity and a hit replaces the whole
// decode with a state copy.
func (c *Controller) rxRun(from bus.BitTime, levels []can.Level) {
	if c.phase != phaseFrame || c.rxWire != 1 {
		c.rxRunSteps(from, levels)
		return
	}
	if c.rxSpanCache == nil {
		c.rxSpanCache = make([]rxSpanSlot, 1<<rxSpanSlotBits)
	}
	// Two-way set-associative probe (see rxSpanSlot): a sticky collision
	// pair in a direct-mapped table would redecode the span every time.
	idx := rxSpanIdx(&levels[0], len(levels)) &^ 1
	slot := &c.rxSpanCache[idx]
	if slot.ptr != &levels[0] || int(slot.n) != len(levels) {
		alt := &c.rxSpanCache[idx|1]
		if alt.ptr == &levels[0] && int(alt.n) == len(levels) {
			*slot, *alt = *alt, *slot // promote the hit to the first way
		} else {
			slot = nil
		}
	}
	if slot != nil {
		s := slot.snap
		c.rxDestuf = s.destuf
		c.rxBits = append(c.rxBits[:0], s.bits...)
		c.rxCRC = s.crc
		c.rxDLC = s.dlc
		c.rxCRCOK = s.crcOK
		c.rxTrailer = s.trailer
		c.rxLayout = s.layout
		c.rxLayoutKnown = s.layoutKnown
		c.rxRemote = s.remote
		c.rxDataLen = s.dataLen
		c.rxAwaitStuff = s.awaitStuff
		c.rxFD = s.fd
		c.rxFDKnown = s.fdKnown
		*c.rxFDCRC17 = s.fdcrc17
		*c.rxFDCRC21 = s.fdcrc21
		c.rxDynStuff = s.dynStuff
		c.rxFSIdx = s.fsIdx
		c.rxFSBNext = s.fsbNext
		c.rxFDCRCBits = append(c.rxFDCRCBits[:0], s.fdCRCBits...)
		c.rxLastWire = s.lastWire
		c.rxWire = s.wire
		c.driveNext = s.driveNext
		return
	}
	c.rxRunSteps(from, levels)
	if c.phase != phaseFrame || c.rxWire != 1+len(levels) {
		return // left the frame or split the span: state not span-pure
	}
	// Snapshot on the first sighting. Rolling payload counters make a span
	// recur only once per full rotation, so a recurrence filter ("snapshot on
	// the second decode") would redecode every one of the rotation's ~8k span
	// identities each cycle; at 2^16 two-way slots, a wasted snapshot for a
	// genuinely one-shot span costs one small allocation and an eviction.
	s := &rxSnapshot{
		destuf:      c.rxDestuf,
		bits:        cloneExact(c.rxBits),
		crc:         c.rxCRC,
		dlc:         c.rxDLC,
		crcOK:       c.rxCRCOK,
		trailer:     c.rxTrailer,
		layout:      c.rxLayout,
		layoutKnown: c.rxLayoutKnown,
		remote:      c.rxRemote,
		dataLen:     c.rxDataLen,
		awaitStuff:  c.rxAwaitStuff,
		fd:          c.rxFD,
		fdKnown:     c.rxFDKnown,
		fdcrc17:     *c.rxFDCRC17,
		fdcrc21:     *c.rxFDCRC21,
		dynStuff:    c.rxDynStuff,
		fsIdx:       c.rxFSIdx,
		fsbNext:     c.rxFSBNext,
		fdCRCBits:   cloneExact(c.rxFDCRCBits),
		lastWire:    c.rxLastWire,
		wire:        c.rxWire,
		driveNext:   c.driveNext,
	}
	c.rxSpanCache[idx|1] = c.rxSpanCache[idx] // demote the incumbent
	c.rxSpanCache[idx] = rxSpanSlot{ptr: &levels[0], snap: s, n: int32(len(levels))}
}

// cloneExact copies a slice with cap == len, so appends by the adopter
// reallocate instead of scribbling on the original.
func cloneExact(s []can.Level) []can.Level {
	if len(s) == 0 {
		return nil
	}
	out := make([]can.Level, len(s))
	copy(out, s)
	return out
}

// rxRunSteps is the stepping decode behind rxRun. The stuffed region of a
// classical frame after the DLC is known — the bulk of every span — runs
// through a tight inline loop; everything else falls back to the per-bit
// functions. Should an error path ever leave the frame phase mid-span
// (impossible for a compliant committed stream, but cheap to guard), the
// remainder replays through exact per-bit Observe.
func (c *Controller) rxRunSteps(from bus.BitTime, levels []can.Level) {
	for i := 0; i < len(levels); {
		if c.phase != phaseFrame {
			for ; i < len(levels); i++ {
				c.Observe(from+bus.BitTime(i), levels[i])
			}
			return
		}
		c.driveNext = can.Recessive
		if c.rxTrailer == 0 && c.rxFDKnown && !c.rxFD && c.rxDLC >= 0 && !c.rxAwaitStuff && c.rxFSIdx < 0 {
			i += c.rxBulkClassical(from+bus.BitTime(i), levels[i:])
			continue
		}
		c.rxProcess(from+bus.BitTime(i), levels[i])
		i++
	}
}

// rxBulkClassical consumes wire bits of a classical frame's stuffed region
// once the DLC is known: destuff, CRC-15, and bit collection in one loop,
// with no per-bit dispatch. It returns the number of wire bits consumed,
// stopping at the end of the stuffed region or of the span, or at a stuff
// error (which cannot occur for a committed stream but keeps the routine a
// faithful drop-in for rxStuffedBit).
func (c *Controller) rxBulkClassical(from bus.BitTime, levels []can.Level) int {
	unstuffedLen := c.rxLayout.UnstuffedLen(c.rxDataLen)
	dataEnd := unstuffedLen - can.CRCBits
	consumed := 0
	for consumed < len(levels) {
		level := levels[consumed]
		consumed++
		c.rxWire++
		c.rxLastWire = level
		payload, err := c.rxDestuf.Next(level)
		if err != nil {
			c.frameError(from+bus.BitTime(consumed-1), StuffError)
			return consumed
		}
		if !payload {
			c.rxDynStuff++
			continue
		}
		c.rxBits = append(c.rxBits, level)
		n := len(c.rxBits)
		if n <= dataEnd {
			c.rxCRC.Update(level)
		}
		if n == unstuffedLen {
			got := uint16(can.DecodeField(c.rxBits, dataEnd, can.CRCBits))
			c.rxCRCOK = got == c.rxCRC.Sum()
			if c.rxDestuf.Expecting() {
				c.rxAwaitStuff = true
			} else {
				c.rxTrailer = 1
			}
			return consumed
		}
	}
	return consumed
}
