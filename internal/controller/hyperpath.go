package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

var _ bus.Hypering = (*Controller)(nil)

// The controller's hyperperiod support follows the contract in
// bus/hyperpath.go: HyperSnap/HyperMatch pin an exact entry state — exact in
// every field a chain of splice windows, idle skips, and lone recessive
// exact steps can read — and HyperSeal compiles the entry→exit difference,
// which HyperApply replays in O(1).
//
// What the match may ignore is as load-bearing as what it compares:
//
//   - The receive pipeline (rxDestuf..rxWire) is dead outside phaseFrame —
//     beginFrame calls resetRx before any rx field is read — and chains both
//     start and end in idle/intermission/suspend/bus-off, so rx state needs
//     neither matching nor restoring.
//   - Error-signalling state (flagCount, delimCount, passiveLast,
//     passiveBegun) is read only inside the flag/delimiter phases, which the
//     anchor gate excludes and chain ops never enter.
//   - framesSinceTx is read only as "< 2" (the suspend rule), so values are
//     matched by the min(·,2) equivalence class; the seal records whether
//     the chain completed an own transmission (which resets the counter,
//     making the exit value absolute) or only counted foreign frames
//     (additive over the class).
//   - planCache/planSlots/rxSpanCache are content-addressed caches with no
//     behavioral surface; queue plan POINTERS, by contrast, are matched
//     identically so the recorded exit queue (restored wholesale) is exactly
//     what the live run would have held.
type hyperState struct {
	phase        phase
	state        State
	tec, rec     int
	lastTEC      int
	lastREC      int
	driveNext    can.Level
	pendingSOF   bool
	pendingPlan  *txPlan
	interCount   int
	suspendCount int
	idleRun      int
	fst          int // min(framesSinceTx, 2) equivalence class
	recoverSeqs  int
	recoverRun   int
	queueFrames  []can.Frame
	queuePlans   []*txPlan

	// Seal-time decline stash: monotone counters a chain must not have
	// moved for the delta vocabulary below to be exhaustive. Not matched.
	txSuccess  int
	txAttempts int
	rxSuccess  int
	txErrSum   int
	rxErrSum   int
	arbLosses  int
	busOff     int
	recoveries int
}

// hyperDelta is the controller's sealed entry→exit difference.
type hyperDelta struct {
	phase        phase
	state        State
	tec, rec     int
	lastTEC      int
	lastREC      int
	driveNext    can.Level
	pendingSOF   bool
	pendingPlan  *txPlan
	interCount   int
	suspendCount int
	idleRun      int
	recoverSeqs  int
	recoverRun   int
	fstAbs       bool
	fst          int
	dTxSuccess   int
	dTxAttempts  int
	dRxSuccess   int
	queueFrames  []can.Frame
	queuePlans   []*txPlan
}

// AllowHyperWithCallbacks opts this controller into hyperperiod chains even
// though completion/receive callbacks are configured. Only a wrapper that
// folds every configured callback's effects into its own hyper delta may
// call this (the restbus replayer does: its OnTransmit mutates replayer
// state that the replayer's delta carries); otherwise replayed chains would
// skip the callbacks' external effects.
func (c *Controller) AllowHyperWithCallbacks() { c.hyperCallbacksOK = true }

// hyperAnchorable reports whether the controller is at a state a chain may
// start from: between frames with the transmit engine disarmed, so the
// receive pipeline and error-signalling state are provably dead.
func (c *Controller) hyperAnchorable() bool {
	switch c.phase {
	case phaseIdle, phaseIntermission, phaseSuspend, phaseBusOff:
		return !c.transmitting && c.plan == nil
	}
	return false
}

// HyperFP implements bus.Hypering.
func (c *Controller) HyperFP(now bus.BitTime, hub *telemetry.Hub) (uint64, bool) {
	if !c.hyperAnchorable() {
		return 0, false
	}
	if !c.hyperCallbacksOK &&
		(c.cfg.OnReceive != nil || c.cfg.OnTransmit != nil ||
			c.cfg.OnStateChange != nil || c.cfg.OnError != nil) {
		return 0, false // callback effects are outside the delta vocabulary
	}
	if ph := c.tel.Hub(); ph != nil && ph != hub {
		return 0, false // events would flow to a hub the bus cannot tape
	}
	h := uint64(14695981039346656037)
	h = hyperMix(h, uint64(c.phase)<<8|uint64(c.state))
	h = hyperMix(h, uint64(c.tec)<<32|uint64(uint32(c.rec)))
	h = hyperMix(h, uint64(c.lastTEC)<<32|uint64(uint32(c.lastREC)))
	fst := c.framesSinceTx
	if fst > 2 {
		fst = 2
	}
	h = hyperMix(h, uint64(c.driveNext)<<16|uint64(fst)<<8|uint64(b2u(c.pendingSOF)))
	h = hyperMix(h, uint64(c.interCount)<<40|uint64(c.suspendCount)<<20|uint64(uint32(c.idleRun)))
	h = hyperMix(h, uint64(c.recoverSeqs)<<20|uint64(c.recoverRun))
	h = hyperMix(h, uint64(len(c.queue.frames)))
	for i := range c.queue.frames {
		f := &c.queue.frames[i]
		h = hyperMix(h, uint64(f.ID)<<16|uint64(len(f.Data)))
		if len(f.Data) > 0 {
			h = hyperMix(h, uint64(f.Data[0]))
		}
	}
	return h, true
}

func hyperMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// HyperSnap implements bus.Hypering.
func (c *Controller) HyperSnap(_ bus.BitTime) any {
	fst := c.framesSinceTx
	if fst > 2 {
		fst = 2
	}
	s := &hyperState{
		phase:        c.phase,
		state:        c.state,
		tec:          c.tec,
		rec:          c.rec,
		lastTEC:      c.lastTEC,
		lastREC:      c.lastREC,
		driveNext:    c.driveNext,
		pendingSOF:   c.pendingSOF,
		pendingPlan:  c.pendingPlan,
		interCount:   c.interCount,
		suspendCount: c.suspendCount,
		idleRun:      c.idleRun,
		fst:          fst,
		recoverSeqs:  c.recoverSeqs,
		recoverRun:   c.recoverRun,
		queueFrames:  append([]can.Frame(nil), c.queue.frames...),
		queuePlans:   append([]*txPlan(nil), c.queue.plans...),
		txSuccess:    c.stats.TxSuccess,
		txAttempts:   c.stats.TxAttempts,
		rxSuccess:    c.stats.RxSuccess,
		txErrSum:     mapSum(c.stats.TxErrors),
		rxErrSum:     mapSum(c.stats.RxErrors),
		arbLosses:    c.stats.ArbitrationLosses,
		busOff:       c.stats.BusOffEvents,
		recoveries:   c.stats.Recoveries,
	}
	return s
}

func mapSum(m map[ErrorKind]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// HyperMatch implements bus.Hypering.
func (c *Controller) HyperMatch(_ bus.BitTime, snap any) bool {
	s, ok := snap.(*hyperState)
	if !ok {
		return false
	}
	return c.hyperMatch(s)
}

func (c *Controller) hyperMatch(s *hyperState) bool {
	if !c.hyperAnchorable() {
		return false
	}
	fst := c.framesSinceTx
	if fst > 2 {
		fst = 2
	}
	if c.phase != s.phase || c.state != s.state ||
		c.tec != s.tec || c.rec != s.rec ||
		c.lastTEC != s.lastTEC || c.lastREC != s.lastREC ||
		c.driveNext != s.driveNext || c.pendingSOF != s.pendingSOF ||
		c.pendingPlan != s.pendingPlan ||
		c.interCount != s.interCount || c.suspendCount != s.suspendCount ||
		c.idleRun != s.idleRun || fst != s.fst ||
		c.recoverSeqs != s.recoverSeqs || c.recoverRun != s.recoverRun ||
		len(c.queue.frames) != len(s.queueFrames) {
		return false
	}
	for i := range s.queueFrames {
		if !c.queue.frames[i].Equal(&s.queueFrames[i]) ||
			c.queue.plans[i] != s.queuePlans[i] {
			return false
		}
	}
	return true
}

// HyperSeal implements bus.Hypering.
func (c *Controller) HyperSeal(_ bus.BitTime, snap any, _ int) (any, bool) {
	s, ok := snap.(*hyperState)
	if !ok {
		return nil, false
	}
	return c.hyperSeal(s)
}

func (c *Controller) hyperSeal(s *hyperState) (*hyperDelta, bool) {
	if !c.hyperAnchorable() {
		return nil, false // chain exited mid-episode; outside the vocabulary
	}
	if mapSum(c.stats.TxErrors) != s.txErrSum || mapSum(c.stats.RxErrors) != s.rxErrSum ||
		c.stats.ArbitrationLosses != s.arbLosses ||
		c.stats.BusOffEvents != s.busOff || c.stats.Recoveries != s.recoveries {
		// Error episodes or arbitration fights inside a chain are impossible
		// by construction (only splices, idle skips, and lone recessive exact
		// steps extend one); decline rather than trust that proof.
		return nil, false
	}
	d := &hyperDelta{
		phase:        c.phase,
		state:        c.state,
		tec:          c.tec,
		rec:          c.rec,
		lastTEC:      c.lastTEC,
		lastREC:      c.lastREC,
		driveNext:    c.driveNext,
		pendingSOF:   c.pendingSOF,
		pendingPlan:  c.pendingPlan,
		interCount:   c.interCount,
		suspendCount: c.suspendCount,
		idleRun:      c.idleRun,
		recoverSeqs:  c.recoverSeqs,
		recoverRun:   c.recoverRun,
		dTxSuccess:   c.stats.TxSuccess - s.txSuccess,
		dTxAttempts:  c.stats.TxAttempts - s.txAttempts,
		dRxSuccess:   c.stats.RxSuccess - s.rxSuccess,
		queueFrames:  append([]can.Frame(nil), c.queue.frames...),
		queuePlans:   append([]*txPlan(nil), c.queue.plans...),
	}
	if d.dTxSuccess > 0 {
		// An own transmission completed (within a chain that can only happen
		// via SpliceCommit, which runs endAttempt(true)), resetting
		// framesSinceTx; the exit value is absolute.
		d.fstAbs = true
		d.fst = c.framesSinceTx
	} else {
		// Only foreign frames: framesSinceTx grew by their count, and the
		// entry was matched by the >=2 equivalence class, so fold additively.
		d.fst = c.framesSinceTx - s.fst
		if d.fst < 0 {
			return nil, false
		}
	}
	return d, true
}

// HyperApply implements bus.Hypering.
func (c *Controller) HyperApply(_ bus.BitTime, delta any) {
	c.hyperApply(delta.(*hyperDelta))
}

func (c *Controller) hyperApply(d *hyperDelta) {
	c.phase = d.phase
	c.state = d.state
	c.tec = d.tec
	c.rec = d.rec
	c.lastTEC = d.lastTEC
	c.lastREC = d.lastREC
	c.driveNext = d.driveNext
	c.pendingSOF = d.pendingSOF
	c.pendingPlan = d.pendingPlan
	c.interCount = d.interCount
	c.suspendCount = d.suspendCount
	c.idleRun = d.idleRun
	c.recoverSeqs = d.recoverSeqs
	c.recoverRun = d.recoverRun
	if d.fstAbs {
		c.framesSinceTx = d.fst
	} else {
		c.framesSinceTx += d.fst
		if c.framesSinceTx > 1<<30 {
			c.framesSinceTx = 1 << 30 // the exact path's increment cap
		}
	}
	c.stats.TxSuccess += d.dTxSuccess
	c.stats.TxAttempts += d.dTxAttempts
	c.stats.RxSuccess += d.dRxSuccess
	// Restore the exit mailbox wholesale into the queue's own backing (the
	// delta's slices are immutable): frame values share their immutable
	// payload buffers and plan pointers are content-stable, exactly as the
	// live evolution would have left them.
	c.queue.frames = append(c.queue.frames[:0], d.queueFrames...)
	c.queue.plans = append(c.queue.plans[:0], d.queuePlans...)
}
