package controller

import (
	"errors"
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

func TestListenOnlyReceivesWithoutDriving(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	monitor := New(Config{Name: "monitor", AutoRecover: true, ListenOnly: true,
		OnReceive: rx.onReceive})
	tx := newTestController("tx", nil)
	acker := newTestController("acker", nil) // someone must still ACK
	b.Attach(monitor)
	b.Attach(tx)
	b.Attach(acker)

	want := can.Frame{ID: 0x123, Data: []byte{1, 2}}
	if err := tx.Enqueue(want); err != nil {
		t.Fatal(err)
	}
	b.Run(300)
	if len(rx.frames) != 1 || !rx.frames[0].Equal(&want) {
		t.Fatalf("monitor received %v", rx.frames)
	}
}

func TestListenOnlyNeverAcks(t *testing.T) {
	// With ONLY a listen-only monitor on the bus, the transmitter gets no
	// ACK — proof the monitor does not touch the wire.
	b := bus.New(bus.Rate500k)
	monitor := New(Config{Name: "monitor", AutoRecover: true, ListenOnly: true})
	tx := newTestController("tx", nil)
	b.Attach(monitor)
	b.Attach(tx)

	if err := tx.Enqueue(can.Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.Run(2000)
	if tx.Stats().TxSuccess != 0 {
		t.Error("transmitter succeeded without any acking node")
	}
	if tx.Stats().TxErrors[AckError] == 0 {
		t.Error("expected ACK errors")
	}
}

func TestListenOnlyNeverSignalsErrors(t *testing.T) {
	// Even when the monitor sees a destroyed frame it stays silent: the
	// error episode on the wire is exactly as long as without the monitor.
	run := func(withMonitor bool) int64 {
		b := bus.New(bus.Rate500k)
		tx := newTestController("tx", nil)
		acker := newTestController("acker", nil)
		b.Attach(tx)
		b.Attach(acker)
		if withMonitor {
			b.Attach(New(Config{Name: "monitor", AutoRecover: true, ListenOnly: true}))
		}
		b.Attach(newJammer(13, 20))
		if err := tx.Enqueue(can.Frame{ID: 0x100, Data: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
		b.RunUntil(func() bool { return tx.State() == BusOff }, 5000)
		return int64(b.Now())
	}
	without := run(false)
	with := run(true)
	if with != without {
		t.Errorf("monitor changed bus timing: %d vs %d bits", with, without)
	}
}

func TestListenOnlyRejectsEnqueue(t *testing.T) {
	monitor := New(Config{Name: "monitor", ListenOnly: true})
	if err := monitor.Enqueue(can.Frame{ID: 1}); !errors.Is(err, ErrListenOnly) {
		t.Errorf("err = %v, want ErrListenOnly", err)
	}
}
