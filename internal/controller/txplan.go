package controller

import (
	"errors"

	"michican/internal/bus"
	"michican/internal/can"
)

// txPlan is a fully serialized transmission: the wire bits of one frame
// (stuff bits included, ACK slot recessive) plus the geometry the transmit
// engine needs while monitoring the bus bit by bit.
type txPlan struct {
	frame can.Frame
	// bits is the wire sequence from SOF through the last EOF bit.
	bits []can.Level
	// arbEnd is the wire index just past the arbitration field (the 11 ID
	// bits plus RTR, including any stuff bits falling inside). A dominant
	// level read while sending a recessive payload bit before arbEnd means
	// arbitration was lost, not a bit error.
	arbEnd int
	// isStuff marks wire positions holding stuff bits. Two compliant nodes
	// still arbitrating have sent identical prefixes and therefore stuff at
	// identical positions, so a dominant level read during a transmitted
	// recessive stuff bit can never be a competing arbitration winner — it
	// is a stuff error even inside the arbitration field (this is the
	// paper's best case, where the counterattack triggers an error as early
	// as the RTR bit).
	isStuff []bool
	// ackIdx is the wire index of the ACK slot, where reading dominant while
	// sending recessive means the frame was acknowledged.
	ackIdx int
	// memo is the compiled-splice cache this plan's window carries across
	// offers (lazily created on first offer; see bus.SpliceMemo). It rides
	// on the plan so the splice tier's lookups are a pointer chase instead
	// of a table probe, and dies with the plan's content-addressed entry.
	memo *bus.SpliceMemo
	// resolved, when non-nil, is the fleet-shared pre-resolved splice span
	// (window + dominant ACK + recessive intermission) from a PlanSource;
	// splice offers hand it to the bus so every vehicle's memo adopts the
	// same immutable copy instead of rebuilding its own.
	resolved []can.Level
}

// planKey is the value identity of a classical frame, used to memoize
// serializations: a txPlan is immutable once built and depends only on the
// frame's encoded fields, so equal frames share one plan.
type planKey struct {
	id      can.ID
	flags   uint8
	reqLen  int8
	dataLen int8
	data    [can.MaxDataLen]byte
}

// planCacheMax bounds the per-controller plan cache. Periodic traffic cycles
// a small message set, but payloads commonly carry an 8-bit rolling counter,
// multiplying the distinct-frame population by up to 256 per ID; the cap is
// sized to hold a realistic matrix's full rotation (tens of IDs × 256) and
// only guards truly adversarial workloads, where it resets the cache.
const planCacheMax = 16384

// planFor returns the serialized plan for f, reusing a cached serialization
// when this controller has transmitted an equal frame before. Mirrors a real
// controller's mailbox, which keeps the frame serialized between the
// retransmissions and periodic re-sends that dominate bus traffic. The
// cached plan's frame field is refreshed to the current head so completion
// callbacks observe exactly the enqueued value, as on the uncached path.
func (c *Controller) planFor(f can.Frame) *txPlan {
	if f.FD || len(f.Data) > can.MaxDataLen {
		return newTxPlan(f)
	}
	slot := planSlotIdx(&f)
	if c.planSlots != nil {
		if p := c.planSlots[slot]; p != nil && p.frame.Equal(&f) {
			p.frame = f
			return p
		}
	}
	key := planKey{id: f.ID, reqLen: int8(f.RequestLen), dataLen: int8(len(f.Data))}
	if f.Extended {
		key.flags |= 1
	}
	if f.Remote {
		key.flags |= 2
	}
	copy(key.data[:], f.Data)
	if p, ok := c.planCache[key]; ok {
		p.frame = f
		if c.planSlots != nil {
			c.planSlots[slot] = p
		}
		return p
	}
	var p *txPlan
	if c.plans != nil {
		p = c.plans.planFor(key, f)
	} else {
		p = newTxPlan(f)
	}
	if c.planCache == nil || len(c.planCache) >= planCacheMax {
		c.planCache = make(map[planKey]*txPlan)
	}
	c.planCache[key] = p
	if c.planSlots == nil {
		c.planSlots = make([]*txPlan, 1<<planSlotBits)
	}
	c.planSlots[slot] = p
	return p
}

// planSlotBits sizes the planFor front cache: a realistic matrix's working
// set is tens of IDs times a 256-value rolling counter (thousands of
// distinct frames), so the direct-mapped table is sized an order of
// magnitude above it to keep steady-state collisions rare; a collision
// merely falls through to the content-keyed map.
const planSlotBits = 15

// planSlotIdx hashes the cheap identity fields of a classical frame — ID,
// length, and the edge payload bytes, which carry the rolling counters
// that distinguish a periodic message's instances — into the front cache
// (Fibonacci finalizer to spread the small-integer inputs).
func planSlotIdx(f *can.Frame) uint {
	h := uint64(f.ID)<<20 ^ uint64(len(f.Data))<<16
	if len(f.Data) > 0 {
		h ^= uint64(f.Data[0])<<8 ^ uint64(f.Data[len(f.Data)-1])
	}
	h *= 0x9E3779B97F4A7C15
	return uint(h>>(64-planSlotBits)) & (1<<planSlotBits - 1)
}

// newTxPlan serializes a frame for transmission.
func newTxPlan(f can.Frame) *txPlan {
	if f.FD {
		wire, isStuff, arbEnd, ackIdx := can.FDWirePlan(&f)
		return &txPlan{frame: f, bits: wire, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
	}
	if !f.Extended {
		return newTxPlanBase(f)
	}
	body := can.UnstuffedBody(&f)
	arbEndPos := can.Layout{Extended: f.Extended}.ArbEndPos()
	var s can.Stuffer
	s.Reset()
	wire := make([]can.Level, 0, len(body)+len(body)/4+3+can.EOFBits)
	isStuff := make([]bool, 0, cap(wire))
	arbEnd := 0
	for pos, b := range body {
		out := s.Next(b)
		wire = append(wire, out...)
		isStuff = append(isStuff, false)
		if len(out) == 2 {
			isStuff = append(isStuff, true)
		}
		// The arbitration field covers unstuffed positions 1..RTR (position
		// 12 for base frames, 32 for extended ones); stuff bits emitted
		// inside stay subject to the stuff-error rule above.
		if pos <= arbEndPos {
			arbEnd = len(wire)
		}
	}
	wire = append(wire, can.Recessive) // CRC delimiter
	ackIdx := len(wire)
	wire = append(wire, can.Recessive) // ACK slot (transmitter sends recessive)
	wire = append(wire, can.Recessive) // ACK delimiter
	for i := 0; i < can.EOFBits; i++ {
		wire = append(wire, can.Recessive)
	}
	for len(isStuff) < len(wire) {
		isStuff = append(isStuff, false)
	}
	return &txPlan{frame: f, bits: wire, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
}

// newTxPlanBase serializes a classical base-format frame with field
// generation, CRC-15, and bit stuffing fused into a single pass (two
// allocations total). The output — bits, isStuff, arbEnd, ackIdx — is
// bit-identical to the general three-pass path in newTxPlan, which remains
// the reference for extended frames (a differential test pins the
// equivalence). Serialization runs on every frame start, so this is the
// hottest single routine under load.
func newTxPlanBase(f can.Frame) *txPlan {
	unstuffed := can.UnstuffedLen(len(f.Data))
	dataEnd := unstuffed - can.CRCBits
	maxWire := unstuffed + unstuffed/4 + 3 + can.EOFBits
	bits := make([]can.Level, 0, maxWire)
	isStuff := make([]bool, 0, maxWire)

	rtr := can.Dominant
	dlc := uint(len(f.Data))
	if f.Remote {
		rtr = can.Recessive
		dlc = uint(f.RequestLen)
	}

	var (
		reg    uint16 // CRC-15 register
		sum    uint16 // snapshot of the register after the last data bit
		last   can.Level
		run    int
		arbEnd int
	)
	for pos := 0; pos < unstuffed; pos++ {
		var b can.Level
		switch {
		case pos == can.PosSOF:
			b = can.Dominant
		case pos < can.PosRTR:
			b = f.ID.Bit(pos - can.PosIDStart)
		case pos == can.PosRTR:
			b = rtr
		case pos < can.PosDLCStart:
			b = can.Dominant // IDE, r0
		case pos < can.PosDataStart:
			b = levelOf(dlc, can.PosDataStart-1-pos)
		case pos < dataEnd:
			off := pos - can.PosDataStart
			b = levelOf(uint(f.Data[off>>3]), 7-off&7)
		default:
			if pos == dataEnd {
				sum = reg
			}
			b = levelOf(uint(sum), unstuffed-1-pos)
		}
		if pos < dataEnd {
			// CRC_NXT = NXTBIT xor CRC_RG(14); shift; conditional xor 0x4599.
			nxt := uint16(b) ^ (reg >> (can.CRCBits - 1) & 1)
			reg = reg << 1 & (1<<can.CRCBits - 1)
			if nxt != 0 {
				reg ^= can.CRCPoly
			}
		}
		if pos > 0 && b == last {
			run++
		} else {
			last, run = b, 1
		}
		bits = append(bits, b)
		isStuff = append(isStuff, false)
		if run == can.StuffLimit {
			st := b ^ 1
			last, run = st, 1
			bits = append(bits, st)
			isStuff = append(isStuff, true)
		}
		if pos <= can.PosRTR {
			arbEnd = len(bits)
		}
	}
	bits = append(bits, can.Recessive) // CRC delimiter
	ackIdx := len(bits)
	bits = append(bits, can.Recessive, can.Recessive) // ACK slot, ACK delimiter
	for i := 0; i < can.EOFBits; i++ {
		bits = append(bits, can.Recessive)
	}
	for len(isStuff) < len(bits) {
		isStuff = append(isStuff, false)
	}
	return &txPlan{frame: f, bits: bits, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
}

// levelOf returns bit i of v as a wire level (set = recessive).
func levelOf(v uint, i int) can.Level {
	return can.Level(v >> uint(i) & 1)
}

// Planned is a frame pre-validated and pre-serialized for transmission on a
// specific controller. Schedule-driven producers (the restbus replayer) build
// one per upcoming message instance and enqueue it with EnqueuePlanned, so
// the steady-state transmit path — and the splice tier keyed off it — starts
// from the plan by direct pointer instead of re-probing the plan cache on
// every frame start. The zero Planned is invalid.
type Planned struct {
	frame can.Frame
	plan  *txPlan
}

// Valid reports whether p holds a plannable frame (the zero Planned, and any
// frame the classical serializer cannot plan, is not).
func (p Planned) Valid() bool { return p.plan != nil }

// Frame returns the planned frame value.
func (p Planned) Frame() can.Frame { return p.frame }

// ErrUnplannable indicates a frame the pre-serialized enqueue path cannot
// carry (FD or oversize frames plan per-transmission on the exact path).
var ErrUnplannable = errors.New("controller: frame cannot be pre-planned")

// Plan validates, clones, and serializes f for later EnqueuePlanned calls.
// The returned handle is immutable and reusable: enqueueing it any number of
// times costs no validation, cloning, or cache probing.
func (c *Controller) Plan(f can.Frame) (Planned, error) {
	if err := f.Validate(); err != nil {
		return Planned{}, err
	}
	if f.FD || len(f.Data) > can.MaxDataLen {
		return Planned{}, ErrUnplannable
	}
	f = f.Clone()
	return Planned{frame: f, plan: c.planFor(f)}, nil
}

// EnqueuePlanned schedules a pre-planned frame for transmission, carrying
// its serialization into the mailbox so the transmit paths skip the plan
// lookup. Equivalent to Enqueue(p.Frame()) in every observable way.
func (c *Controller) EnqueuePlanned(p Planned) error {
	if c.cfg.ListenOnly {
		return ErrListenOnly
	}
	if !p.Valid() {
		return ErrUnplannable
	}
	c.queue.push(p.frame, p.plan, c.cfg.SortQueueByPriority)
	return nil
}

// txQueue is the controller's transmit mailbox. The head of the queue is the
// frame currently being (re)transmitted. plans rides in parallel with frames:
// a non-nil entry is the frame's serialization, carried from EnqueuePlanned
// so head-of-queue transmit paths skip the plan-cache probe.
type txQueue struct {
	frames []can.Frame
	plans  []*txPlan
}

func (q *txQueue) push(f can.Frame, p *txPlan, sortByPriority bool) {
	if !sortByPriority {
		q.frames = append(q.frames, f)
		q.plans = append(q.plans, p)
		return
	}
	// Insert keeping ascending ID order (lowest ID = highest priority first).
	i := len(q.frames)
	for i > 0 && q.frames[i-1].ID > f.ID {
		i--
	}
	q.frames = append(q.frames, can.Frame{})
	copy(q.frames[i+1:], q.frames[i:])
	q.frames[i] = f
	q.plans = append(q.plans, nil)
	copy(q.plans[i+1:], q.plans[i:])
	q.plans[i] = p
}

func (q *txQueue) head() (can.Frame, bool) {
	if len(q.frames) == 0 {
		return can.Frame{}, false
	}
	return q.frames[0], true
}

// headPlan returns the serialization carried with the head frame, or nil if
// the head was enqueued unplanned.
func (q *txQueue) headPlan() *txPlan {
	if len(q.plans) == 0 {
		return nil
	}
	return q.plans[0]
}

// remove deletes the first queued frame equal to f. The transmit path uses
// it after a successful transmission: with a priority-sorted mailbox a
// higher-priority frame may have been inserted at the head while the
// completed frame was in flight, so popping the head would drop the wrong
// element.
func (q *txQueue) remove(f can.Frame) {
	for i := range q.frames {
		if q.frames[i].Equal(&f) {
			q.frames = append(q.frames[:i], q.frames[i+1:]...)
			q.plans = append(q.plans[:i], q.plans[i+1:]...)
			return
		}
	}
}

func (q *txQueue) len() int { return len(q.frames) }

func (q *txQueue) clear() { q.frames, q.plans = nil, nil }
