package controller

import "michican/internal/can"

// txPlan is a fully serialized transmission: the wire bits of one frame
// (stuff bits included, ACK slot recessive) plus the geometry the transmit
// engine needs while monitoring the bus bit by bit.
type txPlan struct {
	frame can.Frame
	// bits is the wire sequence from SOF through the last EOF bit.
	bits []can.Level
	// arbEnd is the wire index just past the arbitration field (the 11 ID
	// bits plus RTR, including any stuff bits falling inside). A dominant
	// level read while sending a recessive payload bit before arbEnd means
	// arbitration was lost, not a bit error.
	arbEnd int
	// isStuff marks wire positions holding stuff bits. Two compliant nodes
	// still arbitrating have sent identical prefixes and therefore stuff at
	// identical positions, so a dominant level read during a transmitted
	// recessive stuff bit can never be a competing arbitration winner — it
	// is a stuff error even inside the arbitration field (this is the
	// paper's best case, where the counterattack triggers an error as early
	// as the RTR bit).
	isStuff []bool
	// ackIdx is the wire index of the ACK slot, where reading dominant while
	// sending recessive means the frame was acknowledged.
	ackIdx int
}

// newTxPlan serializes a frame for transmission.
func newTxPlan(f can.Frame) *txPlan {
	if f.FD {
		wire, isStuff, arbEnd, ackIdx := can.FDWirePlan(&f)
		return &txPlan{frame: f, bits: wire, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
	}
	body := can.UnstuffedBody(&f)
	arbEndPos := can.Layout{Extended: f.Extended}.ArbEndPos()
	var s can.Stuffer
	s.Reset()
	wire := make([]can.Level, 0, len(body)+len(body)/4+3+can.EOFBits)
	isStuff := make([]bool, 0, cap(wire))
	arbEnd := 0
	for pos, b := range body {
		out := s.Next(b)
		wire = append(wire, out...)
		isStuff = append(isStuff, false)
		if len(out) == 2 {
			isStuff = append(isStuff, true)
		}
		// The arbitration field covers unstuffed positions 1..RTR (position
		// 12 for base frames, 32 for extended ones); stuff bits emitted
		// inside stay subject to the stuff-error rule above.
		if pos <= arbEndPos {
			arbEnd = len(wire)
		}
	}
	wire = append(wire, can.Recessive) // CRC delimiter
	ackIdx := len(wire)
	wire = append(wire, can.Recessive) // ACK slot (transmitter sends recessive)
	wire = append(wire, can.Recessive) // ACK delimiter
	for i := 0; i < can.EOFBits; i++ {
		wire = append(wire, can.Recessive)
	}
	for len(isStuff) < len(wire) {
		isStuff = append(isStuff, false)
	}
	return &txPlan{frame: f, bits: wire, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
}

// txQueue is the controller's transmit mailbox. The head of the queue is the
// frame currently being (re)transmitted.
type txQueue struct {
	frames []can.Frame
}

func (q *txQueue) push(f can.Frame, sortByPriority bool) {
	if !sortByPriority {
		q.frames = append(q.frames, f)
		return
	}
	// Insert keeping ascending ID order (lowest ID = highest priority first).
	i := len(q.frames)
	for i > 0 && q.frames[i-1].ID > f.ID {
		i--
	}
	q.frames = append(q.frames, can.Frame{})
	copy(q.frames[i+1:], q.frames[i:])
	q.frames[i] = f
}

func (q *txQueue) head() (can.Frame, bool) {
	if len(q.frames) == 0 {
		return can.Frame{}, false
	}
	return q.frames[0], true
}

// remove deletes the first queued frame equal to f. The transmit path uses
// it after a successful transmission: with a priority-sorted mailbox a
// higher-priority frame may have been inserted at the head while the
// completed frame was in flight, so popping the head would drop the wrong
// element.
func (q *txQueue) remove(f can.Frame) {
	for i := range q.frames {
		if q.frames[i].Equal(&f) {
			q.frames = append(q.frames[:i], q.frames[i+1:]...)
			return
		}
	}
}

func (q *txQueue) len() int { return len(q.frames) }

func (q *txQueue) clear() { q.frames = nil }
