package controller

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

func TestExtendedFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	want := can.Frame{ID: 0x18DAF110, Extended: true, Data: []byte{0xDE, 0xAD}}
	if err := tx.Enqueue(want); err != nil {
		t.Fatal(err)
	}
	b.Run(400)
	if len(rx.frames) != 1 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if !rx.frames[0].Equal(&want) {
		t.Errorf("received %s ext=%v, want %s", rx.frames[0].String(), rx.frames[0].Extended, want.String())
	}
	if tx.TEC() != 0 {
		t.Errorf("TEC = %d", tx.TEC())
	}
}

func TestMixedFormatTraffic(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	frames := []can.Frame{
		{ID: 0x100, Data: []byte{1}},
		{ID: 0x04000123, Extended: true, Data: []byte{2}},
		{ID: 0x7FF, Data: []byte{3}},
		{ID: can.MaxExtID, Extended: true},
	}
	for _, f := range frames {
		if err := tx.Enqueue(f); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(1200)
	if len(rx.frames) != len(frames) {
		t.Fatalf("received %d/%d frames", len(rx.frames), len(frames))
	}
	for i := range frames {
		if !rx.frames[i].Equal(&frames[i]) {
			t.Errorf("frame %d: got %s ext=%v", i, rx.frames[i].String(), rx.frames[i].Extended)
		}
	}
}

func TestBaseBeatsExtendedWithSamePrefix(t *testing.T) {
	// CAN 2.0B arbitration: a base frame wins against an extended frame
	// sharing its 11-bit prefix (the extended SRR/IDE bits are recessive).
	b := bus.New(bus.Rate500k)
	var rx recorder
	baseTx := newTestController("base", nil)
	extTx := newTestController("ext", nil)
	b.Attach(baseTx)
	b.Attach(extTx)
	b.Attach(newTestController("rx", &rx))

	prefix := can.ID(0x123)
	if err := baseTx.Enqueue(can.Frame{ID: prefix, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	extID := prefix<<can.ExtLowBits | 0x00001
	if err := extTx.Enqueue(can.Frame{ID: extID, Extended: true, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	b.Run(800)

	if len(rx.frames) != 2 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if rx.frames[0].Extended || rx.frames[0].ID != prefix {
		t.Errorf("base frame should win arbitration; first was %s ext=%v",
			rx.frames[0].String(), rx.frames[0].Extended)
	}
	if !rx.frames[1].Extended {
		t.Error("extended frame should follow")
	}
	if extTx.Stats().ArbitrationLosses == 0 {
		t.Error("extended transmitter should have recorded an arbitration loss")
	}
	if extTx.TEC() != 0 {
		t.Error("losing at SRR is arbitration, not an error")
	}
}

func TestExtendedArbitrationLowerWins(t *testing.T) {
	// Two extended frames: the lower 29-bit ID wins, even when the
	// difference is only in the 18-bit extension.
	b := bus.New(bus.Rate500k)
	var rx recorder
	lo := newTestController("lo", nil)
	hi := newTestController("hi", nil)
	b.Attach(lo)
	b.Attach(hi)
	b.Attach(newTestController("rx", &rx))

	base := can.ID(0x123) << can.ExtLowBits
	if err := hi.Enqueue(can.Frame{ID: base | 0x3FF00, Extended: true, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := lo.Enqueue(can.Frame{ID: base | 0x00100, Extended: true, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	b.Run(800)
	if len(rx.frames) != 2 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if rx.frames[0].ID != base|0x00100 {
		t.Errorf("lower extension should win: first = %s", rx.frames[0].ID)
	}
	if hi.Stats().ArbitrationLosses == 0 || hi.TEC() != 0 {
		t.Error("loser must record an arbitration loss without errors")
	}
}

func TestExtendedFrameJammedRampsTEC(t *testing.T) {
	// Fault confinement applies identically to extended transmitters: a
	// post-arbitration jam buses the attacker off in 32 attempts. The jam
	// window sits after the extended arbitration field (positions 34-40).
	b := bus.New(bus.Rate500k)
	att := newTestController("att", nil)
	witness := newTestController("w", nil)
	jam := newJammer(34, 41)
	b.Attach(att)
	b.Attach(witness)
	b.Attach(jam)

	if err := att.Enqueue(can.Frame{ID: 0x1F000000, Extended: true, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return att.State() == BusOff }, 8000, "extended attacker bus-off")
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
}
