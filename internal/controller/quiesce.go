package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
)

var _ bus.Quiescent = (*Controller)(nil)

// QuiescentUntil implements bus.Quiescent. A controller is quiescent while
// the recessive-bus assumption leaves it with nothing to do:
//
//   - idle with an empty transmit mailbox: forever (an Enqueue only happens
//     at a Run-family boundary, where the bus re-queries the horizon);
//   - bus-off without auto-recovery: forever (it ignores the wire);
//   - bus-off with auto-recovery: up to but excluding the bit at which the
//     128th 11-recessive-bit sequence completes, so the recovery transition
//     (state change + callback) fires during an exact step at the correct
//     bit time;
//   - intermission or suspend with an empty transmit mailbox: forever — the
//     interCount → suspend → idle transition chain under recessive bits is a
//     pure function of the bit count (SkipIdle replays it) and produces no
//     external event when there is nothing to send;
//   - everything else — mid-frame, error signalling, or a pending SOF —
//     advances per-bit state and pins exact stepping.
func (c *Controller) QuiescentUntil(now bus.BitTime) bus.BitTime {
	if c.driveNext == can.Dominant {
		return now
	}
	switch c.phase {
	case phaseIdle, phaseIntermission, phaseSuspend:
		if c.queue.len() > 0 || c.pendingSOF {
			return now
		}
		return bus.QuiescentForever
	case phaseBusOff:
		if !c.cfg.AutoRecover {
			return bus.QuiescentForever
		}
		remaining := int64(RecoverySequences-c.recoverSeqs)*RecoveryIdleBits - int64(c.recoverRun)
		if remaining <= 1 {
			return now
		}
		return now + bus.BitTime(remaining-1)
	default:
		return now
	}
}

// SkipIdle implements bus.Quiescent: account for to-from recessive bits in
// one call, exactly as if Observe had seen each of them. Per-bit idle state
// is the idle-run counter; during auto-recovery bus-off, the recovery
// sequence counters (QuiescentUntil guarantees the skip never crosses the
// recovery-completion bit); during intermission/suspend, the transition
// chain back to idle, which with an empty mailbox changes phase counters
// only and never a drive decision.
func (c *Controller) SkipIdle(from, to bus.BitTime) {
	n := int64(to - from)
	c.idleRun += int(n)
	switch c.phase {
	case phaseBusOff:
		if c.cfg.AutoRecover {
			total := int64(c.recoverRun) + n
			c.recoverSeqs += int(total / RecoveryIdleBits)
			c.recoverRun = int(total % RecoveryIdleBits)
		}
	case phaseIntermission:
		need := int64(IntermissionBits - c.interCount)
		if n < need {
			c.interCount += int(n)
			return
		}
		c.interCount = IntermissionBits
		n -= need
		if c.state == ErrorPassive && c.framesSinceTx < 2 {
			c.phase = phaseSuspend
			c.suspendCount = 0
			c.skipSuspend(n)
			return
		}
		c.phase = phaseIdle
	case phaseSuspend:
		c.skipSuspend(n)
	}
}

// skipSuspend replays n recessive bits of the suspend-transmission window.
func (c *Controller) skipSuspend(n int64) {
	need := int64(SuspendBits - c.suspendCount)
	if n < need {
		c.suspendCount += int(n)
		return
	}
	c.suspendCount = SuspendBits
	c.phase = phaseIdle
}
