package controller

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

func TestRemoteFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	req := can.Frame{ID: 0x321, Remote: true, RequestLen: 4}
	if err := tx.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	b.Run(200)
	if len(rx.frames) != 1 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	got := rx.frames[0]
	if !got.Remote || got.RequestLen != 4 || got.ID != 0x321 || len(got.Data) != 0 {
		t.Errorf("received %s remote=%v len=%d", got.String(), got.Remote, got.RequestLen)
	}
}

func TestRemoteRequestResponseCycle(t *testing.T) {
	// The classical remote-frame pattern: a requester sends an RTR frame;
	// the data owner's application answers with the matching data frame.
	b := bus.New(bus.Rate500k)
	owner := New(Config{Name: "owner", AutoRecover: true})
	ownerApp := func(_ bus.BitTime, f can.Frame) {
		if f.Remote && f.ID == 0x150 {
			data := make([]byte, f.RequestLen)
			for i := range data {
				data[i] = byte(0xA0 + i)
			}
			_ = owner.Enqueue(can.Frame{ID: 0x150, Data: data})
		}
	}
	owner = New(Config{Name: "owner", AutoRecover: true, OnReceive: ownerApp})
	b.Attach(owner)

	var answers []can.Frame
	requester := New(Config{Name: "req", AutoRecover: true,
		OnReceive: func(_ bus.BitTime, f can.Frame) {
			if !f.Remote && f.ID == 0x150 {
				answers = append(answers, f)
			}
		}})
	b.Attach(requester)

	if err := requester.Enqueue(can.Frame{ID: 0x150, Remote: true, RequestLen: 3}); err != nil {
		t.Fatal(err)
	}
	b.Run(500)
	if len(answers) != 1 {
		t.Fatalf("got %d answers", len(answers))
	}
	if len(answers[0].Data) != 3 || answers[0].Data[0] != 0xA0 {
		t.Errorf("answer = %s", answers[0].String())
	}
}

func TestDataFrameWinsOverRemoteSameID(t *testing.T) {
	// RTR is the final arbitration bit: when a data frame and a remote
	// frame with the same ID start together, the data frame wins and the
	// remote transmitter records an arbitration loss, not an error.
	b := bus.New(bus.Rate500k)
	var rx recorder
	dataTx := newTestController("data", nil)
	remoteTx := newTestController("remote", nil)
	b.Attach(dataTx)
	b.Attach(remoteTx)
	b.Attach(newTestController("rx", &rx))

	if err := dataTx.Enqueue(can.Frame{ID: 0x222, Data: []byte{7}}); err != nil {
		t.Fatal(err)
	}
	if err := remoteTx.Enqueue(can.Frame{ID: 0x222, Remote: true, RequestLen: 1}); err != nil {
		t.Fatal(err)
	}
	b.Run(500)

	if len(rx.frames) != 2 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if rx.frames[0].Remote || rx.frames[1].Remote != true {
		t.Errorf("order wrong: %v then %v", rx.frames[0].String(), rx.frames[1].String())
	}
	if remoteTx.Stats().ArbitrationLosses == 0 {
		t.Error("remote transmitter should lose arbitration at the RTR bit")
	}
	if remoteTx.TEC() != 0 {
		t.Error("losing at RTR must not be an error")
	}
}

func TestExtendedRemoteFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	req := can.Frame{ID: 0x1ABCDEF0, Extended: true, Remote: true, RequestLen: 8}
	if err := tx.Enqueue(req); err != nil {
		t.Fatal(err)
	}
	b.Run(300)
	if len(rx.frames) != 1 || !rx.frames[0].Equal(&req) {
		t.Fatalf("extended remote frame not delivered: %v", rx.frames)
	}
}
