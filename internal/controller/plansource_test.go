package controller

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"michican/internal/can"
)

// planSourceFrame derives a distinct classical frame per index, cycling IDs
// and payload bytes the way a rolling-counter matrix does.
func planSourceFrame(i int) can.Frame {
	return can.Frame{
		ID:   can.ID(0x100 + i%16),
		Data: []byte{byte(i), byte(i >> 4), 0xA5},
	}
}

// TestPlanSourceSharesArrays pins the sharing contract: two controllers on
// one source resolve the same frame to distinct per-controller wrappers whose
// hot arrays are the same allocations, bit-identical to a locally built plan,
// with the pre-resolved splice span shaped as the splice tier expects.
func TestPlanSourceSharesArrays(t *testing.T) {
	src := NewPlanSource()
	c1 := New(Config{Name: "c1"})
	c1.SetPlanSource(src)
	c2 := New(Config{Name: "c2"})
	c2.SetPlanSource(src)
	f := can.Frame{ID: 0x123, Data: []byte{1, 2, 3}}

	p1 := c1.planFor(f.Clone())
	p2 := c2.planFor(f.Clone())
	if p1 == p2 {
		t.Fatal("controllers share the wrapper itself; each needs its own mutable header")
	}
	if &p1.bits[0] != &p2.bits[0] || &p1.isStuff[0] != &p2.isStuff[0] || &p1.resolved[0] != &p2.resolved[0] {
		t.Fatal("controllers on one source hold private copies of the plan arrays")
	}

	ref := newTxPlan(f.Clone())
	if !reflect.DeepEqual(p1.bits, ref.bits) || !reflect.DeepEqual(p1.isStuff, ref.isStuff) ||
		p1.arbEnd != ref.arbEnd || p1.ackIdx != ref.ackIdx {
		t.Fatal("shared plan differs from a locally built serialization")
	}
	if len(p1.resolved) != len(ref.bits)+IntermissionBits {
		t.Fatalf("resolved span is %d levels, want window+intermission = %d",
			len(p1.resolved), len(ref.bits)+IntermissionBits)
	}
	if p1.resolved[ref.ackIdx] != can.Dominant {
		t.Error("resolved span carries a recessive ACK slot")
	}
	for i := len(ref.bits); i < len(p1.resolved); i++ {
		if p1.resolved[i] != can.Recessive {
			t.Fatalf("resolved intermission level %d is dominant", i)
		}
	}

	st := src.Stats()
	wantBytes := int64(len(p1.bits)) + int64(len(p1.isStuff)) + int64(len(p1.resolved))
	if st.Hits != 1 || st.Misses != 1 || st.Plans != 1 || st.ResidentBytes != wantBytes {
		t.Fatalf("stats after one build and one hit: %+v (want 1/1/1/%d)", st, wantBytes)
	}
	if got := src.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}

	// A repeat resolve on the same controller is served by its local caches
	// and must not touch the source's counters.
	if c1.planFor(f.Clone()) != p1 {
		t.Fatal("repeat resolve rebuilt the wrapper instead of hitting the local cache")
	}
	if st2 := src.Stats(); st2 != st {
		t.Fatalf("local-cache hit reached the source: %+v vs %+v", st2, st)
	}
}

// TestPlanSourceDistinctKeys checks the content addressing covers every
// identity field: frames differing only in format flags or request length
// must not alias.
func TestPlanSourceDistinctKeys(t *testing.T) {
	src := NewPlanSource()
	c := New(Config{Name: "c"})
	c.SetPlanSource(src)
	frames := []can.Frame{
		{ID: 0x44, Data: []byte{9}},
		{ID: 0x44, Data: []byte{9}, Extended: true},
		{ID: 0x44, Remote: true, RequestLen: 1},
		{ID: 0x44, Remote: true, RequestLen: 2},
	}
	for _, f := range frames {
		c.planFor(f.Clone())
	}
	if st := src.Stats(); st.Plans != len(frames) || st.Misses != int64(len(frames)) {
		t.Fatalf("distinct frames collapsed: %+v, want %d plans", st, len(frames))
	}
}

// TestPlanSourceZeroValue covers the durable-store path: a zero-value source
// (nil map, e.g. decoded from a stored spec) must lazily initialize instead
// of panicking on first insert.
func TestPlanSourceZeroValue(t *testing.T) {
	var src PlanSource
	c := New(Config{Name: "c"})
	c.SetPlanSource(&src)
	if p := c.planFor(planSourceFrame(0)); p == nil || len(p.bits) == 0 {
		t.Fatal("zero-value source produced no plan")
	}
	if st := src.Stats(); st.Plans != 1 || st.Misses != 1 {
		t.Fatalf("zero-value source stats: %+v", st)
	}
}

// TestPlanSourceNilSafe: observability paths read stats off a possibly-nil
// source (the -shared-cache=false ablation), which must be a clean zero.
func TestPlanSourceNilSafe(t *testing.T) {
	var src *PlanSource
	if st := src.Stats(); st != (PlanSourceStats{}) {
		t.Fatalf("nil source stats = %+v, want zero", st)
	}
	if r := src.HitRate(); r != 0 {
		t.Fatalf("nil source hit rate = %v, want 0", r)
	}
}

// TestPlanSourceConcurrentResolve races many controllers over one source the
// way fleet workers do. Whatever the interleaving, every worker must end up
// referencing the same shared arrays per frame (first build wins, losers
// adopt), the table must hold exactly one plan per distinct frame, and the
// counters must account for every resolve.
func TestPlanSourceConcurrentResolve(t *testing.T) {
	const workers, frames = 8, 64
	src := NewPlanSource()
	plans := make([][]*txPlan, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		plans[w] = make([]*txPlan, frames)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := New(Config{Name: fmt.Sprintf("c%d", w)})
			c.SetPlanSource(src)
			for i := 0; i < frames; i++ {
				plans[w][i] = c.planFor(planSourceFrame(i))
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < frames; i++ {
		for w := 1; w < workers; w++ {
			if &plans[w][i].bits[0] != &plans[0][i].bits[0] {
				t.Fatalf("worker %d holds a private copy of frame %d's plan", w, i)
			}
		}
	}
	st := src.Stats()
	if st.Plans != frames {
		t.Fatalf("table holds %d plans, want %d", st.Plans, frames)
	}
	if st.Hits+st.Misses != workers*frames {
		t.Fatalf("counters account for %d resolves, want %d", st.Hits+st.Misses, workers*frames)
	}
	// Publication races make the exact split nondeterministic, but at least
	// one build per frame happened and hits must dominate with 8 workers.
	if st.Misses < frames || st.Hits <= st.Misses {
		t.Fatalf("implausible hit/miss split for %d workers: %+v", workers, st)
	}
}
