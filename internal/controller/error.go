package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

// frameError dispatches a detected error to the transmitter or receiver
// handling depending on this controller's role in the current frame.
func (c *Controller) frameError(t bus.BitTime, kind ErrorKind) {
	if c.transmitting {
		c.txError(t, kind)
	} else {
		c.rxError(t, kind)
	}
}

// txError handles an error detected while transmitting: the TEC grows by 8,
// the frame stays queued for retransmission, and the node signals the error
// according to its fault-confinement state.
func (c *Controller) txError(t bus.BitTime, kind ErrorKind) {
	c.stats.TxErrors[kind]++
	if c.cfg.OnError != nil {
		c.cfg.OnError(t, kind, true)
	}
	c.tel.Emit(int64(t), telemetry.EvError, int64(kind), 1)
	// ISO 11898-1 exception: an error-passive transmitter detecting an ACK
	// error does not increment its TEC. This is what lets the sole live node
	// on a degraded bus keep retransmitting without reaching bus-off.
	if !(kind == AckError && c.state == ErrorPassive) {
		c.tec += TxErrorPenalty
	}
	c.emitCounters(t)
	c.framesSinceTx = 0 // this frame attempt was ours
	c.beginErrorSignal(t)
}

// rxError handles an error detected while receiving someone else's frame.
func (c *Controller) rxError(t bus.BitTime, kind ErrorKind) {
	c.stats.RxErrors[kind]++
	if c.cfg.OnError != nil {
		c.cfg.OnError(t, kind, false)
	}
	c.tel.Emit(int64(t), telemetry.EvError, int64(kind), 0)
	c.rec++
	c.emitCounters(t)
	if c.framesSinceTx < 1<<30 {
		c.framesSinceTx++ // the destroyed frame attempt was someone else's
	}
	c.beginErrorSignal(t)
}

// beginErrorSignal transitions into error signalling after an error was
// detected at the just-observed bit. The error flag starts with the next bit.
func (c *Controller) beginErrorSignal(t bus.BitTime) {
	c.transmitting = false
	c.plan = nil
	c.resetRx()
	c.updateState(t)
	switch {
	case c.state == BusOff:
		// enterBusOff already set the phase.
	case c.state == ErrorActive && !c.cfg.ListenOnly:
		c.phase = phaseActiveFlag
		c.flagCount = 0
		c.driveNext = can.Dominant
	default: // ErrorPassive, or listen-only (signals nothing)
		c.phase = phasePassiveFlag
		c.flagCount = 0
		c.passiveLast = can.Recessive
		c.passiveBegun = false
	}
}

// observeActiveFlag drives the 6 dominant bits of an active error flag.
func (c *Controller) observeActiveFlag(t bus.BitTime, level can.Level) {
	c.flagCount++
	if c.flagCount < ActiveFlagBits {
		c.driveNext = can.Dominant
		return
	}
	c.phase = phaseErrorDelim
	c.delimCount = 0
}

// observePassiveFlag waits for the passive error flag to complete: per ISO
// 11898-1 the flag is complete after 6 consecutive equal levels have been
// detected (of either polarity — other nodes' active flags count).
func (c *Controller) observePassiveFlag(t bus.BitTime, level can.Level) {
	if c.passiveBegun && level == c.passiveLast {
		c.flagCount++
	} else {
		c.passiveLast = level
		c.passiveBegun = true
		c.flagCount = 1
	}
	if c.flagCount >= PassiveFlagBits {
		c.phase = phaseErrorDelim
		c.delimCount = 0
	}
}

// observeErrorDelim waits for the 8 recessive bits of the error delimiter.
// A dominant level (other nodes still signalling) restarts the count.
func (c *Controller) observeErrorDelim(t bus.BitTime, level can.Level) {
	if level == can.Dominant {
		c.delimCount = 0
		return
	}
	c.delimCount++
	if c.delimCount >= ErrorDelimiterBits {
		c.phase = phaseIntermission
		c.interCount = 0
		c.tel.Emit(int64(t), telemetry.EvErrorEnd, 0, 0)
	}
}

// updateState applies the fault-confinement rules to the current counter
// values (Fig. 1b): error-active below 128, error-passive above 127, bus-off
// at a TEC of 256. Bus-off is left only through the recovery sequence.
func (c *Controller) updateState(t bus.BitTime) {
	if c.state == BusOff {
		return
	}
	old := c.state
	switch {
	case c.tec >= BusOffThreshold:
		c.enterBusOff(t, old)
		return
	case c.tec > PassiveThreshold || c.rec > PassiveThreshold:
		c.state = ErrorPassive
	default:
		c.state = ErrorActive
	}
	c.notifyState(t, old, c.state)
}

// enterBusOff confines the node: it stops participating in traffic until
// (optionally) the recovery sequence completes.
func (c *Controller) enterBusOff(t bus.BitTime, old State) {
	c.state = BusOff
	c.phase = phaseBusOff
	c.stats.BusOffEvents++
	c.tel.Emit(int64(t), telemetry.EvBusOff, 0, 0)
	c.transmitting = false
	c.plan = nil
	// Entering bus-off aborts all pending transmission requests, as real
	// controllers do (the application must re-submit after recovery). The
	// Experiment-6 toggling attacker depends on this: after recovering from
	// the 0x050 bus-off it moves on to 0x051.
	c.queue.clear()
	c.resetRx()
	c.recoverSeqs, c.recoverRun = 0, 0
	c.driveNext = can.Recessive
	c.notifyState(t, old, c.state)
}
