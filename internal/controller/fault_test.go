package controller

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

// jammer is a minimal prototype of the MichiCAN prevention primitive: it
// watches for SOF (falling edge after ≥11 recessive bits) and pulls the bus
// dominant during frame bit positions [from, to] (counting SOF as 1). It is
// not a CAN node — it never raises error flags and has no error counters.
type jammer struct {
	from, to  int
	cnt       int
	inFrame   bool
	idleRun   int
	driveNext can.Level
	attacks   int
}

func newJammer(from, to int) *jammer {
	return &jammer{from: from, to: to, idleRun: can.IdleForSOF, driveNext: can.Recessive}
}

func (j *jammer) Drive(_ bus.BitTime) can.Level { return j.driveNext }

func (j *jammer) Observe(_ bus.BitTime, level can.Level) {
	j.driveNext = can.Recessive
	if !j.inFrame {
		if level == can.Dominant && j.idleRun >= can.IdleForSOF {
			j.inFrame = true
			j.cnt = 1 // SOF is position 1
			j.attacks++
		}
		if level == can.Recessive {
			j.idleRun++
		} else {
			j.idleRun = 0
		}
		if j.inFrame && j.cnt+1 >= j.from && j.cnt+1 <= j.to {
			j.driveNext = can.Dominant
		}
		return
	}
	j.cnt++
	if level == can.Recessive {
		j.idleRun++
	} else {
		j.idleRun = 0
	}
	if j.cnt >= j.to || j.idleRun >= can.IdleForSOF {
		// Done jamming this frame; wait for the error recovery and next SOF.
		if j.idleRun >= can.IdleForSOF {
			j.inFrame = false
		}
	}
	if j.cnt+1 >= j.from && j.cnt+1 <= j.to {
		j.driveNext = can.Dominant
	}
}

// spin runs the bus until the predicate is true or the bit budget is spent.
func spin(t *testing.T, b *bus.Bus, pred func() bool, maxBits int64, msg string) {
	t.Helper()
	if !b.RunUntil(pred, maxBits) {
		t.Fatalf("condition never reached within %d bits: %s", maxBits, msg)
	}
}

func TestTransmitterTECRampToBusOff(t *testing.T) {
	// A persistent transmitter whose every frame is destroyed must take
	// exactly 32 attempts: TEC 8,16,...,128 (error-passive after the 16th),
	// then 136,...,256 (bus-off at the 32nd). Fig. 1b / Sec. IV-E.
	b := bus.New(bus.Rate500k)
	attacker := newTestController("attacker", nil)
	witness := newTestController("witness", nil) // a receiver, as on any real bus
	jam := newJammer(13, 20)
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}

	spin(t, b, func() bool { return attacker.State() == ErrorPassive }, 5000,
		"attacker should reach error-passive")
	if got := attacker.Stats().TxAttempts; got != 16 {
		t.Errorf("attempts at error-passive = %d, want 16", got)
	}
	if got := attacker.TEC(); got != 128 {
		t.Errorf("TEC at error-passive = %d, want 128", got)
	}

	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000,
		"attacker should reach bus-off")
	if got := attacker.Stats().TxAttempts; got != 32 {
		t.Errorf("attempts at bus-off = %d, want 32", got)
	}
	if got := attacker.TEC(); got != 256 {
		t.Errorf("TEC at bus-off = %d, want 256", got)
	}
	if got := attacker.Stats().BusOffEvents; got != 1 {
		t.Errorf("BusOffEvents = %d, want 1", got)
	}
}

func TestBusOffTimeWithinPaperBound(t *testing.T) {
	// Sec. V-C: with one attacker and no benign traffic, the total bus-off
	// time is bounded by 16·(35 + 43) = 1248 bits (worst case, excluding
	// stuff bits). Our jammer reproduces the defense's timing, so the
	// measured interval from first SOF to bus-off must be in that range.
	b := bus.New(bus.Rate500k)
	attacker := newTestController("attacker", nil)
	witness := newTestController("witness", nil)
	jam := newJammer(13, 20)
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	start := b.Now()
	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000, "bus-off")
	elapsed := int64(b.Now() - start)
	// Lower bound: best case 16·(30+38) = 1088 bits; upper bound: worst case
	// 1248 plus stuff bits and the handful of bits before the first SOF.
	if elapsed < 1000 || elapsed > 1400 {
		t.Errorf("bus-off took %d bits, expected ≈[1088,1248] (+stuff)", elapsed)
	}
	t.Logf("bus-off time: %d bits (%v at 500 kbit/s)", elapsed, bus.Rate500k.Duration(elapsed))
}

func TestRetransmissionGapActiveVsPassive(t *testing.T) {
	// Sec. II-B: minimum separation between attempts is 11 recessive bits in
	// error-active state and 25 in error-passive (suspend included).
	b := bus.New(bus.Rate500k)
	attacker := newTestController("attacker", nil)
	witness := newTestController("witness", nil)
	jam := newJammer(13, 20)

	var sofs []bus.BitTime
	sofWatch := &sofWatcher{out: &sofs, idle: can.IdleForSOF}
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)
	b.AttachTap(sofWatch)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000, "bus-off")

	if len(sofs) != 32 {
		t.Fatalf("observed %d transmission attempts, want 32", len(sofs))
	}
	// Attempts 2..16 happen in the error-active region, 17..32 error-passive.
	// The paper's worst-case per-attempt times are t_a = 35 and t_p = 43
	// bits (Table III); the difference is exactly the 8-bit suspend period.
	activeGap := int64(sofs[2] - sofs[1])
	passiveGap := int64(sofs[20] - sofs[19])
	if passiveGap-activeGap != SuspendBits {
		t.Errorf("passive spacing (%d) - active spacing (%d) = %d, want the %d-bit suspend",
			passiveGap, activeGap, passiveGap-activeGap, SuspendBits)
	}
	if activeGap != 35 {
		t.Errorf("error-active attempt spacing = %d bits, want the paper's t_a = 35", activeGap)
	}
	if passiveGap != 43 {
		t.Errorf("error-passive attempt spacing = %d bits, want the paper's t_p = 43", passiveGap)
	}
}

// sofWatcher records the bit time of every SOF (falling edge after ≥11
// recessive bits).
type sofWatcher struct {
	idle int
	out  *[]bus.BitTime
}

func (w *sofWatcher) Bit(t bus.BitTime, level can.Level) {
	if level == can.Dominant {
		if w.idle >= can.IdleForSOF {
			*w.out = append(*w.out, t)
		}
		w.idle = 0
		return
	}
	w.idle++
}

func TestBusOffRecovery(t *testing.T) {
	// A bus-off node recovers after observing 128 sequences of 11 recessive
	// bits, then resumes transmission (the paper's persistent attacker).
	b := bus.New(bus.Rate500k)
	attacker := newTestController("attacker", nil)
	witness := newTestController("witness", nil)
	jam := newJammer(13, 20)
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000, "bus-off")
	busOffAt := b.Now()

	spin(t, b, func() bool { return attacker.State() == ErrorActive }, 3000, "recovery")
	recoveredAfter := int64(b.Now() - busOffAt)
	want := int64(RecoverySequences * RecoveryIdleBits)
	if recoveredAfter < want || recoveredAfter > want+RecoveryIdleBits {
		t.Errorf("recovered after %d bits, want ≈%d", recoveredAfter, want)
	}
	if attacker.TEC() != 0 {
		t.Errorf("TEC after recovery = %d, want 0", attacker.TEC())
	}
	if attacker.Stats().Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", attacker.Stats().Recoveries)
	}
	// Bus-off aborted the pending request; the (persistent) application
	// re-submits and the attacker re-attacks.
	if attacker.PendingTx() != 0 {
		t.Error("bus-off must abort pending transmission requests")
	}
	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return attacker.Stats().TxAttempts > 32 }, 200, "re-attack")
}

func TestNoAutoRecoverStaysBusOff(t *testing.T) {
	b := bus.New(bus.Rate500k)
	attacker := New(Config{Name: "attacker", AutoRecover: false})
	witness := newTestController("witness", nil)
	jam := newJammer(13, 20)
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000, "bus-off")
	b.Run(5 * RecoverySequences * RecoveryIdleBits)
	if attacker.State() != BusOff {
		t.Error("node with AutoRecover=false must stay bus-off")
	}
}

func TestReceiverRECTracksErrors(t *testing.T) {
	// Witness receivers on the bus increment REC per destroyed frame and
	// decrement it on successful receptions.
	b := bus.New(bus.Rate500k)
	attacker := newTestController("attacker", nil)
	witness := newTestController("witness", nil)
	jam := newJammer(13, 20)
	b.Attach(attacker)
	b.Attach(witness)
	b.Attach(jam)

	if err := attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return attacker.State() == BusOff }, 5000, "bus-off")
	if witness.REC() == 0 {
		t.Error("witness REC should have grown during the attack")
	}
	if witness.REC() > 64 {
		t.Errorf("witness REC = %d, unexpectedly high", witness.REC())
	}
}

func TestAckErrorSoleNode(t *testing.T) {
	// A transmitter alone on the bus gets no ACK: TEC grows by 8 per attempt
	// until error-passive, where the ISO exception freezes it — the node
	// must never reach bus-off from ACK errors alone.
	b := bus.New(bus.Rate500k)
	solo := newTestController("solo", nil)
	b.Attach(solo)

	if err := solo.Enqueue(can.Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.Run(30_000)
	if solo.State() == BusOff {
		t.Fatal("sole transmitter reached bus-off from ACK errors")
	}
	if solo.State() != ErrorPassive {
		t.Errorf("sole transmitter state = %v, want error-passive", solo.State())
	}
	if solo.TEC() != 128 {
		t.Errorf("TEC = %d, want frozen at 128", solo.TEC())
	}
	if solo.Stats().TxErrors[AckError] < 10 {
		t.Errorf("expected many ACK errors, got %d", solo.Stats().TxErrors[AckError])
	}
}

func TestWireBitFlipCausesSingleErrorNotBusOff(t *testing.T) {
	// Sec. IV-E: a sporadic bit flip can make a legitimate frame look
	// malicious for one attempt, but a single error never approaches the 32
	// consecutive errors needed for bus-off — no false-positive bus-off.
	b := bus.New(bus.Rate500k)
	tx := newTestController("tx", nil)
	var rx recorder
	rxc := New(Config{Name: "rx", AutoRecover: true, OnReceive: rx.onReceive})
	glitch := &oneShotGlitch{at: 40}
	b.Attach(tx)
	b.Attach(rxc)
	b.Attach(glitch)

	if err := tx.Enqueue(can.Frame{ID: 0x300, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Run(600)
	if tx.Stats().TxSuccess != 1 {
		t.Fatalf("frame never got through after the glitch")
	}
	if tx.TEC() >= 8 {
		t.Errorf("TEC = %d after recovery; success should have decremented it", tx.TEC())
	}
	if tx.State() != ErrorActive {
		t.Errorf("state = %v, want error-active", tx.State())
	}
	if len(rx.frames) != 1 {
		t.Errorf("receiver saw %d frames, want exactly 1 (no duplicate delivery)", len(rx.frames))
	}
}

// oneShotGlitch forces one dominant bit at an absolute bus time, emulating a
// transient fault on the wire.
type oneShotGlitch struct {
	at bus.BitTime
}

func (g *oneShotGlitch) Drive(t bus.BitTime) can.Level {
	if t == g.at {
		return can.Dominant
	}
	return can.Recessive
}

func (g *oneShotGlitch) Observe(bus.BitTime, can.Level) {}
