package controller

import (
	"math/rand"
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
)

func TestFDFrameDelivery(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	want := can.Frame{ID: 0x155, FD: true, Data: make([]byte, 64)}
	for i := range want.Data {
		want.Data[i] = byte(i)
	}
	if err := tx.Enqueue(want); err != nil {
		t.Fatal(err)
	}
	b.Run(800)
	if len(rx.frames) != 1 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if !rx.frames[0].Equal(&want) {
		t.Errorf("received %s FD=%v len=%d", rx.frames[0].String(), rx.frames[0].FD, len(rx.frames[0].Data))
	}
	if tx.TEC() != 0 || tx.Stats().TxSuccess != 1 {
		t.Errorf("TEC=%d success=%d", tx.TEC(), tx.Stats().TxSuccess)
	}
}

func TestFDMixedWithClassicalTraffic(t *testing.T) {
	b := bus.New(bus.Rate500k)
	var rx recorder
	tx := newTestController("tx", nil)
	b.Attach(tx)
	b.Attach(newTestController("rx", &rx))

	rng := rand.New(rand.NewSource(4))
	frames := []can.Frame{
		{ID: 0x100, Data: []byte{1}},
		{ID: 0x101, FD: true, Data: make([]byte, 12)},
		{ID: 0x18DAF110, Extended: true, Data: []byte{2}},
		{ID: 0x1ABCDE00, Extended: true, FD: true, Data: make([]byte, 32)},
		{ID: 0x102, Remote: true, RequestLen: 4},
		{ID: 0x103, FD: true, ESIPassive: false, Data: make([]byte, 48)},
	}
	for i := range frames {
		if len(frames[i].Data) > 0 {
			rng.Read(frames[i].Data)
		}
		if err := tx.Enqueue(frames[i]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	b.Run(4000)
	if len(rx.frames) != len(frames) {
		t.Fatalf("received %d/%d frames", len(rx.frames), len(frames))
	}
	for i := range frames {
		if !rx.frames[i].Equal(&frames[i]) {
			t.Errorf("frame %d: got %s (FD=%v ext=%v remote=%v)", i,
				rx.frames[i].String(), rx.frames[i].FD, rx.frames[i].Extended, rx.frames[i].Remote)
		}
	}
	if tx.TEC() != 0 {
		t.Errorf("TEC = %d after mixed traffic", tx.TEC())
	}
}

func TestFDArbitrationAgainstClassical(t *testing.T) {
	// FD and classical frames arbitrate identically through the ID field;
	// the lower ID wins regardless of format.
	b := bus.New(bus.Rate500k)
	var rx recorder
	fdTx := newTestController("fd", nil)
	classicTx := newTestController("classic", nil)
	b.Attach(fdTx)
	b.Attach(classicTx)
	b.Attach(newTestController("rx", &rx))

	if err := fdTx.Enqueue(can.Frame{ID: 0x100, FD: true, Data: make([]byte, 16)}); err != nil {
		t.Fatal(err)
	}
	if err := classicTx.Enqueue(can.Frame{ID: 0x200, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	b.Run(1200)
	if len(rx.frames) != 2 {
		t.Fatalf("received %d frames", len(rx.frames))
	}
	if !rx.frames[0].FD || rx.frames[0].ID != 0x100 {
		t.Errorf("FD frame with the lower ID should win: first = %s", rx.frames[0].String())
	}
	if classicTx.TEC() != 0 || fdTx.TEC() != 0 {
		t.Error("format mixing must not cause errors")
	}
}

func TestFDJammedFrameRampsTEC(t *testing.T) {
	// The MichiCAN primitive works against FD transmitters unchanged: the
	// post-arbitration pull destroys the frame, TEC ramps to bus-off in 32.
	b := bus.New(bus.Rate500k)
	att := newTestController("att", nil)
	witness := newTestController("w", nil)
	jam := newJammer(13, 20)
	b.Attach(att)
	b.Attach(witness)
	b.Attach(jam)

	if err := att.Enqueue(can.Frame{ID: 0x173, FD: true, Data: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	spin(t, b, func() bool { return att.State() == BusOff }, 8000, "FD attacker bus-off")
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
}
