package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

var _ bus.Splicing = (*Controller)(nil)

// SpliceOffer implements bus.Splicing. A controller offers a compiled window
// when it is about to assert SOF on an idle bus (pendingSOF) with a classical
// frame at the head of its mailbox: the transmit plan — memoized per frame
// content — is the whole wire window from SOF through the last EOF bit, with
// the ACK slot recessive. FD and oversize frames stay on the lower tiers
// (their fixed-stuff trailers recur too rarely to be worth compiling).
//
// RxView is precomputed to the exact frame a receiver's decodeRx would
// report, so receivers can deliver it without re-decoding the bit stream.
func (c *Controller) SpliceOffer(now bus.BitTime) (bus.SpliceWindow, bool) {
	if c.phase != phaseIdle || !c.pendingSOF {
		return bus.SpliceWindow{}, false
	}
	f, ok := c.queue.head()
	if !ok || f.FD || len(f.Data) > can.MaxDataLen {
		return bus.SpliceWindow{}, false
	}
	p := c.queue.headPlan()
	if p == nil {
		p = c.planFor(f)
	}
	c.pendingPlan = p
	if p.memo == nil {
		p.memo = &bus.SpliceMemo{}
	}
	rx := can.Frame{ID: f.ID, Extended: f.Extended}
	if f.Remote {
		rx.Remote = true
		rx.RequestLen = f.RequestLen
		if rx.RequestLen > can.MaxDataLen {
			rx.RequestLen = can.MaxDataLen // receivers clamp DLC 9..15 to 8
		}
	} else {
		rx.Data = f.Data // receivers clone per delivery
	}
	return bus.SpliceWindow{Bits: p.bits, AckIdx: p.ackIdx, RxView: rx, Memo: p.memo, Resolved: p.resolved}, true
}

// SpliceQuery implements bus.Splicing: promise, without mutating state, that
// this controller can absorb the whole resolved window as a passive receiver
// (or as an oblivious bus-off node). The promise mirrors PassiveRun's
// frameBit-0 join case, extended over the trailer: a synchronized receiver of
// a plan-backed stream can raise no error, acks are declared rather than
// driven, and every callback the window contains (OnReceive, counter
// updates) lands at its exact bit time in SpliceApply.
func (c *Controller) SpliceQuery(now bus.BitTime, resolved []can.Level, ackIdx int, _ *any) (bool, bool) {
	if c.driveNext == can.Dominant {
		return false, false
	}
	switch c.phase {
	case phaseIdle, phaseIntermission, phaseSuspend:
		if c.pendingSOF {
			return false, false // a competing contender: lower tiers arbitrate
		}
		return true, !c.cfg.ListenOnly
	case phaseBusOff:
		// The resolved span's trailing recessive run (ACK delimiter + EOF +
		// intermission = 11) reaches RecoveryIdleBits, so an auto-recovering
		// node could complete a recovery sequence — and possibly the rejoin
		// transition — at the window's edge; that stays on the lower tiers.
		// Without auto-recovery the node is oblivious and always passive.
		return !c.cfg.AutoRecover, false
	}
	return false, false
}

// SpliceApply implements bus.Splicing: fold the whole resolved span into a
// passive node in O(1), leaving it in exactly the state len(resolved) per-bit
// Observe calls would have produced. For a receiver that is the
// rxComplete/endAttempt effect at the last EOF bit, with the precomputed
// RxView standing in for decodeRx, followed by the intermission tail's
// end-of-intermission transition; a bus-off node (non-recovering — the query
// declined auto-recovery) only tracks the idle run.
func (c *Controller) SpliceApply(now bus.BitTime, resolved []can.Level, ackIdx int, rx can.Frame, _ *any) {
	c.idleRun = 1 + can.EOFBits + IntermissionBits
	c.driveNext = can.Recessive
	if c.phase == phaseBusOff {
		return
	}
	// Receiver: rxComplete at the last EOF bit.
	end := now + bus.BitTime(len(resolved)-IntermissionBits-1)
	c.stats.RxSuccess++
	if c.rec > PassiveThreshold {
		c.rec = PassiveThreshold
	} else if c.rec > 0 {
		c.rec--
	}
	c.emitCounters(end)
	c.updateState(end)
	if c.cfg.OnReceive != nil {
		if len(rx.Data) > 0 {
			rx.Data = append([]byte(nil), rx.Data...)
		}
		c.cfg.OnReceive(end, rx)
	}
	c.endAttempt(false)
	c.spliceTail()
}

// spliceTail replays the intermission tail's observable effect after
// endAttempt: three recessive bits count out the inter-frame space, and the
// threshold check at the last one — exactly observeIntermission's — either
// suspends an error-passive recent transmitter or returns to idle, asserting
// a pending SOF if frames are queued. interCount is left at the threshold,
// as three per-bit increments would leave it.
func (c *Controller) spliceTail() {
	c.interCount = IntermissionBits
	if c.state == ErrorPassive && c.framesSinceTx < 2 {
		c.phase = phaseSuspend
		c.suspendCount = 0
		return
	}
	c.phase = phaseIdle
	if c.queue.len() > 0 {
		c.driveNext = can.Dominant
		c.pendingSOF = true
	}
}

// SpliceCommit implements bus.Splicing: the offerer consumes its own window.
// The resolved levels match the pending plan everywhere except the ACK slot,
// which the transmitter never monitors on the batch path (the bus only
// commits a splice when a receiver declared the ack), so the whole window
// folds to beginFrame's entry effects plus txSuccess at the last bit — the
// per-bit monitoring in between can raise nothing. The fold replays exactly
// the telemetry, stats, counter updates, and callbacks the ObserveRun
// machinery would run, without touching the receive pipeline it would reset
// twice (endAttempt leaves it reset either way; txIdx and acked are dead
// until the next beginFrame rewrites them). Any state mismatch with the
// offer falls back to the full machinery.
func (c *Controller) SpliceCommit(now bus.BitTime, resolved []can.Level, _ *any) {
	p := c.pendingPlan
	if c.phase == phaseIdle && c.pendingSOF && p != nil &&
		len(p.bits)+IntermissionBits == len(resolved) {
		// The in-flight frame is the one offered — latched in pendingPlan at
		// the window's SOF, exactly as beginFrame latches the head there. The
		// current head may already differ: schedule deadlines drained into the
		// span enqueue ahead of the commit, and a priority-sorted mailbox
		// re-sorts them above the in-flight frame, just as on the exact path.
		{
			f := p.frame
			end := now + bus.BitTime(len(p.bits)-1)
			c.pendingSOF, c.pendingPlan = false, nil
			c.stats.TxAttempts++
			c.tel.Emit(int64(now), telemetry.EvTxStart, int64(f.ID), 0)
			c.tel.Emit(int64(now)+int64(p.arbEnd-1), telemetry.EvArbWon, int64(f.ID), 0)
			c.idleRun = 1 + can.EOFBits + IntermissionBits
			c.driveNext = can.Recessive
			c.acked = false
			c.queue.remove(f)
			c.stats.TxSuccess++
			c.tel.Emit(int64(end), telemetry.EvTxSuccess, int64(f.ID), 0)
			if c.tec > 0 {
				c.tec--
			}
			c.emitCounters(end)
			c.updateState(end)
			if c.cfg.OnTransmit != nil {
				c.cfg.OnTransmit(end, f)
			}
			c.endAttempt(true)
			c.spliceTail()
			return
		}
	}
	// Exact fallback: the frame span through the batch machinery, the tail
	// bit by bit (ObserveRun's intermission handling assumes a quiescent
	// queue, which a chained window's pending next frame violates).
	frameLen := len(resolved) - IntermissionBits
	c.ObserveRun(now, resolved[:frameLen])
	for i := frameLen; i < len(resolved); i++ {
		c.Observe(now+bus.BitTime(i), resolved[i])
	}
}
