package controller

import (
	"math/rand"
	"testing"

	"michican/internal/can"
)

// genericTxPlan is the reference three-pass serialization (field generation,
// then CRC, then stuffing) that newTxPlanBase fuses into a single pass.
func genericTxPlan(f can.Frame) *txPlan {
	body := can.UnstuffedBody(&f)
	arbEndPos := can.Layout{Extended: f.Extended}.ArbEndPos()
	var s can.Stuffer
	s.Reset()
	wire := make([]can.Level, 0, len(body)+len(body)/4+3+can.EOFBits)
	isStuff := make([]bool, 0, cap(wire))
	arbEnd := 0
	for pos, b := range body {
		out := s.Next(b)
		wire = append(wire, out...)
		isStuff = append(isStuff, false)
		if len(out) == 2 {
			isStuff = append(isStuff, true)
		}
		if pos <= arbEndPos {
			arbEnd = len(wire)
		}
	}
	wire = append(wire, can.Recessive)
	ackIdx := len(wire)
	wire = append(wire, can.Recessive, can.Recessive)
	for i := 0; i < can.EOFBits; i++ {
		wire = append(wire, can.Recessive)
	}
	for len(isStuff) < len(wire) {
		isStuff = append(isStuff, false)
	}
	return &txPlan{frame: f, bits: wire, arbEnd: arbEnd, isStuff: isStuff, ackIdx: ackIdx}
}

// TestTxPlanBaseMatchesGeneric differentially checks the fused single-pass
// serializer against the reference construction over random base-format
// frames (all IDs stressed via randomness, every DLC, data and remote).
func TestTxPlanBaseMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(f can.Frame) {
		t.Helper()
		got, want := newTxPlanBase(f), genericTxPlan(f)
		if len(got.bits) != len(want.bits) {
			t.Fatalf("frame %+v: wire len %d, want %d", f, len(got.bits), len(want.bits))
		}
		for i := range got.bits {
			if got.bits[i] != want.bits[i] || got.isStuff[i] != want.isStuff[i] {
				t.Fatalf("frame %+v: bit %d = (%v,%v), want (%v,%v)",
					f, i, got.bits[i], got.isStuff[i], want.bits[i], want.isStuff[i])
			}
		}
		if got.arbEnd != want.arbEnd || got.ackIdx != want.ackIdx {
			t.Fatalf("frame %+v: geometry (%d,%d), want (%d,%d)",
				f, got.arbEnd, got.ackIdx, want.arbEnd, want.ackIdx)
		}
	}
	// Stuffing-heavy corner IDs at every DLC.
	for _, id := range []can.ID{0x000, 0x7FF, 0x555, 0x0F0, 0x01} {
		for dlc := 0; dlc <= can.MaxDataLen; dlc++ {
			data := make([]byte, dlc)
			check(can.Frame{ID: id, Data: data})
			for i := range data {
				data[i] = 0xFF
			}
			check(can.Frame{ID: id, Data: data})
		}
		for reqLen := 0; reqLen <= can.MaxDataLen; reqLen++ {
			check(can.Frame{ID: id, Remote: true, RequestLen: reqLen})
		}
	}
	for i := 0; i < 2000; i++ {
		f := can.Frame{ID: can.ID(rng.Intn(1 << can.IDBits))}
		if rng.Intn(8) == 0 {
			f.Remote = true
			f.RequestLen = rng.Intn(can.MaxDataLen + 1)
		} else {
			f.Data = make([]byte, rng.Intn(can.MaxDataLen+1))
			rng.Read(f.Data)
		}
		check(f)
	}
}

// TestPlanCacheReuse checks that retransmissions of an equal frame reuse the
// cached serialization while the frame value handed back tracks the head.
func TestPlanCacheReuse(t *testing.T) {
	c := New(Config{})
	f := can.Frame{ID: 0x123, Data: []byte{1, 2, 3}}
	p1 := c.planFor(f)
	p2 := c.planFor(can.Frame{ID: 0x123, Data: []byte{1, 2, 3}})
	if p1 != p2 {
		t.Fatalf("equal frames did not share a plan")
	}
	p3 := c.planFor(can.Frame{ID: 0x123, Data: []byte{1, 2, 4}})
	if p3 == p1 {
		t.Fatalf("different payloads shared a plan")
	}
}
