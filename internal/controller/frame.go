package controller

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/telemetry"
)

// beginFrame enters the on-frame phase at the SOF bit. contender reports
// whether this controller asserted the SOF itself (it decided to start a
// transmission during the previous bit).
func (c *Controller) beginFrame(t bus.BitTime, level can.Level, contender bool) {
	c.phase = phaseFrame
	c.resetRx()

	c.transmitting = false
	c.plan = nil
	if contender {
		if f, ok := c.queue.head(); ok {
			if p := c.pendingPlan; p != nil && p.frame.Equal(&f) {
				p.frame = f
				c.plan = p
			} else if p := c.queue.headPlan(); p != nil {
				c.plan = p
			} else {
				c.plan = c.planFor(f)
			}
			c.txIdx = 0
			c.acked = false
			c.transmitting = true
			c.stats.TxAttempts++
			c.tel.Emit(int64(t), telemetry.EvTxStart, int64(c.plan.frame.ID), 0)
		}
	}
	c.pendingPlan = nil
	// Process the SOF bit through both paths.
	c.observeFrame(t, level)
}

// resetRx clears the receive pipeline for a new frame.
func (c *Controller) resetRx() {
	c.rxDestuf.Reset()
	c.rxBits = c.rxBits[:0]
	c.rxCRC.Reset()
	c.rxDLC = -1
	c.rxCRCOK = false
	c.rxTrailer = 0
	c.rxLayout = can.Layout{}
	c.rxLayoutKnown = false
	c.rxRemote = false
	c.rxDataLen = -1
	c.rxAwaitStuff = false
	c.rxFD = false
	c.rxFDKnown = false
	if c.rxFDCRC17 == nil {
		c.rxFDCRC17 = can.NewFDCRC(0)
		c.rxFDCRC21 = can.NewFDCRC(64)
	} else {
		c.rxFDCRC17.Reset()
		c.rxFDCRC21.Reset()
	}
	c.rxDynStuff = 0
	c.rxFSIdx = -1
	c.rxFSBNext = false
	c.rxFDCRCBits = c.rxFDCRCBits[:0]
	c.rxLastWire = can.Recessive
	c.rxWire = 0
}

// observeFrame advances the frame state machine by one observed bit. The
// transmitter path (bit monitoring against the serialized plan) runs first;
// the receive pipeline runs for every node so that a transmitter losing
// arbitration continues seamlessly as a receiver.
func (c *Controller) observeFrame(t bus.BitTime, level can.Level) {
	if c.transmitting {
		if c.monitorTxBit(t, level) {
			return // error raised or transmission completed
		}
	}
	c.rxProcess(t, level)
}

// monitorTxBit compares the observed level against the transmitted bit. It
// returns true when the frame attempt ended (error or success) and frame
// processing for this bit must stop.
func (c *Controller) monitorTxBit(t bus.BitTime, level can.Level) bool {
	expected := c.plan.bits[c.txIdx]
	switch {
	case c.txIdx < c.plan.arbEnd && expected == can.Recessive && level == can.Dominant:
		if c.plan.isStuff[c.txIdx] {
			// A competing arbitration winner would have stuffed here too;
			// an overwritten recessive stuff bit is a stuff error (the
			// paper's best-case counterattack trigger at the RTR bit).
			c.txError(t, StuffError)
			return true
		}
		// Lost arbitration to a lower ID: hand over to the receive pipeline,
		// catching it up on the bits deferred while we were the transmitter.
		c.transmitting = false
		c.tel.Emit(int64(t), telemetry.EvArbLost, int64(c.txIdx), 0)
		c.flushDeferredRx(t)
		c.stats.ArbitrationLosses++
		return false
	case c.txIdx == c.plan.ackIdx:
		if level == can.Dominant {
			c.acked = true
		} else {
			c.txError(t, AckError)
			return true
		}
	case level != expected:
		if c.plan.isStuff[c.txIdx] {
			c.txError(t, StuffError)
		} else {
			c.txError(t, BitError)
		}
		return true
	}
	c.txIdx++
	if c.txIdx == c.plan.arbEnd {
		c.tel.Emit(int64(t), telemetry.EvArbWon, int64(c.plan.frame.ID), 0)
	}
	if c.txIdx >= len(c.plan.bits) {
		c.txSuccess(t)
		return true
	}
	c.driveNext = c.plan.bits[c.txIdx]
	return false
}

// txSuccess finalizes an acknowledged, error-free transmission.
func (c *Controller) txSuccess(t bus.BitTime) {
	f := c.plan.frame
	c.queue.remove(f)
	c.stats.TxSuccess++
	c.tel.Emit(int64(t), telemetry.EvTxSuccess, int64(f.ID), 0)
	if c.tec > 0 {
		c.tec--
	}
	c.emitCounters(t)
	c.updateState(t)
	if c.cfg.OnTransmit != nil {
		c.cfg.OnTransmit(t, f)
	}
	c.endAttempt(true)
}

// rxProcess advances the receive pipeline by one observed bit.
//
// A transmitter defers its receive pipeline entirely (rxWire stays behind
// txIdx): the pipeline is externally inert while transmitting — the ACK
// decision, the CRC-error check, and rxComplete are all receiver-only, and
// any observed/expected mismatch raises a tx error in monitorTxBit before
// this function runs — so the work is dropped unperformed at frame end. The
// one path back to live reception, arbitration loss, replays the deferred
// bits from the plan (flushDeferredRx), which equals the resolved wire
// stream bit-for-bit over that prefix.
func (c *Controller) rxProcess(t bus.BitTime, level can.Level) {
	if c.transmitting && c.rxWire < c.txIdx {
		return
	}
	c.rxWire++
	if c.rxTrailer == 0 {
		c.rxStuffedBit(t, level)
		return
	}
	switch {
	case c.rxTrailer == 1: // CRC delimiter
		if level != can.Recessive {
			c.frameError(t, FormError)
			return
		}
		// Decide the ACK: receivers with a valid CRC drive the next bit
		// (the ACK slot) dominant. Listen-only controllers never drive.
		if !c.transmitting && c.rxCRCOK && !c.cfg.ListenOnly {
			c.driveNext = can.Dominant
		}
	case c.rxTrailer == 2: // ACK slot — any level is legal here
	case c.rxTrailer == 3: // ACK delimiter
		if !c.transmitting && !c.rxCRCOK {
			c.rxError(t, CRCError)
			return
		}
		if level != can.Recessive {
			c.frameError(t, FormError)
			return
		}
	default: // EOF bits
		if level != can.Recessive {
			c.frameError(t, FormError)
			return
		}
		if c.rxTrailer == 3+can.EOFBits {
			c.rxComplete(t)
			return
		}
	}
	c.rxTrailer++
}

// rxStuffedBit consumes one wire bit of the stuffed region (SOF through the
// last CRC bit).
func (c *Controller) rxStuffedBit(t bus.BitTime, level can.Level) {
	if c.rxFD && c.rxFSIdx >= 0 {
		c.rxFDFixedStuffBit(t, level)
		return
	}
	// FD CRCs run over every wire bit of the dynamic region (FD covers
	// stuff bits); skipped once the FDF bit has revealed a classical frame,
	// which is protected by CRC-15 only.
	if !c.rxFDKnown || c.rxFD {
		c.rxFDCRC17.Update(level)
		c.rxFDCRC21.Update(level)
	}
	c.rxLastWire = level
	if c.rxAwaitStuff {
		// The stuffed region can end with a pending stuff bit (after the
		// final CRC bit for classical frames, after the final data bit for
		// FD); consume it before the next region.
		if _, err := c.rxDestuf.Next(level); err != nil {
			c.frameError(t, StuffError)
			return
		}
		c.rxAwaitStuff = false
		if c.rxFD {
			c.rxDynStuff++
			c.rxFSIdx = 0
			c.rxFSBNext = true
			return
		}
		c.rxTrailer = 1
		return
	}
	payload, err := c.rxDestuf.Next(level)
	if err != nil {
		c.frameError(t, StuffError)
		return
	}
	if !payload {
		c.rxDynStuff++
		return
	}
	c.rxBits = append(c.rxBits, level)
	n := len(c.rxBits)
	if !c.rxLayoutKnown {
		// Everything through the IDE bit is CRC-protected in both formats.
		c.rxCRC.Update(level)
		if n == can.PosIDE+1 {
			// The IDE bit discriminates the formats: dominant = base (CAN
			// 2.0A), recessive = extended (CAN 2.0B).
			c.rxLayout = can.Layout{Extended: level == can.Recessive}
			c.rxLayoutKnown = true
		}
		return
	}
	if !c.rxFDKnown {
		// The FDF bit (position 14 base / 33 extended) discriminates FD
		// from classical: recessive = FD.
		c.rxCRC.Update(level)
		fdfPos := can.PosFDF
		if c.rxLayout.Extended {
			fdfPos = can.PosFDFExt
		}
		if n == fdfPos+1 {
			c.rxFD = level == can.Recessive
			c.rxFDKnown = true
		}
		return
	}
	if c.rxFD {
		c.rxFDDynamicBit(t, level, n)
		return
	}
	if c.rxDLC < 0 {
		c.rxCRC.Update(level)
		if n == c.rxLayout.DLCStart()+can.DLCBits {
			dlc := can.DecodeField(c.rxBits, c.rxLayout.DLCStart(), can.DLCBits)
			if dlc > can.MaxDataLen {
				dlc = can.MaxDataLen // DLC 9..15 means 8 data bytes
			}
			c.rxDLC = dlc
			// A recessive RTR marks a remote frame: the DLC carries the
			// requested length but no data field follows.
			rtrPos := can.PosRTR
			if c.rxLayout.Extended {
				rtrPos = can.PosRTRExt
			}
			c.rxRemote = c.rxBits[rtrPos] == can.Recessive
			c.rxDataLen = dlc
			if c.rxRemote {
				c.rxDataLen = 0
			}
		}
		return
	}
	dataEnd := c.rxLayout.UnstuffedLen(c.rxDataLen) - can.CRCBits
	if n <= dataEnd {
		c.rxCRC.Update(level)
	}
	if n == c.rxLayout.UnstuffedLen(c.rxDataLen) {
		got := uint16(can.DecodeField(c.rxBits, dataEnd, can.CRCBits))
		c.rxCRCOK = got == c.rxCRC.Sum()
		if c.rxDestuf.Expecting() {
			c.rxAwaitStuff = true
		} else {
			c.rxTrailer = 1
		}
	}
}

// flushDeferredRx catches the receive pipeline up on the wire bits deferred
// while this controller was the transmitter. Deferred bits are replayed from
// the plan: over the deferred prefix every resolved level matched the
// transmitted bit (any mismatch would have ended the attempt before the
// deferral grew), so the replay is exact. Call with transmitting already
// false — rxProcess skips deferred transmitters.
func (c *Controller) flushDeferredRx(t bus.BitTime) {
	n := c.txIdx
	for c.rxWire < n && c.phase == phaseFrame {
		c.rxProcess(t, c.plan.bits[c.rxWire])
	}
}

// rxComplete finalizes the reception of a frame after the last EOF bit.
func (c *Controller) rxComplete(t bus.BitTime) {
	if !c.transmitting {
		c.stats.RxSuccess++
		if c.rec > PassiveThreshold {
			c.rec = PassiveThreshold // successful reception re-arms the node
		} else if c.rec > 0 {
			c.rec--
		}
		c.emitCounters(t)
		c.updateState(t)
		if c.cfg.OnReceive != nil {
			c.cfg.OnReceive(t, c.decodeRx())
		}
	}
	c.endAttempt(false)
}

// decodeRx materializes the received frame from the unstuffed payload bits.
func (c *Controller) decodeRx() can.Frame {
	f := can.Frame{ID: c.rxLayout.DecodeID(c.rxBits), Extended: c.rxLayout.Extended}
	if c.rxFD {
		dataStart, esiPos := can.PosDataStartFD, can.PosESI
		if c.rxLayout.Extended {
			dataStart, esiPos = can.PosDataStartFDExt, can.PosFDFExt+3
		}
		f.FD = true
		f.ESIPassive = c.rxBits[esiPos] == can.Recessive
		if c.rxDataLen > 0 {
			f.Data = make([]byte, c.rxDataLen)
			for i := 0; i < c.rxDataLen; i++ {
				f.Data[i] = byte(can.DecodeField(c.rxBits, dataStart+8*i, 8))
			}
		}
		return f
	}
	if c.rxRemote {
		f.Remote = true
		f.RequestLen = c.rxDLC
		return f
	}
	if c.rxDLC > 0 {
		f.Data = make([]byte, c.rxDLC)
		for i := 0; i < c.rxDLC; i++ {
			f.Data[i] = byte(can.DecodeField(c.rxBits, c.rxLayout.DataStart()+8*i, 8))
		}
	}
	return f
}

// endAttempt closes a frame attempt (successful or destroyed by an error
// frame) and enters intermission. wasOurs records whether this controller
// was the frame's transmitter, which feeds the suspend-transmission rule.
func (c *Controller) endAttempt(wasOurs bool) {
	if wasOurs {
		c.framesSinceTx = 0
	} else if c.framesSinceTx < 1<<30 {
		c.framesSinceTx++
	}
	c.transmitting = false
	c.plan = nil
	c.resetRx()
	c.phase = phaseIntermission
	c.interCount = 0
}

// rxFDDynamicBit handles a destuffed payload bit of an FD frame's dynamic
// region: DLC decoding via the FD table and the switch to the fixed-stuff
// region after the last data bit.
func (c *Controller) rxFDDynamicBit(t bus.BitTime, level can.Level, n int) {
	dlcStart, dataStart := can.PosDLCStartFD, can.PosDataStartFD
	if c.rxLayout.Extended {
		dlcStart, dataStart = can.PosDLCStartFDExt, can.PosDataStartFDExt
	}
	if c.rxDLC < 0 {
		if n != dlcStart+can.DLCBits {
			return
		}
		c.rxDLC = can.DecodeField(c.rxBits, dlcStart, can.DLCBits)
		c.rxDataLen = can.FDLenFromDLC(c.rxDLC)
	}
	if c.rxDataLen >= 0 && n == dataStart+8*c.rxDataLen {
		// Dynamic region complete; a pending dynamic stuff bit may still
		// follow before the fixed-stuff region.
		if c.rxDestuf.Expecting() {
			c.rxAwaitStuff = true
		} else {
			c.rxFSIdx = 0
			c.rxFSBNext = true
		}
	}
}

// rxFDFixedStuffBit consumes one wire bit of the FD fixed-stuff region: the
// stuff-count field and the CRC-17/21 sequence, each 4-bit group preceded by
// a fixed stuff bit that must invert its predecessor.
func (c *Controller) rxFDFixedStuffBit(t bus.BitTime, level can.Level) {
	prev := c.rxLastWire
	c.rxLastWire = level
	crcBits := 17
	if c.rxDataLen > 16 {
		crcBits = 21
	}
	if c.rxFSBNext {
		if level == prev {
			c.frameError(t, StuffError)
			return
		}
		c.rxFSBNext = false
		return
	}
	if c.rxFSIdx < 4 {
		c.rxSCBits[c.rxFSIdx] = level
		c.rxFDCRC17.Update(level)
		c.rxFDCRC21.Update(level)
	} else {
		c.rxFDCRCBits = append(c.rxFDCRCBits, level)
	}
	c.rxFSIdx++
	if c.rxFSIdx == 4+crcBits {
		count, ok := can.DecodeStuffCount(c.rxSCBits)
		crc := c.rxFDCRC17
		if crcBits == 21 {
			crc = c.rxFDCRC21
		}
		var got uint32
		for _, b := range c.rxFDCRCBits {
			got = got<<1 | uint32(b)
		}
		c.rxCRCOK = ok && count == c.rxDynStuff&7 && got == crc.Sum()
		c.rxTrailer = 1
		return
	}
	if c.rxFSIdx%4 == 0 {
		c.rxFSBNext = true
	}
}
