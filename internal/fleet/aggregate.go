package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"michican/internal/forensics"
	"michican/internal/telemetry"
)

// maxRecentIncidents bounds the fleet-wide recent-incident ring: the newest
// incidents stay inspectable over HTTP while a soak run's full history stays
// out of memory (per-ID totals keep counting past the ring).
const maxRecentIncidents = 256

// Aggregate is the fleet-wide snapshot every worker commits into: an
// aggregated counter registry (summed across vehicles via per-vehicle
// NetCommitters), operational counters for the commit economy, and the
// incident hand-off store.
//
// Writers (worker commits) and readers (the observability server) are
// decoupled by a seqlock: a commit batch bumps the sequence odd, applies its
// atomic adds, and bumps it even; a reader retries its copy until it lands
// between commits. Workers therefore never block on a query — the hot path
// cost of a concurrent reader is zero — and a reader gets a view no commit
// batch tore through the middle of.
type Aggregate struct {
	reg *telemetry.Registry

	// seq is the seqlock generation: odd while a commit batch is applying.
	// writeMu serializes writers (commits are rare by construction — that is
	// the whole point of thresholding — so this lock is never hot).
	seq     atomic.Int64
	writeMu sync.Mutex

	commitCalls    atomic.Int64 // Commit batches that wrote something
	logicalUpdates atomic.Int64 // hub events represented by those batches
	committedDelta atomic.Int64 // total counter delta folded in
	simBits        atomic.Int64 // simulated bit times across all vehicles

	incMu     sync.Mutex
	incTotals IncidentTotals
	incByID   map[string]*IncidentTotals
	recent    []VehicleIncident
}

// newAggregate creates an empty fleet aggregate.
func newAggregate() *Aggregate {
	return &Aggregate{
		reg:     telemetry.NewRegistry(),
		incByID: make(map[string]*IncidentTotals),
	}
}

// Registry returns the aggregated counter registry. Values in it are only
// as fresh as the last commits; consistent multi-counter reads should go
// through MetricsView.
func (a *Aggregate) Registry() *telemetry.Registry { return a.reg }

// commitBatch runs fn inside one seqlock write section. Everything fn adds
// (registry deltas, operational counters) becomes visible to readers as one
// atomic batch.
func (a *Aggregate) commitBatch(fn func()) {
	a.writeMu.Lock()
	a.seq.Add(1)
	fn()
	a.seq.Add(1)
	a.writeMu.Unlock()
}

// read runs fn under the seqlock read protocol: it retries while a commit
// batch is in flight or completed mid-copy, and falls back to excluding
// writers outright if the commit rate is so high that eight optimistic
// attempts all tore (which stalls commits briefly, never the simulation
// slices themselves).
func (a *Aggregate) read(fn func()) {
	for attempt := 0; attempt < 8; attempt++ {
		s1 := a.seq.Load()
		if s1%2 != 0 {
			continue
		}
		fn()
		if a.seq.Load() == s1 {
			return
		}
	}
	a.writeMu.Lock()
	fn()
	a.writeMu.Unlock()
}

// IncidentTotals aggregates handed-off incidents.
type IncidentTotals struct {
	Incidents      int64 `json:"incidents"`
	Attempts       int64 `json:"attempts"`
	Detections     int64 `json:"detections"`
	Counterattacks int64 `json:"counterattacks"`
	FramesLeaked   int64 `json:"frames_leaked"`
	Eradicated     int64 `json:"eradicated"`
}

// VehicleIncident is one handed-off incident tagged with its vehicle.
type VehicleIncident struct {
	VehicleID int `json:"vehicle_id"`
	forensics.Incident
}

// handOff folds a retiring (or finalized) vehicle's incidents into the
// fleet store. Incident hand-off happens once per vehicle lifecycle, not per
// event, so a mutex is fine here.
func (a *Aggregate) handOff(vehicleID int, incs []forensics.Incident) {
	if len(incs) == 0 {
		return
	}
	a.incMu.Lock()
	defer a.incMu.Unlock()
	for _, inc := range incs {
		fold := func(t *IncidentTotals) {
			t.Incidents++
			t.Attempts += int64(inc.Attempts)
			t.Detections += int64(inc.Detections)
			t.Counterattacks += int64(inc.Counterattacks)
			t.FramesLeaked += int64(inc.FramesLeaked)
			if inc.Eradicated {
				t.Eradicated++
			}
		}
		fold(&a.incTotals)
		byID, ok := a.incByID[inc.IDHex]
		if !ok {
			byID = &IncidentTotals{}
			a.incByID[inc.IDHex] = byID
		}
		fold(byID)
		a.recent = append(a.recent, VehicleIncident{VehicleID: vehicleID, Incident: inc})
	}
	if n := len(a.recent) - maxRecentIncidents; n > 0 {
		a.recent = append(a.recent[:0], a.recent[n:]...)
	}
}

// MetricsView is one consistent point-in-time copy of the fleet aggregate
// (the /fleet/metrics payload's data half).
type MetricsView struct {
	// Counters is the aggregated registry: per-series sums across every
	// vehicle that has committed.
	Counters telemetry.CounterSnapshot `json:"counters"`
	// SimBits is the total simulated bus time across the fleet, in bits.
	SimBits int64 `json:"sim_bits"`
	// LogicalUpdates counts the hub events the committed batches represent;
	// CommitCalls counts the batches. Their ratio is the net-commit
	// amortization (events folded per shared-state write).
	LogicalUpdates int64 `json:"logical_updates"`
	CommitCalls    int64 `json:"commit_calls"`
	// CommittedDelta is the cumulative counter delta folded into Counters.
	CommittedDelta int64 `json:"committed_delta"`
	// CommitSeq is the seqlock generation the view was taken at (even;
	// monotonically increasing two per commit batch).
	CommitSeq int64 `json:"commit_seq"`
}

// MetricsView copies the aggregate under the seqlock read protocol.
func (a *Aggregate) MetricsView() MetricsView {
	var v MetricsView
	a.read(func() {
		v = MetricsView{
			Counters:       a.reg.SnapshotCounters(),
			SimBits:        a.simBits.Load(),
			LogicalUpdates: a.logicalUpdates.Load(),
			CommitCalls:    a.commitCalls.Load(),
			CommittedDelta: a.committedDelta.Load(),
			CommitSeq:      a.seq.Load(),
		}
	})
	return v
}

// WriteMetricsText renders the view in the Prometheus-style exposition the
// /fleet/metrics endpoint serves: the aggregated per-series counters plus
// the fleet's own operational series.
func (v MetricsView) WriteMetricsText(w io.Writer) error {
	keys := make([]string, 0, len(v.Counters))
	for k := range v.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, v.Counters[k]); err != nil {
			return err
		}
	}
	ops := []struct {
		name string
		val  int64
	}{
		{"michican_fleet_sim_bits_total", v.SimBits},
		{"michican_fleet_logical_updates_total", v.LogicalUpdates},
		{"michican_fleet_commit_calls_total", v.CommitCalls},
		{"michican_fleet_committed_delta_total", v.CommittedDelta},
		{"michican_fleet_commit_seq", v.CommitSeq},
	}
	for _, o := range ops {
		if _, err := fmt.Fprintf(w, "%s %d\n", o.name, o.val); err != nil {
			return err
		}
	}
	return nil
}

// IncidentsView is the /fleet/incidents payload: fleet-wide totals, per-ID
// totals, and the bounded ring of most recent handed-off incidents.
type IncidentsView struct {
	Totals IncidentTotals            `json:"totals"`
	ByID   map[string]IncidentTotals `json:"by_id"`
	Recent []VehicleIncident         `json:"recent"`
}

// IncidentsView snapshots the incident store.
func (a *Aggregate) IncidentsView() IncidentsView {
	a.incMu.Lock()
	defer a.incMu.Unlock()
	v := IncidentsView{
		Totals: a.incTotals,
		ByID:   make(map[string]IncidentTotals, len(a.incByID)),
		Recent: make([]VehicleIncident, len(a.recent)),
	}
	for id, t := range a.incByID {
		v.ByID[id] = *t
	}
	copy(v.Recent, a.recent)
	return v
}
