package fleet_test

import (
	"fmt"
	"reflect"
	"testing"

	"michican/internal/experiment"
	"michican/internal/fleet"
	"michican/internal/forensics"
)

const (
	testSeed    = 7
	testHorizon = 400_000
)

// vehicleTrace is one vehicle's complete observable outcome: the recorded
// wire trace plus the finalized incident log.
type vehicleTrace struct {
	bits      string
	incidents []forensics.Incident
}

// runArm builds the given spec indices, joins them in joinOrder (possibly
// after Start — churn), runs the fleet to drain, and returns every vehicle's
// outcome keyed by id. joinAfterStart says how many of the tail of joinOrder
// join only once the fleet is already running.
func runArm(t *testing.T, workers int, joinOrder []int, joinAfterStart int) (map[int]vehicleTrace, *fleet.Fleet) {
	t.Helper()
	f := fleet.New(fleet.Config{
		Workers: workers,
		NoPin:   true, // tests share the process; pinning is exercised in the smoke run
	})
	vehicles := make(map[int]*experiment.FleetVehicle)
	join := func(i int) {
		v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon, true))
		if err != nil {
			t.Fatalf("build vehicle %d: %v", i, err)
		}
		vehicles[i] = v
		if err := f.Add(v); err != nil {
			t.Fatalf("add vehicle %d: %v", i, err)
		}
	}
	pre := joinOrder[:len(joinOrder)-joinAfterStart]
	post := joinOrder[len(joinOrder)-joinAfterStart:]
	for _, i := range pre {
		join(i)
	}
	f.Start()
	for _, i := range post {
		join(i)
	}
	f.Wait()
	f.Stop()

	out := make(map[int]vehicleTrace, len(vehicles))
	for id, v := range vehicles {
		// Finalize is idempotent: the worker already finalized at retirement,
		// this call just hands back the complete incident log.
		out[id] = vehicleTrace{
			bits:      fmt.Sprint(v.Recorder().Bits()),
			incidents: v.Finalize(),
		}
	}
	return out, f
}

// TestDeterminismAcrossWorkerCountsAndChurn is the fleet's core contract:
// the same vehicle spec produces a bit-identical wire trace and incident log
// whether the fleet runs 1 worker or 4, and whether vehicles join up-front
// in order or churn in shuffled, mid-run. The scheduler decides when a
// vehicle's bits are simulated, never what they are.
func TestDeterminismAcrossWorkerCountsAndChurn(t *testing.T) {
	const n = 6
	inOrder := []int{0, 1, 2, 3, 4, 5}
	shuffled := []int{3, 5, 1, 0, 4, 2}

	base, _ := runArm(t, 1, inOrder, 0)
	arms := []struct {
		name           string
		workers        int
		order          []int
		joinAfterStart int
	}{
		{"workers=4", 4, inOrder, 0},
		{"workers=4 churned", 4, shuffled, 3},
		{"workers=1 churned", 1, shuffled, 2},
	}
	for _, arm := range arms {
		got, _ := runArm(t, arm.workers, arm.order, arm.joinAfterStart)
		for id := 0; id < n; id++ {
			b, g := base[id], got[id]
			if b.bits != g.bits {
				t.Errorf("%s: vehicle %d wire trace diverged from the 1-worker baseline", arm.name, id)
			}
			if !reflect.DeepEqual(b.incidents, g.incidents) {
				t.Errorf("%s: vehicle %d incident log diverged: %d vs %d incidents",
					arm.name, id, len(b.incidents), len(g.incidents))
			}
		}
	}
}

// TestAggregateMatchesVehicleSum pins the merge-correctness of the
// thresholded net-commit path: after the fleet drains (every vehicle force-
// committed at retirement), each aggregate counter series must equal the
// exact sum of that series across the per-vehicle registries — no lost and
// no double-counted deltas, whatever the commit interleaving was.
func TestAggregateMatchesVehicleSum(t *testing.T) {
	const n = 5
	f := fleet.New(fleet.Config{
		Workers: 2,
		NoPin:   true,
		// A tiny threshold forces many commit batches, maximizing the chance
		// an interleaving bug double- or under-counts.
		CommitThreshold: 64,
	})
	vehicles := make([]*experiment.FleetVehicle, n)
	for i := range vehicles {
		v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon, false))
		if err != nil {
			t.Fatal(err)
		}
		vehicles[i] = v
		if err := f.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	f.Wait()
	f.Stop()

	want := map[string]int64{}
	for _, v := range vehicles {
		for k, c := range v.Hub().Registry().SnapshotCounters() {
			want[k] += c
		}
	}
	mv := f.Aggregate().MetricsView()
	for k, w := range want {
		if got := mv.Counters[k]; got != w {
			t.Errorf("aggregate %s = %d, want %d (sum over vehicles)", k, got, w)
		}
	}
	for k := range mv.Counters {
		if _, ok := want[k]; !ok {
			t.Errorf("aggregate has series %s no vehicle produced", k)
		}
	}
	if mv.CommitCalls == 0 || mv.LogicalUpdates == 0 {
		t.Fatalf("commit accounting empty: calls=%d updates=%d", mv.CommitCalls, mv.LogicalUpdates)
	}
	if mv.CommitCalls >= mv.LogicalUpdates {
		t.Errorf("net-commit economy inverted: %d commit calls for %d logical updates",
			mv.CommitCalls, mv.LogicalUpdates)
	}
	if mv.SimBits != n*testHorizon {
		t.Errorf("aggregate sim bits = %d, want %d", mv.SimBits, n*testHorizon)
	}
}

// TestIncidentHandOff checks retired vehicles' incidents land in the
// aggregate's totals and per-vehicle index exactly once.
func TestIncidentHandOff(t *testing.T) {
	f := fleet.New(fleet.Config{Workers: 2, NoPin: true})
	var wantTotal int
	vehicles := make([]*experiment.FleetVehicle, 4)
	for i := range vehicles {
		v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon, false))
		if err != nil {
			t.Fatal(err)
		}
		vehicles[i] = v
		if err := f.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	f.Wait()
	f.Stop()
	iv := f.Aggregate().IncidentsView()
	for _, v := range vehicles {
		wantTotal += len(v.Finalize())
	}
	if int(iv.Totals.Incidents) != wantTotal {
		t.Fatalf("aggregate incidents = %d, want %d", iv.Totals.Incidents, wantTotal)
	}
	if len(iv.Recent) != wantTotal && wantTotal <= 256 {
		t.Fatalf("recent ring holds %d incidents, want %d", len(iv.Recent), wantTotal)
	}
}

// TestRemoveRetiresWithoutHorizon covers explicit removal: a horizon-less
// vehicle runs until removed, and removal before Start retires it cleanly.
func TestRemoveRetiresWithoutHorizon(t *testing.T) {
	f := fleet.New(fleet.Config{Workers: 1, NoPin: true})
	v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(v); err != nil {
		t.Fatal(err)
	}
	if !f.Remove(v.ID()) {
		t.Fatal("Remove(known id) = false")
	}
	if f.Remove(99) {
		t.Fatal("Remove(unknown id) = true")
	}
	f.Start()
	f.Wait()
	f.Stop()
	h := f.Health()
	if h.Completed != 1 || h.Removed != 1 || h.ActiveVehicles != 0 {
		t.Fatalf("health after removal: %+v", h)
	}
	if f.Remove(v.ID()) {
		t.Fatal("Remove(retired id) = true")
	}
}

// TestChurnViaOnRetire drives the churn-driver shape the benchmark uses:
// every retirement backfills a joiner until the budget runs out, and the
// duplicate-id guard rejects re-joining a retired identity.
func TestChurnViaOnRetire(t *testing.T) {
	const initial, total = 3, 8
	var f *fleet.Fleet
	next := make(chan int, total)
	for i := initial; i < total; i++ {
		next <- i
	}
	close(next)
	joinErr := make(chan error, total)
	f = fleet.New(fleet.Config{
		Workers: 2,
		NoPin:   true,
		OnRetire: func(fleet.VehicleResult) {
			i, ok := <-next
			if !ok {
				return
			}
			v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon/4, false))
			if err == nil {
				err = f.Add(v)
			}
			if err != nil {
				joinErr <- err
			}
		},
	})
	for i := 0; i < initial; i++ {
		v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon/4, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	for f.Health().Completed < total {
		f.Wait() // returns at active==0; churn may have already backfilled
	}
	f.Stop()
	select {
	case err := <-joinErr:
		t.Fatalf("churn join failed: %v", err)
	default:
	}
	h := f.Health()
	if h.Joined != total || h.Completed != total {
		t.Fatalf("joined=%d completed=%d, want %d each", h.Joined, h.Completed, total)
	}
	// A retired identity must not be re-joinable.
	v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, 0, testHorizon/4, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(v); err == nil {
		t.Fatal("re-adding a retired id succeeded")
	}
}

// TestVehicleViewsDuringRun exercises the observability read paths while
// workers are advancing: the census, per-vehicle snapshots and the metrics
// view must all return consistent data without perturbing the run.
func TestVehicleViewsDuringRun(t *testing.T) {
	f := fleet.New(fleet.Config{Workers: 2, NoPin: true})
	const n = 4
	for i := 0; i < n; i++ {
		v, err := experiment.NewFleetVehicle(experiment.FleetSpecAt(testSeed, i, testHorizon, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	for f.Health().Completed < n {
		for _, vi := range f.Vehicles() {
			snap, ok := f.VehicleSnapshot(vi.ID)
			if !ok {
				t.Fatalf("snapshot for listed vehicle %d missing", vi.ID)
			}
			if snap.NowBits < 0 || snap.NowBits > testHorizon {
				t.Fatalf("vehicle %d now=%d outside [0,%d]", vi.ID, snap.NowBits, int64(testHorizon))
			}
		}
		mv := f.Aggregate().MetricsView()
		if mv.CommittedDelta < 0 {
			t.Fatal("negative committed delta")
		}
	}
	f.Wait()
	f.Stop()
	if _, ok := f.VehicleSnapshot(0); !ok {
		t.Fatal("retired vehicle snapshot missing")
	}
	if _, ok := f.VehicleSnapshot(123); ok {
		t.Fatal("snapshot for unknown id succeeded")
	}
}
