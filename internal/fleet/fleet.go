// Package fleet is the control plane for running many independent vehicle
// simulations behind one process: a sharded, shared-nothing worker pool plus
// a thresholded net-commit aggregation layer (ROADMAP item 1).
//
// The sharding model is deliberately boring: a vehicle is a complete,
// self-contained simulation (its own bus, nodes, RNG, telemetry hub and
// forensics engine — nothing shared), and a worker owns a disjoint set of
// vehicles that it advances round-robin in SliceBits quanta. Workers are
// pinned one goroutine per OS thread (LockOSThread), sized to NumCPU by
// default. Because no two workers ever touch the same vehicle and a vehicle
// shares no mutable state with any other, per-vehicle results are
// bit-identical for any worker count and any join/leave interleaving — the
// scheduler only decides *when* a vehicle's bits get simulated, never *what*
// they are.
//
// The aggregation layer is where the fleet earns its throughput: per-vehicle
// telemetry counters accumulate through the vehicle's own atomic registry
// (the hot path the simulation already pays), and a per-vehicle NetCommitter
// folds the *net delta* into the fleet-wide Aggregate only when a commit
// trigger fires — at least CommitThreshold hub events pending, or
// CommitIntervalBits of simulated time elapsed, whichever comes first, plus
// a final forced commit when the vehicle retires. Millions of per-event
// updates per second therefore reach the shared snapshot as a handful of
// commit batches per second, and the cost of aggregation is independent of
// the event rate.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"michican/internal/forensics"
	"michican/internal/telemetry"
)

// Vehicle is one shardable simulation. The fleet calls Advance, Now,
// HorizonBits and Finalize only from the single worker that owns the
// vehicle, so implementations need no internal locking for them; Hub and
// LiveIncidents are also called from observability readers concurrently
// with Advance and must be safe for that (the telemetry registry's atomic
// instruments and the forensics engine's internal mutex already are).
type Vehicle interface {
	// ID is the vehicle's fleet-unique identity.
	ID() int
	// Advance runs the simulation forward by the given number of bit times.
	Advance(bits int64)
	// Now is the vehicle's current simulated bit time.
	Now() int64
	// HorizonBits is the simulated time at which the vehicle retires on its
	// own; 0 means it runs until removed.
	HorizonBits() int64
	// Hub is the vehicle-local telemetry hub (its registry is the
	// NetCommitter source).
	Hub() *telemetry.Hub
	// LiveIncidents snapshots the vehicle's forensics engine mid-run.
	LiveIncidents() []forensics.Incident
	// Finalize ends the vehicle's life: flush the forensics engine and
	// return the complete incident log for hand-off.
	Finalize() []forensics.Incident
	// Describe is a one-line scenario summary for the snapshot endpoints.
	Describe() string
}

// Config sizes the fleet.
type Config struct {
	// Workers is the shared-nothing worker count; 0 means runtime.NumCPU()
	// (one per core).
	Workers int
	// NoPin disables per-worker LockOSThread. Pinning is on by default: a
	// worker that owns its OS thread keeps its vehicles' working sets warm
	// instead of migrating across threads mid-slice.
	NoPin bool
	// SliceBits is the scheduling quantum: how much simulated time a worker
	// advances one vehicle before rotating to the next. Default 65536.
	SliceBits int64
	// CommitThreshold is the net-commit trigger in pending hub events (the
	// O(1) logical-update proxy). Default 4096.
	CommitThreshold int64
	// CommitIntervalBits bounds the staleness of the aggregate: a vehicle
	// commits at least every this many simulated bits even when quiet.
	// Default 1_048_576.
	CommitIntervalBits int64
	// OnRetire, when set, is invoked (on the worker goroutine, after the
	// final commit and incident hand-off) each time a vehicle retires. It
	// must not block; calling Add from it is allowed — that is how churn
	// drivers backfill departures.
	OnRetire func(VehicleResult)
	// OnFinalize, when set, receives each retiring vehicle and its complete
	// incident log on the worker goroutine, immediately after Finalize and
	// before the aggregate hand-off. This is the durable store's hook: the
	// vehicle's hub and store sink are still alive here, so the retirement
	// persists (incidents appended, final checkpoint written) before the
	// fleet releases the vehicle.
	OnFinalize func(v Vehicle, incs []forensics.Incident)
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.SliceBits <= 0 {
		c.SliceBits = 65536
	}
	if c.CommitThreshold <= 0 {
		c.CommitThreshold = 4096
	}
	if c.CommitIntervalBits <= 0 {
		c.CommitIntervalBits = 1 << 20
	}
	return c
}

// VehicleResult summarizes one retired vehicle.
type VehicleResult struct {
	ID        int   `json:"id"`
	SimBits   int64 `json:"sim_bits"`
	Incidents int   `json:"incidents"`
	// Removed reports an explicit Remove (vs reaching the horizon).
	Removed bool `json:"removed"`
}

// shard is the fleet's bookkeeping around one vehicle.
type shard struct {
	v       Vehicle
	nc      *telemetry.NetCommitter
	worker  int
	desc    string
	horizon int64

	// Worker-owned commit state.
	lastEmits      int64
	lastCommitBits int64

	// Cross-thread views.
	nowBits atomic.Int64
	removed atomic.Bool
	done    atomic.Bool
}

// retiredRecord is the compact memory a long-churning fleet keeps per
// departed vehicle (the vehicle itself, its hub and engine are released).
type retiredRecord struct {
	desc      string
	simBits   int64
	incidents int
	removed   bool
}

// Fleet is the running control plane.
type Fleet struct {
	cfg Config
	agg *Aggregate

	mu        sync.Mutex
	cond      *sync.Cond
	workers   []*worker
	byID      map[int]*shard
	retired   map[int]retiredRecord
	nextW     int
	active    int
	started   bool
	stopFlag  atomic.Bool
	wg        sync.WaitGroup
	joined    atomic.Int64
	completed atomic.Int64
	removedN  atomic.Int64
}

// New creates a stopped fleet.
func New(cfg Config) *Fleet {
	f := &Fleet{
		cfg:     cfg.Defaults(),
		agg:     newAggregate(),
		byID:    make(map[int]*shard),
		retired: make(map[int]retiredRecord),
	}
	f.cond = sync.NewCond(&f.mu)
	for i := 0; i < f.cfg.Workers; i++ {
		w := &worker{f: f, id: i}
		w.cond = sync.NewCond(&w.mu)
		f.workers = append(f.workers, w)
	}
	return f
}

// Aggregate returns the fleet-wide snapshot store.
func (f *Fleet) Aggregate() *Aggregate { return f.agg }

// Config returns the effective (defaulted) configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Add joins a vehicle, before or after Start. Assignment is round-robin in
// join order, which keeps shard placement deterministic for a deterministic
// join sequence.
func (f *Fleet) Add(v Vehicle) error {
	s := &shard{
		v:       v,
		nc:      telemetry.NewNetCommitter(v.Hub().Registry(), f.agg.reg),
		desc:    v.Describe(),
		horizon: v.HorizonBits(),
	}
	s.nowBits.Store(v.Now())

	f.mu.Lock()
	if f.stopFlag.Load() {
		f.mu.Unlock()
		return errors.New("fleet: stopped")
	}
	if _, dup := f.byID[v.ID()]; dup {
		f.mu.Unlock()
		return fmt.Errorf("fleet: duplicate vehicle id %d", v.ID())
	}
	if _, dup := f.retired[v.ID()]; dup {
		f.mu.Unlock()
		return fmt.Errorf("fleet: vehicle id %d already retired", v.ID())
	}
	s.worker = f.nextW
	f.nextW = (f.nextW + 1) % len(f.workers)
	f.byID[v.ID()] = s
	f.active++
	f.joined.Add(1)
	w := f.workers[s.worker]
	f.mu.Unlock()

	w.add(s)
	return nil
}

// Remove marks a vehicle for retirement; its worker finalizes it at the
// next slice boundary (final commit, incident hand-off). Returns false for
// unknown or already-retired ids.
func (f *Fleet) Remove(id int) bool {
	f.mu.Lock()
	s, ok := f.byID[id]
	f.mu.Unlock()
	if !ok || s.done.Load() {
		return false
	}
	s.removed.Store(true)
	return true
}

// Start launches the workers.
func (f *Fleet) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	for _, w := range f.workers {
		f.wg.Add(1)
		go w.run()
	}
}

// Wait blocks until every joined vehicle has retired (horizon or Remove),
// or the fleet is stopped. Vehicles added while waiting extend the wait.
func (f *Fleet) Wait() {
	f.mu.Lock()
	for f.active > 0 && !f.stopFlag.Load() {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Stop halts the workers (vehicles still active are left un-finalized) and
// waits for them to exit. Idempotent.
func (f *Fleet) Stop() {
	if f.stopFlag.Swap(true) {
		f.wg.Wait()
		return
	}
	for _, w := range f.workers {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	f.mu.Lock()
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

// onRetired moves a shard to the retired map and wakes waiters.
func (f *Fleet) onRetired(s *shard, res VehicleResult) {
	f.mu.Lock()
	delete(f.byID, s.v.ID())
	f.retired[s.v.ID()] = retiredRecord{
		desc:      s.desc,
		simBits:   res.SimBits,
		incidents: res.Incidents,
		removed:   res.Removed,
	}
	f.active--
	f.completed.Add(1)
	if res.Removed {
		f.removedN.Add(1)
	}
	f.cond.Broadcast()
	cb := f.cfg.OnRetire
	f.mu.Unlock()
	if cb != nil {
		cb(res)
	}
}

// worker owns a disjoint set of shards and advances them round-robin.
type worker struct {
	f    *Fleet
	id   int
	mu   sync.Mutex
	cond *sync.Cond
	// shards is the worker's run queue; next is the round-robin cursor.
	shards []*shard
	next   int
}

// add enqueues a shard and wakes the worker if it was idle.
func (w *worker) add(s *shard) {
	w.mu.Lock()
	w.shards = append(w.shards, s)
	w.cond.Signal()
	w.mu.Unlock()
}

// drop removes a retired shard from the queue.
func (w *worker) drop(s *shard) {
	w.mu.Lock()
	for i, q := range w.shards {
		if q == s {
			w.shards = append(w.shards[:i], w.shards[i+1:]...)
			if w.next > i {
				w.next--
			}
			break
		}
	}
	w.mu.Unlock()
}

// run is the worker loop: pinned to an OS thread, it takes the next shard
// in rotation, advances it one slice, and applies the commit policy. The
// loop carries pprof labels so CPU/heap profiles of a fleet run split by
// worker, and each step adds the vehicle id — "which vehicle is this worker
// burning time on" falls straight out of /debug/pprof/profile.
func (w *worker) run() {
	defer w.f.wg.Done()
	if !w.f.cfg.NoPin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	pprof.Do(context.Background(), pprof.Labels("fleet-worker", strconv.Itoa(w.id)), func(ctx context.Context) {
		for {
			s := w.take()
			if s == nil {
				return
			}
			pprof.Do(ctx, pprof.Labels("vehicle", strconv.Itoa(s.v.ID())), func(context.Context) {
				w.step(s)
			})
		}
	})
}

// take returns the next shard in rotation, blocking while the queue is
// empty; it returns nil once the fleet stops.
func (w *worker) take() *shard {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.f.stopFlag.Load() {
			return nil
		}
		if len(w.shards) > 0 {
			if w.next >= len(w.shards) {
				w.next = 0
			}
			s := w.shards[w.next]
			w.next++
			return s
		}
		w.cond.Wait()
	}
}

// step advances one shard by at most one slice, commits if the policy
// fires, and retires the shard at its horizon or on removal.
func (w *worker) step(s *shard) {
	slice := w.f.cfg.SliceBits
	if s.horizon > 0 {
		if rem := s.horizon - s.v.Now(); rem < slice {
			slice = rem
		}
	}
	if slice > 0 && !s.removed.Load() {
		s.v.Advance(slice)
		s.nowBits.Store(s.v.Now())
	}
	done := s.removed.Load() || (s.horizon > 0 && s.v.Now() >= s.horizon)
	w.commit(s, done)
	if done {
		w.retire(s)
	}
}

// commit applies the thresholded net-commit policy: fold the vehicle's
// pending counter deltas into the aggregate when enough hub events are
// pending, enough simulated time has passed, or the vehicle is retiring.
func (w *worker) commit(s *shard, force bool) {
	cfg := w.f.cfg
	pendingEvents := s.v.Hub().EmitCount() - s.lastEmits
	now := s.v.Now()
	pendingBits := now - s.lastCommitBits
	if !force && pendingEvents < cfg.CommitThreshold && pendingBits < cfg.CommitIntervalBits {
		return
	}
	if pendingEvents == 0 && pendingBits == 0 {
		return
	}
	agg := w.f.agg
	agg.commitBatch(func() {
		delta := s.nc.Commit()
		agg.simBits.Add(pendingBits)
		agg.commitCalls.Add(1)
		agg.logicalUpdates.Add(pendingEvents)
		agg.committedDelta.Add(delta)
	})
	s.lastEmits += pendingEvents
	s.lastCommitBits = now
}

// retire finalizes a shard: flush forensics, hand incidents to the
// aggregate, release the vehicle.
func (w *worker) retire(s *shard) {
	if s.done.Swap(true) {
		return
	}
	incs := s.v.Finalize()
	if cb := w.f.cfg.OnFinalize; cb != nil {
		cb(s.v, incs)
	}
	w.f.agg.handOff(s.v.ID(), incs)
	res := VehicleResult{
		ID:        s.v.ID(),
		SimBits:   s.v.Now(),
		Incidents: len(incs),
		Removed:   s.removed.Load(),
	}
	w.drop(s)
	w.f.onRetired(s, res)
}

// Health is the /fleet/healthz payload.
type Health struct {
	Status             string `json:"status"`
	Workers            int    `json:"workers"`
	Pinned             bool   `json:"pinned"`
	ActiveVehicles     int    `json:"active_vehicles"`
	Joined             int64  `json:"vehicles_joined"`
	Completed          int64  `json:"vehicles_completed"`
	Removed            int64  `json:"vehicles_removed"`
	SliceBits          int64  `json:"slice_bits"`
	CommitThreshold    int64  `json:"commit_threshold"`
	CommitIntervalBits int64  `json:"commit_interval_bits"`
}

// Health snapshots fleet liveness.
func (f *Fleet) Health() Health {
	f.mu.Lock()
	active := f.active
	f.mu.Unlock()
	return Health{
		Status:             "ok",
		Workers:            f.cfg.Workers,
		Pinned:             !f.cfg.NoPin,
		ActiveVehicles:     active,
		Joined:             f.joined.Load(),
		Completed:          f.completed.Load(),
		Removed:            f.removedN.Load(),
		SliceBits:          f.cfg.SliceBits,
		CommitThreshold:    f.cfg.CommitThreshold,
		CommitIntervalBits: f.cfg.CommitIntervalBits,
	}
}

// VehicleInfo is one row of the /fleet/vehicles listing.
type VehicleInfo struct {
	ID          int    `json:"id"`
	Describe    string `json:"describe"`
	Worker      int    `json:"worker,omitempty"`
	NowBits     int64  `json:"now_bits"`
	HorizonBits int64  `json:"horizon_bits"`
	Done        bool   `json:"done"`
	Incidents   int    `json:"incidents,omitempty"`
}

// Vehicles lists active vehicles first (by id), then retired ones.
func (f *Fleet) Vehicles() []VehicleInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]VehicleInfo, 0, len(f.byID)+len(f.retired))
	for id, s := range f.byID {
		out = append(out, VehicleInfo{
			ID:          id,
			Describe:    s.desc,
			Worker:      s.worker,
			NowBits:     s.nowBits.Load(),
			HorizonBits: s.horizon,
		})
	}
	for id, r := range f.retired {
		out = append(out, VehicleInfo{
			ID:          id,
			Describe:    r.desc,
			NowBits:     r.simBits,
			HorizonBits: r.simBits,
			Done:        true,
			Incidents:   r.incidents,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Done != out[j].Done {
			return !out[i].Done
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// VehicleSnapshot is the /fleet/vehicles/{id}/snapshot payload: the
// vehicle's own live registry (counters *and* gauges — gauges are
// meaningful per vehicle, unlike in the cross-vehicle aggregate) plus its
// live incident log.
type VehicleSnapshot struct {
	VehicleInfo
	Counters  telemetry.CounterSnapshot `json:"counters,omitempty"`
	Gauges    telemetry.GaugeSnapshot   `json:"gauges,omitempty"`
	Live      []forensics.Incident      `json:"live_incidents,omitempty"`
	LiveCount int                       `json:"live_incident_count"`
}

// VehicleSnapshot reads one vehicle's live state without touching its
// worker: registry reads are atomic, the forensics engine locks internally,
// and the current bit time comes from the shard's atomic mirror.
func (f *Fleet) VehicleSnapshot(id int) (VehicleSnapshot, bool) {
	f.mu.Lock()
	s, live := f.byID[id]
	r, gone := f.retired[id]
	f.mu.Unlock()
	switch {
	case live:
		incs := s.v.LiveIncidents()
		return VehicleSnapshot{
			VehicleInfo: VehicleInfo{
				ID:          id,
				Describe:    s.desc,
				Worker:      s.worker,
				NowBits:     s.nowBits.Load(),
				HorizonBits: s.horizon,
			},
			Counters:  s.v.Hub().Registry().SnapshotCounters(),
			Gauges:    s.v.Hub().Registry().SnapshotGauges(),
			Live:      incs,
			LiveCount: len(incs),
		}, true
	case gone:
		return VehicleSnapshot{
			VehicleInfo: VehicleInfo{
				ID:          id,
				Describe:    r.desc,
				NowBits:     r.simBits,
				HorizonBits: r.simBits,
				Done:        true,
				Incidents:   r.incidents,
			},
			LiveCount: r.incidents,
		}, true
	default:
		return VehicleSnapshot{}, false
	}
}
