package fleet_test

import (
	"fmt"
	"reflect"
	"testing"

	"michican/internal/controller"
	"michican/internal/experiment"
	"michican/internal/fleet"
)

// These tests pin the fleet-facing contract of the shared compiled-plan
// cache: sharing is a pure memory/compile-time optimization, so every
// vehicle's wire trace and incident log must be bit-identical with the cache
// on and off, including across a mid-run Remove of a vehicle whose
// controllers reference the shared plans.

// runSharedCacheArm builds n recorded vehicles (optionally resolving plans
// through src), runs the fleet to drain, and returns per-vehicle outcomes.
// When removeIdx is non-negative, that vehicle is built horizon-less and
// removed right after Start, so its retirement races the workers — the
// shared-nothing sharding must keep every other vehicle unaffected.
func runSharedCacheArm(t *testing.T, n int, src *controller.PlanSource, removeIdx int) map[int]vehicleTrace {
	t.Helper()
	f := fleet.New(fleet.Config{Workers: 2, NoPin: true})
	vehicles := make(map[int]*experiment.FleetVehicle, n)
	for i := 0; i < n; i++ {
		horizon := int64(testHorizon)
		if i == removeIdx {
			horizon = 0 // runs until removed
		}
		spec := experiment.FleetSpecAt(testSeed, i, horizon, true)
		spec.Plans = src
		v, err := experiment.NewFleetVehicle(spec)
		if err != nil {
			t.Fatalf("build vehicle %d: %v", i, err)
		}
		vehicles[i] = v
		if err := f.Add(v); err != nil {
			t.Fatalf("add vehicle %d: %v", i, err)
		}
	}
	f.Start()
	if removeIdx >= 0 {
		if !f.Remove(vehicles[removeIdx].ID()) {
			t.Fatalf("Remove(vehicle %d) = false", removeIdx)
		}
	}
	f.Wait()
	f.Stop()

	out := make(map[int]vehicleTrace, n)
	for id, v := range vehicles {
		if id == removeIdx {
			continue // its trace length races the removal; survivors are the subject
		}
		out[id] = vehicleTrace{
			bits:      fmt.Sprint(v.Recorder().Bits()),
			incidents: v.Finalize(),
		}
	}
	return out
}

// TestFleetDeterminismSharedPlanCache is the acceptance gate for the shared
// cache: the same vehicle population must produce bit-identical per-vehicle
// traces and incident logs with plans resolved privately and through one
// fleet-shared source — and the source must actually have been exercised.
func TestFleetDeterminismSharedPlanCache(t *testing.T) {
	const n = 5
	private := runSharedCacheArm(t, n, nil, -1)
	src := controller.NewPlanSource()
	shared := runSharedCacheArm(t, n, src, -1)

	for id := 0; id < n; id++ {
		p, s := private[id], shared[id]
		if p.bits != s.bits {
			t.Errorf("vehicle %d wire trace diverged between private and shared plans", id)
		}
		if !reflect.DeepEqual(p.incidents, s.incidents) {
			t.Errorf("vehicle %d incident log diverged: %d vs %d incidents",
				id, len(p.incidents), len(s.incidents))
		}
	}
	st := src.Stats()
	if st.Plans == 0 || st.Misses == 0 {
		t.Fatalf("shared source never built a plan: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("shared source never served a cross-vehicle hit: %+v", st)
	}
}

// TestFleetRemoveWhileSharedPlans removes a vehicle mid-run while its
// controllers still reference the fleet-shared plans. The source is
// content-addressed and immutable, so the removal must not perturb any
// surviving vehicle (their traces match the private-plans arm bit for bit),
// and the cache keeps serving the survivors afterwards.
func TestFleetRemoveWhileSharedPlans(t *testing.T) {
	const n, removeIdx = 4, 1
	private := runSharedCacheArm(t, n, nil, removeIdx)
	src := controller.NewPlanSource()
	shared := runSharedCacheArm(t, n, src, removeIdx)

	for id := 0; id < n; id++ {
		if id == removeIdx {
			continue
		}
		p, s := private[id], shared[id]
		if p.bits != s.bits {
			t.Errorf("survivor %d wire trace diverged after removing a cache-sharing vehicle", id)
		}
		if !reflect.DeepEqual(p.incidents, s.incidents) {
			t.Errorf("survivor %d incident log diverged: %d vs %d incidents",
				id, len(p.incidents), len(s.incidents))
		}
	}
	if st := src.Stats(); st.Hits == 0 || st.Plans == 0 {
		t.Fatalf("shared source never exercised across the removal: %+v", st)
	}
}
