// Package forensics reconstructs attack incidents from the telemetry event
// stream. Where the experiment package computes the paper's tables from
// privileged access to the simulation (the wire recorder, controller stats
// structs), this package subscribes to the telemetry hub like any external
// consumer and folds the raw per-node events — tx attempts, arbitration
// outcomes, FSM detections, counterattack pulls, error episodes, TEC steps,
// bus-off and recovery — into per-campaign Incident records. Tables I and II
// regenerate from incidents alone and match the experiment-computed rows
// bit-for-bit (asserted in the experiment package's parity tests), making
// the event stream a third source of truth alongside the exact and
// fast-forward stepping paths.
//
// The engine is streaming: events arrive in per-node order (batch fast-path
// delivery hands each node its whole span one node at a time), a
// telemetry.Sequencer restores canonical global order behind a bounded
// reorder horizon, and incidents fold incrementally — a long-running
// simulation can expose closed and in-flight incidents over HTTP while the
// run is still advancing.
package forensics

import (
	"fmt"
	"sort"
	"sync"

	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/stats"
	"michican/internal/telemetry"
)

// Episode-grouping constants, mirroring the experiment package's trace-based
// rules so incident boundaries land on the same bits.
const (
	// EpisodeGapBits separates two incidents of the same ID: a destroyed
	// attempt more than half a recovery window after the previous one opens
	// a new incident.
	EpisodeGapBits = controller.RecoverySequences * controller.RecoveryIdleBits / 2
	// EpisodeEdgeMarginBits is the recording-edge margin: a trailing
	// incident with fewer than FullCampaignAttempts attempts ending within
	// one recovery window of the end of the run is still in progress.
	EpisodeEdgeMarginBits = controller.RecoverySequences * controller.RecoveryIdleBits
	// FullCampaignAttempts is the number of destroyed attempts a complete
	// eradication campaign takes (TEC steps of +8 from 0 to the bus-off
	// threshold 256).
	FullCampaignAttempts = 32
)

// TECStep is one transmit-error-counter transition of the incident's
// attacker.
type TECStep struct {
	At    int64 `json:"t"`
	Value int64 `json:"value"`
	Prev  int64 `json:"prev"`
}

// ChainLink is one hop of an incident's cross-node causality chain: the
// attacker's SOF leads to the defender's detection, the detection to the
// counterattack pull, the pull to the attacker's protocol error, the error
// to the TEC step, and the accumulated steps to bus-off and recovery.
type ChainLink struct {
	At   int64  `json:"t"`
	Node string `json:"node"`
	Step string `json:"step"`
}

// Incident is one reconstructed attack campaign: the consecutive destroyed
// transmission attempts of one CAN ID, from the first contested SOF to the
// last bit of the final error episode, plus the recovery that follows.
type Incident struct {
	// ID is the contested CAN ID.
	ID can.ID `json:"-"`
	// IDHex renders the ID for the JSON log.
	IDHex string `json:"id"`
	// Start is the SOF bit of the first destroyed attempt; End is the last
	// busy (dominant) bit of the final error episode — the same boundaries
	// the trace decoder assigns, so Bits() is directly comparable to the
	// experiment package's Episode.Bits.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Attempts counts destroyed wire attempts (a same-SOF duel is one).
	Attempts int `json:"attempts"`
	// Attacker is the node that went bus-off, or failing that the node with
	// the most destroyed attempts. Defender is the node whose detection
	// verdicts fired during the incident ("" if none did).
	Attacker string `json:"attacker,omitempty"`
	Defender string `json:"defender,omitempty"`
	// Detections counts FSM verdicts; FirstDetectAt is the bit time of the
	// first (-1 if none); DetectionBits summarizes the decision-bit
	// positions (1-11) within the CAN ID.
	Detections    int           `json:"detections"`
	FirstDetectAt int64         `json:"first_detect_at"`
	DetectionBits stats.Summary `json:"detection_bits"`
	// Counterattacks counts pull windows; PullBitsTotal sums the dominant
	// bits driven across them (positions 13-19 of each attempt).
	Counterattacks int   `json:"counterattacks"`
	PullBitsTotal  int64 `json:"pull_bits_total"`
	// FramesLeaked counts complete frames of this ID the attacker got
	// through during the incident window.
	FramesLeaked int `json:"frames_leaked"`
	// TEC is the attacker's transmit-error-counter trajectory across the
	// incident.
	TEC []TECStep `json:"tec,omitempty"`
	// BusOffAt is the bit time the attacker's TEC crossed the bus-off
	// threshold (-1 if the incident never eradicated); RecoveredAt is the
	// bit time the attacker completed the 128×11-bit recovery (-1 if not
	// observed).
	BusOffAt    int64 `json:"bus_off_at"`
	RecoveredAt int64 `json:"recovered_at"`
	Eradicated  bool  `json:"eradicated"`
	// Causality is the reconstructed cross-node chain for the first attempt
	// plus the bus-off and recovery hops.
	Causality []ChainLink `json:"causality,omitempty"`
}

// Bits returns the incident's span in bit times, inclusive on both ends.
func (i *Incident) Bits() int64 { return i.End - i.Start + 1 }

// IDSummary aggregates the incidents of one CAN ID.
type IDSummary struct {
	ID        can.ID `json:"-"`
	IDHex     string `json:"id"`
	Incidents int    `json:"incidents"`
	Attempts  int    `json:"attempts"`
	// EpisodeBits summarizes incident lengths (the Table II distribution);
	// DetectionBits summarizes FSM decision-bit positions across all
	// incidents of the ID.
	EpisodeBits   stats.Summary `json:"episode_bits"`
	DetectionBits stats.Summary `json:"detection_bits"`
}

// detectRec is one FSM verdict observed inside an attempt.
type detectRec struct {
	node telemetry.NodeID
	at   int64
	bit  int64
}

// pullRec is one counterattack window observed inside an attempt.
type pullRec struct {
	node       telemetry.NodeID
	startAt    int64
	endAt      int64
	bitsDriven int64
}

// errRec is one EvError observation inside an attempt. The flag the node put
// on the wire depends on its fault-confinement state AFTER the counter bump
// that accompanies the error (beginErrorSignal runs after tec/rec update), so
// the record resolves when the same-instant EvTEC/EvREC arrives — or at the
// close of the attempt for errors that bump nothing (the ISO 11898-1
// passive-transmitter ACK-error exception).
type errRec struct {
	node telemetry.NodeID
	at   int64
	kind int64
	// tx reports the node's role: true when its own transmission died.
	tx       bool
	resolved bool
	// active reports whether the node drove a 6-dominant active error flag
	// (visible on the wire) rather than a recessive passive one.
	active bool
}

// attempt is one wire-level transmission attempt under reconstruction: every
// node that asserted the same SOF bit joins it; arbitration losers drop out;
// the survivor either completes (EvTxSuccess) or is destroyed (EvError
// followed by the wire-wide EvErrorEnd).
type attempt struct {
	start int64
	// tx maps each surviving transmitter to the CAN ID it is sending
	// (EvTxStart's argument). The wire's arbitration field carries the
	// survivors' common ID — recovered this way rather than from EvArbWon
	// because a counterattack on an arbitration-region stuff bit (a low ID
	// with a long dominant run, e.g. 0x050) destroys the attempt before the
	// controller's arbEnd while the wire still shows all 11 ID bits.
	tx map[telemetry.NodeID]int64
	// deadTx marks transmitters that aborted their own transmission (an
	// EvError in the transmitter role). A transmitter that is neither dead
	// nor an arbitration loser is still driving the frame: as long as one
	// remains live the wire episode has not resolved, so the attempt must
	// stay open past other nodes' error delimiters.
	deadTx map[telemetry.NodeID]bool
	// stray marks an attempt whose SOF the wire decoder skips: it began
	// within 3 bits of the previous frame's last EOF bit, so the decoder's
	// 11-recessive SOF rule is unmet and the bits read as stray noise. This
	// happens when a bus-off node counts an unacknowledged frame's recessive
	// tail as its post-recovery idle window and fires immediately.
	stray bool
	errs  []errRec
	// destroyed flips on the first EvError inside the attempt.
	destroyed  bool
	detects    []detectRec
	pulls      []pullRec
	tec        map[telemetry.NodeID][]TECStep
	busOff     bool
	busOffNode telemetry.NodeID
	busOffAt   int64
}

// incidentState is an Incident under construction plus the working state
// needed to resolve attribution at snapshot time.
type incidentState struct {
	inc         Incident
	destroyedBy map[telemetry.NodeID]int
	tecByNode   map[telemetry.NodeID][]TECStep
	busOffNode  telemetry.NodeID
	hasDefender bool
	detAcc      stats.Accumulator
}

// successRec is one completed frame, kept per ID so FramesLeaked can be
// counted against the attributed attacker when an incident resolves.
type successRec struct {
	node telemetry.NodeID
	at   int64
}

// Engine folds the telemetry event stream into incidents. Create with
// NewEngine (which subscribes to the hub) or with New (feed events
// manually); all methods are safe for concurrent use with ongoing emission.
type Engine struct {
	mu     sync.Mutex
	hub    *telemetry.Hub
	cancel func()
	seq    telemetry.Sequencer
	names  map[telemetry.NodeID]string

	cur         *attempt
	open        map[int64]*incidentState
	closed      []*incidentState
	recovery    map[telemetry.NodeID]*incidentState
	successes   map[int64][]successRec
	txSuccess   map[telemetry.NodeID]int
	firstBusOff map[telemetry.NodeID]int64
	idDet       map[int64]*stats.Accumulator

	// tec/rec mirror each node's error counters from EvTEC/EvREC so the
	// engine can derive fault-confinement state (which decides whether an
	// error flag was active and wire-visible, or passive and silent).
	tec map[telemetry.NodeID]int64
	rec map[telemetry.NodeID]int64
	// wireFrameEnd is the last bit of the most recent episode the wire
	// decoder reads as a complete frame: an acknowledged transmission's
	// final EOF bit, or the projected EOF end of an unacknowledged frame
	// whose transmitter signalled only a passive (recessive, invisible)
	// error flag.
	wireFrameEnd int64

	firstDetect int64
	eventsSeen  int64
	dropped     int
	stray       int
	finalized   bool
	endAt       int64

	// onIncident, when set, is called once per incident at the moment it
	// closes: mid-run when a same-ID gap supersedes it, and at Finalize for
	// incidents still open at the recording edge. See SetOnIncident.
	onIncident IncidentFunc
}

// IncidentFunc observes incident closures. atEnd is true for incidents that
// were still open when Finalize flushed the stream; recordingEnd is the
// recording's final bit time for those (and -1 for mid-run closures), so a
// consumer can apply the same recording-edge rule as Complete.
type IncidentFunc func(inc Incident, atEnd bool, recordingEnd int64)

// New creates a detached engine that resolves node names through the hub's
// registry but does not subscribe; feed it with Feed and Finalize.
func New(h *telemetry.Hub) *Engine {
	e := &Engine{
		hub:          h,
		names:        make(map[telemetry.NodeID]string),
		open:         make(map[int64]*incidentState),
		recovery:     make(map[telemetry.NodeID]*incidentState),
		successes:    make(map[int64][]successRec),
		txSuccess:    make(map[telemetry.NodeID]int),
		firstBusOff:  make(map[telemetry.NodeID]int64),
		idDet:        make(map[int64]*stats.Accumulator),
		tec:          make(map[telemetry.NodeID]int64),
		rec:          make(map[telemetry.NodeID]int64),
		wireFrameEnd: -1 << 40,
		firstDetect:  -1,
		endAt:        -1,
	}
	e.seq.Emit = e.fold
	return e
}

// NewEngine creates an engine subscribed to the hub: every event emitted
// from now on streams through the sequencer into the incident fold, with no
// retained-log copies. Call Finalize (and optionally Close) when the run
// completes.
func NewEngine(h *telemetry.Hub) *Engine {
	e := New(h)
	e.cancel = h.Subscribe(e.Feed)
	return e
}

// SetOnIncident registers a closure observer, called in canonical stream
// order with a resolved snapshot of each incident as it closes. The callback
// runs with the engine lock held — it must not call back into the engine —
// but it may emit telemetry (Feed ignores EvAlert without taking the lock,
// so a watch rule can publish alerts from inside the callback). Call before
// the run starts; closures that happened earlier are not replayed.
func (e *Engine) SetOnIncident(fn IncidentFunc) {
	e.mu.Lock()
	e.onIncident = fn
	e.mu.Unlock()
}

// Feed accepts one event. Exposed for consumers that replay a recorded
// stream (candump) instead of subscribing live.
func (e *Engine) Feed(ev telemetry.Event) {
	if ev.Kind == telemetry.EvAlert {
		// Alerts describe the watch engine observing this very stream, not
		// the simulated network; folding them would be circular (and the
		// watch engine publishes them from inside SetOnIncident callbacks,
		// which hold e.mu).
		return
	}
	e.mu.Lock()
	e.eventsSeen++
	e.seq.Add(ev)
	e.mu.Unlock()
}

// Close cancels the hub subscription (idempotent; no-op for detached
// engines).
func (e *Engine) Close() {
	if e.cancel != nil {
		e.cancel()
		e.cancel = nil
	}
}

// Finalize flushes the reorder window and records the end of the recording.
// In-flight state (an unresolved attempt, open incidents) is preserved and
// visible via InFlight; Complete applies the recording-edge rule against
// the recorded end.
func (e *Engine) Finalize(recordingEnd int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq.Flush()
	alreadyFinal := e.finalized
	e.finalized = true
	e.endAt = recordingEnd
	if e.onIncident != nil && !alreadyFinal {
		// Closure callbacks for incidents still open at the recording edge,
		// in the same canonical (Start, ID) order Incidents reports them.
		states := make([]*incidentState, 0, len(e.open))
		for _, st := range e.open {
			states = append(states, st)
		}
		sort.Slice(states, func(i, j int) bool {
			if states[i].inc.Start != states[j].inc.Start {
				return states[i].inc.Start < states[j].inc.Start
			}
			return states[i].inc.ID < states[j].inc.ID
		})
		for _, st := range states {
			e.onIncident(e.resolve(st), true, recordingEnd)
		}
	}
}

// nodeName resolves a node ID, caching hub lookups. Called with e.mu held;
// the hub lock is independent, so this cannot deadlock with emitters.
func (e *Engine) nodeName(id telemetry.NodeID) string {
	if name, ok := e.names[id]; ok && name != "" {
		return name
	}
	name := e.hub.NodeName(id)
	if name == "" {
		name = fmt.Sprintf("node%d", id)
	}
	e.names[id] = name
	return name
}

// nodeActive reports whether the node is currently error-active per the
// fault-confinement rules applied to the tracked counters.
func (e *Engine) nodeActive(n telemetry.NodeID) bool {
	return e.tec[n] < controller.BusOffThreshold &&
		e.tec[n] <= controller.PassiveThreshold &&
		e.rec[n] <= controller.PassiveThreshold
}

// resolveErrs finalizes the still-pending error records of the node at the
// given instant (or every pending record when node < 0, at attempt close)
// against the current counter state, and applies the unacknowledged-frame
// rule: an ACK-erroring transmitter that signals passively leaves a complete
// frame on the wire, whose EOF tail (ACK delimiter + 7 EOF bits) ends 8 bits
// after the ACK slot.
func (e *Engine) resolveErrs(c *attempt, node telemetry.NodeID, at int64) {
	for i := range c.errs {
		er := &c.errs[i]
		if er.resolved || (node >= 0 && (er.node != node || er.at != at)) {
			continue
		}
		er.resolved = true
		er.active = e.nodeActive(er.node)
		if er.tx && er.kind == int64(controller.AckError) && !er.active {
			if end := er.at + errTailBits; end > e.wireFrameEnd {
				e.wireFrameEnd = end
			}
		}
	}
}

// errTailBits is the wire distance from an ACK-slot error to the frame's
// final EOF bit: the ACK delimiter plus the 7 EOF bits. When nobody destroys
// the frame (all error flags passive), the wire decoder reads it as complete
// and its episode ends there.
const errTailBits = 1 + 7

// wireIDLen returns the number of wire bits from SOF through the last of the
// 11 ID bits, including the stuff bits CAN inserts inside that region — the
// prefix the trace decoder must read uncorrupted to attribute a destroyed
// attempt (its IDComplete flag).
func wireIDLen(id int64) int64 {
	n := int64(1) // SOF, dominant
	prev, run := 0, 1
	for i := 10; i >= 0; i-- {
		b := int((id >> uint(i)) & 1)
		if b == prev {
			run++
		} else {
			prev, run = b, 1
		}
		n++
		if run == 5 && i > 0 {
			// A stuff bit of the opposite level follows immediately; it only
			// counts while ID bits remain (a stuff bit after the 11th ID bit
			// lies outside the region the decoder needs).
			prev, run = 1-prev, 1
			n++
		}
	}
	return n
}

// closeWireAttempt applies the wire decoder's visibility rules to a finished
// destroyed attempt and folds it into its incident when the decoder would
// count it. errorEnd is the delimiter-completion instant reported by the
// first witness.
func (e *Engine) closeWireAttempt(c *attempt, errorEnd int64) {
	e.resolveErrs(c, -1, 0)
	if c.stray {
		// The wire decoder never saw this attempt's SOF (no preceding idle
		// window); its bits read as stray noise, not an episode.
		e.stray++
		return
	}
	anyActive := false
	ackReached := false
	for _, er := range c.errs {
		if er.active {
			anyActive = true
		}
		if er.tx && er.kind == int64(controller.AckError) {
			ackReached = true
		}
	}
	// The wire's arbitration field carries the surviving transmitters'
	// common intended ID, readable by the decoder only if no corrupting
	// dominant (a counterattack pull or an active error flag, which starts
	// the bit after its trigger) lands inside the stuffed SOF+ID region.
	var id int64
	idKnown := false
	for _, fid := range c.tx {
		if !idKnown {
			id, idKnown = fid, true
		} else if fid != id {
			idKnown = false
			break
		}
	}
	if !anyActive && ackReached {
		// No active flag destroyed the frame and some transmitter reached
		// the ACK slot, so every bit from SOF through CRC made it onto the
		// wire: the decoder reads a complete (if unacknowledged) frame, not
		// a destroyed attempt. Transmitters that died along the way with
		// only passive flags may still have hit bus-off here — attach that
		// outcome to the ID's open incident even though the attempt itself
		// never counts.
		if c.busOff && idKnown {
			if st := e.open[id]; st != nil {
				for node, steps := range c.tec {
					st.tecByNode[node] = append(st.tecByNode[node], steps...)
				}
				e.attachBusOff(st, c)
			}
		}
		return
	}
	// The episode's last busy bit: active flags keep the wire dominant until
	// 8 bits (the delimiter) before the shared completion instant; when every
	// flag is passive the wire goes quiet 6 bits earlier — the recessive
	// passive flag precedes the delimiter invisibly. Either way a
	// counterattack pull can outlast the flags: its final dominant bit
	// extends the episode when the erring node signalled nothing at all
	// (it crossed straight into bus-off) or only invisibly.
	end := errorEnd - controller.ErrorDelimiterBits
	if !anyActive {
		end -= controller.PassiveFlagBits
	}
	for _, p := range c.pulls {
		if p.endAt > end {
			end = p.endAt
		}
	}
	if idKnown {
		idRegionEnd := c.start + wireIDLen(id) - 1
		for _, p := range c.pulls {
			if p.startAt <= idRegionEnd {
				idKnown = false
			}
		}
		for _, er := range c.errs {
			if er.active && er.at+1 <= idRegionEnd {
				idKnown = false
			}
		}
	}
	if !idKnown {
		// The decoder cannot attribute the attempt either (IDComplete false
		// or a corrupted ID value).
		e.dropped++
		return
	}
	e.closeDestroyed(c, id, end)
}

// fold advances the reconstruction by one event, in canonical global order.
// Called with e.mu held (from the Sequencer inside Feed/Finalize).
func (e *Engine) fold(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.EvTxStart:
		if c := e.cur; c != nil && c.start != ev.Time {
			// The previous attempt never resolved on the wire before a new
			// SOF: an unacknowledged frame whose passive error signalling is
			// still draining, or a transmitter outside the hub's wiring.
			// Resolve its pending errors (the unACKed-frame rule may move
			// wireFrameEnd) and drop it.
			e.resolveErrs(c, -1, 0)
			e.dropped++
			e.cur = nil
		}
		if e.cur == nil {
			// deadTx and tec stay nil until an error actually happens: on a
			// healthy bus every frame opens an attempt, and this allocation
			// is the live engine's per-frame cost.
			e.cur = &attempt{
				start: ev.Time,
				tx:    make(map[telemetry.NodeID]int64, 2),
				// The trace decoder credits a decoded frame's recessive tail
				// (ACK delimiter + EOF) as 8 idle bits and demands 11 before
				// a SOF: a SOF within 3 bits of a frame's end is skipped as
				// stray noise and never becomes an episode.
				stray: ev.Time <= e.wireFrameEnd+3,
			}
		}
		e.cur.tx[ev.Node] = ev.A

	case telemetry.EvArbLost:
		if c := e.cur; c != nil {
			delete(c.tx, ev.Node)
		}

	case telemetry.EvDetect:
		if e.firstDetect < 0 {
			e.firstDetect = ev.Time
		}
		if c := e.cur; c != nil {
			c.detects = append(c.detects, detectRec{node: ev.Node, at: ev.Time, bit: ev.A})
		}

	case telemetry.EvPullStart:
		if c := e.cur; c != nil {
			c.pulls = append(c.pulls, pullRec{node: ev.Node, startAt: ev.Time, endAt: -1})
		}

	case telemetry.EvPullEnd:
		if c := e.cur; c != nil {
			for i := len(c.pulls) - 1; i >= 0; i-- {
				if c.pulls[i].endAt < 0 {
					c.pulls[i].endAt = ev.Time
					c.pulls[i].bitsDriven = ev.A
					break
				}
			}
		}

	case telemetry.EvError:
		if c := e.cur; c != nil {
			c.destroyed = true
			rec := errRec{node: ev.Node, at: ev.Time, kind: ev.A, tx: ev.B == 1}
			if rec.tx {
				if c.deadTx == nil {
					c.deadTx = make(map[telemetry.NodeID]bool, 2)
				}
				c.deadTx[ev.Node] = true
			}
			// The ISO passive-ACK exception bumps no counter, so no
			// same-instant EvTEC will arrive to resolve this record;
			// the node's state is already final.
			if rec.tx && rec.kind == int64(controller.AckError) && !e.nodeActive(ev.Node) {
				rec.resolved = true
				if end := ev.Time + errTailBits; end > e.wireFrameEnd {
					e.wireFrameEnd = end
				}
			}
			c.errs = append(c.errs, rec)
		}

	case telemetry.EvErrorEnd:
		// All in-sync nodes complete the shared error delimiter on the same
		// wire bit; the first such event closes the attempt and the rest
		// find no attempt open. The bus-off node never reports its own
		// final delimiter, so relying on any witness is what makes the
		// episode end wire-accurate. A delimiter completing while another
		// transmitter is still live does NOT close the attempt: an
		// error-passive node's invisible flag leaves the surviving
		// transmitter driving the frame (a late-campaign same-ID duel),
		// and the wire resolves only at that survivor's own completion.
		if c := e.cur; c != nil && c.destroyed {
			live := false
			for node := range c.tx {
				if !c.deadTx[node] {
					live = true
					break
				}
			}
			if !live {
				e.closeWireAttempt(c, ev.Time)
				e.cur = nil
			}
		}

	case telemetry.EvTxSuccess:
		e.txSuccess[ev.Node]++
		e.successes[ev.A] = append(e.successes[ev.A], successRec{node: ev.Node, at: ev.Time})
		if ev.Time > e.wireFrameEnd {
			e.wireFrameEnd = ev.Time
		}
		if c := e.cur; c != nil {
			if _, ok := c.tx[ev.Node]; ok {
				e.cur = nil
			}
		}

	case telemetry.EvTEC:
		e.tec[ev.Node] = ev.A
		if c := e.cur; c != nil {
			e.resolveErrs(c, ev.Node, ev.Time)
			if _, ok := c.tx[ev.Node]; ok {
				if c.tec == nil {
					c.tec = make(map[telemetry.NodeID][]TECStep, 1)
				}
				c.tec[ev.Node] = append(c.tec[ev.Node], TECStep{At: ev.Time, Value: ev.A, Prev: ev.B})
			}
		}

	case telemetry.EvREC:
		e.rec[ev.Node] = ev.A
		if c := e.cur; c != nil {
			e.resolveErrs(c, ev.Node, ev.Time)
		}

	case telemetry.EvBusOff:
		if _, ok := e.firstBusOff[ev.Node]; !ok {
			e.firstBusOff[ev.Node] = ev.Time
		}
		if c := e.cur; c != nil {
			if _, ok := c.tx[ev.Node]; ok {
				c.busOff = true
				c.busOffNode = ev.Node
				c.busOffAt = ev.Time
			}
		}

	case telemetry.EvRecover:
		if st := e.recovery[ev.Node]; st != nil {
			st.inc.RecoveredAt = ev.Time
			st.inc.Causality = append(st.inc.Causality,
				ChainLink{At: ev.Time, Node: e.nodeName(ev.Node), Step: "recover"})
			delete(e.recovery, ev.Node)
		}
	}
}

// closeDestroyed folds a wire-visible destroyed attempt into its ID's
// incident. Called with e.mu held.
func (e *Engine) closeDestroyed(c *attempt, id int64, end int64) {
	st := e.open[id]
	if st != nil && c.start-st.inc.End > EpisodeGapBits {
		e.closed = append(e.closed, st)
		if e.onIncident != nil {
			e.onIncident(e.resolve(st), false, -1)
		}
		st = nil
	}
	first := false
	if st == nil {
		first = true
		st = &incidentState{
			inc: Incident{
				ID:            can.ID(id),
				IDHex:         fmt.Sprintf("0x%03X", id),
				Start:         c.start,
				FirstDetectAt: -1,
				BusOffAt:      -1,
				RecoveredAt:   -1,
			},
			destroyedBy: make(map[telemetry.NodeID]int),
			tecByNode:   make(map[telemetry.NodeID][]TECStep),
		}
		e.open[id] = st
	}
	inc := &st.inc
	inc.Attempts++
	inc.End = end

	for node := range c.tx {
		st.destroyedBy[node]++
	}
	for node, steps := range c.tec {
		st.tecByNode[node] = append(st.tecByNode[node], steps...)
	}
	det := e.idDet[id]
	if det == nil {
		det = &stats.Accumulator{}
		e.idDet[id] = det
	}
	for _, d := range c.detects {
		inc.Detections++
		st.detAcc.Add(float64(d.bit))
		det.Add(float64(d.bit))
		if inc.FirstDetectAt < 0 {
			inc.FirstDetectAt = d.at
		}
		if !st.hasDefender {
			st.hasDefender = true
			inc.Defender = e.nodeName(d.node)
		}
	}
	for _, p := range c.pulls {
		inc.Counterattacks++
		inc.PullBitsTotal += p.bitsDriven
	}
	if first {
		st.inc.Causality = c.chain(e)
	}
	if c.busOff {
		e.attachBusOff(st, c)
	}
}

// attachBusOff records the attempt's bus-off outcome on the incident: the
// eradication instant, the final TEC hop and bus-off causality links, and the
// recovery watch. Called with e.mu held.
func (e *Engine) attachBusOff(st *incidentState, c *attempt) {
	inc := &st.inc
	inc.BusOffAt = c.busOffAt
	inc.Eradicated = true
	st.busOffNode = c.busOffNode
	if steps := c.tec[c.busOffNode]; len(steps) > 0 {
		last := steps[len(steps)-1]
		inc.Causality = append(inc.Causality, ChainLink{
			At:   last.At,
			Node: e.nodeName(c.busOffNode),
			Step: fmt.Sprintf("tec %d→%d", last.Prev, last.Value),
		})
	}
	inc.Causality = append(inc.Causality,
		ChainLink{At: c.busOffAt, Node: e.nodeName(c.busOffNode), Step: "bus_off"})
	e.recovery[c.busOffNode] = st
}

// chain reconstructs the first attempt's causal hops.
func (c *attempt) chain(e *Engine) []ChainLink {
	var links []ChainLink
	// The SOF: name the surviving transmitters (losers already dropped out).
	for node := range c.tx {
		links = append(links, ChainLink{At: c.start, Node: e.nodeName(node), Step: "tx_start"})
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Node < links[j].Node })
	for _, d := range c.detects {
		links = append(links, ChainLink{At: d.at, Node: e.nodeName(d.node),
			Step: fmt.Sprintf("detect@bit%d", d.bit)})
	}
	for _, p := range c.pulls {
		links = append(links, ChainLink{At: p.startAt, Node: e.nodeName(p.node),
			Step: fmt.Sprintf("counterattack(%d bits)", p.bitsDriven)})
	}
	if len(c.errs) > 0 {
		first := c.errs[0]
		links = append(links, ChainLink{At: first.at, Node: "",
			Step: fmt.Sprintf("error(%s)", telemetry.ErrorKindName(first.kind))})
	}
	return links
}

// resolve renders a snapshot of an incident with attribution applied.
// Called with e.mu held.
func (e *Engine) resolve(st *incidentState) Incident {
	inc := st.inc
	var attacker telemetry.NodeID
	found := false
	if inc.Eradicated {
		attacker, found = st.busOffNode, true
	} else {
		// Deterministic attribution: most destroyed attempts, ties broken
		// by the lower node ID (registration order, which is fixed per
		// scenario wiring).
		nodes := make([]telemetry.NodeID, 0, len(st.destroyedBy))
		for node := range st.destroyedBy {
			nodes = append(nodes, node)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		best := 0
		for _, node := range nodes {
			if n := st.destroyedBy[node]; n > best {
				best, attacker, found = n, node, true
			}
		}
	}
	if found {
		inc.Attacker = e.nodeName(attacker)
		inc.TEC = append([]TECStep(nil), st.tecByNode[attacker]...)
		for _, s := range e.successes[int64(inc.ID)] {
			if s.node == attacker && s.at >= inc.Start && s.at <= inc.End {
				inc.FramesLeaked++
			}
		}
	}
	inc.DetectionBits = st.detAcc.Summarize()
	inc.Causality = append([]ChainLink(nil), st.inc.Causality...)
	return inc
}

// incidentsLocked resolves closed (and optionally open) incidents sorted by
// (Start, ID). Called with e.mu held.
func (e *Engine) incidentsLocked(includeClosed bool) []Incident {
	var out []Incident
	if includeClosed {
		for _, st := range e.closed {
			out = append(out, e.resolve(st))
		}
	}
	for _, st := range e.open {
		out = append(out, e.resolve(st))
	}
	sortIncidents(out)
	return out
}

// Incidents returns every incident observed so far — closed and still open —
// resolved and sorted by (Start, ID).
func (e *Engine) Incidents() []Incident {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.incidentsLocked(true)
}

// InFlight returns the incidents that have not yet been closed by a
// same-ID gap (a mid-frame attempt has no incident until its first
// destroyed attempt resolves).
func (e *Engine) InFlight() []Incident {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.incidentsLocked(false)
}

func sortIncidents(incs []Incident) {
	sort.Slice(incs, func(i, j int) bool {
		if incs[i].Start != incs[j].Start {
			return incs[i].Start < incs[j].Start
		}
		return incs[i].ID < incs[j].ID
	})
}

// IncidentsOf returns the resolved incidents of one ID in time order.
func (e *Engine) IncidentsOf(id can.ID) []Incident {
	var out []Incident
	for _, inc := range e.Incidents() {
		if inc.ID == id {
			out = append(out, inc)
		}
	}
	return out
}

// Complete filters incidents with the recording-edge rule the experiment
// package applies to trace episodes: a trailing incident that has fewer
// than a full campaign's attempts and ends within one recovery window of
// the recording's end is still in progress and is dropped.
func Complete(incs []Incident, recordingEnd int64) []Incident {
	if len(incs) == 0 {
		return nil
	}
	last := incs[len(incs)-1]
	if last.Attempts < FullCampaignAttempts && recordingEnd-last.End < EpisodeEdgeMarginBits {
		return incs[:len(incs)-1]
	}
	return incs
}

// Summaries aggregates per-ID accumulator summaries over all incidents,
// sorted by ID.
func (e *Engine) Summaries() []IDSummary {
	e.mu.Lock()
	defer e.mu.Unlock()
	byID := make(map[can.ID]*IDSummary)
	accs := make(map[can.ID]*stats.Accumulator)
	for _, inc := range e.incidentsLocked(true) {
		s := byID[inc.ID]
		if s == nil {
			s = &IDSummary{ID: inc.ID, IDHex: inc.IDHex}
			byID[inc.ID] = s
			accs[inc.ID] = &stats.Accumulator{}
		}
		s.Incidents++
		s.Attempts += inc.Attempts
		accs[inc.ID].Add(float64(inc.Bits()))
	}
	out := make([]IDSummary, 0, len(byID))
	for id, s := range byID {
		s.EpisodeBits = accs[id].Summarize()
		if det := e.idDet[int64(id)]; det != nil {
			s.DetectionBits = det.Summarize()
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FirstDetectionAt returns the bit time of the first FSM verdict seen
// anywhere in the stream (-1 if none) — the Table I detection instant.
func (e *Engine) FirstDetectionAt() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstDetect
}

// TxSuccessCount returns how many frames the named node completed.
func (e *Engine) TxSuccessCount(node string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, n := range e.txSuccess {
		if e.nodeName(id) == node {
			return n
		}
	}
	return 0
}

// FirstBusOffAt returns the bit time of the named node's first bus-off
// (-1 if it never left the bus).
func (e *Engine) FirstBusOffAt(node string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, t := range e.firstBusOff {
		if e.nodeName(id) == node {
			return t
		}
	}
	return -1
}

// Stats reports engine-level counters for diagnostics.
type EngineStats struct {
	EventsSeen      int64 `json:"events_seen"`
	DroppedAttempts int   `json:"dropped_attempts"`
	StrayAttempts   int   `json:"stray_attempts"`
	Finalized       bool  `json:"finalized"`
	RecordingEnd    int64 `json:"recording_end"`
}

// Stats snapshots the engine-level counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		EventsSeen:      e.eventsSeen,
		DroppedAttempts: e.dropped,
		StrayAttempts:   e.stray,
		Finalized:       e.finalized,
		RecordingEnd:    e.endAt,
	}
}
