package forensics_test

import (
	"strings"
	"testing"

	"michican/internal/controller"
	"michican/internal/forensics"
	"michican/internal/telemetry"
)

// campaignEmitter drives a synthetic spoof-fight event stream through a hub:
// the exact per-node event grammar the simulation emits, without running the
// simulation. Each destroyed attempt is the canonical MichiCAN exchange — the
// attacker's SOF, the defender's verdict at ID bit 9, a 7-bit counterattack
// pull, the attacker's bit error and TEC(+8) bump, and the shared error
// delimiter reported by the surviving receiver.
type campaignEmitter struct {
	att, def telemetry.Probe
	tec      int64
}

const (
	campaignID      = 0x173
	attemptSpacing  = 43 // SOF-to-SOF distance between consecutive attempts
	attemptLastBusy = 23 // last dominant bit of each attempt, relative to SOF
)

// destroyAttempt emits one destroyed attempt starting at t and returns the
// attacker's post-bump TEC. busOff marks the final attempt of an eradication
// campaign: the attacker crosses the bus-off threshold and, having left the
// bus, never reports its own error delimiter.
func (c *campaignEmitter) destroyAttempt(t int64, busOff bool) {
	c.att.Emit(t, telemetry.EvTxStart, campaignID, 0)
	c.def.Emit(t+12, telemetry.EvDetect, 9, 0)
	c.def.Emit(t+12, telemetry.EvPullStart, 0, 0)
	c.att.Emit(t+14, telemetry.EvError, int64(controller.BitError), 1)
	c.att.Emit(t+14, telemetry.EvTEC, c.tec+8, c.tec)
	c.tec += 8
	if busOff {
		c.att.Emit(t+14, telemetry.EvBusOff, 0, 0)
	}
	c.def.Emit(t+20, telemetry.EvPullEnd, 7, 0)
	c.def.Emit(t+31, telemetry.EvErrorEnd, 0, 0)
}

func causalitySteps(inc forensics.Incident) string {
	var steps []string
	for _, l := range inc.Causality {
		steps = append(steps, l.Step)
	}
	return strings.Join(steps, ",")
}

// TestEngineFullCampaign folds a complete 32-attempt eradication campaign and
// checks every field of the reconstructed incident.
func TestEngineFullCampaign(t *testing.T) {
	hub := telemetry.NewHub()
	hub.RetainEvents(false)
	eng := forensics.NewEngine(hub)
	defer eng.Close()

	em := &campaignEmitter{att: hub.Probe("attacker"), def: hub.Probe("defender")}
	const t0 = int64(100)
	for i := 0; i < forensics.FullCampaignAttempts; i++ {
		em.destroyAttempt(t0+int64(i)*attemptSpacing, i == forensics.FullCampaignAttempts-1)
	}
	busOffAt := t0 + 31*attemptSpacing + 14
	recoverAt := busOffAt + int64(controller.RecoverySequences*controller.RecoveryIdleBits)
	em.att.Emit(recoverAt, telemetry.EvRecover, 0, 0)
	end := recoverAt + 100
	eng.Finalize(end)

	incs := eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1: %+v", len(incs), incs)
	}
	inc := incs[0]
	// The final attempt ends at the pull's last bit: the attacker crossed
	// straight into bus-off, so no active flag extended the episode.
	wantEnd := t0 + 31*attemptSpacing + 20
	if inc.Start != t0 || inc.End != wantEnd {
		t.Errorf("span [%d, %d], want [%d, %d]", inc.Start, inc.End, t0, wantEnd)
	}
	if inc.IDHex != "0x173" || inc.Attempts != 32 {
		t.Errorf("id %s attempts %d, want 0x173/32", inc.IDHex, inc.Attempts)
	}
	if inc.Attacker != "attacker" || inc.Defender != "defender" {
		t.Errorf("attribution %q vs %q, want attacker vs defender", inc.Attacker, inc.Defender)
	}
	if inc.Detections != 32 || inc.FirstDetectAt != t0+12 {
		t.Errorf("detections %d first@%d, want 32 @%d", inc.Detections, inc.FirstDetectAt, t0+12)
	}
	db := inc.DetectionBits
	if db.N != 32 || db.Mean != 9 || db.Min != 9 || db.Max != 9 {
		t.Errorf("detection bits summary %+v, want 32×9", db)
	}
	if inc.Counterattacks != 32 || inc.PullBitsTotal != 32*7 {
		t.Errorf("counterattacks %d pull bits %d, want 32/224", inc.Counterattacks, inc.PullBitsTotal)
	}
	if inc.FramesLeaked != 0 {
		t.Errorf("frames leaked %d, want 0", inc.FramesLeaked)
	}
	if len(inc.TEC) != 32 {
		t.Fatalf("TEC trajectory has %d steps, want 32", len(inc.TEC))
	}
	if first, last := inc.TEC[0], inc.TEC[31]; first.Prev != 0 || first.Value != 8 ||
		last.Prev != 248 || last.Value != int64(controller.BusOffThreshold) {
		t.Errorf("TEC trajectory ends %+v → %+v", first, last)
	}
	if !inc.Eradicated || inc.BusOffAt != busOffAt || inc.RecoveredAt != recoverAt {
		t.Errorf("eradication %v busoff@%d recovered@%d, want true/%d/%d",
			inc.Eradicated, inc.BusOffAt, inc.RecoveredAt, busOffAt, recoverAt)
	}
	steps := causalitySteps(inc)
	for _, want := range []string{"tx_start", "detect@bit9", "counterattack(7 bits)",
		"error(bit)", "tec 248→256", "bus_off", "recover"} {
		if !strings.Contains(steps, want) {
			t.Errorf("causality chain missing %q (have %s)", want, steps)
		}
	}

	if got := forensics.Complete(incs, end); len(got) != 1 {
		t.Errorf("Complete dropped a full 32-attempt campaign")
	}
	if got := eng.FirstDetectionAt(); got != t0+12 {
		t.Errorf("FirstDetectionAt = %d, want %d", got, t0+12)
	}
	if got := eng.FirstBusOffAt("attacker"); got != busOffAt {
		t.Errorf("FirstBusOffAt = %d, want %d", got, busOffAt)
	}
	sums := eng.Summaries()
	if len(sums) != 1 || sums[0].Incidents != 1 || sums[0].Attempts != 32 ||
		sums[0].EpisodeBits.N != 1 || sums[0].EpisodeBits.Mean != float64(inc.Bits()) {
		t.Errorf("summaries = %+v", sums)
	}
	st := eng.Stats()
	if !st.Finalized || st.RecordingEnd != end || st.DroppedAttempts != 0 || st.StrayAttempts != 0 {
		t.Errorf("engine stats = %+v", st)
	}
}

// TestEngineEpisodeGapAndCompleteness checks that a same-ID gap longer than
// EpisodeGapBits splits incidents and that Complete drops a short trailing
// incident near the recording edge.
func TestEngineEpisodeGapAndCompleteness(t *testing.T) {
	hub := telemetry.NewHub()
	hub.RetainEvents(false)
	eng := forensics.NewEngine(hub)
	defer eng.Close()

	em := &campaignEmitter{att: hub.Probe("attacker"), def: hub.Probe("defender")}
	const t0 = int64(100)
	for i := int64(0); i < 3; i++ {
		em.destroyAttempt(t0+i*attemptSpacing, false)
	}
	t1 := t0 + 2*attemptSpacing + attemptLastBusy + forensics.EpisodeGapBits + 200
	for i := int64(0); i < 3; i++ {
		em.destroyAttempt(t1+i*attemptSpacing, false)
	}
	end := t1 + 3*attemptSpacing + 50 // well inside the edge margin
	eng.Finalize(end)

	incs := eng.Incidents()
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2 (gap %d should split)", len(incs), forensics.EpisodeGapBits)
	}
	if incs[0].Attempts != 3 || incs[1].Attempts != 3 || incs[0].ID != incs[1].ID {
		t.Errorf("incident shapes: %+v", incs)
	}
	if incs[0].Eradicated || incs[1].Eradicated {
		t.Error("no bus-off was emitted, yet an incident reads eradicated")
	}
	// The trailing 3-attempt incident ends within the edge margin: still in
	// progress, so the completeness filter drops it.
	if got := forensics.Complete(incs, end); len(got) != 1 || got[0].Start != t0 {
		t.Errorf("Complete = %+v, want only the first incident", got)
	}
	// In-flight view: the second incident has not been closed by a gap.
	inflight := eng.InFlight()
	if len(inflight) != 1 || inflight[0].Start != t1 {
		t.Errorf("InFlight = %+v, want the trailing incident", inflight)
	}
	sums := eng.Summaries()
	if len(sums) != 1 || sums[0].Incidents != 2 || sums[0].Attempts != 6 || sums[0].EpisodeBits.N != 2 {
		t.Errorf("summaries = %+v", sums)
	}
}

// TestEngineFramesLeaked checks that a complete spoofed frame the attacker
// slips through mid-incident is charged to it at resolution time.
func TestEngineFramesLeaked(t *testing.T) {
	hub := telemetry.NewHub()
	hub.RetainEvents(false)
	eng := forensics.NewEngine(hub)
	defer eng.Close()

	em := &campaignEmitter{att: hub.Probe("attacker"), def: hub.Probe("defender")}
	const t0 = int64(100)
	em.destroyAttempt(t0, false)
	// A leaked frame: the attacker transmits the spoofed ID to completion.
	em.att.Emit(t0+200, telemetry.EvTxStart, campaignID, 0)
	em.att.Emit(t0+310, telemetry.EvTxSuccess, campaignID, 0)
	// The next SOF must clear the decoder's 11-recessive idle rule (>3 bits
	// past the completed frame's end) or it reads as stray noise.
	em.destroyAttempt(t0+400, false)
	eng.Finalize(t0 + 3000)

	incs := eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1: %+v", len(incs), incs)
	}
	inc := incs[0]
	if inc.Attempts != 2 || inc.Attacker != "attacker" {
		t.Errorf("attempts %d attacker %q, want 2 attempts by attacker", inc.Attempts, inc.Attacker)
	}
	if inc.FramesLeaked != 1 {
		t.Errorf("frames leaked = %d, want 1", inc.FramesLeaked)
	}
	if got := eng.TxSuccessCount("attacker"); got != 1 {
		t.Errorf("TxSuccessCount = %d, want 1", got)
	}
}

// TestEngineStrayAndDroppedAttempts exercises the wire-visibility bookkeeping:
// an unresolved attempt displaced by a new SOF is dropped, a SOF inside the
// previous frame's recessive tail is stray, and a counterattack pull that
// corrupts the arbitration region makes the attempt unattributable.
func TestEngineStrayAndDroppedAttempts(t *testing.T) {
	hub := telemetry.NewHub()
	hub.RetainEvents(false)
	eng := forensics.NewEngine(hub)
	defer eng.Close()

	att := hub.Probe("attacker")
	def := hub.Probe("defender")
	em := &campaignEmitter{att: att, def: def}

	// Dropped: a SOF with no wire resolution before the next SOF.
	att.Emit(100, telemetry.EvTxStart, campaignID, 0)
	em.destroyAttempt(600, false)

	// Stray: a completed frame ends at t=1350; a SOF 2 bits later sits inside
	// its recessive tail, so the decoder never sees it.
	att.Emit(1240, telemetry.EvTxStart, campaignID, 0)
	att.Emit(1350, telemetry.EvTxSuccess, campaignID, 0)
	att.Emit(1352, telemetry.EvTxStart, campaignID, 0)
	att.Emit(1360, telemetry.EvError, int64(controller.BitError), 1)
	att.Emit(1360, telemetry.EvTEC, 16, 8)
	def.Emit(1374, telemetry.EvErrorEnd, 0, 0)

	// Unattributable: a pull landing inside the stuffed SOF+ID region corrupts
	// the bits the decoder needs for IDComplete.
	att.Emit(2000, telemetry.EvTxStart, campaignID, 0)
	def.Emit(2003, telemetry.EvPullStart, 0, 0)
	def.Emit(2010, telemetry.EvPullEnd, 7, 0)
	att.Emit(2004, telemetry.EvError, int64(controller.BitError), 1)
	att.Emit(2004, telemetry.EvTEC, 24, 16)
	def.Emit(2021, telemetry.EvErrorEnd, 0, 0)

	eng.Finalize(5000)

	incs := eng.Incidents()
	if len(incs) != 1 || incs[0].Attempts != 1 || incs[0].Start != 600 {
		t.Fatalf("incidents = %+v, want one single-attempt incident at 600", incs)
	}
	st := eng.Stats()
	if st.DroppedAttempts != 2 {
		t.Errorf("dropped attempts = %d, want 2 (displaced SOF + corrupted ID)", st.DroppedAttempts)
	}
	if st.StrayAttempts != 1 {
		t.Errorf("stray attempts = %d, want 1", st.StrayAttempts)
	}
}
