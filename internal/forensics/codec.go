package forensics

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"michican/internal/can"
)

// EncodeIncident marshals one incident into its canonical single-line JSON
// form, used by the durable store as the incident record payload.
// encoding/json's stable struct-field ordering makes the bytes
// deterministic, which the store's resume protocol relies on (incident
// prefix hashes must match across a resumed and an uninterrupted run).
func EncodeIncident(inc Incident) ([]byte, error) {
	return json.Marshal(inc)
}

// EncodeIncidents marshals a batch in order.
func EncodeIncidents(incs []Incident) ([][]byte, error) {
	out := make([][]byte, len(incs))
	for i, inc := range incs {
		p, err := EncodeIncident(inc)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// DecodeIncident rehydrates a stored incident payload. The binary ID field
// carries `json:"-"` (IDHex is the serialized form), so it is re-parsed here;
// everything else round-trips through the struct tags.
func DecodeIncident(payload []byte) (Incident, error) {
	var inc Incident
	if err := json.Unmarshal(payload, &inc); err != nil {
		return Incident{}, err
	}
	id, err := parseHexID(inc.IDHex)
	if err != nil {
		return Incident{}, fmt.Errorf("incident %q: %w", inc.IDHex, err)
	}
	inc.ID = id
	return inc, nil
}

// parseHexID parses the 0xNNN form EncodeIncident writes into IDHex.
func parseHexID(s string) (can.ID, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad incident id: %w", err)
	}
	return can.ID(v), nil
}
