package cli

import (
	"testing"

	"michican/internal/can"
)

func TestParseID(t *testing.T) {
	tests := []struct {
		in      string
		want    can.ID
		wantErr bool
	}{
		{"0x173", 0x173, false},
		{"371", 371, false},
		{"0", 0, false},
		{"0x7FF", 0x7FF, false},
		{"0x800", 0, true},
		{"zz", 0, true},
		{"-1", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseID(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseID(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseID(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseExtID(t *testing.T) {
	id, ext, err := ParseExtID("0x18DAF110")
	if err != nil || !ext || id != 0x18DAF110 {
		t.Errorf("extended parse: %v %v %v", id, ext, err)
	}
	id, ext, err = ParseExtID("0x173")
	if err != nil || ext || id != 0x173 {
		t.Errorf("base parse: %v %v %v", id, ext, err)
	}
	if _, _, err := ParseExtID("0x20000000"); err == nil {
		t.Error("30-bit ID accepted")
	}
}

func TestParseIDList(t *testing.T) {
	ids, err := ParseIDList("0x064, 0x173,0x25F")
	if err != nil {
		t.Fatal(err)
	}
	want := []can.ID{0x064, 0x173, 0x25F}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	if _, err := ParseIDList("0x10,bad"); err == nil {
		t.Error("bad list accepted")
	}
}
