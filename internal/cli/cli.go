// Package cli holds the small argument-parsing helpers shared by the
// command-line tools (CAN ID parsing and friends).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"michican/internal/can"
)

// ParseID parses a base (11-bit) CAN identifier in decimal, hex (0x...) or
// octal notation.
func ParseID(s string) (can.ID, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("parse CAN ID %q: %w", s, err)
	}
	id := can.ID(v)
	if !id.Valid() {
		return 0, fmt.Errorf("%w: %s", can.ErrIDRange, s)
	}
	return id, nil
}

// ParseExtID parses an identifier that may be either base or extended; ext
// reports whether it exceeds 11 bits.
func ParseExtID(s string) (id can.ID, ext bool, err error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, false, fmt.Errorf("parse CAN ID %q: %w", s, err)
	}
	id = can.ID(v)
	if !id.ValidExt() {
		return 0, false, fmt.Errorf("%w: %s exceeds 29 bits", can.ErrIDRange, s)
	}
	return id, !id.Valid(), nil
}

// ParseIDList parses a comma-separated list of base CAN identifiers.
func ParseIDList(s string) ([]can.ID, error) {
	parts := strings.Split(s, ",")
	out := make([]can.ID, 0, len(parts))
	for _, p := range parts {
		id, err := ParseID(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}
