package core

import (
	"testing"

	"michican/internal/can"
	"michican/internal/controller"
)

// MichiCAN against CAN FD attackers: the arbitration phase is bit-identical
// to classical CAN, so the FSM detects unchanged, and the pull — which for
// an FD frame overwrites the recessive FDF bit right after arbitration —
// induces the bit error even earlier than for classical frames.

func TestFDAttackerEradicated(t *testing.T) {
	for _, aware := range []bool{false, true} {
		b, defense, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: aware})
		if err := att.Enqueue(can.Frame{ID: 0x064, FD: true, Data: make([]byte, 64)}); err != nil {
			t.Fatal(err)
		}
		if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 8000) {
			t.Fatalf("aware=%v: FD attacker not bused off (TEC=%d attempts=%d)",
				aware, att.TEC(), att.Stats().TxAttempts)
		}
		if att.Stats().TxAttempts != 32 {
			t.Errorf("aware=%v: attempts = %d, want 32", aware, att.Stats().TxAttempts)
		}
		if att.Stats().TxSuccess != 0 {
			t.Errorf("aware=%v: FD attack frames leaked", aware)
		}
		if defense.Stats().Counterattacks < 32 {
			t.Errorf("aware=%v: counterattacks = %d", aware, defense.Stats().Counterattacks)
		}
	}
}

func TestBenignFDTrafficPasses(t *testing.T) {
	b, defense, att := newExtTestbed(t, Config{Name: "michican"})
	if err := att.Enqueue(can.Frame{ID: 0x200, FD: true, Data: make([]byte, 24)}); err != nil {
		t.Fatal(err)
	}
	b.Run(800)
	if att.Stats().TxSuccess != 1 {
		t.Error("benign FD frame blocked")
	}
	if defense.Stats().Counterattacks != 0 {
		t.Error("counterattacked benign FD traffic")
	}
}
