package core

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/mcu"
)

var (
	_ bus.Quiescent = (*Defense)(nil)
	_ bus.Quiescent = (*ECU)(nil)
)

// QuiescentUntil implements bus.Quiescent. During a recessive run the
// defense's per-bit interrupt handler does a fixed amount of SOF-hunting
// work whose cumulative effect (cnt_sof, meter charges) is a pure function
// of the bit count, so an idle defense is quiescent forever; mid-frame or
// mid-counterattack state pins exact stepping.
func (d *Defense) QuiescentUntil(now bus.BitTime) bus.BitTime {
	if d.mux.DriveLevel() == can.Dominant {
		return now
	}
	if d.armed && d.inFrame {
		return now
	}
	return bus.QuiescentForever
}

// SkipIdle implements bus.Quiescent: replay to-from recessive idle bits in
// O(1). The CAN_RX latch ends at the recessive level it would have held, the
// SOF counter advances by the run length, and the meter is charged for
// exactly the idle invocations Algorithm 1 would have run — keeping the
// Sec. V-D CPU-utilization numbers identical to exact stepping.
func (d *Defense) SkipIdle(from, to bus.BitTime) {
	d.mux.LatchRX(can.Recessive)
	if !d.armed {
		return
	}
	n := int64(to - from)
	d.cntSOF += int(n)
	d.meter.ChargeIdleInvocations(n, mcu.OpISREnterExit, mcu.OpReadRX, mcu.OpIdleTrack)
}

// QuiescentUntil implements bus.Quiescent: a defended ECU is quiescent only
// while both its controller and its defense are.
func (e *ECU) QuiescentUntil(now bus.BitTime) bus.BitTime {
	h := e.Controller.QuiescentUntil(now)
	if e.Defense != nil {
		if hd := e.Defense.QuiescentUntil(now); hd < h {
			h = hd
		}
	}
	return h
}

// SkipIdle implements bus.Quiescent.
func (e *ECU) SkipIdle(from, to bus.BitTime) {
	e.Controller.SkipIdle(from, to)
	if e.Defense != nil {
		e.Defense.SkipIdle(from, to)
	}
}
