package core

import (
	"testing"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/fsm"
)

// buildDefense constructs a full-scenario defense for the ECU at index i of
// the given IVN.
func buildDefense(t *testing.T, ivnIDs []can.ID, i int, cfg Config) *Defense {
	t.Helper()
	v, err := fsm.NewIVN(ivnIDs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fsm.NewDetectionSet(v, i)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FSM = fsm.Build(d)
	def, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func TestNewRequiresFSM(t *testing.T) {
	if _, err := New(Config{}); err != ErrNoFSM {
		t.Fatalf("New without FSM: err = %v, want ErrNoFSM", err)
	}
}

// defended builds the canonical testbed: an IVN of {0x064-owner?...} — a
// defender ECU transmitting 0x173, with MichiCAN configured for the paper's
// experiments, plus an attacker controller.
type testbed struct {
	bus      *bus.Bus
	defender *controller.Controller
	defense  *Defense
	attacker *controller.Controller
}

func newTestbed(t *testing.T, ivnIDs []can.ID, defenderIdx int) *testbed {
	t.Helper()
	b := bus.New(bus.Rate50k)
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	defense := buildDefense(t, ivnIDs, defenderIdx, Config{Name: "michican"})
	b.Attach(NewECU(defCtl, defense))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)
	return &testbed{bus: b, defender: defCtl, defense: defense, attacker: att}
}

func (tb *testbed) runUntilBusOff(t *testing.T, maxBits int64) int64 {
	t.Helper()
	start := tb.bus.Now()
	if !tb.bus.RunUntil(func() bool { return tb.attacker.State() == controller.BusOff }, maxBits) {
		t.Fatalf("attacker never bused off within %d bits (TEC=%d, attempts=%d, detections=%d)",
			maxBits, tb.attacker.TEC(), tb.attacker.Stats().TxAttempts, tb.defense.Stats().Detections)
	}
	return int64(tb.bus.Now() - start)
}

func TestSpoofingAttackBusOff(t *testing.T) {
	// Experiment-2 topology: one attacker spoofing the defender's own ID
	// 0x173, no other traffic. The defense must bus the attacker off in
	// exactly 32 attempts without its own controller's TEC moving.
	tb := newTestbed(t, []can.ID{0x064, 0x173}, 1)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x173, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	elapsed := tb.runUntilBusOff(t, 3000)

	if got := tb.attacker.Stats().TxAttempts; got != 32 {
		t.Errorf("attacker attempts = %d, want 32", got)
	}
	if got := tb.defense.Stats().Counterattacks; got != 32 {
		t.Errorf("counterattacks = %d, want 32", got)
	}
	if tb.defender.TEC() != 0 {
		t.Errorf("defender TEC = %d; the counterattack must not charge the defender", tb.defender.TEC())
	}
	// Sec. V-C: total bus-off time ≤ 16·(35+43) = 1248 bits plus stuff bits.
	if elapsed < 1000 || elapsed > 1400 {
		t.Errorf("bus-off time = %d bits, want ≈[1088,1300]", elapsed)
	}
	t.Logf("spoofing attack eradicated in %d bits (%v at 50 kbit/s)",
		elapsed, bus.Rate50k.Duration(elapsed))
}

func TestDoSAttackBusOff(t *testing.T) {
	// Experiment-4 topology: attacker sends 0x064 — an unknown ID below the
	// defender's 0x173 — a targeted DoS. Detection range catches it.
	tb := newTestbed(t, []can.ID{0x173}, 0)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x064, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	elapsed := tb.runUntilBusOff(t, 3000)
	if got := tb.attacker.Stats().TxAttempts; got != 32 {
		t.Errorf("attacker attempts = %d, want 32", got)
	}
	t.Logf("DoS attack eradicated in %d bits", elapsed)
}

func TestTraditionalDoSLowestID(t *testing.T) {
	// The classic flood with ID 0x000 — always in the detection range.
	tb := newTestbed(t, []can.ID{0x173}, 0)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x000, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	tb.runUntilBusOff(t, 3000)
	// ID 0x000 is all-dominant; the FSM needs all 11 bits to rule out the
	// legitimate 0x173 prefix? No: 0x000 diverges from 0x173 at bit 5, but
	// everything below 0x173 is malicious except nothing — detection can be
	// quick. Just require that detection happened before the ID ended.
	if tb.defense.Stats().DetectionBitsMax > can.IDBits {
		t.Errorf("detection position %d beyond ID field", tb.defense.Stats().DetectionBitsMax)
	}
}

func TestBenignTrafficUntouched(t *testing.T) {
	// The other legitimate ECU (0x064) must transmit freely through an armed
	// defense on the 0x173 ECU: no detections, no counterattacks.
	tb := newTestbed(t, []can.ID{0x064, 0x173}, 1)
	for i := 0; i < 10; i++ {
		if err := tb.attacker.Enqueue(can.Frame{ID: 0x064, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tb.bus.Run(3000)
	if tb.attacker.Stats().TxSuccess != 10 {
		t.Fatalf("benign ECU transmitted %d/10 frames", tb.attacker.Stats().TxSuccess)
	}
	if s := tb.defense.Stats(); s.Detections != 0 || s.Counterattacks != 0 {
		t.Errorf("false positives: %d detections, %d counterattacks", s.Detections, s.Counterattacks)
	}
	if tb.attacker.State() != controller.ErrorActive {
		t.Errorf("benign ECU state = %v", tb.attacker.State())
	}
}

func TestMiscellaneousAttackIgnored(t *testing.T) {
	// Definition IV.3: IDs above the defender's own are not flagged — the
	// miscellaneous attacker wins idle arbitration but harms nothing.
	tb := newTestbed(t, []can.ID{0x173}, 0)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x700, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	tb.bus.Run(500)
	if tb.attacker.Stats().TxSuccess != 1 {
		t.Error("miscellaneous frame should transmit unhindered")
	}
	if tb.defense.Stats().Detections != 0 {
		t.Error("miscellaneous ID must not be detected as malicious")
	}
}

func TestDetectionBeforeIDEnds(t *testing.T) {
	// Sec. V-B: detection usually completes before the 11-bit ID finishes.
	tb := newTestbed(t, []can.ID{0x100, 0x173, 0x200}, 1)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x0F0, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	tb.bus.Run(200)
	s := tb.defense.Stats()
	if s.Detections == 0 {
		t.Fatal("attack not detected")
	}
	if s.DetectionBitsMax >= can.IDBits {
		t.Errorf("detection at bit %d; expected early (<11) for 0x0F0 vs {0x100,0x173,0x200}",
			s.DetectionBitsMax)
	}
}

func TestDetectionOnlyModeDoesNotPreventAttack(t *testing.T) {
	// An IDS detects but cannot eradicate (Table I): in detection-only mode
	// the attacker transmits successfully and never approaches bus-off.
	v, err := fsm.NewIVN([]can.ID{0x173})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fsm.NewDetectionSet(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewDetectionOnly(Config{Name: "ids", FSM: fsm.Build(ds)})
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New(bus.Rate50k)
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(NewECU(defCtl, def))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)

	for i := 0; i < 5; i++ {
		if err := att.Enqueue(can.Frame{ID: 0x064, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Run(2000)
	if att.Stats().TxSuccess != 5 {
		t.Errorf("attacker transmitted %d/5 under detection-only defense", att.Stats().TxSuccess)
	}
	if def.Stats().Detections != 5 {
		t.Errorf("detections = %d, want 5", def.Stats().Detections)
	}
	if def.Stats().Counterattacks != 0 {
		t.Errorf("counterattacks = %d in detection-only mode", def.Stats().Counterattacks)
	}
}

func TestDisarmedDefenseIsInert(t *testing.T) {
	tb := newTestbed(t, []can.ID{0x173}, 0)
	tb.defense.Disarm()
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x064, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	tb.bus.Run(500)
	if tb.attacker.Stats().TxSuccess != 1 {
		t.Error("attack should succeed against a disarmed defense")
	}
	if tb.defense.Stats().FramesObserved != 0 {
		t.Error("disarmed defense should not process frames")
	}
	// Re-arm: the defense must observe an idle period (≥11 recessive bits)
	// to resynchronize, after which the next attack is prevented.
	tb.defense.Arm()
	tb.bus.Run(15)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x064, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	tb.runUntilBusOff(t, 3000)
}

func TestPersistentAttackerRecoveryAndReSuppression(t *testing.T) {
	// Sec. V-E: the attacker recovers from bus-off and re-attacks; the
	// defense buses it off again. The bus therefore alternates short attack
	// spikes with long quiet recovery windows. A persistent attacker
	// application keeps re-submitting its frame (bus-off aborts the mailbox).
	b := bus.New(bus.Rate50k)
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	defense := buildDefense(t, []can.ID{0x173}, 0, Config{Name: "michican"})
	b.Attach(NewECU(defCtl, defense))
	att := attack.NewTargetedDoS("attacker", 0x064)
	b.Attach(att)

	if !b.RunUntil(func() bool { return att.Controller().Stats().BusOffEvents >= 2 }, 10_000) {
		t.Fatalf("attacker not re-suppressed after recovery (bus-off events = %d)",
			att.Controller().Stats().BusOffEvents)
	}
	if att.Controller().Stats().TxSuccess != 0 {
		t.Errorf("attacker slipped %d frames through", att.Controller().Stats().TxSuccess)
	}
}

func TestDefenderKeepsTransmittingDuringAttack(t *testing.T) {
	// The defended ECU's own periodic traffic must continue around the
	// attack: the counterattack never charges the defender's TEC, and its
	// frames win the bus during the attacker's recovery windows.
	tb := newTestbed(t, []can.ID{0x173}, 0)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x064, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tb.defender.Enqueue(can.Frame{ID: 0x173, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tb.runUntilBusOff(t, 4000)
	tb.bus.Run(500)
	if got := tb.defender.Stats().TxSuccess; got != 3 {
		t.Errorf("defender transmitted %d/3 frames", got)
	}
	if tb.defender.State() == controller.BusOff {
		t.Error("defender must never reach bus-off")
	}
}

func TestDefenseMeterChargesCycles(t *testing.T) {
	tb := newTestbed(t, []can.ID{0x173}, 0)
	if err := tb.attacker.Enqueue(can.Frame{ID: 0x200, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	tb.bus.Run(300)
	m := tb.defense.Meter()
	if m.TotalCycles() == 0 || m.Invocations() == 0 {
		t.Error("meter should have accumulated handler costs")
	}
	util := m.Utilization(300, int(bus.Rate50k))
	if util <= 0 || util >= 1 {
		t.Errorf("utilization = %f, expected in (0,1)", util)
	}
}

func TestMultipleDefendersDetectSimultaneously(t *testing.T) {
	// Sec. IV-A: every MichiCAN ECU detects the same attack in parallel —
	// redundancy against defender failures. Two defenders, one attacker;
	// both must detect, and the attack must still take exactly 32 attempts
	// (the pulls overlap harmlessly).
	ivn := []can.ID{0x100, 0x173}
	b := bus.New(bus.Rate50k)
	c0 := controller.New(controller.Config{Name: "ecu0", AutoRecover: true})
	d0 := buildDefense(t, ivn, 0, Config{Name: "m0"})
	b.Attach(NewECU(c0, d0))
	c1 := controller.New(controller.Config{Name: "ecu1", AutoRecover: true})
	d1 := buildDefense(t, ivn, 1, Config{Name: "m1"})
	b.Attach(NewECU(c1, d1))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)

	if err := att.Enqueue(can.Frame{ID: 0x050, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 3000) {
		t.Fatal("attacker not bused off")
	}
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32 despite overlapping pulls", att.Stats().TxAttempts)
	}
	if d0.Stats().Detections == 0 || d1.Stats().Detections == 0 {
		t.Errorf("both defenders must detect: %d / %d",
			d0.Stats().Detections, d1.Stats().Detections)
	}
}

func TestLightScenarioSpoofOnly(t *testing.T) {
	// Light scenario (Sec. IV-A): the ECU only detects spoofing of its own
	// ID; DoS IDs pass (they are covered by the upper half of the IVN).
	v, err := fsm.NewIVN([]can.ID{0x100, 0x173})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fsm.NewSpoofOnlySet(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(Config{Name: "light", FSM: fsm.Build(ds)})
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New(bus.Rate50k)
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(NewECU(defCtl, def))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)

	// A DoS ID sails through the light defense...
	if err := att.Enqueue(can.Frame{ID: 0x050, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	b.Run(500)
	if att.Stats().TxSuccess != 1 {
		t.Fatal("light defense should ignore non-own IDs")
	}
	// ...but spoofing the own ID is still eradicated.
	if err := att.Enqueue(can.Frame{ID: 0x173, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 3000) {
		t.Fatal("spoof not eradicated by light defense")
	}
}
