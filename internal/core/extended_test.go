package core

import (
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
)

// newExtTestbed builds a defended bus with a configurable defense and one
// plain attacker controller.
func newExtTestbed(t *testing.T, cfg Config) (*bus.Bus, *Defense, *controller.Controller) {
	t.Helper()
	b := bus.New(bus.Rate50k)
	defense := buildDefense(t, []can.ID{0x173}, 0, cfg)
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(NewECU(defCtl, defense))
	att := controller.New(controller.Config{Name: "attacker", AutoRecover: true})
	b.Attach(att)
	return b, defense, att
}

func TestExtendedAttackerEradicatedWhenAware(t *testing.T) {
	// An extended-ID DoS whose 11-bit prefix (0x064) is in the detection
	// range: the extended-aware defense monitors through the 18-bit
	// extension and strikes after the extended RTR, ramping the attacker's
	// TEC to bus-off in the usual 32 attempts.
	b, defense, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: true})
	extID := can.ID(0x064)<<can.ExtLowBits | 0x15555
	if err := att.Enqueue(can.Frame{ID: extID, Extended: true, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 8000) {
		t.Fatalf("extended attacker not bused off (TEC=%d attempts=%d det=%d)",
			att.TEC(), att.Stats().TxAttempts, defense.Stats().Detections)
	}
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
	if att.Stats().TxSuccess != 0 {
		t.Errorf("attacker leaked %d frames", att.Stats().TxSuccess)
	}
}

func TestExtendedAttackerOnlyNeutralizedWhenUnaware(t *testing.T) {
	// The paper's 11-bit design strikes at frame position 13, which for an
	// extended frame is still arbitration (SRR/IDE): the pull forces an
	// arbitration loss instead of an error. The attack never gets a frame
	// through (starved — availability preserved!) but the attacker's TEC
	// never moves and it is never confined.
	b, defense, att := newExtTestbed(t, Config{Name: "michican"})
	extID := can.ID(0x064)<<can.ExtLowBits | 0x15555
	if err := att.Enqueue(can.Frame{ID: extID, Extended: true, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	b.Run(10_000)
	if att.Stats().TxSuccess != 0 {
		t.Errorf("attacker leaked %d frames through the unaware defense", att.Stats().TxSuccess)
	}
	if att.State() == controller.BusOff {
		t.Error("unaware defense should not be able to eradicate an extended attacker")
	}
	if att.Stats().ArbitrationLosses == 0 {
		t.Error("the pull should read as repeated arbitration losses")
	}
	if defense.Stats().Counterattacks == 0 {
		t.Error("defense should have been striking")
	}
	t.Logf("unaware defense: %d arbitration losses, TEC=%d — neutralized, not eradicated",
		att.Stats().ArbitrationLosses, att.TEC())
}

func TestExtendedAwareLeavesBaseTimingIntact(t *testing.T) {
	// With extended awareness the base-frame strike moves one bit later
	// (after IDE); eradication must still take exactly 32 attempts and the
	// bus-off time must stay in the paper's band.
	b, _, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: true})
	if err := att.Enqueue(can.Frame{ID: 0x064, Data: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	start := b.Now()
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 3000) {
		t.Fatal("base attacker not bused off by the extended-aware defense")
	}
	elapsed := int64(b.Now() - start)
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
	if elapsed < 1000 || elapsed > 1450 {
		t.Errorf("bus-off time %d bits outside the paper band", elapsed)
	}
}

func TestBenignExtendedTrafficPasses(t *testing.T) {
	// Extended frames whose prefix is NOT in the detection range sail
	// through, aware or not.
	for _, aware := range []bool{false, true} {
		b, defense, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: aware})
		// Prefix 0x200 > defender 0x173: outside the detection range.
		extID := can.ID(0x200)<<can.ExtLowBits | 0x00042
		if err := att.Enqueue(can.Frame{ID: extID, Extended: true, Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
		b.Run(500)
		if att.Stats().TxSuccess != 1 {
			t.Errorf("aware=%v: benign extended frame blocked", aware)
		}
		if defense.Stats().Counterattacks != 0 {
			t.Errorf("aware=%v: counterattacked benign extended traffic", aware)
		}
	}
}
