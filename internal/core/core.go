// Package core implements the MichiCAN defense — the paper's primary
// contribution (Sec. IV). A Defense is attached to the CAN bus alongside an
// ECU's ordinary controller and runs the five phases:
//
//   - Initial configuration: an offline-generated detection FSM (package
//     internal/fsm) is installed per ECU, in the full or light scenario.
//   - Synchronization: the defense hunts for SOF — the first dominant level
//     after at least 11 recessive bits — and hard-synchronizes its per-bit
//     handler there (Sec. IV-C). In this simulation the bus delivers exactly
//     one resolved level per nominal bit time, which corresponds to the
//     paper's 70%-sample-point timer; the analog jitter story is modeled by
//     mcu.BitClock.
//   - Pin multiplexing: CAN_RX is read directly every bit; CAN_TX is
//     multiplexed to GPIO only while a counterattack is in progress
//     (Sec. IV-B, mcu.PinMux).
//   - Detection: Algorithm 1 — per-bit stuff-bit removal and FSM stepping
//     over the 11-bit CAN ID, stopping the FSM as soon as a decision falls.
//   - Prevention: on a malicious verdict the defense pulls CAN_TX dominant
//     from frame position 13 (the RTR bit) through position 20, inducing a
//     bit or stuff error in the attacker's transmission without ever
//     touching the defender's own TEC (Sec. IV-E).
//
// The defense is not a CAN node in the protocol sense: it never sends
// frames, never ACKs, and never raises error flags. Its only write access to
// the wire is the counterattack pull.
package core

import (
	"errors"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/fsm"
	"michican/internal/mcu"
	"michican/internal/telemetry"
)

// Counterattack geometry (Sec. IV-E / Algorithm 1 lines 16-23): the pull
// starts when the frame counter reaches position 13 (1 SOF + 11 ID + 1 RTR)
// and the pin is released at position 20, injecting up to 6 dominant bits
// beyond the always-dominant IDE/r0 prefix.
const (
	// CounterattackStartPos is the frame position (SOF = 1) at which the
	// defense enables CAN_TX multiplexing and pulls the bus low.
	CounterattackStartPos = 13
	// CounterattackEndPos is the frame position at which the defense
	// releases CAN_TX.
	CounterattackEndPos = 20
)

// Stats accumulates the defense's observable behaviour.
type Stats struct {
	// FramesObserved counts SOFs the defense synchronized to.
	FramesObserved int
	// Detections counts malicious verdicts (one per observed attempt,
	// including every retransmission of the same attacker frame).
	Detections int
	// Counterattacks counts prevention pulls actually launched.
	Counterattacks int
	// DetectionBitsSum accumulates the FSM decision positions, for mean
	// detection latency (Sec. V-B).
	DetectionBitsSum int
	// DetectionBitsMax is the worst detection position observed.
	DetectionBitsMax int
	// AbortedFrames counts frames abandoned because an error frame (six
	// equal levels) appeared on the wire mid-ID.
	AbortedFrames int
}

// MeanDetectionBits returns the mean FSM decision position over all
// detections.
func (s Stats) MeanDetectionBits() float64 {
	if s.Detections == 0 {
		return 0
	}
	return float64(s.DetectionBitsSum) / float64(s.Detections)
}

// Config parameterizes a Defense.
type Config struct {
	// Name identifies the defense instance in traces.
	Name string
	// FSM is the offline-generated detection machine (required).
	FSM *fsm.FSM
	// Profile selects the MCU cycle model; the zero value disables metering
	// (a Meter is still created against the Arduino Due profile so that
	// Meter() is always usable).
	Profile mcu.Profile
	// PreventionEnabled gates the counterattack; with it false the defense
	// is detection-only (an IDS — useful for the paper's Table I
	// "eradication" comparison). Default true via New.
	PreventionEnabled bool
	// PullBits overrides the counterattack pull width (ablation knob). The
	// default 0 means the paper's 7 bits (positions 13 through 20); Sec.
	// IV-E shows 6 injected dominant bits are needed in the worst case, so
	// shorter pulls can fail to raise an error for some attacker frames.
	PullBits int
	// ExtendedAware extends the paper's 11-bit design to CAN 2.0B traffic.
	// The defense then discriminates the frame format at the IDE bit: for a
	// flagged *base* frame it strikes one position later than Algorithm 1
	// (after IDE instead of at RTR — the injected window still covers ≥6
	// dominant overwrites); for a flagged *extended* frame (malicious 11-bit
	// prefix) it keeps monitoring through the 18-bit identifier extension
	// and strikes right after the extended RTR, inducing a bit error instead
	// of interfering with the still-running arbitration. Without this flag a
	// flagged extended frame is struck during its arbitration field, which
	// merely forces an arbitration loss: the attacker is starved
	// (neutralized) but never accumulates TEC and is never eradicated.
	ExtendedAware bool
	// OnDetect, when set, fires on every malicious verdict with the FSM
	// decision position (1-11) within the CAN ID.
	OnDetect func(t bus.BitTime, bitPos int)
	// OnCounterattack, when set, fires when the prevention pull starts.
	OnCounterattack func(t bus.BitTime)
	// SelfTransmitting, when set, reports whether this ECU's own controller
	// is driving the current frame. The defense consults it before starting
	// a counterattack so it never destroys its host's legitimate
	// transmission of its own CAN ID (on real silicon the defense shares
	// the chip with the controller and knows its mailbox state). NewECU
	// wires this automatically.
	SelfTransmitting func() bool
}

// ErrNoFSM indicates a Defense configured without a detection FSM.
var ErrNoFSM = errors.New("core: defense requires a detection FSM")

// Defense is a MichiCAN instance: a bus.Node implementing Algorithm 1.
type Defense struct {
	cfg   Config
	mux   *mcu.PinMux
	meter *mcu.Meter
	stats Stats
	armed bool

	// Synchronization state: consecutive recessive bits seen while hunting
	// for SOF (cnt_sof in Algorithm 1).
	cntSOF int

	// Frame state (sof == true in Algorithm 1).
	inFrame bool
	cnt     int // frame position, SOF = 1, counting wire bits
	destuf  can.Destuffer
	idBits  int // unstuffed ID bits consumed (0-11)
	postID  int // payload bits consumed past the 11-bit ID field
	extFlag bool

	// Prevention state.
	attackFlag       bool // start_counterattack
	detectedAt       int  // FSM decision position within the ID (1-11)
	counterattacking bool
	pullRemaining    int
	pullWidth        int // the width the current pull started with

	// tel receives detection verdicts and counterattack pull spans; the zero
	// Probe is a no-op.
	tel telemetry.Probe

	// scanCache memoizes pure PassiveRun scans per committed-span identity
	// (direct-mapped; see the fast-path PassiveRun in runpath.go).
	scanCache []scanSlot
}

var _ bus.Node = (*Defense)(nil)

// New creates an armed Defense with prevention enabled.
func New(cfg Config) (*Defense, error) {
	if cfg.FSM == nil {
		return nil, ErrNoFSM
	}
	profile := cfg.Profile
	if profile.ClockHz == 0 {
		profile = mcu.ArduinoDue
	}
	cfg.PreventionEnabled = true
	return &Defense{
		cfg:   cfg,
		mux:   mcu.NewPinMux(),
		meter: mcu.NewMeter(profile),
		armed: true,
		// A freshly booted defense treats the bus as already idle, so the
		// first SOF after power-up is caught; attaching mid-frame instead
		// costs at most one frame of blindness until the next idle period.
		cntSOF: can.IdleForSOF,
	}, nil
}

// NewDetectionOnly creates a Defense that detects but never counterattacks.
func NewDetectionOnly(cfg Config) (*Defense, error) {
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.cfg.PreventionEnabled = false
	return d, nil
}

// Name returns the configured instance name.
func (d *Defense) Name() string { return d.cfg.Name }

// SetTelemetry wires the defense to a telemetry hub under its configured
// name. The defense emits EvDetect (with the FSM decision bit), EvPullStart,
// and EvPullEnd. A nil hub disables emission.
func (d *Defense) SetTelemetry(hub *telemetry.Hub) {
	d.tel = hub.Probe(d.cfg.Name)
}

// Stats returns a copy of the accumulated statistics.
func (d *Defense) Stats() Stats { return d.stats }

// Meter exposes the MCU cycle meter for CPU-utilization evaluation.
func (d *Defense) Meter() *mcu.Meter { return d.meter }

// Mux exposes the pin multiplexer (read-mostly; used by tests).
func (d *Defense) Mux() *mcu.PinMux { return d.mux }

// Arm enables the defense (the default after New).
func (d *Defense) Arm() { d.armed = true }

// Disarm makes the defense a pure pass-through: no detection, no pulls. It
// releases CAN_TX if a counterattack was in flight.
func (d *Defense) Disarm() {
	d.armed = false
	d.endFrame()
}

// Armed reports whether the defense is active.
func (d *Defense) Armed() bool { return d.armed }

// Drive implements bus.Node: the defense drives the wire only during a
// counterattack pull.
func (d *Defense) Drive(_ bus.BitTime) can.Level { return d.mux.DriveLevel() }

// Observe implements bus.Node: it is the per-bit timer interrupt handler of
// Algorithm 1.
func (d *Defense) Observe(t bus.BitTime, level can.Level) {
	d.mux.LatchRX(level)
	if !d.armed {
		return
	}
	d.meter.Charge(mcu.OpISREnterExit)
	d.meter.Charge(mcu.OpReadRX)
	active := d.inFrame
	defer func() { d.meter.EndInvocationAs(active) }()

	if d.inFrame {
		d.onFrameBit(t, level)
		return
	}
	d.onIdleBit(t, level)
}

// onIdleBit hunts for SOF: a dominant level after at least 11 recessive bits
// (Algorithm 1 lines 24-31).
func (d *Defense) onIdleBit(t bus.BitTime, level can.Level) {
	d.meter.Charge(mcu.OpIdleTrack)
	if level == can.Recessive {
		d.cntSOF++
		return
	}
	if d.cntSOF >= can.IdleForSOF {
		d.beginFrame(t)
	}
	d.cntSOF = 0
}

// beginFrame hard-synchronizes at the SOF bit: the frame counter, stuff
// tracker, and FSM are reset (the constant-time work the fudge factor
// compensates, Sec. IV-C).
func (d *Defense) beginFrame(_ bus.BitTime) {
	d.meter.Charge(mcu.OpFrameReset)
	d.inFrame = true
	d.cnt = 1 // SOF is frame position 1
	d.destuf.Reset()
	// Seed the stuff tracker with the dominant SOF bit.
	if _, err := d.destuf.Next(can.Dominant); err != nil {
		// Unreachable: a single bit cannot violate stuffing.
		d.endFrame()
		return
	}
	d.idBits = 0
	d.postID = 0
	d.extFlag = false
	d.attackFlag = false
	d.counterattacking = false
	d.cfg.FSM.Reset()
	d.stats.FramesObserved++
}

// onFrameBit processes one in-frame bit: stuff-bit removal, FSM stepping
// over the ID, and the counterattack window (Algorithm 1 lines 3-23).
func (d *Defense) onFrameBit(t bus.BitTime, level can.Level) {
	d.cnt++

	if d.counterattacking {
		d.meter.Charge(mcu.OpCounterattack)
		d.pullRemaining--
		if d.pullRemaining <= 0 {
			d.tel.Emit(int64(t), telemetry.EvPullEnd, int64(d.pullWidth), 0)
			d.mux.DisableTX()
			d.endFrame()
			return
		}
		d.mux.PullLow() // keep the pin low for the next bit
		return
	}

	d.meter.Charge(mcu.OpStuffTrack)
	payload, err := d.destuf.Next(level)
	if err != nil {
		// Six equal levels: an error frame is in progress (someone else
		// destroyed this frame, or the attacker's controller reacted before
		// our window). Abandon the frame and hunt for the next SOF.
		d.stats.AbortedFrames++
		d.endFrame()
		return
	}
	if !payload {
		return // stuff bit: not part of the ID (Algorithm 1 lines 6-8)
	}

	if d.idBits < can.IDBits {
		d.idBits++
		d.meter.Charge(mcu.OpFrameStore)
		if !d.attackFlag && d.cfg.FSM.Decided() == fsm.Undecided {
			d.meter.ChargeFSMStep(d.cfg.FSM.Size())
			if d.cfg.FSM.Step(level) == fsm.Malicious {
				d.attackFlag = true
				d.detectedAt = d.idBits
			}
		}
		return
	}

	// Payload bits past the ID field: frame position 13 onward in unstuffed
	// terms. This is where Algorithm 1 launches or skips the counterattack.
	d.postID++
	if !d.cfg.ExtendedAware {
		// The paper's behavior: strike at the first bit after the ID (the
		// RTR slot for base frames).
		d.decideAtStrikePoint(t)
		return
	}
	switch {
	case d.postID == 1:
		// RTR (base) or SRR (extended): wait for the IDE bit to learn the
		// format before committing.
		return
	case d.postID == 2:
		// The IDE bit discriminates: dominant = base, recessive = extended.
		if level == can.Dominant {
			d.decideAtStrikePoint(t)
			return
		}
		d.extFlag = true
		if !d.attackFlag {
			// Benign extended frame: nothing more to learn.
			d.endFrame()
		}
		return
	case d.extFlag && d.postID == 2+can.ExtLowBits+1:
		// The extended RTR bit just passed: arbitration is over, strike.
		d.decideAtStrikePoint(t)
		return
	default:
		return
	}
}

// decideAtStrikePoint resolves a completed detection: suppress for our own
// transmissions, record the detection, and launch the prevention pull.
func (d *Defense) decideAtStrikePoint(t bus.BitTime) {
	if d.attackFlag && d.cfg.SelfTransmitting != nil && d.cfg.SelfTransmitting() {
		// Our own controller is sending this frame; its ID is legitimately
		// ours, not a spoof. (A concurrent same-ID spoof collides in the
		// data field and retries when our controller is idle — caught then.
		// If our controller lost arbitration earlier in this frame, it is
		// no longer transmitting and this branch does not fire.)
		d.attackFlag = false
		d.endFrame()
		return
	}
	if d.attackFlag {
		d.stats.Detections++
		d.stats.DetectionBitsSum += d.detectedAt
		if d.detectedAt > d.stats.DetectionBitsMax {
			d.stats.DetectionBitsMax = d.detectedAt
		}
		d.tel.Emit(int64(t), telemetry.EvDetect, int64(d.detectedAt), 0)
		if d.cfg.OnDetect != nil {
			d.cfg.OnDetect(t, d.detectedAt)
		}
	}
	if d.attackFlag && d.cfg.PreventionEnabled {
		d.meter.Charge(mcu.OpCounterattack)
		d.mux.EnableTX()
		d.mux.PullLow()
		d.counterattacking = true
		d.attackFlag = false
		d.pullRemaining = d.cfg.PullBits
		if d.pullRemaining <= 0 {
			d.pullRemaining = CounterattackEndPos - CounterattackStartPos // 7 bits
		}
		d.pullWidth = d.pullRemaining
		d.stats.Counterattacks++
		d.tel.Emit(int64(t), telemetry.EvPullStart, int64(d.pullWidth), 0)
		if d.cfg.OnCounterattack != nil {
			d.cfg.OnCounterattack(t)
		}
		return
	}
	// Benign frame (or detection-only mode): nothing further to learn from
	// this frame; return to SOF hunting. The next SOF cannot be mistaken
	// before the frame ends because bit stuffing keeps any mid-frame
	// recessive run under 6 bits, while SOF needs 11.
	d.endFrame()
}

// endFrame releases the pin and resumes SOF hunting.
func (d *Defense) endFrame() {
	d.mux.DisableTX()
	d.inFrame = false
	d.cntSOF = 0
	d.counterattacking = false
	d.attackFlag = false
}
