package core

import (
	"testing"

	"michican/internal/can"
	"michican/internal/controller"
)

// The stealthy link-layer DoS of Palanca et al. [27] uses *remote* frames:
// data-less requests that occupy the bus at high priority. Algorithm 1's
// pull becomes effective from the IDE bit onward — one position past the
// remote frame's recessive RTR, i.e. already outside base-format
// arbitration — so remote attackers are eradicated like data-frame ones,
// in both defense modes.

func TestRemoteDoSEradicatedWhenUnaware(t *testing.T) {
	b, defense, att := newExtTestbed(t, Config{Name: "michican"})
	if err := att.Enqueue(can.Frame{ID: 0x064, Remote: true, RequestLen: 8}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 5000) {
		t.Fatalf("remote attacker not bused off (TEC=%d attempts=%d)",
			att.TEC(), att.Stats().TxAttempts)
	}
	if att.Stats().TxSuccess != 0 {
		t.Errorf("remote DoS frames leaked: %d", att.Stats().TxSuccess)
	}
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
	if defense.Stats().Counterattacks == 0 {
		t.Error("defense should have been striking")
	}
}

func TestRemoteDoSEradicatedWhenAware(t *testing.T) {
	b, _, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: true})
	if err := att.Enqueue(can.Frame{ID: 0x064, Remote: true, RequestLen: 8}); err != nil {
		t.Fatal(err)
	}
	if !b.RunUntil(func() bool { return att.State() == controller.BusOff }, 5000) {
		t.Fatalf("remote attacker not bused off (TEC=%d attempts=%d)",
			att.TEC(), att.Stats().TxAttempts)
	}
	if att.Stats().TxAttempts != 32 {
		t.Errorf("attempts = %d, want 32", att.Stats().TxAttempts)
	}
}

func TestBenignRemoteRequestPasses(t *testing.T) {
	// A remote request for a legitimate higher ID passes both modes.
	for _, aware := range []bool{false, true} {
		b, defense, att := newExtTestbed(t, Config{Name: "michican", ExtendedAware: aware})
		if err := att.Enqueue(can.Frame{ID: 0x200, Remote: true, RequestLen: 2}); err != nil {
			t.Fatal(err)
		}
		b.Run(300)
		if att.Stats().TxSuccess != 1 {
			t.Errorf("aware=%v: benign remote request blocked", aware)
		}
		if defense.Stats().Counterattacks != 0 {
			t.Errorf("aware=%v: counterattacked a benign remote request", aware)
		}
	}
}
