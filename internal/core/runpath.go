package core

import (
	"unsafe"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/fsm"
	"michican/internal/mcu"
	"michican/internal/telemetry"
)

var (
	_ bus.RunObserver      = (*Defense)(nil)
	_ bus.RunObserver      = (*ECU)(nil)
	_ bus.Transmitting     = (*ECU)(nil)
	_ bus.ContendCommitter = (*ECU)(nil)
)

// PassiveRun implements bus.RunObserver: a pure scan of the proposed span
// through Algorithm 1's per-bit logic, answering the longest prefix over
// which the defense keeps its TX pin released. A counterattack launch at span
// bit i still accepts i+1 bits — the pull only reaches the wire on the bit
// after the strike decision — and the next negotiation then sees the mux
// driving dominant and pins. The scan walks value copies (Destuffer,
// fsm.Cursor) so the real state is untouched if the bus discards the span.
func (d *Defense) PassiveRun(_ bus.BitTime, frameBit int, levels []can.Level) int {
	return d.passiveScan(frameBit, levels, d.selfNow())
}

// selfNow answers the SelfTransmitting callback (false when unset).
func (d *Defense) selfNow() bool {
	return d.cfg.SelfTransmitting != nil && d.cfg.SelfTransmitting()
}

// passiveScan is PassiveRun with the SelfTransmitting answer supplied by the
// caller. The distinction matters for frameBit-0 spans committed by the host
// ECU's own controller (a pending SOF): at negotiation time the controller is
// not yet transmitting, so the live callback answers false, but the frame the
// span carries is the host's own — the strike decision inside the span must
// be scanned with self true, as the exact path would decide it mid-frame.
func (d *Defense) passiveScan(frameBit int, levels []can.Level, self bool) int {
	if d.mux.DriveLevel() == can.Dominant {
		return 0
	}
	if !d.armed {
		return len(levels)
	}
	// The scan is a pure function of the span's levels and a tiny entry
	// state, and committed spans have stable identities (immutable memoized
	// plans), so the recurring cases are memoized per span: the SOF baseline
	// (cnt == 1 — frame counter at SOF, stuff tracker seeded, FSM at the
	// root; parameterized by the self answer, which is span-invariant), the
	// join baseline (hunting with cnt_sof at threshold, span starts at a
	// frame's SOF — bit 0 synchronizes, the rest replays from the post-SOF
	// baseline), and the idle hunt (parameterized by cnt_sof saturated at the
	// SOF threshold — beyond it the exact count cannot change where the scan
	// stops).
	var mode uint8
	join := false
	switch {
	case d.inFrame && d.cnt == 1:
		mode = scanModeSOF
		if self {
			mode = scanModeSOFSelf
		}
	case d.inFrame:
		return d.frameScan(levels, self)
	case frameBit == 0 && d.cntSOF >= can.IdleForSOF && levels[0] == can.Dominant:
		join = true
		mode = scanModeJoin
		if self {
			mode = scanModeJoinSelf
		}
	default:
		run := d.cntSOF
		if run > can.IdleForSOF {
			run = can.IdleForSOF
		}
		mode = uint8(run)
	}
	key := &levels[0]
	if d.scanCache == nil {
		d.scanCache = make([]scanSlot, 1<<scanSlotBits)
	}
	// Two-way set-associative probe: a sticky collision pair in a
	// direct-mapped table would rescan the full span on every probe.
	idx := scanIdx(key, mode) &^ 1
	s := &d.scanCache[idx]
	if s.ptr != key || s.mode != mode {
		alt := &d.scanCache[idx|1]
		if alt.ptr == key && alt.mode == mode {
			*s, *alt = *alt, *s // promote the hit to the first way
		} else {
			s = nil
		}
	}
	// The scan is causal: whether bit j is accepted depends only on bits
	// 0..j. A recorded stop short of the scanned length therefore holds
	// for every span length; only "accepted everything" needs a rescan
	// when a longer span over the same bits shows up.
	if s != nil && (s.stop < s.scanned || len(levels) <= int(s.scanned)) {
		if n := int(s.stop); n < len(levels) {
			return n
		}
		return len(levels)
	}
	var n int
	switch {
	case d.inFrame:
		n = d.frameScan(levels, self)
	case join:
		n = d.joinScan(levels, self)
	default:
		n = idleScanLevels(levels, d.cntSOF)
	}
	if s == nil {
		d.scanCache[idx|1] = d.scanCache[idx] // demote the incumbent
		s = &d.scanCache[idx]
	}
	*s = scanSlot{ptr: key, mode: mode, scanned: int32(len(levels)), stop: int32(n)}
	return n
}

// scanSlot is one direct-mapped scan memo entry: span identity (the strong
// pointer keeps the plan's backing array alive, so the address pins the
// bits), the entry mode, the longest prefix scanned, and where the scan
// stopped within it (== scanned when every bit stayed passive).
type scanSlot struct {
	ptr     *can.Level
	scanned int32
	stop    int32
	mode    uint8
}

// scanSlotBits sizes the memo: 2^scanSlotBits entries organised as two-way
// sets (message set × rolling-counter rotation × a handful of entry modes;
// collisions merely rescan). Sized generously — a realistic matrix's full
// rotation is ~8k span identities, and round-robin rotation through a set
// holding three or more of them would defeat the two-way LRU, rescanning
// those spans every cycle.
const scanSlotBits = 16

// scanIdx hashes a span identity and entry mode into the memo.
func scanIdx(p *can.Level, mode uint8) uint {
	h := uintptr(unsafe.Pointer(p)) >> 3
	h ^= h >> scanSlotBits
	return uint(h^uintptr(mode)<<7) & (1<<scanSlotBits - 1)
}

const (
	// Modes 0..can.IdleForSOF are idle scans keyed by the saturated
	// recessive run; the SOF- and join-baseline modes follow.
	scanModeSOF      = can.IdleForSOF + 1
	scanModeSOFSelf  = can.IdleForSOF + 2
	scanModeJoin     = can.IdleForSOF + 3
	scanModeJoinSelf = can.IdleForSOF + 4
)

// frameScan replays onFrameBit over the span from the defense's live state,
// without mutating it.
func (d *Defense) frameScan(levels []can.Level, self bool) int {
	return d.frameScanFrom(d.destuf, d.cfg.FSM.Cursor(),
		d.idBits, d.postID, d.extFlag, d.attackFlag, self, levels)
}

// joinScan answers passivity for a span that begins at a frame's SOF while
// the defense is hunting with cnt_sof at or past the threshold: bit 0
// hard-synchronizes (always passive — the defense never drives at SOF), and
// the rest replays Algorithm 1 from the post-SOF baseline — stuff tracker
// seeded with the dominant SOF bit, FSM at its root, all flags clear —
// without mutating anything.
func (d *Defense) joinScan(levels []can.Level, self bool) int {
	var destuf can.Destuffer
	destuf.Reset()
	destuf.Next(can.Dominant)
	return 1 + d.frameScanFrom(destuf, d.cfg.FSM.RootCursor(),
		0, 0, false, false, self, levels[1:])
}

// frameScanFrom replays onFrameBit over the span from an explicit in-frame
// entry state, mutating only the copies it was handed.
func (d *Defense) frameScanFrom(destuf can.Destuffer, cur fsm.Cursor,
	idBits, postID int, extFlag, attackFlag, self bool, levels []can.Level) int {
	for i, level := range levels {
		payload, err := destuf.Next(level)
		if err != nil {
			// Six equal levels: the frame is abandoned and SOF hunting
			// resumes with a zeroed counter.
			return i + 1 + idleScanLevels(levels[i+1:], 0)
		}
		if !payload {
			continue
		}
		if idBits < can.IDBits {
			idBits++
			if !attackFlag && cur.Decided() == fsm.Undecided {
				if cur.Step(level) == fsm.Malicious {
					attackFlag = true
				}
			}
			continue
		}
		postID++
		if !d.cfg.ExtendedAware {
			return i + 1 + d.scanStrike(attackFlag, self, levels[i+1:])
		}
		switch {
		case postID == 1:
			// RTR/SRR: waiting for the IDE bit.
		case postID == 2:
			if level == can.Dominant {
				return i + 1 + d.scanStrike(attackFlag, self, levels[i+1:])
			}
			extFlag = true
			if !attackFlag {
				// Benign extended frame: endFrame, back to SOF hunting.
				return i + 1 + idleScanLevels(levels[i+1:], 0)
			}
		case extFlag && postID == 2+can.ExtLowBits+1:
			return i + 1 + d.scanStrike(attackFlag, self, levels[i+1:])
		}
	}
	return len(levels)
}

// scanStrike resolves the strike point in a pure scan: rest holds the span
// bits after the strike bit; the return value is how many of them stay
// passive.
func (d *Defense) scanStrike(attackFlag, self bool, rest []can.Level) int {
	if attackFlag && d.cfg.PreventionEnabled && !self {
		return 0 // the pull reaches the wire on the next bit
	}
	// Benign, detection-only, or own transmission: endFrame, SOF hunting.
	return idleScanLevels(rest, 0)
}

// idleScanLevels counts the prefix an SOF-hunting defense consumes without
// synchronizing to a frame: it stops at a dominant bit preceded by >= 11
// recessives (a true SOF — left to the exact path, or to a fresh span
// negotiated after it). Committed frame spans contain no such bit, so this
// normally accepts everything.
func idleScanLevels(levels []can.Level, run int) int {
	for i, level := range levels {
		if level == can.Dominant {
			if run >= can.IdleForSOF {
				return i
			}
			run = 0
		} else {
			run++
		}
	}
	return len(levels)
}

// ObserveRun implements bus.RunObserver. In-frame bits advance through a
// batched walk with per-class meter folding — the defense leaves the frame
// within ~20 bits of SOF (strike point or benign verdict), so this stays a
// short prefix — and the out-of-frame remainder is accounted in O(1) per
// segment, with the meter charged for exactly the idle invocations
// Algorithm 1 would have run.
func (d *Defense) ObserveRun(from bus.BitTime, levels []can.Level) {
	if !d.armed {
		d.mux.LatchRX(levels[len(levels)-1])
		return
	}
	// Every delivered span is clamped to this defense's own PassiveRun answer
	// (via the bus negotiation, or via the commitment clamps on the
	// committing ECU), so the only bit that can synchronize as SOF is the
	// span's first (a frameBit-0 span): it replays through the exact idle
	// handler — same invocation charges, hard-synchronizing when cnt_sof is
	// at threshold — and the in-frame walk takes over from bit 1. Once the
	// defense is (or falls) out of the frame, the remainder is one SOF-free
	// idle batch.
	i := 0
	if !d.inFrame && levels[0] == can.Dominant {
		d.meter.Charge(mcu.OpISREnterExit)
		d.meter.Charge(mcu.OpReadRX)
		d.onIdleBit(from, levels[0])
		d.meter.EndInvocationAs(false)
		d.mux.LatchRX(levels[0])
		i = 1
	}
	for i < len(levels) && d.inFrame {
		i += d.frameRunBatch(from+bus.BitTime(i), levels[i:])
	}
	if i < len(levels) {
		d.idleBatch(levels[i:])
	}
}

// frameRunBatch consumes a span prefix while in-frame, mutating state
// exactly as per-bit Observe would. Bits with uniform handler cost (stuff
// tracking, ID stepping, post-ID waits, counterattack ticks) fold their
// meter charges per class via ChargeInvocationsAs; the rare decision bit —
// where decideAtStrikePoint runs and may charge mid-invocation — closes its
// invocation individually, reproducing the per-bit accounting bit for bit.
// Returns the number of bits consumed (all of levels, or through the bit on
// which the defense left the frame).
func (d *Defense) frameRunBatch(from bus.BitTime, levels []can.Level) int {
	var trackN, idStepN, idStoreN, caN int64
	i := 0
	for i < len(levels) && d.inFrame {
		level := levels[i]
		i++
		d.cnt++
		if d.counterattacking {
			caN++
			d.pullRemaining--
			if d.pullRemaining <= 0 {
				d.tel.Emit(int64(from)+int64(i-1), telemetry.EvPullEnd, int64(d.pullWidth), 0)
				d.mux.DisableTX()
				d.endFrame()
				break
			}
			d.mux.PullLow()
			continue
		}
		payload, err := d.destuf.Next(level)
		if err != nil {
			trackN++
			d.stats.AbortedFrames++
			d.endFrame()
			break
		}
		if !payload {
			trackN++
			continue
		}
		if d.idBits < can.IDBits {
			d.idBits++
			if !d.attackFlag && d.cfg.FSM.Decided() == fsm.Undecided {
				idStepN++
				if d.cfg.FSM.Step(level) == fsm.Malicious {
					d.attackFlag = true
					d.detectedAt = d.idBits
				}
			} else {
				idStoreN++
			}
			continue
		}
		d.postID++
		if !d.cfg.ExtendedAware {
			d.strikeBit(from + bus.BitTime(i-1))
			continue
		}
		switch {
		case d.postID == 1:
			trackN++
		case d.postID == 2:
			if level == can.Dominant {
				d.strikeBit(from + bus.BitTime(i-1))
				continue
			}
			trackN++
			d.extFlag = true
			if !d.attackFlag {
				d.endFrame()
			}
		case d.extFlag && d.postID == 2+can.ExtLowBits+1:
			d.strikeBit(from + bus.BitTime(i-1))
		default:
			trackN++
		}
	}
	base := d.meter.OpCost(mcu.OpISREnterExit) + d.meter.OpCost(mcu.OpReadRX)
	track := base + d.meter.OpCost(mcu.OpStuffTrack)
	d.meter.ChargeInvocationsAs(trackN, track, true)
	store := track + d.meter.OpCost(mcu.OpFrameStore)
	d.meter.ChargeInvocationsAs(idStoreN, store, true)
	d.meter.ChargeInvocationsAs(idStepN, store+d.meter.FSMStepCostOf(d.cfg.FSM.Size()), true)
	d.meter.ChargeInvocationsAs(caN, base+d.meter.OpCost(mcu.OpCounterattack), true)
	if i > 0 {
		d.mux.LatchRX(levels[i-1])
	}
	return i
}

// strikeBit runs the strike-point decision for one bit with exact per-bit
// meter accounting (the decision may charge extra operations into the same
// handler invocation).
func (d *Defense) strikeBit(t bus.BitTime) {
	d.meter.Charge(mcu.OpISREnterExit)
	d.meter.Charge(mcu.OpReadRX)
	d.meter.Charge(mcu.OpStuffTrack)
	d.decideAtStrikePoint(t)
	d.meter.EndInvocationAs(true)
}

// idleBatch accounts a run of out-of-frame bits containing no SOF: the RX
// latch ends at the last level, cnt_sof becomes the trailing recessive run
// (accumulating if the whole segment is recessive), and the meter is charged
// for n idle invocations.
func (d *Defense) idleBatch(seg []can.Level) {
	k := 0
	for i := len(seg) - 1; i >= 0 && seg[i] == can.Recessive; i-- {
		k++
	}
	if k == len(seg) {
		d.cntSOF += k
	} else {
		d.cntSOF = k
	}
	d.mux.LatchRX(seg[len(seg)-1])
	d.meter.ChargeIdleInvocations(int64(len(seg)), mcu.OpISREnterExit, mcu.OpReadRX, mcu.OpIdleTrack)
}

// CommittedBits implements bus.Transmitting for a defended ECU: the
// controller's commitment, clamped by the defense's own passivity over that
// stream. The bus never queries PassiveRun on the committing node, so the
// defense sharing this attachment point must bound the span here — it could
// otherwise decide to pull CAN_TX low mid-span (it never does for the host's
// own legitimate frames, which SelfTransmitting suppresses, but the clamp
// keeps that reasoning local).
func (e *ECU) CommittedBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	bits, h := e.Controller.CommittedBits(now)
	if h <= now || len(bits) == 0 || e.Defense == nil {
		return bits, h
	}
	k := e.Defense.PassiveRun(now, e.Controller.FrameBit(), bits)
	if k <= 0 {
		return nil, now
	}
	if k < len(bits) {
		bits = bits[:k]
		h = now + bus.BitTime(k)
	}
	return bits, h
}

// FrameBit implements bus.Transmitting.
func (e *ECU) FrameBit() int { return e.Controller.FrameBit() }

// contendBits returns the defense's committed stream for the contested-window
// path: the remainder of an in-progress counterattack pull, an unconditional
// dominant run (the pull ignores the wire by design — that is the attack
// suppression mechanism). The run's length is exactly pullRemaining, because
// frameRunBatch/onFrameBit decrement it per observed bit and release the pin
// when it reaches zero.
func (d *Defense) contendBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	if !d.counterattacking || d.pullRemaining <= 0 {
		return nil, now
	}
	run := can.DominantRun(d.pullRemaining)
	return run, now + bus.BitTime(len(run))
}

// ContendBits implements bus.ContendCommitter for a defended ECU, combining
// the two halves that share this attachment point:
//
//   - controller commitment only: as CommittedBits, clamped by the defense's
//     own passivity over the stream;
//   - defense pull only: the dominant run, clamped by the controller's
//     passivity under it (contendScan — the receiver typically stuff-errors
//     partway through the pull, and that detection bit bounds the span);
//   - both (the controller signalling an error while the pull continues):
//     clamped at the first bit where the halves disagree — there the wire
//     would override the controller's recessive, and that bit-error bit must
//     run exactly.
//
// In every case the returned stream equals both halves' driven levels over
// its length, so the ECU behaves as a single committer.
func (e *ECU) ContendBits(now bus.BitTime) ([]can.Level, bus.BitTime) {
	cb, ch := e.Controller.ContendBits(now)
	if ch <= now {
		cb = nil
	}
	if e.Defense == nil {
		if len(cb) == 0 {
			return nil, now
		}
		return cb, now + bus.BitTime(len(cb))
	}
	db, dh := e.Defense.contendBits(now)
	if dh <= now {
		db = nil
	}
	switch {
	case len(cb) == 0 && len(db) == 0:
		return nil, now
	case len(db) == 0:
		// A plan-backed stream (frameBit >= 0) is always the host
		// controller's own frame — including a pending-SOF commitment, where
		// the live SelfTransmitting answer is still false — so the defense
		// scans it with self true; flag runs (frameBit -1) keep the live
		// answer, matching the exact path's mid-flag strike decisions.
		fb := e.Controller.ContendFrameBit()
		k := e.Defense.passiveScan(fb, cb, fb >= 0 || e.Defense.selfNow())
		if k <= 0 {
			return nil, now
		}
		cb = cb[:k]
		return cb, now + bus.BitTime(k)
	case len(cb) == 0:
		k := e.Controller.PassiveRun(now, -1, db)
		if k <= 0 {
			return nil, now
		}
		db = db[:k]
		return db, now + bus.BitTime(k)
	}
	n := len(cb)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		if cb[i] != db[i] {
			n = i
			break
		}
	}
	if n == 0 {
		return nil, now
	}
	return cb[:n], now + bus.BitTime(n)
}

// ContendFrameBit implements bus.ContendCommitter: the controller's plan
// position when its stream is in play, -1 when the commitment is the
// defense's pull alone (the controller then reports -1 itself, since it is
// not a mid-frame transmitter).
func (e *ECU) ContendFrameBit() int { return e.Controller.ContendFrameBit() }

// PassiveRun implements bus.RunObserver: both halves of the ECU must stay
// passive.
func (e *ECU) PassiveRun(now bus.BitTime, frameBit int, levels []can.Level) int {
	n := e.Controller.PassiveRun(now, frameBit, levels)
	if n == 0 || e.Defense == nil {
		return n
	}
	if k := e.Defense.PassiveRun(now, frameBit, levels); k < n {
		n = k
	}
	return n
}

// ObserveRun implements bus.RunObserver, preserving per-bit delivery order
// across the halves: the two only interact through the wire and the
// SelfTransmitting callback, and the controller's transmitting flag is
// span-invariant, so controller-then-defense batching matches interleaving.
func (e *ECU) ObserveRun(from bus.BitTime, levels []can.Level) {
	e.Controller.ObserveRun(from, levels)
	if e.Defense != nil {
		e.Defense.ObserveRun(from, levels)
	}
}
