package core

import (
	"math/rand"
	"testing"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
)

// glitchNode injects random dominant bits with a fixed probability.
type glitchNode struct {
	rng  *rand.Rand
	prob float64
}

func (g *glitchNode) Drive(bus.BitTime) can.Level {
	if g.rng.Float64() < g.prob {
		return can.Dominant
	}
	return can.Recessive
}

func (g *glitchNode) Observe(bus.BitTime, can.Level) {}

// TestNoiseFalsePositivesNeverConfineBenignNode verifies the paper's
// Sec. IV-E argument: a bit flip can make a legitimate frame look malicious
// for one attempt (the defense may even counterattack it), but a benign node
// needs 32 *consecutive* destroyed attempts to reach bus-off — under
// sporadic noise the probability is effectively zero, because every
// successful retransmission decrements the TEC again.
func TestNoiseFalsePositivesNeverConfineBenignNode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := bus.New(bus.Rate50k)

	// Defender at 0x173; benign peer at 0x064 (legitimate, so not in D).
	defense := buildDefense(t, []can.ID{0x064, 0x173}, 1, Config{Name: "michican"})
	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	b.Attach(NewECU(defCtl, defense))

	benign := controller.New(controller.Config{Name: "benign", AutoRecover: true})
	b.Attach(benign)
	b.Attach(&glitchNode{rng: rng, prob: 0.001})

	// The benign node streams frames continuously for 4 simulated seconds.
	const want = 1000
	sentReq := 0
	for step := int64(0); step < 200_000; step++ {
		if benign.PendingTx() == 0 && sentReq < want {
			if err := benign.Enqueue(can.Frame{ID: 0x064, Data: []byte{byte(sentReq)}}); err != nil {
				t.Fatal(err)
			}
			sentReq++
		}
		b.Step()
	}

	if benign.Stats().BusOffEvents != 0 {
		t.Errorf("benign node reached bus-off %d times under sporadic noise",
			benign.Stats().BusOffEvents)
	}
	if benign.State() == controller.BusOff {
		t.Error("benign node confined")
	}
	if benign.Stats().TxSuccess < want*9/10 {
		t.Errorf("benign throughput collapsed: %d/%d", benign.Stats().TxSuccess, sentReq)
	}
	// Noise may cause occasional false detections (a corrupted ID image);
	// they must stay rare relative to traffic.
	fp := defense.Stats().Counterattacks
	if fp > sentReq/20 {
		t.Errorf("false counterattacks = %d over %d frames (>5%%)", fp, sentReq)
	}
	t.Logf("noise run: %d frames delivered, %d false detections/counterattacks, benign TEC=%d",
		benign.Stats().TxSuccess, fp, benign.TEC())
}
