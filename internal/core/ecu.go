package core

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/telemetry"
)

// ECU bundles an ordinary application CAN controller with the MichiCAN
// defense patch, sharing the same physical attachment point — the paper's
// picture of a defended node, where the integrated CAN controller keeps
// doing the ECU's normal job while the defense taps CAN_RX and occasionally
// commandeers CAN_TX through the pin mux.
type ECU struct {
	// Controller is the ECU's normal protocol controller (sends the ECU's
	// own traffic, ACKs, raises error flags).
	Controller *controller.Controller
	// Defense is the MichiCAN patch; nil for an unpatched ECU.
	Defense *Defense
}

var _ bus.Node = (*ECU)(nil)

// NewECU wires a controller and an optional defense into one bus node. The
// defense learns to recognize the controller's own transmissions so it never
// counterattacks its host's legitimate frames.
func NewECU(c *controller.Controller, d *Defense) *ECU {
	if d != nil && d.cfg.SelfTransmitting == nil {
		d.cfg.SelfTransmitting = c.Transmitting
	}
	return &ECU{Controller: c, Defense: d}
}

// SetTelemetry wires both halves of the ECU to a telemetry hub: the
// controller under its configured name, the defense under its own.
func (e *ECU) SetTelemetry(hub *telemetry.Hub) {
	e.Controller.SetTelemetry(hub)
	if e.Defense != nil {
		e.Defense.SetTelemetry(hub)
	}
}

// Drive implements bus.Node: the wire sees the wired-AND of the controller's
// output and the defense's counterattack pull (they share the TX pin).
func (e *ECU) Drive(t bus.BitTime) can.Level {
	level := e.Controller.Drive(t)
	if e.Defense != nil {
		level = level.And(e.Defense.Drive(t))
	}
	return level
}

// Observe implements bus.Node: both halves sample the same CAN_RX line.
func (e *ECU) Observe(t bus.BitTime, level can.Level) {
	e.Controller.Observe(t, level)
	if e.Defense != nil {
		e.Defense.Observe(t, level)
	}
}
