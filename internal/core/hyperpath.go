package core

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/mcu"
	"michican/internal/telemetry"
)

var (
	_ bus.Hypering = (*Defense)(nil)
	_ bus.Hypering = (*ECU)(nil)
)

// The defense's hyperperiod support: a chain is made of splice windows —
// whose per-window summaries (splicepath.go) already fold the meter classes,
// FSM walk, and detection verdict bit-identically — plus idle skips and lone
// recessive exact steps, so the entry→exit difference is a handful of
// counter folds and exit absolutes.
//
// Dead state the match may ignore, mirroring the controller's analysis: the
// frame-tracking fields (cnt, destuf, idBits, postID, extFlag, detectedAt)
// and the FSM's live cursor are all reset by beginFrame before any read, and
// anchors exclude in-frame states, so they need neither matching nor
// restoring. The meter's monotone accumulators fold through mcu.MeterState
// diffs; its MaxPerBit and in-flight PerBit are entry-matched, which makes
// the diff's absolute MaxPerBit exact.
type defHyperState struct {
	armed  bool
	cntSOF int
	rx     can.Level
	perBit int64
	maxPB  int64
	detMax int
	// Seal-time decline stash (not matched).
	counterattacks int
	aborted        int
	frames         int
	detections     int
	detSum         int
	meter          mcu.MeterState
}

type defHyperDelta struct {
	dFrames     int
	dDetections int
	dDetSum     int
	detMax      int // exit absolute (entry matched)
	cntSOF      int // exit absolute
	rx          can.Level
	meter       mcu.MeterState // diff; MaxPerBit carries the exit absolute
}

func defMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// hyperAnchorable reports whether the defense is at a chain-safe boundary:
// hunting for SOF with no counterattack (or pending verdict) in flight, so
// every frame-tracking field is provably dead.
func (d *Defense) hyperAnchorable() bool {
	return !d.inFrame && !d.counterattacking && !d.attackFlag && !d.mux.TXEnabled()
}

// HyperFP implements bus.Hypering.
func (d *Defense) HyperFP(_ bus.BitTime, hub *telemetry.Hub) (uint64, bool) {
	if !d.hyperAnchorable() {
		return 0, false
	}
	if d.cfg.OnDetect != nil {
		// Chains can contain detection verdicts (a detection-only defense
		// splices flagged windows); the stats and EvDetect tape replay, but
		// an external callback would not.
		return 0, false
	}
	if ph := d.tel.Hub(); ph != nil && ph != hub {
		return 0, false
	}
	st := d.meter.State()
	h := uint64(14695981039346656037)
	h = defMix(h, uint64(d.cntSOF)<<8|uint64(d.mux.ReadRX())<<1|b2uDef(d.armed))
	h = defMix(h, uint64(st.PerBit))
	h = defMix(h, uint64(st.MaxPerBit))
	h = defMix(h, uint64(d.stats.DetectionBitsMax))
	return h, true
}

func b2uDef(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// HyperSnap implements bus.Hypering.
func (d *Defense) HyperSnap(_ bus.BitTime) any {
	st := d.meter.State()
	return &defHyperState{
		armed:          d.armed,
		cntSOF:         d.cntSOF,
		rx:             d.mux.ReadRX(),
		perBit:         st.PerBit,
		maxPB:          st.MaxPerBit,
		detMax:         d.stats.DetectionBitsMax,
		counterattacks: d.stats.Counterattacks,
		aborted:        d.stats.AbortedFrames,
		frames:         d.stats.FramesObserved,
		detections:     d.stats.Detections,
		detSum:         d.stats.DetectionBitsSum,
		meter:          st,
	}
}

// HyperMatch implements bus.Hypering.
func (d *Defense) HyperMatch(_ bus.BitTime, snap any) bool {
	s, ok := snap.(*defHyperState)
	if !ok {
		return false
	}
	if !d.hyperAnchorable() {
		return false
	}
	st := d.meter.State()
	return d.armed == s.armed && d.cntSOF == s.cntSOF &&
		d.mux.ReadRX() == s.rx &&
		st.PerBit == s.perBit && st.MaxPerBit == s.maxPB &&
		d.stats.DetectionBitsMax == s.detMax
}

// HyperSeal implements bus.Hypering.
func (d *Defense) HyperSeal(_ bus.BitTime, snap any, _ int) (any, bool) {
	s, ok := snap.(*defHyperState)
	if !ok {
		return nil, false
	}
	if !d.hyperAnchorable() {
		return nil, false
	}
	if d.stats.Counterattacks != s.counterattacks || d.stats.AbortedFrames != s.aborted {
		// Pulls and aborts only happen mid-frame, which chain ops never
		// enter; decline rather than trust that proof.
		return nil, false
	}
	return &defHyperDelta{
		dFrames:     d.stats.FramesObserved - s.frames,
		dDetections: d.stats.Detections - s.detections,
		dDetSum:     d.stats.DetectionBitsSum - s.detSum,
		detMax:      d.stats.DetectionBitsMax,
		cntSOF:      d.cntSOF,
		rx:          d.mux.ReadRX(),
		meter:       d.meter.State().Diff(s.meter),
	}, true
}

// HyperApply implements bus.Hypering.
func (d *Defense) HyperApply(_ bus.BitTime, delta any) {
	dd := delta.(*defHyperDelta)
	d.stats.FramesObserved += dd.dFrames
	d.stats.Detections += dd.dDetections
	d.stats.DetectionBitsSum += dd.dDetSum
	d.stats.DetectionBitsMax = dd.detMax
	d.cntSOF = dd.cntSOF
	d.mux.LatchRX(dd.rx)
	d.meter.ApplyDelta(dd.meter)
}

// ecuHyperPair composes the ECU's two halves for snapshots and deltas.
type ecuHyperPair struct {
	ctl any
	def any
}

// HyperFP implements bus.Hypering for the composed ECU node.
func (e *ECU) HyperFP(now bus.BitTime, hub *telemetry.Hub) (uint64, bool) {
	h, ok := e.Controller.HyperFP(now, hub)
	if !ok {
		return 0, false
	}
	if e.Defense == nil {
		return h, true
	}
	hd, ok := e.Defense.HyperFP(now, hub)
	if !ok {
		return 0, false
	}
	return defMix(h, hd), true
}

// HyperSnap implements bus.Hypering.
func (e *ECU) HyperSnap(now bus.BitTime) any {
	p := &ecuHyperPair{ctl: e.Controller.HyperSnap(now)}
	if e.Defense != nil {
		p.def = e.Defense.HyperSnap(now)
	}
	return p
}

// HyperMatch implements bus.Hypering.
func (e *ECU) HyperMatch(now bus.BitTime, snap any) bool {
	p, ok := snap.(*ecuHyperPair)
	if !ok {
		return false
	}
	if !e.Controller.HyperMatch(now, p.ctl) {
		return false
	}
	if e.Defense == nil {
		return p.def == nil
	}
	return p.def != nil && e.Defense.HyperMatch(now, p.def)
}

// HyperSeal implements bus.Hypering.
func (e *ECU) HyperSeal(now bus.BitTime, snap any, windows int) (any, bool) {
	p, ok := snap.(*ecuHyperPair)
	if !ok {
		return nil, false
	}
	dc, ok := e.Controller.HyperSeal(now, p.ctl, windows)
	if !ok {
		return nil, false
	}
	out := &ecuHyperPair{ctl: dc}
	if e.Defense != nil {
		dd, ok := e.Defense.HyperSeal(now, p.def, windows)
		if !ok {
			return nil, false
		}
		out.def = dd
	}
	return out, true
}

// HyperApply implements bus.Hypering.
func (e *ECU) HyperApply(now bus.BitTime, delta any) {
	p := delta.(*ecuHyperPair)
	e.Controller.HyperApply(now, p.ctl)
	if e.Defense != nil {
		e.Defense.HyperApply(now, p.def)
	}
}
