package core

import (
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/fsm"
	"michican/internal/mcu"
	"michican/internal/telemetry"
)

var (
	_ bus.Splicing = (*ECU)(nil)
	_ bus.Splicing = (*Defense)(nil)
)

// spliceMemoEntry is the defense's entry in a splice window's per-node memo
// slot (bus.SpliceMemo): the compiled summary for each SelfTransmitting
// answer — the only live input the in-window walk consults — plus a done
// flag distinguishing "compiled to nil" (the window is known unsummarizable,
// so repeat offers skip the compile walk) from "not compiled yet". The entry
// is reached by a pointer chase through the offerer's transmit plan, so no
// table probe or identity hash is involved; it dies with the plan.
type spliceMemoEntry struct {
	n    int // resolved-window length the entry was compiled for
	done [2]bool
	sums [2]*spliceSummary
}

// spliceSummary is the precompiled effect of one whole resolved frame window
// on a defense entering from the synced-idle baseline (out of frame, cnt_sof
// at or past the SOF threshold): the per-class invocation counts Algorithm 1
// would have charged, the FSM state at frame exit, the detection outcome, and
// the cnt_sof the trailing bits leave behind. Applying it is bit-identical to
// ObserveRun over the window — dead fields (cnt, the stuff tracker, idBits,
// postID, extFlag) are reset by the next beginFrame before anything reads
// them, so the summary does not carry them.
type spliceSummary struct {
	n         int   // window length the summary was compiled for
	trackN    int64 // stuff-track-class invocations (incl. the strike bit)
	idStoreN  int64 // ID bits stored after the FSM decided
	idStepN   int64 // ID bits stepped through the FSM
	idleN     int64 // out-of-frame invocations after the defense left the frame
	exitSOF   int   // cnt_sof at the window's last bit
	cursor    fsm.Cursor
	flagged   bool // the FSM reached Malicious inside the ID
	flaggedAt int  // decision position (1-11), valid when flagged
	strikeOff int  // window offset of the strike decision, valid when flagged
}

// spliceQuery answers the bus's whole-window passivity question for the
// defense half: with the TX pin released, the defense must stay passive over
// every bit of the resolved window. From the synced-idle baseline that is
// exactly the question compileSplice answers — a summary exists iff the walk
// never pulls the pin and exits clean — so the memoized summary doubles as
// the promise, and the apply that follows reuses it. Off the baseline the
// generic passive scan decides. Any decline falls through to the lower
// tiers.
func (d *Defense) spliceQuery(resolved []can.Level, self bool, slot *any) bool {
	if d.mux.DriveLevel() == can.Dominant {
		return false
	}
	if !d.armed {
		return true
	}
	if d.inFrame || d.cntSOF < can.IdleForSOF {
		return d.passiveScan(0, resolved, self) == len(resolved)
	}
	return d.spliceSummaryFor(resolved, self, slot) != nil
}

// spliceApply folds one accepted window into the defense. From the
// synced-idle baseline the precompiled summary advances everything in O(1);
// from any other entry state (hunting below the SOF threshold, or mid-frame)
// the exact ObserveRun machinery runs instead — spliceQuery accepted the
// whole window, so ObserveRun is passive over it and remains bit-exact. The
// splice never depends on the summary for correctness, only for speed.
func (d *Defense) spliceApply(now bus.BitTime, resolved []can.Level, self bool, slot *any) {
	if !d.armed {
		d.mux.LatchRX(resolved[len(resolved)-1])
		return
	}
	if d.inFrame || d.cntSOF < can.IdleForSOF {
		d.ObserveRun(now, resolved)
		return
	}
	s := d.spliceSummaryFor(resolved, self, slot)
	if s == nil {
		d.ObserveRun(now, resolved)
		return
	}

	// SOF bit: one idle-class invocation that hard-synchronizes (Charge
	// ISR+ReadRX, onIdleBit's IdleTrack, beginFrame's FrameReset) and counts
	// the frame. Entry cnt_sof past the threshold behaves identically to
	// exactly at it, so the summary holds for the whole baseline class.
	d.stats.FramesObserved++
	m := d.meter
	base := m.OpCost(mcu.OpISREnterExit) + m.OpCost(mcu.OpReadRX)
	m.ChargeInvocationsAs(1, base+m.OpCost(mcu.OpIdleTrack)+m.OpCost(mcu.OpFrameReset), false)

	// In-frame bits, folded per handler-cost class exactly as frameRunBatch
	// folds them (the strike bit costs base+StuffTrack when no pull launches,
	// so it rides in the track class).
	track := base + m.OpCost(mcu.OpStuffTrack)
	m.ChargeInvocationsAs(s.trackN, track, true)
	store := track + m.OpCost(mcu.OpFrameStore)
	m.ChargeInvocationsAs(s.idStoreN, store, true)
	m.ChargeInvocationsAs(s.idStepN, store+m.FSMStepCostOf(d.cfg.FSM.Size()), true)

	// Out-of-frame remainder after the defense left the frame.
	m.ChargeIdleInvocations(s.idleN, mcu.OpISREnterExit, mcu.OpReadRX, mcu.OpIdleTrack)

	d.cfg.FSM.Restore(s.cursor)
	if s.flagged {
		d.detectedAt = s.flaggedAt
		if !self {
			// Detection-only verdict (a prevention launch would have declined
			// the splice at query time): record it at the strike bit's time.
			t := now + bus.BitTime(s.strikeOff)
			d.stats.Detections++
			d.stats.DetectionBitsSum += s.flaggedAt
			if s.flaggedAt > d.stats.DetectionBitsMax {
				d.stats.DetectionBitsMax = s.flaggedAt
			}
			d.tel.Emit(int64(t), telemetry.EvDetect, int64(s.flaggedAt), 0)
			if d.cfg.OnDetect != nil {
				d.cfg.OnDetect(t, s.flaggedAt)
			}
		}
	}
	d.cntSOF = s.exitSOF
	d.mux.LatchRX(resolved[len(resolved)-1])
}

// spliceSummaryFor returns the memoized summary for the window, compiling it
// on first sight into this node's slot of the window's memo. A nil return
// means the window is not summarizable from the baseline, which spliceQuery
// reports as a decline; the exact fallback in spliceApply keeps that
// reasoning non-load-bearing. With a nil slot (an unmemoized caller) the
// compile runs uncached.
func (d *Defense) spliceSummaryFor(resolved []can.Level, self bool, slot *any) *spliceSummary {
	if slot == nil {
		return d.compileSplice(resolved, self)
	}
	e, ok := (*slot).(*spliceMemoEntry)
	if !ok || e.n != len(resolved) {
		e = &spliceMemoEntry{n: len(resolved)}
		*slot = e
	}
	k := 0
	if self {
		k = 1
	}
	if !e.done[k] {
		e.done[k] = true
		e.sums[k] = d.compileSplice(resolved, self)
	}
	return e.sums[k]
}

// compileSplice walks the resolved window through Algorithm 1 from the
// post-SOF baseline — stuff tracker seeded with the dominant SOF, FSM at its
// root, flags clear — on value copies, recording the per-class invocation
// counts and the exit state. It mirrors frameRunBatch's control flow bit for
// bit and returns nil for any window whose walk would mutate beyond the
// summary's vocabulary (a pull launch, a stuff violation, a walk that ends
// still in-frame, or a trailing run long enough to depend on the entry
// cnt_sof).
func (d *Defense) compileSplice(resolved []can.Level, self bool) *spliceSummary {
	if len(resolved) == 0 || resolved[0] != can.Dominant {
		return nil // a window not anchored at a SOF is no frame window
	}
	s := &spliceSummary{n: len(resolved)}
	var destuf can.Destuffer
	destuf.Reset()
	destuf.Next(can.Dominant) // the SOF bit seeds the tracker
	cur := d.cfg.FSM.RootCursor()
	idBits, postID := 0, 0
	extFlag, attackFlag := false, false
	inFrame := true
	i := 1
	for i < len(resolved) && inFrame {
		level := resolved[i]
		i++
		payload, err := destuf.Next(level)
		if err != nil {
			return nil // six equal levels inside a plan window: not a plan
		}
		if !payload {
			s.trackN++
			continue
		}
		if idBits < can.IDBits {
			idBits++
			if !attackFlag && cur.Decided() == fsm.Undecided {
				s.idStepN++
				if cur.Step(level) == fsm.Malicious {
					attackFlag = true
					s.flaggedAt = idBits
				}
			} else {
				s.idStoreN++
			}
			continue
		}
		postID++
		if !d.cfg.ExtendedAware {
			if attackFlag && d.cfg.PreventionEnabled && !self {
				return nil // the pull would launch: the query declines this
			}
			s.trackN++
			s.strikeOff = i - 1
			inFrame = false
			continue
		}
		switch {
		case postID == 1:
			s.trackN++ // RTR/SRR: waiting for the IDE bit
		case postID == 2:
			s.trackN++
			if level == can.Dominant {
				if attackFlag && d.cfg.PreventionEnabled && !self {
					return nil
				}
				s.strikeOff = i - 1
				inFrame = false
			} else {
				extFlag = true
				if !attackFlag {
					inFrame = false // benign extended frame: endFrame here
				}
			}
		case extFlag && postID == 2+can.ExtLowBits+1:
			if attackFlag && d.cfg.PreventionEnabled && !self {
				return nil
			}
			s.trackN++
			s.strikeOff = i - 1
			inFrame = false
		default:
			s.trackN++
		}
	}
	if inFrame {
		return nil // ran off the window mid-frame: not a whole-frame plan
	}
	s.cursor = cur
	s.flagged = attackFlag
	s.idleN = int64(len(resolved) - i)
	run := 0
	for j := len(resolved) - 1; j >= i && resolved[j] == can.Recessive; j-- {
		run++
	}
	if int64(run) == s.idleN {
		// An all-recessive remainder accumulates onto the entry cnt_sof; the
		// dominant ACK makes this unreachable for real windows, but a window
		// that hits it is simply left to the exact path.
		return nil
	}
	s.exitSOF = run
	return s
}

// SpliceOffer implements bus.Splicing for a standalone Defense: it never
// transmits frames, so it never offers.
func (d *Defense) SpliceOffer(bus.BitTime) (bus.SpliceWindow, bool) {
	return bus.SpliceWindow{}, false
}

// SpliceQuery implements bus.Splicing: the defense never acks (it is not a
// CAN node in the protocol sense).
func (d *Defense) SpliceQuery(_ bus.BitTime, resolved []can.Level, _ int, slot *any) (bool, bool) {
	return d.spliceQuery(resolved, d.selfNow(), slot), false
}

// SpliceApply implements bus.Splicing.
func (d *Defense) SpliceApply(now bus.BitTime, resolved []can.Level, _ int, _ can.Frame, slot *any) {
	d.spliceApply(now, resolved, d.selfNow(), slot)
}

// SpliceCommit implements bus.Splicing. Unreachable — the defense never
// offers — but exact if it ever ran.
func (d *Defense) SpliceCommit(now bus.BitTime, resolved []can.Level, _ *any) {
	d.ObserveRun(now, resolved)
}

// SpliceOffer implements bus.Splicing for a defended ECU: the controller's
// offer, gated on the defense sitting at the synced-idle baseline with its TX
// pin released. The bus never queries the offerer, so the gate is what
// guarantees the defense absorbs its host's own window — from the baseline
// with self true the scan always accepts (the strike decision suppresses on
// SelfTransmitting), and the commit-side fold takes the summary path.
func (e *ECU) SpliceOffer(now bus.BitTime) (bus.SpliceWindow, bool) {
	win, ok := e.Controller.SpliceOffer(now)
	if !ok || e.Defense == nil {
		return win, ok
	}
	d := e.Defense
	if d.mux.DriveLevel() == can.Dominant {
		return bus.SpliceWindow{}, false
	}
	if d.armed && (d.inFrame || d.cntSOF < can.IdleForSOF) {
		return bus.SpliceWindow{}, false
	}
	return win, true
}

// SpliceQuery implements bus.Splicing: both halves must promise passivity;
// the ack promise is the controller's alone.
func (e *ECU) SpliceQuery(now bus.BitTime, resolved []can.Level, ackIdx int, slot *any) (bool, bool) {
	ok, acks := e.Controller.SpliceQuery(now, resolved, ackIdx, slot)
	if !ok {
		return false, false
	}
	if e.Defense != nil && !e.Defense.spliceQuery(resolved, e.Defense.selfNow(), slot) {
		return false, false
	}
	return true, acks
}

// SpliceApply implements bus.Splicing, preserving the controller-then-defense
// order ObserveRun uses. The self answer is latched before the controller
// folds its half: the controller is a receiver over this window on both
// sides of the fold, so the answer is window-invariant either way.
func (e *ECU) SpliceApply(now bus.BitTime, resolved []can.Level, ackIdx int, rx can.Frame, slot *any) {
	var self bool
	if e.Defense != nil {
		self = e.Defense.selfNow()
	}
	e.Controller.SpliceApply(now, resolved, ackIdx, rx, slot)
	if e.Defense != nil {
		e.Defense.spliceApply(now, resolved, self, slot)
	}
}

// SpliceCommit implements bus.Splicing: the controller completes its own
// transmission, and the defense folds the window with self true — on the
// exact path the host controller answers SelfTransmitting at the mid-frame
// strike bit, and over a committed splice it is the transmitter throughout.
func (e *ECU) SpliceCommit(now bus.BitTime, resolved []can.Level, slot *any) {
	e.Controller.SpliceCommit(now, resolved, slot)
	if e.Defense != nil {
		e.Defense.spliceApply(now, resolved, true, slot)
	}
}
