package experiment

import (
	"testing"
	"time"

	"michican/internal/bus"
	"michican/internal/mcu"
	"michican/internal/restbus"
	"michican/internal/trace"
)

// shortCfg keeps test runtimes low while spanning several bus-off episodes.
func shortCfg() Config {
	return Config{Rate: bus.Rate50k, Duration: 500 * time.Millisecond, Seed: 1}
}

func TestTable2AllExperiments(t *testing.T) {
	rows, err := Table2(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 (one per attacker ID across 6 experiments)", len(rows))
	}
	for _, r := range rows {
		if r.Episodes == 0 {
			t.Errorf("exp %d %s: no episodes", r.Exp, r.AttackerID)
		}
		// Every bus-off time must be within the paper's ballpark: above the
		// clean best case and below the deadline-safety discussion bound.
		if r.MeanBits < 1000 || r.MeanBits > 3000 {
			t.Errorf("exp %d %s: mean %0.f bits outside [1000,3000]", r.Exp, r.AttackerID, r.MeanBits)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	cfg := Config{Rate: bus.Rate50k, Duration: time.Second, Seed: 1}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[key(r)] = r
	}
	exp2 := byKey["2/0x173"]
	exp4 := byKey["4/0x064"]
	exp5a := byKey["5/0x066"]
	exp5b := byKey["5/0x067"]

	// Paper: experiment-5 bus-off grows ~50% over the single-attacker case
	// because the two campaigns intertwine, and 0x067 finishes slightly
	// earlier than 0x066.
	if exp5a.MeanBits <= exp4.MeanBits*1.2 {
		t.Errorf("exp5 (%.0f bits) should exceed exp4 (%.0f) by ≳20%%", exp5a.MeanBits, exp4.MeanBits)
	}
	if exp5a.MeanBits >= exp4.MeanBits*2 {
		t.Errorf("exp5 (%.0f bits) must not double exp4 (%.0f)", exp5a.MeanBits, exp4.MeanBits)
	}
	if exp5b.MeanBits >= exp5a.MeanBits {
		t.Errorf("0x067 (%.0f) should bus off slightly faster than 0x066 (%.0f)",
			exp5b.MeanBits, exp5a.MeanBits)
	}
	// Clean single-attacker cases sit near the theoretical 1248 bits.
	for _, r := range []Table2Row{exp2, exp4} {
		if r.MeanBits < 1100 || r.MeanBits > 1600 {
			t.Errorf("exp %d: %.0f bits, want ≈1248 (+stuff/interleave)", r.Exp, r.MeanBits)
		}
	}
}

func key(r Table2Row) string {
	return string(rune('0'+r.Exp)) + "/" + r.AttackerID.String()
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment(shortCfg(), 9); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable3Theory(t *testing.T) {
	rows := Table3(Interruptions{})
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	if TheoryTotalBits != 1248 {
		t.Fatalf("theory total = %d, want 1248", TheoryTotalBits)
	}
	for _, r := range rows {
		if r.Exp == 2 || r.Exp == 4 || r.Exp == 6 {
			if r.TotalBits != 1248 {
				t.Errorf("exp %d clean total = %.0f, want 1248", r.Exp, r.TotalBits)
			}
		}
		if r.PassiveBits < r.ActiveBits {
			t.Errorf("exp %d: passive (%.0f) must exceed active (%.0f)", r.Exp, r.PassiveBits, r.ActiveBits)
		}
	}
}

func TestTable3WithInterruptions(t *testing.T) {
	clean := Table3(Interruptions{})
	busy := Table3(Interruptions{HighPriorityActive: 0.5, HighPriorityPassive: 0.5, LowPriorityPassive: 0.5})
	if busy[0].TotalBits <= clean[0].TotalBits {
		t.Error("interruptions must extend the experiment-1 prediction")
	}
}

func TestTable2MatchesTable3Bound(t *testing.T) {
	// Empirical clean-bus experiments must respect the theoretical band:
	// ≥ best case 16·(30+38)=1088, ≤ worst case 1248 plus stuff bits and
	// defender-frame interleaving.
	rows, err := RunExperiment(shortCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanBits < 1088-50 || rows[0].MeanBits > TheoryTotalBits+350 {
		t.Errorf("empirical %.0f vs theory band [1088, %d+350]", rows[0].MeanBits, TheoryTotalBits)
	}
}

func TestFig6Interleaving(t *testing.T) {
	res, err := Fig6(shortCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) < 40 {
		t.Fatalf("only %d attempts decoded", len(res.Attempts))
	}
	// Paper's pattern: 0x066 (started first) runs its 16 error-active
	// attempts uninterrupted, then the campaigns interleave.
	for i := 0; i < 16; i++ {
		if res.Attempts[i].ID != 0x066 {
			t.Fatalf("attempt %d is %s; first 16 must be 0x066", i, res.Attempts[i].ID)
		}
	}
	if res.Attempts[16].ID != 0x067 {
		t.Error("attempt 17 should be 0x067 winning arbitration during 0x066's suspend")
	}
	// Both bus-off times exceed the single-attacker 1248 but stay below 2×.
	for _, bits := range []int64{res.BusOffBits66, res.BusOffBits67} {
		if bits < 1300 || bits > 2400 {
			t.Errorf("intertwined bus-off = %d bits, want within (1300, 2400)", bits)
		}
	}
	// 0x066 finishes after 0x067 started later but... per the paper 0x067's
	// bus-off time is slightly smaller.
	if res.BusOffBits67 >= res.BusOffBits66 {
		t.Errorf("0x067 (%d) should be smaller than 0x066 (%d)", res.BusOffBits67, res.BusOffBits66)
	}
}

func TestDetectionLatencyStudy(t *testing.T) {
	res, err := DetectionLatency(500, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate != 1.0 {
		t.Errorf("detection rate = %f, want 1.0 (the paper verifies 100%%)", res.DetectionRate)
	}
	if res.MeanBits <= 0 || res.MeanBits >= 11 {
		t.Errorf("mean detection position = %f, want within (0,11)", res.MeanBits)
	}
	if res.MaxBits > 11 {
		t.Errorf("max detection position = %d > 11", res.MaxBits)
	}
	if _, err := DetectionLatency(0, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestDetectionLatencyDeterministic(t *testing.T) {
	a, err := DetectionLatency(200, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetectionLatency(200, 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanBits != b.MeanBits || a.DetectionRate != b.DetectionRate {
		t.Error("study not deterministic for a fixed seed")
	}
}

func TestMultiAttackerSweep(t *testing.T) {
	rows, err := MultiAttacker(shortCfg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalBits <= rows[i-1].TotalBits {
			t.Errorf("total bus-off must grow with A: A=%d %d vs A=%d %d",
				rows[i-1].Attackers, rows[i-1].TotalBits, rows[i].Attackers, rows[i].TotalBits)
		}
	}
	// Paper: sub-linear growth ("the bus-off time does not double with the
	// number of attackers"), A=4 feasible, A=5 not.
	if rows[1].TotalBits >= 2*rows[0].TotalBits {
		t.Errorf("A=2 (%d) must be less than 2× A=1 (%d)", rows[1].TotalBits, rows[0].TotalBits)
	}
	if !rows[3].Feasible {
		t.Errorf("A=4 should remain feasible (%d bits)", rows[3].TotalBits)
	}
	if rows[4].Feasible {
		t.Errorf("A=5 should render the bus inoperable (%d bits)", rows[4].TotalBits)
	}
	// Paper's absolute anchors: A=3 → ~3515 bits, A=4 → ~4660.
	if rows[2].TotalBits < 3000 || rows[2].TotalBits > 4000 {
		t.Errorf("A=3 = %d bits, paper ≈3515", rows[2].TotalBits)
	}
	if rows[3].TotalBits < 4200 || rows[3].TotalBits > 5000 {
		t.Errorf("A=4 = %d bits, paper ≈4660", rows[3].TotalBits)
	}
}

func TestCPUUtilizationStudy(t *testing.T) {
	cfg := Config{Rate: bus.Rate50k, Duration: 300 * time.Millisecond, Seed: 1}
	full, err := CPUUtilization(cfg, mcu.ArduinoDue, bus.Rate125k, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 8 {
		t.Fatalf("rows = %d, want 8 (4 vehicles × 2 buses)", len(full))
	}
	light, err := CPUUtilization(cfg, mcu.ArduinoDue, bus.Rate125k, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i].CombinedLoad <= light[i].CombinedLoad {
			t.Errorf("%s/%s: full load (%.1f%%) must exceed light (%.1f%%)",
				full[i].Vehicle, full[i].Bus, full[i].CombinedLoad*100, light[i].CombinedLoad*100)
		}
		if !full[i].Reliable {
			t.Errorf("%s/%s: Due must be reliable at 125 kbit/s", full[i].Vehicle, full[i].Bus)
		}
		if full[i].CombinedLoad < 0.25 || full[i].CombinedLoad > 0.60 {
			t.Errorf("full combined load %.1f%% outside the paper's neighborhood (~40%%)",
				full[i].CombinedLoad*100)
		}
	}
	// The Due must NOT be reliable at 250 kbit/s (Sec. V-D).
	due250, err := CPUUtilization(cfg, mcu.ArduinoDue, bus.Rate250k, false)
	if err != nil {
		t.Fatal(err)
	}
	overruns := 0
	for _, r := range due250 {
		if !r.Reliable {
			overruns++
		}
	}
	if overruns == 0 {
		t.Error("Due at 250 kbit/s should overrun the bit time on at least some buses")
	}
	// The S32K144 runs 500 kbit/s reliably (Sec. VI-B).
	nxp, err := CPUUtilization(cfg, mcu.NXPS32K144, bus.Rate500k, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range nxp {
		if !r.Reliable {
			t.Errorf("S32K144 must be reliable at 500 kbit/s (%s/%s)", r.Vehicle, r.Bus)
		}
	}
}

func TestBusLoadComparison(t *testing.T) {
	rows, err := BusLoad(Config{Rate: bus.Rate50k, Duration: 800 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BusLoadRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	none, mich, par := byName["none"], byName["MichiCAN"], byName["Parrot"]

	if none.AttackerSilenced {
		t.Error("undefended bus must not silence the attacker")
	}
	if none.VictimMissRate < 0.2 {
		t.Errorf("undefended miss rate %.1f%%, expected heavy starvation", none.VictimMissRate*100)
	}
	if !mich.AttackerSilenced || !par.AttackerSilenced {
		t.Fatal("both defenses must silence the attacker")
	}
	if mich.VictimMissRate > 0.05 {
		t.Errorf("MichiCAN miss rate %.1f%%, want ≈0", mich.VictimMissRate*100)
	}
	// Sec. V-E: Parrot's flood saturates the bus; MichiCAN's spike stays
	// well below, and MichiCAN buses the attacker off faster.
	if par.PeakWindowLoad < 0.9 {
		t.Errorf("Parrot peak load %.1f%%, want ≳90%%", par.PeakWindowLoad*100)
	}
	if mich.PeakWindowLoad >= par.PeakWindowLoad {
		t.Error("MichiCAN peak load must stay below Parrot's")
	}
	if mich.BusOffBits >= par.BusOffBits {
		t.Errorf("MichiCAN bus-off (%d) must beat Parrot (%d)", mich.BusOffBits, par.BusOffBits)
	}
}

func TestParkSenseOnVehicle(t *testing.T) {
	res, err := ParkSense(Config{Rate: bus.Rate50k, Duration: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phase1Unavailable {
		t.Error("the targeted DoS must disable ParkSense without a defense")
	}
	if !res.Phase2Restored {
		t.Error("MichiCAN must restore ParkSense")
	}
	if res.Phase2Attempts > 32 {
		t.Errorf("eradication took %d attempts, paper says within 32", res.Phase2Attempts)
	}
	if len(res.Timeline) < 2 {
		t.Errorf("expected unavailable→available transitions, got %v", res.Timeline)
	}
}

func TestTable1Properties(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	var mich, parrotRow *Table1Row
	for i := range rows {
		switch rows[i].System {
		case "MichiCAN":
			mich = &rows[i]
		case "Parrot+ [18]":
			parrotRow = &rows[i]
		}
	}
	if mich == nil || parrotRow == nil {
		t.Fatal("MichiCAN and Parrot rows required")
	}
	if mich.BackwardCompatible != Yes || mich.RealTime != Yes || mich.Eradication != Yes {
		t.Error("MichiCAN row must be all-yes")
	}
	if mich.TrafficOverhead >= parrotRow.TrafficOverhead == false {
		// MichiCAN's overhead class must be strictly better than Parrot's.
	}
	if !(mich.TrafficOverhead < parrotRow.TrafficOverhead) {
		t.Error("MichiCAN overhead must beat Parrot's very-high")
	}
	if !mich.MeasuredHere || !parrotRow.MeasuredHere {
		t.Error("both implemented systems must be marked measured")
	}
	out := FormatTable1(rows)
	if len(out) == 0 {
		t.Error("empty table rendering")
	}
}

func TestScaleMatrixToLoad(t *testing.T) {
	m := restbus.Buses(restbus.VehD)[0]
	scaled := scaleMatrixToLoad(m, bus.Rate50k, 0.2)
	load := scaled.Load(bus.Rate50k)
	if load > 0.21 {
		t.Errorf("scaled load %.3f, want ≤0.20", load)
	}
	// Already-light matrices are untouched.
	same := scaleMatrixToLoad(m, bus.Rate500k, 0.9)
	if same.Load(bus.Rate500k) != m.Load(bus.Rate500k) {
		t.Error("light matrix must pass through unchanged")
	}
}

func TestEpisodeGrouping(t *testing.T) {
	// Synthesize two attempts close together and one far away: two episodes.
	events := []trace.Event{
		{Kind: trace.ErrorEvent, ID: 0x100, IDComplete: true, Start: 0, End: 30},
		{Kind: trace.ErrorEvent, ID: 0x100, IDComplete: true, Start: 60, End: 95},
		{Kind: trace.ErrorEvent, ID: 0x100, IDComplete: true, Start: 5000, End: 5030},
	}
	eps := episodesOf(events, 0x100)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	if eps[0].Attempts != 2 || eps[1].Attempts != 1 {
		t.Errorf("attempt counts = %d/%d", eps[0].Attempts, eps[1].Attempts)
	}
	if eps[0].Bits() != 96 {
		t.Errorf("episode span = %d", eps[0].Bits())
	}
	if episodesOf(events, 0x999) != nil {
		t.Error("unknown ID must yield no episodes")
	}
}

func TestValidateTable3(t *testing.T) {
	v, err := ValidateTable3(Config{Rate: bus.Rate50k, Duration: 2 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.EmpiricalBits < 1200 || v.EmpiricalBits > 2500 {
		t.Errorf("empirical = %.0f bits", v.EmpiricalBits)
	}
	if v.PredictedBits < TheoryTotalBits {
		t.Errorf("prediction %.0f below the clean bound %d", v.PredictedBits, TheoryTotalBits)
	}
	// The closed-loop check: prediction within 15% of measurement.
	if diff := abs(v.PredictedBits-v.EmpiricalBits) / v.EmpiricalBits; diff > 0.15 {
		t.Errorf("theory and measurement diverge by %.1f%%: %s", diff*100, v.String())
	}
	t.Log(v.String())
}
