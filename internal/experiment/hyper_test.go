package experiment

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/restbus"
	"michican/internal/trace"
)

// These tests pin the hyperperiod super-splice tier's two contracts in
// isolation from the fuzz sweep: bit-exact identity against per-bit stepping
// on a schedule whose hyperperiod the tier can actually chain, and memo
// invalidation across super-window boundaries — an attacker attaching between
// chained windows or mid-hyperperiod, and a node detaching mid-hyperperiod —
// where a stale-generation memo must never be served.

const (
	// hyperTestH is the harmonic matrix's schedule hyperperiod in bits at
	// 50 kbit/s: periods 5/10/20 ms are 250/500/1000 bits, lcm 1000.
	hyperTestH = int64(1000)
	// hyperTestTotal covers the fingerprint working set plus a hit region:
	// the per-message rolling counters advance 4/2/1 per hyperperiod, so the
	// joint sequence state recurs only after 256 hyperperiods (256k bits);
	// everything past that replays from memos.
	hyperTestTotal = 700 * hyperTestH
)

// harmonicMatrix is a three-message schedule with strictly harmonic periods,
// so the hyperperiod is small enough for chains to close and recur inside a
// unit test (7 splice windows per 1000-bit hyperperiod).
func harmonicMatrix() *restbus.Matrix {
	m := &restbus.Matrix{Vehicle: "fuzz", Bus: "hyper"}
	for i, id := range []can.ID{0x100, 0x200, 0x300} {
		m.Messages = append(m.Messages, restbus.Message{
			ID:          id,
			Transmitter: fmt.Sprintf("ecu-%d", i),
			DLC:         i + 1,
			Period:      time.Duration(5*(1<<i)) * time.Millisecond,
		})
	}
	return m
}

// hyperOutcome is everything the hyper differentials compare.
type hyperOutcome struct {
	Bits                []can.Level
	TEC, REC            []int
	TxSuccess, RxFrames []int
}

// hyperProbe captures bus-internal observations taken inside the mutation
// callback, at the Run boundary where external mutation is legal.
type hyperProbe struct {
	genBefore, genAfter uint64
	memosBefore         int
	hyperBitsAt         int64
}

// runHyperScenario replays the harmonic matrix alongside two pure-receiver
// controllers (so a receiver still ACKs after one leaves), optionally
// mutating the node set at bit mutateAt (a Run boundary), and returns the
// resolved trace plus the surviving nodes' counters. The hyper arm uses
// production wiring: the chain target is the matrix's schedule hyperperiod.
func runHyperScenario(t *testing.T, mode diffMode, total, mutateAt int64,
	mutate func(bb *bus.Bus, leaver *controller.Controller, ctls *[]*controller.Controller)) (hyperOutcome, *bus.Bus) {
	t.Helper()
	matrix := harmonicMatrix()
	bb := bus.New(bus.Rate50k)
	bb.SetFastForward(mode != diffExact)
	bb.SetFrameFastForward(mode != diffExact)
	bb.SetContendFastForward(mode == diffContendFF || mode == diffSpliceFF || mode == diffHyperFF)
	bb.SetSpliceFastForward(mode == diffSpliceFF || mode == diffHyperFF)
	bb.SetHyperFastForward(mode == diffHyperFF)
	if mode == diffHyperFF {
		h := matrix.HyperperiodBits(bus.Rate50k)
		if h != hyperTestH {
			t.Fatalf("harmonic matrix hyperperiod = %d bits, want %d", h, hyperTestH)
		}
		bb.SetHyperChainBits(h)
	}
	rep := restbus.NewReplayer("restbus", matrix, bus.Rate50k, rand.New(rand.NewSource(11)))
	bb.Attach(rep)
	leaver := controller.New(controller.Config{Name: "leaver", AutoRecover: true})
	bb.Attach(leaver)
	stayer := controller.New(controller.Config{Name: "stayer", AutoRecover: true})
	bb.Attach(stayer)
	rec := trace.NewRecorder()
	bb.AttachTap(rec)
	ctls := []*controller.Controller{rep.Controller(), leaver, stayer}

	if mutateAt > 0 {
		bb.Run(mutateAt)
		mutate(bb, leaver, &ctls)
		bb.Run(total - mutateAt)
	} else {
		bb.Run(total)
	}

	var out hyperOutcome
	out.Bits = rec.Bits()
	for _, c := range ctls {
		st := c.Stats()
		out.TEC = append(out.TEC, c.TEC())
		out.REC = append(out.REC, c.REC())
		out.TxSuccess = append(out.TxSuccess, st.TxSuccess)
		out.RxFrames = append(out.RxFrames, st.RxSuccess)
	}
	return out, bb
}

// compareHyperOutcome fails on the first wire-trace or counter divergence.
func compareHyperOutcome(t *testing.T, label string, a, b hyperOutcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Bits, b.Bits) {
		i := 0
		for i < len(a.Bits) && i < len(b.Bits) && a.Bits[i] == b.Bits[i] {
			i++
		}
		t.Fatalf("%s: wire traces diverge at bit %d (%d bits vs %d bits)",
			label, i, len(a.Bits), len(b.Bits))
	}
	a.Bits, b.Bits = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: counters diverge:\n%+v\nvs\n%+v", label, a, b)
	}
}

// TestHyperFFIdentityHarmonic is the tier's identity proof on a schedule it
// can fully chain: once the rolling-counter rotation closes, the run replays
// hyperperiod after hyperperiod from memos, and the result must stay
// bit-identical to both the splice arm and exact stepping.
func TestHyperFFIdentityHarmonic(t *testing.T) {
	exact, _ := runHyperScenario(t, diffExact, hyperTestTotal, 0, nil)
	splice, sbb := runHyperScenario(t, diffSpliceFF, hyperTestTotal, 0, nil)
	hyper, hbb := runHyperScenario(t, diffHyperFF, hyperTestTotal, 0, nil)

	if sbb.SpliceForwardedBits() == 0 {
		t.Error("splice fast path never engaged on the splice arm")
	}
	if sbb.HyperForwardedBits() != 0 {
		t.Error("hyper path engaged on the splice arm while disabled")
	}
	if hbb.HyperMemoCount() == 0 {
		t.Error("hyper arm sealed no super-window memos")
	}
	// Past the 256-hyperperiod warm-up (~37% of the run) nearly every
	// hyperperiod should apply as one memo; a fifth of the run is a loose
	// floor that still proves steady-state replay rather than a lucky hit.
	if got := hbb.HyperForwardedBits(); got < hyperTestTotal/5 {
		t.Errorf("hyper path carried %d of %d bits, want at least %d", got, hyperTestTotal, hyperTestTotal/5)
	}
	compareHyperOutcome(t, "exact vs splice-ff", exact, splice)
	compareHyperOutcome(t, "splice-ff vs hyper-ff", splice, hyper)
}

// TestHyperMemoInvalidationOnAttach attaches a fabrication attacker after the
// memo table is hot and applying — once exactly at a chain edge (between
// chained super-windows) and once mid-hyperperiod. The attach must bump the
// hyper generation, every sealed memo must go stale, and — since the attacker
// does not implement Hypering — the tier must pin off without ever serving a
// pre-attack memo. The run must stay bit-identical to exact stepping through
// the same attach.
func TestHyperMemoInvalidationOnAttach(t *testing.T) {
	for _, tc := range []struct {
		name string
		at   int64
	}{
		{"between-chained-windows", 300 * hyperTestH},
		{"mid-hyperperiod", 300*hyperTestH + hyperTestH/2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			attach := func(probe *hyperProbe) func(*bus.Bus, *controller.Controller, *[]*controller.Controller) {
				return func(bb *bus.Bus, _ *controller.Controller, ctls *[]*controller.Controller) {
					if probe != nil {
						probe.genBefore = bb.HyperGen()
						probe.memosBefore = bb.HyperMemoCount()
						probe.hyperBitsAt = bb.HyperForwardedBits()
					}
					att := attack.NewFabrication("attacker", 0x100, []byte{0xA5, 0x5A}, 1500)
					bb.Attach(att)
					*ctls = append(*ctls, att.Controller())
					if probe != nil {
						probe.genAfter = bb.HyperGen()
					}
				}
			}
			exact, _ := runHyperScenario(t, diffExact, hyperTestTotal, tc.at, attach(nil))
			var probe hyperProbe
			hyper, hbb := runHyperScenario(t, diffHyperFF, hyperTestTotal, tc.at, attach(&probe))

			if probe.memosBefore == 0 {
				t.Error("no memos sealed before the attach — invalidation had nothing to invalidate")
			}
			if probe.hyperBitsAt == 0 {
				t.Error("hyper path never applied before the attach")
			}
			if probe.genAfter != probe.genBefore+1 {
				t.Errorf("Attach bumped hyper generation %d -> %d, want +1", probe.genBefore, probe.genAfter)
			}
			// The attacker pins the tier: if any post-attach bits were hyper-
			// forwarded, a stale-generation memo was served.
			if got := hbb.HyperForwardedBits(); got != probe.hyperBitsAt {
				t.Errorf("hyper path advanced %d bits after a non-Hypering attacker joined", got-probe.hyperBitsAt)
			}
			compareHyperOutcome(t, "exact vs hyper-ff with attach at "+tc.name, exact, hyper)
		})
	}
}

// TestHyperMemoInvalidationOnDetach detaches one pure-receiver controller
// mid-hyperperiod, after memos sealed over the four-node set have been
// applying. The detach bumps the generation (per-node memo entries are
// indexed by attachment order), so every old memo is stale; the tier must
// re-record under the new generation and re-engage, all while staying
// bit-identical to exact stepping through the same detach.
func TestHyperMemoInvalidationOnDetach(t *testing.T) {
	detachAt := 300*hyperTestH + hyperTestH/2
	detach := func(probe *hyperProbe) func(*bus.Bus, *controller.Controller, *[]*controller.Controller) {
		return func(bb *bus.Bus, leaver *controller.Controller, ctls *[]*controller.Controller) {
			if probe != nil {
				probe.genBefore = bb.HyperGen()
				probe.memosBefore = bb.HyperMemoCount()
				probe.hyperBitsAt = bb.HyperForwardedBits()
			}
			if !bb.Detach(leaver) {
				panic("leaver not attached at detach time")
			}
			*ctls = append((*ctls)[:1], (*ctls)[2:]...) // replayer and stayer survive
			if probe != nil {
				probe.genAfter = bb.HyperGen()
			}
		}
	}
	exact, _ := runHyperScenario(t, diffExact, hyperTestTotal, detachAt, detach(nil))
	var probe hyperProbe
	hyper, hbb := runHyperScenario(t, diffHyperFF, hyperTestTotal, detachAt, detach(&probe))

	if probe.memosBefore == 0 {
		t.Error("no memos sealed before the detach — invalidation had nothing to invalidate")
	}
	if probe.hyperBitsAt == 0 {
		t.Error("hyper path never applied before the detach")
	}
	if probe.genAfter != probe.genBefore+1 {
		t.Errorf("Detach bumped hyper generation %d -> %d, want +1", probe.genBefore, probe.genAfter)
	}
	// The surviving node set is still all-Hypering, so after re-recording the
	// post-detach rotation the tier must apply fresh memos again: hyper bits
	// strictly above the pre-detach count prove the stale memos were replaced,
	// not reused (reuse would have diverged the trace below).
	if got := hbb.HyperForwardedBits(); got <= probe.hyperBitsAt {
		t.Errorf("hyper path never re-engaged after the detach (%d bits, %d before)", got, probe.hyperBitsAt)
	}
	compareHyperOutcome(t, "exact vs hyper-ff with mid-hyperperiod detach", exact, hyper)
}
