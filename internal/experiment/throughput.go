package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/fsm"
	"michican/internal/restbus"
)

// SteppingMode selects how the bus core advances time in a throughput
// measurement.
type SteppingMode string

// The six stepping modes of the fast-forward evaluation grid.
const (
	// ModeExact steps every bit through the full 2N+T interface calls.
	ModeExact SteppingMode = "exact"
	// ModeIdleFF adds the PR1 idle fast-forward: inter-frame recessive
	// windows jump in one shot, frames stay exact.
	ModeIdleFF SteppingMode = "idle-ff"
	// ModeFrameFF adds the sole-transmitter frame fast path on top: an
	// uncontended frame's committed span is resolved and delivered in bulk.
	ModeFrameFF SteppingMode = "frame-ff"
	// ModeContendFF adds the contested-window fast path on top: spans with
	// multiple conditional drivers (arbitration fights, pending SOFs, error
	// flags) resolve via bit-packed wired-AND words and clamp at the first
	// divergence instead of pinning the whole window to exact stepping.
	ModeContendFF SteppingMode = "contend-ff"
	// ModeSpliceFF adds the compiled-splice path on top: whole steady-state
	// frame windows — one transmitter with a memoized plan, everyone else
	// provably passive — splice in as a single precompiled summary per node
	// instead of being re-resolved.
	ModeSpliceFF SteppingMode = "splice-ff"
	// ModeHyperFF adds the hyperperiod super-splice path on top: consecutive
	// accepted splice windows (frames, intermissions, idle gaps) chain into
	// one compiled super-window per schedule hyperperiod, keyed by a
	// quiescent-state fingerprint, and replay as a single O(1) delta per
	// node once the schedule state recurs.
	ModeHyperFF SteppingMode = "hyper-ff"
)

// ThroughputRow is one measured cell of the load × stepping-mode grid.
type ThroughputRow struct {
	// Load is the offered restbus load the scenario was stretched to.
	Load float64 `json:"load"`
	// Mode is the stepping mode measured.
	Mode SteppingMode `json:"mode"`
	// SimulatedBits is the amount of bus time simulated, in bit times.
	SimulatedBits int64 `json:"simulated_bits"`
	// WallSeconds is the wall-clock cost of simulating them.
	WallSeconds float64 `json:"wall_seconds"`
	// BitsPerSecond is SimulatedBits / WallSeconds.
	BitsPerSecond float64 `json:"bits_per_second"`
	// NsPerBit is the inverse view: wall nanoseconds per simulated bit.
	NsPerBit float64 `json:"ns_per_bit"`
	// AllocsPerMBit is heap allocations per million simulated bits.
	AllocsPerMBit float64 `json:"allocs_per_mbit"`
	// IdleHitRate is the fraction of simulated bits covered by the idle
	// fast path.
	IdleHitRate float64 `json:"idle_hit_rate"`
	// FrameHitRate is the fraction of simulated bits covered by the
	// sole-transmitter frame fast path.
	FrameHitRate float64 `json:"frame_hit_rate"`
	// ContendHitRate is the fraction of simulated bits covered by the
	// contested-window (multi-driver) fast path.
	ContendHitRate float64 `json:"contend_hit_rate"`
	// SpliceHitRate is the fraction of simulated bits covered by the
	// compiled-splice fast path.
	SpliceHitRate float64 `json:"splice_hit_rate"`
	// HyperHitRate is the fraction of simulated bits covered by the
	// hyperperiod super-splice fast path.
	HyperHitRate float64 `json:"hyper_hit_rate"`
}

// String renders the row for terminal output.
func (r ThroughputRow) String() string {
	return fmt.Sprintf("load=%2.0f%%  %-10s  %7.2f Mbit/s  %7.1f ns/bit  idle-hit=%4.1f%%  frame-hit=%4.1f%%  contend-hit=%4.1f%%  splice-hit=%4.1f%%  hyper-hit=%4.1f%%  allocs/Mbit=%.0f",
		r.Load*100, r.Mode, r.BitsPerSecond/1e6, r.NsPerBit,
		r.IdleHitRate*100, r.FrameHitRate*100, r.ContendHitRate*100, r.SpliceHitRate*100, r.HyperHitRate*100, r.AllocsPerMBit)
}

// ThroughputScenario builds the fast-forward evaluation scenario: a Veh.-D
// restbus replayer stretched to the target offered load at 50 kbit/s plus a
// MichiCAN-defended ECU that ACKs the traffic. The same construction backs
// BenchmarkBusFastForward and michican-bench -json, so the numbers are
// comparable.
func ThroughputScenario(target float64, mode SteppingMode) (*bus.Bus, error) {
	bb, _, err := throughputScenario(target, mode)
	return bb, err
}

// throughputScenario is the full-fidelity constructor: it also returns the
// attached nodes so callers (the telemetry-overhead guard) can wire them into
// a hub after construction.
func throughputScenario(target float64, mode SteppingMode) (*bus.Bus, []bus.Node, error) {
	return throughputScenarioSeeded(target, mode, 1)
}

// throughputScenarioSeeded varies the restbus phase seed: the workers
// scaling sweep builds several independent instances of the same grid cell,
// each with its own derived seed.
func throughputScenarioSeeded(target float64, mode SteppingMode, seed int64) (*bus.Bus, []bus.Node, error) {
	src := restbus.Buses(restbus.VehD)[0]
	// The harmonic stretch in scaleMatrixToLoad keeps the matrix's lcm
	// structure intact, which is what lets HyperperiodBits stay small and
	// the hyper-FF tier's chain fingerprints recur.
	matrix := scaleMatrixToLoad(cleanMatrix(src, []can.ID{DefenderID}), bus.Rate50k, target)

	bb := bus.New(bus.Rate50k)
	applyMode(bb, mode)
	if h := matrix.HyperperiodBits(bus.Rate50k); h > 0 {
		// Target one schedule hyperperiod per compiled chain, so the memo
		// working set is the rolling-counter rotation (≤256 per anchor
		// phase) rather than an unbounded drift of chain boundaries.
		bb.SetHyperChainBits(h)
	}
	v, err := fsm.NewIVN(append(matrix.IDs(), DefenderID))
	if err != nil {
		return nil, nil, err
	}
	ds, err := fsm.NewDetectionSet(v, v.Index(DefenderID))
	if err != nil {
		return nil, nil, err
	}
	def, err := core.New(core.Config{Name: "defender", FSM: fsm.Build(ds)})
	if err != nil {
		return nil, nil, err
	}
	rp := restbus.NewReplayer("restbus", matrix, bus.Rate50k, rand.New(rand.NewSource(seed)))
	nodes := []bus.Node{
		core.NewECU(controller.New(controller.Config{Name: "defender", AutoRecover: true}), def),
		rp,
	}
	for _, n := range nodes {
		bb.Attach(n)
	}
	if mode == ModeSpliceFF || mode == ModeHyperFF {
		// Schedule-driven cache warm: precompile the plans the rolling
		// sequence counters will produce. One full rotation (256 values per
		// message) covers every frame content the schedule can emit, so
		// steady-state splicing never pays a first-sight serialization; the
		// warm set stays well inside the bounded plan cache (messages × 256
		// ≪ 16384).
		rp.WarmSplice(256)
	}
	return bb, nodes, nil
}

// MeasureThroughput simulates simBits bit times of the scenario at the given
// load and stepping mode and reports wall-clock throughput, allocation rate,
// and fast-path hit rates. A warm-up run lets the initial phase offsets
// settle and the span memos populate before timing starts: the restbus
// payloads carry rolling counters, so the working set of span identities is
// the full 256-value rotation (~1.4M bit times at 60% load), and a timed
// window that starts cold spends a large prefix paying one-time plan builds
// and span decodes instead of measuring the stepping mode. The warm-up is
// one fifth of the measurement length, floored at a full rotation for grid
// runs (1M+ bit measurements) so the table reports steady state, and at
// 100k bits below that so short smoke runs stay cheap.
func MeasureThroughput(target float64, mode SteppingMode, simBits int64) (ThroughputRow, error) {
	bb, err := ThroughputScenario(target, mode)
	if err != nil {
		return ThroughputRow{}, err
	}
	warmup := simBits / 5
	if simBits >= 1_000_000 {
		if warmup < 1_500_000 {
			warmup = 1_500_000
		}
		if mode == ModeHyperFF {
			// The hyper tier's working set is the full schedule-state
			// recurrence, not one plan rotation: relative deadlines repeat
			// every hyperperiod but the rolling payload counters take up to
			// 256 hyperperiods to come back around, and only then do the
			// chain fingerprints start hitting. Warm through several full
			// rotations of hyperperiod chains (the chain-anchor orbit takes
			// a rotation or two past the first to close) so the timed window
			// measures replay, not recording. Recording runs at splice/idle
			// tier speed, so even 900 hyperperiods of warm-up is well under
			// a second of wall clock.
			if h := bb.HyperChainBits(); h > 0 {
				if w := 900 * h; warmup < w {
					warmup = w
				}
			}
		}
	} else if warmup < 100_000 {
		warmup = 100_000
	}
	bb.Run(warmup)
	idle0, frame0 := bb.IdleForwardedBits(), bb.FrameForwardedBits()
	contend0, splice0 := bb.ContendForwardedBits(), bb.SpliceForwardedBits()
	hyper0 := bb.HyperForwardedBits()
	var ms0, ms1 runtime.MemStats
	// Collect before the baseline read so garbage left by the warm-up (or a
	// previous grid cell) cannot trigger a GC inside the timed window and
	// charge its assist allocations to this mode's row.
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	bb.Run(simBits)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	if wall <= 0 {
		wall = 1e-9
	}
	return ThroughputRow{
		Load:           target,
		Mode:           mode,
		SimulatedBits:  simBits,
		WallSeconds:    wall,
		BitsPerSecond:  float64(simBits) / wall,
		NsPerBit:       wall * 1e9 / float64(simBits),
		AllocsPerMBit:  float64(ms1.Mallocs-ms0.Mallocs) / (float64(simBits) / 1e6),
		IdleHitRate:    float64(bb.IdleForwardedBits()-idle0) / float64(simBits),
		FrameHitRate:   float64(bb.FrameForwardedBits()-frame0) / float64(simBits),
		ContendHitRate: float64(bb.ContendForwardedBits()-contend0) / float64(simBits),
		SpliceHitRate:  float64(bb.SpliceForwardedBits()-splice0) / float64(simBits),
		HyperHitRate:   float64(bb.HyperForwardedBits()-hyper0) / float64(simBits),
	}, nil
}

// ScalingRow is one cell of the workers scaling sweep: several independent
// instances of the same grid cell run concurrently over the trial runner,
// and the row reports the aggregate simulation throughput at that worker
// count.
type ScalingRow struct {
	// Workers is the Map pool size the instances ran under.
	Workers int `json:"workers"`
	// Scenarios is how many independent scenario instances were run.
	Scenarios int `json:"scenarios"`
	// Load and Mode identify the grid cell every instance simulated.
	Load float64      `json:"load"`
	Mode SteppingMode `json:"mode"`
	// SimulatedBits is the total bus time simulated across all instances
	// (warm-up included — every worker count runs the identical mix, so the
	// ratios are apples-to-apples).
	SimulatedBits int64 `json:"simulated_bits"`
	// WallSeconds is the wall-clock for the whole batch.
	WallSeconds float64 `json:"wall_seconds"`
	// AggregateBitsPerSecond is SimulatedBits / WallSeconds.
	AggregateBitsPerSecond float64 `json:"aggregate_bits_per_second"`
	// SpeedupVs1 is this row's aggregate throughput over the workers=1 row
	// of the same sweep (1.0 for the first row).
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// String renders the row for terminal output.
func (r ScalingRow) String() string {
	return fmt.Sprintf("workers=%2d  scenarios=%d  load=%2.0f%%  %-10s  %8.2f Mbit/s aggregate  speedup=%.2fx",
		r.Workers, r.Scenarios, r.Load*100, r.Mode, r.AggregateBitsPerSecond/1e6, r.SpeedupVs1)
}

// MeasureScalingSweep runs the workers scaling sweep on one grid cell:
// `scenarios` independent instances (each with a DeriveSeed-derived restbus
// phase seed) fan out over the trial runner at each worker count, and every
// row reports aggregate simulated bits per wall-clock second. Near-linear
// scaling up to the core count is the expectation for shared-nothing
// instances; the recorded NumCPU in the bench header is what makes a flat
// curve on a small machine interpretable.
func MeasureScalingSweep(load float64, mode SteppingMode, simBits int64, scenarios int, workersList []int) ([]ScalingRow, error) {
	if scenarios <= 0 {
		scenarios = 4
	}
	warmup := simBits / 5
	if warmup < 100_000 {
		warmup = 100_000
	}
	var rows []ScalingRow
	for _, workers := range workersList {
		start := time.Now()
		_, err := Map(scenarios, workers, func(i int) (struct{}, error) {
			bb, _, err := throughputScenarioSeeded(load, mode, DeriveSeed(1, i))
			if err != nil {
				return struct{}{}, err
			}
			bb.Run(warmup)
			bb.Run(simBits)
			return struct{}{}, nil
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			wall = 1e-9
		}
		row := ScalingRow{
			Workers:                workers,
			Scenarios:              scenarios,
			Load:                   load,
			Mode:                   mode,
			SimulatedBits:          int64(scenarios) * (warmup + simBits),
			WallSeconds:            wall,
			AggregateBitsPerSecond: float64(int64(scenarios)*(warmup+simBits)) / wall,
			SpeedupVs1:             1,
		}
		if len(rows) > 0 && rows[0].AggregateBitsPerSecond > 0 {
			row.SpeedupVs1 = row.AggregateBitsPerSecond / rows[0].AggregateBitsPerSecond
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalingWorkersList is the default sweep: 1, 2, 4, then GOMAXPROCS when it
// extends the curve.
func ScalingWorkersList() []int {
	list := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		list = append(list, p)
	}
	return list
}

// ThroughputGrid measures the full load × mode grid (EXPERIMENTS.md's
// throughput table and michican-bench -json).
func ThroughputGrid(loads []float64, simBits int64) ([]ThroughputRow, error) {
	if len(loads) == 0 {
		loads = []float64{0.02, 0.30, 0.60}
	}
	var rows []ThroughputRow
	for _, load := range loads {
		for _, mode := range []SteppingMode{ModeExact, ModeIdleFF, ModeFrameFF, ModeContendFF, ModeSpliceFF, ModeHyperFF} {
			row, err := MeasureThroughput(load, mode, simBits)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
