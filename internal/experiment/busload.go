package experiment

import (
	"fmt"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/parrot"
	"michican/internal/restbus"
	"michican/internal/trace"
)

// BusLoadRow compares the network overhead of a defense system (Sec. V-E):
// the bus load at rest, the peak load during a counterattack window, and the
// time to eradicate the attacker.
type BusLoadRow struct {
	// System is "MichiCAN", "Parrot", or "none".
	System string
	// BaselineLoad is the benign bus load before the attack.
	BaselineLoad float64
	// PeakWindowLoad is the highest windowed load observed during the
	// counterattack (window = AvgFrameBits·8 bits).
	PeakWindowLoad float64
	// BusOffBits is the time to bus the attacker off (0 when never).
	BusOffBits int64
	// AttackerSilenced reports whether the attacker reached bus-off.
	AttackerSilenced bool
	// VictimMissRate is the restbus deadline-miss rate over the whole run —
	// the downstream harm of both the attack and the defense's own traffic.
	VictimMissRate float64
}

// String renders the row.
func (r BusLoadRow) String() string {
	off := "attacker silenced"
	if !r.AttackerSilenced {
		off = "attacker ACTIVE"
	}
	return fmt.Sprintf("%-9s baseline=%5.1f%%  peak=%5.1f%%  bus-off=%5d bits  miss-rate=%5.1f%%  %s",
		r.System, r.BaselineLoad*100, r.PeakWindowLoad*100, r.BusOffBits,
		r.VictimMissRate*100, off)
}

// BusLoad reproduces the Sec. V-E analysis: a spoofing attacker against the
// 0x173 ECU on a restbus-loaded 50 kbit/s bus, defended by (a) MichiCAN,
// (b) Parrot, and (c) nothing. The paper's headline: MichiCAN causes only a
// short load spike around the ~25 ms bus-off episode, while Parrot's flood
// drives the bus to ≈97.7% for the whole counterattack.
func BusLoad(cfg Config) ([]BusLoadRow, error) {
	cfg = cfg.Defaults()
	systems := []string{"none", "MichiCAN", "Parrot"}
	rows := make([]BusLoadRow, 0, len(systems))
	for _, sys := range systems {
		row, err := busLoadRun(cfg, sys)
		if err != nil {
			return nil, fmt.Errorf("busload %s: %w", sys, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func busLoadRun(cfg Config, system string) (BusLoadRow, error) {
	matrix := cleanMatrix(restbus.Buses(restbus.VehD)[0], []can.ID{DefenderID})
	matrix = scaleMatrixToLoad(matrix, cfg.Rate, restbusTargetLoad)

	b := bus.New(cfg.Rate)
	rec := trace.NewRecorder()
	b.AttachTap(rec)
	replay := restbus.NewReplayer("restbus", matrix, cfg.Rate, newRand(cfg.Seed))
	b.Attach(replay)

	var attackerCtl *controller.Controller
	att := attack.NewFabrication("attacker", DefenderID, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0)
	attackerCtl = att.Controller()

	switch system {
	case "MichiCAN":
		ids := append(matrix.IDs(), DefenderID)
		_, node, err := buildDefendedECU(ids)
		if err != nil {
			return BusLoadRow{}, err
		}
		b.Attach(node)
	case "Parrot":
		b.Attach(parrot.New(parrot.Config{Name: "parrot", OwnID: DefenderID}))
	case "none":
		// The spoofed ECU exists but has no defense: a plain controller.
		b.Attach(controller.New(controller.Config{Name: "victim", AutoRecover: true}))
	default:
		return BusLoadRow{}, fmt.Errorf("unknown system %q", system)
	}

	// Phase 1: benign only, to measure the baseline load.
	baselineBits := cfg.Rate.Bits(500 * time.Millisecond)
	b.Run(baselineBits)
	baselineEvents := trace.Decode(rec.Bits(), rec.Start())
	baseline := trace.Load(baselineEvents, int64(rec.Len()))

	// Phase 2: the attack. Track when the attacker first enters bus-off.
	attackStart := b.Now()
	b.Attach(att)
	busOffAt := bus.BitTime(-1)
	total := cfg.Rate.Bits(cfg.Duration)
	for i := int64(0); i < total; i++ {
		b.Step()
		if busOffAt < 0 && attackerCtl.Stats().BusOffEvents > 0 {
			busOffAt = b.Now()
		}
	}

	events := trace.Decode(rec.Bits(), rec.Start())
	window := AvgFrameBits * 8
	loads := trace.WindowedLoad(rec.Bits(), events, rec.Start(), window)
	peak := 0.0
	for _, l := range loads[int(baselineBits)/window:] {
		if l > peak {
			peak = l
		}
	}

	row := BusLoadRow{
		System:         system,
		BaselineLoad:   baseline,
		PeakWindowLoad: peak,
		VictimMissRate: replay.MissRate(),
	}
	if busOffAt >= 0 {
		row.AttackerSilenced = true
		// Bus-off time per the paper: from the first bit of the malicious
		// message to the end of the campaign. For Parrot the first spoofed
		// instance completes untouched (its detection latency) and still
		// counts.
		for _, e := range events {
			if e.ID == DefenderID && e.IDComplete && e.Start >= attackStart {
				row.BusOffBits = int64(busOffAt - e.Start)
				break
			}
		}
	}
	return row, nil
}
