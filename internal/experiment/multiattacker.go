package experiment

import (
	"fmt"
	"time"

	"michican/internal/attack"
	"michican/internal/can"
	"michican/internal/trace"
)

// MultiAttackerRow is one point of the Sec. V-C multi-attacker sweep: the
// total bus-off time for A concurrent attackers (the paper measures 3515
// bits for A=3 and 4660 for A=4, and declares A ≥ 5 infeasible against the
// 5000-bit deadline budget of a 10 ms message class).
type MultiAttackerRow struct {
	// Attackers is A.
	Attackers int
	// TotalBits spans the first malicious SOF through the last attacker's
	// final destroyed attempt.
	TotalBits int64
	// Total is the wall-clock equivalent at the experiment rate.
	Total time.Duration
	// Feasible reports TotalBits ≤ DeadlineBudgetBits.
	Feasible bool
}

// DeadlineBudgetBits is the paper's feasibility budget: the minimum periodic
// deadline of 10 ms on a 500 kbit/s bus equals 5000 bit times.
const DeadlineBudgetBits = 5000

// String renders the row.
func (r MultiAttackerRow) String() string {
	verdict := "feasible"
	if !r.Feasible {
		verdict = "BUS INOPERABLE"
	}
	return fmt.Sprintf("A=%d  total bus-off = %5d bits (%v)  %s",
		r.Attackers, r.TotalBits, r.Total, verdict)
}

// MultiAttacker sweeps A = 1..maxA concurrent DoS attackers on consecutive
// IDs starting at 0x066 (the Experiment-5 topology generalized).
func MultiAttacker(cfg Config, maxA int) ([]MultiAttackerRow, error) {
	cfg = cfg.Defaults()
	if maxA < 1 {
		maxA = 5
	}
	rows := make([]MultiAttackerRow, 0, maxA)
	for a := 1; a <= maxA; a++ {
		row, err := runMultiAttacker(cfg, a)
		if err != nil {
			return nil, fmt.Errorf("A=%d: %w", a, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runMultiAttacker(cfg Config, a int) (MultiAttackerRow, error) {
	ids := make([]can.ID, a)
	for i := range ids {
		ids[i] = can.ID(0x066 + i)
	}
	tb, err := newTestbed(cfg, nil, ids)
	if err != nil {
		return MultiAttackerRow{}, err
	}
	attackers := make([]*attack.Attacker, a)
	for i, id := range ids {
		attackers[i] = attack.NewTargetedDoS(fmt.Sprintf("attacker-%03X", uint32(id)), id)
		tb.bus.Attach(attackers[i])
	}
	allOff := func() bool {
		for _, at := range attackers {
			if at.Controller().Stats().BusOffEvents < 1 {
				return false
			}
		}
		return true
	}
	if !tb.bus.RunUntil(allOff, cfg.Rate.Bits(4*time.Second)) {
		return MultiAttackerRow{}, fmt.Errorf("not all attackers bused off")
	}
	tb.bus.Run(30)

	events := trace.Decode(tb.recorder.Bits(), tb.recorder.Start())
	var start, end int64 = 1 << 62, 0
	for _, id := range ids {
		eps := episodesOf(events, id)
		if len(eps) == 0 {
			return MultiAttackerRow{}, fmt.Errorf("no episode for %s", id)
		}
		if s := int64(eps[0].Start); s < start {
			start = s
		}
		if e := int64(eps[0].End); e > end {
			end = e
		}
	}
	total := end - start + 1
	return MultiAttackerRow{
		Attackers: a,
		TotalBits: total,
		Total:     cfg.Rate.Duration(total),
		Feasible:  total <= DeadlineBudgetBits,
	}, nil
}
