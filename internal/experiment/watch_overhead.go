package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"michican/internal/forensics"
	"michican/internal/telemetry"
	"michican/internal/watch"
)

// WatchArm selects how much of the live SLO/alerting stack rides on the
// wired hub in one measurement arm of the watch-overhead grid.
type WatchArm int

const (
	// WatchOff is the observability baseline the pre-PR10 numbers used: hub
	// wired with retention off plus the forensics engine — but no watch
	// engine, so every alert-rule fold is absent.
	WatchOff WatchArm = iota
	// WatchOn attaches watch.New to the same hub and forensics engine: the
	// ladder/defender folds run on every matching event and incident
	// closures evaluate the SLO rules. This is the arm the ≤2% engine-idle
	// budget gates (exact stepping, 2% offered load — the configuration a
	// deployment leaves -watch enabled on).
	WatchOn
	// WatchPolled additionally runs a background poller reading SLO() and
	// Snapshot() every 5ms — the load a live dashboard or scraper adds on
	// top of the engine itself. Reported, not gated.
	WatchPolled
)

// WatchOverheadRow compares one load × stepping-mode cell's throughput
// across the three watch arms. WatchOverheadPct (engine vs baseline) is what
// the ≤2% budget gates at the idle cell; PolledOverheadPct documents what a
// live reader adds on top. Transitions/Verdicts report what the engine
// actually did during one repetition, so BENCH_PR10.json ties the overhead
// to observed alerting work.
type WatchOverheadRow struct {
	Load          float64      `json:"load"`
	Mode          SteppingMode `json:"mode"`
	SimulatedBits int64        `json:"simulated_bits"`
	// BaselineBitsPerSecond is the best-of-reps throughput with forensics
	// wired but no watch engine.
	BaselineBitsPerSecond float64 `json:"baseline_bits_per_second"`
	// WatchBitsPerSecond adds the subscribed watch engine.
	WatchBitsPerSecond float64 `json:"watch_bits_per_second"`
	// PolledBitsPerSecond additionally polls SLO()/Snapshot() every 5ms.
	PolledBitsPerSecond float64 `json:"polled_bits_per_second"`
	// WatchOverheadPct is the median across measurement rounds of the paired
	// per-round slowdown (baseline − watch) / baseline × 100 — the same
	// estimator the PR5/PR8 guards use; negative values (noise) are reported
	// as measured.
	WatchOverheadPct float64 `json:"watch_overhead_pct"`
	// PolledOverheadPct is the same paired median for the polled arm.
	PolledOverheadPct float64 `json:"polled_overhead_pct"`
	// Transitions is the alert fire/resolve count one watch-arm repetition
	// produced; Verdicts the incident evaluations behind it.
	Transitions int64 `json:"transitions"`
	Verdicts    int64 `json:"verdicts"`
}

// String renders the row for terminal output.
func (r WatchOverheadRow) String() string {
	return fmt.Sprintf("load=%2.0f%%  %-10s  base=%7.2f Mbit/s  +watch=%7.2f (%+.2f%%)  +poller=%7.2f (%+.2f%%)  transitions=%d",
		r.Load*100, r.Mode, r.BaselineBitsPerSecond/1e6,
		r.WatchBitsPerSecond/1e6, r.WatchOverheadPct,
		r.PolledBitsPerSecond/1e6, r.PolledOverheadPct,
		r.Transitions)
}

// MeasureWatchOverhead measures one cell of the watch-overhead grid with the
// same discipline as MeasureStoreOverhead: interleaved arms, a fresh
// hub + forensics (+ watch) stack per repetition, per-rep GC, paired
// per-round medians, best-of-reps throughput.
func MeasureWatchOverhead(load float64, mode SteppingMode, simBits int64) (WatchOverheadRow, error) {
	const reps = 11
	const minWallSecondsPerRep = 0.4
	row := WatchOverheadRow{Load: load, Mode: mode, SimulatedBits: simBits}
	cal, err := runScenarioOnce(load, mode, simBits, nil)
	if err != nil {
		return row, err
	}
	if wall := float64(simBits) / cal; wall < minWallSecondsPerRep {
		row.SimulatedBits = int64(cal * minWallSecondsPerRep)
	}

	arms := []WatchArm{WatchOff, WatchOn, WatchPolled}
	best := make([]float64, len(arms))
	rounds := make([][]float64, len(arms))
	for rep := 0; rep < reps; rep++ {
		for i, arm := range arms {
			hub := telemetry.NewHub()
			hub.RetainEvents(false)
			eng := forensics.NewEngine(hub)
			var w *watch.Engine
			var stopPoll chan struct{}
			var pollWG sync.WaitGroup
			if arm != WatchOff {
				w = watch.New(hub, eng, watch.Config{})
			}
			if arm == WatchPolled {
				stopPoll = make(chan struct{})
				pollWG.Add(1)
				go func() {
					defer pollWG.Done()
					t := time.NewTicker(5 * time.Millisecond)
					defer t.Stop()
					for {
						select {
						case <-stopPoll:
							return
						case <-t.C:
							_ = w.SLO()
							_ = w.Snapshot()
						}
					}
				}()
			}
			runtime.GC()
			bps, err := runScenarioOnce(load, mode, row.SimulatedBits, hub)
			if stopPoll != nil {
				close(stopPoll)
				pollWG.Wait()
			}
			if w != nil {
				eng.Finalize(row.SimulatedBits)
				snap := w.Snapshot()
				if arm == WatchOn && int64(len(snap.Log)) > row.Transitions {
					row.Transitions = int64(len(snap.Log))
					row.Verdicts = int64(snap.Verdicts)
				}
				w.Close()
			}
			if err != nil {
				return row, err
			}
			if bps > best[i] {
				best[i] = bps
			}
			rounds[i] = append(rounds[i], bps)
		}
	}
	row.BaselineBitsPerSecond = best[WatchOff]
	row.WatchBitsPerSecond = best[WatchOn]
	row.PolledBitsPerSecond = best[WatchPolled]
	pairedMedianPct := func(arm WatchArm) float64 {
		pcts := make([]float64, reps)
		for r := 0; r < reps; r++ {
			base, other := rounds[WatchOff][r], rounds[arm][r]
			pcts[r] = (base - other) / base * 100
		}
		sort.Float64s(pcts)
		if reps%2 == 1 {
			return pcts[reps/2]
		}
		return (pcts[reps/2-1] + pcts[reps/2]) / 2
	}
	row.WatchOverheadPct = pairedMedianPct(WatchOn)
	row.PolledOverheadPct = pairedMedianPct(WatchPolled)
	return row, nil
}
