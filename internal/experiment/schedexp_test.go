package experiment

import (
	"testing"

	"michican/internal/bus"
)

func TestSchedulability(t *testing.T) {
	rows, err := Schedulability(bus.Rate500k)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.Schedulable {
			t.Errorf("%s/%s unschedulable", r.Vehicle, r.Bus)
		}
		// A single clean bus-off (≈1248 bits) must fit every bus's slack —
		// the paper's core feasibility claim survives the full
		// response-time analysis.
		if !r.SingleAttackerOK {
			t.Errorf("%s/%s: single-attacker bus-off does not fit the slack (budget %d)",
				r.Vehicle, r.Bus, r.BudgetBits)
		}
		if r.BudgetBits <= 0 {
			t.Errorf("%s/%s: non-positive budget", r.Vehicle, r.Bus)
		}
	}
	// The refinement beyond the paper: on the busy powertrain buses the
	// four-attacker campaign (≈4660 bits) exceeds the real slack even though
	// it fits the paper's 5000-bit rule of thumb.
	tightBuses := 0
	for _, r := range rows {
		if r.Bus == "powertrain" && !r.FourAttackersOK {
			tightBuses++
		}
	}
	if tightBuses == 0 {
		t.Error("expected at least one powertrain bus where A=4 exceeds the analytic slack")
	}
}
