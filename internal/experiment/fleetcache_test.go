package experiment

import "testing"

// TestMeasureFleetPlanCache smoke-tests the fleet compile-time/memory arm at
// a tiny population: the shared row must show the cache actually absorbing
// the population's plan working set, the private row must report no cache.
func TestMeasureFleetPlanCache(t *testing.T) {
	shared, err := MeasureFleetPlanCache(3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.SharedCache || shared.Vehicles != 3 {
		t.Fatalf("shared row mislabeled: %+v", shared)
	}
	if shared.Cache.Plans == 0 || shared.Cache.Misses == 0 || shared.Cache.ResidentBytes == 0 {
		t.Fatalf("shared row shows an unexercised cache: %+v", shared.Cache)
	}
	if shared.Cache.Hits == 0 {
		t.Fatalf("three vehicles over one matrix produced no cross-vehicle hits: %+v", shared.Cache)
	}
	private, err := MeasureFleetPlanCache(3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if private.SharedCache || private.Cache.Plans != 0 || private.Cache.Hits != 0 {
		t.Fatalf("private row reports a cache: %+v", private)
	}
	if private.BuildSeconds < 0 || shared.BuildSeconds < 0 {
		t.Fatal("negative build time")
	}
}
