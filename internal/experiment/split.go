package experiment

import (
	"fmt"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/fsm"
	"michican/internal/mcu"
)

// SplitResult summarizes the Sec. IV-A split deployment: the IVN 𝔼 is split
// into a lower-priority half 𝔼₁ running only the light scenario (spoof
// detection on the own ID) and an upper half 𝔼₂ running the full scenario.
// DoS coverage is preserved because every ID below any 𝔼₂ member is inside
// some full detection range, while the 𝔼₁ ECUs save most of their CPU.
type SplitResult struct {
	// ECUs is the IVN size.
	ECUs int
	// DoSEradicated reports whether a DoS attacker below every ID was still
	// bused off with only 𝔼₂ running the full scenario.
	DoSEradicated bool
	// SpoofLowEradicated reports whether spoofing an 𝔼₁ (light) member was
	// eradicated by that member's own light defense.
	SpoofLowEradicated bool
	// FullLoad / LightLoad are the combined CPU loads (Arduino Due at
	// 125 kbit/s) of a representative full-scenario and light-scenario ECU
	// during the benign phase.
	FullLoad, LightLoad float64
}

// String renders the result.
func (r SplitResult) String() string {
	return fmt.Sprintf("N=%d  DoS eradicated=%v  low-half spoof eradicated=%v  CPU full=%.1f%% light=%.1f%%",
		r.ECUs, r.DoSEradicated, r.SpoofLowEradicated, r.FullLoad*100, r.LightLoad*100)
}

// SplitScenario builds a 16-ECU IVN split per Sec. IV-A and verifies the
// paper's two claims: the network stays protected against DoS (the full
// half covers it) and against spoofing of light members (their own light
// FSMs cover that), while the light half runs with a fraction of the CPU.
func SplitScenario(cfg Config) (SplitResult, error) {
	cfg = cfg.Defaults()
	const n = 16
	ids := make([]can.ID, n)
	for i := range ids {
		ids[i] = can.ID(0x080 + i*0x28)
	}
	ivn, err := fsm.NewIVN(ids)
	if err != nil {
		return SplitResult{}, err
	}

	b := bus.New(cfg.Rate)
	type member struct {
		ctl *controller.Controller
		def *core.Defense
	}
	members := make([]member, n)
	for i := 0; i < n; i++ {
		var ds *fsm.DetectionSet
		if i < n/2 {
			ds, err = fsm.NewSpoofOnlySet(ivn, i) // 𝔼₁: light
		} else {
			ds, err = fsm.NewDetectionSet(ivn, i) // 𝔼₂: full
		}
		if err != nil {
			return SplitResult{}, err
		}
		ctl := controller.New(controller.Config{Name: fmt.Sprintf("ecu%02d", i), AutoRecover: true})
		def, err := core.New(core.Config{
			Name:             fmt.Sprintf("ecu%02d/michican", i),
			FSM:              fsm.Build(ds),
			Profile:          mcu.ArduinoDue,
			SelfTransmitting: ctl.Transmitting,
		})
		if err != nil {
			return SplitResult{}, err
		}
		members[i] = member{ctl: ctl, def: def}
		b.Attach(core.NewECU(ctl, def))
	}

	res := SplitResult{ECUs: n}

	// Benign phase: every ECU broadcasts periodically; measure CPU loads.
	period := cfg.Rate.Bits(40 * time.Millisecond)
	next := make([]bus.BitTime, n)
	for i := range next {
		next[i] = bus.BitTime(int64(i) * period / int64(n))
	}
	benignBits := cfg.Rate.Bits(500 * time.Millisecond)
	for t := int64(0); t < benignBits; t++ {
		for i := range members {
			if b.Now() >= next[i] {
				if members[i].ctl.PendingTx() == 0 {
					_ = members[i].ctl.Enqueue(can.Frame{ID: ids[i], Data: []byte{byte(i)}})
				}
				next[i] += bus.BitTime(period)
			}
		}
		b.Step()
	}
	// CPU utilization on a representative light (index 0) and full (index
	// n-1, the largest range) member. Metering here runs at the 50 kbit/s
	// prototype rate scaled to 125k for comparability with Sec. V-D.
	res.LightLoad = members[0].def.Meter().CombinedLoad(int(bus.Rate125k))
	res.FullLoad = members[n-1].def.Meter().CombinedLoad(int(bus.Rate125k))

	// Attack 1: a DoS below everyone — only the full half can see it.
	dos := attack.NewTargetedDoS("dos", 0x010)
	b.Attach(dos)
	deadline := cfg.Rate.Bits(2 * time.Second)
	res.DoSEradicated = b.RunUntil(func() bool {
		return dos.Controller().Stats().BusOffEvents > 0
	}, deadline)
	b.Detach(dos)
	b.Run(20)

	// Attack 2: spoof a light member's own ID — only its own light FSM
	// covers it (every full range excludes legitimate IDs).
	spoof := attack.NewFabrication("spoof", ids[2], []byte{0xFF, 0xFF}, 0)
	b.Attach(spoof)
	res.SpoofLowEradicated = b.RunUntil(func() bool {
		return spoof.Controller().Stats().BusOffEvents > 0
	}, deadline)
	return res, nil
}
