package experiment

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"michican/internal/attack"
	"michican/internal/bus"
	"michican/internal/can"
	"michican/internal/controller"
	"michican/internal/core"
	"michican/internal/forensics"
	"michican/internal/fsm"
	"michican/internal/restbus"
	"michican/internal/telemetry"
	"michican/internal/trace"
	"michican/internal/watch"
)

// idleOnlyObserver is a deliberately half-capable participant: it promises
// idle quiescence (so inter-frame jumps still happen) but implements no
// RunObserver, which pins every sole-transmitter frame span back to exact
// per-bit stepping. Fuzz mixes include it to exercise the pinning path.
type idleOnlyObserver struct {
	bits int64
}

func (o *idleOnlyObserver) Drive(bus.BitTime) can.Level { return can.Recessive }

func (o *idleOnlyObserver) Observe(bus.BitTime, can.Level) { o.bits++ }

func (o *idleOnlyObserver) QuiescentUntil(now bus.BitTime) bus.BitTime {
	return now + bus.BitTime(1<<30)
}

func (o *idleOnlyObserver) SkipIdle(from, to bus.BitTime) { o.bits += int64(to - from) }

// diffMode selects which fast-path stack a differential arm runs with.
type diffMode int

const (
	// diffExact steps every bit.
	diffExact diffMode = iota
	// diffFrameFF enables the idle and sole-transmitter paths but disables
	// the contested-window and compiled-splice paths, so multi-driver
	// windows exact-step.
	diffFrameFF
	// diffContendFF adds bulk wired-AND resolution of contested windows,
	// with the compiled-splice tier still disabled.
	diffContendFF
	// diffSpliceFF enables the stack including the compiled-splice
	// tier, which folds whole precompiled frame windows plus their
	// intermission tails, with the hyperperiod tier explicitly off.
	diffSpliceFF
	// diffHyperFF enables the full ladder topped by the hyperperiod
	// super-splice tier, which chains accepted splice windows and idle gaps
	// into memoized hyperperiod spans applied O(1) on fingerprint recurrence.
	diffHyperFF
)

// ffCounters reports which fast paths a run engaged.
type ffCounters struct {
	idle, frame, contend, splice, hyper int64
	// pinned records that the half-capable observer joined, pinning the
	// frame, contend, and splice paths to exact stepping by construction.
	pinned bool
}

// diffOutcome captures everything the differential compares: the full
// resolved wire trace plus every node's protocol counters.
type diffOutcome struct {
	Bits           []can.Level
	TEC, REC       []int
	BusOffEvents   []int
	TxSuccess      []int
	RxFrames       []int
	Detections     int
	Counterattacks int
}

// randomScenario derives a network from the seed: a handful of periodic
// messages with random IDs/DLCs/periods behind one replayer, a
// MichiCAN-defended ECU, optionally a rival replayer whose schedule is
// built to provoke arbitration fights, optionally a fabrication attacker
// that starts at a random bit, and optionally the half-capable pinning
// observer.
func runRandomScenario(seed int64, mode diffMode, hub *telemetry.Hub) (diffOutcome, ffCounters, error) {
	rng := rand.New(rand.NewSource(seed))
	var out diffOutcome
	var ff ffCounters

	// Random schedule: 2-6 messages, distinct random IDs, random DLC/period.
	nMsgs := 2 + rng.Intn(5)
	used := map[can.ID]bool{DefenderID: true}
	matrix := &restbus.Matrix{Vehicle: "fuzz", Bus: "fuzz"}
	ids := []can.ID{DefenderID}
	for len(matrix.Messages) < nMsgs {
		id := can.ID(rng.Intn(0x7F0))
		if used[id] {
			continue
		}
		used[id] = true
		ids = append(ids, id)
		matrix.Messages = append(matrix.Messages, restbus.Message{
			ID:          id,
			Transmitter: fmt.Sprintf("ecu-%03X", uint16(id)),
			DLC:         rng.Intn(9),
			Period:      time.Duration(2+rng.Intn(28)) * time.Millisecond,
		})
	}

	// Fight mix: with probability ~1/2 a rival replayer mirrors part of the
	// schedule at equal periods, so both nodes regularly hold queued frames
	// through the same busy window and assert SOF together. A mirror keeps
	// either the same ID with a different payload length — the fight then
	// survives arbitration and diverges mid-frame into a bit error and an
	// error-flag exchange — or takes the adjacent ID, a classic
	// priority-resolved arbitration fight.
	var rival *restbus.Matrix
	if rng.Intn(2) == 0 {
		rival = &restbus.Matrix{Vehicle: "fuzz", Bus: "rival"}
		for _, msg := range matrix.Messages {
			if rng.Intn(2) == 0 {
				continue
			}
			m := msg
			m.Transmitter = "rival-" + m.Transmitter
			if rng.Intn(2) == 0 {
				m.DLC = (m.DLC + 1 + rng.Intn(7)) % 9 // never the original DLC
			} else {
				id := m.ID + 1
				for used[id] {
					id++
				}
				used[id] = true
				ids = append(ids, id)
				m.ID = id
			}
			rival.Messages = append(rival.Messages, m)
		}
		if len(rival.Messages) == 0 {
			rival = nil
		}
	}

	v, err := fsm.NewIVN(ids)
	if err != nil {
		return out, ff, err
	}
	ds, err := fsm.NewDetectionSet(v, v.Index(DefenderID))
	if err != nil {
		return out, ff, err
	}
	def, err := core.New(core.Config{Name: "defender", FSM: fsm.Build(ds)})
	if err != nil {
		return out, ff, err
	}

	bb := bus.New(bus.Rate50k)
	bb.SetFastForward(mode != diffExact)
	bb.SetFrameFastForward(mode != diffExact)
	bb.SetContendFastForward(mode == diffContendFF || mode == diffSpliceFF || mode == diffHyperFF)
	bb.SetSpliceFastForward(mode == diffSpliceFF || mode == diffHyperFF)
	bb.SetHyperFastForward(mode == diffHyperFF)
	if mode == diffHyperFF {
		// Production wiring: key chains on the schedule hyperperiod when the
		// random matrix's lcm is tractable; otherwise the default chain length
		// stands in. Either way fingerprint misses just record — hits are a
		// bonus, correctness is the differential's subject.
		if h := matrix.HyperperiodBits(bus.Rate50k); h > 0 {
			bb.SetHyperChainBits(h)
		}
	}

	defCtl := controller.New(controller.Config{Name: "defender", AutoRecover: true})
	ecu := core.NewECU(defCtl, def)
	bb.Attach(ecu)
	rep := restbus.NewReplayer("restbus", matrix, bus.Rate50k, rand.New(rand.NewSource(seed+1)))
	bb.Attach(rep)
	if hub != nil {
		bb.SetTelemetry(hub, "bus")
		ecu.SetTelemetry(hub)
		rep.SetTelemetry(hub)
	}

	ctls := []*controller.Controller{defCtl, rep.Controller()}

	if rival != nil {
		rrep := restbus.NewReplayer("rival", rival, bus.Rate50k, rand.New(rand.NewSource(seed+2)))
		bb.Attach(rrep)
		if hub != nil {
			rrep.SetTelemetry(hub)
		}
		ctls = append(ctls, rrep.Controller())
	}

	// Pinned-node mix: with probability ~1/3 a half-capable observer joins,
	// pinning every frame span to exact stepping in both runs.
	pinned := rng.Intn(3) == 0
	if pinned {
		bb.Attach(&idleOnlyObserver{})
	}

	// Attack mix: with probability ~2/3 a fabrication attacker spoofs either
	// the defender's ID (provoking detection + counterattack + bus-off) or a
	// random victim, starting at a random bit.
	var attacker *attack.Attacker
	attackStart := int64(0)
	if rng.Intn(3) != 0 {
		victim := DefenderID
		if rng.Intn(3) == 0 {
			victim = ids[1+rng.Intn(len(ids)-1)]
		}
		payload := make([]byte, rng.Intn(9))
		rng.Read(payload)
		attacker = attack.NewFabrication("attacker", victim, payload, int64(300+rng.Intn(2000)))
		attackStart = int64(rng.Intn(3000))
		if hub != nil {
			attacker.SetTelemetry(hub)
		}
	}

	rec := trace.NewRecorder()
	bb.AttachTap(rec)

	// Attach-time randomization happens at a Run boundary, which is the only
	// point external mutation is allowed on either path.
	total := fuzzTotalBits // 400 ms of bus time at 50 kbit/s
	if attacker != nil {
		bb.Run(attackStart)
		bb.Attach(attacker)
		ctls = append(ctls, attacker.Controller())
		bb.Run(total - attackStart)
	} else {
		bb.Run(total)
	}

	out.Bits = rec.Bits()
	for _, c := range ctls {
		st := c.Stats()
		out.TEC = append(out.TEC, c.TEC())
		out.REC = append(out.REC, c.REC())
		out.BusOffEvents = append(out.BusOffEvents, st.BusOffEvents)
		out.TxSuccess = append(out.TxSuccess, st.TxSuccess)
		out.RxFrames = append(out.RxFrames, st.RxSuccess)
	}
	ds2 := def.Stats()
	out.Detections = ds2.Detections
	out.Counterattacks = ds2.Counterattacks
	ff.idle = bb.IdleForwardedBits()
	ff.frame = bb.FrameForwardedBits()
	ff.contend = bb.ContendForwardedBits()
	ff.splice = bb.SpliceForwardedBits()
	ff.hyper = bb.HyperForwardedBits()
	ff.pinned = pinned
	return out, ff, nil
}

// fuzzTotalBits mirrors runRandomScenario's run length so differential arms
// can finalize their forensics engines at the recording end.
const fuzzTotalBits = int64(20_000)

// diffSeed runs one seed six ways — exact with no telemetry, frame-FF with
// contested windows exact-stepped, contend-FF with bulk wired-AND
// resolution, splice-FF with compiled-window splicing, hyper-FF with the
// full ladder including memoized hyperperiod chains, and exact again with a
// fully wired, event-retaining hub — and
// fails on any divergence: every fast path must be bit-invisible, and
// telemetry must be a pure observer on every path. The five wired arms each
// feed a live forensics engine, and the reconstructed incident logs must be
// identical across stepping modes — the tentpole's parity claim, fuzzed.
// Returns the number of incidents the seed produced.
func diffSeed(t *testing.T, seed int64) int {
	t.Helper()
	// Every wired arm also carries a live watch engine: SLO verdicts and
	// alert transitions must be as stepping-mode-invariant as the forensics
	// record they derive from.
	newEng := func(retain bool) (*telemetry.Hub, *forensics.Engine, *watch.Engine) {
		h := telemetry.NewHub()
		h.RetainEvents(retain)
		e := forensics.NewEngine(h)
		return h, e, watch.New(h, e, watch.Config{})
	}
	finalize := func(e *forensics.Engine) []forensics.Incident {
		e.Finalize(fuzzTotalBits)
		e.Close()
		return e.Incidents()
	}

	exact, exFF, err := runRandomScenario(seed, diffExact, nil)
	if err != nil {
		t.Fatalf("seed %d exact: %v", seed, err)
	}
	if exFF.idle != 0 || exFF.frame != 0 || exFF.contend != 0 || exFF.splice != 0 {
		t.Fatalf("seed %d: exact run fast-forwarded", seed)
	}
	fastHub, fastEng, fastW := newEng(false)
	fast, fastFF, err := runRandomScenario(seed, diffFrameFF, fastHub)
	if err != nil {
		t.Fatalf("seed %d fast: %v", seed, err)
	}
	if fastFF.idle == 0 {
		t.Errorf("seed %d: idle fast path never engaged", seed)
	}
	if fastFF.frame == 0 && !fastFF.pinned {
		t.Errorf("seed %d: frame fast path never engaged with no pinning node", seed)
	}
	if fastFF.contend != 0 || fastFF.splice != 0 || fastFF.hyper != 0 {
		t.Errorf("seed %d: disabled fast path engaged on frame-ff arm", seed)
	}
	contendHub, contendEng, contendW := newEng(false)
	contend, contendFF, err := runRandomScenario(seed, diffContendFF, contendHub)
	if err != nil {
		t.Fatalf("seed %d contend: %v", seed, err)
	}
	if contendFF.contend == 0 && !contendFF.pinned {
		t.Errorf("seed %d: contend fast path never engaged with no pinning node", seed)
	}
	if contendFF.splice != 0 || contendFF.hyper != 0 {
		t.Errorf("seed %d: splice/hyper path engaged while disabled", seed)
	}
	spliceHub, spliceEng, spliceW := newEng(false)
	splice, spliceFF, err := runRandomScenario(seed, diffSpliceFF, spliceHub)
	if err != nil {
		t.Fatalf("seed %d splice: %v", seed, err)
	}
	if spliceFF.splice == 0 && !spliceFF.pinned {
		t.Errorf("seed %d: splice fast path never engaged with no pinning node", seed)
	}
	if spliceFF.hyper != 0 {
		t.Errorf("seed %d: hyper path engaged while disabled", seed)
	}
	hyperHub, hyperEng, hyperW := newEng(false)
	hyper, hyperFF, err := runRandomScenario(seed, diffHyperFF, hyperHub)
	if err != nil {
		t.Fatalf("seed %d hyper: %v", seed, err)
	}
	// No engagement floor for the hyper counter itself: the tier only replays
	// on fingerprint recurrence, which a 400 ms random schedule may never
	// reach (and any attacker or half-capable node pins it off entirely). The
	// splice tier underneath must still carry the run.
	if hyperFF.splice == 0 && !hyperFF.pinned {
		t.Errorf("seed %d: splice tier never engaged on the hyper arm with no pinning node", seed)
	}
	hub, wiredEng, wiredW := newEng(true)
	wired, _, err := runRandomScenario(seed, diffExact, hub)
	if err != nil {
		t.Fatalf("seed %d wired: %v", seed, err)
	}
	compare := func(label string, a, b diffOutcome) {
		t.Helper()
		if !reflect.DeepEqual(a.Bits, b.Bits) {
			i := 0
			for i < len(a.Bits) && i < len(b.Bits) && a.Bits[i] == b.Bits[i] {
				i++
			}
			t.Fatalf("seed %d: %s wire traces diverge at bit %d (%d bits vs %d bits)",
				seed, label, i, len(a.Bits), len(b.Bits))
		}
		a.Bits, b.Bits = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %s counters diverge:\n%+v\nvs\n%+v", seed, label, a, b)
		}
	}
	compare("exact vs frame-ff", exact, fast)
	compare("frame-ff vs contend-ff", fast, contend)
	compare("contend-ff vs splice-ff", contend, splice)
	compare("splice-ff vs hyper-ff", splice, hyper)
	compare("hyper-ff vs telemetry-wired-exact", hyper, wired)
	if hub.Len() == 0 {
		t.Errorf("seed %d: wired run captured no telemetry events", seed)
	}

	// Forensics parity: the incident logs reconstructed from each arm's event
	// stream must be field-identical, whatever mix of fast paths stepped the
	// run.
	exactIncs := finalize(wiredEng)
	fastIncs := finalize(fastEng)
	contendIncs := finalize(contendEng)
	spliceIncs := finalize(spliceEng)
	hyperIncs := finalize(hyperEng)
	if !reflect.DeepEqual(exactIncs, fastIncs) {
		t.Fatalf("seed %d: forensics incidents diverge exact vs frame-ff:\n%+v\nvs\n%+v",
			seed, exactIncs, fastIncs)
	}
	if !reflect.DeepEqual(exactIncs, contendIncs) {
		t.Fatalf("seed %d: forensics incidents diverge exact vs contend-ff:\n%+v\nvs\n%+v",
			seed, exactIncs, contendIncs)
	}
	if !reflect.DeepEqual(exactIncs, spliceIncs) {
		t.Fatalf("seed %d: forensics incidents diverge exact vs splice-ff:\n%+v\nvs\n%+v",
			seed, exactIncs, spliceIncs)
	}
	if !reflect.DeepEqual(exactIncs, hyperIncs) {
		t.Fatalf("seed %d: forensics incidents diverge exact vs hyper-ff:\n%+v\nvs\n%+v",
			seed, exactIncs, hyperIncs)
	}

	// SLO/alert parity: every wired arm's watch engine must reach identical
	// verdicts and fire/resolve an identical alert log, whatever mix of fast
	// paths stepped the run — and the live verdicts must match the pure
	// evaluator replayed over the canonical forensics record.
	// Live verdicts arrive in closure order (an unengaged episode times out
	// after a later campaign completes); sort into the forensics record's
	// (Start, IDHex) order so content, not reporting order, is compared.
	sortVerdicts := func(v []watch.IncidentVerdict) []watch.IncidentVerdict {
		out := append([]watch.IncidentVerdict(nil), v...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Start != out[j].Start {
				return out[i].Start < out[j].Start
			}
			return out[i].IDHex < out[j].IDHex
		})
		return out
	}
	wiredVerdicts := sortVerdicts(wiredW.Verdicts())
	// The transition *content* is mode-invariant, but the interleaving of
	// closure-driven rules (campaign, fired when forensics times an episode
	// out) against event-driven rules (defender-confinement) depends on how
	// coarsely a ladder rung batches its event deliveries — a hyper-FF jump
	// observes the timeout at a later stream position than per-bit stepping.
	// Canonicalise into bit-time order and drop the emission sequence so the
	// comparison checks content, not reporting interleave.
	sortAlerts := func(v []watch.Alert) []watch.Alert {
		out := append([]watch.Alert(nil), v...)
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Time != out[j].Time {
				return out[i].Time < out[j].Time
			}
			if out[i].RuleID != out[j].RuleID {
				return out[i].RuleID < out[j].RuleID
			}
			return out[i].Reason < out[j].Reason
		})
		for i := range out {
			out[i].Seq = 0
		}
		return out
	}
	wiredLog := sortAlerts(wiredW.Alerts())
	for _, arm := range []struct {
		label string
		w     *watch.Engine
	}{
		{"frame-ff", fastW}, {"contend-ff", contendW},
		{"splice-ff", spliceW}, {"hyper-ff", hyperW},
	} {
		if v := sortVerdicts(arm.w.Verdicts()); !reflect.DeepEqual(wiredVerdicts, v) {
			t.Fatalf("seed %d: SLO verdicts diverge exact vs %s:\n%+v\nvs\n%+v",
				seed, arm.label, wiredVerdicts, v)
		}
		if l := sortAlerts(arm.w.Alerts()); !reflect.DeepEqual(wiredLog, l) {
			t.Fatalf("seed %d: alert logs diverge exact vs %s:\n%+v\nvs\n%+v",
				seed, arm.label, wiredLog, l)
		}
		arm.w.Close()
	}
	var recomputed []watch.IncidentVerdict
	for _, inc := range exactIncs {
		recomputed = append(recomputed, watch.EvaluateIncident(inc, true, fuzzTotalBits, watch.Config{}))
	}
	recomputed = sortVerdicts(recomputed)
	if !reflect.DeepEqual(wiredVerdicts, recomputed) {
		t.Fatalf("seed %d: live verdicts disagree with the pure evaluator over the forensics record:\n%+v\nvs\n%+v",
			seed, wiredVerdicts, recomputed)
	}
	wiredW.Close()
	return len(exactIncs)
}

// TestFastForwardDifferentialRandom sweeps a fixed seed range through the
// differential: random schedules, rival-replayer arbitration fights, attack
// start bits, and pinned-node mixes must produce bit-identical traces and
// identical TEC/REC/bus-off counters across all stepping modes.
func TestFastForwardDifferentialRandom(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	incidents := 0
	for seed := int64(1); seed <= seeds; seed++ {
		incidents += diffSeed(t, seed)
	}
	// The attack mix guarantees defender-ID spoofs across the sweep; if no
	// seed produced an incident, the forensics parity leg compared nothing.
	if incidents == 0 {
		t.Error("no seed in the sweep produced a forensics incident")
	}
}

// FuzzFastForwardDifferential lets the fuzzer explore seeds beyond the fixed
// sweep: any seed for which the fast path diverges from exact stepping is a
// crasher.
func FuzzFastForwardDifferential(f *testing.F) {
	for _, seed := range []int64{1, 2, 7, 42, 99, 123, 1<<40 + 3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffSeed(t, seed)
	})
}
